// Platform-level tests: host-CPU pool semantics (emergent oversubscription),
// container wiring per mode, vCPU accounting, and the ctx-switch workload's
// scheme sensitivity.

#include <gtest/gtest.h>

#include "src/backends/platform.h"
#include "src/workloads/lmbench.h"
#include "src/workloads/memstress.h"
#include "src/workloads/runner.h"

namespace pvm {
namespace {

TEST(HostCpuPoolTest, UncontendedComputeIsPlainDelay) {
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  config.host_cpus = 4;
  VirtualPlatform platform(config);
  SecureContainer& c = platform.create_container("c0");
  const SimTime start = platform.sim().now();
  platform.sim().spawn([](SecureContainer& cc) -> Task<void> {
    co_await cc.compute(10 * kNsPerMs);
  }(c));
  platform.sim().run();
  EXPECT_EQ(platform.sim().now() - start, 10 * kNsPerMs);
}

TEST(HostCpuPoolTest, OversubscriptionStretchesComputeProportionally) {
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  config.host_cpus = 2;
  VirtualPlatform platform(config);
  SecureContainer& c = platform.create_container("c0");
  // 6 tasks of 10 ms each on 2 CPUs: 30 ms of wall time, and timeslicing
  // means they finish together near the end rather than in 3 serial waves.
  std::vector<SimTime> done(6, 0);
  for (int i = 0; i < 6; ++i) {
    platform.sim().spawn([](SecureContainer& cc, SimTime* out) -> Task<void> {
      co_await cc.compute(10 * kNsPerMs);
      *out = cc.sim().now();
    }(c, &done[i]));
  }
  platform.sim().run();
  const SimTime makespan = platform.sim().now();
  EXPECT_EQ(makespan, 30 * kNsPerMs);
  // Round-robin fairness: nobody finishes before ~28 ms (all interleave).
  for (const SimTime t : done) {
    EXPECT_GE(t, 28 * kNsPerMs);
  }
}

TEST(HostCpuPoolTest, IdleVcpusDoNotOccupyCpus) {
  // A task blocked on I/O must not hold a CPU slot.
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  config.host_cpus = 1;
  VirtualPlatform platform(config);
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(4));
  platform.sim().run();

  const SimTime start = platform.sim().now();
  // One I/O-bound task and one compute-bound task: the compute proceeds
  // while the I/O waits on the device, so the makespan is max, not sum.
  platform.sim().spawn([](SecureContainer& cc) -> Task<void> {
    co_await cc.kernel().do_io(cc.vcpu(0), *cc.init_process(), cc.io(), 1024 * 1024);
  }(c));
  platform.sim().spawn([](SecureContainer& cc) -> Task<void> {
    co_await cc.compute(5 * kNsPerMs);
  }(c));
  platform.sim().run();
  const SimTime elapsed = platform.sim().now() - start;
  EXPECT_LT(elapsed, 7 * kNsPerMs);  // far below the ~5ms + io-sum serial case
}

TEST(PlatformTest, VcpuAccountingAndOversubscriptionFactor) {
  PlatformConfig config;
  config.mode = DeployMode::kKvmEptBm;
  config.host_cpus = 4;
  VirtualPlatform platform(config);
  SecureContainer& a = platform.create_container("a");
  SecureContainer& b = platform.create_container("b");
  EXPECT_EQ(platform.total_vcpus(), 0u);
  a.add_vcpu();
  a.add_vcpu();
  b.add_vcpu();
  EXPECT_EQ(platform.total_vcpus(), 3u);
  EXPECT_DOUBLE_EQ(platform.oversubscription_factor(), 1.0);
  for (int i = 0; i < 9; ++i) {
    b.add_vcpu();
  }
  EXPECT_EQ(platform.total_vcpus(), 12u);
  EXPECT_DOUBLE_EQ(platform.oversubscription_factor(), 3.0);
}

TEST(PlatformTest, NestedModesShareOneL1Instance) {
  for (DeployMode mode : {DeployMode::kKvmEptNst, DeployMode::kPvmNst,
                          DeployMode::kSptOnEptNst, DeployMode::kPvmDirectNst}) {
    SCOPED_TRACE(deploy_mode_name(mode));
    PlatformConfig config;
    config.mode = mode;
    VirtualPlatform platform(config);
    ASSERT_NE(platform.l1_vm(), nullptr);
    EXPECT_TRUE(platform.l1_vm()->warm());
    platform.create_container("a");
    platform.create_container("b");
    EXPECT_EQ(platform.l0().vm_count(), 1u);  // one L1 instance, zero L0-visible L2s
  }
}

TEST(PlatformTest, BareMetalModesCreateOneVmPerContainer) {
  for (DeployMode mode : {DeployMode::kKvmEptBm, DeployMode::kKvmSptBm}) {
    SCOPED_TRACE(deploy_mode_name(mode));
    PlatformConfig config;
    config.mode = mode;
    VirtualPlatform platform(config);
    EXPECT_EQ(platform.l1_vm(), nullptr);
    platform.create_container("a");
    platform.create_container("b");
    EXPECT_EQ(platform.l0().vm_count(), 2u);
  }
}

TEST(CtxSwitchTest, ShadowSchemesPayForProcessSwitches) {
  auto measure = [](DeployMode mode) {
    PlatformConfig config;
    config.mode = mode;
    VirtualPlatform platform(config);
    SecureContainer& c = platform.create_container("c0");
    platform.sim().spawn(c.boot(16));
    platform.sim().run();
    std::uint64_t latency = 0;
    platform.sim().spawn([](SecureContainer& cc, std::uint64_t* out) -> Task<void> {
      *out = co_await lmbench_run(cc, cc.vcpu(0), *cc.init_process(), LmbenchOp::kCtxSwitch,
                                  32, LmbenchParams{});
    }(c, &latency));
    platform.sim().run();
    return latency;
  };
  const std::uint64_t ept = measure(DeployMode::kKvmEptBm);
  const std::uint64_t spt = measure(DeployMode::kKvmSptBm);
  const std::uint64_t pvm_nst = measure(DeployMode::kPvmNst);
  const std::uint64_t kvm_nst = measure(DeployMode::kKvmEptNst);
  // EPT switches CR3 untrapped; kvm-spt traps it and loses the TLB; PVM
  // traps it too but cheaply, and PCID mapping keeps the TLB warm.
  EXPECT_LT(ept, pvm_nst);
  EXPECT_LT(pvm_nst, spt);
  EXPECT_EQ(ept, kvm_nst);  // in-guest CR3 write in both
}

TEST(MultiL1Test, ContainersPlaceRoundRobin) {
  PlatformConfig config;
  config.mode = DeployMode::kKvmEptNst;
  config.l1_instances = 3;
  VirtualPlatform platform(config);
  ASSERT_EQ(platform.l1_vms().size(), 3u);
  EXPECT_EQ(platform.l0().vm_count(), 3u);
  for (int i = 0; i < 6; ++i) {
    platform.create_container("c" + std::to_string(i));
  }
  // All three instances became nVMX-active hosts.
  for (HostHypervisor::Vm* vm : platform.l1_vms()) {
    EXPECT_TRUE(vm->nested_vmx_active());
  }
}

TEST(MultiL1Test, ScaleOutSplitsTheL0LockDomain) {
  // The same 8 kvm-ept (NST) containers on 1 vs 4 L1 instances: the per-L1
  // L0 mmu_lock contention drops with scale-out (the real-world mitigation),
  // and total time improves.
  auto run_one = [](int instances) {
    PlatformConfig config;
    config.mode = DeployMode::kKvmEptNst;
    config.l1_instances = instances;
    VirtualPlatform platform(config);
    MemStressParams params;
    params.total_bytes = 4ull << 20;
    const ContainersResult result = run_containers(
        platform, 8,
        [&](int, SecureContainer& c, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
          return memstress_process(c, vcpu, proc, params);
        });
    SimTime total_wait = 0;
    for (HostHypervisor::Vm* vm : platform.l1_vms()) {
      total_wait += vm->mmu_lock().total_wait_ns();
    }
    return std::pair<double, SimTime>(result.mean_seconds(), total_wait);
  };
  const auto [time_one, wait_one] = run_one(1);
  const auto [time_four, wait_four] = run_one(4);
  EXPECT_LT(time_four, time_one);
  EXPECT_LT(wait_four, wait_one);
}

TEST(MultiL1Test, PvmIsInsensitiveToInstanceCount) {
  // PVM never serializes at L0, so splitting instances changes nothing.
  auto run_one = [](int instances) {
    PlatformConfig config;
    config.mode = DeployMode::kPvmNst;
    config.l1_instances = instances;
    VirtualPlatform platform(config);
    MemStressParams params;
    params.total_bytes = 4ull << 20;
    const ContainersResult result = run_containers(
        platform, 8,
        [&](int, SecureContainer& c, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
          return memstress_process(c, vcpu, proc, params);
        });
    return result.mean_seconds();
  };
  const double one = run_one(1);
  const double four = run_one(4);
  // No L0 serialization either way; allow only sub-0.1% placement noise
  // (different warm-EPT01 table shapes alter a handful of walk loads).
  EXPECT_NEAR(four / one, 1.0, 1e-3);
}

}  // namespace
}  // namespace pvm
