// SlabAllocator unit tests: alignment, free-list recycling, poison-based
// use-after-release detection, geometric slab growth, and the stats
// accounting the pvm.bench.v1 `alloc` section is built from.
//
// Poisoning exists only in !NDEBUG builds, so the use-after-release cases
// are compiled out under the release preset and exercised by the asan/tsan
// presets (which build without NDEBUG).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/sim/arena.h"

namespace pvm {
namespace {

struct SmallPod {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

struct alignas(16) AlignedPod {
  std::uint64_t payload[4] = {};
};

// Non-trivial type: counts constructions/destructions so release() can be
// shown to run the destructor and the wholesale teardown to skip it.
struct Counted {
  explicit Counted(int* counter) : counter_(counter) { ++*counter_; }
  ~Counted() { --*counter_; }
  int* counter_;
};

bool is_aligned(const void* p, std::size_t alignment) {
  return reinterpret_cast<std::uintptr_t>(p) % alignment == 0;
}

TEST(SlabAllocator, AcquireReturnsAlignedConstructedObjects) {
  SlabAllocator<SmallPod> small{4};
  SlabAllocator<AlignedPod> aligned{4};
  for (int i = 0; i < 64; ++i) {
    SmallPod* s = small.acquire();
    ASSERT_TRUE(is_aligned(s, alignof(SmallPod)));
    EXPECT_EQ(s->a, 0u);  // value-constructed, not raw slab bytes
    EXPECT_EQ(s->b, 0u);
    AlignedPod* a = aligned.acquire();
    ASSERT_TRUE(is_aligned(a, alignof(AlignedPod)));
  }
}

TEST(SlabAllocator, ForwardsConstructorArguments) {
  SlabAllocator<std::string> slab{2};
  std::string* s = slab.acquire("shadow-page");
  EXPECT_EQ(*s, "shadow-page");
  slab.release(s);
}

TEST(SlabAllocator, ReleaseRecyclesThroughFreeListLifo) {
  SlabAllocator<SmallPod> slab{8};
  SmallPod* first = slab.acquire();
  SmallPod* second = slab.acquire();
  slab.release(first);
  slab.release(second);
  // Intrusive free list is LIFO: last released is first reused.
  EXPECT_EQ(slab.acquire(), second);
  EXPECT_EQ(slab.acquire(), first);
  EXPECT_EQ(slab.stats().slabs, 1u);  // recycling never grew a slab
}

TEST(SlabAllocator, ReleaseRunsDestructorTeardownDoesNot) {
  int live = 0;
  {
    SlabAllocator<Counted> slab{4};
    Counted* a = slab.acquire(&live);
    Counted* b = slab.acquire(&live);
    EXPECT_EQ(live, 2);
    slab.release(a);
    EXPECT_EQ(live, 1);
    (void)b;  // still live when the allocator dies
  }
  // Wholesale slab teardown skips destructors by design: the counter still
  // reflects the unreleased object.
  EXPECT_EQ(live, 1);
}

TEST(SlabAllocator, SlabGrowthIsGeometric) {
  SlabAllocator<SmallPod> slab{2};
  std::vector<SmallPod*> held;
  // First slab: 2 objects. Doubling: 2, 4, 8 -> 14 objects in 3 slabs.
  for (int i = 0; i < 14; ++i) {
    held.push_back(slab.acquire());
  }
  EXPECT_EQ(slab.stats().slabs, 3u);
  // One more acquire opens the fourth slab (16 objects).
  held.push_back(slab.acquire());
  EXPECT_EQ(slab.stats().slabs, 4u);
  const std::uint64_t slot = sizeof(SmallPod) > sizeof(void*) ? sizeof(SmallPod) : sizeof(void*);
  EXPECT_EQ(slab.stats().bytes_reserved, (2 + 4 + 8 + 16) * slot);
  // Distinct live pointers: no slot was handed out twice.
  for (std::size_t i = 0; i < held.size(); ++i) {
    for (std::size_t j = i + 1; j < held.size(); ++j) {
      ASSERT_NE(held[i], held[j]);
    }
  }
}

TEST(SlabAllocator, StatsTrackLiveAndHighWater) {
  SlabAllocator<SmallPod> slab{4};
  std::vector<SmallPod*> held;
  for (int i = 0; i < 10; ++i) {
    held.push_back(slab.acquire());
  }
  EXPECT_EQ(slab.stats().acquired, 10u);
  EXPECT_EQ(slab.stats().live, 10u);
  EXPECT_EQ(slab.stats().live_high_water, 10u);
  for (int i = 0; i < 7; ++i) {
    slab.release(held.back());
    held.pop_back();
  }
  EXPECT_EQ(slab.stats().released, 7u);
  EXPECT_EQ(slab.stats().live, 3u);
  EXPECT_EQ(slab.stats().live_high_water, 10u);  // HWM does not decay
  // Climb back, but not past the old mark: HWM unchanged.
  for (int i = 0; i < 5; ++i) {
    held.push_back(slab.acquire());
  }
  EXPECT_EQ(slab.stats().live, 8u);
  EXPECT_EQ(slab.stats().live_high_water, 10u);
  // Exceed it: HWM follows.
  for (int i = 0; i < 4; ++i) {
    held.push_back(slab.acquire());
  }
  EXPECT_EQ(slab.stats().live, 12u);
  EXPECT_EQ(slab.stats().live_high_water, 12u);
}

TEST(SlabAllocator, StatsAggregateWithOperatorPlusEquals) {
  SlabAllocator<SmallPod> a{4};
  SlabAllocator<AlignedPod> b{4};
  SmallPod* pa = a.acquire();
  a.acquire();
  b.acquire();
  a.release(pa);
  SlabStats total = a.stats();
  total += b.stats();
  EXPECT_EQ(total.acquired, 3u);
  EXPECT_EQ(total.released, 1u);
  EXPECT_EQ(total.live, 2u);
  EXPECT_EQ(total.live_high_water, 3u);
  EXPECT_EQ(total.slabs, 2u);
  EXPECT_EQ(total.bytes_reserved, a.stats().bytes_reserved + b.stats().bytes_reserved);
}

TEST(SlabAllocator, CleanFreeListVerifiesIntact) {
  SlabAllocator<AlignedPod> slab{4};
  std::vector<AlignedPod*> held;
  for (int i = 0; i < 8; ++i) {
    held.push_back(slab.acquire());
  }
  for (AlignedPod* p : held) {
    slab.release(p);
  }
  EXPECT_EQ(slab.debug_verify_free_slots(), 0u);
  // Reacquire everything: poison verification on reuse must pass.
  for (int i = 0; i < 8; ++i) {
    EXPECT_NO_THROW(slab.acquire());
  }
}

#ifndef NDEBUG

TEST(SlabAllocatorDebug, WriteAfterReleaseIsDetectedBySweep) {
  SlabAllocator<AlignedPod> slab{4};
  AlignedPod* victim = slab.acquire();
  slab.release(victim);
  EXPECT_EQ(slab.debug_verify_free_slots(), 0u);
  // Use-after-release: write through the dangling pointer, past the
  // intrusive free-list link. The slab still owns this memory, so the write
  // is legal for the sanitizers — the poison sweep is what catches it.
  victim->payload[2] = 0xDEADBEEF;
  EXPECT_EQ(slab.debug_verify_free_slots(), 1u);
}

TEST(SlabAllocatorDebug, WriteAfterReleaseThrowsOnReuse) {
  SlabAllocator<AlignedPod> slab{4};
  AlignedPod* victim = slab.acquire();
  slab.release(victim);
  victim->payload[3] = 1;
  EXPECT_THROW(slab.acquire(), std::logic_error);
}

TEST(SlabAllocatorDebug, PoisonCoversWholeSlotBeyondFreeLink) {
  SlabAllocator<AlignedPod> slab{4};
  AlignedPod* victim = slab.acquire();
  slab.release(victim);
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(victim);
  for (std::size_t i = sizeof(void*); i < sizeof(AlignedPod); ++i) {
    ASSERT_EQ(bytes[i], SlabAllocator<AlignedPod>::kPoisonByte) << "offset " << i;
  }
}

#endif  // !NDEBUG

}  // namespace
}  // namespace pvm
