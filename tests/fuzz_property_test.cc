// Randomized property tests against reference models: page-table operations
// vs a std::map oracle, TLB consistency under arbitrary op streams, VMCS
// merge over random field values, and the simulation's misuse guards.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>

#include "src/arch/page_table.h"
#include "src/arch/tlb.h"
#include "src/hv/vmcs.h"
#include "src/sim/random.h"
#include "src/sim/resource.h"
#include "src/guest/io_device.h"
#include "src/sim/simulation.h"

namespace pvm {
namespace {

// Seed-sharding knobs, so CI shards and soak runs can widen coverage
// without recompiling:
//
//   PVM_FUZZ_SEED_OFFSET=N   shifts every parameterized seed by N — shard k
//                            of a fleet explores a disjoint seed set
//   PVM_FUZZ_ITER_SCALE=X    multiplies the per-seed step counts (0.1 for a
//                            quick smoke pass, 10 for a soak)
//
// Unset, both default to the historical suite exactly (offset 0, scale 1).

std::uint64_t fuzz_seed_offset() {
  const char* env = std::getenv("PVM_FUZZ_SEED_OFFSET");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
}

std::vector<std::uint64_t> sharded_seeds(std::initializer_list<std::uint64_t> base) {
  std::vector<std::uint64_t> seeds;
  for (const std::uint64_t seed : base) {
    seeds.push_back(seed + fuzz_seed_offset());
  }
  return seeds;
}

int fuzz_steps(int base) {
  const char* env = std::getenv("PVM_FUZZ_ITER_SCALE");
  if (env == nullptr) {
    return base;
  }
  const double scale = std::atof(env);
  if (scale <= 0) {
    return base;
  }
  const double scaled = static_cast<double>(base) * scale;
  return scaled < 1.0 ? 1 : static_cast<int>(scaled);
}

// --- Page table vs oracle, full op mix ---

struct OraclePage {
  std::uint64_t frame;
  bool writable;
  bool user;
  bool cow;
};

class PageTableFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PageTableFuzz, MatchesOracleUnderOpMix) {
  Xoshiro256 rng(GetParam());
  FrameAllocator alloc("fuzz", 1u << 20);
  PageTable table("fuzz", &alloc);
  std::map<std::uint64_t, OraclePage> oracle;

  auto random_va = [&] {
    // Mix of clustered and scattered addresses to exercise shared nodes.
    if (rng.next_bool(0.5) && !oracle.empty()) {
      auto it = oracle.begin();
      std::advance(it, static_cast<long>(rng.next_below(oracle.size())));
      return it->first + (rng.next_bool(0.5) ? kPageSize : 0);
    }
    return rng.next_below(1ull << 46) & ~kPageMask;
  };

  for (int step = 0, steps = fuzz_steps(4000); step < steps; ++step) {
    const double draw = rng.next_double();
    const std::uint64_t va = random_va();
    if (draw < 0.45) {
      PteFlags flags = PteFlags::rw_user();
      flags.writable = rng.next_bool(0.8);
      flags.cow = rng.next_bool(0.2);
      const std::uint64_t frame = rng.next_below(1u << 20);
      table.map(va, frame, flags);
      oracle[va] = OraclePage{frame, flags.writable, flags.user, flags.cow};
    } else if (draw < 0.65) {
      const bool existed = oracle.erase(va) > 0;
      EXPECT_EQ(table.unmap(va), existed);
    } else if (draw < 0.85) {
      const bool writable = rng.next_bool(0.5);
      const bool changed = table.update_pte(va, [&](Pte& pte) { pte.set_writable(writable); });
      auto it = oracle.find(va);
      if (it != oracle.end()) {
        // update_pte succeeds whenever the chain exists — even for a
        // non-present leaf — so only track the flag for present pages.
        it->second.writable = writable;
      }
      (void)changed;
    } else {
      // Probe a random address.
      const WalkResult walk = table.walk(va, AccessType::kRead, true);
      auto it = oracle.find(va);
      ASSERT_EQ(walk.present, it != oracle.end()) << "va=" << va << " step=" << step;
      if (it != oracle.end()) {
        ASSERT_EQ(walk.pte.frame_number(), it->second.frame);
        ASSERT_EQ(walk.pte.writable(), it->second.writable);
        ASSERT_EQ(walk.pte.cow(), it->second.cow);
      }
    }
    ASSERT_EQ(table.present_leaf_count(), oracle.size());
  }

  // Final sweep: every oracle entry translates; for_each_leaf sees exactly
  // the oracle's key set.
  std::size_t visited = 0;
  table.for_each_leaf([&](std::uint64_t va, const Pte& pte) {
    auto it = oracle.find(va);
    ASSERT_NE(it, oracle.end());
    ASSERT_EQ(pte.frame_number(), it->second.frame);
    ++visited;
  });
  EXPECT_EQ(visited, oracle.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTableFuzz,
                         ::testing::ValuesIn(sharded_seeds({3, 17, 71, 313, 1409})));

// --- TLB internal consistency under random ops ---

class TlbFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TlbFuzz, IndexStaysConsistent) {
  Xoshiro256 rng(GetParam());
  Tlb tlb(64);
  std::map<std::tuple<std::uint16_t, std::uint16_t, std::uint64_t>, std::uint64_t> oracle;

  for (int step = 0, steps = fuzz_steps(6000); step < steps; ++step) {
    const auto vpid = static_cast<std::uint16_t>(rng.next_in(1, 3));
    const auto pcid = static_cast<std::uint16_t>(rng.next_in(1, 4));
    const std::uint64_t vpn = rng.next_below(128);
    const double draw = rng.next_double();
    if (draw < 0.5) {
      PteFlags flags = PteFlags::rw_user();
      flags.global = rng.next_bool(0.1);
      tlb.insert(vpid, pcid, vpn, Pte::make(step, flags));
    } else if (draw < 0.7) {
      (void)tlb.lookup(vpid, pcid, vpn);
    } else if (draw < 0.8) {
      tlb.flush_page(vpid, pcid, vpn);
    } else if (draw < 0.9) {
      tlb.flush_pcid(vpid, pcid);
    } else if (draw < 0.97) {
      tlb.flush_vpid(vpid);
    } else {
      tlb.flush_all();
    }
    // Core invariants: entry count bounded by capacity; a hit after insert
    // without intervening flush returns the inserted frame.
    ASSERT_LE(tlb.valid_entries(), tlb.capacity());
  }
  (void)oracle;

  // Deterministic end-to-end check: fresh insert then immediate hit.
  tlb.insert(1, 1, 5, Pte::make(4242, PteFlags::rw_user()));
  const auto hit = tlb.lookup(1, 1, 5);
  ASSERT_TRUE(hit.hit);
  EXPECT_EQ(hit.frame, 4242u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TlbFuzz,
                         ::testing::ValuesIn(sharded_seeds({5, 25, 125})));

// --- VMCS merge over random values ---

TEST(VmcsFuzz, MergeNeverMixesGuestAndHostFields) {
  Xoshiro256 rng(99);
  for (int round = 0; round < 200; ++round) {
    Vmcs vmcs12;
    Vmcs vmcs01;
    Vmcs vmcs02;
    for (std::size_t i = 0; i < kVmcsFieldCount; ++i) {
      vmcs12.write(static_cast<VmcsField>(i), rng.next());
      vmcs01.write(static_cast<VmcsField>(i), rng.next());
    }
    merge_vmcs02(vmcs12, vmcs01, vmcs02);
    for (VmcsField field : kVmcs12MergedFields) {
      ASSERT_EQ(vmcs02.peek(field), vmcs12.peek(field));
    }
    for (VmcsField field : kVmcs01HostFields) {
      ASSERT_EQ(vmcs02.peek(field), vmcs01.peek(field));
    }
  }
}

// --- Simulation misuse guards ---

TEST(SimulationGuards, SpawnEmptyTaskThrows) {
  Simulation sim;
  EXPECT_THROW(sim.spawn(Task<void>()), std::invalid_argument);
}

TEST(SimulationGuards, SchedulingInThePastThrows) {
  Simulation sim;
  sim.spawn([](Simulation& s) -> Task<void> { co_await s.delay(100); }(sim));
  sim.run();
  EXPECT_EQ(sim.now(), 100u);
  EXPECT_THROW(sim.schedule(std::noop_coroutine(), 50), std::logic_error);
}

TEST(SimulationGuards, RunUntilAdvancesClockToDeadlineWhenIdle) {
  Simulation sim;
  sim.run_until(5000);
  EXPECT_EQ(sim.now(), 5000u);
}

TEST(TaskSemantics, MoveTransfersOwnership) {
  Simulation sim;
  auto make = [](Simulation& s) -> Task<void> { co_await s.delay(1); };
  Task<void> a = make(sim);
  EXPECT_TRUE(a.valid());
  Task<void> b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  sim.spawn(std::move(b));
  EXPECT_FALSE(b.valid());
  sim.run();
  EXPECT_TRUE(sim.all_tasks_done());
}

TEST(IoDeviceTest, QueueDepthBoundsConcurrentService) {
  Simulation sim;
  CostModel costs;
  IoDevice device(sim, costs, "dev", /*queue_depth=*/2);
  std::vector<SimTime> done(4, 0);
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](Simulation& s, IoDevice& d, SimTime* out) -> Task<void> {
      ScopedResource slot = co_await d.queue().scoped();
      co_await s.delay(d.service_time(0));
      *out = s.now();
    }(sim, device, &done[i]));
  }
  sim.run();
  // Two waves of two: 25us and 50us.
  EXPECT_EQ(done[0], costs.io_request_service);
  EXPECT_EQ(done[1], costs.io_request_service);
  EXPECT_EQ(done[2], 2 * costs.io_request_service);
  EXPECT_EQ(done[3], 2 * costs.io_request_service);
}

}  // namespace
}  // namespace pvm
