// Randomized property tests against reference models: page-table operations
// vs a std::map oracle, TLB consistency under arbitrary op streams, VMCS
// merge over random field values, and the simulation's misuse guards.

#include <gtest/gtest.h>

#include <coroutine>
#include <cstdlib>
#include <map>
#include <optional>
#include <queue>

#include "src/arch/page_table.h"
#include "src/arch/tlb.h"
#include "src/hv/vmcs.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/sim/resource.h"
#include "src/guest/io_device.h"
#include "src/sim/simulation.h"

namespace pvm {
namespace {

// Seed-sharding knobs, so CI shards and soak runs can widen coverage
// without recompiling:
//
//   PVM_FUZZ_SEED_OFFSET=N   shifts every parameterized seed by N — shard k
//                            of a fleet explores a disjoint seed set
//   PVM_FUZZ_ITER_SCALE=X    multiplies the per-seed step counts (0.1 for a
//                            quick smoke pass, 10 for a soak)
//
// Unset, both default to the historical suite exactly (offset 0, scale 1).

std::uint64_t fuzz_seed_offset() {
  const char* env = std::getenv("PVM_FUZZ_SEED_OFFSET");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
}

std::vector<std::uint64_t> sharded_seeds(std::initializer_list<std::uint64_t> base) {
  std::vector<std::uint64_t> seeds;
  for (const std::uint64_t seed : base) {
    seeds.push_back(seed + fuzz_seed_offset());
  }
  return seeds;
}

int fuzz_steps(int base) {
  const char* env = std::getenv("PVM_FUZZ_ITER_SCALE");
  if (env == nullptr) {
    return base;
  }
  const double scale = std::atof(env);
  if (scale <= 0) {
    return base;
  }
  const double scaled = static_cast<double>(base) * scale;
  return scaled < 1.0 ? 1 : static_cast<int>(scaled);
}

// --- Page table vs oracle, full op mix ---

struct OraclePage {
  std::uint64_t frame;
  bool writable;
  bool user;
  bool cow;
};

class PageTableFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PageTableFuzz, MatchesOracleUnderOpMix) {
  Xoshiro256 rng(GetParam());
  FrameAllocator alloc("fuzz", 1u << 20);
  PageTable table("fuzz", &alloc);
  std::map<std::uint64_t, OraclePage> oracle;

  auto random_va = [&] {
    // Mix of clustered and scattered addresses to exercise shared nodes.
    if (rng.next_bool(0.5) && !oracle.empty()) {
      auto it = oracle.begin();
      std::advance(it, static_cast<long>(rng.next_below(oracle.size())));
      return it->first + (rng.next_bool(0.5) ? kPageSize : 0);
    }
    return rng.next_below(1ull << 46) & ~kPageMask;
  };

  for (int step = 0, steps = fuzz_steps(4000); step < steps; ++step) {
    const double draw = rng.next_double();
    const std::uint64_t va = random_va();
    if (draw < 0.45) {
      PteFlags flags = PteFlags::rw_user();
      flags.writable = rng.next_bool(0.8);
      flags.cow = rng.next_bool(0.2);
      const std::uint64_t frame = rng.next_below(1u << 20);
      table.map(va, frame, flags);
      oracle[va] = OraclePage{frame, flags.writable, flags.user, flags.cow};
    } else if (draw < 0.65) {
      const bool existed = oracle.erase(va) > 0;
      EXPECT_EQ(table.unmap(va), existed);
    } else if (draw < 0.85) {
      const bool writable = rng.next_bool(0.5);
      const bool changed = table.update_pte(va, [&](Pte& pte) { pte.set_writable(writable); });
      auto it = oracle.find(va);
      if (it != oracle.end()) {
        // update_pte succeeds whenever the chain exists — even for a
        // non-present leaf — so only track the flag for present pages.
        it->second.writable = writable;
      }
      (void)changed;
    } else {
      // Probe a random address.
      const WalkResult walk = table.walk(va, AccessType::kRead, true);
      auto it = oracle.find(va);
      ASSERT_EQ(walk.present, it != oracle.end()) << "va=" << va << " step=" << step;
      if (it != oracle.end()) {
        ASSERT_EQ(walk.pte.frame_number(), it->second.frame);
        ASSERT_EQ(walk.pte.writable(), it->second.writable);
        ASSERT_EQ(walk.pte.cow(), it->second.cow);
      }
    }
    ASSERT_EQ(table.present_leaf_count(), oracle.size());
  }

  // Final sweep: every oracle entry translates; for_each_leaf sees exactly
  // the oracle's key set.
  std::size_t visited = 0;
  table.for_each_leaf([&](std::uint64_t va, const Pte& pte) {
    auto it = oracle.find(va);
    ASSERT_NE(it, oracle.end());
    ASSERT_EQ(pte.frame_number(), it->second.frame);
    ++visited;
  });
  EXPECT_EQ(visited, oracle.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTableFuzz,
                         ::testing::ValuesIn(sharded_seeds({3, 17, 71, 313, 1409})));

// --- Calendar queue vs binary-heap oracle, all tie policies ---
//
// The simulator's total event order is (when, tie, seq) with seq unique, so
// any correct min-queue must pop the exact same sequence — that is the
// invariant the byte-identity guarantee of the calendar-queue swap rests on.
// The oracle here is the std::priority_queue the calendar queue replaced.
// Both sides consume an identical interleaved push/pop stream under each tie
// policy's tie-key shape and three adversarial timestamp distributions:
// dense ties (floods one bucket into heap mode), sparse far-future gaps
// (exercises day jumps and calendar resizes), and wraparound-scale deltas
// (drives the day shift toward its clamp).

struct OracleKey {
  std::uint64_t when;
  std::uint64_t tie;
  std::uint64_t seq;
};

struct OracleLater {
  bool operator()(const OracleKey& a, const OracleKey& b) const {
    if (a.when != b.when) {
      return a.when > b.when;
    }
    if (a.tie != b.tie) {
      return a.tie > b.tie;
    }
    return a.seq > b.seq;
  }
};

std::uint64_t fuzz_mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

enum class TieShape { kFifo, kRandom, kLifo };
enum class DeltaShape { kDenseTies, kSparseFarFuture, kWraparound };

void differential_queue_round(std::uint64_t seed, TieShape tie_shape, DeltaShape delta_shape,
                              int steps) {
  Xoshiro256 rng(seed ^ (static_cast<std::uint64_t>(tie_shape) << 32) ^
                 (static_cast<std::uint64_t>(delta_shape) << 40));
  CalendarQueue queue;
  std::priority_queue<OracleKey, std::vector<OracleKey>, OracleLater> oracle;
  std::uint64_t now = 0;
  std::uint64_t seq = 0;

  const auto next_delta = [&]() -> std::uint64_t {
    switch (delta_shape) {
      case DeltaShape::kDenseTies:
        // Mostly zero: hundreds of events land on identical timestamps,
        // flooding single buckets past the heap-mode threshold.
        return rng.next_bool(0.75) ? 0 : rng.next_below(3);
      case DeltaShape::kSparseFarFuture:
        // Near-term cluster plus far-future outliers: the calendar must jump
        // over long empty runs and widen its day width.
        return rng.next_bool(0.6) ? rng.next_below(512)
                                  : (1ull << 34) + rng.next_below(1ull << 34);
      case DeltaShape::kWraparound:
        // Deltas up to 2^50: pushes the day shift toward its clamp while
        // keeping cumulative time safely below uint64 overflow.
        return rng.next() & ((1ull << 50) - 1);
    }
    return 0;
  };
  const auto tie_of = [&](std::uint64_t s) -> std::uint64_t {
    switch (tie_shape) {
      case TieShape::kFifo:
        return s;
      case TieShape::kLifo:
        return ~s;
      case TieShape::kRandom:
        return fuzz_mix64(seed ^ (s * 0xd1342543de82ef95ull));
    }
    return s;
  };
  const auto pop_both_and_check = [&]() {
    ASSERT_FALSE(queue.empty());
    ASSERT_EQ(queue.min_when(), oracle.top().when);
    const SimEvent popped = queue.pop();
    const OracleKey expect = oracle.top();
    oracle.pop();
    ASSERT_EQ(popped.when, expect.when) << "seq=" << expect.seq;
    ASSERT_EQ(popped.tie, expect.tie) << "seq=" << expect.seq;
    ASSERT_EQ(popped.seq, expect.seq);
    // Payload integrity: the gap-buffer memmoves must not scramble fields.
    ASSERT_EQ(popped.root, static_cast<std::int64_t>(popped.seq));
    now = popped.when;
  };

  for (int step = 0; step < steps; ++step) {
    const bool do_push = oracle.empty() || (oracle.size() < 4096 && rng.next_bool(0.55));
    if (do_push) {
      const std::uint64_t when = now + next_delta();
      const std::uint64_t tie = tie_of(seq);
      queue.push(SimEvent{when, tie, seq, static_cast<std::int64_t>(seq),
                          std::noop_coroutine()});
      oracle.push(OracleKey{when, tie, seq});
      ++seq;
    } else if (rng.next_bool(0.02)) {
      // Burst drain: pop a run in one go so compaction and min-bucket
      // re-location see long pop streaks, not just single pops.
      const std::size_t burst = std::min<std::size_t>(oracle.size(), 64);
      for (std::size_t i = 0; i < burst; ++i) {
        ASSERT_NO_FATAL_FAILURE(pop_both_and_check());
      }
    } else {
      ASSERT_EQ(queue.size(), oracle.size());
      ASSERT_NO_FATAL_FAILURE(pop_both_and_check());
    }
  }
  // Full drain: the remaining backlog must match one-for-one.
  while (!oracle.empty()) {
    ASSERT_NO_FATAL_FAILURE(pop_both_and_check());
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, PopsIdenticallyToBinaryHeapOracle) {
  const int steps = fuzz_steps(3000);
  for (const TieShape tie : {TieShape::kFifo, TieShape::kRandom, TieShape::kLifo}) {
    for (const DeltaShape delta :
         {DeltaShape::kDenseTies, DeltaShape::kSparseFarFuture, DeltaShape::kWraparound}) {
      ASSERT_NO_FATAL_FAILURE(differential_queue_round(GetParam(), tie, delta, steps))
          << "tie=" << static_cast<int>(tie) << " delta=" << static_cast<int>(delta);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::ValuesIn(sharded_seeds({11, 137, 4099})));

// --- TLB internal consistency under random ops ---

class TlbFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TlbFuzz, IndexStaysConsistent) {
  Xoshiro256 rng(GetParam());
  Tlb tlb(64);
  std::map<std::tuple<std::uint16_t, std::uint16_t, std::uint64_t>, std::uint64_t> oracle;

  for (int step = 0, steps = fuzz_steps(6000); step < steps; ++step) {
    const auto vpid = static_cast<std::uint16_t>(rng.next_in(1, 3));
    const auto pcid = static_cast<std::uint16_t>(rng.next_in(1, 4));
    const std::uint64_t vpn = rng.next_below(128);
    const double draw = rng.next_double();
    if (draw < 0.5) {
      PteFlags flags = PteFlags::rw_user();
      flags.global = rng.next_bool(0.1);
      tlb.insert(vpid, pcid, vpn, Pte::make(step, flags));
    } else if (draw < 0.7) {
      (void)tlb.lookup(vpid, pcid, vpn);
    } else if (draw < 0.8) {
      tlb.flush_page(vpid, pcid, vpn);
    } else if (draw < 0.9) {
      tlb.flush_pcid(vpid, pcid);
    } else if (draw < 0.97) {
      tlb.flush_vpid(vpid);
    } else {
      tlb.flush_all();
    }
    // Core invariants: entry count bounded by capacity; a hit after insert
    // without intervening flush returns the inserted frame.
    ASSERT_LE(tlb.valid_entries(), tlb.capacity());
  }
  (void)oracle;

  // Deterministic end-to-end check: fresh insert then immediate hit.
  tlb.insert(1, 1, 5, Pte::make(4242, PteFlags::rw_user()));
  const auto hit = tlb.lookup(1, 1, 5);
  ASSERT_TRUE(hit.hit);
  EXPECT_EQ(hit.frame, 4242u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TlbFuzz,
                         ::testing::ValuesIn(sharded_seeds({5, 25, 125})));

// --- VMCS merge over random values ---

TEST(VmcsFuzz, MergeNeverMixesGuestAndHostFields) {
  Xoshiro256 rng(99);
  for (int round = 0; round < 200; ++round) {
    Vmcs vmcs12;
    Vmcs vmcs01;
    Vmcs vmcs02;
    for (std::size_t i = 0; i < kVmcsFieldCount; ++i) {
      vmcs12.write(static_cast<VmcsField>(i), rng.next());
      vmcs01.write(static_cast<VmcsField>(i), rng.next());
    }
    merge_vmcs02(vmcs12, vmcs01, vmcs02);
    for (VmcsField field : kVmcs12MergedFields) {
      ASSERT_EQ(vmcs02.peek(field), vmcs12.peek(field));
    }
    for (VmcsField field : kVmcs01HostFields) {
      ASSERT_EQ(vmcs02.peek(field), vmcs01.peek(field));
    }
  }
}

// --- Simulation misuse guards ---

TEST(SimulationGuards, SpawnEmptyTaskThrows) {
  Simulation sim;
  EXPECT_THROW(sim.spawn(Task<void>()), std::invalid_argument);
}

TEST(SimulationGuards, SchedulingInThePastThrows) {
  Simulation sim;
  sim.spawn([](Simulation& s) -> Task<void> { co_await s.delay(100); }(sim));
  sim.run();
  EXPECT_EQ(sim.now(), 100u);
  EXPECT_THROW(sim.schedule(std::noop_coroutine(), 50), std::logic_error);
}

TEST(SimulationGuards, RunUntilAdvancesClockToDeadlineWhenIdle) {
  Simulation sim;
  sim.run_until(5000);
  EXPECT_EQ(sim.now(), 5000u);
}

TEST(TaskSemantics, MoveTransfersOwnership) {
  Simulation sim;
  auto make = [](Simulation& s) -> Task<void> { co_await s.delay(1); };
  Task<void> a = make(sim);
  EXPECT_TRUE(a.valid());
  Task<void> b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  sim.spawn(std::move(b));
  EXPECT_FALSE(b.valid());
  sim.run();
  EXPECT_TRUE(sim.all_tasks_done());
}

TEST(IoDeviceTest, QueueDepthBoundsConcurrentService) {
  Simulation sim;
  CostModel costs;
  IoDevice device(sim, costs, "dev", /*queue_depth=*/2);
  std::vector<SimTime> done(4, 0);
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](Simulation& s, IoDevice& d, SimTime* out) -> Task<void> {
      ScopedResource slot = co_await d.queue().scoped();
      co_await s.delay(d.service_time(0));
      *out = s.now();
    }(sim, device, &done[i]));
  }
  sim.run();
  // Two waves of two: 25us and 50us.
  EXPECT_EQ(done[0], costs.io_request_service);
  EXPECT_EQ(done[1], costs.io_request_service);
  EXPECT_EQ(done[2], 2 * costs.io_request_service);
  EXPECT_EQ(done[3], 2 * costs.io_request_service);
}

}  // namespace
}  // namespace pvm
