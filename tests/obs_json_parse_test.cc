// Adversarial corpus for obs::json_parse: every malformed document must
// produce a clean (false, error-with-offset) return — never a crash, hang,
// or a silently wrong value. The parser reads benchdiff/pvm-matrix inputs
// straight from disk, so hostile/truncated bytes are a normal input class.

#include <gtest/gtest.h>

#include <string>

#include "src/obs/json_parse.h"

namespace pvm::obs {
namespace {

// Expect a parse failure with a non-empty diagnostic.
void expect_rejected(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(json_parse(text, &value, &error)) << "input: " << text;
  EXPECT_FALSE(error.empty()) << "input: " << text;
}

TEST(JsonParseAdversarial, TruncatedDocuments) {
  for (const char* text :
       {"", "{", "[", "{\"a\"", "{\"a\":", "{\"a\":1", "{\"a\":1,", "[1,",
        "[1, 2", "tru", "fals", "nul", "-", "1e", "\"", "{\"a\": {\"b\": 1}"}) {
    expect_rejected(text);
  }
}

TEST(JsonParseAdversarial, UnterminatedStrings) {
  expect_rejected("\"abc");
  expect_rejected("\"abc\\");
  expect_rejected("{\"key");
  expect_rejected("{\"key\\\"");          // escaped quote, still unterminated
  expect_rejected("[\"a\", \"b]");
  expect_rejected("\"ends with escape \\");
}

TEST(JsonParseAdversarial, BadEscapes) {
  expect_rejected("\"\\x41\"");    // unknown escape
  expect_rejected("\"\\q\"");
  expect_rejected("\"\\u12\"");    // truncated \u
  expect_rejected("\"\\u12g4\"");  // non-hex digit
  expect_rejected("\"\\u\"");
}

TEST(JsonParseAdversarial, DeepNestingIsBoundedNotStackOverflow) {
  // Past the parser's depth cap the document is rejected with a clean
  // error; a recursive-descent parser without the cap would smash the
  // stack long before 100k frames.
  std::string deep;
  for (int i = 0; i < 100000; ++i) {
    deep += '[';
  }
  expect_rejected(deep);

  std::string deep_objects;
  for (int i = 0; i < 100000; ++i) {
    deep_objects += "{\"k\":";
  }
  expect_rejected(deep_objects);

  // At a comfortable depth the same shape parses fine.
  std::string shallow(64, '[');
  shallow += std::string(64, ']');
  JsonValue value;
  std::string error;
  EXPECT_TRUE(json_parse(shallow, &value, &error)) << error;
}

TEST(JsonParseAdversarial, NumericOverflowRejected) {
  expect_rejected("1e999");
  expect_rejected("-1e999");
  expect_rejected("[1, 2, 1e999]");
  expect_rejected("{\"v\": 1e400}");
  // Subnormal underflow is representable (rounds toward zero) — not an
  // error, just tiny.
  JsonValue value;
  std::string error;
  ASSERT_TRUE(json_parse("1e-999", &value, &error)) << error;
  EXPECT_TRUE(value.is_number());
  EXPECT_GE(value.number, 0.0);
}

TEST(JsonParseAdversarial, MalformedNumbers) {
  expect_rejected("1.2.3");
  expect_rejected("--1");
  expect_rejected("+1");
  expect_rejected("0x10");
  expect_rejected("1e+e");
  expect_rejected("nan");
  expect_rejected("Infinity");
}

TEST(JsonParseAdversarial, TrailingGarbage) {
  expect_rejected("{} {}");
  expect_rejected("1 2");
  expect_rejected("null,");
  expect_rejected("[1]]");
}

TEST(JsonParseAdversarial, DuplicateKeysKeepFirstForLookup) {
  // RFC 8259 leaves duplicate-key behavior unspecified; this parser keeps
  // every member in insertion order and find() returns the first, so a
  // malicious duplicate cannot shadow the value a checker already saw.
  JsonValue value;
  std::string error;
  ASSERT_TRUE(json_parse("{\"a\": 1, \"a\": 2}", &value, &error)) << error;
  ASSERT_TRUE(value.is_object());
  EXPECT_EQ(value.object.size(), 2u);
  const JsonValue* first = value.find("a");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->number, 1.0);
}

TEST(JsonParseAdversarial, ErrorsCarryByteOffsets) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(json_parse("{\"a\": tru}", &value, &error));
  EXPECT_NE(error.find("offset"), std::string::npos);
}

}  // namespace
}  // namespace pvm::obs
