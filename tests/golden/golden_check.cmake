# Golden byte-identity harness for the simulator-core overhaul.
#
# Every deterministic artifact the repo ships — bench JSON exports, the
# simcheck sweep report, postmortem dumps — must be byte-identical across
# the calendar-queue/slab-allocator swap and across worker counts. These
# checks run a binary against the checked-in goldens with `cmake -E
# compare_files` (exact bytes, no tolerance).
#
# Invoked as a ctest entry:
#
#   cmake -DCASE=<table0|fig10|simcheck> -DBIN=<binary> -DJOBS=<n>
#         -DGOLDEN_DIR=<srcdir>/tests/golden -DWORK_DIR=<scratch>
#         -P golden_check.cmake
#
# Cases:
#   pvmtop    pvm-top over the checked-in pvm.timeseries.v1 fixture, vs
#             pvm_top_fixture.txt (dashboard rendering is part of the
#             deterministic surface)
#   table0    table0_switch_cost --json, vs table0_switch_cost.json
#   fig10     PVM_BENCH_SCALE=0.01 fig10_pagefault_scaling --json, vs the
#             tarball's fig10_pagefault_scaling_scale001.json
#   simcheck  3-seed corrupting sweep (exit 1 expected) from a controlled
#             cwd with a relative --postmortem-dir, at --jobs ${JOBS}:
#             stdout vs simcheck_sweep.txt, postmortem json+txt vs tarball
#
# Regenerating goldens (after an intentional output change):
#   build/bench/table0_switch_cost --json tests/golden/table0_switch_cost.json
#   cd <scratch> && PVM_BENCH_SCALE=0.01 build/bench/fig10_pagefault_scaling \
#       --json fig10_pagefault_scaling_scale001.json
#   cd <scratch> && build/src/check/simcheck --modes pvm --policies fifo \
#       --seeds 3 --debug-corrupt-from-seed 3 \
#       --postmortem-dir golden-postmortems > simcheck_sweep.txt
#   then re-pack fig10 + postmortems: cmake -E tar czf \
#       tests/golden/golden_byte_identity.tar.gz <artifacts>

if(NOT DEFINED CASE OR NOT DEFINED BIN OR NOT DEFINED GOLDEN_DIR OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "golden_check.cmake needs -DCASE -DBIN -DGOLDEN_DIR -DWORK_DIR")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(compare_or_die actual expected what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files "${actual}" "${expected}"
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "golden mismatch (${what}): ${actual} differs from ${expected}")
  endif()
  message(STATUS "byte-identical: ${what}")
endfunction()

# The tarball holds the artifacts too bulky to keep loose (fig10 export,
# postmortem json+txt); extract next to the scratch outputs.
function(extract_tarball)
  file(MAKE_DIRECTORY "${WORK_DIR}/expected")
  execute_process(COMMAND ${CMAKE_COMMAND} -E tar xzf
                          "${GOLDEN_DIR}/golden_byte_identity.tar.gz"
                  WORKING_DIRECTORY "${WORK_DIR}/expected"
                  RESULT_VARIABLE tar_rc)
  if(NOT tar_rc EQUAL 0)
    message(FATAL_ERROR "cannot extract golden_byte_identity.tar.gz")
  endif()
endfunction()

if(CASE STREQUAL "pvmtop")
  # Regenerate both files after an intentional rendering change:
  #   build/src/tools/pvm-matrix --modes pvm,kvm-spt --workloads \
  #       syscall,pagefault --timeseries \
  #       tests/golden/pvm_top_fixture.timeseries.json --out /tmp/m.json
  #   build/src/tools/pvm-top tests/golden/pvm_top_fixture.timeseries.json \
  #       > tests/golden/pvm_top_fixture.txt
  execute_process(COMMAND "${BIN}" "${GOLDEN_DIR}/pvm_top_fixture.timeseries.json"
                  OUTPUT_FILE "${WORK_DIR}/pvm_top.txt"
                  RESULT_VARIABLE rc ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "pvm-top failed (exit ${rc})")
  endif()
  compare_or_die("${WORK_DIR}/pvm_top.txt" "${GOLDEN_DIR}/pvm_top_fixture.txt"
                 "pvm-top dashboard rendering")

elseif(CASE STREQUAL "table0")
  execute_process(COMMAND "${BIN}" --json "${WORK_DIR}/table0.json"
                  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "table0_switch_cost failed (exit ${rc})")
  endif()
  compare_or_die("${WORK_DIR}/table0.json" "${GOLDEN_DIR}/table0_switch_cost.json"
                 "table0 pvm.bench.v1 export")

elseif(CASE STREQUAL "fig10")
  extract_tarball()
  set(ENV{PVM_BENCH_SCALE} "0.01")
  execute_process(COMMAND "${BIN}" --json "${WORK_DIR}/fig10.json"
                  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fig10_pagefault_scaling failed (exit ${rc})")
  endif()
  compare_or_die("${WORK_DIR}/fig10.json"
                 "${WORK_DIR}/expected/fig10_pagefault_scaling_scale001.json"
                 "fig10 scale=0.01 pvm.bench.v1 export")

elseif(CASE STREQUAL "simcheck")
  if(NOT DEFINED JOBS)
    set(JOBS 1)
  endif()
  extract_tarball()
  # Controlled cwd + relative postmortem dir: the postmortem path is echoed
  # into stdout, so an absolute path would make the report machine-specific.
  # --debug-corrupt-from-seed plants a coherence violation at seed 3, so the
  # sweep deliberately fails (exit 1) and emits postmortems — the point is
  # that the failure report itself is byte-stable across jobs counts.
  execute_process(COMMAND "${BIN}" --modes pvm --policies fifo --seeds 3
                          --debug-corrupt-from-seed 3
                          --postmortem-dir golden-postmortems --jobs ${JOBS}
                  WORKING_DIRECTORY "${WORK_DIR}"
                  OUTPUT_FILE "${WORK_DIR}/simcheck_sweep.txt"
                  ERROR_QUIET
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR "simcheck: expected exit 1 (planted failure), got ${rc}")
  endif()
  compare_or_die("${WORK_DIR}/simcheck_sweep.txt" "${GOLDEN_DIR}/simcheck_sweep.txt"
                 "simcheck sweep report, jobs=${JOBS}")
  compare_or_die("${WORK_DIR}/golden-postmortems/postmortem-pvm-fifo-3.json"
                 "${WORK_DIR}/expected/postmortem-pvm-fifo-3.json"
                 "postmortem JSON, jobs=${JOBS}")
  compare_or_die("${WORK_DIR}/golden-postmortems/postmortem-pvm-fifo-3.txt"
                 "${WORK_DIR}/expected/postmortem-pvm-fifo-3.txt"
                 "postmortem timeline, jobs=${JOBS}")

elseif(CASE STREQUAL "fleet")
  # pvm.fleet.v1 byte identity: a 1.2k-launch flashcrowd (ept vs pvm, the
  # Fig. 12 contrast) at --jobs ${JOBS} must match the checked-in fixture
  # exactly — this pins the arrival samplers, the det_* math kernels, the
  # node simulations, and the shard-merge all at once. Regenerate after an
  # intentional output change:
  #   build/src/tools/pvm-fleet --scenario flashcrowd --launches 1200 \
  #       --nodes 4 --out tests/golden/fleet_fixture.json
  if(NOT DEFINED JOBS)
    set(JOBS 1)
  endif()
  execute_process(COMMAND "${BIN}" --scenario flashcrowd --launches 1200
                          --nodes 4 --jobs ${JOBS}
                          --out "${WORK_DIR}/fleet.json"
                  RESULT_VARIABLE rc ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "pvm-fleet failed (exit ${rc})")
  endif()
  compare_or_die("${WORK_DIR}/fleet.json" "${GOLDEN_DIR}/fleet_fixture.json"
                 "pvm.fleet.v1 export, jobs=${JOBS}")

else()
  message(FATAL_ERROR "unknown CASE '${CASE}'")
endif()
