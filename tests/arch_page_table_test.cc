// Unit and property tests for the 4-level page table.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/arch/page_table.h"
#include "src/sim/random.h"

namespace pvm {
namespace {

TEST(PageTableTest, EmptyTableWalksMissAtRoot) {
  PageTable pt("test", nullptr);
  const WalkResult walk = pt.walk(0x1000, AccessType::kRead, true);
  EXPECT_FALSE(walk.present);
  EXPECT_EQ(walk.missing_level, kPageTableLevels);
  EXPECT_EQ(walk.levels_walked, 1);
}

TEST(PageTableTest, MapThenWalkHits) {
  PageTable pt("test", nullptr);
  const MapResult map = pt.map(0x7f0000001000, 0x1234, PteFlags::rw_user());
  EXPECT_EQ(map.nodes_allocated, 3);   // PDPT, PD, PT under the root
  EXPECT_EQ(map.entries_written, 4);   // 3 intermediate installs + leaf
  EXPECT_FALSE(map.replaced);

  const WalkResult walk = pt.walk(0x7f0000001000, AccessType::kWrite, true);
  EXPECT_TRUE(walk.present);
  EXPECT_TRUE(walk.permission_ok);
  EXPECT_EQ(walk.pte.frame_number(), 0x1234u);
  EXPECT_EQ(walk.levels_walked, 4);
}

TEST(PageTableTest, SecondMapInSameLeafNodeWritesOneEntry) {
  PageTable pt("test", nullptr);
  pt.map(0x1000, 1, PteFlags::rw_user());
  const MapResult second = pt.map(0x2000, 2, PteFlags::rw_user());
  EXPECT_EQ(second.nodes_allocated, 0);
  EXPECT_EQ(second.entries_written, 1);
}

TEST(PageTableTest, RemapReportsReplaced) {
  PageTable pt("test", nullptr);
  pt.map(0x1000, 1, PteFlags::rw_user());
  const MapResult remap = pt.map(0x1000, 2, PteFlags::rw_user());
  EXPECT_TRUE(remap.replaced);
  EXPECT_EQ(pt.present_leaf_count(), 1u);
  EXPECT_EQ(pt.find_pte(0x1000)->frame_number(), 2u);
}

TEST(PageTableTest, PermissionChecks) {
  PageTable pt("test", nullptr);
  pt.map(0x1000, 1, PteFlags::ro_user());
  pt.map(0x2000, 2, PteFlags::rw_kernel());

  EXPECT_TRUE(pt.walk(0x1000, AccessType::kRead, true).permission_ok);
  EXPECT_FALSE(pt.walk(0x1000, AccessType::kWrite, true).permission_ok);
  EXPECT_FALSE(pt.walk(0x2000, AccessType::kRead, true).permission_ok);   // user hits kernel page
  EXPECT_TRUE(pt.walk(0x2000, AccessType::kWrite, false).permission_ok);  // kernel mode ok

  PteFlags nx = PteFlags::rw_user();
  nx.no_execute = true;
  pt.map(0x3000, 3, nx);
  EXPECT_FALSE(pt.walk(0x3000, AccessType::kExecute, true).permission_ok);
  EXPECT_TRUE(pt.walk(0x3000, AccessType::kRead, true).permission_ok);
}

TEST(PageTableTest, UnmapRemovesLeafOnly) {
  PageTable pt("test", nullptr);
  pt.map(0x1000, 1, PteFlags::rw_user());
  pt.map(0x2000, 2, PteFlags::rw_user());
  EXPECT_TRUE(pt.unmap(0x1000));
  EXPECT_FALSE(pt.unmap(0x1000));
  EXPECT_FALSE(pt.walk(0x1000, AccessType::kRead, true).present);
  EXPECT_TRUE(pt.walk(0x2000, AccessType::kRead, true).present);
  // Intermediate nodes are retained.
  const MapResult remap = pt.map(0x1000, 3, PteFlags::rw_user());
  EXPECT_EQ(remap.nodes_allocated, 0);
}

TEST(PageTableTest, UpdatePteMutatesInPlace) {
  PageTable pt("test", nullptr);
  pt.map(0x1000, 1, PteFlags::rw_user());
  std::uint64_t frame = 0;
  EXPECT_TRUE(pt.update_pte(
      0x1000, [](Pte& pte) { pte.set_writable(false); }, &frame));
  EXPECT_FALSE(pt.walk(0x1000, AccessType::kWrite, true).permission_ok);
  EXPECT_TRUE(pt.owns_table_frame(frame));
  EXPECT_FALSE(pt.update_pte(0x999000, [](Pte&) {}));
}

TEST(PageTableTest, ForEachLeafVisitsAllMappings) {
  PageTable pt("test", nullptr);
  std::map<std::uint64_t, std::uint64_t> expected;
  Xoshiro256 rng(42);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t va = rng.next_below(1ull << 40) & ~kPageMask;
    const std::uint64_t frame = rng.next_below(1ull << 30);
    pt.map(va, frame, PteFlags::rw_user());
    expected[va] = frame;
  }
  std::map<std::uint64_t, std::uint64_t> seen;
  pt.for_each_leaf([&](std::uint64_t va, const Pte& pte) { seen[va] = pte.frame_number(); });
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(pt.present_leaf_count(), expected.size());
}

TEST(PageTableTest, TableFramesComeFromAllocator) {
  FrameAllocator alloc("guest", 4096);
  PageTable pt("gpt", &alloc);
  EXPECT_EQ(alloc.allocated(), 1u);  // root
  pt.map(0x1000, 7, PteFlags::rw_user());
  EXPECT_EQ(alloc.allocated(), 4u);  // root + 3 intermediates
  EXPECT_EQ(pt.node_count(), 4u);
}

TEST(PageTableTest, ClearReleasesAllButRoot) {
  FrameAllocator alloc("guest", 4096);
  PageTable pt("gpt", &alloc);
  for (std::uint64_t va = 0; va < 64 * kPageSize; va += kPageSize) {
    pt.map(va, va >> kPageShift, PteFlags::rw_user());
  }
  pt.clear();
  EXPECT_EQ(pt.node_count(), 1u);
  EXPECT_EQ(pt.present_leaf_count(), 0u);
  EXPECT_EQ(alloc.allocated(), 1u);
  EXPECT_FALSE(pt.walk(0, AccessType::kRead, true).present);
  // Table is usable again after clear.
  pt.map(0x5000, 9, PteFlags::rw_user());
  EXPECT_TRUE(pt.walk(0x5000, AccessType::kRead, true).present);
}

TEST(PageTableTest, DestructorReturnsFramesToAllocator) {
  FrameAllocator alloc("guest", 4096);
  {
    PageTable pt("gpt", &alloc);
    pt.map(0x1000, 1, PteFlags::rw_user());
    EXPECT_GT(alloc.allocated(), 0u);
  }
  EXPECT_EQ(alloc.allocated(), 0u);
}

TEST(PageTableTest, WalkReportsNodeFrames) {
  PageTable pt("gpt", nullptr);
  pt.map(0x1000, 1, PteFlags::rw_user());
  const WalkResult walk = pt.walk(0x1000, AccessType::kRead, true);
  ASSERT_EQ(walk.levels_walked, 4);
  EXPECT_EQ(walk.node_frames[0], pt.root_frame());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(pt.owns_table_frame(walk.node_frames[i]));
  }
}

TEST(PteTest, RoundTripFlags) {
  PteFlags flags;
  flags.present = true;
  flags.writable = true;
  flags.user = true;
  flags.global = true;
  flags.cow = true;
  flags.shadow_wp = true;
  flags.no_execute = true;
  const Pte pte = Pte::make(0xabcdef, flags);
  EXPECT_EQ(pte.frame_number(), 0xabcdefull);
  const PteFlags out = pte.flags();
  EXPECT_TRUE(out.present && out.writable && out.user && out.global && out.cow &&
              out.shadow_wp && out.no_execute);
  EXPECT_FALSE(out.accessed);
  EXPECT_FALSE(out.dirty);
}

TEST(FrameAllocatorTest, ExhaustionAndReuse) {
  FrameAllocator alloc("tiny", 2);
  const auto a = alloc.allocate();
  const auto b = alloc.allocate();
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  EXPECT_FALSE(alloc.allocate().has_value());
  EXPECT_THROW(alloc.allocate_or_throw(), std::runtime_error);
  alloc.free(*a);
  const auto c = alloc.allocate();
  ASSERT_TRUE(c);
  EXPECT_EQ(*c, *a);
}

// Property sweep: map a batch of random pages, then every mapped page walks
// to its frame and every unmapped probe misses, across several table shapes.
class PageTablePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PageTablePropertyTest, MappedPagesTranslateUnmappedMiss) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  PageTable pt("prop", nullptr);
  std::map<std::uint64_t, std::uint64_t> truth;
  const int count = 200 + static_cast<int>(seed % 300);
  for (int i = 0; i < count; ++i) {
    const std::uint64_t va = (rng.next_below(1ull << 47)) & ~kPageMask;
    const std::uint64_t frame = rng.next_below(1ull << 35);
    pt.map(va, frame, PteFlags::rw_user());
    truth[va] = frame;
  }
  for (const auto& [va, frame] : truth) {
    const WalkResult walk = pt.walk(va, AccessType::kRead, true);
    ASSERT_TRUE(walk.present) << "va=" << va;
    ASSERT_EQ(walk.pte.frame_number(), frame);
  }
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t va = (rng.next_below(1ull << 47)) & ~kPageMask;
    if (truth.count(va) == 0) {
      ASSERT_FALSE(pt.walk(va, AccessType::kRead, true).present);
    }
  }
  // Unmap half, verify the other half still translates.
  std::size_t index = 0;
  for (const auto& [va, frame] : truth) {
    if (index++ % 2 == 0) {
      ASSERT_TRUE(pt.unmap(va));
    }
  }
  index = 0;
  for (const auto& [va, frame] : truth) {
    const bool removed = index++ % 2 == 0;
    ASSERT_EQ(pt.walk(va, AccessType::kRead, true).present, !removed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTablePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace pvm
