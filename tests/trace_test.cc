// Tests for the protocol trace log.

#include <gtest/gtest.h>

#include "src/trace/trace.h"

namespace pvm {
namespace {

TEST(TraceLogTest, DisabledByDefault) {
  TraceLog log;
  log.emit(1, TraceActor::kL0Hypervisor, "should be dropped");
  EXPECT_EQ(log.size(), 0u);
}

TEST(TraceLogTest, RecordsWhenEnabled) {
  TraceLog log;
  log.set_enabled(true);
  log.emit(10, TraceActor::kL2User, "#PF");
  log.emit(20, TraceActor::kSwitcher, "vm exit");
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.records()[0].text(), "#PF");
  EXPECT_EQ(log.records()[1].actor, TraceActor::kSwitcher);
}

TEST(TraceLogTest, MessagesForActorFilters) {
  TraceLog log;
  log.set_enabled(true);
  log.emit(1, TraceActor::kL1Hypervisor, "a");
  log.emit(2, TraceActor::kL0Hypervisor, "b");
  log.emit(3, TraceActor::kL1Hypervisor, "c");
  EXPECT_EQ(log.messages_for(TraceActor::kL1Hypervisor),
            (std::vector<std::string>{"a", "c"}));
}

TEST(TraceLogTest, ContainsSequence) {
  TraceLog log;
  log.set_enabled(true);
  log.emit(1, TraceActor::kL2User, "#PF");
  log.emit(2, TraceActor::kL0Hypervisor, "exit");
  log.emit(3, TraceActor::kL0Hypervisor, "inject #PF");
  log.emit(4, TraceActor::kL1Hypervisor, "resume L2");
  EXPECT_TRUE(log.contains_sequence({"#PF", "inject #PF", "resume L2"}));
  EXPECT_FALSE(log.contains_sequence({"resume L2", "#PF"}));
  EXPECT_TRUE(log.contains_sequence({}));
}

TEST(TraceLogTest, RingBufferDropsOldest) {
  TraceLog log(3);
  log.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    log.emit(i, TraceActor::kHardware, std::to_string(i));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.records().front().text(), "2");
}

TEST(TraceLogTest, RenderIncludesActorsAndSteps) {
  TraceLog log;
  log.set_enabled(true);
  log.emit(5, TraceActor::kL0Hypervisor, "update VMCS02");
  const std::string out = log.render();
  EXPECT_NE(out.find("1. "), std::string::npos);
  EXPECT_NE(out.find("L0-hv"), std::string::npos);
  EXPECT_NE(out.find("update VMCS02"), std::string::npos);
}

TEST(TraceLogTest, RenderReportsDroppedTrailer) {
  TraceLog log(2);
  log.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    log.emit(i, TraceActor::kHardware, std::to_string(i));
  }
  EXPECT_NE(log.render().find("(3 earlier records dropped)"), std::string::npos);
}

TEST(TraceLogTest, ClearResets) {
  TraceLog log(2);
  log.set_enabled(true);
  log.emit(1, TraceActor::kHardware, "x");
  log.emit(2, TraceActor::kHardware, "y");
  log.emit(3, TraceActor::kHardware, "z");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(TraceLogTest, ActorNamesDistinct) {
  EXPECT_EQ(trace_actor_name(TraceActor::kL2User), "L2-user");
  EXPECT_EQ(trace_actor_name(TraceActor::kL2Kernel), "L2-kernel");
  EXPECT_EQ(trace_actor_name(TraceActor::kSwitcher), "switcher");
  EXPECT_EQ(trace_actor_name(TraceActor::kL1Hypervisor), "L1-hv");
  EXPECT_EQ(trace_actor_name(TraceActor::kL0Hypervisor), "L0-hv");
  EXPECT_EQ(trace_actor_name(TraceActor::kHardware), "hw");
}

}  // namespace
}  // namespace pvm
