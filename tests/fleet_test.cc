// Fleet-level behavior of pvm::fleet — above all the Fig. 12 contrast at
// region scale: under a flash-crowd bootstorm, a kvm-ept (NST) fleet
// OOM-crashes launches because L1 cannot reclaim EPT12 backing, while the
// pvm fleet sheds the same load by reclaiming cold shadow pages and
// restoring sandboxes from the wal snapshot template — zero crashes and a
// bounded boot tail. The test asserts the *differential*, not absolute
// numbers, so it survives calibration changes that move both modes.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/fleet/fleet.h"
#include "src/obs/json_parse.h"
#include "src/obs/ts.h"

namespace pvm::fleet {
namespace {

// The pvm-fleet "flashcrowd" scenario, sized to the smallest configuration
// that reliably exhausts the ept nodes (2000 launches across 2 hosts).
FleetSpec flashcrowd_spec() {
  FleetSpec spec;
  spec.arrival.kind = ArrivalKind::kBurst;
  spec.arrival.rate_per_sec = 1000.0;
  spec.arrival.burst_factor = 10.0;
  spec.arrival.burst_every_ns = 2'000'000'000ull;
  spec.arrival.burst_len_ns = 250'000'000ull;
  spec.fault_plan = "bootstorm";
  spec.launches = 2000;
  spec.nodes = 2;
  spec.modes = {DeployMode::kKvmEptNst, DeployMode::kPvmNst};
  return spec;
}

std::uint64_t total(const ts::TsDoc& doc, const std::string& name) {
  const auto it = doc.series.find(name);
  return it == doc.series.end() ? 0 : it->second.total;
}

TEST(FleetTest, Fig12AtScaleEptCrashesWherePvmServes) {
  const FleetSpec spec = flashcrowd_spec();
  const FleetResult result = run_fleet(spec, 2, {});
  ASSERT_EQ(result.groups.size(), 2u);
  const FleetGroup& ept = result.groups[0];
  const FleetGroup& pvm = result.groups[1];
  ASSERT_EQ(ept.mode, DeployMode::kKvmEptNst);
  ASSERT_EQ(pvm.mode, DeployMode::kPvmNst);
  for (const FleetGroup& group : result.groups) {
    for (const NodeOutcome& node : group.nodes) {
      ASSERT_TRUE(node.ok) << node.error;
    }
  }

  // The headline differential: the ept fleet OOM-kills strictly more
  // launches than pvm (which must stay clean), and loses completions.
  const std::uint64_t ept_oom = total(ept.rollup, "fleet/oom_kills");
  const std::uint64_t pvm_oom = total(pvm.rollup, "fleet/oom_kills");
  EXPECT_GT(ept_oom, pvm_oom);
  EXPECT_EQ(pvm_oom, 0u);
  EXPECT_GT(total(ept.rollup, "fleet/crashes"), 0u);
  EXPECT_EQ(total(pvm.rollup, "fleet/crashes"), 0u);
  EXPECT_EQ(total(pvm.rollup, "fleet/completions"), spec.launches);
  EXPECT_LT(total(ept.rollup, "fleet/completions"), spec.launches);

  // pvm keeps the boot tail bounded: start P99 within the start deadline.
  const auto it = pvm.rollup.hists.find("fleet/start_ns");
  ASSERT_NE(it, pvm.rollup.hists.end());
  const ts::MergeableHistogram starts = it->second.cumulative();
  ASSERT_GT(starts.count(), 0u);
  EXPECT_LE(starts.quantile(0.99),
            static_cast<double>(spec.deadline_ns));

  // Launch accounting closes on both sides: every arrival either
  // completed or crashed (OOM, deadline, or starved-in-queue).
  for (const FleetGroup& group : result.groups) {
    EXPECT_EQ(total(group.rollup, "fleet/completions") +
                  total(group.rollup, "fleet/crashes"),
              spec.launches)
        << deploy_mode_token(group.mode);
  }
}

TEST(FleetTest, SnapshotRestoreOnlyOnShadowPagingModes) {
  FleetSpec spec = flashcrowd_spec();
  spec.launches = 600;  // enough to exercise the warm/restore paths
  const FleetResult result = run_fleet(spec, 2, {});
  const FleetGroup& ept = result.groups[0];
  const FleetGroup& pvm = result.groups[1];

  // pvm checkpoints the template through the wal and restores from it.
  for (const NodeOutcome& node : pvm.nodes) {
    EXPECT_GT(node.snapshot_bytes, 0u) << "pvm node " << node.node;
    EXPECT_GT(node.snapshot_records, 0u) << "pvm node " << node.node;
  }
  EXPECT_GT(total(pvm.rollup, "fleet/restore_starts"), 0u);

  // ept has no shadow engine, so no snapshot: every miss is a full boot.
  for (const NodeOutcome& node : ept.nodes) {
    EXPECT_EQ(node.snapshot_bytes, 0u) << "ept node " << node.node;
  }
  EXPECT_EQ(total(ept.rollup, "fleet/restore_starts"), 0u);
  EXPECT_GT(total(ept.rollup, "fleet/cold_starts"), 0u);

  // --no-restore flattens pvm back to cold boots.
  FleetSpec cold = spec;
  cold.snapshot_restore = false;
  cold.modes = {DeployMode::kPvmNst};
  const FleetResult cold_result = run_fleet(cold, 2, {});
  EXPECT_EQ(total(cold_result.groups[0].rollup, "fleet/restore_starts"), 0u);
  EXPECT_GT(total(cold_result.groups[0].rollup, "fleet/cold_starts"), 0u);
}

TEST(FleetTest, SloGateSeparatesTheModes) {
  const FleetSpec spec = flashcrowd_spec();
  std::vector<ts::SloSpec> slos;
  std::string error;
  ts::SloSpec slo;
  ASSERT_TRUE(ts::parse_slo_spec("oom-pvm:pvm/fleet/oom_kills:total<=0",
                                 &slo, &error))
      << error;
  slos.push_back(slo);
  ASSERT_TRUE(ts::parse_slo_spec("oom-ept:ept/fleet/oom_kills:total<=0",
                                 &slo, &error))
      << error;
  slos.push_back(slo);

  const FleetResult result = run_fleet(spec, 2, slos);
  ASSERT_EQ(result.slos.size(), 2u);
  bool saw_pvm = false, saw_ept = false;
  for (const ts::SloResult& verdict : result.slos) {
    if (verdict.name == "oom-pvm") {
      EXPECT_TRUE(verdict.pass) << verdict.metric;
      saw_pvm = true;
    } else if (verdict.name == "oom-ept") {
      EXPECT_FALSE(verdict.pass) << verdict.metric;
      saw_ept = true;
    }
  }
  EXPECT_TRUE(saw_pvm);
  EXPECT_TRUE(saw_ept);
}

TEST(FleetTest, RenderedDocumentIsValidFleetV1) {
  FleetSpec spec = flashcrowd_spec();
  spec.launches = 300;
  const FleetResult result = run_fleet(spec, 2, {});
  const std::string document = render_fleet_json(spec, result);

  obs::JsonValue root;
  std::string error;
  ASSERT_TRUE(obs::json_parse(document, &root, &error)) << error;
  ASSERT_NE(root.find("schema"), nullptr);
  EXPECT_EQ(root.find("schema")->string, kFleetSchemaVersion);
  ASSERT_NE(root.find("groups"), nullptr);
  ASSERT_EQ(root.find("groups")->array.size(), 2u);
  for (const obs::JsonValue& group : root.find("groups")->array) {
    ASSERT_NE(group.find("rollup"), nullptr);
    ASSERT_NE(group.find("nodes"), nullptr);
    ASSERT_EQ(group.find("nodes")->array.size(), spec.nodes);
    for (const obs::JsonValue& node : group.find("nodes")->array) {
      // Each node cell embeds its own pvm.bench.v1 document.
      const obs::JsonValue* bench = node.find("bench");
      ASSERT_NE(bench, nullptr);
      ASSERT_NE(bench->find("schema"), nullptr);
      EXPECT_EQ(bench->find("schema")->string, "pvm.bench.v1");
    }
  }
  // Spec round-trip: the embedded arrival spec re-parses to the input.
  const obs::JsonValue* spec_obj = root.find("spec");
  ASSERT_NE(spec_obj, nullptr);
  ArrivalSpec parsed;
  ASSERT_TRUE(parse_arrival_spec(spec_obj->find("arrival")->string, &parsed,
                                 &error))
      << error;
  EXPECT_EQ(parsed, spec.arrival);
}

TEST(FleetTest, RejectsDegenerateSpecs) {
  FleetSpec no_nodes = flashcrowd_spec();
  no_nodes.nodes = 0;
  EXPECT_THROW(run_fleet(no_nodes, 1, {}), std::invalid_argument);

  FleetSpec no_modes = flashcrowd_spec();
  no_modes.modes.clear();
  EXPECT_THROW(run_fleet(no_modes, 1, {}), std::invalid_argument);

  // A malformed fault plan is a per-node failure, not a fleet abort: the
  // document still renders, with the parse error recorded on every cell.
  FleetSpec bad_plan = flashcrowd_spec();
  bad_plan.launches = 50;
  bad_plan.fault_plan = "bootstorm:sneed=7";
  const FleetResult result = run_fleet(bad_plan, 1, {});
  for (const FleetGroup& group : result.groups) {
    for (const NodeOutcome& node : group.nodes) {
      EXPECT_FALSE(node.ok);
      EXPECT_FALSE(node.error.empty());
    }
  }
}

}  // namespace
}  // namespace pvm::fleet
