// pvm::prof unit tests: the critical-path fold over hand-built recorder
// streams, lock-wait naming, cross-track migration attribution, the tail
// cohort, merge order-independence, and render/parse round-trip identity.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "src/obs/prof.h"
#include "src/obs/span.h"

namespace pvm {
namespace {

using obs::Phase;
using obs::SpanRecorder;

// Drives a SpanRecorder with a hand-cranked virtual clock and active root —
// the same binding Simulation::set_spans performs, minus the simulator.
struct Rig {
  std::uint64_t now = 0;
  std::int64_t root = 0;
  SpanRecorder rec;

  Rig() {
    rec.bind(&now, &root);
    rec.set_enabled(true);
  }

  SpanRecorder::Token begin(Phase phase) { return rec.begin(phase); }
  void end(SpanRecorder::Token token) { rec.end(token); }
};

const prof::OpProfile& only_op(const prof::ProfDoc& doc, const std::string& key) {
  const auto it = doc.ops.find(key);
  EXPECT_NE(it, doc.ops.end()) << "missing op " << key;
  static const prof::OpProfile empty;
  return it == doc.ops.end() ? empty : it->second;
}

TEST(ProfFold, DecomposesExclusiveTimePerPath) {
  Rig rig;
  // op.page_fault [0, 100): spt_fill [10, 70) with lock_wait [20, 50) inside.
  auto op = rig.begin(Phase::kOpPageFault);
  rig.now = 10;
  auto fill = rig.begin(Phase::kSptFill);
  rig.now = 20;
  auto wait = rig.begin(Phase::kLockWait);
  rig.now = 50;
  rig.rec.end_lock_wait(wait, "mmu_lock");
  rig.now = 70;
  rig.end(fill);
  rig.now = 100;
  rig.end(op);

  const prof::ProfDoc doc = prof::fold_profile(rig.rec);
  ASSERT_EQ(doc.ops.size(), 1u);
  const prof::OpProfile& pf = only_op(doc, "op.page_fault");
  EXPECT_EQ(pf.latency.count(), 1u);
  EXPECT_EQ(pf.latency.sum(), 100u);
  // Exclusive decomposition: 100 total = 40 root + 30 fill + 30 lock wait.
  EXPECT_EQ(pf.paths.at("op.page_fault").exclusive_ns, 40u);
  EXPECT_EQ(pf.paths.at("op.page_fault;spt_fill").exclusive_ns, 30u);
  EXPECT_EQ(pf.paths.at("op.page_fault;spt_fill;lock_wait:mmu_lock").exclusive_ns, 30u);
  std::uint64_t total = 0;
  for (const auto& [path, stat] : pf.paths) {
    total += stat.exclusive_ns;
  }
  EXPECT_EQ(total, 100u);  // no nanosecond lost or double-counted
  EXPECT_EQ(pf.worst_ns, 100u);
  EXPECT_EQ(pf.worst_begin_ns, 0u);
  EXPECT_EQ(pf.worst_track, 0);
}

TEST(ProfFold, NamesLockWaitsViaMirrorRecords) {
  Rig rig;
  auto op = rig.begin(Phase::kOpSyscall);
  rig.now = 5;
  auto wait_a = rig.begin(Phase::kLockWait);
  rig.now = 15;
  rig.rec.end_lock_wait(wait_a, "pt_lock");
  rig.now = 20;
  auto wait_b = rig.begin(Phase::kLockWait);
  rig.now = 21;
  rig.end(wait_b);  // anonymous wait: no mirror, keeps the bare phase name
  rig.now = 30;
  rig.end(op);

  const prof::ProfDoc doc = prof::fold_profile(rig.rec);
  const prof::OpProfile& pf = only_op(doc, "op.syscall");
  EXPECT_TRUE(pf.paths.contains("op.syscall;lock_wait:pt_lock"));
  EXPECT_TRUE(pf.paths.contains("op.syscall;lock_wait"));
  EXPECT_EQ(pf.paths.at("op.syscall;lock_wait:pt_lock").exclusive_ns, 10u);
}

TEST(ProfFold, RedirectsDirtyTrackingIntoOverlappingMigration) {
  Rig rig;
  // Track 0: op.migration [0, 1000). Track 1: one dirty_track span inside the
  // migration window and one after it; only the first is redirected.
  auto mig = rig.begin(Phase::kOpMigration);

  rig.root = 1;
  rig.now = 100;
  auto op = rig.begin(Phase::kOpPageFault);
  rig.now = 150;
  auto dirty = rig.begin(Phase::kDirtyTrack);
  rig.now = 170;
  rig.end(dirty);
  rig.now = 200;
  rig.end(op);

  rig.root = 0;
  rig.now = 1000;
  rig.end(mig);

  rig.root = 1;
  rig.now = 1100;
  auto late_op = rig.begin(Phase::kOpPageFault);
  rig.now = 1150;
  auto late_dirty = rig.begin(Phase::kDirtyTrack);
  rig.now = 1180;
  rig.end(late_dirty);
  rig.now = 1200;
  rig.end(late_op);

  const prof::ProfDoc doc = prof::fold_profile(rig.rec);
  const prof::OpProfile& mig_pf = only_op(doc, "op.migration");
  const prof::OpProfile& fault_pf = only_op(doc, "op.page_fault");

  // The in-window dirty span (20 ns) moved to the migration op's profile...
  ASSERT_TRUE(mig_pf.paths.contains("op.migration;dirty_track"));
  EXPECT_EQ(mig_pf.paths.at("op.migration;dirty_track").exclusive_ns, 20u);
  // ...as paths only: the migration's latency histogram stays one instance.
  EXPECT_EQ(mig_pf.latency.count(), 1u);
  // The in-window fault no longer carries the dirty_track path; only the
  // out-of-window span's 30 ns remain under op.page_fault. Both instances'
  // latencies are untouched (100 ns each).
  ASSERT_TRUE(fault_pf.paths.contains("op.page_fault;dirty_track"));
  EXPECT_EQ(fault_pf.paths.at("op.page_fault;dirty_track").exclusive_ns, 30u);
  EXPECT_EQ(fault_pf.paths.at("op.page_fault;dirty_track").count, 1u);
  EXPECT_EQ(fault_pf.latency.count(), 2u);
  // The out-of-window dirty span stays charged to its own op.
  std::uint64_t fault_excl = 0;
  for (const auto& [path, stat] : fault_pf.paths) {
    fault_excl += stat.exclusive_ns;
  }
  // 2 faults x 100 ns, minus the 20 ns redirected to the migration.
  EXPECT_EQ(fault_excl, 180u);
}

TEST(ProfFold, TailCohortIsolatesSlowInstances) {
  Rig rig;
  // 100 fast ops (16 ns, pure root) and one slow op (1000 ns, all lock wait).
  // 16 ns lands in histogram bucket [16, 17], so the fold-time p99 threshold
  // (the bucket's upper bound, 17) strictly exceeds the fast latency — the
  // tail cohort is exactly the slow instance.
  for (int i = 0; i < 100; ++i) {
    auto op = rig.begin(Phase::kOpGptStore);
    rig.now += 16;
    rig.end(op);
  }
  auto slow = rig.begin(Phase::kOpGptStore);
  auto wait = rig.begin(Phase::kLockWait);
  rig.now += 1000;
  rig.rec.end_lock_wait(wait, "mmu_lock");
  rig.end(slow);

  const prof::ProfDoc doc = prof::fold_profile(rig.rec);
  const prof::OpProfile& pf = only_op(doc, "op.gpt_store");
  EXPECT_EQ(pf.latency.count(), 101u);
  EXPECT_GT(pf.tail_threshold_ns, 16u);
  // The tail cohort is the slow instance alone: all lock wait, no fast roots.
  ASSERT_TRUE(pf.tail_paths.contains("op.gpt_store;lock_wait:mmu_lock"));
  EXPECT_EQ(pf.tail_paths.at("op.gpt_store;lock_wait:mmu_lock").exclusive_ns, 1000u);
  const auto root_tail = pf.tail_paths.find("op.gpt_store");
  if (root_tail != pf.tail_paths.end()) {
    EXPECT_EQ(root_tail->second.exclusive_ns, 0u);
  }
  EXPECT_EQ(pf.worst_ns, 1000u);
}

TEST(ProfFold, FirstSpanOffsetFoldsOnlyTheIncrement) {
  Rig rig;
  auto op1 = rig.begin(Phase::kOpSyscall);
  rig.now = 10;
  rig.end(op1);
  const std::size_t cut = rig.rec.spans().size();

  rig.now = 20;
  auto op2 = rig.begin(Phase::kOpSyscall);
  rig.now = 50;
  rig.end(op2);

  const prof::ProfDoc inc_doc = prof::fold_profile(rig.rec, cut);
  const prof::OpProfile& inc = only_op(inc_doc, "op.syscall");
  EXPECT_EQ(inc.latency.count(), 1u);
  EXPECT_EQ(inc.latency.sum(), 30u);

  const prof::ProfDoc full_doc = prof::fold_profile(rig.rec);
  const prof::OpProfile& full = only_op(full_doc, "op.syscall");
  EXPECT_EQ(full.latency.count(), 2u);
}

prof::ProfDoc sample_doc(std::uint64_t scale) {
  Rig rig;
  auto op = rig.begin(Phase::kOpPageFault);
  rig.now = 10 * scale;
  auto fill = rig.begin(Phase::kEptFill);
  rig.now = 40 * scale;
  rig.end(fill);
  rig.now = 100 * scale;
  rig.end(op);
  return prof::fold_profile(rig.rec);
}

TEST(ProfDoc, MergeIsOrderIndependent) {
  const prof::ProfDoc a = sample_doc(1);
  const prof::ProfDoc b = sample_doc(7);

  prof::ProfDoc ab;
  ASSERT_TRUE(prof::merge_profile(&ab, a, nullptr));
  ASSERT_TRUE(prof::merge_profile(&ab, b, nullptr));
  prof::ProfDoc ba;
  ASSERT_TRUE(prof::merge_profile(&ba, b, nullptr));
  ASSERT_TRUE(prof::merge_profile(&ba, a, nullptr));

  EXPECT_EQ(prof::render_profile_json(ab), prof::render_profile_json(ba));
  const prof::OpProfile& pf = only_op(ab, "op.page_fault");
  EXPECT_EQ(pf.latency.count(), 2u);
  EXPECT_EQ(pf.worst_ns, 700u);
}

TEST(ProfDoc, PrefixNamespacesOpKeys) {
  const prof::ProfDoc doc = prof::prefix_profile(sample_doc(1), "pvm/32p/");
  EXPECT_EQ(doc.ops.size(), 1u);
  EXPECT_TRUE(doc.ops.contains("pvm/32p/op.page_fault"));
  // Paths inside the op keep their raw phase names — the op key carries the
  // coordinate, so collapsed stacks splice it over the path's first frame.
  EXPECT_TRUE(only_op(doc, "pvm/32p/op.page_fault").paths.contains("op.page_fault;ept_fill"));
}

TEST(ProfDoc, RenderParseRoundTripIsByteIdentical) {
  prof::ProfDoc doc = sample_doc(3);
  doc.dropped_spans = 5;
  const std::string first = prof::render_profile_json(doc);

  prof::ProfDoc parsed;
  std::string error;
  ASSERT_TRUE(prof::parse_profile_json(first, &parsed, &error)) << error;
  EXPECT_EQ(parsed, doc);
  EXPECT_EQ(prof::render_profile_json(parsed), first);
}

TEST(ProfDoc, ParseRejectsWrongSchema) {
  prof::ProfDoc parsed;
  std::string error;
  EXPECT_FALSE(prof::parse_profile_json("{\"schema\":\"pvm.bench.v1\"}", &parsed, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ProfRender, CollapsedStacksSpliceOpKeyOverRootFrame) {
  const prof::ProfDoc doc = prof::prefix_profile(sample_doc(1), "pvm/1p/");
  const std::string stacks = prof::render_collapsed_stacks(doc);
  EXPECT_NE(stacks.find("pvm/1p/op.page_fault;ept_fill 30\n"), std::string::npos) << stacks;
  EXPECT_NE(stacks.find("pvm/1p/op.page_fault 70\n"), std::string::npos) << stacks;
}

TEST(ProfRender, BlameNamesDominantPhaseFirst) {
  const prof::ProfDoc doc = sample_doc(1);
  const std::string blame = prof::render_blame(doc, prof::BlameOptions{});
  // Root exclusive (70 ns) dominates ept_fill (30 ns): first path row is the
  // dominant critical-path phase.
  const auto root_pos = blame.find("op.page_fault\n");
  const auto fill_pos = blame.find("op.page_fault;ept_fill");
  ASSERT_NE(root_pos, std::string::npos) << blame;
  ASSERT_NE(fill_pos, std::string::npos) << blame;
  EXPECT_LT(root_pos, fill_pos);
}

}  // namespace
}  // namespace pvm
