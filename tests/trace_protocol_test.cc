// Trace-sequence tests: the rendered protocol steps of each scheme must
// follow the paper's figures in order (Fig. 9 for PVM-on-EPT, Fig. 3(b) for
// EPT-on-EPT, Fig. 3(a) for SPT-on-EPT), and the metrics report must expose
// the derived per-fault statistics.

#include <gtest/gtest.h>

#include "src/backends/platform.h"
#include "src/metrics/report.h"

namespace pvm {
namespace {

struct TraceHarness {
  explicit TraceHarness(DeployMode mode) {
    PlatformConfig config;
    config.mode = mode;
    platform = std::make_unique<VirtualPlatform>(config);
    container = &platform->create_container("c0");
    platform->sim().spawn(container->boot(16));
    platform->sim().run();
    GuestProcess& proc = *container->init_process();
    proc.vmas()[GuestProcess::kHeapBase] = Vma{GuestProcess::kHeapBase, 1ull << 20, true};
    platform->sim().spawn([](SecureContainer& c, GuestProcess& p) -> Task<void> {
      co_await c.kernel().touch(c.vcpu(0), p, GuestProcess::kHeapBase, true);
    }(*container, proc));
    platform->sim().run();
  }

  void traced_fresh_touch() {
    platform->trace().set_enabled(true);
    platform->sim().spawn([](SecureContainer& c, GuestProcess& p) -> Task<void> {
      co_await c.kernel().touch(c.vcpu(0), p, GuestProcess::kHeapBase + kPageSize, true);
    }(*container, *container->init_process()));
    platform->sim().run();
  }

  std::unique_ptr<VirtualPlatform> platform;
  SecureContainer* container;
};

TEST(TraceProtocolTest, PvmOnEptFollowsFigure9) {
  TraceHarness h(DeployMode::kPvmNst);
  h.traced_fresh_touch();
  // Fig. 9 order: #PF exit -> entry to v_ring0 (inject) -> WP trap for the
  // GPT store -> iret hypercall -> prefault -> entry to v_ring3.
  EXPECT_TRUE(h.platform->trace().contains_sequence({
      "vm exit (#PF)",
      "vm entry (v_ring0)",
      "vm exit (GPT write-protect)",
      "vm entry (v_ring0)",
      "vm exit (hypercall)",
      "vm entry (v_ring3)",
  })) << h.platform->trace().render();
  // The prefault happened between the iret and the final entry.
  bool saw_prefault = false;
  for (const auto& record : h.platform->trace().records()) {
    if (record.actor == TraceActor::kL1Hypervisor &&
        record.text().rfind("prefault", 0) == 0) {
      saw_prefault = true;
    }
  }
  EXPECT_TRUE(saw_prefault);
  // And absolutely no L0 actor appears.
  EXPECT_TRUE(h.platform->trace().messages_for(TraceActor::kL0Hypervisor).empty());
}

TEST(TraceProtocolTest, EptOnEptFollowsFigure3b) {
  TraceHarness h(DeployMode::kKvmEptNst);
  h.traced_fresh_touch();
  EXPECT_TRUE(h.platform->trace().contains_sequence({
      "L2 exit -> L0 (forward to L1)",                    // ➊-➌
      "emulate write-protected EPT12 store (l1-instance)",  // ➎-➐
      "L1 vmresume trap (l1-instance)",                     // ➑-➒
      "vm_resume L2 (real entry)",                          // ➓
      "vm exit from l1-instance",                           // ⓫ second violation
      "vm entry to l1-instance",                            // ⓭
  })) << h.platform->trace().render();
}

TEST(TraceProtocolTest, SptOnEptHasTwoPhases) {
  TraceHarness h(DeployMode::kSptOnEptNst);
  h.traced_fresh_touch();
  // Phase 1 (guest fault, via L0 twice) ... phase 2 ends with the SPT fill.
  const auto l1_messages = h.platform->trace().messages_for(TraceActor::kL1Hypervisor);
  ASSERT_FALSE(l1_messages.empty());
  EXPECT_EQ(l1_messages.back().rfind("fill SPT12", 0), 0u);
  // Exactly 6 L0 exits appear as forward/resume pairs (2n+4 with n=1).
  int forwards = 0;
  int resumes = 0;
  for (const auto& message : h.platform->trace().messages_for(TraceActor::kL0Hypervisor)) {
    if (message == "L2 exit -> L0 (forward to L1)") {
      ++forwards;
    }
    if (message == "vm_resume L2 (real entry)") {
      ++resumes;
    }
  }
  EXPECT_EQ(forwards, 3);
  EXPECT_EQ(resumes, 3);
}

TEST(MetricsReportTest, RendersNonZeroCountersAndDerivedStats) {
  TraceHarness h(DeployMode::kPvmNst);
  h.traced_fresh_touch();
  // A repeated touch so the TLB records at least one hit.
  h.platform->sim().spawn([](SecureContainer& c, GuestProcess& p) -> Task<void> {
    co_await c.kernel().touch(c.vcpu(0), p, GuestProcess::kHeapBase + kPageSize, true);
  }(*h.container, *h.container->init_process()));
  h.platform->sim().run();
  const std::string report = render_counter_report(h.platform->counters());
  EXPECT_NE(report.find("world_switch"), std::string::npos);
  EXPECT_NE(report.find("guest_page_fault"), std::string::npos);
  EXPECT_EQ(report.find("ept_compressed"), std::string::npos);  // zero stays hidden

  const DerivedStats stats = derive_stats(h.platform->counters());
  EXPECT_GT(stats.switches_per_fault, 0.0);
  EXPECT_GT(stats.tlb_hit_rate, 0.0);
  EXPECT_LE(stats.tlb_hit_rate, 1.0);
  EXPECT_GT(stats.prefault_coverage, 0.0);
  EXPECT_NE(render_derived_stats(h.platform->counters()).find("switches/fault"),
            std::string::npos);
}

TEST(MetricsReportTest, EmptyCountersAreSafe) {
  CounterSet counters;
  EXPECT_TRUE(render_counter_report(counters).empty());
  const DerivedStats stats = derive_stats(counters);
  EXPECT_EQ(stats.switches_per_fault, 0.0);
  EXPECT_EQ(stats.tlb_hit_rate, 0.0);
}

}  // namespace
}  // namespace pvm
