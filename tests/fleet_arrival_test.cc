// Statistical harness for the pvm::fleet arrival processes.
//
// Every check runs under a fixed seed, so the "statistical" assertions are
// really deterministic regressions: the tolerances are sized from the
// usual sampling-error bounds (~1/sqrt(n) for means, the 5% KS critical
// value for distribution shape), but once a seed passes it passes forever.
// What the suite pins down:
//   - the det_* math kernels agree with libm to ~1e-12 relative (they must
//     be *accurate*, not merely deterministic, or the processes drift from
//     their nominal rates),
//   - seeded Poisson / diurnal / burst streams hit their expected count,
//     mean, variance, and (for Poisson) the exponential gap law,
//   - identical seeds replay identical streams, and the stateless
//     placement shards a stream without loss or duplication,
//   - per-node telemetry shards merge order-independently and a parallel
//     fleet run renders byte-identically to serial (--jobs 1/2/8).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/fleet/arrival.h"
#include "src/fleet/fleet.h"
#include "src/obs/ts.h"

namespace pvm::fleet {
namespace {

// --- det_* math kernels ---

TEST(DetMathTest, LogMatchesLibm) {
  for (const double x : {1e-300, 1e-12, 0.1, 0.5, 0.9999, 1.0, 1.0001, 2.0,
                         10.0, 12345.678, 1e12, 1e300}) {
    const double got = det_log(x);
    const double want = std::log(x);
    EXPECT_NEAR(got, want, std::abs(want) * 1e-12 + 1e-14) << "x=" << x;
  }
  EXPECT_THROW(det_log(0.0), std::domain_error);
  EXPECT_THROW(det_log(-1.0), std::domain_error);
}

TEST(DetMathTest, ExpMatchesLibm) {
  for (const double x : {-700.0, -20.0, -1.0, -1e-9, 0.0, 1e-9, 0.5, 1.0,
                         2.0, 20.0, 700.0}) {
    const double got = det_exp(x);
    const double want = std::exp(x);
    EXPECT_NEAR(got, want, std::abs(want) * 1e-12) << "x=" << x;
  }
  EXPECT_EQ(det_exp(-1000.0), 0.0);
  EXPECT_TRUE(std::isinf(det_exp(1000.0)));
}

TEST(DetMathTest, ExpLogRoundTrip) {
  for (const double x : {1e-6, 0.25, 1.0, 3.5, 1e6}) {
    EXPECT_NEAR(det_exp(det_log(x)), x, x * 1e-12) << "x=" << x;
  }
}

TEST(DetMathTest, SinTurnsMatchesLibm) {
  for (double turns = -2.0; turns <= 2.0; turns += 0.03125) {
    const double want = std::sin(2.0 * M_PI * turns);
    EXPECT_NEAR(det_sin_turns(turns), want, 1e-12) << "turns=" << turns;
  }
  // Exact zeros at integer and half-integer turns (floor folding, no
  // residual rounding like 2*pi*k would give).
  EXPECT_EQ(det_sin_turns(0.0), 0.0);
  EXPECT_EQ(det_sin_turns(1.0), 0.0);
  EXPECT_EQ(det_sin_turns(-3.0), 0.0);
}

// --- Poisson: count, moments, and the exponential gap law ---

std::vector<double> gaps_of(const std::vector<std::uint64_t>& arrivals) {
  std::vector<double> gaps;
  gaps.reserve(arrivals.size());
  std::uint64_t prev = 0;
  for (const std::uint64_t t : arrivals) {
    gaps.push_back(static_cast<double>(t - prev));
    prev = t;
  }
  return gaps;
}

double mean_of(const std::vector<double>& xs) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance_of(const std::vector<double>& xs, double mean) {
  double sum = 0.0;
  for (const double x : xs) sum += (x - mean) * (x - mean);
  return sum / static_cast<double>(xs.size() - 1);
}

TEST(ArrivalStatsTest, PoissonGapMomentsMatchExponential) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPoisson;
  spec.rate_per_sec = 2000.0;
  spec.seed = 42;
  constexpr std::size_t kN = 20000;
  const std::vector<std::uint64_t> arrivals = generate_arrivals(spec, kN);
  ASSERT_EQ(arrivals.size(), kN);
  ASSERT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));

  // Exponential gaps at rate 2000/s: mean 1/rate = 500us, sd = mean.
  const double expected_mean_ns = 1e9 / spec.rate_per_sec;
  const std::vector<double> gaps = gaps_of(arrivals);
  const double mean = mean_of(gaps);
  const double var = variance_of(gaps, mean);
  // Sampling error ~ mean/sqrt(n) ≈ 0.7%; allow 3%.
  EXPECT_NEAR(mean, expected_mean_ns, expected_mean_ns * 0.03);
  // Var[Exp] = mean^2; the variance estimator is noisier — allow 10%.
  EXPECT_NEAR(var, expected_mean_ns * expected_mean_ns,
              expected_mean_ns * expected_mean_ns * 0.10);

  // Count check: arrivals in the first virtual second ≈ rate.
  const std::uint64_t in_first_second =
      static_cast<std::uint64_t>(std::count_if(
          arrivals.begin(), arrivals.end(),
          [](std::uint64_t t) { return t < 1'000'000'000ull; }));
  EXPECT_NEAR(static_cast<double>(in_first_second), spec.rate_per_sec,
              spec.rate_per_sec * 0.05);
}

TEST(ArrivalStatsTest, PoissonGapsPassKolmogorovSmirnov) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPoisson;
  spec.rate_per_sec = 1000.0;
  spec.seed = 7;
  constexpr std::size_t kN = 20000;
  const std::vector<std::uint64_t> arrivals = generate_arrivals(spec, kN);

  // Probability-integral transform: U = 1 - exp(-lambda * gap) must be
  // uniform on [0,1). KS distance against the uniform CDF; the 5% critical
  // value is 1.36/sqrt(n) ≈ 0.0096 — 0.015 leaves deterministic headroom.
  const double lambda_per_ns = spec.rate_per_sec / 1e9;
  std::vector<double> u;
  for (const double gap : gaps_of(arrivals)) {
    u.push_back(1.0 - det_exp(-lambda_per_ns * gap));
  }
  std::sort(u.begin(), u.end());
  double ks = 0.0;
  const double n = static_cast<double>(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    ks = std::max(ks, std::max(std::abs(u[i] - lo), std::abs(u[i] - hi)));
  }
  EXPECT_LT(ks, 0.015);
}

TEST(ArrivalStatsTest, DiurnalTracksTheSinusoid) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kDiurnal;
  spec.rate_per_sec = 2000.0;
  spec.amplitude = 0.8;
  spec.period_ns = 1'000'000'000ull;
  spec.seed = 11;
  constexpr std::size_t kN = 12000;
  const std::vector<std::uint64_t> arrivals = generate_arrivals(spec, kN);
  ASSERT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));

  // Only whole periods, so the sinusoid integrates to zero and the
  // long-run rate is the nominal one.
  const std::uint64_t periods = arrivals.back() / spec.period_ns;
  ASSERT_GE(periods, 3u);
  std::uint64_t total = 0, rising_half = 0;
  for (const std::uint64_t t : arrivals) {
    if (t >= periods * spec.period_ns) break;
    ++total;
    if (t % spec.period_ns < spec.period_ns / 2) ++rising_half;
  }
  const double expected = spec.rate_per_sec * static_cast<double>(periods) *
                          (static_cast<double>(spec.period_ns) / 1e9);
  EXPECT_NEAR(static_cast<double>(total), expected, expected * 0.05);

  // Mean rate over the positive half-wave is rate*(1 + 2A/pi), over the
  // negative half rate*(1 - 2A/pi); at A=0.8 the ratio is ≈ 3.1.
  const std::uint64_t falling_half = total - rising_half;
  ASSERT_GT(falling_half, 0u);
  const double ratio =
      static_cast<double>(rising_half) / static_cast<double>(falling_half);
  const double a = 2.0 * spec.amplitude / M_PI;
  const double expected_ratio = (1.0 + a) / (1.0 - a);
  EXPECT_NEAR(ratio, expected_ratio, expected_ratio * 0.10);
}

TEST(ArrivalStatsTest, BurstMultipliesTheBaseRate) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kBurst;
  spec.rate_per_sec = 1000.0;
  spec.burst_factor = 10.0;
  spec.burst_every_ns = 1'000'000'000ull;
  spec.burst_len_ns = 250'000'000ull;
  spec.seed = 13;
  constexpr std::size_t kN = 16000;
  const std::vector<std::uint64_t> arrivals = generate_arrivals(spec, kN);

  const std::uint64_t periods = arrivals.back() / spec.burst_every_ns;
  ASSERT_GE(periods, 3u);
  std::uint64_t in_burst = 0, off_burst = 0;
  for (const std::uint64_t t : arrivals) {
    if (t >= periods * spec.burst_every_ns) break;
    (t % spec.burst_every_ns < spec.burst_len_ns ? in_burst : off_burst) += 1;
  }
  // Arrival *density* (count per unit time) must scale by burst_factor.
  const double burst_s = static_cast<double>(periods) *
                         static_cast<double>(spec.burst_len_ns) / 1e9;
  const double off_s = static_cast<double>(periods) *
                       static_cast<double>(spec.burst_every_ns -
                                           spec.burst_len_ns) / 1e9;
  const double density_ratio = (static_cast<double>(in_burst) / burst_s) /
                               (static_cast<double>(off_burst) / off_s);
  EXPECT_NEAR(density_ratio, spec.burst_factor, spec.burst_factor * 0.10);
  // And the off-burst floor is the nominal base rate.
  EXPECT_NEAR(static_cast<double>(off_burst) / off_s, spec.rate_per_sec,
              spec.rate_per_sec * 0.08);
}

// --- Determinism and the spec grammar ---

TEST(ArrivalDeterminismTest, IdenticalSeedsReplayIdenticalStreams) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kDiurnal, ArrivalKind::kBurst}) {
    ArrivalSpec spec;
    spec.kind = kind;
    spec.rate_per_sec = 1500.0;
    spec.seed = 99;
    const std::vector<std::uint64_t> a = generate_arrivals(spec, 5000);
    const std::vector<std::uint64_t> b = generate_arrivals(spec, 5000);
    EXPECT_EQ(a, b) << arrival_kind_token(kind);

    ArrivalSpec reseeded = spec;
    reseeded.seed = 100;
    EXPECT_NE(generate_arrivals(reseeded, 5000), a)
        << arrival_kind_token(kind);
  }
}

TEST(ArrivalSpecTest, SpecStringRoundTrips) {
  ArrivalSpec poisson;
  poisson.kind = ArrivalKind::kPoisson;
  poisson.rate_per_sec = 2500.0;
  poisson.seed = 17;

  ArrivalSpec diurnal;
  diurnal.kind = ArrivalKind::kDiurnal;
  diurnal.rate_per_sec = 2000.0;
  diurnal.amplitude = 0.8;
  diurnal.period_ns = 5'000'000'000ull;
  diurnal.seed = 3;

  ArrivalSpec burst;
  burst.kind = ArrivalKind::kBurst;
  burst.rate_per_sec = 1000.0;
  burst.burst_factor = 10.0;
  burst.burst_every_ns = 2'000'000'000ull;
  burst.burst_len_ns = 250'000'000ull;
  burst.seed = 5;

  for (const ArrivalSpec& spec : {poisson, diurnal, burst}) {
    ArrivalSpec parsed;
    std::string error;
    ASSERT_TRUE(parse_arrival_spec(spec.spec_string(), &parsed, &error))
        << spec.spec_string() << ": " << error;
    EXPECT_EQ(parsed, spec) << spec.spec_string();
  }
}

TEST(ArrivalSpecTest, RejectsMalformedSpecs) {
  ArrivalSpec out;
  std::string error;
  EXPECT_FALSE(parse_arrival_spec("gaussian:rate=1", &out, &error));
  EXPECT_FALSE(parse_arrival_spec("poisson:rate=0", &out, &error));
  EXPECT_FALSE(parse_arrival_spec("poisson:rate=-5", &out, &error));
  EXPECT_FALSE(parse_arrival_spec("diurnal:rate=10,amplitude=1.5", &out, &error));
  EXPECT_FALSE(parse_arrival_spec("burst:rate=10,factor=0.5", &out, &error));
  EXPECT_FALSE(
      parse_arrival_spec("burst:rate=10,every=1s,len=2s", &out, &error));
  EXPECT_FALSE(parse_arrival_spec("poisson:bogus=1", &out, &error));
}

// --- Placement and sharding ---

TEST(PlacementTest, ShardsAreAPartitionOfTheStream) {
  FleetSpec spec;
  spec.launches = 2000;
  spec.nodes = 4;
  spec.seed = 21;
  const std::vector<std::uint64_t> full =
      generate_arrivals(spec.arrival, spec.launches);

  std::size_t assigned = 0;
  for (std::size_t node = 0; node < spec.nodes; ++node) {
    const std::vector<std::uint64_t> shard = node_arrivals(spec, node);
    assigned += shard.size();
    // Exactly the full stream filtered by placement, in arrival order.
    std::vector<std::uint64_t> expected;
    for (std::size_t i = 0; i < full.size(); ++i) {
      if (place_launch(spec.seed, i, spec.nodes) == node) {
        expected.push_back(full[i]);
      }
    }
    EXPECT_EQ(shard, expected) << "node " << node;
  }
  EXPECT_EQ(assigned, spec.launches);
}

TEST(PlacementTest, MixSpreadsLoadAcrossNodes) {
  constexpr std::size_t kNodes = 8;
  constexpr std::uint64_t kLaunches = 16000;
  std::vector<std::uint64_t> counts(kNodes, 0);
  for (std::uint64_t i = 0; i < kLaunches; ++i) {
    const std::size_t node = place_launch(77, i, kNodes);
    ASSERT_LT(node, kNodes);
    ++counts[node];
  }
  const double expected = static_cast<double>(kLaunches) / kNodes;
  for (std::size_t node = 0; node < kNodes; ++node) {
    EXPECT_NEAR(static_cast<double>(counts[node]), expected, expected * 0.10)
        << "node " << node;
  }
}

// --- Shard merge and parallel determinism ---

FleetSpec small_fleet_spec() {
  FleetSpec spec;
  spec.arrival.kind = ArrivalKind::kPoisson;
  spec.arrival.rate_per_sec = 2000.0;
  spec.launches = 400;
  spec.nodes = 4;
  spec.warm_pool = 2;
  spec.modes = {DeployMode::kKvmEptNst, DeployMode::kPvmNst};
  return spec;
}

TEST(FleetMergeTest, NodeHistogramMergeIsOrderIndependent) {
  FleetSpec spec = small_fleet_spec();
  spec.modes = {DeployMode::kPvmNst};

  std::vector<ts::TsDoc> docs;
  for (std::size_t node = 0; node < spec.nodes; ++node) {
    const NodeOutcome outcome = run_node(spec, DeployMode::kPvmNst, node);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    docs.push_back(outcome.doc);
  }

  const auto merge_in = [&](const std::vector<std::size_t>& order) {
    ts::TsDoc merged;
    merged.window_ns = spec.window_ns;
    for (const std::size_t index : order) {
      std::string error;
      EXPECT_TRUE(ts::merge_timeseries(&merged, docs[index], &error)) << error;
    }
    return merged;
  };

  const ts::TsDoc serial = merge_in({0, 1, 2, 3});
  // Element-wise document equality across shuffles: counters, every
  // histogram window, and the surviving exemplars.
  EXPECT_EQ(merge_in({3, 2, 1, 0}), serial);
  EXPECT_EQ(merge_in({2, 0, 3, 1}), serial);

  // And the fleet rollup is exactly this merge in node order.
  const FleetResult result = run_fleet(spec, 1, {});
  ASSERT_EQ(result.groups.size(), 1u);
  EXPECT_EQ(result.groups[0].rollup, serial);

  // Quantiles of the merged latency histogram match the cumulative view.
  const auto it = serial.hists.find("fleet/start_ns");
  ASSERT_NE(it, serial.hists.end());
  const ts::MergeableHistogram all = it->second.cumulative();
  std::uint64_t total_starts = 0;
  for (const ts::TsDoc& doc : docs) {
    total_starts += doc.hists.at("fleet/start_ns").cumulative().count();
  }
  EXPECT_EQ(all.count(), total_starts);
  EXPECT_GE(all.quantile(0.99), all.quantile(0.50));
}

TEST(FleetMergeTest, ParallelJobsRenderByteIdenticalToSerial) {
  const FleetSpec spec = small_fleet_spec();
  const FleetResult serial = run_fleet(spec, 1, {});
  const std::string expected = render_fleet_json(spec, serial);
  for (const int jobs : {2, 8}) {
    const FleetResult parallel = run_fleet(spec, jobs, {});
    EXPECT_EQ(render_fleet_json(spec, parallel), expected) << "jobs=" << jobs;
    EXPECT_EQ(parallel.fleetwide, serial.fleetwide) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace pvm::fleet
