// Unit tests for the L0 host hypervisor: VMCS merge semantics, exit/entry
// accounting, EPT management (cold vs warm), and the nested-VMX protocol
// pieces (forward, emulated resume, VMCS shadowing, protected-store
// emulation).

#include <gtest/gtest.h>

#include "src/hv/host_hypervisor.h"

namespace pvm {
namespace {

struct HvHarness {
  Simulation sim;
  CostModel costs;
  CounterSet counters;
  TraceLog trace;
  HostHypervisor l0{sim, costs, counters, trace, 1u << 20};

  void run(Task<void> task) {
    sim.spawn(std::move(task));
    sim.run();
    ASSERT_TRUE(sim.all_tasks_done());
  }
};

TEST(VmcsTest, ReadWriteAndAccounting) {
  Vmcs vmcs;
  vmcs.write(VmcsField::kGuestRip, 0xdead);
  EXPECT_EQ(vmcs.read(VmcsField::kGuestRip), 0xdeadu);
  EXPECT_EQ(vmcs.writes(), 1u);
  EXPECT_EQ(vmcs.reads(), 1u);
  EXPECT_EQ(vmcs.peek(VmcsField::kGuestRip), 0xdeadu);
  EXPECT_EQ(vmcs.reads(), 1u);  // peek is not counted
}

TEST(VmcsTest, MergeTakesGuestStateFrom12AndHostStateFrom01) {
  Vmcs vmcs12;
  Vmcs vmcs01;
  Vmcs vmcs02;
  vmcs12.write(VmcsField::kGuestRip, 0x1111);
  vmcs12.write(VmcsField::kGuestCr3, 0x2222);
  vmcs12.write(VmcsField::kEntryIntrInfo, 0x80000e00);  // injected #PF
  vmcs01.write(VmcsField::kHostRip, 0x3333);
  vmcs01.write(VmcsField::kHostCr3, 0x4444);
  // Host fields of VMCS12 must NOT leak into VMCS02.
  vmcs12.write(VmcsField::kHostRip, 0x6666);

  const std::uint32_t copies = merge_vmcs02(vmcs12, vmcs01, vmcs02);
  EXPECT_EQ(copies, kVmcs12MergedFields.size() + kVmcs01HostFields.size());
  EXPECT_EQ(vmcs02.peek(VmcsField::kGuestRip), 0x1111u);
  EXPECT_EQ(vmcs02.peek(VmcsField::kGuestCr3), 0x2222u);
  EXPECT_EQ(vmcs02.peek(VmcsField::kEntryIntrInfo), 0x80000e00u);
  EXPECT_EQ(vmcs02.peek(VmcsField::kHostRip), 0x3333u);
  EXPECT_EQ(vmcs02.peek(VmcsField::kHostCr3), 0x4444u);
}

TEST(HostHypervisorTest, CreateVmAssignsDistinctVpids) {
  HvHarness h;
  auto& a = h.l0.create_vm("a", 1024, false);
  auto& b = h.l0.create_vm("b", 1024, false);
  EXPECT_NE(a.vpid(), b.vpid());
  EXPECT_EQ(h.l0.vm_count(), 2u);
}

TEST(HostHypervisorTest, ExitRoundtripCountsAndCharges) {
  HvHarness h;
  auto& vm = h.l0.create_vm("vm", 1024, false);
  h.run([](HvHarness& hh, HostHypervisor::Vm& v) -> Task<void> {
    co_await hh.l0.exit_roundtrip(v, ExitKind::kHypercall);
  }(h, vm));
  EXPECT_EQ(h.counters.get(Counter::kL0Exit), 1u);
  EXPECT_EQ(h.counters.get(Counter::kWorldSwitch), 2u);
  EXPECT_EQ(h.sim.now(), h.costs.vmx_exit + h.costs.l0_exit_dispatch +
                             h.costs.l0_simple_handler + h.costs.vmx_entry);
}

TEST(HostHypervisorTest, HandlerCostsOrdering) {
  // PIO must be the most expensive CPU-op handler, as in Table 1.
  HvHarness h;
  auto& vm = h.l0.create_vm("vm", 1024, false);
  auto measure = [&](ExitKind kind) {
    const SimTime start = h.sim.now();
    h.run([](HvHarness& hh, HostHypervisor::Vm& v, ExitKind k) -> Task<void> {
      co_await hh.l0.exit_roundtrip(v, k);
    }(h, vm, kind));
    return h.sim.now() - start;
  };
  const SimTime hypercall = measure(ExitKind::kHypercall);
  const SimTime exception = measure(ExitKind::kException);
  const SimTime pio = measure(ExitKind::kPortIo);
  EXPECT_LT(hypercall, exception);
  EXPECT_LT(exception, pio);
}

TEST(HostHypervisorTest, ColdEptViolationAllocatesAndCharges) {
  HvHarness h;
  auto& vm = h.l0.create_vm("vm", 1024, false);
  h.run([](HvHarness& hh, HostHypervisor::Vm& v) -> Task<void> {
    co_await hh.l0.ensure_backed(v, 0x5000);
  }(h, vm));
  EXPECT_EQ(h.counters.get(Counter::kEptViolation), 1u);
  EXPECT_EQ(h.counters.get(Counter::kL0Exit), 1u);
  const Pte* pte = vm.ept().find_pte(0x5000);
  ASSERT_NE(pte, nullptr);
  EXPECT_TRUE(pte->present());
  EXPECT_GT(h.sim.now(), 0u);
}

TEST(HostHypervisorTest, WarmEptFillIsSilentAndFree) {
  HvHarness h;
  auto& vm = h.l0.create_vm("vm", 1024, /*prewarm_ept=*/true);
  EXPECT_TRUE(vm.warm());
  h.run([](HvHarness& hh, HostHypervisor::Vm& v) -> Task<void> {
    co_await hh.l0.ensure_backed(v, 0x5000);
  }(h, vm));
  EXPECT_EQ(h.counters.get(Counter::kEptViolation), 0u);
  EXPECT_EQ(h.counters.get(Counter::kL0Exit), 0u);
  EXPECT_EQ(h.sim.now(), 0u);  // zero virtual time
  EXPECT_TRUE(vm.ept().find_pte(0x5000)->present());
}

TEST(HostHypervisorTest, EnsureBackedIsIdempotent) {
  HvHarness h;
  auto& vm = h.l0.create_vm("vm", 1024, false);
  h.run([](HvHarness& hh, HostHypervisor::Vm& v) -> Task<void> {
    co_await hh.l0.ensure_backed(v, 0x5000);
    co_await hh.l0.ensure_backed(v, 0x5000);
  }(h, vm));
  EXPECT_EQ(h.counters.get(Counter::kEptViolation), 1u);  // only the first
}

TEST(HostHypervisorTest, ConcurrentViolationsOnSameGpaFillOnce) {
  HvHarness h;
  auto& vm = h.l0.create_vm("vm", 1024, false);
  const std::uint64_t frames_before = h.l0.host_frames().allocated();
  for (int i = 0; i < 4; ++i) {
    h.sim.spawn([](HvHarness& hh, HostHypervisor::Vm& v) -> Task<void> {
      co_await hh.l0.handle_ept_violation(v, 0x9000);
    }(h, vm));
  }
  h.sim.run();
  // The double-check under mmu_lock prevents duplicate backing frames.
  EXPECT_EQ(h.l0.host_frames().allocated() - frames_before, 1u);
}

TEST(HostHypervisorTest, NestedForwardAndResumeCountTwoL0Exits) {
  HvHarness h;
  auto& l1 = h.l0.create_vm("l1", 1024, true);
  HostHypervisor::NestedVcpu vcpu;
  vcpu.vmcs02.write(VmcsField::kExitReason, 48);  // EPT violation
  vcpu.vmcs02.write(VmcsField::kGuestPhysicalAddress, 0xabc000);

  h.run([](HvHarness& hh, HostHypervisor::Vm& v, HostHypervisor::NestedVcpu& n) -> Task<void> {
    co_await hh.l0.nested_forward_exit_to_l1(v, n, ExitKind::kEptViolation);
    co_await hh.l0.nested_resume_l2(v, n);
  }(h, l1, vcpu));

  EXPECT_EQ(h.counters.get(Counter::kL0Exit), 2u);
  EXPECT_EQ(h.counters.get(Counter::kWorldSwitch), 4u);
  EXPECT_EQ(h.counters.get(Counter::kVmcsSync), 1u);
  // The forward reflected the exit info into VMCS12 for L1's handler.
  EXPECT_EQ(vcpu.vmcs12.peek(VmcsField::kExitReason), 48u);
  EXPECT_EQ(vcpu.vmcs12.peek(VmcsField::kGuestPhysicalAddress), 0xabc000u);
}

TEST(HostHypervisorTest, VmcsShadowingEliminatesAccessExits) {
  HvHarness h;
  auto& l1 = h.l0.create_vm("l1", 1024, true);
  HostHypervisor::NestedVcpu shadowed;
  shadowed.vmcs_shadowing = true;
  HostHypervisor::NestedVcpu unshadowed;
  unshadowed.vmcs_shadowing = false;

  h.run([](HvHarness& hh, HostHypervisor::Vm& v, HostHypervisor::NestedVcpu& n) -> Task<void> {
    co_await hh.l0.l1_vmcs12_access(v, n, 40);
  }(h, l1, shadowed));
  EXPECT_EQ(h.counters.get(Counter::kL0Exit), 0u);

  h.run([](HvHarness& hh, HostHypervisor::Vm& v, HostHypervisor::NestedVcpu& n) -> Task<void> {
    co_await hh.l0.l1_vmcs12_access(v, n, 40);
  }(h, l1, unshadowed));
  // Without shadowing, the "40-50 exits per switch" problem appears (§2.1).
  EXPECT_EQ(h.counters.get(Counter::kL0Exit), 40u);
}

TEST(HostHypervisorTest, ProtectedStoreEmulationSerializesOnL1Lock) {
  HvHarness h;
  auto& l1 = h.l0.create_vm("l1", 1024, true);
  for (int i = 0; i < 4; ++i) {
    h.sim.spawn([](HvHarness& hh, HostHypervisor::Vm& v) -> Task<void> {
      co_await hh.l0.emulate_protected_store(v);
    }(h, l1));
  }
  h.sim.run();
  EXPECT_EQ(l1.mmu_lock().acquisitions(), 4u);
  EXPECT_GT(l1.mmu_lock().total_wait_ns(), 0u);  // they overlapped and queued
  EXPECT_EQ(h.counters.get(Counter::kL0Exit), 4u);
}

TEST(HostHypervisorTest, InterruptInjectionIsOneExit) {
  HvHarness h;
  auto& vm = h.l0.create_vm("vm", 1024, false);
  h.run([](HvHarness& hh, HostHypervisor::Vm& v) -> Task<void> {
    co_await hh.l0.inject_interrupt(v);
  }(h, vm));
  EXPECT_EQ(h.counters.get(Counter::kInterruptInjected), 1u);
  EXPECT_EQ(h.counters.get(Counter::kL0Exit), 1u);
}

}  // namespace
}  // namespace pvm
