// Unit tests for the PCID mapping optimization (§3.3.2): ring-separated
// ranges 32-47 / 48-63, stable mappings, LRU stealing, release semantics.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/core/pcid_mapper.h"

namespace pvm {
namespace {

TEST(PcidMapperTest, KernelAndUserRangesAreDisjoint) {
  PcidMapper mapper;
  const auto kernel = mapper.map(1, true);
  const auto user = mapper.map(1, false);
  EXPECT_GE(kernel.hw_pcid, PcidMapper::kKernelBase);
  EXPECT_LT(kernel.hw_pcid, PcidMapper::kKernelBase + PcidMapper::kSlotsPerRing);
  EXPECT_GE(user.hw_pcid, PcidMapper::kUserBase);
  EXPECT_LT(user.hw_pcid, PcidMapper::kUserBase + PcidMapper::kSlotsPerRing);
}

TEST(PcidMapperTest, MappingIsStableForAProcess) {
  PcidMapper mapper;
  const auto first = mapper.map(7, true);
  for (int i = 0; i < 100; ++i) {
    const auto again = mapper.map(7, true);
    EXPECT_EQ(again.hw_pcid, first.hw_pcid);
    EXPECT_FALSE(again.stolen);
  }
  EXPECT_EQ(mapper.steals(), 0u);
}

TEST(PcidMapperTest, SixteenProcessesGetDistinctSlots) {
  PcidMapper mapper;
  std::set<std::uint16_t> slots;
  for (std::uint64_t pid = 1; pid <= 16; ++pid) {
    slots.insert(mapper.map(pid, false).hw_pcid);
  }
  EXPECT_EQ(slots.size(), 16u);
  EXPECT_EQ(mapper.steals(), 0u);
}

TEST(PcidMapperTest, SeventeenthProcessStealsLru) {
  PcidMapper mapper;
  for (std::uint64_t pid = 1; pid <= 16; ++pid) {
    mapper.map(pid, false);
  }
  // Touch everyone except pid 3 so pid 3 becomes the LRU victim.
  for (std::uint64_t pid = 1; pid <= 16; ++pid) {
    if (pid != 3) {
      mapper.map(pid, false);
    }
  }
  const auto fresh = mapper.map(99, false);
  EXPECT_TRUE(fresh.stolen);
  EXPECT_EQ(mapper.steals(), 1u);
  const std::uint16_t stolen_slot = fresh.hw_pcid;
  // pid 3 lost its slot: remapping it steals another (the new LRU).
  const auto remapped = mapper.map(3, false);
  EXPECT_TRUE(remapped.stolen);
  EXPECT_NE(remapped.hw_pcid, stolen_slot);
}

TEST(PcidMapperTest, ReleaseFreesSlotWithoutSteal) {
  PcidMapper mapper;
  for (std::uint64_t pid = 1; pid <= 16; ++pid) {
    mapper.map(pid, true);
  }
  const std::uint16_t freed = mapper.map(5, true).hw_pcid;
  mapper.release(5);
  const auto next = mapper.map(100, true);
  EXPECT_FALSE(next.stolen);
  EXPECT_EQ(next.hw_pcid, freed);  // the freed slot is reused
  EXPECT_EQ(mapper.steals(), 0u);
}

TEST(PcidMapperTest, ReleaseDropsBothRings) {
  PcidMapper mapper;
  mapper.map(9, true);
  mapper.map(9, false);
  EXPECT_EQ(mapper.live_mappings(), 2u);
  mapper.release(9);
  EXPECT_EQ(mapper.live_mappings(), 0u);
}

TEST(PcidMapperTest, RingsStealIndependently) {
  PcidMapper mapper;
  for (std::uint64_t pid = 1; pid <= 17; ++pid) {
    mapper.map(pid, true);  // 17th steals in the kernel ring
  }
  EXPECT_EQ(mapper.steals(), 1u);
  // The user ring is untouched: no steal there.
  const auto user = mapper.map(200, false);
  EXPECT_FALSE(user.stolen);
  EXPECT_EQ(mapper.steals(), 1u);
}

TEST(PcidMapperTest, NoSlotCollisionsUnderChurn) {
  // Churn maps and releases, shadowing the mapper's state; at every step the
  // live pids of a ring must hold distinct hardware PCIDs in range.
  PcidMapper mapper;
  std::map<std::uint64_t, std::uint16_t> shadow_kernel;  // pid -> slot
  for (std::uint64_t round = 0; round < 400; ++round) {
    const std::uint64_t pid = (round * 7) % 40 + 1;
    if (round % 5 == 4) {
      mapper.release(pid);
      shadow_kernel.erase(pid);
    } else {
      const auto mapping = mapper.map(pid, /*kernel_ring=*/true);
      ASSERT_GE(mapping.hw_pcid, PcidMapper::kKernelBase);
      ASSERT_LT(mapping.hw_pcid, PcidMapper::kKernelBase + PcidMapper::kSlotsPerRing);
      if (mapping.stolen) {
        // Some other pid lost this slot; remove it from the shadow.
        std::erase_if(shadow_kernel, [&](const auto& kv) {
          return kv.first != pid && kv.second == mapping.hw_pcid;
        });
      }
      shadow_kernel[pid] = mapping.hw_pcid;
      // Distinctness across live mappings.
      std::set<std::uint16_t> slots;
      for (const auto& [p, slot] : shadow_kernel) {
        ASSERT_TRUE(slots.insert(slot).second)
            << "slot " << slot << " double-assigned at round " << round;
      }
    }
    ASSERT_LE(mapper.live_mappings(), 32u);
  }
}

}  // namespace
}  // namespace pvm
