// Unit tests for the tagged TLB model: hit/miss, PCID/VPID tagging, global
// pages, flush semantics, and replacement behaviour.

#include <gtest/gtest.h>

#include "src/arch/tlb.h"

namespace pvm {
namespace {

Pte user_page(std::uint64_t frame) { return Pte::make(frame, PteFlags::rw_user()); }

Pte global_page(std::uint64_t frame) {
  PteFlags flags = PteFlags::rw_kernel();
  flags.global = true;
  return Pte::make(frame, flags);
}

TEST(TlbTest, MissOnEmpty) {
  Tlb tlb;
  EXPECT_FALSE(tlb.lookup(1, 1, 0x10).hit);
  EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(TlbTest, InsertThenHit) {
  Tlb tlb;
  tlb.insert(1, 1, 0x10, user_page(0x99));
  const auto result = tlb.lookup(1, 1, 0x10);
  EXPECT_TRUE(result.hit);
  EXPECT_EQ(result.frame, 0x99u);
  EXPECT_TRUE(result.writable);
  EXPECT_TRUE(result.user);
  EXPECT_EQ(tlb.stats().hits, 1u);
}

TEST(TlbTest, DifferentPcidDoesNotHit) {
  Tlb tlb;
  tlb.insert(1, 1, 0x10, user_page(0x99));
  EXPECT_FALSE(tlb.lookup(1, 2, 0x10).hit);
}

TEST(TlbTest, DifferentVpidDoesNotHit) {
  Tlb tlb;
  tlb.insert(1, 1, 0x10, user_page(0x99));
  EXPECT_FALSE(tlb.lookup(2, 1, 0x10).hit);
}

TEST(TlbTest, GlobalEntryMatchesAnyPcidWithinVpid) {
  Tlb tlb;
  tlb.insert(1, 1, 0x10, global_page(0x42));
  EXPECT_TRUE(tlb.lookup(1, 1, 0x10).hit);
  EXPECT_TRUE(tlb.lookup(1, 7, 0x10).hit);
  EXPECT_FALSE(tlb.lookup(2, 1, 0x10).hit);
}

TEST(TlbTest, FlushPcidDropsOnlyThatSpace) {
  Tlb tlb;
  tlb.insert(1, 1, 0x10, user_page(1));
  tlb.insert(1, 2, 0x20, user_page(2));
  tlb.insert(2, 1, 0x30, user_page(3));
  tlb.flush_pcid(1, 1);
  EXPECT_FALSE(tlb.lookup(1, 1, 0x10).hit);
  EXPECT_TRUE(tlb.lookup(1, 2, 0x20).hit);
  EXPECT_TRUE(tlb.lookup(2, 1, 0x30).hit);
}

TEST(TlbTest, FlushPcidSparesGlobalEntries) {
  Tlb tlb;
  tlb.insert(1, 1, 0x10, user_page(1));
  tlb.insert(1, 1, 0x20, global_page(2));
  tlb.flush_pcid(1, 1);
  EXPECT_FALSE(tlb.lookup(1, 1, 0x10).hit);
  EXPECT_TRUE(tlb.lookup(1, 1, 0x20).hit);
}

TEST(TlbTest, FlushVpidDropsWholeVm) {
  Tlb tlb;
  tlb.insert(1, 1, 0x10, user_page(1));
  tlb.insert(1, 2, 0x20, user_page(2));
  tlb.insert(1, 3, 0x30, global_page(3));
  tlb.insert(2, 1, 0x40, user_page(4));
  tlb.flush_vpid(1);
  EXPECT_FALSE(tlb.lookup(1, 1, 0x10).hit);
  EXPECT_FALSE(tlb.lookup(1, 2, 0x20).hit);
  EXPECT_FALSE(tlb.lookup(1, 3, 0x30).hit);
  EXPECT_TRUE(tlb.lookup(2, 1, 0x40).hit);
}

TEST(TlbTest, FlushAllDropsEverything) {
  Tlb tlb;
  tlb.insert(1, 1, 0x10, user_page(1));
  tlb.insert(2, 2, 0x20, global_page(2));
  tlb.flush_all();
  EXPECT_EQ(tlb.valid_entries(), 0u);
  EXPECT_FALSE(tlb.lookup(1, 1, 0x10).hit);
  EXPECT_FALSE(tlb.lookup(2, 2, 0x20).hit);
}

TEST(TlbTest, FlushPageDropsBothPlainAndGlobalAlias) {
  Tlb tlb;
  tlb.insert(1, 1, 0x10, user_page(1));
  tlb.insert(1, 1, 0x11, global_page(2));
  tlb.flush_page(1, 1, 0x10);
  tlb.flush_page(1, 1, 0x11);
  EXPECT_FALSE(tlb.lookup(1, 1, 0x10).hit);
  EXPECT_FALSE(tlb.lookup(1, 1, 0x11).hit);
}

TEST(TlbTest, ReinsertUpdatesExistingEntry) {
  Tlb tlb;
  tlb.insert(1, 1, 0x10, user_page(1));
  tlb.insert(1, 1, 0x10, user_page(2));
  EXPECT_EQ(tlb.valid_entries(), 1u);
  EXPECT_EQ(tlb.lookup(1, 1, 0x10).frame, 2u);
}

TEST(TlbTest, CapacityEvictionIsBounded) {
  Tlb tlb(16);
  for (std::uint64_t vpn = 0; vpn < 64; ++vpn) {
    tlb.insert(1, 1, vpn, user_page(vpn));
  }
  EXPECT_LE(tlb.valid_entries(), 16u);
  EXPECT_EQ(tlb.stats().evictions, 48u);
  // Most recent inserts survive round-robin replacement.
  EXPECT_TRUE(tlb.lookup(1, 1, 63).hit);
}

TEST(TlbTest, ReadOnlyEntryReportsNotWritable) {
  Tlb tlb;
  tlb.insert(1, 1, 0x10, Pte::make(5, PteFlags::ro_user()));
  const auto result = tlb.lookup(1, 1, 0x10);
  EXPECT_TRUE(result.hit);
  EXPECT_FALSE(result.writable);
}

}  // namespace
}  // namespace pvm
