# Behavioral checks for the benchdiff gate, run as ctest script entries:
#
#   cmake -DCASE=<optional|profile> -DBENCHDIFF=<binary> -DWORK_DIR=<scratch>
#         -P benchdiff_check.cmake
#
# Cases:
#   optional  a `recovery` object missing wholesale from one side of a diff
#             is an exporter-version difference: one note line, exit 0, in
#             both directions — while a genuine metric regression in the same
#             pair still fails, and a single metric missing from a *present*
#             recovery object still fails.
#   profile   two pvm.profile.v1 documents diff per-op: a critical-path
#             share drift beyond the threshold trips the gate (exit 1),
#             identical documents pass (exit 0).

if(NOT DEFINED CASE OR NOT DEFINED BENCHDIFF OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "benchdiff_check.cmake needs -DCASE -DBENCHDIFF -DWORK_DIR")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Runs benchdiff, asserts the exit code, and returns stdout in `out_var`.
function(run_diff expect_rc out_var)
  execute_process(COMMAND "${BENCHDIFF}" ${ARGN}
                  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "benchdiff ${ARGN}: expected exit ${expect_rc}, got ${rc}\n"
                        "stdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

function(expect_contains haystack needle what)
  string(FIND "${haystack}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "${what}: output lacks \"${needle}\":\n${haystack}")
  endif()
  message(STATUS "ok: ${what}")
endfunction()

if(CASE STREQUAL "optional")
  file(WRITE "${WORK_DIR}/base.json" [=[
{"schema":"pvm.bench.v1","runs":[{"label":"r","sim_ns":1000,"values":{"seconds":1.0},"recovery":{"oom_kill":0,"watchdog_fire":0}}]}
]=])
  file(WRITE "${WORK_DIR}/head_no_recovery.json" [=[
{"schema":"pvm.bench.v1","runs":[{"label":"r","sim_ns":1000,"values":{"seconds":1.0}}]}
]=])
  file(WRITE "${WORK_DIR}/head_regressed.json" [=[
{"schema":"pvm.bench.v1","runs":[{"label":"r","sim_ns":1000,"values":{"seconds":2.0}}]}
]=])
  file(WRITE "${WORK_DIR}/head_partial_recovery.json" [=[
{"schema":"pvm.bench.v1","runs":[{"label":"r","sim_ns":1000,"values":{"seconds":1.0},"recovery":{"oom_kill":0}}]}
]=])

  run_diff(0 out "${WORK_DIR}/base.json" "${WORK_DIR}/head_no_recovery.json")
  expect_contains("${out}" "note r: recovery object missing from head (removed), not gated"
                  "missing recovery object is a note, not a FAIL")

  run_diff(0 out "${WORK_DIR}/head_no_recovery.json" "${WORK_DIR}/base.json")
  expect_contains("${out}" "note r: recovery object added in head (not in baseline), not gated"
                  "recovery object added in head is a note, not a FAIL")

  # The tolerance must not neuter the gate: a genuine regression in the same
  # pair (values.seconds +100%, recovery also absent) still fails.
  run_diff(1 out "${WORK_DIR}/base.json" "${WORK_DIR}/head_regressed.json")
  expect_contains("${out}" "FAIL" "real regression still trips the gate")

  # A single metric missing from a recovery object that IS present is a
  # schema mismatch inside the section, not a version difference: FAIL.
  run_diff(1 out "${WORK_DIR}/base.json" "${WORK_DIR}/head_partial_recovery.json")
  expect_contains("${out}" "FAIL r/recovery.watchdog_fire: metric missing from head export"
                  "partial recovery object still fails per-metric")

elseif(CASE STREQUAL "profile")
  file(WRITE "${WORK_DIR}/base.json" [=[
{"schema":"pvm.profile.v1","dropped_spans":0,"ops":[{"name":"pvm/32p/op.page_fault","count":10,"sum_ns":1000,"min_ns":80,"max_ns":200,"buckets":[[42,10]],"tail_threshold_ns":150,"worst_ns":200,"worst_begin_ns":7,"worst_track":0,"paths":[{"path":"op.page_fault","excl_ns":600,"count":10},{"path":"op.page_fault;spt_fill;lock_wait:c0.mmu_lock","excl_ns":400,"count":10}],"tail_paths":[]}]}
]=])
  file(WRITE "${WORK_DIR}/head_drift.json" [=[
{"schema":"pvm.profile.v1","dropped_spans":0,"ops":[{"name":"pvm/32p/op.page_fault","count":10,"sum_ns":1000,"min_ns":80,"max_ns":200,"buckets":[[42,10]],"tail_threshold_ns":150,"worst_ns":200,"worst_begin_ns":7,"worst_track":0,"paths":[{"path":"op.page_fault","excl_ns":200,"count":10},{"path":"op.page_fault;spt_fill;lock_wait:c0.mmu_lock","excl_ns":800,"count":10}],"tail_paths":[]}]}
]=])

  # Same document twice: every share identical, gate passes.
  run_diff(0 out "${WORK_DIR}/base.json" "${WORK_DIR}/base.json")
  expect_contains("${out}" "0 beyond threshold" "identical profiles pass")

  # The lock-wait share moved 40% -> 80% of the op's critical path: the
  # share_pct metric drifts far past the default 10% threshold.
  run_diff(1 out "${WORK_DIR}/base.json" "${WORK_DIR}/head_drift.json")
  expect_contains("${out}" "share_pct.op.page_fault;spt_fill;lock_wait:c0.mmu_lock"
                  "share drift names the drifting path")
  expect_contains("${out}" "FAIL" "share drift trips the gate")

else()
  message(FATAL_ERROR "unknown CASE '${CASE}'")
endif()
