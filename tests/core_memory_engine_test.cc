// Unit tests for PVM's shadow-paging engine: dual SPT isolation, gpa_map
// (memslot) stability, fill/zap/bulk-zap semantics, reverse-map hygiene,
// activation TLB policy, and the coarse/fine lock split.

#include <gtest/gtest.h>

#include "src/core/memory_engine.h"

namespace pvm {
namespace {

struct EngineHarness {
  explicit EngineHarness(bool prefault = true, bool pcid = true, bool fine = true,
                         bool dual = true)
      : frames("l1", 1u << 20) {
    PvmMemoryEngine::Options options;
    options.prefault = prefault;
    options.pcid_mapping = pcid;
    options.fine_grained_locks = fine;
    options.dual_spt = dual;
    engine = std::make_unique<PvmMemoryEngine>(sim, costs, counters, trace, frames, "eng",
                                               options);
  }

  void run(Task<void> task) {
    sim.spawn(std::move(task));
    sim.run();
    ASSERT_TRUE(sim.all_tasks_done());
  }

  Simulation sim;
  CostModel costs;
  CounterSet counters;
  TraceLog trace;
  FrameAllocator frames;
  Tlb tlb;
  std::unique_ptr<PvmMemoryEngine> engine;
};

Pte user_leaf(std::uint64_t gfn) { return Pte::make(gfn, PteFlags::rw_user()); }

TEST(MemoryEngineTest, DualSptKeepsUserAndKernelSeparate) {
  EngineHarness h;
  h.engine->create_process(1);
  EXPECT_NE(&h.engine->spt(1, true), &h.engine->spt(1, false));

  h.run([](EngineHarness& hh) -> Task<void> {
    co_await hh.engine->fill_spt(1, 0x1000, /*kernel_ring=*/false, user_leaf(10), false);
  }(h));
  EXPECT_EQ(h.engine->spt_leaves(1, false), 1u);
  EXPECT_EQ(h.engine->spt_leaves(1, true), 0u);  // kernel SPT untouched
}

TEST(MemoryEngineTest, SingleSptModeSharesTable) {
  EngineHarness h(true, true, true, /*dual=*/false);
  h.engine->create_process(1);
  EXPECT_EQ(&h.engine->spt(1, true), &h.engine->spt(1, false));
}

TEST(MemoryEngineTest, FillTranslatesThroughGpaMap) {
  EngineHarness h;
  h.engine->create_process(1);
  h.run([](EngineHarness& hh) -> Task<void> {
    co_await hh.engine->fill_spt(1, 0x2000, false, user_leaf(77), false);
  }(h));
  const Pte* spt_leaf = h.engine->spt(1, false).find_pte(0x2000);
  ASSERT_NE(spt_leaf, nullptr);
  const Pte* slot = h.engine->gpa_map().find_pte(77ull << kPageShift);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(spt_leaf->frame_number(), slot->frame_number());
  // The SPT inherits the guest leaf's permissions.
  EXPECT_TRUE(spt_leaf->user());
  EXPECT_TRUE(spt_leaf->writable());
}

TEST(MemoryEngineTest, GpaMapIsStableAcrossProcesses) {
  // Two processes mapping the same guest-physical frame (shared memory) get
  // the same L1 backing frame — memslots are per VM, not per process.
  EngineHarness h;
  h.engine->create_process(1);
  h.engine->create_process(2);
  h.run([](EngineHarness& hh) -> Task<void> {
    co_await hh.engine->fill_spt(1, 0x5000, false, user_leaf(123), false);
    co_await hh.engine->fill_spt(2, 0x9000, false, user_leaf(123), false);
  }(h));
  EXPECT_EQ(h.engine->spt(1, false).find_pte(0x5000)->frame_number(),
            h.engine->spt(2, false).find_pte(0x9000)->frame_number());
  // Only one backing frame was allocated for the shared gfn (plus table
  // frames for the SPTs themselves).
  const Pte* slot = h.engine->gpa_map().find_pte(123ull << kPageShift);
  ASSERT_NE(slot, nullptr);
}

TEST(MemoryEngineTest, ReadOnlyLeafStaysReadOnlyInSpt) {
  EngineHarness h;
  h.engine->create_process(1);
  PteFlags ro = PteFlags::ro_user();
  ro.cow = true;
  h.run([](EngineHarness& hh, Pte leaf) -> Task<void> {
    co_await hh.engine->fill_spt(1, 0x3000, false, leaf, false);
  }(h, Pte::make(5, ro)));
  const Pte* spt_leaf = h.engine->spt(1, false).find_pte(0x3000);
  ASSERT_NE(spt_leaf, nullptr);
  EXPECT_FALSE(spt_leaf->writable());
}

TEST(MemoryEngineTest, ZapRemovesBothRingsAndTlbEntries) {
  EngineHarness h;
  h.engine->create_process(1);
  h.run([](EngineHarness& hh) -> Task<void> {
    co_await hh.engine->fill_spt(1, 0x4000, false, user_leaf(8), false);
    co_await hh.engine->fill_spt(1, 0x4000, true, user_leaf(8), false);
  }(h));
  // Simulate cached translations under the mapped PCIDs.
  const std::uint16_t user_pcid = h.engine->pcid_mapper().map(1, false).hw_pcid;
  h.tlb.insert(9, user_pcid, page_number(0x4000), user_leaf(8));

  h.run([](EngineHarness& hh) -> Task<void> {
    co_await hh.engine->zap_gva(1, 0x4000, hh.tlb, 9);
  }(h));
  const Pte* zapped = h.engine->spt(1, false).find_pte(0x4000);
  EXPECT_TRUE(zapped == nullptr || !zapped->present());
  EXPECT_EQ(h.engine->spt_leaves(1, false), 0u);
  EXPECT_EQ(h.engine->spt_leaves(1, true), 0u);
  EXPECT_FALSE(h.tlb.lookup(9, user_pcid, page_number(0x4000)).hit);
}

TEST(MemoryEngineTest, EmulateStoreClearZaps) {
  EngineHarness h;
  h.engine->create_process(1);
  h.run([](EngineHarness& hh) -> Task<void> {
    co_await hh.engine->fill_spt(1, 0x6000, false, user_leaf(12), false);
    co_await hh.engine->emulate_gpt_store(1, 0x6000, GptStoreKind::kClear, hh.tlb, 9, 100);
  }(h));
  EXPECT_EQ(h.engine->spt_leaves(1, false), 0u);
  EXPECT_EQ(h.counters.get(Counter::kGptWriteProtectTrap), 1u);
}

TEST(MemoryEngineTest, EmulateStoreInstallDoesNotFill) {
  // Installs synchronize lazily (prefault or the next fault does the fill).
  EngineHarness h;
  h.engine->create_process(1);
  h.run([](EngineHarness& hh) -> Task<void> {
    co_await hh.engine->emulate_gpt_store(1, 0x7000, GptStoreKind::kInstall, hh.tlb, 9, 100);
  }(h));
  EXPECT_EQ(h.engine->spt_leaves(1, false), 0u);
  EXPECT_EQ(h.engine->spt_leaves(1, true), 0u);
}

TEST(MemoryEngineTest, BulkZapClearsEverything) {
  EngineHarness h;
  h.engine->create_process(1);
  h.run([](EngineHarness& hh) -> Task<void> {
    for (std::uint64_t i = 0; i < 32; ++i) {
      co_await hh.engine->fill_spt(1, 0x100000 + i * kPageSize, false, user_leaf(100 + i),
                                   false);
    }
    co_await hh.engine->bulk_zap(1, hh.tlb, 9);
  }(h));
  EXPECT_EQ(h.engine->spt_leaves(1, false), 0u);
  EXPECT_EQ(h.engine->spt_leaves(1, true), 0u);
}

TEST(MemoryEngineTest, ActivateWithPcidMappingAvoidsFlush) {
  EngineHarness h;
  h.engine->create_process(1);
  h.tlb.insert(9, PcidMapper::kUserBase, 0x10, user_leaf(1));
  h.run([](EngineHarness& hh) -> Task<void> {
    const std::uint16_t pcid = co_await hh.engine->activate(1, false, hh.tlb, 9);
    EXPECT_GE(pcid, PcidMapper::kUserBase);
  }(h));
  EXPECT_EQ(h.counters.get(Counter::kTlbFlushAvoided), 1u);
  EXPECT_EQ(h.tlb.stats().flush_vpid, 0u);
}

TEST(MemoryEngineTest, ActivateWithoutPcidMappingFlushesVpid) {
  EngineHarness h(true, /*pcid=*/false, true, true);
  h.engine->create_process(1);
  h.tlb.insert(9, 0, 0x10, user_leaf(1));
  h.run([](EngineHarness& hh) -> Task<void> {
    const std::uint16_t pcid = co_await hh.engine->activate(1, false, hh.tlb, 9);
    EXPECT_EQ(pcid, 0u);
  }(h));
  EXPECT_EQ(h.counters.get(Counter::kTlbFlushAll), 1u);
  EXPECT_FALSE(h.tlb.lookup(9, 0, 0x10).hit);
}

TEST(MemoryEngineTest, DestroyProcessDropsShadowStateAndFrames) {
  EngineHarness h;
  h.engine->create_process(1);
  const std::uint64_t before = h.frames.allocated();
  h.run([](EngineHarness& hh) -> Task<void> {
    for (std::uint64_t i = 0; i < 8; ++i) {
      co_await hh.engine->fill_spt(1, 0x200000 + i * kPageSize, false, user_leaf(300 + i),
                                   false);
    }
  }(h));
  EXPECT_GT(h.frames.allocated(), before);
  h.engine->destroy_process(1, h.tlb, 9);
  EXPECT_THROW(h.engine->spt(1, false), std::logic_error);
  // Note: gpa_map backing frames persist (memslots outlive processes); only
  // the SPT table frames are reclaimed.
}

TEST(MemoryEngineTest, CoarseModeUsesOneLock) {
  EngineHarness h(true, true, /*fine=*/false, true);
  SptLockSet& locks = h.engine->locks();
  EXPECT_EQ(&locks.meta_lock(), &locks.mmu_lock());
  EXPECT_EQ(&locks.pt_lock(42), &locks.mmu_lock());
  EXPECT_EQ(&locks.rmap_lock(7), &locks.mmu_lock());
  EXPECT_FALSE(locks.fine_grained());
}

TEST(MemoryEngineTest, FineModeSplitsLocks) {
  EngineHarness h;
  SptLockSet& locks = h.engine->locks();
  EXPECT_NE(&locks.meta_lock(), &locks.mmu_lock());
  EXPECT_NE(&locks.pt_lock(42), &locks.meta_lock());
  EXPECT_NE(&locks.pt_lock(42), &locks.pt_lock(43));
  EXPECT_EQ(&locks.pt_lock(42), &locks.pt_lock(42));  // stable per key
  EXPECT_NE(&locks.rmap_lock(7), &locks.rmap_lock(8));
  EXPECT_EQ(locks.pt_lock_count(), 2u);
  EXPECT_EQ(locks.rmap_lock_count(), 2u);
}

TEST(MemoryEngineTest, PrefaultAccountingDistinguishesFills) {
  EngineHarness h;
  h.engine->create_process(1);
  h.run([](EngineHarness& hh) -> Task<void> {
    co_await hh.engine->fill_spt(1, 0x1000, false, user_leaf(1), /*is_prefault=*/true);
    co_await hh.engine->fill_spt(1, 0x2000, false, user_leaf(2), /*is_prefault=*/false);
  }(h));
  EXPECT_EQ(h.counters.get(Counter::kSptEntryFilled), 2u);
  EXPECT_EQ(h.counters.get(Counter::kPrefaultFill), 1u);
}

TEST(MemoryEngineTest, ConcurrentFillsSerializeOnlyInCoarseMode) {
  auto run_mode = [](bool fine) {
    EngineHarness h(true, true, fine, true);
    for (std::uint64_t pid = 1; pid <= 8; ++pid) {
      h.engine->create_process(pid);
      h.sim.spawn([](EngineHarness& hh, std::uint64_t id) -> Task<void> {
        for (std::uint64_t i = 0; i < 64; ++i) {
          co_await hh.engine->fill_spt(id, 0x100000 * id + i * kPageSize, false,
                                       user_leaf(1000 * id + i), false);
        }
      }(h, pid));
    }
    h.sim.run();
    return h.sim.now();
  };
  const SimTime coarse = run_mode(false);
  const SimTime fine = run_mode(true);
  EXPECT_LT(fine, coarse);  // fine-grained locks let distinct pages proceed
}

}  // namespace
}  // namespace pvm
