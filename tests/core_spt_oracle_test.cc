// Mutation tests for the SPT coherence oracle: inject each class of
// corruption the oracle claims to detect and assert it actually reports it.
// A test oracle that silently accepts broken state is worse than none — these
// tests are what let simcheck's green sweeps mean something.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/memory_engine.h"

namespace pvm {
namespace {

struct OracleHarness {
  OracleHarness() : frames("l1", 1u << 20), guest_pt("gpt", nullptr) {
    PvmMemoryEngine::Options options;
    engine = std::make_unique<PvmMemoryEngine>(sim, costs, counters, trace, frames, "eng",
                                               options);
  }

  void run(Task<void> task) {
    sim.spawn(std::move(task));
    sim.run();
    ASSERT_TRUE(sim.all_tasks_done());
  }

  // Maps `gva` in the guest PT and mirrors it into the shadow via fill_spt,
  // as the fault path would.
  void map_and_fill(std::uint64_t pid, std::uint64_t gva, std::uint64_t gfn,
                    bool kernel_ring = false, bool writable = true) {
    PteFlags flags = PteFlags::rw_user();
    flags.writable = writable;
    guest_pt.map(gva, gfn, flags);
    run([](OracleHarness& h, std::uint64_t p, std::uint64_t va, bool ring) -> Task<void> {
      co_await h.engine->fill_spt(p, va, ring, *h.guest_pt.find_pte(va), false);
    }(*this, pid, gva, kernel_ring));
  }

  Simulation sim;
  CostModel costs;
  CounterSet counters;
  TraceLog trace;
  FrameAllocator frames;
  Tlb tlb;
  PageTable guest_pt;
  std::unique_ptr<PvmMemoryEngine> engine;
};

TEST(SptOracleTest, CleanStatePassesStructuralAndStrictChecks) {
  OracleHarness h;
  h.engine->enable_coherence_oracle();
  h.engine->create_process(1, &h.guest_pt);
  h.map_and_fill(1, 0x1000, 10);
  h.map_and_fill(1, 0x2000, 11);
  h.map_and_fill(1, 0x3000, 12, /*kernel_ring=*/true);

  EXPECT_TRUE(h.engine->check_coherence(/*strict=*/false).empty());
  EXPECT_TRUE(h.engine->check_coherence(/*strict=*/true).empty());
  EXPECT_NO_THROW(h.engine->verify_coherence(true));
}

TEST(SptOracleTest, CatchesCorruptedShadowLeaf) {
  OracleHarness h;
  h.engine->create_process(1, &h.guest_pt);
  h.map_and_fill(1, 0x1000, 10);

  ASSERT_TRUE(h.engine->debug_corrupt_spt_leaf(1, false, 0x1000));
  const std::vector<std::string> violations = h.engine->check_coherence(false);
  EXPECT_FALSE(violations.empty());
  EXPECT_THROW(h.engine->verify_coherence(false), SptCoherenceError);
}

TEST(SptOracleTest, CatchesMissingRmapEntry) {
  OracleHarness h;
  h.engine->create_process(1, &h.guest_pt);
  h.map_and_fill(1, 0x1000, 10);

  ASSERT_TRUE(h.engine->debug_drop_rmap_entry(1, false, 0x1000));
  EXPECT_FALSE(h.engine->check_coherence(false).empty());
  EXPECT_THROW(h.engine->verify_coherence(false), SptCoherenceError);
}

TEST(SptOracleTest, CatchesDuplicatedRmapEntry) {
  OracleHarness h;
  h.engine->create_process(1, &h.guest_pt);
  h.map_and_fill(1, 0x1000, 10);

  ASSERT_TRUE(h.engine->debug_duplicate_rmap_entry(1, false, 0x1000));
  EXPECT_FALSE(h.engine->check_coherence(false).empty());
  EXPECT_THROW(h.engine->verify_coherence(false), SptCoherenceError);
}

TEST(SptOracleTest, CatchesKernelLeafInUserSpt) {
  OracleHarness h;
  h.engine->create_process(1, &h.guest_pt);
  h.map_and_fill(1, 0x1000, 10);

  ASSERT_TRUE(h.engine->debug_install_kernel_leaf_in_user_spt(1, kGuestKernelHalfBase));
  EXPECT_FALSE(h.engine->check_coherence(false).empty());
  EXPECT_THROW(h.engine->verify_coherence(false), SptCoherenceError);
}

TEST(SptOracleTest, StrictCheckCatchesStaleLeafAfterGuestUnmap) {
  OracleHarness h;
  h.engine->create_process(1, &h.guest_pt);
  h.map_and_fill(1, 0x1000, 10);

  // The guest dropped the mapping but no zap followed: structurally the
  // shadow state is still self-consistent, only the guest-PT agreement
  // (strict) check can see the leak.
  ASSERT_TRUE(h.guest_pt.unmap(0x1000));
  EXPECT_TRUE(h.engine->check_coherence(/*strict=*/false).empty());
  EXPECT_FALSE(h.engine->check_coherence(/*strict=*/true).empty());
  EXPECT_THROW(h.engine->verify_coherence(true), SptCoherenceError);
}

TEST(SptOracleTest, StrictCheckCatchesWritableLeafOverReadOnlyGuestPte) {
  OracleHarness h;
  h.engine->create_process(1, &h.guest_pt);
  h.map_and_fill(1, 0x1000, 10, /*kernel_ring=*/false, /*writable=*/true);

  // COW arm without the zap: the guest PTE went read-only but the shadow
  // still permits writes — the exact bug class write-protect traps exist to
  // prevent.
  ASSERT_TRUE(h.guest_pt.update_pte(0x1000, [](Pte& pte) {
    PteFlags flags = pte.flags();
    flags.writable = false;
    pte = Pte::make(pte.frame_number(), flags);
  }));
  EXPECT_TRUE(h.engine->check_coherence(false).empty());
  EXPECT_FALSE(h.engine->check_coherence(true).empty());
}

TEST(SptOracleTest, AutoCheckThrowsFromNextMutation) {
  OracleHarness h;
  h.engine->enable_coherence_oracle();
  h.engine->create_process(1, &h.guest_pt);
  h.map_and_fill(1, 0x1000, 10);
  h.map_and_fill(1, 0x2000, 11);

  // Corrupt behind the oracle's back, then run any mutator: its post-mutation
  // auto-check must surface the corruption through the coroutine's exception
  // path (how simcheck failures reach the sweep driver).
  ASSERT_TRUE(h.engine->debug_corrupt_spt_leaf(1, false, 0x1000));
  h.sim.spawn([](OracleHarness& hh) -> Task<void> {
    co_await hh.engine->zap_gva(1, 0x2000, hh.tlb, 7);
  }(h));
  EXPECT_THROW(h.sim.run(), SptCoherenceError);
}

TEST(SptOracleTest, DebugHooksRejectMissingLeaves) {
  OracleHarness h;
  h.engine->create_process(1, &h.guest_pt);

  EXPECT_FALSE(h.engine->debug_corrupt_spt_leaf(1, false, 0x9000));
  EXPECT_FALSE(h.engine->debug_drop_rmap_entry(1, false, 0x9000));
  EXPECT_FALSE(h.engine->debug_duplicate_rmap_entry(1, false, 0x9000));
}

}  // namespace
}  // namespace pvm
