// Unit tests for the PVM switcher: state save/restore, ring transitions,
// register-clearing semantics (modelled as full state swap), direct switch,
// and cost/counter accounting.

#include <gtest/gtest.h>

#include "src/core/switcher.h"

namespace pvm {
namespace {

struct SwitcherHarness {
  Simulation sim;
  CostModel costs;
  CounterSet counters;
  TraceLog trace;
  Switcher switcher{sim, costs, counters, trace};
  SwitcherState state;
  VcpuState vcpu;

  void run(Task<void> task) {
    sim.spawn(std::move(task));
    sim.run();
  }
};

TEST(SwitcherTest, ExitSavesGuestAndEntersRing0) {
  SwitcherHarness h;
  h.vcpu.hw_ring = HwRing::kRing3;
  h.vcpu.cr3 = 0xAAA;
  h.state.saved_host.cr3 = 0xBBB;

  h.run([](SwitcherHarness& hh) -> Task<void> {
    co_await hh.switcher.to_hypervisor(hh.state, hh.vcpu, SwitchReason::kHypercall);
  }(h));

  EXPECT_EQ(h.vcpu.hw_ring, HwRing::kRing0);
  EXPECT_EQ(h.vcpu.cr3, 0xBBBu);               // host context restored
  EXPECT_EQ(h.state.saved_guest.cr3, 0xAAAu);  // guest context preserved
  EXPECT_FALSE(h.state.guest_running);
  EXPECT_EQ(h.counters.get(Counter::kWorldSwitch), 1u);
  EXPECT_EQ(h.counters.get(Counter::kL1Exit), 1u);
  EXPECT_EQ(h.sim.now(), h.costs.switcher_switch());
}

TEST(SwitcherTest, EntryRestoresGuestAtRequestedRing) {
  SwitcherHarness h;
  h.state.saved_guest.cr3 = 0xCCC;
  h.vcpu.hw_ring = HwRing::kRing0;

  h.run([](SwitcherHarness& hh) -> Task<void> {
    co_await hh.switcher.enter_guest(hh.state, hh.vcpu, VirtRing::kVRing0);
  }(h));

  EXPECT_EQ(h.vcpu.hw_ring, HwRing::kRing3);  // de-privileged guest kernel
  EXPECT_EQ(h.vcpu.virt_ring, VirtRing::kVRing0);
  EXPECT_EQ(h.vcpu.cr3, 0xCCCu);
  EXPECT_TRUE(h.vcpu.rflags_if);  // interrupts stay deliverable (§3.3.3)
  EXPECT_TRUE(h.state.guest_running);
  EXPECT_EQ(h.counters.get(Counter::kVmEntry), 1u);
}

TEST(SwitcherTest, ExitEntryRoundTripPreservesGuestState) {
  SwitcherHarness h;
  h.vcpu.cr3 = 0x123;
  h.vcpu.pcid = 42;
  h.vcpu.virt_ring = VirtRing::kVRing3;

  h.run([](SwitcherHarness& hh) -> Task<void> {
    co_await hh.switcher.to_hypervisor(hh.state, hh.vcpu, SwitchReason::kPageFault);
    co_await hh.switcher.enter_guest(hh.state, hh.vcpu, VirtRing::kVRing3);
  }(h));

  EXPECT_EQ(h.vcpu.cr3, 0x123u);
  EXPECT_EQ(h.vcpu.pcid, 42u);
  EXPECT_EQ(h.vcpu.virt_ring, VirtRing::kVRing3);
  EXPECT_EQ(h.counters.get(Counter::kWorldSwitch), 2u);
  EXPECT_EQ(h.sim.now(), 2 * h.costs.switcher_switch());
}

TEST(SwitcherTest, DirectSwitchSkipsHypervisorCounters) {
  SwitcherHarness h;
  h.vcpu.virt_ring = VirtRing::kVRing3;

  h.run([](SwitcherHarness& hh) -> Task<void> {
    co_await hh.switcher.direct_switch_to_kernel(hh.state, hh.vcpu);
    EXPECT_EQ(hh.vcpu.virt_ring, VirtRing::kVRing0);
    co_await hh.switcher.direct_switch_to_user(hh.state, hh.vcpu);
    EXPECT_EQ(hh.vcpu.virt_ring, VirtRing::kVRing3);
  }(h));

  EXPECT_EQ(h.counters.get(Counter::kDirectSwitch), 2u);
  EXPECT_EQ(h.counters.get(Counter::kL1Exit), 0u);
  EXPECT_EQ(h.counters.get(Counter::kVmEntry), 0u);
  // Direct switches are cheaper than full switcher switches + hypervisor.
  EXPECT_LT(h.sim.now(), 2 * h.costs.switcher_switch() + 100);
}

TEST(SwitcherTest, TraceRecordsReasons) {
  SwitcherHarness h;
  h.trace.set_enabled(true);
  h.run([](SwitcherHarness& hh) -> Task<void> {
    co_await hh.switcher.to_hypervisor(hh.state, hh.vcpu, SwitchReason::kGptWriteProtect);
    co_await hh.switcher.enter_guest(hh.state, hh.vcpu, VirtRing::kVRing0);
    co_await hh.switcher.to_hypervisor(hh.state, hh.vcpu, SwitchReason::kInterrupt);
  }(h));
  EXPECT_TRUE(h.trace.contains_sequence(
      {"vm exit (GPT write-protect)", "vm entry (v_ring0)", "vm exit (interrupt)"}));
}

TEST(SwitcherTest, VirtualIfDefaultsEnabled) {
  SwitcherState state;
  EXPECT_TRUE(state.guest_virtual_if);
  EXPECT_FALSE(state.guest_running);
}

}  // namespace
}  // namespace pvm
