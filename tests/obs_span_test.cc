// Unit tests for the span recorder: nesting and exclusive-time accounting,
// operation attribution, lock-track mirroring, buffer capping, and the RAII
// SpanScope wrapper. The recorder is driven directly with a fake clock — no
// simulation needed.

#include <gtest/gtest.h>

#include <set>
#include <string_view>
#include <utility>

#include "src/obs/phase.h"
#include "src/obs/span.h"

namespace pvm::obs {
namespace {

// Fake clock + active-root, bound the same way Simulation::set_spans binds.
struct Bound {
  TimeNs now = 0;
  std::int64_t root = 0;
  SpanRecorder recorder;
  Bound() {
    recorder.bind(&now, &root);
    recorder.set_enabled(true);
  }
};

TEST(PhaseTest, NamesDistinctAndNonEmpty) {
  std::set<std::string_view> seen;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const std::string_view name = phase_name(static_cast<Phase>(i));
    EXPECT_FALSE(name.empty()) << "phase index " << i;
    EXPECT_NE(name, "?") << "phase index " << i;
    EXPECT_TRUE(seen.insert(name).second) << "duplicate phase name: " << name;
  }
}

TEST(PhaseTest, OnlyOperationRootsAreOps) {
  EXPECT_TRUE(phase_is_op(Phase::kOpPageFault));
  EXPECT_TRUE(phase_is_op(Phase::kOpBoot));
  EXPECT_FALSE(phase_is_op(Phase::kVmxExit));
  EXPECT_FALSE(phase_is_op(Phase::kLockWait));
}

TEST(SpanRecorderTest, NestedSpansSplitExclusiveTime) {
  Bound b;
  const auto outer = b.recorder.begin(Phase::kOpPageFault);
  b.now = 10;
  const auto inner = b.recorder.begin(Phase::kVmxExit);
  b.now = 30;
  b.recorder.end(inner);  // inner: 20 ns, all exclusive
  b.now = 50;
  b.recorder.end(outer);  // outer: 50 ns total, 30 ns exclusive

  EXPECT_EQ(b.recorder.phase_stat(Phase::kVmxExit).count, 1u);
  EXPECT_EQ(b.recorder.phase_stat(Phase::kVmxExit).exclusive_ns, 20u);
  EXPECT_EQ(b.recorder.phase_stat(Phase::kOpPageFault).count, 1u);
  EXPECT_EQ(b.recorder.phase_stat(Phase::kOpPageFault).exclusive_ns, 30u);
  EXPECT_EQ(b.recorder.total_span_ns(), 50u);
}

TEST(SpanRecorderTest, PhasesChargeToEnclosingOp) {
  Bound b;
  const auto op = b.recorder.begin(Phase::kOpSyscall);
  const auto child = b.recorder.begin(Phase::kSwitcherExit);
  b.now = 40;
  b.recorder.end(child);
  b.now = 100;
  b.recorder.end(op);

  EXPECT_EQ(b.recorder.op_phase_ns(Phase::kOpSyscall, Phase::kSwitcherExit), 40u);
  EXPECT_EQ(b.recorder.op_phase_ns(Phase::kOpSyscall, Phase::kOpSyscall), 60u);
  // The op's end-to-end latency histogram sees the inclusive duration.
  EXPECT_EQ(b.recorder.op_latency(Phase::kOpSyscall).count(), 1u);
  EXPECT_EQ(b.recorder.op_latency(Phase::kOpSyscall).sum(), 100u);
}

TEST(SpanRecorderTest, PhaseOutsideAnyOpChargesToNoOpRow) {
  Bound b;
  const auto span = b.recorder.begin(Phase::kIo);
  b.now = 25;
  b.recorder.end(span);
  EXPECT_EQ(b.recorder.op_phase_ns(Phase::kCount, Phase::kIo), 25u);
}

TEST(SpanRecorderTest, LockWaitMirroredOntoLockTrack) {
  Bound b;
  const auto wait = b.recorder.begin(Phase::kLockWait);
  b.now = 15;
  b.recorder.end_lock_wait(wait, "engine.mmu_lock");

  ASSERT_EQ(b.recorder.lock_tracks().size(), 1u);
  const auto it = b.recorder.lock_tracks().find("engine.mmu_lock");
  ASSERT_NE(it, b.recorder.lock_tracks().end());
  EXPECT_GE(it->second, SpanRecorder::kLockTrackBase);
  // Two raw records: one on the root track, one mirrored on the lock track.
  ASSERT_EQ(b.recorder.spans().size(), 2u);
  EXPECT_EQ(b.recorder.spans()[1].track, it->second);
  // Aggregates count the wait once.
  EXPECT_EQ(b.recorder.phase_stat(Phase::kLockWait).count, 1u);
}

TEST(SpanRecorderTest, SeparateRootsGetSeparateTracks) {
  Bound b;
  b.root = 3;
  const auto on3 = b.recorder.begin(Phase::kCompute);
  b.root = 7;
  const auto on7 = b.recorder.begin(Phase::kIo);
  b.now = 5;
  b.recorder.end(on7);
  b.recorder.end(on3);
  ASSERT_EQ(b.recorder.spans().size(), 2u);
  EXPECT_EQ(b.recorder.spans()[0].track, 7);
  EXPECT_EQ(b.recorder.spans()[1].track, 3);
}

TEST(SpanRecorderTest, DisabledRecordsNothing) {
  Bound b;
  b.recorder.set_enabled(false);
  const auto token = b.recorder.begin(Phase::kOpPageFault);
  EXPECT_FALSE(token.valid());
  b.now = 10;
  b.recorder.end(token);  // no-op
  EXPECT_TRUE(b.recorder.spans().empty());
  EXPECT_EQ(b.recorder.phase_stat(Phase::kOpPageFault).count, 0u);
}

TEST(SpanRecorderTest, BufferCapDropsRawSpansButKeepsAggregates) {
  Bound b;
  b.recorder.set_max_spans(1);
  for (int i = 0; i < 3; ++i) {
    const auto span = b.recorder.begin(Phase::kZap);
    b.now += 2;
    b.recorder.end(span);
  }
  EXPECT_EQ(b.recorder.spans().size(), 1u);
  EXPECT_EQ(b.recorder.dropped_spans(), 2u);
  EXPECT_EQ(b.recorder.phase_stat(Phase::kZap).count, 3u);
  EXPECT_EQ(b.recorder.phase_stat(Phase::kZap).exclusive_ns, 6u);
}

TEST(SpanRecorderTest, ClearResetsEverything) {
  Bound b;
  const auto span = b.recorder.begin(Phase::kOpBoot);
  b.now = 9;
  b.recorder.end(span);
  b.recorder.clear();
  EXPECT_TRUE(b.recorder.spans().empty());
  EXPECT_EQ(b.recorder.total_span_ns(), 0u);
  EXPECT_EQ(b.recorder.phase_stat(Phase::kOpBoot).count, 0u);
  EXPECT_EQ(b.recorder.op_latency(Phase::kOpBoot).count(), 0u);
}

TEST(SpanScopeTest, RaiiOpensAndCloses) {
  Bound b;
  {
    SpanScope scope(&b.recorder, Phase::kPrefault);
    b.now = 12;
  }
  EXPECT_EQ(b.recorder.phase_stat(Phase::kPrefault).count, 1u);
  EXPECT_EQ(b.recorder.phase_stat(Phase::kPrefault).exclusive_ns, 12u);
}

TEST(SpanScopeTest, MoveAssignClosesPreviousAndTransfers) {
  Bound b;
  SpanScope outer;  // empty, like the lazy-open pattern in the fault loops
  {
    SpanScope first(&b.recorder, Phase::kSptFill);
    b.now = 4;
    outer = std::move(first);  // no double close when `first` dies
  }
  EXPECT_EQ(b.recorder.phase_stat(Phase::kSptFill).count, 0u);
  b.now = 10;
  outer.close();
  EXPECT_EQ(b.recorder.phase_stat(Phase::kSptFill).count, 1u);
  EXPECT_EQ(b.recorder.phase_stat(Phase::kSptFill).exclusive_ns, 10u);
}

TEST(SpanScopeTest, NullRecorderIsZeroCostNoOp) {
  SpanScope scope(nullptr, Phase::kOpPageFault);
  scope.close();  // must not crash
}

}  // namespace
}  // namespace pvm::obs
