// pvm::wal crash-consistency tests: framed-record round trips, the
// truncate-at-first-bad-checksum recovery rule, checkpoint prefixes,
// fault-injected torn appends, and the shadow-engine checkpoint/restore
// path replaying to an oracle-clean state (including from a torn tail).

#include <gtest/gtest.h>

#include "src/core/memory_engine.h"
#include "src/fault/fault.h"
#include "src/wal/wal.h"

namespace pvm {
namespace {

TEST(WalTest, AppendRecoverRoundTrip) {
  wal::Log log;
  std::string p0;
  wal::put_u64(p0, 0xdeadbeefull);
  log.append(wal::RecordType::kData, p0);
  log.append(wal::RecordType::kDirtyPage, "page");
  log.append_checkpoint("ck");

  const wal::RecoveryResult r = wal::recover(log.bytes());
  EXPECT_FALSE(r.torn_tail);
  EXPECT_EQ(r.bytes_truncated, 0u);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].type, wal::RecordType::kData);
  EXPECT_EQ(r.records[0].payload, p0);
  EXPECT_EQ(r.records[0].seq, 0u);
  EXPECT_EQ(r.records[1].type, wal::RecordType::kDirtyPage);
  EXPECT_EQ(r.records[1].payload, "page");
  EXPECT_EQ(r.records[2].type, wal::RecordType::kCheckpoint);
  EXPECT_EQ(r.records[2].seq, 2u);
  ASSERT_TRUE(r.last_checkpoint.has_value());
  EXPECT_EQ(*r.last_checkpoint, 2u);
}

TEST(WalTest, EmptyStreamRecoversToNothing) {
  const wal::RecoveryResult r = wal::recover("");
  EXPECT_TRUE(r.records.empty());
  EXPECT_FALSE(r.torn_tail);
  EXPECT_FALSE(r.last_checkpoint.has_value());
  EXPECT_TRUE(r.checkpointed_prefix().empty());
}

TEST(WalTest, DeterministicBytes) {
  // Same append sequence, identical bytes — the property checkpoint-resume
  // byte-identity rests on.
  wal::Log a;
  wal::Log b;
  for (int i = 0; i < 5; ++i) {
    std::string payload;
    wal::put_u64(payload, static_cast<std::uint64_t>(i) * 7919);
    a.append(wal::RecordType::kData, payload);
    b.append(wal::RecordType::kData, payload);
  }
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(WalTest, TruncatesAtFirstBadChecksum) {
  wal::Log log;
  log.append(wal::RecordType::kData, "first");
  log.append(wal::RecordType::kData, "second");
  log.append(wal::RecordType::kData, "third");

  // Flip one payload byte inside the second record: recovery must keep the
  // first record and drop everything from the corruption onward.
  std::string bytes = log.bytes();
  const std::size_t second_start = wal::kRecordHeaderBytes + 5;
  bytes[second_start + wal::kRecordHeaderBytes] ^= 0x40;

  const wal::RecoveryResult r = wal::recover(bytes);
  EXPECT_TRUE(r.torn_tail);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].payload, "first");
  EXPECT_GT(r.bytes_truncated, 0u);
  EXPECT_NE(r.detail.find("checksum"), std::string::npos) << r.detail;
}

TEST(WalTest, TruncatesShortTail) {
  wal::Log log;
  log.append(wal::RecordType::kData, "one");
  log.append(wal::RecordType::kData, "two");
  // Cut mid-way through the second record's payload (a torn write).
  const std::string bytes =
      log.bytes().substr(0, wal::kRecordHeaderBytes + 3 + wal::kRecordHeaderBytes + 1);
  const wal::RecoveryResult r = wal::recover(bytes);
  EXPECT_TRUE(r.torn_tail);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].payload, "one");
}

TEST(WalTest, CheckpointedPrefixStopsAtLastCheckpoint) {
  wal::Log log;
  log.append(wal::RecordType::kData, "a");
  log.append_checkpoint();
  log.append(wal::RecordType::kData, "b");
  log.append_checkpoint();
  log.append(wal::RecordType::kData, "uncommitted");

  const wal::RecoveryResult r = wal::recover(log.bytes());
  ASSERT_EQ(r.records.size(), 5u);
  const std::vector<wal::Record> prefix = r.checkpointed_prefix();
  ASSERT_EQ(prefix.size(), 4u);
  EXPECT_EQ(prefix.back().type, wal::RecordType::kCheckpoint);
}

TEST(WalTest, InjectedTornWriteKillsLogAndRecoveryCopes) {
  fault::FaultInjector injector;
  fault::FaultPlan plan;
  fault::FaultSpec torn;
  torn.kind = fault::FaultKind::kWalTornWrite;
  torn.target = "wal";
  torn.trigger.at_op = 3;  // the third append dies mid-payload
  plan.specs.push_back(torn);
  injector.arm(std::move(plan));

  wal::Log log;
  log.set_faults(&injector);
  log.append(wal::RecordType::kData, "payload-zero");
  log.append(wal::RecordType::kData, "payload-one");
  EXPECT_FALSE(log.torn());
  log.append(wal::RecordType::kData, "payload-two");  // torn mid-write
  EXPECT_TRUE(log.torn());
  // The owning process is dead: further appends are dropped.
  const std::uint64_t count = log.record_count();
  log.append(wal::RecordType::kData, "after-death");
  EXPECT_EQ(log.record_count(), count);

  const wal::RecoveryResult r = wal::recover(log.bytes());
  EXPECT_TRUE(r.torn_tail);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[1].payload, "payload-one");
  EXPECT_GT(r.bytes_truncated, 0u);
}

TEST(WalTest, WalcrashPresetParsesAndTargetsWalSites) {
  const fault::FaultPlan plan = fault::FaultPlan::parse("walcrash");
  EXPECT_EQ(plan.name, "walcrash");
  ASSERT_EQ(plan.specs.size(), 2u);
  EXPECT_EQ(plan.specs[0].kind, fault::FaultKind::kWalTornWrite);
  EXPECT_EQ(plan.specs[1].kind, fault::FaultKind::kWalPartialAppend);
  for (const fault::FaultSpec& spec : plan.specs) {
    EXPECT_EQ(spec.target, "wal");
  }
}

// ---- Shadow-engine checkpoint/restore on the WAL ----

struct EngineHarness {
  EngineHarness() : frames("l1", 1u << 20) {
    PvmMemoryEngine::Options options;
    engine = std::make_unique<PvmMemoryEngine>(sim, costs, counters, trace, frames, "eng",
                                               options);
  }

  void run(Task<void> task) {
    sim.spawn(std::move(task));
    sim.run();
    ASSERT_TRUE(sim.all_tasks_done());
  }

  Simulation sim;
  CostModel costs;
  CounterSet counters;
  TraceLog trace;
  FrameAllocator frames;
  std::unique_ptr<PvmMemoryEngine> engine;
};

Pte user_leaf(std::uint64_t gfn) { return Pte::make(gfn, PteFlags::rw_user()); }

void populate(EngineHarness& h, int processes, int pages_per_process) {
  for (int pid = 1; pid <= processes; ++pid) {
    h.engine->create_process(static_cast<std::uint64_t>(pid));
  }
  h.run([](EngineHarness& hh, int procs, int pages) -> Task<void> {
    for (int pid = 1; pid <= procs; ++pid) {
      for (int page = 0; page < pages; ++page) {
        co_await hh.engine->fill_spt(static_cast<std::uint64_t>(pid),
                                     0x10000ull + static_cast<std::uint64_t>(page) * 0x1000,
                                     /*kernel_ring=*/false,
                                     user_leaf(static_cast<std::uint64_t>(pid * 100 + page)),
                                     false);
      }
    }
  }(h, processes, pages_per_process));
}

TEST(WalEngineCheckpointTest, RestoreReplaysToCoherentIdenticalState) {
  EngineHarness src;
  populate(src, 3, 8);

  wal::Log log;
  src.engine->checkpoint_to_wal(log);
  const wal::RecoveryResult r = wal::recover(log.bytes());
  EXPECT_FALSE(r.torn_tail);
  ASSERT_TRUE(r.last_checkpoint.has_value());

  EngineHarness dst;
  std::string error;
  ASSERT_TRUE(dst.engine->restore_from_records(r.checkpointed_prefix(), &error)) << error;
  for (std::uint64_t pid = 1; pid <= 3; ++pid) {
    EXPECT_EQ(dst.engine->spt_leaves(pid, false), src.engine->spt_leaves(pid, false));
    for (int page = 0; page < 8; ++page) {
      const std::uint64_t gva = 0x10000ull + static_cast<std::uint64_t>(page) * 0x1000;
      const Pte* a = src.engine->spt(pid, false).find_pte(gva);
      const Pte* b = dst.engine->spt(pid, false).find_pte(gva);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      EXPECT_EQ(a->raw(), b->raw());
    }
  }
  // The restored engine satisfies the structural SPT oracle (guest PTs do
  // not survive a crash, so the strict guest-agreement mode does not apply).
  EXPECT_NO_THROW(dst.engine->verify_coherence(false));
}

TEST(WalEngineCheckpointTest, TornTailRestoresCoherentPrefix) {
  EngineHarness src;
  populate(src, 2, 16);

  wal::Log log;
  src.engine->checkpoint_to_wal(log);
  // Crash mid-write: drop the checkpoint record and half of the final leaf
  // record. Recovery truncates; restore of the surviving records must still
  // produce an oracle-clean (partial) shadow state.
  const std::string torn = log.bytes().substr(0, log.bytes().size() - 60);
  const wal::RecoveryResult r = wal::recover(torn);
  EXPECT_TRUE(r.torn_tail);
  EXPECT_FALSE(r.records.empty());

  EngineHarness dst;
  std::string error;
  ASSERT_TRUE(dst.engine->restore_from_records(r.records, &error)) << error;
  EXPECT_NO_THROW(dst.engine->verify_coherence(false));
  EXPECT_LE(dst.engine->spt_leaves(1, false) + dst.engine->spt_leaves(2, false),
            src.engine->spt_leaves(1, false) + src.engine->spt_leaves(2, false));
  EXPECT_GT(dst.engine->spt_leaves(1, false), 0u);
}

TEST(WalEngineCheckpointTest, RestoreRejectsMalformedRecord) {
  EngineHarness dst;
  wal::Record bad;
  bad.type = wal::RecordType::kShadowLeaf;
  bad.payload = "short";
  std::string error;
  EXPECT_FALSE(dst.engine->restore_from_records({bad}, &error));
  EXPECT_NE(error.find("shadow-leaf"), std::string::npos) << error;
}

TEST(WalEngineCheckpointTest, InjectedCrashDuringCheckpointRecovers) {
  EngineHarness src;
  populate(src, 2, 12);

  // The walcrash preset tears the append at ~1 virtual ms; at time zero the
  // at_op trigger fires instead: first spec (torn write) hits append #1.
  fault::FaultInjector injector;
  fault::FaultPlan plan;
  fault::FaultSpec torn;
  torn.kind = fault::FaultKind::kWalTornWrite;
  torn.target = "wal";
  torn.trigger.at_op = 10;
  plan.specs.push_back(torn);
  injector.arm(std::move(plan));

  wal::Log log;
  log.set_faults(&injector);
  src.engine->checkpoint_to_wal(log);
  EXPECT_TRUE(log.torn());

  const wal::RecoveryResult r = wal::recover(log.bytes());
  EXPECT_TRUE(r.torn_tail);
  ASSERT_EQ(r.records.size(), 9u);  // appends 1..9 survived, #10 tore

  EngineHarness dst;
  std::string error;
  ASSERT_TRUE(dst.engine->restore_from_records(r.records, &error)) << error;
  EXPECT_NO_THROW(dst.engine->verify_coherence(false));
}

}  // namespace
}  // namespace pvm
