// Unit tests for the guest kernel: demand paging, COW fork semantics (frame
// sharing, refcounts, breaks), exec/exit teardown, munmap frame release,
// fault classification, and file-op kernel-page allocation.

#include <gtest/gtest.h>

#include "src/backends/platform.h"

namespace pvm {
namespace {

// All guest-kernel semantics are deployment-independent; use kvm-ept (BM)
// where traps don't obscure the state changes.
struct KernelHarness {
  KernelHarness() {
    PlatformConfig config;
    config.mode = DeployMode::kKvmEptBm;
    platform = std::make_unique<VirtualPlatform>(config);
    container = &platform->create_container("c0");
    platform->sim().spawn(container->boot(16));
    platform->sim().run();
  }

  void run(Task<void> task) {
    platform->sim().spawn(std::move(task));
    platform->sim().run();
    ASSERT_TRUE(platform->sim().all_tasks_done());
  }

  GuestKernel& kernel() { return container->kernel(); }
  Vcpu& vcpu() { return container->vcpu(0); }
  GuestProcess& init() { return *container->init_process(); }

  std::unique_ptr<VirtualPlatform> platform;
  SecureContainer* container = nullptr;
};

TEST(GuestKernelTest, TouchDemandPagesExactlyOnce) {
  KernelHarness h;
  const std::uint64_t frames_before = h.container->gpa_frames().allocated();
  const CounterSet before = h.platform->counters();
  h.run([](KernelHarness& hh) -> Task<void> {
    const std::uint64_t base = co_await hh.kernel().sys_mmap(hh.vcpu(), hh.init(), 4 * kPageSize);
    co_await hh.kernel().touch(hh.vcpu(), hh.init(), base, true);
    co_await hh.kernel().touch(hh.vcpu(), hh.init(), base, true);  // second touch: no fault
    co_await hh.kernel().touch(hh.vcpu(), hh.init(), base + 1, false);  // same page
  }(h));
  // One data frame; the GPT may also have allocated up to 3 table-node
  // frames for the fresh address range (they come from the same space).
  const std::uint64_t delta = h.container->gpa_frames().allocated() - frames_before;
  EXPECT_GE(delta, 1u);
  EXPECT_LE(delta, 4u);
  EXPECT_EQ(h.platform->counters().delta_since(before).get(Counter::kGuestPageFault), 1u);
}

TEST(GuestKernelTest, TouchOutsideVmaThrows) {
  KernelHarness h;
  EXPECT_THROW(
      {
        h.platform->sim().spawn([](KernelHarness& hh) -> Task<void> {
          co_await hh.kernel().touch(hh.vcpu(), hh.init(), 0xdead0000, true);
        }(h));
        h.platform->sim().run();
      },
      std::logic_error);
}

TEST(GuestKernelTest, MunmapReleasesFrames) {
  KernelHarness h;
  const std::size_t data_before = h.init().data_frames().size();
  const std::uint64_t before = h.container->gpa_frames().allocated();
  h.run([](KernelHarness& hh) -> Task<void> {
    const std::uint64_t base =
        co_await hh.kernel().sys_mmap(hh.vcpu(), hh.init(), 16 * kPageSize);
    for (int i = 0; i < 16; ++i) {
      co_await hh.kernel().touch(hh.vcpu(), hh.init(),
                                 base + static_cast<std::uint64_t>(i) * kPageSize, true);
    }
    co_await hh.kernel().sys_munmap(hh.vcpu(), hh.init(), base);
  }(h));
  // All 16 data frames came back; only GPT table-node frames (kept, as real
  // kernels do) may remain allocated.
  EXPECT_EQ(h.init().data_frames().size(), data_before);
  EXPECT_LE(h.container->gpa_frames().allocated(), before + 3);
  EXPECT_TRUE(h.init().vmas().size() >= 3);  // code/stack/kernel survive
}

TEST(GuestKernelTest, ForkSharesFramesCopyOnWrite) {
  KernelHarness h;
  GuestProcess* child = nullptr;
  h.run([](KernelHarness& hh, GuestProcess** out) -> Task<void> {
    *out = co_await hh.kernel().sys_fork(hh.vcpu(), hh.init());
  }(h, &child));
  ASSERT_NE(child, nullptr);

  // Child aliases the parent's user frames read-only.
  std::size_t shared = 0;
  for (const auto& [gva, frame] : h.init().data_frames()) {
    if (gva >= GuestProcess::kKernelBase) {
      continue;
    }
    const Pte* parent_pte = h.init().gpt().find_pte(gva);
    const Pte* child_pte = child->gpt().find_pte(gva);
    ASSERT_NE(parent_pte, nullptr);
    ASSERT_NE(child_pte, nullptr);
    EXPECT_EQ(parent_pte->frame_number(), child_pte->frame_number());
    EXPECT_FALSE(parent_pte->writable()) << "parent page not write-protected";
    EXPECT_FALSE(child_pte->writable());
    EXPECT_TRUE(child_pte->cow());
    EXPECT_EQ(h.kernel().cow_refs(frame), 2);
    ++shared;
  }
  EXPECT_GT(shared, 0u);
}

TEST(GuestKernelTest, CowBreakCopiesSharedFrame) {
  KernelHarness h;
  GuestProcess* child = nullptr;
  h.run([](KernelHarness& hh, GuestProcess** out) -> Task<void> {
    *out = co_await hh.kernel().sys_fork(hh.vcpu(), hh.init());
    co_await hh.kernel().mem().activate_process(hh.vcpu(), **out, false);
    // The child writes an inherited stack page: COW must break.
    co_await hh.kernel().touch(hh.vcpu(), **out, GuestProcess::kStackBase, true);
  }(h, &child));

  const Pte* parent_pte = h.init().gpt().find_pte(GuestProcess::kStackBase);
  const Pte* child_pte = child->gpt().find_pte(GuestProcess::kStackBase);
  ASSERT_NE(parent_pte, nullptr);
  ASSERT_NE(child_pte, nullptr);
  EXPECT_NE(parent_pte->frame_number(), child_pte->frame_number());
  EXPECT_TRUE(child_pte->writable());
  EXPECT_FALSE(child_pte->cow());
  EXPECT_GT(h.platform->counters().get(Counter::kCowBreak), 0u);
  // The parent's copy is the sole owner again.
  EXPECT_EQ(h.kernel().cow_refs(parent_pte->frame_number()), 1);
}

TEST(GuestKernelTest, LastOwnerCowBreakRestoresWriteInPlace) {
  KernelHarness h;
  GuestProcess* child = nullptr;
  h.run([](KernelHarness& hh, GuestProcess** out) -> Task<void> {
    *out = co_await hh.kernel().sys_fork(hh.vcpu(), hh.init());
    co_await hh.kernel().mem().activate_process(hh.vcpu(), **out, false);
    co_await hh.kernel().sys_exit(hh.vcpu(), **out);
    co_await hh.kernel().mem().activate_process(hh.vcpu(), hh.init(), false);
    // After the child exits, the parent is the sole owner; a write should
    // flip the PTE writable without allocating a new frame.
    co_await hh.kernel().touch(hh.vcpu(), hh.init(), GuestProcess::kStackBase, true);
  }(h, &child));
  const Pte* pte = h.init().gpt().find_pte(GuestProcess::kStackBase);
  ASSERT_NE(pte, nullptr);
  EXPECT_TRUE(pte->writable());
}

TEST(GuestKernelTest, ChildExitReturnsOnlyPrivateFrames) {
  KernelHarness h;
  const std::uint64_t before = h.container->gpa_frames().allocated();
  h.run([](KernelHarness& hh) -> Task<void> {
    GuestProcess* child = co_await hh.kernel().sys_fork(hh.vcpu(), hh.init());
    co_await hh.kernel().mem().activate_process(hh.vcpu(), *child, false);
    co_await hh.kernel().touch(hh.vcpu(), *child, GuestProcess::kStackBase, true);  // 1 copy
    co_await hh.kernel().sys_exit(hh.vcpu(), *child);
    co_await hh.kernel().mem().activate_process(hh.vcpu(), hh.init(), false);
  }(h));
  // Everything the child owned privately is back; the parent's frames remain.
  EXPECT_EQ(h.container->gpa_frames().allocated(), before);
  EXPECT_EQ(h.kernel().processes().size(), 1u);
}

TEST(GuestKernelTest, ExecRebuildsAddressSpace) {
  KernelHarness h;
  h.run([](KernelHarness& hh) -> Task<void> {
    const std::uint64_t base =
        co_await hh.kernel().sys_mmap(hh.vcpu(), hh.init(), 8 * kPageSize);
    co_await hh.kernel().touch(hh.vcpu(), hh.init(), base, true);
    co_await hh.kernel().sys_exec(hh.vcpu(), hh.init(), /*fresh_pages=*/12);
  }(h));
  // The old mmap VMA is gone; fresh image pages are resident.
  EXPECT_EQ(h.init().vmas().size(), 3u);  // code/stack/kernel
  EXPECT_EQ(h.init().data_frames().size(), 12u);
  EXPECT_GT(h.platform->counters().get(Counter::kProcessExeced), 0u);
}

TEST(GuestKernelTest, FileOpsAllocateAndReleaseKernelPages) {
  KernelHarness h;
  const std::uint64_t before = h.container->gpa_frames().allocated();
  const std::size_t data_before = h.init().data_frames().size();
  h.run([](KernelHarness& hh) -> Task<void> {
    co_await hh.kernel().sys_file_op(hh.vcpu(), hh.init(), 1000, /*fresh=*/5, /*free=*/0);
  }(h));
  EXPECT_EQ(h.init().data_frames().size() - data_before, 5u);
  EXPECT_GE(h.container->gpa_frames().allocated() - before, 5u);
  h.run([](KernelHarness& hh) -> Task<void> {
    co_await hh.kernel().sys_file_op(hh.vcpu(), hh.init(), 1000, /*fresh=*/0, /*free=*/5);
  }(h));
  EXPECT_EQ(h.init().data_frames().size(), data_before);
}

TEST(GuestKernelTest, IoChargesDeviceAndInterrupts) {
  KernelHarness h;
  const CounterSet before = h.platform->counters();
  h.run([](KernelHarness& hh) -> Task<void> {
    co_await hh.kernel().do_io(hh.vcpu(), hh.init(), hh.container->io(), 64 * 1024);
  }(h));
  const CounterSet d = h.platform->counters().delta_since(before);
  EXPECT_EQ(d.get(Counter::kIoRequest), 1u);
  EXPECT_EQ(d.get(Counter::kInterruptInjected), 1u);
  EXPECT_EQ(h.container->io().requests(), 2u);  // +1 from boot
}

TEST(GuestKernelTest, PidsAreUniqueAndLookupWorks) {
  KernelHarness h;
  GuestProcess* a = nullptr;
  GuestProcess* b = nullptr;
  h.run([](KernelHarness& hh, GuestProcess** pa, GuestProcess** pb) -> Task<void> {
    *pa = co_await hh.kernel().sys_fork(hh.vcpu(), hh.init());
    *pb = co_await hh.kernel().sys_fork(hh.vcpu(), hh.init());
  }(h, &a, &b));
  EXPECT_NE(a->pid(), b->pid());
  EXPECT_EQ(h.kernel().process_by_pid(a->pid()), a);
  EXPECT_EQ(h.kernel().process_by_pid(b->pid()), b);
  EXPECT_EQ(h.kernel().process_by_pid(0xdead), nullptr);
}

}  // namespace
}  // namespace pvm
