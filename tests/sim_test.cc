// Unit tests for the discrete-event simulation core: clock semantics, task
// composition, FIFO resources, determinism, and failure propagation.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/sim/random.h"
#include "src/sim/resource.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"

namespace pvm {
namespace {

Task<void> delay_then_record(Simulation& sim, SimTime delay, std::vector<SimTime>& log) {
  co_await sim.delay(delay);
  log.push_back(sim.now());
}

TEST(SimulationTest, ClockStartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0u);
}

TEST(SimulationTest, DelayAdvancesClock) {
  Simulation sim;
  std::vector<SimTime> log;
  sim.spawn(delay_then_record(sim, 250, log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 250u);
  EXPECT_TRUE(sim.all_tasks_done());
}

TEST(SimulationTest, MultipleDelaysAccumulate) {
  Simulation sim;
  std::vector<SimTime> log;
  sim.spawn([](Simulation& s, std::vector<SimTime>& out) -> Task<void> {
    co_await s.delay(100);
    out.push_back(s.now());
    co_await s.delay(50);
    out.push_back(s.now());
    co_await s.delay(0);
    out.push_back(s.now());
  }(sim, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<SimTime>{100, 150, 150}));
}

TEST(SimulationTest, TasksInterleaveInTimeOrder) {
  Simulation sim;
  std::vector<SimTime> log;
  sim.spawn(delay_then_record(sim, 300, log));
  sim.spawn(delay_then_record(sim, 100, log));
  sim.spawn(delay_then_record(sim, 200, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<SimTime>{100, 200, 300}));
}

TEST(SimulationTest, TiesBreakInSpawnOrder) {
  Simulation sim;
  std::vector<int> order;
  auto make = [&](int id) -> Task<void> {
    co_await sim.delay(10);
    order.push_back(id);
  };
  sim.spawn(make(1));
  sim.spawn(make(2));
  sim.spawn(make(3));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

Task<int> subtask_returning(Simulation& sim, int value) {
  co_await sim.delay(10);
  co_return value;
}

TEST(SimulationTest, NestedTaskReturnsValueAndChargesTime) {
  Simulation sim;
  int got = 0;
  sim.spawn([](Simulation& s, int& out) -> Task<void> {
    out = co_await subtask_returning(s, 42);
  }(sim, got));
  sim.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(sim.now(), 10u);
}

Task<int> deeply_nested(Simulation& sim, int depth) {
  if (depth == 0) {
    co_await sim.delay(1);
    co_return 1;
  }
  const int below = co_await deeply_nested(sim, depth - 1);
  co_return below + 1;
}

TEST(SimulationTest, DeepNestingWorks) {
  Simulation sim;
  int result = 0;
  sim.spawn([](Simulation& s, int& out) -> Task<void> {
    out = co_await deeply_nested(s, 200);
  }(sim, result));
  sim.run();
  EXPECT_EQ(result, 201);
  EXPECT_EQ(sim.now(), 1u);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  std::vector<SimTime> log;
  sim.spawn(delay_then_record(sim, 100, log));
  sim.spawn(delay_then_record(sim, 900, log));
  sim.run_until(500);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(sim.now(), 500u);
  EXPECT_FALSE(sim.all_tasks_done());
  EXPECT_EQ(sim.pending_task_count(), 1u);
  sim.run();
  EXPECT_EQ(log.size(), 2u);
  EXPECT_TRUE(sim.all_tasks_done());
}

// ---- run_until boundary contract ----
//
// These tests pin the deadline semantics that were previously implicit in
// the heap's pop order, so the calendar-queue engine is held to exactly the
// same contract as the binary heap it replaced:
//   1. events scheduled *exactly at* the deadline are processed (inclusive),
//   2. including cascades: an event at the deadline that schedules further
//      work at the same timestamp runs that work too,
//   3. events strictly after the deadline stay queued,
//   4. the clock lands exactly on the deadline even when the queue drains
//      early or is empty,
//   5. a deadline in the past is a no-op: no events run, the clock never
//      moves backwards.

TEST(RunUntilBoundaryTest, EventExactlyAtDeadlineRuns) {
  Simulation sim;
  std::vector<SimTime> log;
  sim.spawn(delay_then_record(sim, 100, log));
  const std::uint64_t processed = sim.run_until(100);
  EXPECT_EQ(log, (std::vector<SimTime>{100}));
  EXPECT_GE(processed, 1u);
  EXPECT_EQ(sim.now(), 100u);
  EXPECT_TRUE(sim.all_tasks_done());
}

TEST(RunUntilBoundaryTest, CascadeAtDeadlineRunsToCompletion) {
  Simulation sim;
  std::vector<int> log;
  sim.spawn([](Simulation& s, std::vector<int>& out) -> Task<void> {
    co_await s.delay(50);
    out.push_back(1);
    co_await s.delay(0);  // re-scheduled at exactly the deadline
    out.push_back(2);
    co_await s.delay(0);
    out.push_back(3);
  }(sim, log));
  sim.run_until(50);
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 50u);
  EXPECT_TRUE(sim.all_tasks_done());
}

TEST(RunUntilBoundaryTest, EventJustAfterDeadlineStaysQueued) {
  Simulation sim;
  std::vector<SimTime> log;
  sim.spawn(delay_then_record(sim, 100, log));
  sim.spawn(delay_then_record(sim, 101, log));
  sim.run_until(100);
  EXPECT_EQ(log, (std::vector<SimTime>{100}));
  EXPECT_EQ(sim.now(), 100u);
  EXPECT_EQ(sim.pending_task_count(), 1u);
  sim.run();
  EXPECT_EQ(log, (std::vector<SimTime>{100, 101}));
}

TEST(RunUntilBoundaryTest, DeadlineCascadeSpillsPastDeadlineStaysQueued) {
  // An event at the deadline that schedules work *after* the deadline: the
  // at-deadline part runs, the spill stays queued, and the clock does not
  // advance past the deadline.
  Simulation sim;
  std::vector<int> log;
  sim.spawn([](Simulation& s, std::vector<int>& out) -> Task<void> {
    co_await s.delay(70);
    out.push_back(1);
    co_await s.delay(1);  // 71 > deadline 70
    out.push_back(2);
  }(sim, log));
  sim.run_until(70);
  EXPECT_EQ(log, (std::vector<int>{1}));
  EXPECT_EQ(sim.now(), 70u);
  EXPECT_FALSE(sim.all_tasks_done());
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 71u);
}

TEST(RunUntilBoundaryTest, ClockLandsOnDeadlineWhenQueueDrainsEarly) {
  Simulation sim;
  std::vector<SimTime> log;
  sim.spawn(delay_then_record(sim, 10, log));
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500u);
  EXPECT_TRUE(sim.all_tasks_done());
}

TEST(RunUntilBoundaryTest, ClockLandsOnDeadlineWithEmptyQueue) {
  Simulation sim;
  EXPECT_EQ(sim.run_until(250), 0u);
  EXPECT_EQ(sim.now(), 250u);
}

TEST(RunUntilBoundaryTest, PastDeadlineIsNoOpAndClockNeverMovesBackwards) {
  Simulation sim;
  std::vector<SimTime> log;
  sim.spawn(delay_then_record(sim, 100, log));
  sim.spawn(delay_then_record(sim, 300, log));
  sim.run_until(200);
  EXPECT_EQ(sim.now(), 200u);
  // Deadline earlier than now(): nothing runs, the clock stays put.
  EXPECT_EQ(sim.run_until(50), 0u);
  EXPECT_EQ(sim.now(), 200u);
  EXPECT_EQ(log, (std::vector<SimTime>{100}));
  // Re-running at the *same* deadline is also a no-op.
  EXPECT_EQ(sim.run_until(200), 0u);
  EXPECT_EQ(sim.now(), 200u);
  sim.run();
  EXPECT_EQ(log, (std::vector<SimTime>{100, 300}));
}

TEST(RunUntilBoundaryTest, SameContractUnderEveryTieBreakPolicy) {
  // The inclusive-deadline rule is policy-independent: all three tie-break
  // policies process exactly the at-deadline set, in their own order.
  for (const SchedulePolicy policy :
       {SchedulePolicy::kFifo, SchedulePolicy::kRandom, SchedulePolicy::kLifo}) {
    Simulation sim;
    sim.set_schedule_policy(policy, 7);
    std::vector<int> ran;
    auto make = [&](int id) -> Task<void> {
      co_await sim.delay(40);
      ran.push_back(id);
    };
    sim.spawn(make(1));
    sim.spawn(make(2));
    sim.spawn(make(3));
    sim.run_until(40);
    std::vector<int> sorted = ran;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{1, 2, 3})) << schedule_policy_name(policy);
    EXPECT_EQ(sim.now(), 40u);
    EXPECT_TRUE(sim.all_tasks_done());
  }
}

TEST(SimulationTest, ExceptionInRootTaskPropagates) {
  Simulation sim;
  sim.spawn([](Simulation& s) -> Task<void> {
    co_await s.delay(5);
    throw std::runtime_error("boom");
  }(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(SimulationTest, ExceptionInSubtaskPropagatesToParent) {
  Simulation sim;
  bool caught = false;
  sim.spawn([](Simulation& s, bool& flag) -> Task<void> {
    auto failing = [](Simulation& inner) -> Task<void> {
      co_await inner.delay(1);
      throw std::logic_error("inner");
    };
    try {
      co_await failing(s);
    } catch (const std::logic_error&) {
      flag = true;
    }
  }(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(ResourceTest, UncontendedAcquireDoesNotWait) {
  Simulation sim;
  Resource lock(sim, "lock");
  SimTime acquired_at = 1;
  sim.spawn([](Simulation& s, Resource& r, SimTime& at) -> Task<void> {
    ScopedResource guard = co_await r.scoped();
    at = s.now();
  }(sim, lock, acquired_at));
  sim.run();
  EXPECT_EQ(acquired_at, 0u);
  EXPECT_EQ(lock.acquisitions(), 1u);
  EXPECT_EQ(lock.total_wait_ns(), 0u);
  EXPECT_TRUE(lock.available());
}

Task<void> hold_lock(Simulation& sim, Resource& lock, SimTime hold, std::vector<SimTime>& log) {
  ScopedResource guard = co_await lock.scoped();
  log.push_back(sim.now());
  co_await sim.delay(hold);
}

TEST(ResourceTest, ContendedAcquiresSerializeFifo) {
  Simulation sim;
  Resource lock(sim, "mmu_lock");
  std::vector<SimTime> log;
  for (int i = 0; i < 4; ++i) {
    sim.spawn(hold_lock(sim, lock, 100, log));
  }
  sim.run();
  EXPECT_EQ(log, (std::vector<SimTime>{0, 100, 200, 300}));
  EXPECT_EQ(lock.acquisitions(), 4u);
  // Waiters queued for 100+200+300 ns total.
  EXPECT_EQ(lock.total_wait_ns(), 600u);
  EXPECT_EQ(lock.peak_queue_depth(), 3u);
}

TEST(ResourceTest, CapacityTwoAllowsTwoConcurrentHolders) {
  Simulation sim;
  Resource pool(sim, "pool", 2);
  std::vector<SimTime> log;
  for (int i = 0; i < 4; ++i) {
    sim.spawn(hold_lock(sim, pool, 100, log));
  }
  sim.run();
  EXPECT_EQ(log, (std::vector<SimTime>{0, 0, 100, 100}));
}

TEST(ResourceTest, ManualAcquireRelease) {
  Simulation sim;
  Resource lock(sim, "lock");
  std::vector<int> order;
  sim.spawn([](Simulation& s, Resource& r, std::vector<int>& out) -> Task<void> {
    co_await r.acquire();
    out.push_back(1);
    co_await s.delay(10);
    r.release();
  }(sim, lock, order));
  sim.spawn([](Simulation& s, Resource& r, std::vector<int>& out) -> Task<void> {
    co_await r.acquire();
    out.push_back(2);
    r.release();
    co_await s.delay(0);
  }(sim, lock, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 10u);
}

TEST(ResourceTest, MoveAssignGuardReleases) {
  Simulation sim;
  Resource lock(sim, "lock");
  sim.spawn([](Simulation& s, Resource& r) -> Task<void> {
    ScopedResource a = co_await r.scoped();
    EXPECT_FALSE(r.available());
    a = ScopedResource();  // releases
    EXPECT_TRUE(r.available());
    co_await s.delay(1);
  }(sim, lock));
  sim.run();
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulation sim;
    Resource lock(sim, "lock");
    std::vector<SimTime> log;
    Xoshiro256 rng(1234);
    for (int i = 0; i < 32; ++i) {
      sim.spawn(hold_lock(sim, lock, rng.next_in(1, 50), log));
    }
    sim.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

namespace {

// Runs three same-timestamp tasks under `policy` and returns their execution
// order. Recording happens at the task's very first event, so the returned
// order is exactly the policy's tie-break of three simultaneous events.
std::vector<int> tie_order(SchedulePolicy policy, std::uint64_t seed) {
  Simulation sim;
  sim.set_schedule_policy(policy, seed);
  std::vector<int> order;
  auto make = [&](int id) -> Task<void> {
    order.push_back(id);
    co_return;
  };
  for (int id = 1; id <= 3; ++id) {
    sim.spawn(make(id));
  }
  sim.run();
  return order;
}

}  // namespace

TEST(SchedulePolicyTest, FifoMatchesSpawnOrder) {
  EXPECT_EQ(tie_order(SchedulePolicy::kFifo, 0), (std::vector<int>{1, 2, 3}));
}

TEST(SchedulePolicyTest, LifoReversesSpawnOrder) {
  EXPECT_EQ(tie_order(SchedulePolicy::kLifo, 0), (std::vector<int>{3, 2, 1}));
}

TEST(SchedulePolicyTest, RandomIsDeterministicPerSeedAndExploresOrders) {
  // Identical (policy, seed) replays identically.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EXPECT_EQ(tie_order(SchedulePolicy::kRandom, seed),
              tie_order(SchedulePolicy::kRandom, seed));
  }
  // Some seed must produce a non-FIFO order; with 3! = 6 orderings and 32
  // seeds the chance of all-FIFO under a working hash is negligible.
  bool explored = false;
  for (std::uint64_t seed = 1; seed <= 32 && !explored; ++seed) {
    explored = tie_order(SchedulePolicy::kRandom, seed) != (std::vector<int>{1, 2, 3});
  }
  EXPECT_TRUE(explored);
}

TEST(SchedulePolicyTest, TimeOrderAlwaysRespected) {
  // Tie-breaking never reorders events across distinct timestamps.
  for (const SchedulePolicy policy :
       {SchedulePolicy::kFifo, SchedulePolicy::kRandom, SchedulePolicy::kLifo}) {
    Simulation sim;
    sim.set_schedule_policy(policy, 5);
    std::vector<SimTime> log;
    sim.spawn(delay_then_record(sim, 300, log));
    sim.spawn(delay_then_record(sim, 100, log));
    sim.spawn(delay_then_record(sim, 200, log));
    sim.run();
    EXPECT_EQ(log, (std::vector<SimTime>{100, 200, 300}));
  }
}

TEST(BlockedReportTest, NamesPendingTasksAndTheirQueues) {
  Simulation sim;
  Resource lock_a(sim, "lock_a");
  Resource lock_b(sim, "lock_b");
  // Classic AB-BA deadlock, with a third task queued behind it.
  sim.spawn([](Simulation& s, Resource& a, Resource& b) -> Task<void> {
    ScopedResource ga = co_await a.scoped();
    co_await s.delay(10);
    ScopedResource gb = co_await b.scoped();
  }(sim, lock_a, lock_b), "forward");
  sim.spawn([](Simulation& s, Resource& a, Resource& b) -> Task<void> {
    ScopedResource gb = co_await b.scoped();
    co_await s.delay(10);
    ScopedResource ga = co_await a.scoped();
  }(sim, lock_a, lock_b), "backward");
  sim.spawn([](Simulation& s, Resource& a) -> Task<void> {
    co_await s.delay(20);
    ScopedResource ga = co_await a.scoped();
  }(sim, lock_a), "bystander");
  sim.run();
  EXPECT_FALSE(sim.all_tasks_done());
  EXPECT_EQ(sim.pending_task_count(), 3u);
  const std::string report = sim.blocked_report();
  EXPECT_NE(report.find("forward"), std::string::npos);
  EXPECT_NE(report.find("backward"), std::string::npos);
  EXPECT_NE(report.find("bystander"), std::string::npos);
  EXPECT_NE(report.find("lock_a"), std::string::npos);
  EXPECT_NE(report.find("lock_b"), std::string::npos);
  // The deadlocked frames hold guards on lock_a/lock_b; destroy them while
  // both locks are still in scope.
  sim.abandon_pending();
}

TEST(BlockedReportTest, EmptyWhenEverythingCompleted) {
  Simulation sim;
  std::vector<SimTime> log;
  sim.spawn(delay_then_record(sim, 10, log), "fine");
  sim.run();
  EXPECT_TRUE(sim.all_tasks_done());
  EXPECT_TRUE(sim.blocked_report().empty());
}

TEST(RandomTest, ReproducibleStreams) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(RandomTest, BoundsRespected) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.next_in(10, 20);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 20u);
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace pvm
