// Tests for the §2.3 management-flexibility claim: hardware-assisted nesting
// pins the L1 instance to its host; PVM's L1 remains an ordinary, migratable
// VM. Plus pre-copy mechanics of the migration engine itself.

#include <gtest/gtest.h>

#include "src/backends/platform.h"
#include "src/hv/migration.h"
#include "src/workloads/memstress.h"
#include "src/workloads/runner.h"

namespace pvm {
namespace {

MigrationResult migrate_l1_after_workload(DeployMode mode) {
  PlatformConfig config;
  config.mode = mode;
  VirtualPlatform platform(config);
  // Run real L2 work first so the L1 instance has resident state.
  MemStressParams params;
  params.total_bytes = 4ull << 20;
  run_containers(platform, 2,
                 [&](int, SecureContainer& c, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
                   return memstress_process(c, vcpu, proc, params);
                 });

  MigrationEngine engine(platform.l0());
  MigrationResult result;
  platform.sim().spawn([](MigrationEngine& e, HostHypervisor::Vm& vm,
                          MigrationResult* out) -> Task<void> {
    *out = co_await e.migrate(vm);
  }(engine, *platform.l1_vm(), &result));
  platform.sim().run();
  return result;
}

TEST(MigrationTest, PvmL1StaysMigratable) {
  const MigrationResult result = migrate_l1_after_workload(DeployMode::kPvmNst);
  EXPECT_TRUE(result.succeeded) << result.failure_reason;
  EXPECT_GT(result.pages_copied, 0u);
  EXPECT_GT(result.rounds, 1);
  EXPECT_GT(result.total_time, 0u);
  EXPECT_LT(result.downtime, result.total_time);
}

TEST(MigrationTest, HardwareNestedL1IsPinned) {
  for (DeployMode mode : {DeployMode::kKvmEptNst, DeployMode::kSptOnEptNst}) {
    SCOPED_TRACE(deploy_mode_name(mode));
    const MigrationResult result = migrate_l1_after_workload(mode);
    EXPECT_FALSE(result.succeeded);
    EXPECT_NE(result.failure_reason.find("nested-VMX"), std::string::npos);
    EXPECT_EQ(result.pages_copied, 0u);
  }
}

TEST(MigrationTest, PvmDirectL1StaysMigratableToo) {
  const MigrationResult result = migrate_l1_after_workload(DeployMode::kPvmDirectNst);
  EXPECT_TRUE(result.succeeded) << result.failure_reason;
}

TEST(MigrationTest, PreCopyRoundsShrinkGeometrically) {
  Simulation sim;
  CostModel costs;
  CounterSet counters;
  TraceLog trace;
  HostHypervisor l0(sim, costs, counters, trace, 1u << 22);
  HostHypervisor::Vm& vm = l0.create_vm("vm", 1u << 20, false);
  // Back 64Ki pages (256 MiB resident).
  for (std::uint64_t frame = 0; frame < (1u << 16); ++frame) {
    vm.ept().map(frame << kPageShift, frame, PteFlags::rw_kernel());
  }

  MigrationEngine engine(l0);
  MigrationResult result;
  sim.spawn([](MigrationEngine& e, HostHypervisor::Vm& v, MigrationResult* out) -> Task<void> {
    *out = co_await e.migrate(v);
  }(engine, vm, &result));
  sim.run();

  ASSERT_TRUE(result.succeeded);
  // 64Ki resident + geometric re-dirty: total copied a bit above 64Ki.
  EXPECT_GT(result.pages_copied, 1u << 16);
  EXPECT_LT(result.pages_copied, (1u << 16) * 2);
  // Downtime covers <= stop_copy_pages + fixed pause, far below total.
  EXPECT_LT(result.downtime, result.total_time / 4);
  // 256 MiB at 25 Gbit/s is ~86 ms; with re-dirtying somewhat more.
  EXPECT_GT(result.total_time, 80 * kNsPerMs);
  EXPECT_LT(result.total_time, 200 * kNsPerMs);
}

TEST(MigrationTest, IdleVmMigratesWithMinimalState) {
  Simulation sim;
  CostModel costs;
  CounterSet counters;
  TraceLog trace;
  HostHypervisor l0(sim, costs, counters, trace, 1u << 20);
  HostHypervisor::Vm& vm = l0.create_vm("idle", 1024, false);
  MigrationEngine engine(l0);
  MigrationResult result;
  sim.spawn([](MigrationEngine& e, HostHypervisor::Vm& v, MigrationResult* out) -> Task<void> {
    *out = co_await e.migrate(v);
  }(engine, vm, &result));
  sim.run();
  EXPECT_TRUE(result.succeeded);
  EXPECT_GE(result.pages_copied, 1u);
  EXPECT_LE(result.rounds, 2);
}

TEST(MigrationTest, PinningIsSetOnlyByHardwareNestedModes) {
  for (DeployMode mode : {DeployMode::kPvmNst, DeployMode::kPvmDirectNst}) {
    PlatformConfig config;
    config.mode = mode;
    VirtualPlatform platform(config);
    platform.create_container("c0");
    EXPECT_FALSE(platform.l1_vm()->nested_vmx_active()) << deploy_mode_name(mode);
  }
  for (DeployMode mode : {DeployMode::kKvmEptNst, DeployMode::kSptOnEptNst}) {
    PlatformConfig config;
    config.mode = mode;
    VirtualPlatform platform(config);
    platform.create_container("c0");
    EXPECT_TRUE(platform.l1_vm()->nested_vmx_active()) << deploy_mode_name(mode);
  }
}

}  // namespace
}  // namespace pvm
