// Tests for the §2.3 management-flexibility claim: hardware-assisted nesting
// pins the L1 instance to its host; PVM's L1 remains an ordinary, migratable
// VM. Plus the migration engine's v2 mechanics: real dirty-page tracking
// (write-protect and PML protocols), convergence control, post-copy
// degradation, and the WAL-backed dirty-log stream.

#include <gtest/gtest.h>

#include "src/backends/platform.h"
#include "src/hv/migration.h"
#include "src/wal/wal.h"
#include "src/workloads/memstress.h"
#include "src/workloads/runner.h"

namespace pvm {
namespace {

MigrationResult migrate_l1_after_workload(DeployMode mode) {
  PlatformConfig config;
  config.mode = mode;
  VirtualPlatform platform(config);
  // Run real L2 work first so the L1 instance has resident state.
  MemStressParams params;
  params.total_bytes = 4ull << 20;
  run_containers(platform, 2,
                 [&](int, SecureContainer& c, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
                   return memstress_process(c, vcpu, proc, params);
                 });

  MigrationEngine engine(platform.l0());
  MigrationResult result;
  platform.sim().spawn([](MigrationEngine& e, HostHypervisor::Vm& vm,
                          MigrationResult* out) -> Task<void> {
    *out = co_await e.migrate(vm);
  }(engine, *platform.l1_vm(), &result));
  platform.sim().run();
  return result;
}

TEST(MigrationTest, PvmL1StaysMigratable) {
  const MigrationResult result = migrate_l1_after_workload(DeployMode::kPvmNst);
  EXPECT_TRUE(result.succeeded) << result.failure_reason;
  EXPECT_GT(result.pages_copied, 0u);
  EXPECT_GT(result.rounds, 1);
  EXPECT_GT(result.total_time, 0u);
  EXPECT_LT(result.downtime, result.total_time);
}

TEST(MigrationTest, HardwareNestedL1IsPinned) {
  for (DeployMode mode : {DeployMode::kKvmEptNst, DeployMode::kSptOnEptNst}) {
    SCOPED_TRACE(deploy_mode_name(mode));
    const MigrationResult result = migrate_l1_after_workload(mode);
    EXPECT_FALSE(result.succeeded);
    EXPECT_NE(result.failure_reason.find("nested-VMX"), std::string::npos);
    EXPECT_EQ(result.pages_copied, 0u);
  }
}

TEST(MigrationTest, PvmDirectL1StaysMigratableToo) {
  const MigrationResult result = migrate_l1_after_workload(DeployMode::kPvmDirectNst);
  EXPECT_TRUE(result.succeeded) << result.failure_reason;
}

// ---- Engine-level fixture: a VM with known resident state and a scripted
// guest dirtier driving the DirtyTracker directly (timing-neutral, so WP and
// PML runs execute identical schedules). ----

struct MigrationFixture {
  Simulation sim;
  CostModel costs;
  CounterSet counters;
  TraceLog trace;
  HostHypervisor l0{sim, costs, counters, trace, 1u << 22};
  HostHypervisor::Vm* vm = nullptr;

  explicit MigrationFixture(std::uint64_t resident_pages,
                            SchedulePolicy policy = SchedulePolicy::kFifo,
                            std::uint64_t seed = 1) {
    sim.set_schedule_policy(policy, seed);
    vm = &l0.create_vm("vm", 1u << 20, false);
    for (std::uint64_t frame = 0; frame < resident_pages; ++frame) {
      vm->ept().map(frame << kPageShift, frame, PteFlags::rw_kernel());
    }
  }

  // Dirties the same `pages` distinct guest pages once per `period`, for
  // `bursts` periods. Pure tracker traffic — no simulated cost — so the
  // schedule is identical whichever protocol is armed.
  void spawn_dirtier(std::uint64_t pages, int bursts, SimTime period) {
    sim.spawn([](Simulation& s, HostHypervisor::Vm& v, std::uint64_t n, int b,
                 SimTime p) -> Task<void> {
      for (int burst = 0; burst < b; ++burst) {
        co_await s.delay(p);
        for (std::uint64_t page = 0; page < n; ++page) {
          v.dirty_tracker().note_store(0, dirty_page_key(1, page << kPageShift));
        }
      }
    }(sim, *vm, pages, bursts, period));
  }

  MigrationResult migrate(const MigrationParams& params) {
    MigrationEngine engine(l0);
    MigrationResult result;
    sim.spawn([](MigrationEngine& e, HostHypervisor::Vm& v, const MigrationParams& p,
                 MigrationResult* out) -> Task<void> {
      *out = co_await e.migrate(v, p);
    }(engine, *vm, params, &result));
    sim.run();
    return result;
  }
};

TEST(MigrationTest, CopyTimeCeilsWithOneNsFloor) {
  MigrationParams params;
  params.bandwidth_bytes_per_sec = 4096.0 * 1e9;  // exactly one page per ns
  EXPECT_EQ(MigrationEngine::copy_time(0, params), 0u);
  EXPECT_EQ(MigrationEngine::copy_time(1, params), 1u);
  EXPECT_EQ(MigrationEngine::copy_time(7, params), 7u);

  params.bandwidth_bytes_per_sec = 8192.0 * 1e9;  // half a ns per page
  EXPECT_EQ(MigrationEngine::copy_time(1, params), 1u);  // 0.5 ns rounds up
  EXPECT_EQ(MigrationEngine::copy_time(3, params), 2u);  // 1.5 ns rounds up

  // Sub-nanosecond transfers used to truncate to 0; they must floor at 1 ns.
  params.bandwidth_bytes_per_sec = 4.096e15;
  EXPECT_EQ(MigrationEngine::copy_time(1, params), 1u);
  EXPECT_EQ(MigrationEngine::copy_time(1000, params), 1u);
}

TEST(MigrationTest, QuiescentVmConvergesInOneRoundExactly) {
  MigrationFixture fx(/*resident_pages=*/1u << 16);
  const MigrationResult result = fx.migrate({});
  ASSERT_TRUE(result.succeeded) << result.failure_reason;
  // Nothing dirtied: one full-copy round plus stop-and-copy of zero pages.
  EXPECT_EQ(result.rounds, 2);
  EXPECT_EQ(result.pages_copied, 1u << 16);
  EXPECT_EQ(result.pages_dirtied, 0u);
  // Stop-and-copy ships only vCPU/device state (the fixed pause).
  EXPECT_EQ(result.downtime, 200 * kNsPerUs);
  // 256 MiB at 25 Gbit/s is ~86 ms.
  EXPECT_GT(result.total_time, 80 * kNsPerMs);
  EXPECT_LT(result.total_time, 100 * kNsPerMs);
}

TEST(MigrationTest, DirtyingGuestForcesExtraRoundsThenConverges) {
  MigrationFixture fx(/*resident_pages=*/8192);
  // 2000 pages per 1 ms while round 0 streams (~10.7 ms), stopping shortly
  // after: the engine needs extra rounds to drain the dirty set.
  fx.spawn_dirtier(2000, /*bursts=*/12, /*period=*/kNsPerMs);
  const MigrationResult result = fx.migrate({});
  ASSERT_TRUE(result.succeeded) << result.failure_reason;
  EXPECT_FALSE(result.fell_back_postcopy);
  EXPECT_GT(result.rounds, 2);
  EXPECT_GT(result.pages_dirtied, 0u);
  // Every dirtied page is copied exactly once (in a later round or at
  // stop-and-copy), on top of the resident set.
  EXPECT_EQ(result.pages_copied, 8192u + result.pages_dirtied);
  // Write-protect: one fault per first store per round.
  EXPECT_EQ(result.wp_faults, result.pages_dirtied);
  EXPECT_EQ(result.pml_appends, 0u);
}

TEST(MigrationTest, WpAndPmlAgreeAcrossTiePolicies) {
  for (SchedulePolicy policy :
       {SchedulePolicy::kFifo, SchedulePolicy::kRandom, SchedulePolicy::kLifo}) {
    SCOPED_TRACE(schedule_policy_name(policy));
    MigrationResult results[2];
    for (DirtyProtocol protocol : {DirtyProtocol::kWriteProtect, DirtyProtocol::kPml}) {
      MigrationFixture fx(/*resident_pages=*/8192, policy, /*seed=*/7);
      fx.spawn_dirtier(1800, /*bursts=*/12, /*period=*/kNsPerMs);
      MigrationParams params;
      params.protocol = protocol;
      results[protocol == DirtyProtocol::kPml ? 1 : 0] = fx.migrate(params);
      // The tracker drained: nothing left pending after migration.
      EXPECT_EQ(fx.vm->dirty_tracker().dirty_count(), 0u);
      // Resident set contents are untouched by migration.
      EXPECT_EQ(fx.vm->ept().present_leaf_count(), 8192u);
    }
    const MigrationResult& wp = results[0];
    const MigrationResult& pml = results[1];
    ASSERT_TRUE(wp.succeeded) << wp.failure_reason;
    ASSERT_TRUE(pml.succeeded) << pml.failure_reason;
    // The protocols discover the same dirty sets: identical copy totals,
    // round structure, and timing — they differ only in cost accounting.
    EXPECT_EQ(wp.pages_copied, pml.pages_copied);
    EXPECT_EQ(wp.pages_dirtied, pml.pages_dirtied);
    EXPECT_EQ(wp.rounds, pml.rounds);
    EXPECT_EQ(wp.total_time, pml.total_time);
    EXPECT_EQ(wp.pages_copied, 8192u + wp.pages_dirtied);
    EXPECT_GT(wp.wp_faults, 0u);
    EXPECT_EQ(wp.pml_appends, 0u);
    EXPECT_GT(pml.pml_appends, 0u);
    EXPECT_EQ(pml.wp_faults, 0u);
    EXPECT_GT(pml.pml_flushes, 0u);  // 1800 stores/round > the 512-entry log
  }
}

TEST(MigrationTest, WpAndPmlAgreeUnderRealGuestLoad) {
  // Platform-level differential: a memstress process keeps dirtying through
  // the backends' fault paths while the L1 instance migrates. The protocols
  // perturb guest timing differently, so dirty sets may differ — but the
  // resident set at migration start is fixed by the (identical) boot, so
  // pages_copied - pages_dirtied must match across protocols.
  for (SchedulePolicy policy :
       {SchedulePolicy::kFifo, SchedulePolicy::kRandom, SchedulePolicy::kLifo}) {
    SCOPED_TRACE(schedule_policy_name(policy));
    std::uint64_t resident[2] = {0, 0};
    for (DirtyProtocol protocol : {DirtyProtocol::kWriteProtect, DirtyProtocol::kPml}) {
      PlatformConfig config;
      config.mode = DeployMode::kPvmNst;
      config.schedule_policy = policy;
      config.schedule_seed = 7;
      VirtualPlatform platform(config);
      SecureContainer& c = platform.create_container("c0");
      platform.sim().spawn(c.boot(16));
      platform.sim().run();
      ASSERT_FALSE(c.boot_failed());

      MemStressParams params;
      params.total_bytes = 8ull << 20;
      MigrationEngine engine(platform.l0());
      MigrationParams mparams;
      mparams.protocol = protocol;
      MigrationResult result;
      platform.sim().spawn(memstress_process(c, c.vcpu(0), *c.init_process(), params));
      platform.sim().spawn([](MigrationEngine& e, HostHypervisor::Vm& v,
                              const MigrationParams& p, MigrationResult* out) -> Task<void> {
        *out = co_await e.migrate(v, p);
      }(engine, *platform.l1_vm(), mparams, &result));
      platform.sim().run();

      ASSERT_TRUE(result.succeeded) << result.failure_reason;
      ASSERT_GE(result.pages_copied, result.pages_dirtied);
      resident[protocol == DirtyProtocol::kPml ? 1 : 0] =
          result.pages_copied - result.pages_dirtied;
      if (protocol == DirtyProtocol::kWriteProtect) {
        EXPECT_GT(result.wp_faults, 0u);
        EXPECT_EQ(result.pml_appends, 0u);
      } else {
        EXPECT_GT(result.pml_appends, 0u);
        EXPECT_EQ(result.wp_faults, 0u);
      }
    }
    EXPECT_EQ(resident[0], resident[1]);
  }
}

TEST(MigrationTest, PostCopyModeShipsStateThenFetchesHotPagesRemotely) {
  MigrationFixture fx(/*resident_pages=*/4096);
  MigrationParams params;
  params.mode = MigrationMode::kPostCopy;
  const MigrationResult result = fx.migrate(params);
  ASSERT_TRUE(result.succeeded) << result.failure_reason;
  // Downtime is exactly the state-ship pause: the VM resumes remotely at
  // once and pays for its memory via demand fetches instead.
  EXPECT_EQ(result.downtime, 200 * kNsPerUs);
  EXPECT_EQ(result.pages_copied, 4096u);
  EXPECT_EQ(result.remote_faults, 1024u);  // the stop-copy budget's worth
  EXPECT_EQ(fx.counters.get(Counter::kMigrationRemoteFault), 1024u);
}

TEST(MigrationTest, AutoModeDegradesToPostCopyWhenPreCopyDiverges) {
  MigrationFixture fx(/*resident_pages=*/8192);
  // The guest dirties 2000 pages/ms indefinitely (on this migration's time
  // scale): the dirty set never shrinks below what each round just copied.
  fx.spawn_dirtier(2000, /*bursts=*/64, /*period=*/kNsPerMs);
  MigrationParams params;
  params.divergence_rounds = 2;
  const MigrationResult result = fx.migrate(params);
  ASSERT_TRUE(result.succeeded) << result.failure_reason;
  EXPECT_TRUE(result.fell_back_postcopy);
  EXPECT_GT(result.remote_faults, 0u);
  EXPECT_EQ(fx.counters.get(Counter::kMigrationFallback), 1u);
  // Post-copy's downtime: the fixed state-ship pause only.
  EXPECT_EQ(result.downtime, 200 * kNsPerUs);
}

TEST(MigrationTest, PreCopyModeFailsInsteadOfDegrading) {
  MigrationFixture fx(/*resident_pages=*/8192);
  fx.spawn_dirtier(2000, /*bursts=*/64, /*period=*/kNsPerMs);
  MigrationParams params;
  params.mode = MigrationMode::kPreCopy;
  params.divergence_rounds = 2;
  const MigrationResult result = fx.migrate(params);
  EXPECT_FALSE(result.succeeded);
  EXPECT_FALSE(result.fell_back_postcopy);
  EXPECT_NE(result.failure_reason.find("diverged"), std::string::npos)
      << result.failure_reason;
}

TEST(MigrationTest, DirtyLogStreamsToWalWithCheckpoint) {
  MigrationFixture fx(/*resident_pages=*/8192);
  // The dirtier finishes (8 ms) before round 0's copy does (~10.7 ms), so no
  // store lands between the last collect and stop-and-copy — every kDirtyPage
  // record in the WAL corresponds to a collected (counted) dirty page.
  fx.spawn_dirtier(500, /*bursts=*/8, /*period=*/kNsPerMs);
  wal::Log log("wal:migration:vm");
  MigrationParams params;
  params.wal = &log;
  const MigrationResult result = fx.migrate(params);
  ASSERT_TRUE(result.succeeded) << result.failure_reason;

  const wal::RecoveryResult r = wal::recover(log.bytes());
  EXPECT_FALSE(r.torn_tail);
  ASSERT_TRUE(r.last_checkpoint.has_value());
  std::uint64_t dirty_records = 0;
  std::uint64_t round_records = 0;
  for (const wal::Record& record : r.records) {
    dirty_records += record.type == wal::RecordType::kDirtyPage ? 1 : 0;
    round_records += record.type == wal::RecordType::kRoundBegin ? 1 : 0;
  }
  // One kDirtyPage record per first-touch, one kRoundBegin per collect.
  EXPECT_EQ(dirty_records, result.pages_dirtied);
  EXPECT_EQ(round_records, static_cast<std::uint64_t>(result.rounds) - 1);
}

TEST(MigrationTest, IdleVmMigratesWithMinimalState) {
  Simulation sim;
  CostModel costs;
  CounterSet counters;
  TraceLog trace;
  HostHypervisor l0(sim, costs, counters, trace, 1u << 20);
  HostHypervisor::Vm& vm = l0.create_vm("idle", 1024, false);
  MigrationEngine engine(l0);
  MigrationResult result;
  sim.spawn([](MigrationEngine& e, HostHypervisor::Vm& v, MigrationResult* out) -> Task<void> {
    *out = co_await e.migrate(v);
  }(engine, vm, &result));
  sim.run();
  EXPECT_TRUE(result.succeeded);
  EXPECT_GE(result.pages_copied, 1u);
  EXPECT_LE(result.rounds, 2);
}

TEST(MigrationTest, PinningIsSetOnlyByHardwareNestedModes) {
  for (DeployMode mode : {DeployMode::kPvmNst, DeployMode::kPvmDirectNst}) {
    PlatformConfig config;
    config.mode = mode;
    VirtualPlatform platform(config);
    platform.create_container("c0");
    EXPECT_FALSE(platform.l1_vm()->nested_vmx_active()) << deploy_mode_name(mode);
  }
  for (DeployMode mode : {DeployMode::kKvmEptNst, DeployMode::kSptOnEptNst}) {
    PlatformConfig config;
    config.mode = mode;
    VirtualPlatform platform(config);
    platform.create_container("c0");
    EXPECT_TRUE(platform.l1_vm()->nested_vmx_active()) << deploy_mode_name(mode);
  }
}

}  // namespace
}  // namespace pvm
