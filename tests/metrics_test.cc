// Tests for counters, histograms, and table rendering.

#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "src/metrics/counters.h"
#include "src/metrics/histogram.h"
#include "src/metrics/table.h"

namespace pvm {
namespace {

TEST(CounterSetTest, StartsZeroAndAccumulates) {
  CounterSet counters;
  EXPECT_EQ(counters.get(Counter::kWorldSwitch), 0u);
  counters.add(Counter::kWorldSwitch);
  counters.add(Counter::kWorldSwitch, 5);
  EXPECT_EQ(counters.get(Counter::kWorldSwitch), 6u);
  counters.reset();
  EXPECT_EQ(counters.get(Counter::kWorldSwitch), 0u);
}

TEST(CounterSetTest, DeltaSinceSnapshot) {
  CounterSet counters;
  counters.add(Counter::kL0Exit, 10);
  const CounterSet snapshot = counters;
  counters.add(Counter::kL0Exit, 7);
  counters.add(Counter::kTlbMiss, 3);
  const CounterSet delta = counters.delta_since(snapshot);
  EXPECT_EQ(delta.get(Counter::kL0Exit), 7u);
  EXPECT_EQ(delta.get(Counter::kTlbMiss), 3u);
  EXPECT_EQ(delta.get(Counter::kWorldSwitch), 0u);
}

TEST(CounterSetTest, EveryCounterHasAName) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    EXPECT_NE(counter_name(static_cast<Counter>(i)), "unknown") << "counter index " << i;
  }
}

TEST(CounterSetTest, CounterNamesDistinctAndNonEmpty) {
  std::set<std::string_view> seen;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const std::string_view name = counter_name(static_cast<Counter>(i));
    EXPECT_FALSE(name.empty()) << "counter index " << i;
    EXPECT_TRUE(seen.insert(name).second) << "duplicate counter name: " << name;
  }
}

TEST(CounterSetTest, DeltaSinceSaturatesAtZero) {
  // A reset() between the snapshot and the delta used to wrap the subtraction
  // to ~2^64; it must read as zero progress instead.
  CounterSet counters;
  counters.add(Counter::kL0Exit, 10);
  const CounterSet snapshot = counters;
  counters.reset();
  counters.add(Counter::kL0Exit, 3);
  counters.add(Counter::kTlbMiss, 2);
  const CounterSet delta = counters.delta_since(snapshot);
  EXPECT_EQ(delta.get(Counter::kL0Exit), 0u);
  EXPECT_EQ(delta.get(Counter::kTlbMiss), 2u);
}

TEST(LatencyHistogramTest, BasicAggregates) {
  LatencyHistogram h;
  h.record(100);
  h.record(200);
  h.record(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 600u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 300u);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(LatencyHistogramTest, EmptyIsSafe) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0u);
}

TEST(LatencyHistogramTest, QuantileBracketsValues) {
  LatencyHistogram h;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    h.record(i);
  }
  // The p50 bucket upper bound must be >= 500 and within a power of two.
  const std::uint64_t p50 = h.quantile(0.5);
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 1023u);
  EXPECT_GE(h.quantile(1.0), 1000u);
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"config", "value"});
  table.add_row({"kvm-ept (BM)", "0.46"});
  table.add_row({"pvm (NST)", "0.48"});
  const std::string out = table.render();
  EXPECT_NE(out.find("config"), std::string::npos);
  EXPECT_NE(out.find("kvm-ept (BM)"), std::string::npos);
  EXPECT_NE(out.find("0.48"), std::string::npos);
  // Header underline present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"x"});
  EXPECT_NO_THROW(table.render());
}

TEST(TextTableTest, CellFormatters) {
  EXPECT_EQ(TextTable::cell(1.234, 2), "1.23");
  EXPECT_EQ(TextTable::cell(std::uint64_t{42}), "42");
}

}  // namespace
}  // namespace pvm
