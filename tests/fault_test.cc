// pvm::fault: deterministic injection plans, the recovery protocols they
// drive (reclaim, guest OOM kill, migration retry/backoff, VMRESUME retry,
// per-vCPU watchdog), and replay determinism of a faulted run.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "src/backends/platform.h"
#include "src/check/chaos.h"
#include "src/check/simcheck.h"
#include "src/core/memory_engine.h"
#include "src/fault/fault.h"
#include "src/fault/watchdog.h"
#include "src/guest/guest_kernel.h"
#include "src/hv/migration.h"
#include "src/workloads/memstress.h"
#include "src/workloads/runner.h"

namespace pvm {
namespace {

std::string plan_signature(const fault::FaultPlan& plan) {
  std::ostringstream sig;
  for (const fault::FaultSpec& spec : plan.specs) {
    sig << fault_kind_name(spec.kind) << ":" << spec.target << ":"
        << spec.trigger.probability << ":" << spec.delay_ns << ":" << spec.capacity_frames
        << ":" << spec.fail_count << ";";
  }
  return sig.str();
}

TEST(FaultPlanTest, PresetsParseAndCarrySeeds) {
  const fault::FaultPlan storm = fault::FaultPlan::parse("bootstorm:seed=7");
  EXPECT_EQ(storm.name, "bootstorm");
  EXPECT_EQ(storm.seed, 7u);
  EXPECT_FALSE(storm.empty());

  EXPECT_TRUE(fault::FaultPlan::parse("none").empty());
  EXPECT_THROW(fault::FaultPlan::parse("no-such-plan"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("bootstorm:sneed=7"), std::invalid_argument);

  for (const std::string_view name : fault::FaultPlan::preset_names()) {
    EXPECT_NO_THROW(fault::FaultPlan::preset(name));
  }
}

TEST(FaultPlanTest, MigrationStallSpellingsRoundTripToCanonicalForm) {
  // Historical drift: the preset was documented "migration-stall" but the
  // kind name prints "migration_stall", and callers used both. Both must
  // parse, and both must normalize to the one canonical plan.
  const fault::FaultPlan dash = fault::FaultPlan::parse("migration-stall");
  const fault::FaultPlan underscore = fault::FaultPlan::parse("migration_stall");
  EXPECT_EQ(dash.name, "migration-stall");
  EXPECT_EQ(underscore.name, "migration-stall");
  EXPECT_EQ(plan_signature(dash), plan_signature(underscore));
  ASSERT_FALSE(dash.specs.empty());
  EXPECT_EQ(dash.specs.front().kind, fault::FaultKind::kMigrationStall);
  // Round trip: the canonical name reparses to itself, seed and all.
  const fault::FaultPlan again = fault::FaultPlan::parse(dash.name + ":seed=9");
  EXPECT_EQ(again.name, "migration-stall");
  EXPECT_EQ(again.seed, 9u);
  EXPECT_EQ(plan_signature(again), plan_signature(dash));
}

TEST(FaultPlanTest, FaultstormPlansAreDeterministicPerSeed) {
  const fault::FaultPlan a = faultstorm_plan(5);
  const fault::FaultPlan b = faultstorm_plan(5);
  EXPECT_EQ(plan_signature(a), plan_signature(b));
  EXPECT_NE(plan_signature(a), plan_signature(faultstorm_plan(6)));
  // Every storm carries the pressure spec that drives the recovery paths,
  // and stays under the retry-loop-safe probability ceiling.
  ASSERT_FALSE(a.specs.empty());
  EXPECT_EQ(a.specs.front().kind, fault::FaultKind::kFramePressure);
  for (const fault::FaultSpec& spec : a.specs) {
    EXPECT_LE(spec.trigger.probability, 0.11);
  }
}

TEST(FaultInjectorTest, FramePressureBlocksAllocateButNotOrThrow) {
  FrameAllocator frames("test.pool", 16);
  fault::FaultInjector injector;
  fault::FaultPlan plan;
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kFramePressure;
  spec.trigger.probability = 1.0;
  plan.specs.push_back(spec);
  injector.arm(std::move(plan));

  frames.set_faults(&injector);
  EXPECT_FALSE(frames.allocate().has_value());
  // allocate_or_throw is reserved for configuration-bug paths and is
  // deliberately exempt from injection.
  EXPECT_NO_THROW(frames.allocate_or_throw());
  frames.set_faults(nullptr);
  EXPECT_TRUE(frames.allocate().has_value());
}

TEST(FaultInjectorTest, AtOpFiresOnExactlyThatOpportunity) {
  FrameAllocator frames("test.pool", 16);
  fault::FaultInjector injector;
  fault::FaultPlan plan;
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kFramePressure;
  spec.trigger.at_op = 3;
  plan.specs.push_back(spec);
  injector.arm(std::move(plan));
  frames.set_faults(&injector);

  EXPECT_TRUE(frames.allocate().has_value());
  EXPECT_TRUE(frames.allocate().has_value());
  EXPECT_FALSE(frames.allocate().has_value());  // opportunity 3
  EXPECT_TRUE(frames.allocate().has_value());
  EXPECT_EQ(injector.fired(fault::FaultKind::kFramePressure), 1u);
}

// --- Migration under injected stalls -----------------------------------

struct MigrationFixture {
  Simulation sim;
  CostModel costs;
  CounterSet counters;
  TraceLog trace;
  HostHypervisor l0{sim, costs, counters, trace, 1u << 22};
  HostHypervisor::Vm* vm = nullptr;

  explicit MigrationFixture(std::uint64_t resident_pages) {
    vm = &l0.create_vm("vm", 1u << 20, false);
    for (std::uint64_t frame = 0; frame < resident_pages; ++frame) {
      vm->ept().map(frame << kPageShift, frame, PteFlags::rw_kernel());
    }
  }

  MigrationResult migrate(const MigrationParams& params) {
    MigrationEngine engine(l0);
    MigrationResult result;
    sim.spawn([](MigrationEngine& e, HostHypervisor::Vm& v, const MigrationParams& p,
                 MigrationResult* out) -> Task<void> {
      *out = co_await e.migrate(v, p);
    }(engine, *vm, params, &result));
    sim.run();
    return result;
  }
};

// Dirties `pages` distinct guest pages once per `period` for `bursts`
// periods, through the VM's DirtyTracker — the scripted guest the stall
// tests need to keep pre-copy honest.
Task<void> dirtier(Simulation& sim, HostHypervisor::Vm& vm, std::uint64_t pages, int bursts,
                   SimTime period) {
  for (int burst = 0; burst < bursts; ++burst) {
    co_await sim.delay(period);
    for (std::uint64_t page = 0; page < pages; ++page) {
      vm.dirty_tracker().note_store(0, dirty_page_key(1, page << kPageShift));
    }
  }
}

TEST(MigrationFaultTest, StalledDivergentPreCopyFallsBackToPostCopy) {
  MigrationFixture fx(/*resident_pages=*/8192);
  // The guest re-dirties the same 2000 pages every millisecond — exactly
  // what each round just copied — while every round also eats an injected
  // 1 ms stall. The dirty set never shrinks, convergence control trips
  // after two flat rounds, and kAuto degrades to post-copy: the 2000-page
  // live dirty set becomes remote demand fetches.
  fx.sim.spawn(dirtier(fx.sim, *fx.vm, 2000, /*bursts=*/40, /*period=*/kNsPerMs));
  fault::FaultInjector injector;
  fault::FaultPlan plan;
  fault::FaultSpec stall;
  stall.kind = fault::FaultKind::kMigrationStall;
  stall.trigger.until_ns = 30 * kNsPerMs;
  stall.delay_ns = kNsPerMs;
  plan.specs.push_back(stall);
  injector.arm(std::move(plan));
  fx.sim.set_faults(&injector);

  MigrationParams params;
  params.divergence_rounds = 2;
  const MigrationResult result = fx.migrate(params);

  EXPECT_TRUE(result.succeeded) << result.failure_reason;
  EXPECT_TRUE(result.fell_back_postcopy);
  EXPECT_EQ(result.remote_faults, 2000u);
  EXPECT_EQ(result.downtime, 200 * kNsPerUs);
  EXPECT_EQ(fx.counters.get(Counter::kMigrationFallback), 1u);
  EXPECT_GT(fx.counters.get(Counter::kFaultInjected), 0u);
}

TEST(MigrationFaultTest, CappedConvergentPreCopyRetriesWithBackoff) {
  MigrationFixture fx(/*resident_pages=*/8192);
  // A dirtying burst (800 pages/ms for 12 ms) small enough to converge
  // every attempt, but big enough that shipping it would blow the 1 ms
  // downtime cap. In kPreCopy mode the engine must back off and retry
  // until the burst has passed, then stop-and-copy inside the cap.
  fx.sim.spawn(dirtier(fx.sim, *fx.vm, 800, /*bursts=*/12, /*period=*/kNsPerMs));
  MigrationParams params;
  params.mode = MigrationMode::kPreCopy;
  params.max_downtime_ns = kNsPerMs;
  params.retry_backoff_ns = 2 * kNsPerMs;
  params.max_retries = 3;
  const MigrationResult result = fx.migrate(params);

  EXPECT_TRUE(result.succeeded) << result.failure_reason;
  EXPECT_FALSE(result.capped);
  EXPECT_FALSE(result.fell_back_postcopy);
  EXPECT_GE(result.retries, 1);
  EXPECT_EQ(fx.counters.get(Counter::kMigrationRetry),
            static_cast<std::uint64_t>(result.retries));
  EXPECT_LE(result.downtime, params.max_downtime_ns);
}

TEST(MigrationFaultTest, DowntimeCapAbortsAfterBoundedRetries) {
  MigrationFixture fx(/*resident_pages=*/8192);
  // Cap below the fixed state-ship pause: no attempt can ever fit, so the
  // engine must burn its bounded retries and abort rather than loop forever
  // (or pause the VM past its budget). kPreCopy — under kAuto a blown cap
  // degrades to post-copy instead of failing (tested elsewhere).
  MigrationParams params;
  params.mode = MigrationMode::kPreCopy;
  params.max_downtime_ns = 100 * kNsPerUs;
  params.retry_backoff_ns = kNsPerMs;
  params.max_retries = 2;
  const MigrationResult result = fx.migrate(params);

  EXPECT_FALSE(result.succeeded);
  EXPECT_TRUE(result.capped);
  EXPECT_EQ(result.retries, params.max_retries);
  EXPECT_EQ(result.downtime, 0u);  // the VM was never paused
  EXPECT_NE(result.failure_reason.find("exceeds cap"), std::string::npos);
}

// --- Watchdog ----------------------------------------------------------

TEST(WatchdogTest, EscalatesKickResetKillInOrderOnWedgedVcpu) {
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  VirtualPlatform platform(config);
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot());
  platform.sim().run();
  ASSERT_FALSE(container.boot_failed());

  // Nothing runs after boot, so vCPU 0's progress counter never moves: to
  // the watchdog this is indistinguishable from a wedged vCPU, and it must
  // walk the full escalation ladder.
  fault::WatchdogParams params;
  params.check_interval_ns = kNsPerMs;
  fault::Watchdog watchdog(platform, container, params);
  platform.sim().spawn(watchdog.run());
  platform.sim().run();

  ASSERT_TRUE(platform.sim().all_tasks_done());
  EXPECT_TRUE(watchdog.killed());
  ASSERT_EQ(watchdog.events().size(), 3u);
  EXPECT_EQ(watchdog.events()[0].action, "kick");
  EXPECT_EQ(watchdog.events()[1].action, "reset");
  EXPECT_EQ(watchdog.events()[2].action, "kill");
  EXPECT_LT(watchdog.events()[0].when, watchdog.events()[1].when);
  EXPECT_LT(watchdog.events()[1].when, watchdog.events()[2].when);

  EXPECT_EQ(platform.counters().get(Counter::kWatchdogKick), 1u);
  EXPECT_EQ(platform.counters().get(Counter::kWatchdogReset), 1u);
  EXPECT_EQ(platform.counters().get(Counter::kWatchdogKill), 1u);
  ASSERT_TRUE(container.init_process() != nullptr);
  EXPECT_TRUE(container.init_process()->oom_killed());

  // The kill surfaces in the simulation diagnostics (and so in
  // blocked_report) for post-mortems. The OOM kills it triggers add their
  // own diagnostics first, so search the whole list.
  ASSERT_FALSE(platform.sim().diagnostics().empty());
  bool found_watchdog = false;
  for (const std::string& line : platform.sim().diagnostics()) {
    found_watchdog = found_watchdog || line.find("watchdog") != std::string::npos;
  }
  EXPECT_TRUE(found_watchdog);

  // The kill also renders a black-box postmortem from the flight recorder:
  // a human-readable timeline and a pvm.postmortem.v1 JSON document whose
  // tracks include the watchdog escalation events.
  EXPECT_NE(watchdog.postmortem_text().find("flight timeline"), std::string::npos);
  EXPECT_NE(watchdog.postmortem_json().find("\"pvm.postmortem.v1\""), std::string::npos);
  EXPECT_NE(watchdog.postmortem_json().find("\"watchdog\""), std::string::npos);
}

TEST(WatchdogTest, ProgressingVcpuIsNeverEscalated) {
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  VirtualPlatform platform(config);
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot());
  platform.sim().run();
  ASSERT_FALSE(container.boot_failed());

  fault::WatchdogParams params;
  params.check_interval_ns = 100 * kNsPerUs;
  fault::Watchdog watchdog(platform, container, params);
  platform.sim().spawn(watchdog.run());

  MemStressParams stress;
  stress.total_bytes = 2ull << 20;
  platform.sim().spawn([](SecureContainer& c, fault::Watchdog& wd,
                          MemStressParams p) -> Task<void> {
    co_await memstress_process(c, c.vcpu(0), *c.init_process(), p);
    wd.stop();
  }(container, watchdog, stress));
  platform.sim().run();

  ASSERT_TRUE(platform.sim().all_tasks_done());
  EXPECT_FALSE(watchdog.killed());
  EXPECT_EQ(platform.counters().get(Counter::kWatchdogKill), 0u);
  EXPECT_FALSE(container.init_process()->oom_killed());
}

// --- Reclaim and guest OOM kill under pressure -------------------------

TEST(ReclaimTest, ReclaimUnderPressureKeepsShadowCoherent) {
  for (const bool fine : {true, false}) {
    SCOPED_TRACE(fine ? "fine-grained" : "coarse");
    fault::FaultInjector injector;  // outlives the platform (raw pointers)
    PlatformConfig config;
    config.mode = DeployMode::kPvmNst;
    config.fine_grained_locks = fine;
    config.coherence_oracle = true;
    VirtualPlatform platform(config);
    SecureContainer& container = platform.create_container("c0");
    platform.sim().spawn(container.boot());
    platform.sim().run();
    ASSERT_FALSE(container.boot_failed());

    // Arm pressure on the L1 instance's backing pool only after boot, so
    // there is always a colder shadow page to steal: every refused backing
    // allocation must be absorbed by the reclaim protocol, not an OOM kill.
    fault::FaultPlan plan;
    fault::FaultSpec pressure;
    pressure.kind = fault::FaultKind::kFramePressure;
    pressure.target = "l1-instance";
    pressure.trigger.probability = 0.5;
    plan.specs.push_back(pressure);
    injector.arm(std::move(plan));
    platform.arm_faults(&injector);

    MemStressParams stress;
    stress.total_bytes = 1ull << 20;
    run_processes_in_container(platform, container, 2,
                               [&](int, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
                                 return memstress_process(container, vcpu, proc, stress);
                               });

    ASSERT_TRUE(platform.sim().all_tasks_done());
    EXPECT_GT(platform.counters().get(Counter::kFrameReclaim), 0u);
    EXPECT_GT(platform.counters().get(Counter::kFramesReclaimed), 0u);
    // Quiescent point: zap-and-refault must have left shadow, rmap, and
    // guest tables agreeing exactly.
    PvmMemoryEngine* engine = container.shadow_engine();
    ASSERT_TRUE(engine != nullptr);
    EXPECT_NO_THROW(engine->verify_coherence(engine->coherence_oracle_strict()));
  }
}

TEST(ReclaimTest, ExhaustedContainerOomKillsButSimulationSurvives) {
  fault::FaultInjector injector;  // outlives the platform (raw pointers)
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  VirtualPlatform platform(config);

  // Hard ceiling on the container's own allocator, low enough that the
  // workload cannot fit: the guest kernel must shed processes, not wedge.
  fault::FaultPlan plan;
  fault::FaultSpec ceiling;
  ceiling.kind = fault::FaultKind::kFrameExhaust;
  ceiling.target = "c0.gpa";
  ceiling.capacity_frames = 200;
  plan.specs.push_back(ceiling);
  injector.arm(std::move(plan));
  platform.arm_faults(&injector);

  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot());
  platform.sim().run();
  ASSERT_TRUE(platform.sim().all_tasks_done());
  ASSERT_FALSE(container.boot_failed());

  MemStressParams stress;
  stress.total_bytes = 4ull << 20;
  platform.sim().spawn(
      memstress_process(container, container.vcpu(0), *container.init_process(), stress));
  platform.sim().run();

  // The workload cannot complete in full, but nothing deadlocks and the
  // kernel's OOM killer fired instead of the allocator throwing.
  EXPECT_TRUE(platform.sim().all_tasks_done());
  EXPECT_GT(platform.counters().get(Counter::kGuestOomKill), 0u);
}

// --- VMRESUME retry ----------------------------------------------------

TEST(VmresumeFaultTest, TransientFailureBurstIsRetriedExactly) {
  fault::FaultInjector injector;  // outlives the platform (raw pointers)
  PlatformConfig config;
  config.mode = DeployMode::kKvmEptNst;
  VirtualPlatform platform(config);

  fault::FaultPlan plan;
  fault::FaultSpec resume;
  resume.kind = fault::FaultKind::kVmresumeFail;
  resume.trigger.at_op = 1;  // exactly the first VMRESUME...
  resume.fail_count = 3;     // ...fails three consecutive launches
  plan.specs.push_back(resume);
  injector.arm(std::move(plan));
  platform.arm_faults(&injector);

  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot());
  platform.sim().run();

  ASSERT_TRUE(platform.sim().all_tasks_done());
  EXPECT_FALSE(container.boot_failed());
  EXPECT_EQ(platform.counters().get(Counter::kVmresumeRetry), 3u);
}

// --- Whole-run determinism under a faultstorm --------------------------

TEST(FaultDeterminismTest, FaultstormCaseReplaysBitForBit) {
  SimcheckCase c;
  c.mode = DeployMode::kPvmNst;
  c.policy = SchedulePolicy::kRandom;
  c.schedule_seed = 7;
  c.chaos = true;
  c.chaos_seed = 24;
  c.faults = true;
  c.fault_seed = 30;

  const SimcheckResult a = run_simcheck_case(c);
  const SimcheckResult b = run_simcheck_case(c);
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.fills, b.fills);
  EXPECT_EQ(a.fill_races, b.fill_races);
  EXPECT_EQ(a.shadow_frames, b.shadow_frames);
  EXPECT_GT(a.events, 0u);
}

}  // namespace
}  // namespace pvm
