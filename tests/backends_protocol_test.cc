// Integration tests: the world-switch protocols of §2.2/§3.3 executed
// end-to-end, with counter deltas checked against the paper's formulas.

#include <gtest/gtest.h>

#include "src/backends/platform.h"
#include "src/backends/pvm_memory_backend.h"

namespace pvm {
namespace {

struct Harness {
  explicit Harness(DeployMode mode, bool kpti = true) {
    PlatformConfig config;
    config.mode = mode;
    config.kpti = kpti;
    platform = std::make_unique<VirtualPlatform>(config);
    container = &platform->create_container("c0");
  }

  void run(Task<void> task) {
    platform->sim().spawn(std::move(task));
    platform->sim().run();
    ASSERT_TRUE(platform->sim().all_tasks_done());
  }

  void boot() {
    run(container->boot(/*init_pages=*/16));
    ASSERT_NE(container->init_process(), nullptr);
  }

  CounterSet delta(const CounterSet& before) const {
    return platform->counters().delta_since(before);
  }

  std::unique_ptr<VirtualPlatform> platform;
  SecureContainer* container = nullptr;
};

// Touch one page in an already-populated VMA region (leaf GPT table exists),
// so the GPT repair needs exactly one store. Returns the counter delta.
CounterSet touch_one_fresh_page(Harness& h) {
  GuestKernel& kernel = h.container->kernel();
  GuestProcess& proc = *h.container->init_process();
  Vcpu& vcpu = h.container->vcpu(0);

  // Warm a neighbouring page first so the GPT leaf table + shadow structure
  // exist, then snapshot and touch the adjacent page.
  const std::uint64_t base = GuestProcess::kHeapBase;
  proc.vmas()[base] = Vma{base, 1ull << 20, true};
  h.run([](GuestKernel& k, Vcpu& v, GuestProcess& p, std::uint64_t gva) -> Task<void> {
    co_await k.touch(v, p, gva, true);
  }(kernel, vcpu, proc, base));

  const CounterSet before = h.platform->counters();
  h.run([](GuestKernel& k, Vcpu& v, GuestProcess& p, std::uint64_t gva) -> Task<void> {
    co_await k.touch(v, p, gva, true);
  }(kernel, vcpu, proc, base + kPageSize));
  return h.platform->counters().delta_since(before);
}

TEST(ProtocolTest, BootSucceedsInAllModes) {
  for (DeployMode mode :
       {DeployMode::kKvmEptBm, DeployMode::kKvmSptBm, DeployMode::kPvmBm,
        DeployMode::kKvmEptNst, DeployMode::kPvmNst, DeployMode::kSptOnEptNst}) {
    SCOPED_TRACE(deploy_mode_name(mode));
    Harness h(mode);
    h.boot();
    EXPECT_GT(h.container->boot_latency(), 0u);
  }
}

TEST(ProtocolTest, KvmEptBmFreshTouchCostsOneL0Exit) {
  Harness h(DeployMode::kKvmEptBm);
  h.boot();
  const CounterSet d = touch_one_fresh_page(h);
  // Guest #PF handled in guest; one EPT01 violation for the new data frame.
  EXPECT_EQ(d.get(Counter::kGuestPageFault), 1u);
  EXPECT_EQ(d.get(Counter::kEptViolation), 1u);
  EXPECT_EQ(d.get(Counter::kL0Exit), 1u);
  EXPECT_EQ(d.get(Counter::kWorldSwitch), 2u);  // exit + entry
}

TEST(ProtocolTest, PvmNstFreshTouchNeverExitsToL0) {
  Harness h(DeployMode::kPvmNst);
  h.boot();
  const CounterSet d = touch_one_fresh_page(h);
  // The headline property: L2 page faults are handled entirely inside L1.
  EXPECT_EQ(d.get(Counter::kL0Exit), 0u);
  EXPECT_EQ(d.get(Counter::kGuestPageFault), 1u);
  // Fig. 9 with n=1 trapped GPT store: 2n+4 = 6 world switches.
  EXPECT_EQ(d.get(Counter::kGptWriteProtectTrap), 1u);
  EXPECT_EQ(d.get(Counter::kWorldSwitch), 6u);
  // Prefault filled the SPT on the iret path: no shadow fault afterwards.
  EXPECT_EQ(d.get(Counter::kPrefaultFill), 1u);
  EXPECT_EQ(d.get(Counter::kShadowPageFault), 0u);
}

TEST(ProtocolTest, PvmNstWithoutPrefaultTakesShadowFault) {
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  config.prefault = false;
  VirtualPlatform platform(config);
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(16));
  platform.sim().run();

  GuestProcess& proc = *c.init_process();
  proc.vmas()[GuestProcess::kHeapBase] = Vma{GuestProcess::kHeapBase, 1ull << 20, true};
  platform.sim().spawn([](GuestKernel& k, Vcpu& v, GuestProcess& p) -> Task<void> {
    co_await k.touch(v, p, GuestProcess::kHeapBase, true);
  }(c.kernel(), c.vcpu(0), proc));
  platform.sim().run();

  const CounterSet before = platform.counters();
  platform.sim().spawn([](GuestKernel& k, Vcpu& v, GuestProcess& p) -> Task<void> {
    co_await k.touch(v, p, GuestProcess::kHeapBase + kPageSize, true);
  }(c.kernel(), c.vcpu(0), proc));
  platform.sim().run();
  const CounterSet d = platform.counters().delta_since(before);

  // Without prefault the retried access faults again on the SPT: 2 extra
  // world switches (2n+4 -> 2n+6) and one shadow fault.
  EXPECT_EQ(d.get(Counter::kShadowPageFault), 1u);
  EXPECT_EQ(d.get(Counter::kPrefaultFill), 0u);
  EXPECT_EQ(d.get(Counter::kWorldSwitch), 8u);
  EXPECT_EQ(d.get(Counter::kL0Exit), 0u);
}

TEST(ProtocolTest, EptOnEptFreshTouchMatchesFormula) {
  Harness h(DeployMode::kKvmEptNst);
  h.boot();
  const CounterSet d = touch_one_fresh_page(h);
  // Guest fault itself is free of exits (①-③)...
  EXPECT_EQ(d.get(Counter::kGuestPageFault), 1u);
  // ...but the EPT02 build costs n+3 L0 exits and 2n+6 world switches with
  // n = EPT12 stores (here 1, the leaf: structure exists from the warm-up).
  EXPECT_EQ(d.get(Counter::kL0Exit), 4u);
  EXPECT_EQ(d.get(Counter::kWorldSwitch), 8u);
  EXPECT_EQ(d.get(Counter::kVmcsSync), 1u);
  EXPECT_EQ(d.get(Counter::kEptCompressed), 1u);
}

TEST(ProtocolTest, SptOnEptFreshTouchMatchesFormula) {
  Harness h(DeployMode::kSptOnEptNst);
  h.boot();
  const CounterSet d = touch_one_fresh_page(h);
  // Fig. 3(a) with n=1 trapped GPT store: 4n+8 = 12 world switches and
  // 2n+4 = 6 exits to L0.
  EXPECT_EQ(d.get(Counter::kGuestPageFault), 1u);
  EXPECT_EQ(d.get(Counter::kL0Exit), 6u);
  EXPECT_EQ(d.get(Counter::kWorldSwitch), 12u);
  EXPECT_EQ(d.get(Counter::kShadowPageFault), 1u);
}

TEST(ProtocolTest, KvmSptBmFreshTouch) {
  Harness h(DeployMode::kKvmSptBm);
  h.boot();
  const CounterSet d = touch_one_fresh_page(h);
  // Exit for the guest fault, one trapped store, exit for the shadow fill:
  // 3 L0 exits, 6 world switches, no prefault.
  EXPECT_EQ(d.get(Counter::kL0Exit), 3u);
  EXPECT_EQ(d.get(Counter::kWorldSwitch), 6u);
  EXPECT_EQ(d.get(Counter::kShadowPageFault), 1u);
  EXPECT_EQ(d.get(Counter::kPrefaultFill), 0u);
}

TEST(ProtocolTest, PvmBmFreshTouchStaysLocal) {
  Harness h(DeployMode::kPvmBm);
  h.boot();
  const CounterSet d = touch_one_fresh_page(h);
  EXPECT_EQ(d.get(Counter::kL0Exit), 0u);
  EXPECT_EQ(d.get(Counter::kWorldSwitch), 6u);
  EXPECT_EQ(d.get(Counter::kPrefaultFill), 1u);
}

TEST(ProtocolTest, SecondTouchHitsTlbEverywhere) {
  for (DeployMode mode :
       {DeployMode::kKvmEptBm, DeployMode::kKvmSptBm, DeployMode::kPvmBm,
        DeployMode::kKvmEptNst, DeployMode::kPvmNst, DeployMode::kSptOnEptNst}) {
    SCOPED_TRACE(deploy_mode_name(mode));
    Harness h(mode);
    h.boot();
    (void)touch_one_fresh_page(h);

    const CounterSet before = h.platform->counters();
    h.run([](GuestKernel& k, Vcpu& v, GuestProcess& p) -> Task<void> {
      co_await k.touch(v, p, GuestProcess::kHeapBase + kPageSize, true);
    }(h.container->kernel(), h.container->vcpu(0), *h.container->init_process()));
    const CounterSet d = h.platform->counters().delta_since(before);

    EXPECT_EQ(d.get(Counter::kTlbHit), 1u);
    EXPECT_EQ(d.get(Counter::kWorldSwitch), 0u);
    EXPECT_EQ(d.get(Counter::kL0Exit), 0u);
    EXPECT_EQ(d.get(Counter::kGuestPageFault), 0u);
  }
}

TEST(ProtocolTest, SyscallCosts) {
  {  // kvm-ept: no exits, whole round trip inside the guest.
    Harness h(DeployMode::kKvmEptBm);
    h.boot();
    const CounterSet before = h.platform->counters();
    h.run([](GuestKernel& k, Vcpu& v, GuestProcess& p) -> Task<void> {
      co_await k.sys_getpid(v, p);
    }(h.container->kernel(), h.container->vcpu(0), *h.container->init_process()));
    const CounterSet d = h.delta(before);
    EXPECT_EQ(d.get(Counter::kL0Exit), 0u);
    EXPECT_EQ(d.get(Counter::kWorldSwitch), 0u);
  }
  {  // pvm with direct switch: two direct switches, no hypervisor entry.
    Harness h(DeployMode::kPvmNst);
    h.boot();
    const CounterSet before = h.platform->counters();
    h.run([](GuestKernel& k, Vcpu& v, GuestProcess& p) -> Task<void> {
      co_await k.sys_getpid(v, p);
    }(h.container->kernel(), h.container->vcpu(0), *h.container->init_process()));
    const CounterSet d = h.delta(before);
    EXPECT_EQ(d.get(Counter::kDirectSwitch), 2u);
    EXPECT_EQ(d.get(Counter::kL1Exit), 0u);
    EXPECT_EQ(d.get(Counter::kL0Exit), 0u);
  }
  {  // pvm without direct switch: hypervisor on both legs.
    PlatformConfig config;
    config.mode = DeployMode::kPvmNst;
    config.direct_switch = false;
    VirtualPlatform platform(config);
    SecureContainer& c = platform.create_container("c0");
    platform.sim().spawn(c.boot(16));
    platform.sim().run();
    const CounterSet before = platform.counters();
    platform.sim().spawn([](GuestKernel& k, Vcpu& v, GuestProcess& p) -> Task<void> {
      co_await k.sys_getpid(v, p);
    }(c.kernel(), c.vcpu(0), *c.init_process()));
    platform.sim().run();
    const CounterSet d = platform.counters().delta_since(before);
    EXPECT_EQ(d.get(Counter::kDirectSwitch), 0u);
    EXPECT_EQ(d.get(Counter::kL1Exit), 2u);
    EXPECT_EQ(d.get(Counter::kWorldSwitch), 4u);
  }
}

TEST(ProtocolTest, PrivilegedOpExitCounts) {
  {  // kvm (BM): one L0 exit per hypercall.
    Harness h(DeployMode::kKvmEptBm);
    h.boot();
    const CounterSet before = h.platform->counters();
    h.run([](SecureContainer& c) -> Task<void> {
      co_await c.cpu().privileged_op(c.vcpu(0), PrivOp::kHypercallNop);
    }(*h.container));
    const CounterSet d = h.delta(before);
    EXPECT_EQ(d.get(Counter::kL0Exit), 1u);
    EXPECT_EQ(d.get(Counter::kWorldSwitch), 2u);
  }
  {  // kvm (NST): two L0 exits per L2 hypercall (§2.1 "doubling").
    Harness h(DeployMode::kKvmEptNst);
    h.boot();
    const CounterSet before = h.platform->counters();
    h.run([](SecureContainer& c) -> Task<void> {
      co_await c.cpu().privileged_op(c.vcpu(0), PrivOp::kHypercallNop);
    }(*h.container));
    const CounterSet d = h.delta(before);
    EXPECT_EQ(d.get(Counter::kL0Exit), 2u);
    EXPECT_EQ(d.get(Counter::kWorldSwitch), 4u);
    EXPECT_EQ(d.get(Counter::kVmcsSync), 1u);
  }
  {  // pvm (NST): zero L0 exits; one L1 round trip.
    Harness h(DeployMode::kPvmNst);
    h.boot();
    const CounterSet before = h.platform->counters();
    h.run([](SecureContainer& c) -> Task<void> {
      co_await c.cpu().privileged_op(c.vcpu(0), PrivOp::kHypercallNop);
    }(*h.container));
    const CounterSet d = h.delta(before);
    EXPECT_EQ(d.get(Counter::kL0Exit), 0u);
    EXPECT_EQ(d.get(Counter::kL1Exit), 1u);
    EXPECT_EQ(d.get(Counter::kWorldSwitch), 2u);
  }
}

TEST(ProtocolTest, InterruptNeedsExactlyOneL0ExitUnderPvmNst) {
  Harness h(DeployMode::kPvmNst);
  h.boot();
  const CounterSet before = h.platform->counters();
  h.run([](SecureContainer& c) -> Task<void> {
    co_await c.cpu().interrupt(c.vcpu(0));
  }(*h.container));
  const CounterSet d = h.delta(before);
  EXPECT_EQ(d.get(Counter::kL0Exit), 1u);  // the hardware injection into L1
  EXPECT_EQ(d.get(Counter::kInterruptInjected), 1u);
  EXPECT_EQ(d.get(Counter::kVirtualInterruptDelivered), 1u);
}

TEST(ProtocolTest, MaskedInterruptPendsAndFiresOnUnmask) {
  // §3.3.3: the guest toggles the shared virtual RFLAGS.IF word without any
  // exits; an interrupt arriving while masked is pended and delivered when
  // the guest re-enables interrupts.
  Harness h(DeployMode::kPvmNst);
  h.boot();
  Vcpu& vcpu = h.container->vcpu(0);
  PvmHypervisor& hv = *h.platform->pvm();

  // Masking itself costs no world switches.
  const CounterSet before_mask = h.platform->counters();
  h.run([](PvmHypervisor& p, Vcpu& v) -> Task<void> {
    co_await p.guest_set_interrupt_flag(v.switcher_state, v.state, false);
  }(hv, vcpu));
  EXPECT_EQ(h.delta(before_mask).get(Counter::kWorldSwitch), 0u);

  // An interrupt while masked: the single L0 injection still happens, but
  // nothing is delivered into the guest.
  const CounterSet before_irq = h.platform->counters();
  h.run([](SecureContainer& c) -> Task<void> {
    co_await c.cpu().interrupt(c.vcpu(0));
  }(*h.container));
  const CounterSet d_irq = h.delta(before_irq);
  EXPECT_EQ(d_irq.get(Counter::kInterruptPended), 1u);
  EXPECT_EQ(d_irq.get(Counter::kVirtualInterruptDelivered), 0u);

  // Unmask: the pended interrupt fires now, entirely inside L1.
  const CounterSet before_unmask = h.platform->counters();
  h.run([](PvmHypervisor& p, Vcpu& v) -> Task<void> {
    co_await p.guest_set_interrupt_flag(v.switcher_state, v.state, true);
  }(hv, vcpu));
  const CounterSet d_unmask = h.delta(before_unmask);
  EXPECT_EQ(d_unmask.get(Counter::kVirtualInterruptDelivered), 1u);
  EXPECT_EQ(d_unmask.get(Counter::kL0Exit), 0u);
  EXPECT_FALSE(vcpu.switcher_state.pending_interrupt);
}

TEST(ProtocolTest, MultiplePendedVectorsDrainInPriorityOrder) {
  Harness h(DeployMode::kPvmNst);
  h.boot();
  Vcpu& vcpu = h.container->vcpu(0);
  PvmHypervisor& hv = *h.platform->pvm();

  h.run([](PvmHypervisor& p, Vcpu& v) -> Task<void> {
    co_await p.guest_set_interrupt_flag(v.switcher_state, v.state, false);
    co_await p.deliver_interrupt_to_guest(v.switcher_state, v.state, 0x40);
    co_await p.deliver_interrupt_to_guest(v.switcher_state, v.state, 0xEC);
    co_await p.deliver_interrupt_to_guest(v.switcher_state, v.state, 0x80);
  }(hv, vcpu));
  EXPECT_EQ(vcpu.switcher_state.apic.pending_count(), 3);

  const CounterSet before = h.platform->counters();
  h.run([](PvmHypervisor& p, Vcpu& v) -> Task<void> {
    co_await p.guest_set_interrupt_flag(v.switcher_state, v.state, true);
  }(hv, vcpu));
  const CounterSet d = h.delta(before);
  EXPECT_EQ(d.get(Counter::kVirtualInterruptDelivered), 3u);
  EXPECT_EQ(d.get(Counter::kL0Exit), 0u);
  EXPECT_EQ(vcpu.switcher_state.apic.pending_count(), 0);
  EXPECT_EQ(vcpu.switcher_state.apic.in_service_count(), 0);
}

TEST(ProtocolTest, ShadowCoherenceAfterWorkload) {
  Harness h(DeployMode::kPvmNst);
  h.boot();
  GuestKernel& kernel = h.container->kernel();
  GuestProcess& proc = *h.container->init_process();
  Vcpu& vcpu = h.container->vcpu(0);

  h.run([](GuestKernel& k, Vcpu& v, GuestProcess& p) -> Task<void> {
    const std::uint64_t base = co_await k.sys_mmap(v, p, 64 * kPageSize);
    for (int i = 0; i < 64; ++i) {
      co_await k.touch(v, p, base + static_cast<std::uint64_t>(i) * kPageSize, true);
    }
    // Drop half the region again.
    co_await k.sys_munmap(v, p, base);
  }(kernel, vcpu, proc));

  // Invariant: every present SPT leaf corresponds to a present GPT leaf
  // whose GPA translates through gpa_map to the SPT frame.
  auto* backend = dynamic_cast<PvmMemoryBackend*>(&h.container->mem());
  ASSERT_NE(backend, nullptr);
  PvmMemoryEngine& engine = backend->engine();
  const PageTable& user_spt = engine.spt(proc.pid(), false);
  std::size_t checked = 0;
  user_spt.for_each_leaf([&](std::uint64_t gva, const Pte& spt_pte) {
    const Pte* gpt_pte = proc.gpt().find_pte(gva);
    ASSERT_NE(gpt_pte, nullptr) << "SPT maps gva " << gva << " absent from GPT";
    ASSERT_TRUE(gpt_pte->present());
    const Pte* slot = engine.gpa_map().find_pte(gpt_pte->frame_number() << kPageShift);
    ASSERT_NE(slot, nullptr);
    ASSERT_EQ(slot->frame_number(), spt_pte.frame_number());
    ++checked;
  });
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace pvm
