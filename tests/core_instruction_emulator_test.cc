// Tests for the instruction decoder/emulator: routing (hypercall vs emulate
// vs paravirtualized), the Popek-Goldberg sensitive set, and register
// effects.

#include <gtest/gtest.h>

#include <set>

#include "src/core/instruction_emulator.h"
#include "src/core/pvm_hypervisor.h"

namespace pvm {
namespace {

class EmulatorHarness : public ::testing::Test {
 protected:
  CostModel costs;
  InstructionEmulator emulator{costs};
  VcpuState vcpu;
};

TEST_F(EmulatorHarness, HotInstructionsRouteToFastHypercalls) {
  for (GuestInstruction instruction :
       {GuestInstruction::kIret, GuestInstruction::kSysret, GuestInstruction::kHlt,
        GuestInstruction::kMovToCr3, GuestInstruction::kInvlpg, GuestInstruction::kWrmsr}) {
    SCOPED_TRACE(InstructionEmulator::name(instruction));
    const DecodedInstruction decoded = emulator.decode(instruction);
    EXPECT_EQ(decoded.route, EmulationRoute::kFastHypercall);
    EXPECT_TRUE(decoded.privileged);
    EXPECT_LE(decoded.emulate_ns, costs.pvm_simple_handler);
  }
}

TEST_F(EmulatorHarness, RarePrivilegedInstructionsTrapAndEmulate) {
  for (GuestInstruction instruction :
       {GuestInstruction::kLgdt, GuestInstruction::kLidt, GuestInstruction::kMovToCr0,
        GuestInstruction::kWbinvd, GuestInstruction::kOut}) {
    SCOPED_TRACE(InstructionEmulator::name(instruction));
    const DecodedInstruction decoded = emulator.decode(instruction);
    EXPECT_EQ(decoded.route, EmulationRoute::kTrapAndEmulate);
    EXPECT_TRUE(decoded.privileged);
    EXPECT_EQ(decoded.emulate_ns, costs.pvm_instruction_emulate);
  }
}

TEST_F(EmulatorHarness, SensitiveUnprivilegedSetIsParavirtualized) {
  // The x86 virtualization hole (§3.3.1 / Popek-Goldberg): these execute
  // silently at CPL 3, so they must never reach the hypervisor — the PV
  // kernel replaces them.
  for (GuestInstruction instruction :
       {GuestInstruction::kSgdt, GuestInstruction::kSidt, GuestInstruction::kSmsw,
        GuestInstruction::kStr, GuestInstruction::kPushf, GuestInstruction::kPopf}) {
    SCOPED_TRACE(InstructionEmulator::name(instruction));
    const DecodedInstruction decoded = emulator.decode(instruction);
    EXPECT_EQ(decoded.route, EmulationRoute::kParavirtualized);
    EXPECT_FALSE(decoded.privileged);
    EXPECT_LT(decoded.emulate_ns, 50u);  // a shared-memory access, not a trap
  }
}

TEST_F(EmulatorHarness, CliStiToggleVirtualIf) {
  vcpu.rflags_if = true;
  emulator.emulate(emulator.decode(GuestInstruction::kCli), vcpu, 0);
  EXPECT_FALSE(vcpu.rflags_if);
  emulator.emulate(emulator.decode(GuestInstruction::kSti), vcpu, 0);
  EXPECT_TRUE(vcpu.rflags_if);
}

TEST_F(EmulatorHarness, MovToCr3SplitsPcid) {
  emulator.emulate(emulator.decode(GuestInstruction::kMovToCr3), vcpu, 0xABCDE007);
  EXPECT_EQ(vcpu.cr3, 0xABCDE000u);
  EXPECT_EQ(vcpu.pcid, 7u);
}

TEST_F(EmulatorHarness, WrmsrStoresValue) {
  const std::uint64_t operand =
      (static_cast<std::uint64_t>(MsrIndex::kLstar) << 32) | 0x1234u;
  emulator.emulate(emulator.decode(GuestInstruction::kWrmsr), vcpu, operand);
  EXPECT_EQ(vcpu.read_msr(MsrIndex::kLstar), 0x1234u);
}

TEST_F(EmulatorHarness, IretReturnsToVRing3) {
  vcpu.virt_ring = VirtRing::kVRing0;
  emulator.emulate(emulator.decode(GuestInstruction::kIret), vcpu, 0);
  EXPECT_EQ(vcpu.virt_ring, VirtRing::kVRing3);
}

TEST_F(EmulatorHarness, EveryInstructionHasADistinctName) {
  std::set<std::string_view> names;
  for (int i = 0; i <= static_cast<int>(GuestInstruction::kPopf); ++i) {
    names.insert(InstructionEmulator::name(static_cast<GuestInstruction>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(GuestInstruction::kPopf) + 1);
}

// --- Integration with the PVM hypervisor's #GP path ---

struct GpHarness {
  Simulation sim;
  CostModel costs;
  CounterSet counters;
  TraceLog trace;
  PvmHypervisor hypervisor{sim, costs, counters, trace, PvmHypervisor::Options{}};
  SwitcherState state;
  VcpuState vcpu;

  void run(Task<void> task) {
    sim.spawn(std::move(task));
    sim.run();
  }
};

TEST(GpInstructionTest, CliEmulationFlipsIfWithTwoSwitches) {
  GpHarness h;
  h.vcpu.rflags_if = true;
  h.vcpu.virt_ring = VirtRing::kVRing0;
  h.run([](GpHarness& hh) -> Task<void> {
    co_await hh.hypervisor.handle_gp_instruction(hh.state, hh.vcpu, GuestInstruction::kCli, 0);
  }(h));
  // The guest's *virtual* IF is cleared (the hardware IF stays armed at
  // h_ring3 so PVM keeps receiving interrupts, §3.3.3).
  EXPECT_FALSE(h.state.guest_virtual_if);
  EXPECT_EQ(h.counters.get(Counter::kWorldSwitch), 2u);
  EXPECT_EQ(h.counters.get(Counter::kInstructionEmulated), 1u);
  EXPECT_EQ(h.vcpu.virt_ring, VirtRing::kVRing0);  // resumed where it trapped
}

TEST(GpInstructionTest, Cr3LoadRoutesThroughFastHypercall) {
  GpHarness h;
  h.vcpu.virt_ring = VirtRing::kVRing0;
  h.run([](GpHarness& hh) -> Task<void> {
    co_await hh.hypervisor.handle_gp_instruction(hh.state, hh.vcpu,
                                                 GuestInstruction::kMovToCr3, 0x7777A003);
  }(h));
  EXPECT_EQ(h.vcpu.cr3, 0x7777A000u);
  EXPECT_EQ(h.vcpu.pcid, 3u);
  EXPECT_EQ(h.counters.get(Counter::kHypercall), 1u);
  EXPECT_EQ(h.counters.get(Counter::kInstructionEmulated), 0u);
}

TEST(GpInstructionTest, FastPathIsCheaperThanEmulation) {
  auto cost_of = [](GuestInstruction instruction) {
    GpHarness h;
    h.run([instruction](GpHarness& hh) -> Task<void> {
      co_await hh.hypervisor.handle_gp_instruction(hh.state, hh.vcpu, instruction, 0);
    }(h));
    return h.sim.now();
  };
  EXPECT_LT(cost_of(GuestInstruction::kMovToCr3), cost_of(GuestInstruction::kLgdt));
}

TEST(GpInstructionTest, UnparavirtualizedSensitiveInstructionIsABug) {
  GpHarness h;
  h.sim.spawn([](GpHarness& hh) -> Task<void> {
    co_await hh.hypervisor.handle_gp_instruction(hh.state, hh.vcpu, GuestInstruction::kSgdt,
                                                 0);
  }(h));
  EXPECT_THROW(h.sim.run(), std::logic_error);
}

}  // namespace
}  // namespace pvm
