// Soak test: a long mixed workload across several containers under the full
// pvm (NST) stack, asserting global invariants at the end — no frame leaks,
// shadow/GPT coherence, TLB bounds, and lock balance. Catches slow state
// corruption the focused tests cannot.

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/backends/platform.h"
#include "src/backends/pvm_memory_backend.h"
#include "src/fleet/fleet.h"
#include "src/sim/random.h"
#include "src/workloads/runner.h"

namespace pvm {
namespace {

// Same seed-sharding knobs as fuzz_property_test.cc, so CI shards widen
// coverage without recompiling: PVM_FUZZ_SEED_OFFSET shifts the scenario
// seeds, PVM_FUZZ_ITER_SCALE scales the launch volume.
std::uint64_t soak_seed_offset() {
  const char* env = std::getenv("PVM_FUZZ_SEED_OFFSET");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
}

std::uint64_t soak_scaled(std::uint64_t base) {
  const char* env = std::getenv("PVM_FUZZ_ITER_SCALE");
  if (env == nullptr) {
    return base;
  }
  const double scale = std::atof(env);
  if (scale <= 0) {
    return base;
  }
  const double scaled = static_cast<double>(base) * scale;
  return scaled < 1.0 ? 1 : static_cast<std::uint64_t>(scaled);
}

Task<void> churn(SecureContainer& container, Vcpu& vcpu, GuestProcess& init,
                 std::uint64_t seed) {
  GuestKernel& kernel = container.kernel();
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> regions;

  for (int round = 0; round < 600; ++round) {
    const double draw = rng.next_double();
    if (draw < 0.35) {
      const std::uint64_t pages = rng.next_in(1, 16);
      const std::uint64_t base = co_await kernel.sys_mmap(vcpu, init, pages * kPageSize);
      for (std::uint64_t i = 0; i < pages; ++i) {
        co_await kernel.touch(vcpu, init, base + i * kPageSize, true);
      }
      regions.push_back(base);
    } else if (draw < 0.55 && !regions.empty()) {
      const std::size_t index = rng.next_below(regions.size());
      co_await kernel.sys_munmap(vcpu, init, regions[index]);
      regions.erase(regions.begin() + static_cast<std::ptrdiff_t>(index));
    } else if (draw < 0.70) {
      GuestProcess* child = co_await kernel.sys_fork(vcpu, init);
      co_await kernel.mem().activate_process(vcpu, *child, false);
      for (int i = 0; i < 4; ++i) {
        co_await kernel.touch(vcpu, *child,
                              GuestProcess::kStackBase + static_cast<std::uint64_t>(i) * kPageSize,
                              true);
      }
      if (rng.next_bool(0.3)) {
        co_await kernel.sys_exec(vcpu, *child, 16);
      }
      co_await kernel.sys_exit(vcpu, *child);
      co_await kernel.mem().activate_process(vcpu, init, false);
    } else if (draw < 0.85) {
      co_await kernel.sys_file_op(vcpu, init, 2000, 2, rng.next_bool(0.5) ? 2 : 0);
    } else if (draw < 0.95) {
      co_await kernel.sys_getpid(vcpu, init);
    } else {
      co_await kernel.do_io(vcpu, init, container.io(), 32 * 1024);
    }
  }
  // Drain: release all regions so the leak check is exact.
  for (const std::uint64_t base : regions) {
    co_await kernel.sys_munmap(vcpu, init, base);
  }
}

TEST(SoakTest, LongMixedWorkloadPreservesInvariants) {
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  VirtualPlatform platform(config);

  std::vector<SecureContainer*> containers;
  std::vector<std::uint64_t> frames_after_boot;
  for (int i = 0; i < 3; ++i) {
    containers.push_back(&platform.create_container("c" + std::to_string(i)));
    platform.sim().spawn(containers.back()->boot(32));
  }
  platform.sim().run();
  for (SecureContainer* container : containers) {
    frames_after_boot.push_back(container->gpa_frames().allocated());
  }

  for (int i = 0; i < 3; ++i) {
    SecureContainer& container = *containers[i];
    platform.sim().spawn(
        churn(container, container.vcpu(0), *container.init_process(), 1000 + i));
  }
  platform.sim().run();
  ASSERT_TRUE(platform.sim().all_tasks_done());

  for (int i = 0; i < 3; ++i) {
    SecureContainer& container = *containers[i];
    SCOPED_TRACE(container.name());
    GuestKernel& kernel = container.kernel();

    // Only the init process survives.
    EXPECT_EQ(kernel.processes().size(), 1u);
    GuestProcess& init = *kernel.processes().front();

    // Frame balance: boot state + any fresh kernel pages still cached from
    // file ops + table nodes. No runaway growth.
    EXPECT_LE(container.gpa_frames().allocated(), frames_after_boot[i] + 2048);

    // Shadow coherence: every present SPT leaf is backed by a present GPT
    // leaf via the gpa_map.
    auto* backend = dynamic_cast<PvmMemoryBackend*>(&container.mem());
    ASSERT_NE(backend, nullptr);
    for (const bool kernel_ring : {false, true}) {
      const PageTable& spt = backend->engine().spt(init.pid(), kernel_ring);
      spt.for_each_leaf([&](std::uint64_t gva, const Pte& spt_pte) {
        const Pte* gpt_pte = init.gpt().find_pte(gva);
        ASSERT_NE(gpt_pte, nullptr) << "dangling SPT entry at " << gva;
        ASSERT_TRUE(gpt_pte->present()) << "SPT maps non-present GPT leaf at " << gva;
        const Pte* slot =
            backend->engine().gpa_map().find_pte(gpt_pte->frame_number() << kPageShift);
        ASSERT_NE(slot, nullptr);
        ASSERT_EQ(slot->frame_number(), spt_pte.frame_number());
        // Shadow permissions never exceed the guest's.
        ASSERT_LE(spt_pte.writable(), gpt_pte->writable());
      });
    }

    // TLB stays within capacity and statistics are sane.
    Vcpu& vcpu = container.vcpu(0);
    EXPECT_LE(vcpu.tlb.valid_entries(), vcpu.tlb.capacity());
    EXPECT_GT(vcpu.tlb.stats().hits + vcpu.tlb.stats().misses, 0u);

    // Engine locks are all released.
    EXPECT_TRUE(backend->engine().locks().mmu_lock().available());
    EXPECT_TRUE(backend->engine().locks().meta_lock().available());
  }

  // Headline invariant held throughout: no L0 exits for memory — only the
  // I/O kicks and interrupts.
  const std::uint64_t io_events = platform.counters().get(Counter::kIoRequest) +
                                  platform.counters().get(Counter::kInterruptInjected);
  EXPECT_LE(platform.counters().get(Counter::kL0Exit), io_events);
}

// Fleet soak: a flash-crowd scenario against both the ept and pvm stacks,
// sharded by the fuzz env knobs. Whatever the seed does to the load, two
// global invariants must hold on every node: launch accounting closes
// (every arrival completes or crashes — nothing is silently dropped) and
// the run is replay-identical under a different worker count.
TEST(SoakTest, FleetFlashcrowdAccountingCloses) {
  fleet::FleetSpec spec;
  spec.arrival.kind = fleet::ArrivalKind::kBurst;
  spec.arrival.rate_per_sec = 1000.0;
  spec.arrival.burst_factor = 10.0;
  spec.arrival.burst_every_ns = 2'000'000'000ull;
  spec.arrival.burst_len_ns = 250'000'000ull;
  spec.arrival.seed = 1 + soak_seed_offset();
  spec.fault_plan = "bootstorm";
  spec.launches = soak_scaled(1500);
  spec.nodes = 2;
  spec.seed = 1 + soak_seed_offset();
  spec.schedule_seed = 1 + soak_seed_offset();
  spec.modes = {DeployMode::kKvmEptNst, DeployMode::kPvmNst};

  const fleet::FleetResult serial = fleet::run_fleet(spec, 1, {});
  for (const fleet::FleetGroup& group : serial.groups) {
    SCOPED_TRACE(deploy_mode_token(group.mode));
    std::uint64_t launches = 0, completions = 0, crashes = 0;
    for (const fleet::NodeOutcome& node : group.nodes) {
      ASSERT_TRUE(node.ok) << node.error;
      launches += node.doc.series.at("fleet/launches").total;
      completions += node.doc.series.at("fleet/completions").total;
      crashes += node.doc.series.at("fleet/crashes").total;
    }
    EXPECT_EQ(launches, spec.launches);
    EXPECT_EQ(completions + crashes, spec.launches);
    EXPECT_EQ(group.rollup.series.at("fleet/completions").total, completions);
    EXPECT_EQ(group.rollup.series.at("fleet/crashes").total, crashes);
  }

  const fleet::FleetResult parallel = fleet::run_fleet(spec, 2, {});
  EXPECT_EQ(fleet::render_fleet_json(spec, parallel),
            fleet::render_fleet_json(spec, serial));
}

}  // namespace
}  // namespace pvm
