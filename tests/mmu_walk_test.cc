// Tests for the two-dimensional (GPT x EPT) hardware walk model.

#include <gtest/gtest.h>

#include "src/mmu/two_dim_walk.h"

namespace pvm {
namespace {

// Guest frame f lands at host frame f + 0x100000 in these tests.
constexpr std::uint64_t kHostOffset = 0x100000;

void ept_map_frame(PageTable& ept, std::uint64_t gpa_frame) {
  ept.map(gpa_frame << kPageShift, gpa_frame + kHostOffset, PteFlags::rw_kernel());
}

TEST(TwoDimWalkTest, FullTranslationSucceeds) {
  FrameAllocator guest_frames("guest", 1u << 20);
  PageTable gpt("gpt", &guest_frames);
  PageTable ept("ept", nullptr);

  const std::uint64_t data_frame = guest_frames.allocate_or_throw();
  gpt.map(0x40001000, data_frame, PteFlags::rw_user());

  // Map every guest table frame and the data frame in the EPT.
  const WalkResult gwalk = gpt.walk(0x40001000, AccessType::kRead, true);
  for (int i = 0; i < gwalk.levels_walked; ++i) {
    ept_map_frame(ept, gwalk.node_frames[i]);
  }
  ept_map_frame(ept, data_frame);

  const TwoDimWalk walk =
      walk_two_dimensional(gpt, ept, 0x40001000, AccessType::kWrite, true);
  EXPECT_EQ(walk.outcome, TwoDimWalk::Outcome::kOk);
  EXPECT_EQ(walk.host_frame, data_frame + kHostOffset);
  // 4 guest levels, each preceded by an EPT walk (4 loads) + final data EPT
  // walk: 4*(1+4) + 4 = 24 loads.
  EXPECT_EQ(walk.total_loads, 24);
}

TEST(TwoDimWalkTest, GuestMissReportsGuestFault) {
  FrameAllocator guest_frames("guest", 1u << 20);
  PageTable gpt("gpt", &guest_frames);
  PageTable ept("ept", nullptr);
  // Root table frame must be EPT-mapped for the hardware to even start.
  ept_map_frame(ept, gpt.root_frame());

  const TwoDimWalk walk = walk_two_dimensional(gpt, ept, 0x1000, AccessType::kRead, true);
  EXPECT_EQ(walk.outcome, TwoDimWalk::Outcome::kGuestNotPresent);
  EXPECT_EQ(walk.guest.missing_level, kPageTableLevels);
}

TEST(TwoDimWalkTest, GuestProtectionFaultDetected) {
  FrameAllocator guest_frames("guest", 1u << 20);
  PageTable gpt("gpt", &guest_frames);
  PageTable ept("ept", nullptr);
  const std::uint64_t data_frame = guest_frames.allocate_or_throw();
  gpt.map(0x5000, data_frame, PteFlags::ro_user());
  const WalkResult gwalk = gpt.walk(0x5000, AccessType::kRead, true);
  for (int i = 0; i < gwalk.levels_walked; ++i) {
    ept_map_frame(ept, gwalk.node_frames[i]);
  }
  ept_map_frame(ept, data_frame);

  const TwoDimWalk walk = walk_two_dimensional(gpt, ept, 0x5000, AccessType::kWrite, true);
  EXPECT_EQ(walk.outcome, TwoDimWalk::Outcome::kGuestProtection);
}

TEST(TwoDimWalkTest, MissingTableFrameInEptIsViolation) {
  FrameAllocator guest_frames("guest", 1u << 20);
  PageTable gpt("gpt", &guest_frames);
  PageTable ept("ept", nullptr);
  const std::uint64_t data_frame = guest_frames.allocate_or_throw();
  gpt.map(0x5000, data_frame, PteFlags::rw_user());
  // EPT left empty: the very first table load (the root) violates.
  const TwoDimWalk walk = walk_two_dimensional(gpt, ept, 0x5000, AccessType::kRead, true);
  EXPECT_EQ(walk.outcome, TwoDimWalk::Outcome::kEptViolation);
  EXPECT_EQ(walk.violating_gpa, gpt.root_frame() << kPageShift);
}

TEST(TwoDimWalkTest, MissingDataFrameInEptIsViolation) {
  FrameAllocator guest_frames("guest", 1u << 20);
  PageTable gpt("gpt", &guest_frames);
  PageTable ept("ept", nullptr);
  const std::uint64_t data_frame = guest_frames.allocate_or_throw();
  gpt.map(0x5000, data_frame, PteFlags::rw_user());
  const WalkResult gwalk = gpt.walk(0x5000, AccessType::kRead, true);
  for (int i = 0; i < gwalk.levels_walked; ++i) {
    ept_map_frame(ept, gwalk.node_frames[i]);
  }
  // Data frame intentionally not mapped.
  const TwoDimWalk walk = walk_two_dimensional(gpt, ept, 0x5000, AccessType::kWrite, true);
  EXPECT_EQ(walk.outcome, TwoDimWalk::Outcome::kEptViolation);
  EXPECT_EQ(walk.violating_gpa, data_frame << kPageShift);
  EXPECT_EQ(walk.violating_access, AccessType::kWrite);
}

TEST(OneDimWalkTest, MatchesPlainWalk) {
  PageTable pt("spt", nullptr);
  pt.map(0x9000, 0x77, PteFlags::rw_user());
  const TwoDimWalk hit = walk_one_dimensional(pt, 0x9000, AccessType::kRead, true);
  EXPECT_EQ(hit.outcome, TwoDimWalk::Outcome::kOk);
  EXPECT_EQ(hit.host_frame, 0x77u);
  EXPECT_EQ(hit.total_loads, 4);

  const TwoDimWalk miss = walk_one_dimensional(pt, 0xA000, AccessType::kRead, true);
  EXPECT_EQ(miss.outcome, TwoDimWalk::Outcome::kGuestNotPresent);

  const TwoDimWalk prot = walk_one_dimensional(pt, 0x9000, AccessType::kWrite, false);
  EXPECT_EQ(prot.outcome, TwoDimWalk::Outcome::kOk);
}

}  // namespace
}  // namespace pvm
