// Tests for the §5 future-work extension: switcher-side page-fault
// classification. Guest-table faults get injected directly into the L2
// kernel, saving the exit into the PVM hypervisor (one fewer world switch
// than Fig. 9's 2n+4); shadow faults still go through PVM; the end-to-end
// effect is a measurable speedup on fault-heavy workloads.

#include <gtest/gtest.h>

#include "src/backends/pvm_memory_backend.h"
#include "src/workloads/memstress.h"
#include "src/workloads/runner.h"

namespace pvm {
namespace {

struct Harness {
  explicit Harness(bool classify) {
    PlatformConfig config;
    config.mode = DeployMode::kPvmNst;
    config.switcher_pf_classify = classify;
    platform = std::make_unique<VirtualPlatform>(config);
    container = &platform->create_container("c0");
    platform->sim().spawn(container->boot(16));
    platform->sim().run();
    GuestProcess& proc = *container->init_process();
    proc.vmas()[GuestProcess::kHeapBase] = Vma{GuestProcess::kHeapBase, 4ull << 20, true};
    // Warm one page so the traced fault needs exactly one GPT store.
    platform->sim().spawn([](SecureContainer& c, GuestProcess& p) -> Task<void> {
      co_await c.kernel().touch(c.vcpu(0), p, GuestProcess::kHeapBase, true);
    }(*container, proc));
    platform->sim().run();
  }

  CounterSet touch_fresh_page(std::uint64_t index) {
    const CounterSet before = platform->counters();
    platform->sim().spawn([](SecureContainer& c, GuestProcess& p, std::uint64_t i) -> Task<void> {
      co_await c.kernel().touch(c.vcpu(0), p, GuestProcess::kHeapBase + i * kPageSize, true);
    }(*container, *container->init_process(), index));
    platform->sim().run();
    return platform->counters().delta_since(before);
  }

  std::unique_ptr<VirtualPlatform> platform;
  SecureContainer* container;
};

TEST(SwitcherClassifyTest, GuestFaultSkipsHypervisorEntry) {
  Harness h(/*classify=*/true);
  const CounterSet d = h.touch_fresh_page(1);
  // Baseline Fig. 9 costs 2n+4 = 6 switches for n=1; the direct injection
  // replaces the exit+entry pair with one direct switch: 5 switches.
  EXPECT_EQ(d.get(Counter::kWorldSwitch), 5u);
  EXPECT_EQ(d.get(Counter::kDirectSwitch), 1u);
  EXPECT_EQ(d.get(Counter::kL0Exit), 0u);
  EXPECT_EQ(d.get(Counter::kGuestPageFault), 1u);
  EXPECT_EQ(d.get(Counter::kPrefaultFill), 1u);
}

TEST(SwitcherClassifyTest, BaselineStillCostsSixSwitches) {
  Harness h(/*classify=*/false);
  const CounterSet d = h.touch_fresh_page(1);
  EXPECT_EQ(d.get(Counter::kWorldSwitch), 6u);
  EXPECT_EQ(d.get(Counter::kDirectSwitch), 0u);
}

TEST(SwitcherClassifyTest, ShadowFaultStillEntersHypervisor) {
  // With prefault disabled, the retried access raises a *shadow* fault —
  // classification must route that through PVM (the switcher cannot fill
  // shadow tables itself).
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  config.switcher_pf_classify = true;
  config.prefault = false;
  VirtualPlatform platform(config);
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(8));
  platform.sim().run();
  GuestProcess& proc = *c.init_process();
  proc.vmas()[GuestProcess::kHeapBase] = Vma{GuestProcess::kHeapBase, 1ull << 20, true};

  const CounterSet before = platform.counters();
  platform.sim().spawn([](SecureContainer& cc, GuestProcess& p) -> Task<void> {
    co_await cc.kernel().touch(cc.vcpu(0), p, GuestProcess::kHeapBase, true);
  }(c, proc));
  platform.sim().run();
  const CounterSet d = platform.counters().delta_since(before);
  EXPECT_EQ(d.get(Counter::kShadowPageFault), 1u);
  EXPECT_GE(d.get(Counter::kL1Exit), 1u);  // the shadow fill entered PVM
  EXPECT_EQ(d.get(Counter::kL0Exit), 0u);
}

TEST(SwitcherClassifyTest, SpeedsUpFaultHeavyWorkload) {
  auto run_one = [](bool classify) {
    PlatformConfig config;
    config.mode = DeployMode::kPvmNst;
    config.switcher_pf_classify = classify;
    VirtualPlatform platform(config);
    SecureContainer& c = platform.create_container("c0");
    platform.sim().spawn(c.boot(8));
    platform.sim().run();
    MemStressParams params;
    params.total_bytes = 4ull << 20;
    const ConcurrentResult result = run_processes_in_container(
        platform, c, 2,
        [&](int, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
          return memstress_process(c, vcpu, proc, params);
        });
    return result.mean_seconds();
  };
  const double baseline = run_one(false);
  const double classified = run_one(true);
  EXPECT_LT(classified, baseline);
}

TEST(SwitcherClassifyTest, ResultsStayCorrect) {
  // Same fault-handling outcome with and without the optimization: all
  // pages resident, same frame assignments through the gpa_map.
  Harness a(true);
  Harness b(false);
  for (std::uint64_t i = 1; i <= 16; ++i) {
    (void)a.touch_fresh_page(i);
    (void)b.touch_fresh_page(i);
  }
  GuestProcess& pa = *a.container->init_process();
  GuestProcess& pb = *b.container->init_process();
  for (std::uint64_t i = 0; i <= 16; ++i) {
    const Pte* ta = pa.gpt().find_pte(GuestProcess::kHeapBase + i * kPageSize);
    const Pte* tb = pb.gpt().find_pte(GuestProcess::kHeapBase + i * kPageSize);
    ASSERT_NE(ta, nullptr);
    ASSERT_NE(tb, nullptr);
    EXPECT_TRUE(ta->present());
    EXPECT_TRUE(tb->present());
    EXPECT_EQ(ta->frame_number(), tb->frame_number());
  }
}

TEST(CollaborativePtTest, DemandPagingFaultCostsFourSwitches) {
  // With the write-protect-free construction, the trapped GPT store of
  // Fig. 9 disappears: 2n+4 collapses to 4 switches (the queued sync is
  // drained for free on the iret hypercall).
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  config.collaborative_pt = true;
  VirtualPlatform platform(config);
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(16));
  platform.sim().run();
  GuestProcess& proc = *c.init_process();
  proc.vmas()[GuestProcess::kHeapBase] = Vma{GuestProcess::kHeapBase, 1ull << 20, true};
  platform.sim().spawn([](SecureContainer& cc, GuestProcess& p) -> Task<void> {
    co_await cc.kernel().touch(cc.vcpu(0), p, GuestProcess::kHeapBase, true);
  }(c, proc));
  platform.sim().run();

  const CounterSet before = platform.counters();
  platform.sim().spawn([](SecureContainer& cc, GuestProcess& p) -> Task<void> {
    co_await cc.kernel().touch(cc.vcpu(0), p, GuestProcess::kHeapBase + kPageSize, true);
  }(c, proc));
  platform.sim().run();
  const CounterSet d = platform.counters().delta_since(before);
  EXPECT_EQ(d.get(Counter::kWorldSwitch), 4u);
  EXPECT_EQ(d.get(Counter::kL0Exit), 0u);
  EXPECT_EQ(d.get(Counter::kPrefaultFill), 1u);
  // The store did not trap individually.
  EXPECT_EQ(d.get(Counter::kGptWriteProtectTrap), 1u);  // applied at drain, not via trap
}

TEST(CollaborativePtTest, NarrowingOpsStillSynchronizeImmediately) {
  // munmap (a narrowing change) must flush queued syncs and zap the shadow
  // tables right away — the isolation property is not relaxed.
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  config.collaborative_pt = true;
  VirtualPlatform platform(config);
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(8));
  platform.sim().run();

  platform.sim().spawn([](SecureContainer& cc) -> Task<void> {
    GuestKernel& k = cc.kernel();
    GuestProcess& p = *cc.init_process();
    const std::uint64_t base = co_await k.sys_mmap(cc.vcpu(0), p, 4 * kPageSize);
    for (int i = 0; i < 4; ++i) {
      co_await k.touch(cc.vcpu(0), p, base + static_cast<std::uint64_t>(i) * kPageSize, true);
    }
    co_await k.sys_munmap(cc.vcpu(0), p, base);
  }(c));
  platform.sim().run();

  auto* backend = dynamic_cast<PvmMemoryBackend*>(&c.mem());
  ASSERT_NE(backend, nullptr);
  // No shadow leaf survives the munmap in the heap range.
  const PageTable& user_spt =
      backend->engine().spt(c.init_process()->pid(), /*kernel_ring=*/false);
  user_spt.for_each_leaf([&](std::uint64_t gva, const Pte&) {
    EXPECT_FALSE(gva >= GuestProcess::kHeapBase && gva < GuestProcess::kHeapBase + (1ull << 30))
        << "stale shadow entry after munmap at " << gva;
  });
}

TEST(CollaborativePtTest, SpeedsUpAndStaysCoherent) {
  auto run_one = [](bool collaborative) {
    PlatformConfig config;
    config.mode = DeployMode::kPvmNst;
    config.collaborative_pt = collaborative;
    VirtualPlatform platform(config);
    SecureContainer& c = platform.create_container("c0");
    platform.sim().spawn(c.boot(8));
    platform.sim().run();
    MemStressParams params;
    params.total_bytes = 4ull << 20;
    params.release_chunks = false;
    const ConcurrentResult result = run_processes_in_container(
        platform, c, 2,
        [&](int, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
          return memstress_process(c, vcpu, proc, params);
        });
    return result.mean_seconds();
  };
  EXPECT_LT(run_one(true), run_one(false));
}

TEST(CollaborativePtTest, CombinesWithClassification) {
  // Both §5 extensions together: guest fault = direct inject + batched store
  // + iret/prefault = 3 switches total.
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  config.collaborative_pt = true;
  config.switcher_pf_classify = true;
  VirtualPlatform platform(config);
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(16));
  platform.sim().run();
  GuestProcess& proc = *c.init_process();
  proc.vmas()[GuestProcess::kHeapBase] = Vma{GuestProcess::kHeapBase, 1ull << 20, true};
  platform.sim().spawn([](SecureContainer& cc, GuestProcess& p) -> Task<void> {
    co_await cc.kernel().touch(cc.vcpu(0), p, GuestProcess::kHeapBase, true);
  }(c, proc));
  platform.sim().run();

  const CounterSet before = platform.counters();
  platform.sim().spawn([](SecureContainer& cc, GuestProcess& p) -> Task<void> {
    co_await cc.kernel().touch(cc.vcpu(0), p, GuestProcess::kHeapBase + kPageSize, true);
  }(c, proc));
  platform.sim().run();
  const CounterSet d = platform.counters().delta_since(before);
  EXPECT_EQ(d.get(Counter::kWorldSwitch), 3u);
  EXPECT_EQ(d.get(Counter::kL0Exit), 0u);
}

TEST(DirectPagingTest, FreshFaultCostsFourSwitchesNoShadowState) {
  // Xen-like direct paging (§5): fault delivery (2 switches) + one batched
  // validation hypercall (2 switches) + iret (2 switches) = 6 switches like
  // PVM-on-EPT, but with no shadow state at all — no SPT fills, no prefault
  // machinery, no second-fault risk, and far less hypervisor memory.
  PlatformConfig config;
  config.mode = DeployMode::kPvmDirectNst;
  VirtualPlatform platform(config);
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(16));
  platform.sim().run();
  GuestProcess& proc = *c.init_process();
  proc.vmas()[GuestProcess::kHeapBase] = Vma{GuestProcess::kHeapBase, 1ull << 20, true};
  platform.sim().spawn([](SecureContainer& cc, GuestProcess& p) -> Task<void> {
    co_await cc.kernel().touch(cc.vcpu(0), p, GuestProcess::kHeapBase, true);
  }(c, proc));
  platform.sim().run();

  const CounterSet before = platform.counters();
  platform.sim().spawn([](SecureContainer& cc, GuestProcess& p) -> Task<void> {
    co_await cc.kernel().touch(cc.vcpu(0), p, GuestProcess::kHeapBase + kPageSize, true);
  }(c, proc));
  platform.sim().run();
  const CounterSet d = platform.counters().delta_since(before);
  EXPECT_EQ(d.get(Counter::kWorldSwitch), 6u);  // 2 fault + 2 validate + 2 iret
  EXPECT_EQ(d.get(Counter::kL0Exit), 0u);
  EXPECT_EQ(d.get(Counter::kSptEntryFilled), 0u);   // no shadow tables at all
  EXPECT_EQ(d.get(Counter::kShadowPageFault), 0u);
  EXPECT_EQ(d.get(Counter::kPrefaultFill), 0u);
}

TEST(DirectPagingTest, GuestTablesHoldMachineFrames) {
  PlatformConfig config;
  config.mode = DeployMode::kPvmDirectNst;
  VirtualPlatform platform(config);
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(8));
  platform.sim().run();
  // The container's frame source is the L1 instance's space itself.
  EXPECT_EQ(&c.gpa_frames(), &platform.l1_vm()->gpa_frames());
}

TEST(DirectPagingTest, RunsTheMemoryWorkloadCorrectly) {
  PlatformConfig config;
  config.mode = DeployMode::kPvmDirectNst;
  VirtualPlatform platform(config);
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(8));
  platform.sim().run();
  MemStressParams params;
  params.total_bytes = 4ull << 20;
  const ConcurrentResult result = run_processes_in_container(
      platform, c, 2,
      [&](int, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        return memstress_process(c, vcpu, proc, params);
      });
  for (const SimTime t : result.task_times) {
    EXPECT_GT(t, 0u);
  }
  EXPECT_EQ(platform.counters().get(Counter::kSptEntryFilled), 0u);
}

}  // namespace
}  // namespace pvm
