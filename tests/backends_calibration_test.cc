// Calibration bands: pins the derived operation round trips to the paper's
// published measurements (Tables 1 & 2, §2.2/§3.3.2) within tolerances, so
// cost-model drift is caught immediately.

#include <gtest/gtest.h>

#include "src/backends/platform.h"
#include "src/workloads/lmbench.h"

namespace pvm {
namespace {

double op_roundtrip_us(DeployMode mode, PrivOp op, bool kpti = true) {
  PlatformConfig config;
  config.mode = mode;
  config.kpti = kpti;
  VirtualPlatform platform(config);
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(8));
  platform.sim().run();

  constexpr int kIterations = 200;
  const SimTime start = platform.sim().now();
  platform.sim().spawn([](SecureContainer& cc, PrivOp o) -> Task<void> {
    for (int i = 0; i < kIterations; ++i) {
      if (o == PrivOp::kException) {
        co_await cc.cpu().exception_roundtrip(cc.vcpu(0));
      } else {
        co_await cc.cpu().privileged_op(cc.vcpu(0), o);
      }
    }
  }(c, op));
  platform.sim().run();
  return static_cast<double>(platform.sim().now() - start) / 1e3 / kIterations;
}

double getpid_us(DeployMode mode, bool direct_switch, bool kpti) {
  PlatformConfig config;
  config.mode = mode;
  config.direct_switch = direct_switch;
  config.kpti = kpti;
  VirtualPlatform platform(config);
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(8));
  platform.sim().run();
  std::uint64_t latency = 0;
  platform.sim().spawn([](SecureContainer& cc, std::uint64_t* out) -> Task<void> {
    *out = co_await lmbench_run(cc, cc.vcpu(0), *cc.init_process(), LmbenchOp::kGetPid, 500,
                                LmbenchParams{});
  }(c, &latency));
  platform.sim().run();
  return static_cast<double>(latency) / 1e3;
}

void expect_band(double measured, double paper, double tolerance, const char* what) {
  EXPECT_GE(measured, paper * (1.0 - tolerance)) << what;
  EXPECT_LE(measured, paper * (1.0 + tolerance)) << what;
}

// --- Table 1 bands (paper values, +-25%) ---

TEST(CalibrationTest, Table1Hypercall) {
  expect_band(op_roundtrip_us(DeployMode::kKvmEptBm, PrivOp::kHypercallNop), 0.46, 0.25,
              "kvm (BM) hypercall");
  expect_band(op_roundtrip_us(DeployMode::kPvmBm, PrivOp::kHypercallNop), 0.54, 0.25,
              "pvm (BM) hypercall");
  expect_band(op_roundtrip_us(DeployMode::kKvmEptNst, PrivOp::kHypercallNop), 7.43, 0.25,
              "kvm (NST) hypercall");
  expect_band(op_roundtrip_us(DeployMode::kPvmNst, PrivOp::kHypercallNop), 0.48, 0.25,
              "pvm (NST) hypercall");
}

TEST(CalibrationTest, Table1Exception) {
  expect_band(op_roundtrip_us(DeployMode::kKvmEptBm, PrivOp::kException), 1.66, 0.30,
              "kvm (BM) exception");
  expect_band(op_roundtrip_us(DeployMode::kKvmEptNst, PrivOp::kException), 9.20, 0.30,
              "kvm (NST) exception");
  expect_band(op_roundtrip_us(DeployMode::kPvmNst, PrivOp::kException), 2.21, 0.30,
              "pvm (NST) exception");
}

TEST(CalibrationTest, Table1Msr) {
  expect_band(op_roundtrip_us(DeployMode::kKvmEptBm, PrivOp::kMsrRead), 0.87, 0.25,
              "kvm (BM) MSR");
  expect_band(op_roundtrip_us(DeployMode::kKvmEptNst, PrivOp::kMsrRead), 8.18, 0.25,
              "kvm (NST) MSR");
  expect_band(op_roundtrip_us(DeployMode::kPvmNst, PrivOp::kMsrRead), 2.88, 0.35,
              "pvm (NST) MSR");
}

TEST(CalibrationTest, Table1Pio) {
  expect_band(op_roundtrip_us(DeployMode::kKvmEptBm, PrivOp::kPortIo), 3.79, 0.25,
              "kvm (BM) PIO");
  expect_band(op_roundtrip_us(DeployMode::kPvmBm, PrivOp::kPortIo), 4.91, 0.25, "pvm (BM) PIO");
  expect_band(op_roundtrip_us(DeployMode::kKvmEptNst, PrivOp::kPortIo), 29.34, 0.25,
              "kvm (NST) PIO");
  expect_band(op_roundtrip_us(DeployMode::kPvmNst, PrivOp::kPortIo), 12.94, 0.25,
              "pvm (NST) PIO");
}

// --- Table 2 bands ---

TEST(CalibrationTest, Table2GetPid) {
  expect_band(getpid_us(DeployMode::kKvmEptBm, true, true), 0.22, 0.30, "kvm-ept KPTI");
  expect_band(getpid_us(DeployMode::kKvmEptBm, true, false), 0.06, 0.50, "kvm-ept no-KPTI");
  expect_band(getpid_us(DeployMode::kKvmSptBm, true, true), 2.09, 0.25, "kvm-spt KPTI");
  expect_band(getpid_us(DeployMode::kPvmNst, true, true), 0.30, 0.25, "pvm direct");
  expect_band(getpid_us(DeployMode::kPvmNst, false, true), 1.93, 0.25, "pvm none");
}

TEST(CalibrationTest, PvmInsensitiveToKpti) {
  const double on = getpid_us(DeployMode::kPvmNst, true, true);
  const double off = getpid_us(DeployMode::kPvmNst, true, false);
  EXPECT_DOUBLE_EQ(on, off);
}

// --- §2.2/§3.3.2 switch-cost orderings ---

TEST(CalibrationTest, SwitchCostOrdering) {
  CostModel costs;
  // switcher switch ~0.179 us and cheaper than half a VMX round trip + exit
  // dispatch; nested transitions are an order of magnitude above switcher.
  expect_band(static_cast<double>(costs.switcher_switch()) / 1e3, 0.179, 0.15,
              "switcher switch");
  EXPECT_LT(costs.switcher_switch(), costs.vmx_roundtrip());
  EXPECT_GT(costs.nested_forward_work, 10 * costs.switcher_switch());
}

}  // namespace
}  // namespace pvm
