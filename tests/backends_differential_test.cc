// Differential testing: a randomized workload (mmap/touch/munmap/fork/COW/
// exec/syscalls, seeded) must leave the guest in *functionally identical*
// state under every deployment scheme — same VMAs, same resident pages, same
// page contents-by-construction (frame assignment from the deterministic
// allocator), same process tree. Only the virtual time may differ. This is
// the strongest guard against a scheme "optimizing" its way into different
// semantics.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/backends/platform.h"
#include "src/sim/random.h"
#include "src/workloads/memstress.h"
#include "src/workloads/runner.h"

namespace pvm {
namespace {

constexpr DeployMode kAllModes[] = {
    DeployMode::kKvmEptBm,  DeployMode::kKvmSptBm,    DeployMode::kPvmBm,
    DeployMode::kKvmEptNst, DeployMode::kPvmNst,      DeployMode::kSptOnEptNst,
    DeployMode::kPvmDirectNst,
};

// A functional snapshot of the guest: everything except timing/frame ids.
// (Frame numbers are excluded: different schemes draw table frames from the
// same allocator in different orders, so data-frame ids legitimately differ;
// what must match is the *shape*: which pages are resident, writable, COW.)
struct GuestSnapshot {
  struct PageState {
    bool writable;
    bool cow;
  };
  std::vector<std::uint64_t> pids;
  // per pid: vma starts/lengths and resident-page states
  std::map<std::uint64_t, std::vector<std::pair<std::uint64_t, std::uint64_t>>> vmas;
  std::map<std::uint64_t, std::map<std::uint64_t, PageState>> pages;

  bool operator==(const GuestSnapshot& other) const {
    if (pids != other.pids || vmas != other.vmas) {
      return false;
    }
    if (pages.size() != other.pages.size()) {
      return false;
    }
    for (const auto& [pid, mine] : pages) {
      auto it = other.pages.find(pid);
      if (it == other.pages.end() || mine.size() != it->second.size()) {
        return false;
      }
      for (const auto& [gva, state] : mine) {
        auto page = it->second.find(gva);
        if (page == it->second.end() || page->second.writable != state.writable ||
            page->second.cow != state.cow) {
          return false;
        }
      }
    }
    return true;
  }
};

GuestSnapshot snapshot(GuestKernel& kernel) {
  GuestSnapshot snap;
  for (const auto& proc : kernel.processes()) {
    snap.pids.push_back(proc->pid());
    for (const auto& [start, vma] : proc->vmas()) {
      snap.vmas[proc->pid()].push_back({start, vma.length});
    }
    proc->gpt().for_each_leaf([&](std::uint64_t gva, const Pte& pte) {
      snap.pages[proc->pid()][gva] = GuestSnapshot::PageState{pte.writable(), pte.cow()};
    });
  }
  return snap;
}

// The seeded workload script, identical across modes.
Task<void> random_workload(SecureContainer& container, std::uint64_t seed, int steps) {
  GuestKernel& kernel = container.kernel();
  Vcpu& vcpu = container.vcpu(0);
  GuestProcess* current = container.init_process();
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> regions;

  for (int step = 0; step < steps; ++step) {
    const double draw = rng.next_double();
    if (draw < 0.30) {
      // mmap a small region and touch a few pages.
      const std::uint64_t pages = rng.next_in(1, 8);
      const std::uint64_t base = co_await kernel.sys_mmap(vcpu, *current, pages * kPageSize);
      regions.push_back(base);
      for (std::uint64_t i = 0; i < pages; ++i) {
        if (rng.next_bool(0.7)) {
          co_await kernel.touch(vcpu, *current, base + i * kPageSize, rng.next_bool(0.6));
        }
      }
    } else if (draw < 0.40 && !regions.empty()) {
      const std::size_t index = rng.next_below(regions.size());
      const std::uint64_t base = regions[index];
      if (current->vmas().count(base) > 0) {
        co_await kernel.sys_munmap(vcpu, *current, base);
      }
      regions.erase(regions.begin() + static_cast<std::ptrdiff_t>(index));
    } else if (draw < 0.55) {
      // Touch a random resident region again (TLB/COW paths).
      if (!regions.empty()) {
        const std::uint64_t base = regions[rng.next_below(regions.size())];
        if (const Vma* vma = current->find_vma(base); vma != nullptr) {
          co_await kernel.touch(vcpu, *current, base, true);
        }
      }
    } else if (draw < 0.70) {
      co_await kernel.sys_simple(vcpu, *current, rng.next_in(100, 2000), 1);
    } else if (draw < 0.85) {
      // fork; child touches a couple of pages then exits (COW churn).
      GuestProcess* child = co_await kernel.sys_fork(vcpu, *current);
      co_await kernel.mem().activate_process(vcpu, *child, false);
      for (int i = 0; i < 3; ++i) {
        co_await kernel.touch(vcpu, *child,
                              GuestProcess::kStackBase + static_cast<std::uint64_t>(i) * kPageSize,
                              true);
      }
      co_await kernel.sys_exit(vcpu, *child);
      co_await kernel.mem().activate_process(vcpu, *current, false);
    } else {
      co_await kernel.deliver_signal(vcpu, *current);
    }
  }
}

GuestSnapshot run_mode(DeployMode mode, std::uint64_t seed, int steps) {
  PlatformConfig config;
  config.mode = mode;
  VirtualPlatform platform(config);
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot(24));
  platform.sim().run();
  platform.sim().spawn(random_workload(container, seed, steps));
  platform.sim().run();
  EXPECT_TRUE(platform.sim().all_tasks_done());
  return snapshot(container.kernel());
}

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialTest, AllSchemesAgreeOnFinalGuestState) {
  const std::uint64_t seed = GetParam();
  const GuestSnapshot reference = run_mode(DeployMode::kKvmEptBm, seed, 120);
  ASSERT_FALSE(reference.pids.empty());
  for (DeployMode mode : kAllModes) {
    if (mode == DeployMode::kKvmEptBm) {
      continue;
    }
    SCOPED_TRACE(deploy_mode_name(mode));
    const GuestSnapshot other = run_mode(mode, seed, 120);
    EXPECT_TRUE(reference == other) << "functional divergence under "
                                    << deploy_mode_name(mode) << " (seed " << seed << ")";
  }
}

TEST_P(DifferentialTest, ExtensionsPreserveSemanticsToo) {
  const std::uint64_t seed = GetParam();
  const GuestSnapshot reference = run_mode(DeployMode::kPvmNst, seed, 120);

  for (const bool classify : {false, true}) {
    for (const bool collab : {false, true}) {
      PlatformConfig config;
      config.mode = DeployMode::kPvmNst;
      config.switcher_pf_classify = classify;
      config.collaborative_pt = collab;
      VirtualPlatform platform(config);
      SecureContainer& container = platform.create_container("c0");
      platform.sim().spawn(container.boot(24));
      platform.sim().run();
      platform.sim().spawn(random_workload(container, seed, 120));
      platform.sim().run();
      SCOPED_TRACE(std::string("classify=") + (classify ? "1" : "0") + " collab=" +
                   (collab ? "1" : "0"));
      EXPECT_TRUE(reference == snapshot(container.kernel()));
    }
  }
}

// ---- PVM optimization ablations under schedule exploration ----
//
// The fine-grained locks and prefault are *performance* features: under any
// legal interleaving they must leave the exact same shadow state and do the
// same amount of functional work as the coarse/off baselines. Each seed runs
// a different random event schedule (the simcheck exploration axis), so this
// also guards against ablation-x-schedule interactions.

// The functionally-invariant counters: what work happened, not how fast or
// through which fast path. (Deliberately excludes e.g. kShadowPageFault and
// kTlb*, which prefault and PCID legitimately change.)
constexpr Counter kInvariantCounters[] = {
    Counter::kGuestPageFault, Counter::kSptEntryFilled, Counter::kSptFillRaced,
    Counter::kMmapCall,       Counter::kMunmapCall,     Counter::kCowBreak,
    Counter::kProcessForked,
};

struct AblationOutcome {
  // per pid: (kernel-ring leaves, user-ring leaves)
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> leaves;
  std::map<std::string, std::uint64_t> counters;

  bool operator==(const AblationOutcome&) const = default;
};

AblationOutcome run_pvm_memstress(std::uint64_t schedule_seed, bool fine_grained_locks,
                                  bool prefault) {
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  config.fine_grained_locks = fine_grained_locks;
  config.prefault = prefault;
  config.schedule_policy = SchedulePolicy::kRandom;
  config.schedule_seed = schedule_seed;
  VirtualPlatform platform(config);
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot(24));
  platform.sim().run();

  run_processes_in_container(
      platform, container, /*process_count=*/3,
      [&container](int i, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        MemStressParams params;
        params.total_bytes = 256ull << 10;
        params.chunk_bytes = 64ull << 10;
        params.release_chunks = false;  // keep the leaves for the final compare
        params.seed = 7 + static_cast<std::uint64_t>(i);
        return memstress_process(container, vcpu, proc, params);
      },
      /*resident_pages=*/8);
  EXPECT_TRUE(platform.sim().all_tasks_done());

  AblationOutcome outcome;
  PvmMemoryEngine* engine = container.shadow_engine();
  EXPECT_NE(engine, nullptr);
  for (const auto& proc : container.kernel().processes()) {
    outcome.leaves[proc->pid()] = {engine->spt_leaves(proc->pid(), true),
                                   engine->spt_leaves(proc->pid(), false)};
  }
  for (const Counter counter : kInvariantCounters) {
    outcome.counters[std::string(counter_name(counter))] = platform.counters().get(counter);
  }
  return outcome;
}

class AblationEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AblationEquivalenceTest, LockGranularityAndPrefaultAreFunctionallyInvisible) {
  const std::uint64_t seed = GetParam();
  const AblationOutcome reference =
      run_pvm_memstress(seed, /*fine_grained_locks=*/true, /*prefault=*/true);
  ASSERT_FALSE(reference.leaves.empty());
  // Sanity: the workload actually built shadow state to compare.
  EXPECT_GT(reference.counters.at("spt_entry_filled"), 0u);

  for (const bool fine : {true, false}) {
    for (const bool prefault : {true, false}) {
      if (fine && prefault) {
        continue;  // the reference itself
      }
      SCOPED_TRACE(std::string("locks=") + (fine ? "fine" : "coarse") +
                   " prefault=" + (prefault ? "on" : "off") + " schedule_seed=" +
                   std::to_string(seed));
      const AblationOutcome other = run_pvm_memstress(seed, fine, prefault);
      EXPECT_EQ(reference.leaves, other.leaves);
      EXPECT_EQ(reference.counters, other.counters);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, AblationEquivalenceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(11, 23, 47, 101, 211, 499, 997, 2003));

}  // namespace
}  // namespace pvm
