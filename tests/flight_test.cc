// pvm::flight tests: ring wraparound semantics, run-to-run determinism of
// the recorder and both postmortem renderings (the acceptance bar: a
// coherence violation and a watchdog kill each dump byte-identically across
// two same-seed runs), and the Chrome-trace flight overlay under an active
// faultstorm plan.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/backends/platform.h"
#include "src/check/chaos.h"
#include "src/check/simcheck.h"
#include "src/fault/fault.h"
#include "src/fault/watchdog.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/flight.h"
#include "src/obs/json_parse.h"
#include "src/obs/span.h"
#include "src/workloads/memstress.h"

namespace pvm {
namespace {

// --- Ring semantics ----------------------------------------------------

TEST(FlightRingTest, WraparoundKeepsNewestAndCountsDropped) {
  std::uint64_t now = 0;
  std::int64_t track = 7;
  flight::FlightRecorder recorder;
  recorder.bind(&now, &track);
  recorder.set_capacity(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    now = i * 100;
    recorder.record(flight::EventKind::kZap, /*a=*/i, /*b=*/0);
  }

  EXPECT_EQ(recorder.total_events(), 20u);
  EXPECT_EQ(recorder.dropped_events(), 12u);
  ASSERT_EQ(recorder.rings().size(), 1u);
  const flight::FlightRecorder::Ring& ring = recorder.rings().at(7);
  EXPECT_EQ(ring.total, 20u);
  EXPECT_EQ(ring.dropped(), 12u);

  // The snapshot holds exactly the last `capacity` events, oldest first.
  const std::vector<flight::Event> events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 12 + i);
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].t, (12 + i) * 100);
    EXPECT_EQ(events[i].track, 7);
  }
}

TEST(FlightRingTest, EventsAreAttributedToTheActiveTrack) {
  std::uint64_t now = 5;
  std::int64_t track = 0;
  flight::FlightRecorder recorder;
  recorder.bind(&now, &track);
  recorder.record(flight::EventKind::kReclaim, 1, 2);
  track = 3;
  recorder.record(flight::EventKind::kReclaim, 3, 4);
  track = -1;  // outside any root task
  recorder.record(flight::EventKind::kReclaim, 5, 6);

  ASSERT_EQ(recorder.rings().size(), 3u);
  EXPECT_EQ(recorder.rings().at(0).total, 1u);
  EXPECT_EQ(recorder.rings().at(3).total, 1u);
  EXPECT_EQ(recorder.rings().at(-1).total, 1u);

  // merged() interleaves the per-track rings back into execution order.
  const std::vector<flight::Event> merged = recorder.merged();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].seq, 0u);
  EXPECT_EQ(merged[1].track, 3);
  EXPECT_EQ(merged[2].track, -1);
}

TEST(FlightRingTest, DisabledRecorderRecordsNothing) {
  std::uint64_t now = 0;
  std::int64_t track = 0;
  flight::FlightRecorder recorder;
  recorder.bind(&now, &track);
  recorder.set_enabled(false);
  recorder.record(flight::EventKind::kZap, 1, 2);
  EXPECT_EQ(recorder.total_events(), 0u);
}

// --- Recorder determinism on a real platform ---------------------------

std::string run_workload_timeline() {
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  VirtualPlatform platform(config);
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot());
  platform.sim().run();
  MemStressParams stress;
  stress.total_bytes = 1ull << 20;
  platform.sim().spawn(
      memstress_process(container, container.vcpu(0), *container.init_process(), stress));
  platform.sim().run();
  EXPECT_GT(platform.flight().total_events(), 0u);
  return flight::render_flight_timeline(platform.flight(), &platform.sim());
}

TEST(FlightDeterminismTest, TimelineIsByteIdenticalAcrossIdenticalRuns) {
  const std::string first = run_workload_timeline();
  const std::string second = run_workload_timeline();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("flight timeline"), std::string::npos);
  EXPECT_NE(first.find("spt-fill"), std::string::npos);
}

// --- Coherence-violation postmortem ------------------------------------

// Boots a container, touches a few heap pages, corrupts one shadow leaf the
// way the oracle mutation tests do, and captures the dump the moment
// verify_coherence() throws — the same path simcheck takes on a violation.
std::pair<std::string, std::string> coherence_violation_postmortem() {
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  config.coherence_oracle = true;
  VirtualPlatform platform(config);
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot());
  platform.sim().run();
  GuestProcess& proc = *container.init_process();
  proc.vmas()[GuestProcess::kHeapBase] = Vma{GuestProcess::kHeapBase, 1ull << 20, true};
  platform.sim().spawn([](SecureContainer& c, GuestProcess& p) -> Task<void> {
    for (std::uint64_t i = 0; i < 16; ++i) {
      co_await c.kernel().touch(c.vcpu(0), p, GuestProcess::kHeapBase + i * kPageSize,
                                true);
    }
  }(container, proc));
  platform.sim().run();

  PvmMemoryEngine* engine = container.shadow_engine();
  EXPECT_NE(engine, nullptr);
  EXPECT_TRUE(engine->debug_corrupt_spt_leaf(proc.pid(), false, GuestProcess::kHeapBase));
  std::string reason;
  try {
    engine->verify_coherence(false);
  } catch (const SptCoherenceError&) {
    reason = "coherence violation";
  }
  EXPECT_EQ(reason, "coherence violation");

  SimcheckCase repro;  // the case whose reproduce line the dump embeds
  repro.schedule_seed = 42;
  return {flight::render_flight_timeline(platform.flight(), &platform.sim()),
          flight::render_postmortem_json(platform.flight(), &platform.sim(), reason,
                                         simcheck_reproduce_line(repro))};
}

TEST(PostmortemTest, CoherenceViolationDumpIsByteIdentical) {
  const auto [text1, json1] = coherence_violation_postmortem();
  const auto [text2, json2] = coherence_violation_postmortem();
  EXPECT_EQ(text1, text2);
  EXPECT_EQ(json1, json2);

  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::json_parse(json1, &doc, &error)) << error;
  ASSERT_TRUE(doc.find("schema") != nullptr);
  EXPECT_EQ(doc.find("schema")->string, "pvm.postmortem.v1");
  EXPECT_EQ(doc.find("reason")->string, "coherence violation");
  // The embedded reproduce line replays the case bit-for-bit.
  EXPECT_NE(doc.find("reproduce")->string.find("simcheck --modes pvm"),
            std::string::npos);
  EXPECT_NE(doc.find("reproduce")->string.find("--first-seed 42"), std::string::npos);
  ASSERT_TRUE(doc.find("tracks") != nullptr);
  EXPECT_FALSE(doc.find("tracks")->array.empty());
}

// --- Watchdog-kill postmortem ------------------------------------------

// The wedged-vCPU pattern from fault_test.cc: nothing runs after boot, the
// watchdog escalates kick -> reset -> kill and dumps at the moment of death.
std::pair<std::string, std::string> watchdog_kill_postmortem() {
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  VirtualPlatform platform(config);
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot());
  platform.sim().run();
  fault::WatchdogParams params;
  params.check_interval_ns = kNsPerMs;
  fault::Watchdog watchdog(platform, container, params);
  platform.sim().spawn(watchdog.run());
  platform.sim().run();
  EXPECT_TRUE(watchdog.killed());
  return {watchdog.postmortem_text(), watchdog.postmortem_json()};
}

TEST(PostmortemTest, WatchdogKillDumpIsByteIdentical) {
  const auto [text1, json1] = watchdog_kill_postmortem();
  const auto [text2, json2] = watchdog_kill_postmortem();
  EXPECT_EQ(text1, text2);
  EXPECT_EQ(json1, json2);

  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::json_parse(json1, &doc, &error)) << error;
  EXPECT_EQ(doc.find("schema")->string, "pvm.postmortem.v1");
  EXPECT_NE(doc.find("reason")->string.find("watchdog kill"), std::string::npos);
  // Rendered before the kill's own teardown, so the escalation ladder is
  // still in the rings rather than wrapped out by OOM traffic.
  EXPECT_NE(json1.find("\"watchdog\""), std::string::npos);
  EXPECT_NE(text1.find("watchdog kill vcpu=0"), std::string::npos);
}

// --- Chrome trace under a faultstorm -----------------------------------

// One observed run under simcheck's faultstorm plan; returns the rendered
// Chrome trace (with the flight overlay) and the number of faults injected.
std::pair<std::string, std::uint64_t> faultstorm_trace() {
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  VirtualPlatform platform(config);
  // Unwrapped rings: the overlay draws from the surviving ring contents, and
  // this test wants every injected fault of the run, not just the tail.
  platform.flight().set_capacity(1u << 16);
  fault::FaultInjector injector;
  // Seed pinned to a storm that draws exit-spike / spurious-inval specs —
  // the kinds the flight recorder marks (frame pressure and lock handoff
  // surface through counters and span latencies instead of instant events).
  injector.arm(faultstorm_plan(2));
  platform.arm_faults(&injector);
  obs::SpanRecorder recorder;
  recorder.set_enabled(true);
  platform.sim().set_spans(&recorder);

  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot());
  platform.sim().run();
  MemStressParams stress;
  stress.total_bytes = 1ull << 20;
  platform.sim().spawn(
      memstress_process(container, container.vcpu(0), *container.init_process(), stress));
  platform.sim().run();
  EXPECT_TRUE(platform.sim().all_tasks_done());
  return {obs::export_chrome_trace(recorder, platform.sim(), platform.sim().flight()),
          injector.total_fired()};
}

TEST(ChromeTraceFlightTest, FaultstormTraceIsValidJsonWithInjectedFaultInstants) {
  const auto [trace, fired] = faultstorm_trace();
  ASSERT_GT(fired, 0u);

  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::json_parse(trace, &doc, &error)) << error;
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());

  // Every injected fault the flight recorder retained shows up as an
  // instant event in the "flight" category.
  std::uint64_t instants = 0;
  for (const obs::JsonValue& event : events->array) {
    const obs::JsonValue* cat = event.find("cat");
    if (cat == nullptr || cat->string != "flight") {
      continue;
    }
    EXPECT_EQ(event.find("ph")->string, "i");
    if (event.find("name")->string == "fault-injected") {
      ++instants;
    }
  }
  EXPECT_GT(instants, 0u);
}

TEST(ChromeTraceFlightTest, FaultstormTraceIsByteIdenticalOnReplay) {
  const auto [trace1, fired1] = faultstorm_trace();
  const auto [trace2, fired2] = faultstorm_trace();
  EXPECT_EQ(fired1, fired2);
  EXPECT_EQ(trace1, trace2);
}

}  // namespace
}  // namespace pvm
