// Integration tests for the observability exports:
//   - golden-file check of the Chrome trace for a single-fault pvm (NST) run,
//   - byte-determinism of both the Chrome trace and the bench JSON export,
//   - the Fig. 10 diagnosis: under 32 concurrent fault-heavy processes the
//     global mmu_lock's share of total lock wait (coarse locking) exceeds the
//     combined share of the fine-grained meta/pt/rmap trio.
//
// Regenerate the golden file with PVM_UPDATE_GOLDEN=1 after an intentional
// format or instrumentation change.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>

#include "src/backends/platform.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/contention.h"
#include "src/obs/json_parse.h"
#include "src/obs/metrics_json.h"
#include "src/obs/prof.h"
#include "src/obs/span.h"
#include "src/sim/resource.h"
#include "src/workloads/memstress.h"
#include "src/workloads/runner.h"

#ifndef PVM_GOLDEN_DIR
#define PVM_GOLDEN_DIR "tests/golden"
#endif

namespace pvm {
namespace {

struct OneFaultExports {
  std::string trace;
  std::string bench_json;
};

// Boots pvm (NST), then attaches the recorder so the exports cover exactly
// one guest page fault (and the protocol steps it decomposes into).
OneFaultExports run_one_fault_pvm_nst() {
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  VirtualPlatform platform(config);
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(8), "boot");
  platform.sim().run();
  GuestProcess& proc = *c.init_process();
  proc.vmas()[GuestProcess::kHeapBase] = Vma{GuestProcess::kHeapBase, 1ull << 20, true};

  obs::SpanRecorder recorder;
  recorder.set_enabled(true);
  platform.sim().set_spans(&recorder);
  platform.sim().spawn([](SecureContainer& cc, GuestProcess& p) -> Task<void> {
    co_await cc.kernel().touch(cc.vcpu(0), p, GuestProcess::kHeapBase, true);
  }(c, proc),
                       "touch");
  platform.sim().run();

  OneFaultExports out;
  out.trace = obs::export_chrome_trace(recorder, platform.sim());
  obs::BenchExport ex("obs_export_test");
  ex.add_run("one_fault", platform.sim(), platform.counters(), &recorder,
             {{"faults", 1.0}});
  out.bench_json = ex.to_json();
  return out;
}

TEST(ObsExportTest, GoldenChromeTraceOneFaultPvmNst) {
  const std::string produced = run_one_fault_pvm_nst().trace;
  // Sanity before comparing bytes: one op span, Perfetto-required fields.
  EXPECT_NE(produced.find("\"op.page_fault\""), std::string::npos);
  EXPECT_NE(produced.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(produced.find("\"ph\":\"M\""), std::string::npos);

  const std::string path =
      std::string(PVM_GOLDEN_DIR) + "/chrome_trace_pvm_nst_one_fault.json";
  if (std::getenv("PVM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << produced;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — regenerate with PVM_UPDATE_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(produced, golden.str());
}

TEST(ObsExportTest, ExportsAreByteDeterministic) {
  const OneFaultExports a = run_one_fault_pvm_nst();
  const OneFaultExports b = run_one_fault_pvm_nst();
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.bench_json, b.bench_json);
  EXPECT_NE(a.bench_json.find(obs::kBenchSchemaVersion), std::string::npos);
}

SimTime wait_of(const std::vector<obs::ResourceStats>& stats,
                std::initializer_list<const char*> substrings) {
  SimTime matched = 0;
  for (const char* sub : substrings) {
    matched += obs::total_wait_matching(stats, sub);
  }
  return matched;
}

std::vector<obs::ResourceStats> run_fig10_contention(bool fine_grained_locks) {
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  config.fine_grained_locks = fine_grained_locks;
  VirtualPlatform platform(config);
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot(16), "boot");
  platform.sim().run();

  MemStressParams params;
  params.total_bytes = 1ull << 20;
  run_processes_in_container(platform, container, /*process_count=*/32,
                             [&](int, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
                               return memstress_process(container, vcpu, proc, params);
                             });
  return obs::collect_resource_stats(platform.sim());
}

// A resource name is user/config-controlled text that flows into every
// export: chrome-trace track metadata, the bench JSON contention table, and
// pvm.profile.v1 lock-wait paths. A hostile name (quotes, commas, control
// characters, backslashes) must come out escaped — parseable JSON that
// round-trips the exact original bytes.
TEST(ObsExportTest, HostileResourceNameSurvivesEveryExport) {
  const std::string evil = "mmu \"lock\",v2\\<\t>\nend";
  obs::SpanRecorder recorder;
  recorder.set_enabled(true);
  Simulation sim;
  sim.set_spans(&recorder);
  Resource lock(sim, evil);
  // Holder keeps the lock long enough that the second task records a
  // lock-wait span (inside an op root so the profiler attributes it).
  sim.spawn([](Simulation& s, Resource& r) -> Task<void> {
    ScopedResource guard = co_await r.scoped();
    co_await s.delay(100);
  }(sim, lock));
  sim.spawn([](Simulation& s, Resource& r, obs::SpanRecorder& spans) -> Task<void> {
    co_await s.delay(1);
    obs::SpanScope op(&spans, obs::Phase::kOpSyscall);
    ScopedResource guard = co_await r.scoped();
    co_await s.delay(10);
  }(sim, lock, recorder));
  sim.run();
  ASSERT_TRUE(recorder.lock_tracks().contains(evil));

  std::string error;

  // Chrome trace: parseable, and no raw control bytes inside it — every
  // newline in the document is structural, never part of a string.
  const std::string trace = obs::export_chrome_trace(recorder, sim);
  obs::JsonValue parsed_trace;
  ASSERT_TRUE(obs::json_parse(trace, &parsed_trace, &error)) << error;
  EXPECT_EQ(trace.find('\t'), std::string::npos);
  EXPECT_NE(trace.find("\\\"lock\\\""), std::string::npos);

  // Bench JSON: the contention table carries the name, escaped.
  obs::BenchExport bench("hostile");
  CounterSet counters;
  bench.add_run("run", sim, counters, &recorder, {{"seconds", 1.0}});
  const std::string bench_json = bench.to_json();
  obs::JsonValue parsed_bench;
  ASSERT_TRUE(obs::json_parse(bench_json, &parsed_bench, &error)) << error;
  EXPECT_EQ(bench_json.find('\t'), std::string::npos);

  // Profile: the lock-wait path embeds the name and the document round-trips
  // to the exact original bytes.
  const prof::ProfDoc doc = prof::fold_profile(recorder);
  const prof::OpProfile& op = doc.ops.at("op.syscall");
  ASSERT_TRUE(op.paths.contains("op.syscall;lock_wait:" + evil));
  const std::string profile_json = prof::render_profile_json(doc);
  prof::ProfDoc reparsed;
  ASSERT_TRUE(prof::parse_profile_json(profile_json, &reparsed, &error)) << error;
  EXPECT_EQ(reparsed, doc);
}

TEST(ObsContentionTest, CoarseMmuLockWaitExceedsFineGrainedTrio) {
  const SimTime coarse_mmu_wait =
      wait_of(run_fig10_contention(/*fine_grained_locks=*/false), {".mmu_lock"});
  const SimTime fine_trio_wait = wait_of(run_fig10_contention(/*fine_grained_locks=*/true),
                                         {".meta_lock", ".pt_lock.", ".rmap_lock."});
  // The paper's Fig. 10 story: one global mmu_lock serializes 32 faulting
  // processes; splitting it into the meta/pt/rmap trio removes most of the
  // queueing on the identical workload.
  EXPECT_GT(coarse_mmu_wait, 0u);
  EXPECT_GT(coarse_mmu_wait, fine_trio_wait);
}

}  // namespace
}  // namespace pvm
