// Tests for the workload library: every LMbench op and app model runs to
// completion in every deployment mode, and key cross-mode orderings hold.

#include <gtest/gtest.h>

#include <map>

#include "src/workloads/apps.h"
#include "src/workloads/lmbench.h"
#include "src/workloads/memstress.h"
#include "src/workloads/runner.h"

namespace pvm {
namespace {

constexpr DeployMode kAllModes[] = {DeployMode::kKvmEptBm,  DeployMode::kKvmSptBm,
                                    DeployMode::kPvmBm,     DeployMode::kKvmEptNst,
                                    DeployMode::kPvmNst,    DeployMode::kSptOnEptNst};

std::unique_ptr<VirtualPlatform> make_platform(DeployMode mode) {
  PlatformConfig config;
  config.mode = mode;
  return std::make_unique<VirtualPlatform>(config);
}

std::uint64_t run_lmbench_once(DeployMode mode, LmbenchOp op, int iterations = 8,
                               int boot_pages = 64) {
  auto platform = make_platform(mode);
  SecureContainer& container = platform->create_container("c0");
  platform->sim().spawn(container.boot(boot_pages));
  platform->sim().run();

  std::uint64_t latency = 0;
  platform->sim().spawn(
      [](SecureContainer& c, LmbenchOp o, int iters, std::uint64_t* out) -> Task<void> {
        LmbenchParams params;
        params.resident_pages = 64;
        *out = co_await lmbench_run(c, c.vcpu(0), *c.init_process(), o, iters, params);
      }(container, op, iterations, &latency));
  platform->sim().run();
  EXPECT_TRUE(platform->sim().all_tasks_done());
  return latency;
}

class LmbenchAllOps : public ::testing::TestWithParam<LmbenchOp> {};

TEST_P(LmbenchAllOps, RunsInEveryMode) {
  for (DeployMode mode : kAllModes) {
    SCOPED_TRACE(deploy_mode_name(mode));
    const std::uint64_t latency = run_lmbench_once(mode, GetParam(), 4);
    EXPECT_GT(latency, 0u);
    EXPECT_LT(latency, 1000ull * kNsPerMs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, LmbenchAllOps,
    ::testing::Values(LmbenchOp::kNullIo, LmbenchOp::kStat, LmbenchOp::kOpenClose,
                      LmbenchOp::kSelectTcp, LmbenchOp::kSigInstall, LmbenchOp::kSigHandle,
                      LmbenchOp::kForkProc, LmbenchOp::kExecProc, LmbenchOp::kShProc,
                      LmbenchOp::kFileCreate0K, LmbenchOp::kFileCreate10K, LmbenchOp::kMmap,
                      LmbenchOp::kProtFault, LmbenchOp::kPageFault, LmbenchOp::kSelect100Fd,
                      LmbenchOp::kGetPid),
    [](const ::testing::TestParamInfo<LmbenchOp>& param_info) {
      std::string name(lmbench_op_name(param_info.param));
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

TEST(LmbenchOrderingTest, GetPidDirectSwitchBeatsNoDirectSwitch) {
  PlatformConfig with;
  with.mode = DeployMode::kPvmNst;
  PlatformConfig without = with;
  without.direct_switch = false;

  auto run_one = [](const PlatformConfig& config) {
    VirtualPlatform platform(config);
    SecureContainer& c = platform.create_container("c0");
    platform.sim().spawn(c.boot(32));
    platform.sim().run();
    std::uint64_t latency = 0;
    platform.sim().spawn([](SecureContainer& cc, std::uint64_t* out) -> Task<void> {
      *out = co_await lmbench_run(cc, cc.vcpu(0), *cc.init_process(), LmbenchOp::kGetPid, 64,
                                  LmbenchParams{});
    }(c, &latency));
    platform.sim().run();
    return latency;
  };
  const std::uint64_t fast = run_one(with);
  const std::uint64_t slow = run_one(without);
  EXPECT_LT(fast, slow);
  // The paper reports ~6x (0.30 vs 1.93 us); allow a broad band.
  EXPECT_GT(static_cast<double>(slow) / static_cast<double>(fast), 2.0);
}

TEST(LmbenchOrderingTest, SyscallCostKvmEptFastestPvmMiddleKvmSptSlowest) {
  const std::uint64_t ept = run_lmbench_once(DeployMode::kKvmEptBm, LmbenchOp::kGetPid, 64);
  const std::uint64_t pvm = run_lmbench_once(DeployMode::kPvmBm, LmbenchOp::kGetPid, 64);
  const std::uint64_t spt = run_lmbench_once(DeployMode::kKvmSptBm, LmbenchOp::kGetPid, 64);
  EXPECT_LT(ept, pvm);
  EXPECT_LT(pvm, spt);
}

TEST(LmbenchOrderingTest, ForkCheaperOnEptThanOnShadowSchemes) {
  // lmbench's parent process has a few hundred resident pages; the fork
  // child's exit tears all of them down, each clear trapping under shadow
  // paging — the paper's fork/exec/sh exception (§4.2).
  const std::uint64_t ept =
      run_lmbench_once(DeployMode::kKvmEptNst, LmbenchOp::kForkProc, 4, /*boot_pages=*/320);
  const std::uint64_t pvm =
      run_lmbench_once(DeployMode::kPvmNst, LmbenchOp::kForkProc, 4, /*boot_pages=*/320);
  EXPECT_LT(ept, pvm);
}

TEST(MemStressTest, RunsInAllModesAndPvmBeatsKvmNested) {
  MemStressParams params;
  params.total_bytes = 4ull << 20;  // small for the unit test

  std::map<DeployMode, double> seconds;
  for (DeployMode mode : kAllModes) {
    SCOPED_TRACE(deploy_mode_name(mode));
    auto platform = make_platform(mode);
    SecureContainer& container = platform->create_container("c0");
    platform->sim().spawn(container.boot(16));
    platform->sim().run();
    const ConcurrentResult result = run_processes_in_container(
        *platform, container, 2,
        [&](int, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
          return memstress_process(container, vcpu, proc, params);
        });
    EXPECT_EQ(result.task_times.size(), 2u);
    for (const SimTime t : result.task_times) {
      EXPECT_GT(t, 0u);
    }
    seconds[mode] = result.mean_seconds();
  }
  // Fig. 4 / Fig. 10 orderings at low concurrency.
  EXPECT_LT(seconds[DeployMode::kKvmEptBm], seconds[DeployMode::kPvmNst]);
  EXPECT_LT(seconds[DeployMode::kPvmNst], seconds[DeployMode::kKvmEptNst]);
  EXPECT_LT(seconds[DeployMode::kKvmEptNst], seconds[DeployMode::kSptOnEptNst]);
}

TEST(AppModelTest, AppsRunInEveryMode) {
  for (DeployMode mode : {DeployMode::kKvmEptBm, DeployMode::kKvmEptNst, DeployMode::kPvmNst}) {
    SCOPED_TRACE(deploy_mode_name(mode));
    auto platform = make_platform(mode);
    AppParams params;
    params.size = 0.1;

    const ContainersResult result = run_containers(
        *platform, 2,
        [&](int, SecureContainer& c, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
          return app_kbuild(c, vcpu, proc, params);
        },
        32);
    EXPECT_EQ(result.task_times.size(), 2u);
    for (const SimTime t : result.task_times) {
      EXPECT_GT(t, 0u);
    }
    for (const SimTime boot : result.boot_latencies) {
      EXPECT_GT(boot, 0u);
    }
  }
}

TEST(AppModelTest, BlogbenchReturnsScore) {
  auto platform = make_platform(DeployMode::kPvmNst);
  SecureContainer& c = platform->create_container("c0");
  platform->sim().spawn(c.boot(32));
  platform->sim().run();
  double score = 0;
  AppParams params;
  params.size = 0.1;
  platform->sim().spawn([](SecureContainer& cc, AppParams p, double* out) -> Task<void> {
    *out = co_await app_blogbench(cc, cc.vcpu(0), *cc.init_process(), p);
  }(c, params, &score));
  platform->sim().run();
  EXPECT_GT(score, 0.0);
}

TEST(AppModelTest, SpecjbbReturnsThroughput) {
  auto platform = make_platform(DeployMode::kKvmEptBm);
  SecureContainer& c = platform->create_container("c0");
  platform->sim().spawn(c.boot(32));
  platform->sim().run();
  double kbops = 0;
  AppParams params;
  params.size = 0.05;
  platform->sim().spawn([](SecureContainer& cc, AppParams p, double* out) -> Task<void> {
    *out = co_await app_specjbb(cc, cc.vcpu(0), *cc.init_process(), p);
  }(c, params, &kbops));
  platform->sim().run();
  EXPECT_GT(kbops, 0.0);
}

TEST(AppModelTest, FluidanimateCompletesWithBarriers) {
  for (DeployMode mode : {DeployMode::kKvmEptNst, DeployMode::kPvmNst}) {
    SCOPED_TRACE(deploy_mode_name(mode));
    auto platform = make_platform(mode);
    SecureContainer& c = platform->create_container("c0");
    platform->sim().spawn(c.boot(16));
    platform->sim().run();
    AppParams params;
    platform->sim().spawn(app_fluidanimate(c, params, /*threads=*/3, /*frames=*/4));
    platform->sim().run();
    EXPECT_TRUE(platform->sim().all_tasks_done());
  }
}

TEST(AppModelTest, CloudSuiteKindsComplete) {
  auto platform = make_platform(DeployMode::kPvmNst);
  SecureContainer& c = platform->create_container("c0");
  platform->sim().spawn(c.boot(16));
  platform->sim().run();
  for (CloudSuiteKind kind : {CloudSuiteKind::kDataAnalytics, CloudSuiteKind::kGraphAnalytics,
                              CloudSuiteKind::kInMemoryAnalytics}) {
    AppParams params;
    params.size = 0.2;
    platform->sim().spawn(
        [](SecureContainer& cc, CloudSuiteKind k, AppParams p) -> Task<void> {
          return app_cloudsuite(cc, cc.vcpu(0), *cc.init_process(), k, p);
        }(c, kind, params));
    platform->sim().run();
    EXPECT_TRUE(platform->sim().all_tasks_done());
  }
}

TEST(RunnerTest, ConcurrentProcessesOverlapInTime) {
  auto platform = make_platform(DeployMode::kKvmEptBm);
  SecureContainer& container = platform->create_container("c0");
  platform->sim().spawn(container.boot(16));
  platform->sim().run();

  MemStressParams params;
  params.total_bytes = 2ull << 20;
  const ConcurrentResult result = run_processes_in_container(
      *platform, container, 4,
      [&](int, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        return memstress_process(container, vcpu, proc, params);
      });
  // If the 4 processes truly overlap, the makespan is far less than the sum.
  SimTime sum = 0;
  for (const SimTime t : result.task_times) {
    sum += t;
  }
  EXPECT_LT(result.makespan, sum);
}

}  // namespace
}  // namespace pvm
