// Tests for the virtual local APIC: IRR/ISR semantics, priority classes,
// EOI, and idempotent raising.

#include <gtest/gtest.h>

#include "src/arch/apic.h"

namespace pvm {
namespace {

TEST(VirtualApicTest, EmptyHasNothingPending) {
  VirtualApic apic;
  EXPECT_FALSE(apic.highest_pending().has_value());
  EXPECT_FALSE(apic.accept().has_value());
  EXPECT_EQ(apic.pending_count(), 0);
}

TEST(VirtualApicTest, RaiseAcceptEoiLifecycle) {
  VirtualApic apic;
  EXPECT_TRUE(apic.raise(0x40));
  EXPECT_TRUE(apic.irr_test(0x40));
  ASSERT_TRUE(apic.highest_pending().has_value());
  EXPECT_EQ(*apic.highest_pending(), 0x40);

  const auto accepted = apic.accept();
  ASSERT_TRUE(accepted.has_value());
  EXPECT_EQ(*accepted, 0x40);
  EXPECT_FALSE(apic.irr_test(0x40));
  EXPECT_TRUE(apic.isr_test(0x40));

  apic.eoi();
  EXPECT_FALSE(apic.isr_test(0x40));
  EXPECT_EQ(apic.in_service_count(), 0);
}

TEST(VirtualApicTest, ExceptionVectorsRejected) {
  VirtualApic apic;
  EXPECT_FALSE(apic.raise(14));  // #PF is not an external interrupt
  EXPECT_EQ(apic.pending_count(), 0);
}

TEST(VirtualApicTest, HighestVectorWinsAmongPending) {
  VirtualApic apic;
  apic.raise(0x30);
  apic.raise(0xA0);
  apic.raise(0x55);
  EXPECT_EQ(*apic.highest_pending(), 0xA0);
  EXPECT_EQ(*apic.accept(), 0xA0);
  // 0xA0 in service (class 10): lower classes stay masked until EOI.
  EXPECT_FALSE(apic.highest_pending().has_value());
  apic.eoi();  // retire 0xA0
  EXPECT_EQ(*apic.accept(), 0x55);
  apic.eoi();  // retire 0x55
  EXPECT_EQ(*apic.accept(), 0x30);
}

TEST(VirtualApicTest, SamePriorityClassMasksDelivery) {
  VirtualApic apic;
  apic.raise(0x42);
  (void)apic.accept();
  apic.raise(0x41);  // same class (0x4x) as in-service 0x42
  EXPECT_FALSE(apic.highest_pending().has_value());
  apic.raise(0x51);  // higher class: deliverable (interrupt nesting)
  EXPECT_EQ(*apic.highest_pending(), 0x51);
  apic.eoi();
  EXPECT_EQ(*apic.highest_pending(), 0x51);
  EXPECT_EQ(*apic.accept(), 0x51);
}

TEST(VirtualApicTest, RaisingPendingVectorIsIdempotent) {
  VirtualApic apic;
  apic.raise(0x60);
  apic.raise(0x60);
  apic.raise(0x60);
  EXPECT_EQ(apic.pending_count(), 1);
  (void)apic.accept();
  EXPECT_EQ(apic.pending_count(), 0);
  EXPECT_EQ(apic.in_service_count(), 1);
}

TEST(VirtualApicTest, FullSweepAllVectors) {
  VirtualApic apic;
  for (int vector = VirtualApic::kFirstExternalVector; vector < 256; ++vector) {
    ASSERT_TRUE(apic.raise(static_cast<std::uint8_t>(vector)));
  }
  EXPECT_EQ(apic.pending_count(), 256 - VirtualApic::kFirstExternalVector);
  // Vectors drain strictly by descending priority as EOIs retire them.
  int previous = 256;
  int drained = 0;
  while (true) {
    const auto vector = apic.accept();
    if (!vector) {
      if (apic.in_service_count() == 0) {
        break;
      }
      apic.eoi();
      continue;
    }
    ASSERT_LT(static_cast<int>(*vector), previous);
    previous = *vector;
    ++drained;
    apic.eoi();
  }
  EXPECT_EQ(drained, 256 - VirtualApic::kFirstExternalVector);
  EXPECT_EQ(apic.pending_count(), 0);
}

}  // namespace
}  // namespace pvm
