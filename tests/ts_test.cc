// pvm::ts tests: mergeable-histogram algebra (associativity, commutativity,
// merge-of-shards == single-stream, quantile error <= one bucket width),
// tumbling-window boundary semantics, the flight-event bridge, the
// pvm.timeseries.v1 round trip, sweep-style prefix+merge determinism, SLO
// evaluation, the pvm-top rendering, and an end-to-end platform smoke run.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "src/backends/platform.h"
#include "src/obs/flight.h"
#include "src/obs/hist.h"
#include "src/obs/span.h"
#include "src/obs/ts.h"

namespace pvm::ts {
namespace {

// --- Histogram buckets and quantiles -----------------------------------

TEST(MergeableHistogramTest, SmallValuesAreExact) {
  MergeableHistogram h;
  for (std::uint64_t v = 0; v < 8; ++v) {
    // Below 2^kSubBits every value has its own bucket.
    EXPECT_EQ(MergeableHistogram::bucket_lower_bound(MergeableHistogram::bucket_index(v)),
              v);
    EXPECT_EQ(MergeableHistogram::bucket_upper_bound(MergeableHistogram::bucket_index(v)),
              v);
    h.record(v);
  }
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.sum(), 28u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 3u);
  EXPECT_EQ(h.quantile(1.0), 7u);
}

TEST(MergeableHistogramTest, BucketBoundsBracketEveryMagnitude) {
  // Total-order preservation plus tight brackets, across every power of two
  // including the top of the u64 range.
  std::vector<std::uint64_t> probes;
  for (unsigned shift = 0; shift < 64; ++shift) {
    const std::uint64_t p = std::uint64_t{1} << shift;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
  }
  std::sort(probes.begin(), probes.end());
  std::uint32_t last_index = 0;
  for (const std::uint64_t v : probes) {
    const std::uint32_t index = MergeableHistogram::bucket_index(v);
    EXPECT_GE(index, last_index) << "v=" << v;
    last_index = index;
    EXPECT_LE(MergeableHistogram::bucket_lower_bound(index), v);
    EXPECT_GE(MergeableHistogram::bucket_upper_bound(index), v);
  }
  EXPECT_EQ(MergeableHistogram::bucket_upper_bound(
                MergeableHistogram::bucket_index(~std::uint64_t{0})),
            ~std::uint64_t{0});
}

TEST(MergeableHistogramTest, QuantileWithinOneBucketWidth) {
  std::mt19937_64 rng(2024);
  std::vector<std::uint64_t> samples;
  MergeableHistogram h;
  for (int i = 0; i < 5000; ++i) {
    // Mixed magnitudes: exact region, mid-range, and large values.
    const std::uint64_t v = (rng() % 3 == 0) ? rng() % 8 : rng() % (1ull << (8 + rng() % 40));
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.0, 0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0}) {
    std::size_t rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(samples.size())));
    if (rank == 0) {
      rank = 1;
    }
    const std::uint64_t exact = samples[rank - 1];
    const std::uint64_t reported = h.quantile(q);
    // The report is the upper bound of the exact sample's bucket (clamped to
    // the observed max): never below the exact value, never beyond its
    // bucket's width.
    EXPECT_GE(reported, exact) << "q=" << q;
    EXPECT_LE(reported,
              MergeableHistogram::bucket_upper_bound(MergeableHistogram::bucket_index(exact)))
        << "q=" << q;
  }
}

TEST(MergeableHistogramTest, PointDistributionReportsExactly) {
  MergeableHistogram h;
  h.record(378105, 150);
  EXPECT_EQ(h.quantile(0.5), 378105u);
  EXPECT_EQ(h.quantile(0.99), 378105u);
  EXPECT_EQ(h.quantile(1.0), 378105u);
}

// --- Merge algebra ------------------------------------------------------

MergeableHistogram random_hist(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  MergeableHistogram h;
  for (int i = 0; i < n; ++i) {
    h.record(rng() % (1ull << (rng() % 48)));
  }
  return h;
}

TEST(MergeableHistogramTest, MergeIsCommutativeAndAssociative) {
  const MergeableHistogram a = random_hist(1, 400);
  const MergeableHistogram b = random_hist(2, 300);
  const MergeableHistogram c = random_hist(3, 500);

  MergeableHistogram ab = a;
  ab.merge(b);
  MergeableHistogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);

  MergeableHistogram ab_c = ab;
  ab_c.merge(c);
  MergeableHistogram bc = b;
  bc.merge(c);
  MergeableHistogram a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);
}

TEST(MergeableHistogramTest, MergedShardsEqualSingleStream) {
  std::mt19937_64 rng(77);
  MergeableHistogram single;
  std::vector<MergeableHistogram> shards(8);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t v = rng() % (1ull << (rng() % 40));
    single.record(v);
    shards[i % 8].record(v);  // round-robin, like a --jobs 8 sweep
  }
  MergeableHistogram merged;
  for (const MergeableHistogram& shard : shards) {
    merged.merge(shard);
  }
  EXPECT_EQ(merged, single);
  for (const double q : {0.5, 0.99, 0.999}) {
    EXPECT_EQ(merged.quantile(q), single.quantile(q));
  }
}

// --- Window semantics ---------------------------------------------------

TEST(CollectorTest, TumblingWindowBoundaries) {
  std::uint64_t now = 0;
  Collector collector;
  collector.bind(&now);
  collector.set_window(1000);

  now = 0;
  collector.count("c");
  now = 999;
  collector.count("c");  // last ns of window 0
  now = 1000;
  collector.count("c");  // first ns of window 1
  now = 2000;
  collector.count("c");  // window 2; window for [1001, 1999] untouched

  const TsDoc doc = collector.drain();
  const TsSeries& series = doc.series.at("c");
  EXPECT_EQ(series.total, 4);
  ASSERT_EQ(series.windows.size(), 3u);
  EXPECT_EQ(series.windows.at(0), 2);
  EXPECT_EQ(series.windows.at(1), 1);
  EXPECT_EQ(series.windows.at(2), 1);
}

TEST(CollectorTest, GaugeRecordsLevelPerWindowAndFinalTotal) {
  std::uint64_t now = 0;
  Collector collector;
  collector.bind(&now);
  collector.set_window(1000);

  collector.gauge_add("g", 5);
  now = 500;
  collector.gauge_add("g", 3);  // same window: level 8 wins
  now = 2500;
  collector.gauge_add("g", -2);

  const TsDoc doc = collector.drain();
  const TsSeries& series = doc.series.at("g");
  EXPECT_TRUE(series.gauge);
  EXPECT_EQ(series.total, 6);  // final level
  ASSERT_EQ(series.windows.size(), 2u);
  EXPECT_EQ(series.windows.at(0), 8);
  EXPECT_EQ(series.windows.at(2), 6);
}

TEST(CollectorTest, ObserveLandsInTheStampedWindow) {
  Collector collector;
  collector.set_window(1000);
  collector.observe_at("lat", 250, 40);
  collector.observe_at("lat", 1750, 60);

  const TsDoc doc = collector.drain();
  const TsHist& hist = doc.hists.at("lat");
  ASSERT_EQ(hist.windows.size(), 2u);
  EXPECT_EQ(hist.windows.at(0).count(), 1u);
  EXPECT_EQ(hist.windows.at(1).count(), 1u);
  EXPECT_EQ(hist.cumulative().count(), 2u);
  EXPECT_EQ(hist.cumulative().sum(), 100u);
}

TEST(CollectorTest, DrainResetsButKeepsWindowWidth) {
  Collector collector;
  collector.set_window(2000);
  collector.count_at("c", 0);
  const TsDoc first = collector.drain();
  EXPECT_EQ(first.window_ns, 2000u);
  EXPECT_FALSE(first.empty());
  const TsDoc second = collector.drain();
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(second.window_ns, 2000u);
}

// --- Flight-event bridge ------------------------------------------------

TEST(CollectorTest, FlightBridgePairsExitsWithEntries) {
  std::uint64_t now = 0;
  std::int64_t track = 4;
  flight::FlightRecorder recorder;
  recorder.bind(&now, &track);
  Collector collector;
  collector.bind(&now);
  recorder.set_ts(&collector);

  now = 100;
  recorder.record(flight::EventKind::kSwitcherExit, 0, 0, /*code=*/1);
  now = 600;
  recorder.record(flight::EventKind::kSwitcherEntry);
  now = 700;
  recorder.record(flight::EventKind::kVmxExit, 0, 0, /*code=*/2);
  now = 1900;
  recorder.record(flight::EventKind::kVmxEntry);
  now = 2000;
  recorder.record(flight::EventKind::kDirectSwitch, 0, /*b=*/130, /*code=*/0);

  const TsDoc doc = collector.drain();
  EXPECT_EQ(doc.series.at("switcher_exits").total, 1);
  EXPECT_EQ(doc.series.at("vmx_exits").total, 1);
  EXPECT_EQ(doc.series.at("direct_switches").total, 1);
  EXPECT_EQ(doc.hists.at("switch_exit_ns").cumulative().sum(), 500u);
  EXPECT_EQ(doc.hists.at("vmx_roundtrip_ns").cumulative().sum(), 1200u);
  EXPECT_EQ(doc.hists.at("direct_switch_ns").cumulative().sum(), 130u);
  // The roundtrip is keyed to the *exit* stamp's window.
  EXPECT_EQ(doc.hists.at("vmx_roundtrip_ns").windows.count(0), 1u);
}

TEST(CollectorTest, FlightBridgeCountsDiscreteKinds) {
  std::uint64_t now = 50;
  std::int64_t track = 1;
  flight::FlightRecorder recorder;
  recorder.bind(&now, &track);
  Collector collector;
  collector.bind(&now);
  recorder.set_ts(&collector);

  recorder.record(flight::EventKind::kSptFill, 0, 0, /*code=*/0);
  recorder.record(flight::EventKind::kSptFill, 0, 0, /*code=*/1);
  recorder.record(flight::EventKind::kSptFill, 0, 0, /*code=*/2);
  recorder.record(flight::EventKind::kBulkZap, /*a=*/17);
  recorder.record(flight::EventKind::kReclaim, /*a=*/9);
  recorder.record(flight::EventKind::kLockAcquire, 0, /*b=*/400, /*code=*/1);
  recorder.record(flight::EventKind::kLockAcquire, 0, /*b=*/0, /*code=*/0);
  recorder.record(flight::EventKind::kWatchdog, 0, 0, /*code=*/2);
  recorder.record(flight::EventKind::kOomKill, /*a=*/3);

  const TsDoc doc = collector.drain();
  EXPECT_EQ(doc.series.at("spt_fills").total, 1);
  EXPECT_EQ(doc.series.at("prefault_fills").total, 1);
  EXPECT_EQ(doc.series.at("spt_fill_races").total, 1);
  EXPECT_EQ(doc.series.at("bulk_zaps").total, 1);
  EXPECT_EQ(doc.series.at("zapped_leaves").total, 17);
  EXPECT_EQ(doc.series.at("reclaims").total, 1);
  EXPECT_EQ(doc.series.at("reclaimed_frames").total, 9);
  EXPECT_EQ(doc.series.at("lock_contended").total, 1);
  EXPECT_EQ(doc.hists.at("lock_wait_ns").cumulative().sum(), 400u);
  EXPECT_EQ(doc.series.at("watchdog_kills").total, 1);
  EXPECT_EQ(doc.series.at("oom_kills").total, 1);
  // Uncontended acquires produce no contention row at all.
  EXPECT_EQ(doc.series.count("lock_uncontended"), 0u);
}

TEST(CollectorTest, FlightBridgeBuildsMigrationWindowSeries) {
  std::uint64_t now = 0;
  std::int64_t track = 1;
  flight::FlightRecorder recorder;
  recorder.bind(&now, &track);
  Collector collector;
  collector.bind(&now);
  recorder.set_ts(&collector);

  // Two pre-copy rounds, a fallback, and the stop-copy pause — the shape a
  // diverging kAuto migration emits.
  recorder.record(flight::EventKind::kMigrationRound, /*a=*/8192, /*b=*/2000);
  now = 11 * kNsPerMs;
  recorder.record(flight::EventKind::kMigrationRound, /*a=*/2000, /*b=*/2000);
  now = 14 * kNsPerMs;
  recorder.record(flight::EventKind::kMigrationFallback, /*a=*/2000, 0);
  recorder.record(flight::EventKind::kMigrationStopCopy, /*a=*/0, /*b=*/200'000);

  const TsDoc doc = collector.drain();
  EXPECT_EQ(doc.series.at("migration_rounds").total, 2);
  EXPECT_EQ(doc.series.at("migration_pages_copied").total, 8192 + 2000);
  EXPECT_EQ(doc.series.at("migration_pages_dirtied").total, 4000);
  EXPECT_EQ(doc.series.at("migration_fallbacks").total, 1);
  EXPECT_EQ(doc.series.at("migration_stop_copies").total, 1);
  EXPECT_EQ(doc.hists.at("migration_downtime_ns").cumulative().sum(), 200'000u);
}

// --- JSON round trip and merge discipline -------------------------------

TsDoc sample_doc() {
  std::uint64_t now = 0;
  Collector collector;
  collector.bind(&now);
  collector.set_window(1000);
  for (int i = 0; i < 40; ++i) {
    now = static_cast<std::uint64_t>(i) * 137;
    collector.count("events");
    collector.observe("latency_ns", 100 + static_cast<std::uint64_t>(i) * 13);
    if (i % 4 == 0) {
      collector.gauge_add("level", i % 8 == 0 ? 2 : -1);
    }
  }
  return collector.drain();
}

TEST(TimeseriesJsonTest, RoundTripIsByteIdentical) {
  const TsDoc doc = sample_doc();
  const std::string rendered = render_timeseries_json(doc);
  TsDoc reparsed;
  std::string error;
  ASSERT_TRUE(parse_timeseries_json(rendered, &reparsed, &error)) << error;
  EXPECT_EQ(reparsed, doc);
  EXPECT_EQ(render_timeseries_json(reparsed), rendered);
}

TEST(TimeseriesJsonTest, ParseRejectsGarbage) {
  TsDoc doc;
  std::string error;
  EXPECT_FALSE(parse_timeseries_json("{]", &doc, &error));
  EXPECT_FALSE(parse_timeseries_json("{\"schema\":\"pvm.bench.v1\"}", &doc, &error));
}

TEST(TimeseriesMergeTest, PrefixedShardMergeMatchesSingleStream) {
  // Two shards of the same cell coordinate vs one collector fed both
  // streams: after prefixing and merging, the documents are identical —
  // the acceptance bar behind `pvm-matrix --jobs 8` byte-identity.
  std::uint64_t now = 0;
  Collector shard_a;
  Collector shard_b;
  Collector single;
  shard_a.bind(&now);
  shard_b.bind(&now);
  single.bind(&now);
  std::mt19937_64 rng(5);
  for (int i = 0; i < 600; ++i) {
    now = static_cast<std::uint64_t>(rng() % 50) * 1000;
    const std::uint64_t v = rng() % (1ull << (rng() % 32));
    Collector& shard = (i % 2 == 0) ? shard_a : shard_b;
    shard.count("n");
    shard.observe("lat", v);
    single.count("n");
    single.observe("lat", v);
  }

  TsDoc merged;
  std::string error;
  ASSERT_TRUE(merge_timeseries(&merged, prefix_timeseries(shard_a.drain(), "pvm/w/"), &error));
  ASSERT_TRUE(merge_timeseries(&merged, prefix_timeseries(shard_b.drain(), "pvm/w/"), &error));
  const TsDoc expected = prefix_timeseries(single.drain(), "pvm/w/");
  EXPECT_EQ(merged, expected);
  EXPECT_EQ(render_timeseries_json(merged), render_timeseries_json(expected));
}

TEST(TimeseriesMergeTest, MergeOrderInvariantForDisjointCells) {
  std::uint64_t now = 0;
  Collector a;
  Collector b;
  a.bind(&now);
  b.bind(&now);
  a.count("x");
  b.count("x");
  const TsDoc doc_a = prefix_timeseries(a.drain(), "pvm/boot/");
  const TsDoc doc_b = prefix_timeseries(b.drain(), "ept/boot/");

  TsDoc ab;
  TsDoc ba;
  std::string error;
  ASSERT_TRUE(merge_timeseries(&ab, doc_a, &error));
  ASSERT_TRUE(merge_timeseries(&ab, doc_b, &error));
  ASSERT_TRUE(merge_timeseries(&ba, doc_b, &error));
  ASSERT_TRUE(merge_timeseries(&ba, doc_a, &error));
  EXPECT_EQ(render_timeseries_json(ab), render_timeseries_json(ba));
}

TEST(TimeseriesMergeTest, WindowWidthMismatchFails) {
  Collector a;
  Collector b;
  a.set_window(1000);
  b.set_window(2000);
  a.count_at("x", 0);
  b.count_at("x", 0);
  TsDoc merged;
  std::string error;
  ASSERT_TRUE(merge_timeseries(&merged, a.drain(), &error));
  EXPECT_FALSE(merge_timeseries(&merged, b.drain(), &error));
  EXPECT_NE(error.find("window"), std::string::npos);
}

// --- SLO evaluation -----------------------------------------------------

TEST(SloTest, ParseAcceptsUnitsAndScope) {
  SloSpec spec;
  std::string error;
  ASSERT_TRUE(parse_slo_spec("boot:boot_latency_ns:p99<=15ms", &spec, &error)) << error;
  EXPECT_EQ(spec.name, "boot");
  EXPECT_EQ(spec.metric, "boot_latency_ns");
  EXPECT_EQ(spec.quantile, "p99");
  EXPECT_EQ(spec.threshold_ns, 15'000'000u);
  EXPECT_FALSE(spec.per_window);

  ASSERT_TRUE(parse_slo_spec("w:lat:max<=2us:window", &spec, &error)) << error;
  EXPECT_TRUE(spec.per_window);
  EXPECT_EQ(spec.threshold_ns, 2'000u);

  EXPECT_FALSE(parse_slo_spec("", &spec, &error));
  EXPECT_FALSE(parse_slo_spec("no-colons", &spec, &error));
  EXPECT_FALSE(parse_slo_spec("n:m:p42<=1ms", &spec, &error));
  EXPECT_FALSE(parse_slo_spec("n:m:p99<=15parsecs", &spec, &error));
}

TEST(SloTest, EvaluatesRunAndWindowScopes) {
  Collector collector;
  collector.set_window(1000);
  // Window 0: fast. Window 5: one slow outlier.
  for (int i = 0; i < 99; ++i) {
    collector.observe_at("lat", 10, 100);
  }
  collector.observe_at("lat", 5500, 1'000'000);

  TsDoc doc = collector.drain();
  SloSpec run_pass;
  std::string error;
  ASSERT_TRUE(parse_slo_spec("run-pass:lat:p50<=1us", &run_pass, &error));
  SloSpec run_fail;
  ASSERT_TRUE(parse_slo_spec("run-fail:lat:max<=1us", &run_fail, &error));
  SloSpec window_fail;
  ASSERT_TRUE(parse_slo_spec("win-fail:lat:p99<=1us:window", &window_fail, &error));
  SloSpec no_match;
  ASSERT_TRUE(parse_slo_spec("typo:does_not_exist:p99<=1s", &no_match, &error));
  evaluate_slos(&doc, {run_pass, run_fail, window_fail, no_match});

  ASSERT_EQ(doc.slos.size(), 4u);
  EXPECT_TRUE(doc.slos[0].pass);
  EXPECT_FALSE(doc.slos[1].pass);
  EXPECT_FALSE(doc.slos[2].pass);
  EXPECT_EQ(doc.slos[2].worst_window, 5u);
  EXPECT_FALSE(doc.slos[3].pass);  // a typo'd metric must fail loudly
  EXPECT_NE(doc.slos[3].metric.find("no match"), std::string::npos);
}

// --- pvm-top rendering --------------------------------------------------

TEST(RenderTopTest, RendersSparklinesTotalsAndSlos) {
  Collector collector;
  collector.set_window(1000);
  for (int w = 0; w < 8; ++w) {
    collector.count_at("hits", static_cast<std::uint64_t>(w) * 1000, w + 1);
    collector.observe_at("lat_ns", static_cast<std::uint64_t>(w) * 1000,
                         static_cast<std::uint64_t>(100 << w));
  }
  TsDoc doc = collector.drain();
  SloSpec spec;
  std::string error;
  ASSERT_TRUE(parse_slo_spec("gate:lat_ns:p99<=1ms", &spec, &error));
  evaluate_slos(&doc, {spec});

  const std::string a = render_top(doc, TopOptions{});
  EXPECT_EQ(a, render_top(doc, TopOptions{}));  // deterministic
  EXPECT_NE(a.find("pvm-top — pvm.timeseries.v1"), std::string::npos);
  EXPECT_NE(a.find("hits"), std::string::npos);
  EXPECT_NE(a.find("36"), std::string::npos);  // total = 1+..+8
  EXPECT_NE(a.find("LATENCY"), std::string::npos);
  EXPECT_NE(a.find("w7"), std::string::npos);  // worst window
  EXPECT_NE(a.find("PASS"), std::string::npos);

  // Filtering drops non-matching rows.
  TopOptions filter;
  filter.filter = "lat_ns";
  const std::string filtered = render_top(doc, filter);
  EXPECT_EQ(filtered.find("hits"), std::string::npos);
  EXPECT_NE(filtered.find("lat_ns"), std::string::npos);
}

// --- End-to-end platform smoke ------------------------------------------

TsDoc platform_run() {
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  VirtualPlatform platform(config);
  Collector collector;
  platform.sim().set_ts(&collector);
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot(8));
  platform.sim().run();
  return collector.drain();
}

TEST(TimeseriesPlatformTest, BootProducesDeterministicTelemetry) {
  const TsDoc doc = platform_run();
  EXPECT_EQ(doc.series.at("boot_completions").total, 1);
  EXPECT_EQ(doc.hists.at("boot_latency_ns").cumulative().count(), 1u);
  EXPECT_GT(doc.series.at("switcher_exits").total, 0);
  // Same config, same seed: byte-identical telemetry.
  EXPECT_EQ(render_timeseries_json(doc), render_timeseries_json(platform_run()));
}

TEST(TimeseriesPlatformTest, EveryTailBucketCarriesAResolvableExemplar) {
  // Declared before the platform: coroutine frames destroyed with the
  // platform may still hold SpanScopes into the recorder.
  obs::SpanRecorder spans;
  spans.set_enabled(true);
  Collector collector;
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  VirtualPlatform platform(config);
  // Raise the ring capacity before any track records, so no flight event the
  // exemplars can point at is evicted by wraparound.
  platform.flight().set_capacity(1 << 16);
  platform.sim().set_ts(&collector);
  platform.sim().set_spans(&spans);
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot(8));
  platform.sim().run();
  const TsDoc doc = collector.drain();

  std::set<std::uint64_t> flight_seqs;
  for (const auto& [track, ring] : platform.flight().rings()) {
    EXPECT_EQ(ring.dropped(), 0u) << "track " << track;
    for (const auto& event : ring.snapshot()) {
      flight_seqs.insert(event.seq);
    }
  }
  ASSERT_FALSE(flight_seqs.empty());

  // Every histogram bucket that holds samples — the tail bucket included —
  // must carry an exemplar whose seq resolves to a live flight-ring event.
  std::size_t checked = 0;
  for (const auto& [name, hist] : doc.hists) {
    const MergeableHistogram cumulative = hist.cumulative();
    for (const auto& [bucket, n] : cumulative.buckets()) {
      ASSERT_TRUE(hist.exemplars.contains(bucket))
          << name << " bucket " << bucket << " (" << n << " samples) has no exemplar";
      const TsExemplar& exemplar = hist.exemplars.at(bucket);
      EXPECT_TRUE(flight_seqs.contains(exemplar.seq))
          << name << " bucket " << bucket << " exemplar seq " << exemplar.seq
          << " not found in flight rings";
      ++checked;
    }
    const TsExemplar* tail = hist.tail_exemplar();
    ASSERT_NE(tail, nullptr) << name;
    EXPECT_EQ(tail->value, cumulative.max()) << name;
  }
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace pvm::ts
