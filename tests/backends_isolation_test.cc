// Security/isolation properties across deployments (paper §5 threat model):
// guest user code must never reach kernel-half translations; permission
// narrowing must be visible immediately (no stale writable TLB entries);
// address spaces of different processes and different containers must not
// alias each other's TLB tags.

#include <gtest/gtest.h>

#include "src/backends/platform.h"
#include "src/backends/pvm_memory_backend.h"

namespace pvm {
namespace {

constexpr DeployMode kAllModes[] = {DeployMode::kKvmEptBm,  DeployMode::kKvmSptBm,
                                    DeployMode::kPvmBm,     DeployMode::kKvmEptNst,
                                    DeployMode::kPvmNst,    DeployMode::kSptOnEptNst};

struct Harness {
  explicit Harness(DeployMode mode) {
    PlatformConfig config;
    config.mode = mode;
    platform = std::make_unique<VirtualPlatform>(config);
    container = &platform->create_container("c0");
    platform->sim().spawn(container->boot(8));
    platform->sim().run();
  }
  void run(Task<void> task) {
    platform->sim().spawn(std::move(task));
    platform->sim().run();
  }
  std::unique_ptr<VirtualPlatform> platform;
  SecureContainer* container;
};

class IsolationAllModes : public ::testing::TestWithParam<DeployMode> {};

TEST_P(IsolationAllModes, WriteProtectIsVisibleImmediately) {
  // Narrowing a mapping (e.g. fork's COW arm) must invalidate any cached
  // writable translation — otherwise the guest could keep writing a shared
  // frame. We verify via the COW counter: the write after protect faults.
  Harness h(GetParam());
  GuestKernel& kernel = h.container->kernel();
  GuestProcess& proc = *h.container->init_process();
  Vcpu& vcpu = h.container->vcpu(0);

  h.run([](GuestKernel& k, Vcpu& v, GuestProcess& p) -> Task<void> {
    const std::uint64_t base = co_await k.sys_mmap(v, p, kPageSize);
    co_await k.touch(v, p, base, true);  // writable + cached in TLB
    co_await k.mem().gpt_protect(v, p, base, /*writable=*/false, /*mark_cow=*/true);
  }(kernel, vcpu, proc));

  const CounterSet before = h.platform->counters();
  h.run([](GuestKernel& k, Vcpu& v, GuestProcess& p) -> Task<void> {
    auto it = p.vmas().upper_bound(GuestProcess::kStackBase - 1);
    const std::uint64_t base = std::prev(it)->second.start;
    co_await k.touch(v, p, base, true);  // must fault, not silently write
  }(kernel, vcpu, proc));
  const CounterSet d = h.platform->counters().delta_since(before);
  EXPECT_GE(d.get(Counter::kGuestPageFault), 1u)
      << "write after protect did not fault under " << deploy_mode_name(GetParam());
  EXPECT_GE(d.get(Counter::kCowBreak), 1u);
}

TEST_P(IsolationAllModes, UnmapIsVisibleImmediately) {
  Harness h(GetParam());
  GuestKernel& kernel = h.container->kernel();
  GuestProcess& proc = *h.container->init_process();
  Vcpu& vcpu = h.container->vcpu(0);

  std::uint64_t base = 0;
  h.run([](GuestKernel& k, Vcpu& v, GuestProcess& p, std::uint64_t* out) -> Task<void> {
    *out = co_await k.sys_mmap(v, p, kPageSize);
    co_await k.touch(v, p, *out, true);
    co_await k.sys_munmap(v, p, *out);
    // Remap the same range: the fresh touch must demand-page a new frame,
    // not hit a stale cached translation of the old one.
    p.vmas()[*out] = Vma{*out, kPageSize, true};
  }(kernel, vcpu, proc, &base));

  const CounterSet before = h.platform->counters();
  h.run([](GuestKernel& k, Vcpu& v, GuestProcess& p, std::uint64_t gva) -> Task<void> {
    co_await k.touch(v, p, gva, true);
  }(kernel, vcpu, proc, base));
  EXPECT_GE(h.platform->counters().delta_since(before).get(Counter::kGuestPageFault), 1u)
      << "stale translation survived munmap under " << deploy_mode_name(GetParam());
}

TEST_P(IsolationAllModes, ProcessesDoNotShareTlbTranslations) {
  // Process B touching the same virtual address as process A must fault and
  // get its own frame — the TLB tags (PCID or flush policy) must prevent B
  // from riding on A's cached translation.
  Harness h(GetParam());
  GuestKernel& kernel = h.container->kernel();
  Vcpu& vcpu = h.container->vcpu(0);
  GuestProcess& a = *h.container->init_process();

  GuestProcess* b = nullptr;
  h.run([](GuestKernel& k, Vcpu& v, GuestProcess& pa, GuestProcess** out) -> Task<void> {
    const std::uint64_t va = co_await k.sys_mmap(v, pa, kPageSize);
    (void)va;
    *out = co_await k.sys_fork(v, pa);
  }(kernel, vcpu, a, &b));
  ASSERT_NE(b, nullptr);

  // A touches a page in its private region.
  std::uint64_t shared_va = 0;
  h.run([](GuestKernel& k, Vcpu& v, GuestProcess& pa, std::uint64_t* out) -> Task<void> {
    *out = co_await k.sys_mmap(v, pa, kPageSize);
    co_await k.touch(v, pa, *out, true);
  }(kernel, vcpu, a, &shared_va));

  // Give B a VMA at the identical virtual address and touch from B.
  b->vmas()[shared_va] = Vma{shared_va, kPageSize, true};
  h.run([](GuestKernel& k, Vcpu& v, GuestProcess& pb) -> Task<void> {
    co_await k.mem().activate_process(v, pb, false);
  }(kernel, vcpu, *b));
  const CounterSet before = h.platform->counters();
  h.run([](GuestKernel& k, Vcpu& v, GuestProcess& pb, std::uint64_t gva) -> Task<void> {
    co_await k.touch(v, pb, gva, true);
  }(kernel, vcpu, *b, shared_va));
  const CounterSet d = h.platform->counters().delta_since(before);
  EXPECT_GE(d.get(Counter::kGuestPageFault), 1u)
      << "process B reused process A's translation under "
      << deploy_mode_name(GetParam());
  // And they ended up on different frames.
  EXPECT_NE(a.gpt().find_pte(shared_va)->frame_number(),
            b->gpt().find_pte(shared_va)->frame_number());
}

INSTANTIATE_TEST_SUITE_P(Modes, IsolationAllModes, ::testing::ValuesIn(kAllModes),
                         [](const ::testing::TestParamInfo<DeployMode>& param_info) {
                           std::string name(deploy_mode_name(param_info.param));
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(PvmIsolationTest, UserSptNeverMapsKernelAddresses) {
  // The dual-SPT design (§3.3.2): the guest user's shadow table must never
  // contain kernel-half translations, KPTI-style.
  Harness h(DeployMode::kPvmNst);
  GuestKernel& kernel = h.container->kernel();
  GuestProcess& proc = *h.container->init_process();
  Vcpu& vcpu = h.container->vcpu(0);

  h.run([](GuestKernel& k, Vcpu& v, GuestProcess& p) -> Task<void> {
    // Kernel-mode accesses (kernel half) + user-mode accesses (user half).
    for (int i = 0; i < 8; ++i) {
      co_await k.touch_kernel(v, p, static_cast<std::uint64_t>(i) * kPageSize);
    }
    const std::uint64_t base = co_await k.sys_mmap(v, p, 8 * kPageSize);
    for (int i = 0; i < 8; ++i) {
      co_await k.touch(v, p, base + static_cast<std::uint64_t>(i) * kPageSize, true);
    }
  }(kernel, vcpu, proc));

  auto* backend = dynamic_cast<PvmMemoryBackend*>(&h.container->mem());
  ASSERT_NE(backend, nullptr);
  const PageTable& user_spt = backend->engine().spt(proc.pid(), /*kernel_ring=*/false);
  user_spt.for_each_leaf([&](std::uint64_t gva, const Pte&) {
    EXPECT_LT(gva, GuestProcess::kKernelBase)
        << "kernel address leaked into the user shadow table";
  });
  // And the kernel SPT did receive the kernel-half fills.
  const PageTable& kernel_spt = backend->engine().spt(proc.pid(), /*kernel_ring=*/true);
  EXPECT_GE(kernel_spt.present_leaf_count(), 8u);
}

TEST(PvmIsolationTest, ContainersHaveDistinctVpidTags) {
  // Two containers' translations never alias: their TLB tags differ by VPID.
  PlatformConfig config;
  config.mode = DeployMode::kPvmNst;
  VirtualPlatform platform(config);
  SecureContainer& a = platform.create_container("a");
  SecureContainer& b = platform.create_container("b");
  platform.sim().spawn(a.boot(8));
  platform.sim().spawn(b.boot(8));
  platform.sim().run();

  // Same virtual address, same (mapped) PCID range — but different vCPUs and
  // VPIDs, so the TLB state cannot cross.
  auto* backend_a = dynamic_cast<PvmMemoryBackend*>(&a.mem());
  auto* backend_b = dynamic_cast<PvmMemoryBackend*>(&b.mem());
  ASSERT_NE(backend_a, nullptr);
  ASSERT_NE(backend_b, nullptr);
  EXPECT_NE(&backend_a->engine(), &backend_b->engine());
  // Independent shadow state entirely.
  EXPECT_NE(&backend_a->engine().gpa_map(), &backend_b->engine().gpa_map());
}

}  // namespace
}  // namespace pvm
