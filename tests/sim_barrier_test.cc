// Tests for the cyclic simulation barrier.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/barrier.h"

namespace pvm {
namespace {

TEST(SimBarrierTest, ReleasesWhenAllArrive) {
  Simulation sim;
  SimBarrier barrier(sim, 3);
  std::vector<SimTime> released;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulation& s, SimBarrier& b, std::vector<SimTime>& out,
                 SimTime delay) -> Task<void> {
      co_await s.delay(delay);
      co_await b.arrive_and_wait();
      out.push_back(s.now());
    }(sim, barrier, released, static_cast<SimTime>(100 * (i + 1))));
  }
  sim.run();
  // Everyone is released at the last arriver's time.
  ASSERT_EQ(released.size(), 3u);
  for (const SimTime t : released) {
    EXPECT_EQ(t, 300u);
  }
  EXPECT_EQ(barrier.generation(), 1u);
}

TEST(SimBarrierTest, CyclicReuseAcrossGenerations) {
  Simulation sim;
  SimBarrier barrier(sim, 2);
  std::vector<int> log;
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Simulation& s, SimBarrier& b, std::vector<int>& out, int id) -> Task<void> {
      for (int round = 0; round < 5; ++round) {
        co_await s.delay(static_cast<SimTime>(10 * (id + 1)));
        co_await b.arrive_and_wait();
        if (id == 0) {
          out.push_back(round);
        }
      }
    }(sim, barrier, log, i));
  }
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(barrier.generation(), 5u);
  EXPECT_EQ(barrier.waiting(), 0);
  EXPECT_TRUE(sim.all_tasks_done());
}

TEST(SimBarrierTest, SinglePartyPassesThrough) {
  Simulation sim;
  SimBarrier barrier(sim, 1);
  bool done = false;
  sim.spawn([](Simulation& s, SimBarrier& b, bool& flag) -> Task<void> {
    co_await b.arrive_and_wait();
    co_await b.arrive_and_wait();
    flag = true;
    co_await s.delay(0);
  }(sim, barrier, done));
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(barrier.generation(), 2u);
}

TEST(SimBarrierTest, SlowestPartyDeterminesPhaseLength) {
  Simulation sim;
  SimBarrier barrier(sim, 4);
  SimTime end = 0;
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](Simulation& s, SimBarrier& b, int id, SimTime* out) -> Task<void> {
      co_await s.delay(id == 2 ? 1000u : 10u);  // one straggler
      co_await b.arrive_and_wait();
      *out = s.now();
    }(sim, barrier, i, &end));
  }
  sim.run();
  EXPECT_EQ(end, 1000u);
}

}  // namespace
}  // namespace pvm
