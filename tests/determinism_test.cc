// Whole-stack determinism: identical configurations must produce bit-equal
// virtual times and counters across runs — the property that makes the
// benchmark harness trustworthy and every regression bisectable.

#include <gtest/gtest.h>

#include "src/workloads/lmbench.h"
#include "src/workloads/memstress.h"
#include "src/workloads/runner.h"

namespace pvm {
namespace {

struct RunSignature {
  SimTime final_time;
  std::uint64_t events;
  std::uint64_t world_switches;
  std::uint64_t l0_exits;
  std::uint64_t faults;
  std::vector<SimTime> task_times;

  bool operator==(const RunSignature&) const = default;
};

RunSignature run_memstress(DeployMode mode, int processes) {
  PlatformConfig config;
  config.mode = mode;
  VirtualPlatform platform(config);
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot(16));
  platform.sim().run();

  MemStressParams params;
  params.total_bytes = 4ull << 20;
  const ConcurrentResult result = run_processes_in_container(
      platform, container, processes,
      [&](int, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        return memstress_process(container, vcpu, proc, params);
      });

  return RunSignature{platform.sim().now(),
                      platform.sim().events_processed(),
                      platform.counters().get(Counter::kWorldSwitch),
                      platform.counters().get(Counter::kL0Exit),
                      platform.counters().get(Counter::kGuestPageFault),
                      result.task_times};
}

class DeterminismAllModes : public ::testing::TestWithParam<DeployMode> {};

TEST_P(DeterminismAllModes, MemstressIsBitIdenticalAcrossRuns) {
  const RunSignature first = run_memstress(GetParam(), 4);
  const RunSignature second = run_memstress(GetParam(), 4);
  EXPECT_EQ(first, second);
  EXPECT_GT(first.faults, 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, DeterminismAllModes,
                         ::testing::Values(DeployMode::kKvmEptBm, DeployMode::kKvmSptBm,
                                           DeployMode::kKvmEptNst, DeployMode::kPvmNst,
                                           DeployMode::kSptOnEptNst),
                         [](const ::testing::TestParamInfo<DeployMode>& param_info) {
                           std::string name(deploy_mode_name(param_info.param));
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(DeterminismTest, LmbenchLatencyIsStable) {
  auto measure = [] {
    PlatformConfig config;
    config.mode = DeployMode::kPvmNst;
    VirtualPlatform platform(config);
    SecureContainer& c = platform.create_container("c0");
    platform.sim().spawn(c.boot(32));
    platform.sim().run();
    std::uint64_t latency = 0;
    platform.sim().spawn([](SecureContainer& cc, std::uint64_t* out) -> Task<void> {
      *out = co_await lmbench_run(cc, cc.vcpu(0), *cc.init_process(), LmbenchOp::kForkProc, 6,
                                  LmbenchParams{});
    }(c, &latency));
    platform.sim().run();
    return latency;
  };
  EXPECT_EQ(measure(), measure());
}

TEST(DeterminismTest, ContainerCountDoesNotPerturbSingleContainerWork) {
  // A second, idle container must not change the first one's virtual timing
  // (no hidden global state).
  auto measure = [](bool extra_container) {
    PlatformConfig config;
    config.mode = DeployMode::kPvmNst;
    VirtualPlatform platform(config);
    SecureContainer& c = platform.create_container("c0");
    if (extra_container) {
      platform.create_container("idle");
    }
    platform.sim().spawn(c.boot(16));
    platform.sim().run();
    const SimTime start = platform.sim().now();
    platform.sim().spawn([](SecureContainer& cc) -> Task<void> {
      for (int i = 0; i < 50; ++i) {
        co_await cc.kernel().sys_getpid(cc.vcpu(0), *cc.init_process());
      }
    }(c));
    platform.sim().run();
    return platform.sim().now() - start;
  };
  EXPECT_EQ(measure(false), measure(true));
}

}  // namespace
}  // namespace pvm
