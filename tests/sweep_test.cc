// pvm::sweep determinism: a parallel run of the scenario matrix must be
// byte-identical to the serial run — same simcheck report, same matrix JSON,
// same exit code, same minimal failing seed — because results merge by job
// index, never by completion order. Also covers the engine's primitives
// (run_indexed ordering, lowest-index exception selection) and the
// Simulation thread-confinement guard the engine relies on.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "src/check/simcheck.h"
#include "src/sim/simulation.h"
#include "src/sweep/matrix.h"
#include "src/sweep/sweep.h"

namespace pvm {
namespace {

TEST(SweepEngine, EffectiveJobsClampsToAtLeastOne) {
  EXPECT_EQ(sweep::effective_jobs(0), 1);
  EXPECT_EQ(sweep::effective_jobs(-3), 1);
  EXPECT_EQ(sweep::effective_jobs(1), 1);
  EXPECT_EQ(sweep::effective_jobs(8), 8);
  EXPECT_GE(sweep::default_jobs(), 1);
}

TEST(SweepEngine, RunIndexedReturnsResultsInIndexOrder) {
  // Results land in index order for every worker count, including counts
  // far above the job count (workers claim from a shared cursor).
  for (const int jobs : {1, 2, 8}) {
    const std::vector<std::size_t> results = sweep::run_indexed<std::size_t>(
        100, jobs, [](std::size_t i) { return i * i; });
    ASSERT_EQ(results.size(), 100u);
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], i * i);
    }
  }
}

TEST(SweepEngine, ParallelForRunsEveryJobExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  sweep::parallel_for(hits.size(), 8,
                      [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "job " << i;
  }
}

TEST(SweepEngine, LowestIndexedFailureWins) {
  // Multiple jobs throw; the rethrown exception must be the lowest-indexed
  // one no matter which worker hit its failure first.
  for (int attempt = 0; attempt < 4; ++attempt) {
    try {
      sweep::parallel_for(32, 8, [](std::size_t i) {
        if (i == 7 || i == 23) {
          throw std::runtime_error("job " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "job 7");
    }
  }
}

TEST(SimulationGuard, CrossThreadUseThrows) {
  Simulation sim;
  sim.spawn([]() -> Task<void> { co_return; }(), "bind");  // binds this thread
  std::atomic<bool> threw{false};
  std::thread other([&] {
    try {
      sim.run();
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  other.join();
  EXPECT_TRUE(threw.load());
  sim.run();  // owner thread still fine
  EXPECT_TRUE(sim.all_tasks_done());
}

// ---- Matrix engine with a stub runner ----

sweep::MatrixSpec small_spec() {
  sweep::MatrixSpec spec;
  spec.modes = {DeployMode::kPvmNst, DeployMode::kKvmSptBm};
  spec.workloads = {"wl-a", "wl-b"};
  spec.fault_plans = {"none"};
  spec.policies = {SchedulePolicy::kFifo, SchedulePolicy::kRandom};
  spec.seeds = 2;
  return spec;
}

TEST(Matrix, EnumerationIsRowMajorAndDense) {
  const sweep::MatrixSpec spec = small_spec();
  const std::vector<sweep::MatrixCell> cells = sweep::enumerate_matrix(spec);
  ASSERT_EQ(cells.size(), spec.cell_count());
  ASSERT_EQ(cells.size(), 16u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
  }
  // Modes outermost, seeds innermost.
  EXPECT_EQ(cells[0].mode, DeployMode::kPvmNst);
  EXPECT_EQ(cells[0].seed, 1u);
  EXPECT_EQ(cells[1].seed, 2u);
  EXPECT_EQ(cells[1].workload, "wl-a");
  EXPECT_EQ(cells[2].workload, "wl-a");
  EXPECT_EQ(cells[2].policy, SchedulePolicy::kRandom);
  EXPECT_EQ(cells[4].workload, "wl-b");
  EXPECT_EQ(cells[8].mode, DeployMode::kKvmSptBm);
}

TEST(Matrix, ParallelDocumentIsByteIdenticalToSerial) {
  const sweep::MatrixSpec spec = small_spec();
  const auto runner = [](const sweep::MatrixCell& cell) {
    sweep::CellResult result;
    if (cell.workload == "wl-b" && cell.seed == 2) {
      result.ok = false;
      result.error = "stub failure";
      return result;
    }
    // Deterministic per-cell payload standing in for a pvm.bench.v1 export.
    result.bench_json = "{\"schema\":\"pvm.bench.v1\",\"cell\":" +
                        std::to_string(cell.index) + "}";
    return result;
  };
  const std::vector<sweep::CellResult> serial = sweep::run_matrix(spec, 1, runner);
  const std::string golden = sweep::render_matrix_json(spec, serial);
  for (const int jobs : {2, 8}) {
    const std::vector<sweep::CellResult> parallel = sweep::run_matrix(spec, jobs, runner);
    EXPECT_EQ(sweep::render_matrix_json(spec, parallel), golden) << "jobs=" << jobs;
  }
  // Failed cells keep their slots (ok=false + error), they don't shift
  // later cells' indices.
  EXPECT_NE(golden.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(golden.find("stub failure"), std::string::npos);
}

TEST(Matrix, TimingSectionIsOptIn) {
  sweep::MatrixSpec spec = small_spec();
  spec.seeds = 1;
  const auto runner = [](const sweep::MatrixCell&) { return sweep::CellResult{}; };
  sweep::SweepTiming timing;
  const std::vector<sweep::CellResult> cells = sweep::run_matrix(spec, 2, runner, &timing);
  EXPECT_EQ(timing.cells, spec.cell_count());
  EXPECT_EQ(sweep::render_matrix_json(spec, cells).find("\"timing\""), std::string::npos);
  EXPECT_NE(sweep::render_matrix_json(spec, cells, &timing).find("\"timing\""),
            std::string::npos);
}

// ---- simcheck sweeps through the engine ----

SweepOptions quick_options() {
  SweepOptions options;
  options.modes = {DeployMode::kPvmNst, DeployMode::kKvmSptBm};
  options.policies = {SchedulePolicy::kFifo, SchedulePolicy::kRandom,
                      SchedulePolicy::kLifo};
  options.seeds = 4;
  options.processes = 2;
  options.memstress_bytes = 256u << 10;
  return options;
}

TEST(SimcheckSweep, ParallelReportMatchesSerialWhenPassing) {
  SweepOptions options = quick_options();
  options.jobs = 1;
  std::ostringstream serial;
  const int serial_failures = run_simcheck_sweep(options, serial);
  EXPECT_EQ(serial_failures, 0);
  for (const int jobs : {2, 8}) {
    options.jobs = jobs;
    std::ostringstream parallel;
    const int parallel_failures = run_simcheck_sweep(options, parallel);
    EXPECT_EQ(parallel_failures, serial_failures) << "jobs=" << jobs;
    EXPECT_EQ(parallel.str(), serial.str()) << "jobs=" << jobs;
  }
}

TEST(SimcheckSweep, InjectedViolationYieldsSameMinimalSeedAtAnyJobCount) {
  SweepOptions options = quick_options();
  // Seeds 1..4 per combination; every seed >= 3 plants a deterministic
  // oracle violation, so the minimal failing seed must be exactly 3 — a
  // worker that raced ahead to seed 4 first must not win the triage.
  options.debug_corrupt_from_seed = 3;
  options.jobs = 1;
  std::ostringstream serial;
  const int serial_failures = run_simcheck_sweep(options, serial);
  EXPECT_EQ(serial_failures,
            static_cast<int>(options.modes.size() * options.policies.size()));
  EXPECT_NE(serial.str().find("minimal failing seed: 3"), std::string::npos);
  for (const int jobs : {2, 8}) {
    options.jobs = jobs;
    std::ostringstream parallel;
    const int parallel_failures = run_simcheck_sweep(options, parallel);
    EXPECT_EQ(parallel_failures, serial_failures) << "jobs=" << jobs;
    EXPECT_EQ(parallel.str(), serial.str()) << "jobs=" << jobs;
  }
}

TEST(SimcheckSweep, VerboseReportAlsoMatches) {
  SweepOptions options = quick_options();
  options.seeds = 2;
  options.verbose = true;
  options.jobs = 1;
  std::ostringstream serial;
  run_simcheck_sweep(options, serial);
  options.jobs = 8;
  std::ostringstream parallel;
  run_simcheck_sweep(options, parallel);
  EXPECT_EQ(parallel.str(), serial.str());
}

}  // namespace
}  // namespace pvm
