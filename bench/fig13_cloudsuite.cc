// Figure 13: CloudSuite workloads (data / graph / in-memory analytics),
// normalized performance (kvm-ept (BM) = 1.0, higher is better).
//
// Paper shape: pvm within a few percent of bare metal on all three;
// kvm-ept (NST) visibly below 1.0, worst for the memory-heavy workloads.

#include "bench/bench_common.h"
#include "src/workloads/apps.h"

namespace pvm {
namespace {

double run_seconds(const std::string& label, const PlatformConfig& config,
                   CloudSuiteKind kind, int containers) {
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  AppParams params;
  params.size = 0.5 * bench_scale();
  const ContainersResult result = run_containers(
      platform, containers,
      [&](int, SecureContainer& c, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        return app_cloudsuite(c, vcpu, proc, kind, params);
      },
      /*init_pages=*/64);
  bench_io().record_run(label, platform, {{"mean_seconds", result.mean_seconds()}});
  return result.mean_seconds();
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "fig13_cloudsuite");
  print_header("Figure 13: CloudSuite workloads, normalized performance",
               "PVM paper, Fig. 13",
               "kvm-ept (BM) = 1.0; higher is better (time ratio inverted)");

  const struct {
    const char* name;
    CloudSuiteKind kind;
  } kKinds[] = {
      {"data analytics", CloudSuiteKind::kDataAnalytics},
      {"graph analytics", CloudSuiteKind::kGraphAnalytics},
      {"in-memory analytics", CloudSuiteKind::kInMemoryAnalytics},
  };
  constexpr int kContainers = 4;  // "relatively low concurrency level"

  TextTable table(
      {"config", "data analytics", "graph analytics", "in-memory analytics"});
  std::vector<double> baseline;
  for (const auto& kind : kKinds) {
    PlatformConfig config;
    config.mode = DeployMode::kKvmEptBm;
    baseline.push_back(
        run_seconds(std::string("baseline/") + kind.name, config, kind.kind, kContainers));
  }
  for (const Scenario& scenario : five_scenarios()) {
    std::vector<std::string> row{scenario.label};
    for (std::size_t i = 0; i < std::size(kKinds); ++i) {
      const double seconds = run_seconds(scenario.label + "/" + kKinds[i].name,
                                         scenario.config, kKinds[i].kind, kContainers);
      row.push_back(TextTable::cell(baseline[i] / seconds, 3));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper shape: pvm close to bare metal; kvm-ept (NST) clearly below.\n");
  return 0;
}
