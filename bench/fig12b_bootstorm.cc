// Boot-storm analysis (ours; the mechanism behind the paper's Fig. 12 crash
// and the RunD deployment story in §4.4): P50/P99 sandbox startup latency
// when N containers cold-start simultaneously on one host.

#include <algorithm>

#include "bench/bench_common.h"

namespace pvm {
namespace {

struct BootStats {
  double p50_ms;
  double p99_ms;
  double worst_ms;
};

BootStats boot_storm(const std::string& label, const PlatformConfig& config,
                     int containers) {
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  std::vector<SecureContainer*> all;
  for (int i = 0; i < containers; ++i) {
    all.push_back(&platform.create_container("c" + std::to_string(i)));
  }
  for (SecureContainer* container : all) {
    platform.sim().spawn(container->boot(96));
  }
  platform.sim().run();

  std::vector<SimTime> latencies;
  for (SecureContainer* container : all) {
    latencies.push_back(container->boot_latency());
  }
  std::sort(latencies.begin(), latencies.end());
  const auto at = [&](double q) {
    return static_cast<double>(latencies[static_cast<std::size_t>(
               q * static_cast<double>(latencies.size() - 1))]) /
           1e6;
  };
  const BootStats stats{at(0.50), at(0.99), at(1.0)};
  bench_io().record_run(label, platform,
                        {{"p50_ms", stats.p50_ms},
                         {"p99_ms", stats.p99_ms},
                         {"worst_ms", stats.worst_ms}});
  return stats;
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "fig12b_bootstorm");
  print_header("Fig. 12b (ours): cold-start boot storm, startup latency (ms)",
               "mechanism behind Fig. 12's crash + §4.4 serverless adoption",
               "N containers created and booted at t=0 on one host");

  TextTable table({"config", "N=16 p50/p99", "N=64 p50/p99", "N=150 p50/p99 (worst)"});
  for (const Scenario& scenario : five_scenarios()) {
    std::vector<std::string> row{scenario.label};
    for (int n : {16, 64, 150}) {
      const BootStats stats =
          boot_storm(scenario.label + "/N" + std::to_string(n), scenario.config, n);
      std::string cell = TextTable::cell(stats.p50_ms) + "/" + TextTable::cell(stats.p99_ms);
      if (n == 150) {
        cell += " (" + TextTable::cell(stats.worst_ms) + ")";
      }
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape: pvm startup stays flat with density; kvm-ept (NST)\n");
  std::printf("tail latency explodes (every cold page serializes at L0), which is\n");
  std::printf("what kills the RunD runtime in Fig. 12.\n");
  return 0;
}
