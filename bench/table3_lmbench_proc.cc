// Table 3: LMbench process-management latencies (us), 1 and 32 concurrent
// processes, across the five deployment scenarios.
//
// Paper shape: pvm tracks kvm-ept closely except fork/exec/sh (shadow
// teardown); kvm-spt collapses at 32 processes on fork-family ops; pvm (NST)
// beats kvm-ept (NST) everywhere except the fork family.

#include "bench/bench_common.h"
#include "src/workloads/lmbench.h"
#include "src/workloads/runner.h"

namespace pvm {
namespace {

// Mean per-op latency with `processes` concurrent benchmark processes.
double latency_us(const std::string& label, const PlatformConfig& config, LmbenchOp op,
                  int processes, int iterations) {
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot(16));
  platform.sim().run();

  std::vector<std::uint64_t> latencies(processes, 0);
  const ConcurrentResult result = run_processes_in_container(
      platform, container, processes,
      [&](int index, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        return [](SecureContainer& c, Vcpu& v, GuestProcess& p, LmbenchOp o, int iters,
                  std::uint64_t* out) -> Task<void> {
          LmbenchParams params;
          *out = co_await lmbench_run(c, v, p, o, iters, params);
        }(container, vcpu, proc, op, iterations, &latencies[index]);
      },
      /*resident_pages=*/256);
  (void)result;
  double sum = 0;
  for (const std::uint64_t latency : latencies) {
    sum += static_cast<double>(latency);
  }
  const double us = sum / static_cast<double>(processes) / 1e3;
  bench_io().record_run(label, platform, {{"latency_us", us}});
  return us;
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "table3_lmbench_proc");
  print_header("Table 3: LMbench process latencies (us; smaller is better)",
               "PVM paper, Table 3", "#C = concurrent benchmark processes");

  const struct {
    const char* name;
    LmbenchOp op;
    int iters1;   // iterations at 1 process
    int iters32;  // iterations at 32 processes
  } kOps[] = {
      {"null I/O", LmbenchOp::kNullIo, 400, 50},
      {"stat", LmbenchOp::kStat, 400, 50},
      {"open/close", LmbenchOp::kOpenClose, 200, 30},
      {"slct TCP", LmbenchOp::kSelectTcp, 200, 30},
      {"sig inst", LmbenchOp::kSigInstall, 400, 50},
      {"sig hndl", LmbenchOp::kSigHandle, 200, 30},
      {"fork proc", LmbenchOp::kForkProc, 16, 6},
      {"exec proc", LmbenchOp::kExecProc, 12, 4},
      {"sh proc", LmbenchOp::kShProc, 8, 3},
      {"ctx switch", LmbenchOp::kCtxSwitch, 200, 30},
  };

  for (int processes : {1, 32}) {
    std::printf("--- #C = %d ---\n", processes);
    std::vector<std::string> header{"config"};
    for (const auto& op : kOps) {
      header.push_back(op.name);
    }
    TextTable table(std::move(header));
    for (const Scenario& scenario : five_scenarios()) {
      std::vector<std::string> row{scenario.label};
      for (const auto& op : kOps) {
        const int iters = processes == 1 ? op.iters1 : op.iters32;
        const std::string label = scenario.label + "/" + op.name + "/" +
                                  std::to_string(processes) + "p";
        row.push_back(
            TextTable::cell(latency_us(label, scenario.config, op.op, processes, iters)));
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("Paper shape: pvm ~ kvm-ept except fork/exec/sh; kvm-spt worst on the\n");
  std::printf("fork family at 32 processes; pvm (NST) < kvm-ept (NST) elsewhere.\n");
  return 0;
}
