// Protocol audit: measured world switches and L0 exits *per guest page
// fault* across schemes, on the Fig. 10 workload at scale — the §2.2/§3.3.2
// formulas (4n+8 / 2n+6 / 2n+4, n+3 / 2n+4 / 0 exits) verified in bulk
// rather than on a single controlled fault.

#include "bench/bench_common.h"
#include "src/metrics/report.h"
#include "src/workloads/memstress.h"

namespace pvm {
namespace {

DerivedStats run_config(const char* name, const PlatformConfig& config) {
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot(16));
  platform.sim().run();
  const CounterSet before = platform.counters();

  MemStressParams params;
  params.total_bytes = static_cast<std::uint64_t>(bench_scale() * (16.0 * 1024 * 1024));
  run_processes_in_container(platform, container, 4,
                             [&](int, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
                               return memstress_process(container, vcpu, proc, params);
                             });
  const DerivedStats stats = derive_stats(platform.counters().delta_since(before));
  bench_io().record_run(name, platform,
                        {{"switches_per_fault", stats.switches_per_fault},
                         {"l0_exits_per_fault", stats.l0_exits_per_fault},
                         {"tlb_hit_rate", stats.tlb_hit_rate}});
  return stats;
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "table0b_protocol_counts");
  print_header("Table 0b (ours): protocol costs per fault, measured in bulk",
               "PVM paper §2.2/§3.3.2 switch/exit formulas",
               "Fig. 10 workload, 4 processes; n ~ 1 GPT store per fresh page");

  struct Row {
    const char* name;
    PlatformConfig config;
    const char* formula;
  };
  std::vector<Row> rows;
  {
    PlatformConfig c;
    c.mode = DeployMode::kKvmEptBm;
    rows.push_back({"kvm-ept (BM)", c, "guest-local + 1 EPT fill"});
    c.mode = DeployMode::kKvmSptBm;
    rows.push_back({"kvm-spt (BM)", c, "~6 switches, 3 L0 exits"});
    c.mode = DeployMode::kKvmEptNst;
    rows.push_back({"kvm-ept (NST)", c, "2n+6 switches, n+3 L0 exits"});
    c.mode = DeployMode::kSptOnEptNst;
    rows.push_back({"spt-on-ept (NST)", c, "4n+8 switches, 2n+4 L0 exits"});
    c.mode = DeployMode::kPvmNst;
    rows.push_back({"pvm (NST)", c, "2n+4 switches, 0 L0 exits"});
    c.mode = DeployMode::kPvmDirectNst;
    rows.push_back({"pvm-direct (NST)", c, "2n+4 switches, 0 L0 exits, no SPT"});
  }

  TextTable table({"config", "switches/fault", "L0 exits/fault", "TLB hit rate",
                   "prefault coverage", "paper formula (n=1)"});
  for (const Row& row : rows) {
    const DerivedStats stats = run_config(row.name, row.config);
    table.add_row({row.name, TextTable::cell(stats.switches_per_fault),
                   TextTable::cell(stats.l0_exits_per_fault, 3),
                   TextTable::cell(stats.tlb_hit_rate, 3),
                   TextTable::cell(stats.prefault_coverage, 3), row.formula});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Reading notes: the denominator counts guest+shadow faults, the\n");
  std::printf("numerator includes the munmap write-protect traps (2 switches per\n");
  std::printf("released page), so schemes without prefault divide by 2 faults per\n");
  std::printf("page. kvm-ept (NST) reads off the Fig. 3(b) formula exactly:\n");
  std::printf("8 switches and 4.0 L0 exits per fault (n=1). pvm rows: zero L0.\n");
  return 0;
}
