// Figure 12: fluidanimate at maximum container density (concurrency
// 50/100/150).
//
// Paper shape: under extreme oversubscription every deployment converges to
// similar times — except kvm-ept (NST), which *crashes*: container startup
// through the L0-serialized path exceeds the RunD runtime's timeout. We
// reproduce the crash as a boot-latency timeout.

#include "bench/bench_common.h"
#include "src/workloads/apps.h"

namespace pvm {
namespace {

// RunD-style sandbox startup deadline, scaled to this harness's boot times
// (uncontended boots take ~0.5 ms of virtual time; the real RunD budget is
// sub-second against ~100 ms real startups — the same ~20x headroom).
constexpr SimTime kBootTimeout = 10 * kNsPerMs;

struct HighLoadResult {
  double mean_seconds = 0;
  bool crashed = false;
  double worst_boot_seconds = 0;
};

HighLoadResult run_config(const std::string& label, const PlatformConfig& config,
                          int containers) {
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  AppParams params;
  params.size = 0.25 * bench_scale();

  HighLoadResult out;
  const ContainersResult result = run_containers(
      platform, containers,
      [&](int, SecureContainer& c, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        (void)vcpu;
        (void)proc;
        return app_fluidanimate(c, params, /*threads=*/2, /*frames=*/8);
      },
      /*init_pages=*/48);

  out.mean_seconds = result.mean_seconds();
  for (const SimTime boot : result.boot_latencies) {
    out.worst_boot_seconds = std::max(out.worst_boot_seconds, to_seconds(boot));
    if (boot > kBootTimeout) {
      out.crashed = true;  // the runtime would have given up on the sandbox
    }
  }
  bench_io().record_run(label, platform,
                        {{"mean_seconds", out.mean_seconds},
                         {"worst_boot_seconds", out.worst_boot_seconds},
                         {"crashed", out.crashed ? 1.0 : 0.0}});
  return out;
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "fig12_highload");
  print_header("Figure 12: fluidanimate under high container density",
               "PVM paper, Fig. 12",
               "kvm-ept (NST) crashed in the paper (RunD startup timeout)");

  TextTable table({"config", "50", "100", "150", "worst boot (s) @150"});
  for (const Scenario& scenario : five_scenarios()) {
    std::vector<std::string> row{scenario.label};
    double worst_boot = 0;
    for (int containers : {50, 100, 150}) {
      const HighLoadResult result = run_config(
          scenario.label + "/" + std::to_string(containers) + "c", scenario.config,
          containers);
      row.push_back(result.crashed ? "CRASH" : TextTable::cell(result.mean_seconds, 3));
      worst_boot = std::max(worst_boot, result.worst_boot_seconds);
    }
    row.push_back(TextTable::cell(worst_boot, 3));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper shape: all configs converge under oversubscription except\n");
  std::printf("kvm-ept (NST), whose sandbox startup times out (reported 'CRASH').\n");
  return 0;
}
