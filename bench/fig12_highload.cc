// Figure 12: fluidanimate at maximum container density (concurrency
// 50/100/150).
//
// Paper shape: under extreme oversubscription every deployment converges to
// similar times — except kvm-ept (NST), which *crashes*. Here the crash is
// *emergent*: the default "bootstorm" fault plan caps the L1 instances' GPA
// pools and jitters the L0 paths, and under that identical plan kvm-ept
// (NST) — whose L1 KVM cannot reclaim EPT12 backing it hands out — OOM-kills
// init processes during the boot storm, while pvm (NST) reclaims cold shadow
// pages and degrades gracefully (slower, but every container boots). A boot
// exceeding the RunD-style deadline still counts as a crash too. Run with
// `--faults none` for the fault-free baseline or `--faults <plan>` to swap
// plans.

#include <algorithm>

#include "bench/bench_common.h"
#include "src/workloads/apps.h"

namespace pvm {
namespace {

// RunD-style sandbox startup deadline, scaled to this harness's boot times
// (uncontended boots take ~0.5 ms of virtual time; the real RunD budget is
// sub-second against ~100 ms real startups — the same ~20x headroom).
constexpr SimTime kBootTimeout = 10 * kNsPerMs;

struct HighLoadResult {
  double mean_seconds = 0;
  double p99_seconds = 0;
  bool crashed = false;
  int failed_boots = 0;
  double worst_boot_seconds = 0;
};

HighLoadResult run_config(const std::string& label, const PlatformConfig& config,
                          int containers) {
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  bench_io().arm_faults(platform);
  AppParams params;
  params.size = 0.25 * bench_scale();

  HighLoadResult out;
  const ContainersResult result = run_containers(
      platform, containers,
      [&](int, SecureContainer& c, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        (void)vcpu;
        (void)proc;
        return app_fluidanimate(c, params, /*threads=*/2, /*frames=*/8);
      },
      /*init_pages=*/48);

  out.mean_seconds = result.mean_seconds();
  out.failed_boots = result.boots_failed;
  if (result.boots_failed > 0) {
    out.crashed = true;  // init never came up: the sandbox is dead
  }
  for (const SimTime boot : result.boot_latencies) {
    out.worst_boot_seconds = std::max(out.worst_boot_seconds, to_seconds(boot));
    if (boot > kBootTimeout) {
      out.crashed = true;  // the runtime would have given up on the sandbox
    }
  }
  std::vector<SimTime> times = result.task_times;
  std::sort(times.begin(), times.end());
  if (!times.empty()) {
    const std::size_t idx = (times.size() * 99) / 100;
    out.p99_seconds = to_seconds(times[std::min(idx, times.size() - 1)]);
  }
  bench_io().record_run(label, platform,
                        {{"mean_seconds", out.mean_seconds},
                         {"p99_seconds", out.p99_seconds},
                         {"worst_boot_seconds", out.worst_boot_seconds},
                         {"failed_boots", static_cast<double>(out.failed_boots)},
                         {"crashed", out.crashed ? 1.0 : 0.0}});
  return out;
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "fig12_highload");
  io.set_default_fault_plan("bootstorm");
  print_header("Figure 12: fluidanimate under high container density",
               "PVM paper, Fig. 12",
               ("kvm-ept (NST) crashed in the paper (RunD startup timeout);\n"
                "fault plan '" +
                io.fault_plan() +
                "' models the exhausted host (--faults none to disable)")
                   .c_str());

  TextTable table({"config", "50", "100", "150", "worst boot (s) @150"});
  for (const Scenario& scenario : five_scenarios()) {
    std::vector<std::string> row{scenario.label};
    double worst_boot = 0;
    for (int containers : {50, 100, 150}) {
      const HighLoadResult result = run_config(
          scenario.label + "/" + std::to_string(containers) + "c", scenario.config,
          containers);
      row.push_back(result.crashed
                        ? (result.failed_boots > 0
                               ? "CRASH(" + std::to_string(result.failed_boots) + " oom)"
                               : "CRASH")
                        : TextTable::cell(result.mean_seconds, 3));
      worst_boot = std::max(worst_boot, result.worst_boot_seconds);
    }
    row.push_back(TextTable::cell(worst_boot, 3));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper shape: all configs converge under oversubscription except\n");
  std::printf("kvm-ept (NST), whose sandbox startup times out (reported 'CRASH').\n");
  return 0;
}
