// Table 1: average round-trip latency (us) of VM exits/entries, with KPTI
// enabled/disabled.
//
// Paper values (KPTI on / off):
//              kvm (BM)     pvm (BM)     kvm (NST)    pvm (NST)
//   Hypercall  0.46/0.46    0.54/0.54    7.43/7.87    0.48/0.48
//   Exception  1.66/1.65    1.67/1.65    9.20/9.01    2.21/2.2
//   MSR        0.87/0.87    2.53/2.51    8.18/8.47    2.88/2.86
//   CPUID      0.54/0.54    0.60/0.59    7.10/7.16    0.51/0.51
//   PIO        3.79/3.39    4.91/4.54    29.34/28.27  12.94/12.03

#include "bench/bench_common.h"

namespace pvm {
namespace {

constexpr int kIterations = 2000;

double measure_op_us(const std::string& label, DeployMode mode, bool kpti, PrivOp op) {
  PlatformConfig config;
  config.mode = mode;
  config.kpti = kpti;
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(8));
  platform.sim().run();

  const SimTime start = platform.sim().now();
  platform.sim().spawn([](SecureContainer& cc, PrivOp o) -> Task<void> {
    for (int i = 0; i < kIterations; ++i) {
      if (o == PrivOp::kException) {
        co_await cc.cpu().exception_roundtrip(cc.vcpu(0));
      } else {
        co_await cc.cpu().privileged_op(cc.vcpu(0), o);
      }
    }
  }(c, op));
  platform.sim().run();
  const double us = to_us(platform.sim().now() - start) / kIterations;
  bench_io().record_run(label + (kpti ? "/kpti" : "/nokpti"), platform, {{"roundtrip_us", us}});
  return us;
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "table1_exit_latency");
  print_header("Table 1: VM exit/entry round-trip latency (us), KPTI on/off",
               "PVM paper, Table 1",
               "Each cell: measured with KPTI enabled / disabled");

  const struct {
    const char* name;
    PrivOp op;
  } kOps[] = {
      {"Hypercall", PrivOp::kHypercallNop}, {"Exception", PrivOp::kException},
      {"MSR access", PrivOp::kMsrRead},     {"CPUID", PrivOp::kCpuid},
      {"PIO", PrivOp::kPortIo},
  };
  const struct {
    const char* name;
    DeployMode mode;
  } kConfigs[] = {
      {"kvm (BM)", DeployMode::kKvmEptBm},
      {"pvm (BM)", DeployMode::kPvmBm},
      {"kvm (NST)", DeployMode::kKvmEptNst},
      {"pvm (NST)", DeployMode::kPvmNst},
  };

  TextTable table({"Configuration", "kvm (BM)", "pvm (BM)", "kvm (NST)", "pvm (NST)"});
  for (const auto& op : kOps) {
    std::vector<std::string> row{op.name};
    for (const auto& config : kConfigs) {
      const std::string label = std::string(config.name) + "/" + op.name;
      const double on = measure_op_us(label, config.mode, true, op.op);
      const double off = measure_op_us(label, config.mode, false, op.op);
      row.push_back(TextTable::cell(on) + "/" + TextTable::cell(off));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Shape checks vs the paper:\n");
  std::printf(" - nested kvm hypercalls are ~an order of magnitude slower than BM;\n");
  std::printf(" - pvm (NST) cuts kvm (NST) exit latency by >75%% on CPU ops;\n");
  std::printf(" - pvm pays extra for MSR (full emulation path) as in the paper.\n");
  return 0;
}
