// Shared helpers for the per-table/per-figure benchmark binaries.
//
// Every binary prints the rows/series of one table or figure from the paper,
// regenerated on the simulated platform, alongside the paper's published
// values where useful. Absolute values need not match (the substrate is a
// simulator, not the authors' testbed); the *shape* — who wins, by roughly
// what factor, where crossovers fall — is the reproduction target.

#ifndef PVM_BENCH_BENCH_COMMON_H_
#define PVM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/backends/platform.h"
#include "src/metrics/table.h"
#include "src/workloads/runner.h"

namespace pvm {

struct Scenario {
  std::string label;
  PlatformConfig config;
};

// The paper's five deployment scenarios (§4).
inline std::vector<Scenario> five_scenarios(bool kpti = true) {
  std::vector<Scenario> scenarios;
  for (DeployMode mode : {DeployMode::kKvmEptBm, DeployMode::kKvmSptBm, DeployMode::kPvmBm,
                          DeployMode::kKvmEptNst, DeployMode::kPvmNst}) {
    PlatformConfig config;
    config.mode = mode;
    config.kpti = kpti;
    scenarios.push_back({std::string(deploy_mode_name(mode)), config});
  }
  return scenarios;
}

// Workload size multiplier, settable via the PVM_BENCH_SCALE environment
// variable (e.g. 0.1 for a quick smoke run). Benches already run at a
// documented scale-down versus the paper's sizes; this stacks on top.
inline double bench_scale() {
  const char* env = std::getenv("PVM_BENCH_SCALE");
  if (env == nullptr) {
    return 1.0;
  }
  const double value = std::atof(env);
  return value > 0 ? value : 1.0;
}

inline double to_us(SimTime ns) { return static_cast<double>(ns) / 1e3; }
inline double to_seconds(SimTime ns) { return static_cast<double>(ns) / 1e9; }

inline void print_header(const char* experiment, const char* paper_ref, const char* notes) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  if (notes != nullptr && notes[0] != '\0') {
    std::printf("%s\n", notes);
  }
  std::printf("==============================================================\n\n");
}

}  // namespace pvm

#endif  // PVM_BENCH_BENCH_COMMON_H_
