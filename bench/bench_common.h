// Shared helpers for the per-table/per-figure benchmark binaries.
//
// Every binary prints the rows/series of one table or figure from the paper,
// regenerated on the simulated platform, alongside the paper's published
// values where useful. Absolute values need not match (the substrate is a
// simulator, not the authors' testbed); the *shape* — who wins, by roughly
// what factor, where crossovers fall — is the reproduction target.

#ifndef PVM_BENCH_BENCH_COMMON_H_
#define PVM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/entries.h"
#include "src/backends/platform.h"
#include "src/fault/fault.h"
#include "src/metrics/table.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/metrics_json.h"
#include "src/obs/obs_report.h"
#include "src/obs/prof.h"
#include "src/obs/span.h"
#include "src/obs/ts.h"
#include "src/workloads/runner.h"

namespace pvm {

struct Scenario {
  std::string label;
  PlatformConfig config;
};

// The paper's five deployment scenarios (§4).
inline std::vector<Scenario> five_scenarios(bool kpti = true) {
  std::vector<Scenario> scenarios;
  for (DeployMode mode : {DeployMode::kKvmEptBm, DeployMode::kKvmSptBm, DeployMode::kPvmBm,
                          DeployMode::kKvmEptNst, DeployMode::kPvmNst}) {
    PlatformConfig config;
    config.mode = mode;
    config.kpti = kpti;
    scenarios.push_back({std::string(deploy_mode_name(mode)), config});
  }
  return scenarios;
}

// Workload size multiplier, settable via the PVM_BENCH_SCALE environment
// variable (e.g. 0.1 for a quick smoke run). Benches already run at a
// documented scale-down versus the paper's sizes; this stacks on top.
inline double bench_scale() {
  const char* env = std::getenv("PVM_BENCH_SCALE");
  if (env == nullptr) {
    return 1.0;
  }
  const double value = std::atof(env);
  return value > 0 ? value : 1.0;
}

inline double to_us(SimTime ns) { return static_cast<double>(ns) / 1e3; }
inline double to_seconds(SimTime ns) { return static_cast<double>(ns) / 1e9; }

inline void print_header(const char* experiment, const char* paper_ref, const char* notes) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  if (notes != nullptr && notes[0] != '\0') {
    std::printf("%s\n", notes);
  }
  std::printf("==============================================================\n\n");
}

// Shared machine-readable output for the bench binaries:
//
//   --json <path>    export every recorded run in the versioned metrics
//                    schema (obs::kBenchSchemaVersion)
//   --trace <path>   export a Chrome trace-event file (load in Perfetto /
//                    chrome://tracing) of the last recorded run
//   --report         print the pvm-report text summary (top contended
//                    resources, phase breakdown, op latencies) per run
//   --faults <plan>  arm a deterministic fault plan ("<preset>[:seed=N]",
//                    see fault::FaultPlan::parse) on every platform passed
//                    to arm_faults(); "none" disables, including a bench's
//                    own default plan
//   --alloc-stats    add the `alloc` section (event-queue calendar shape,
//                    slab live/high-water accounting, shadow-engine node
//                    slabs) to each exported run; off by default so the
//                    default --json output stays byte-identical
//   --timeseries <path>  export a pvm.timeseries.v1 document: windowed
//                    counters/gauges and mergeable latency histograms on
//                    the virtual clock, one metric namespace per recorded
//                    run ("<label>/<metric>"). Render with pvm-top.
//   --ts-window <ns> tumbling-window width in virtual ns (default 1ms)
//   --slo <spec>     evaluate an SLO against the timeseries export
//                    ("<name>:<metric>:<quantile><=<threshold>[:window]",
//                    e.g. "boot:boot_latency_ns:p99<=15ms"); repeatable.
//                    Verdicts embed in the document; gate with
//                    `benchdiff --slo-check`.
//   --flight-capacity <n>  per-track flight-recorder ring capacity on every
//                    observed platform (default 256)
//   --profile <path> export a pvm.profile.v1 document: the critical-path
//                    fold of every recorded run's span tree (per-op phase
//                    paths with exclusive virtual ns, tail cohort at the
//                    fold-time p99, worst-instance anchors), one namespace
//                    per run ("<label>/<op>"). Render with pvm-profile.
//
// With none of the flags given, observe()/record_run() are no-ops and no
// span recorder is attached to any platform, so simulations run exactly as
// before (the instrumented sites see a null recorder — one pointer check).
class BenchIo {
 public:
  BenchIo(int argc, char** argv, std::string bench_name)
      : export_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        json_path_ = argv[++i];
      } else if (arg == "--trace" && i + 1 < argc) {
        trace_path_ = argv[++i];
      } else if (arg == "--report") {
        report_ = true;
      } else if (arg == "--faults" && i + 1 < argc) {
        fault_plan_ = argv[++i];
      } else if (arg == "--alloc-stats") {
        alloc_stats_ = true;
      } else if (arg == "--timeseries" && i + 1 < argc) {
        timeseries_path_ = argv[++i];
      } else if (arg == "--ts-window" && i + 1 < argc) {
        ts_window_ns_ = std::strtoull(argv[++i], nullptr, 10);
      } else if (arg == "--slo" && i + 1 < argc) {
        ts::SloSpec spec;
        std::string error;
        if (!ts::parse_slo_spec(argv[++i], &spec, &error)) {
          std::fprintf(stderr, "[bench] bad --slo spec '%s': %s\n", argv[i],
                       error.c_str());
          std::exit(2);
        }
        slo_specs_.push_back(std::move(spec));
      } else if (arg == "--flight-capacity" && i + 1 < argc) {
        flight_capacity_ = std::strtoull(argv[++i], nullptr, 10);
      } else if (arg == "--profile" && i + 1 < argc) {
        profile_path_ = argv[++i];
      }
    }
    instance_slot() = this;
  }

  BenchIo(const BenchIo&) = delete;
  BenchIo& operator=(const BenchIo&) = delete;

  ~BenchIo() {
    finish();
    if (instance_slot() == this) {
      instance_slot() = nullptr;
    }
  }

  static BenchIo& instance() {
    if (instance_slot() == nullptr) {
      static BenchIo inactive(0, nullptr, "bench");
      return inactive;
    }
    return *instance_slot();
  }

  bool active() const {
    return !json_path_.empty() || !trace_path_.empty() || report_ ||
           !timeseries_path_.empty() || !profile_path_.empty();
  }

  // A bench that models faults by default (fig12's boot storm) declares its
  // plan here; an explicit --faults (including "none") wins.
  void set_default_fault_plan(const std::string& plan) {
    if (fault_plan_.empty()) {
      fault_plan_ = plan;
    }
  }
  const std::string& fault_plan() const { return fault_plan_; }

  // Arms the configured fault plan on a platform (no-op for ""/"none").
  // The injector lives in the BenchIo so it outlives the platform's runs;
  // each call gets a fresh injector so every run replays the same plan from
  // the same seed regardless of run order.
  fault::FaultInjector* arm_faults(VirtualPlatform& platform) {
    if (fault_plan_.empty() || fault_plan_ == "none") {
      return nullptr;
    }
    injectors_.push_back(std::make_unique<fault::FaultInjector>());
    injectors_.back()->arm(fault::FaultPlan::parse(fault_plan_));
    platform.arm_faults(injectors_.back().get());
    return injectors_.back().get();
  }

  // Attach a fresh span recorder to a simulation. Call between constructing
  // the simulation/platform and running work on it.
  void observe(Simulation& sim) {
    if (!active()) {
      return;
    }
    recorders_.push_back(std::make_unique<obs::SpanRecorder>());
    obs::SpanRecorder* recorder = recorders_.back().get();
    recorder->set_enabled(true);
    sim.set_spans(recorder);
    by_sim_[&sim] = recorder;
    if (!timeseries_path_.empty()) {
      collectors_.push_back(std::make_unique<ts::Collector>());
      ts::Collector* collector = collectors_.back().get();
      if (ts_window_ns_ != 0) {
        collector->set_window(ts_window_ns_);
      }
      sim.set_ts(collector);
      collector_by_sim_[&sim] = collector;
    }
  }

  void observe(VirtualPlatform& platform) {
    // Ring capacity is orthogonal to the export flags: it reshapes the
    // always-on recorder, so apply it before the active() early-out.
    if (flight_capacity_ != 0) {
      platform.flight().set_capacity(flight_capacity_);
    }
    observe(platform.sim());
    if (active()) {
      // Remembered so runs recorded through the sim-level hooks can still
      // reach the platform's shadow-engine slabs for --alloc-stats.
      platform_by_sim_[&platform.sim()] = &platform;
    }
  }

  // Capture one completed run while its simulation is still alive. `values`
  // are the bench's own headline numbers for this run.
  void record_run(const std::string& label, Simulation& sim, CounterSet& counters,
                  std::vector<std::pair<std::string, double>> values = {}) {
    record_run_impl(label, sim, counters, std::move(values), nullptr);
  }

  void record_run(const std::string& label, VirtualPlatform& platform,
                  std::vector<std::pair<std::string, double>> values = {}) {
    if (alloc_stats_) {
      // Engine slabs are only reachable through the platform; captured here
      // so the sim-level impl can fold them into the alloc section.
      const SlabStats engines = platform.engine_alloc_stats();
      record_run_impl(label, platform.sim(), platform.counters(), std::move(values),
                      &engines);
      return;
    }
    record_run_impl(label, platform.sim(), platform.counters(), std::move(values), nullptr);
  }

  // A platform remembered by observe(), or null (sim-only benches).
  VirtualPlatform* platform_for(const Simulation& sim) const {
    const auto it = platform_by_sim_.find(&sim);
    return it == platform_by_sim_.end() ? nullptr : it->second;
  }

  // A values-only row (derived numbers with no backing platform).
  void record_values(const std::string& label,
                     std::vector<std::pair<std::string, double>> values) {
    if (json_path_.empty()) {
      return;
    }
    export_.add_values(label, std::move(values));
  }

  void finish() {
    if (finished_) {
      return;
    }
    finished_ = true;
    if (!json_path_.empty()) {
      write_file(json_path_, export_.to_json());
      std::printf("[bench] wrote %zu run(s) to %s\n", export_.run_count(), json_path_.c_str());
    }
    if (!trace_path_.empty()) {
      std::printf("[bench] wrote Chrome trace to %s\n", trace_path_.c_str());
    }
    if (!timeseries_path_.empty()) {
      ts::evaluate_slos(&ts_doc_, slo_specs_);
      write_file(timeseries_path_, ts::render_timeseries_json(ts_doc_));
      std::size_t failed = 0;
      for (const ts::SloResult& slo : ts_doc_.slos) {
        if (!slo.pass) {
          ++failed;
        }
      }
      std::printf("[bench] wrote timeseries (%zu series, %zu hists, %zu SLO(s), %zu failed) to %s\n",
                  ts_doc_.series.size(), ts_doc_.hists.size(), ts_doc_.slos.size(),
                  failed, timeseries_path_.c_str());
    }
    if (!profile_path_.empty()) {
      write_file(profile_path_, prof::render_profile_json(prof_doc_));
      std::printf("[bench] wrote profile (%zu op(s)) to %s\n", prof_doc_.ops.size(),
                  profile_path_.c_str());
    }
  }

 private:
  void record_run_impl(const std::string& label, Simulation& sim, CounterSet& counters,
                       std::vector<std::pair<std::string, double>> values,
                       const SlabStats* engines) {
    if (!active()) {
      return;
    }
    obs::SpanRecorder* recorder = nullptr;
    if (const auto it = by_sim_.find(&sim); it != by_sim_.end()) {
      recorder = it->second;
    }
    std::string alloc_json;
    if (alloc_stats_) {
      SlabStats from_platform;
      if (engines == nullptr) {
        // Recorded through the sim-level hooks: recover the platform (and
        // its engines) from the observe() registration, if there was one.
        if (VirtualPlatform* platform = platform_for(sim)) {
          from_platform = platform->engine_alloc_stats();
          engines = &from_platform;
        }
      }
      alloc_json = obs::render_alloc_json(sim.event_queue_stats(), engines);
    }
    export_.add_run(label, sim, counters, recorder, std::move(values),
                    std::move(alloc_json));
    if (const auto ts_it = collector_by_sim_.find(&sim);
        ts_it != collector_by_sim_.end()) {
      // Namespace this run's metrics under its label and fold them into the
      // document, leaving the collector empty for the sim's next run.
      std::string merge_error;
      if (!ts::merge_timeseries(
              &ts_doc_, ts::prefix_timeseries(ts_it->second->drain(), label + "/"),
              &merge_error)) {
        std::fprintf(stderr, "[bench] timeseries merge failed: %s\n",
                     merge_error.c_str());
      }
    }
    if (!profile_path_.empty() && recorder != nullptr) {
      // Fold only this run's increment of the recorder's raw-span stream (a
      // sim recorded more than once must not double-count earlier runs).
      FoldCursor& cursor = fold_cursor_[recorder];
      prof::ProfDoc run_doc = prof::fold_profile(*recorder, cursor.spans);
      run_doc.dropped_spans = recorder->dropped_spans() - cursor.dropped;
      cursor.spans = recorder->spans().size();
      cursor.dropped = recorder->dropped_spans();
      std::string merge_error;
      prof::merge_profile(&prof_doc_, prof::prefix_profile(run_doc, label + "/"),
                          &merge_error);
    }
    if (!trace_path_.empty() && recorder != nullptr) {
      // Written per run while the simulation is alive; the last run wins.
      // The flight overlay marks injected faults / watchdog / OOM events.
      write_file(trace_path_, export_chrome_trace(*recorder, sim, sim.flight()));
    }
    if (report_) {
      std::printf("--- pvm-report: %s ---\n%s\n", label.c_str(),
                  obs::render_obs_report(sim, recorder).c_str());
    }
  }

  static BenchIo*& instance_slot() {
    static BenchIo* slot = nullptr;
    return slot;
  }

  static void write_file(const std::string& path, const std::string& content) {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
      std::fprintf(stderr, "[bench] cannot open %s for writing\n", path.c_str());
      return;
    }
    std::fwrite(content.data(), 1, content.size(), file);
    std::fclose(file);
  }

  obs::BenchExport export_;
  std::string json_path_;
  std::string trace_path_;
  std::string fault_plan_;
  std::string timeseries_path_;
  std::uint64_t ts_window_ns_ = 0;
  std::uint64_t flight_capacity_ = 0;
  std::vector<ts::SloSpec> slo_specs_;
  ts::TsDoc ts_doc_;
  std::string profile_path_;
  prof::ProfDoc prof_doc_;
  // Per-recorder fold position: raw spans and dropped count already folded.
  struct FoldCursor {
    std::size_t spans = 0;
    std::uint64_t dropped = 0;
  };
  std::map<const obs::SpanRecorder*, FoldCursor> fold_cursor_;
  bool report_ = false;
  bool alloc_stats_ = false;
  bool finished_ = false;
  std::vector<std::unique_ptr<obs::SpanRecorder>> recorders_;
  std::map<const Simulation*, obs::SpanRecorder*> by_sim_;
  std::map<const Simulation*, VirtualPlatform*> platform_by_sim_;
  std::vector<std::unique_ptr<ts::Collector>> collectors_;
  std::map<const Simulation*, ts::Collector*> collector_by_sim_;
  std::vector<std::unique_ptr<fault::FaultInjector>> injectors_;
};

inline BenchIo& bench_io() { return BenchIo::instance(); }

// Adapts the binary-wide BenchIo singleton to the run-as-library entry-point
// hooks (bench/entries.h): observe every simulation/platform, record every
// run into the shared export. Binaries pass this so the extracted
// measurement bodies keep their historical --json/--trace/--report behavior.
inline bench::EntryHooks bench_io_hooks() {
  bench::EntryHooks hooks;
  hooks.on_sim = [](Simulation& sim) { bench_io().observe(sim); };
  hooks.on_platform = [](VirtualPlatform& platform) {
    bench_io().observe(platform);
  };
  hooks.record = [](const std::string& label, Simulation& sim, CounterSet& counters,
                    std::vector<std::pair<std::string, double>> values) {
    bench_io().record_run(label, sim, counters, std::move(values));
  };
  return hooks;
}

}  // namespace pvm

#endif  // PVM_BENCH_BENCH_COMMON_H_
