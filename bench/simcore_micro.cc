// google-benchmark microbenchmarks of the simulation substrate itself —
// wall-clock performance of the pieces every experiment leans on (page
// walks, TLB, DES scheduling, fault protocols). Not a paper figure; used to
// keep the harness fast enough for the full sweeps.

#include <benchmark/benchmark.h>

#include <queue>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/arch/page_table.h"
#include "src/arch/tlb.h"
#include "src/backends/platform.h"
#include "src/mmu/two_dim_walk.h"
#include "src/obs/span.h"
#include "src/sim/random.h"

namespace pvm {
namespace {

void BM_PageTableMap(benchmark::State& state) {
  PageTable table("bench", nullptr);
  std::uint64_t va = 0;
  for (auto _ : state) {
    table.map(va, va >> kPageShift, PteFlags::rw_user());
    va += kPageSize;
  }
}
BENCHMARK(BM_PageTableMap);

void BM_PageTableWalkHit(benchmark::State& state) {
  PageTable table("bench", nullptr);
  for (std::uint64_t va = 0; va < 1024 * kPageSize; va += kPageSize) {
    table.map(va, va >> kPageShift, PteFlags::rw_user());
  }
  Xoshiro256 rng(1);
  for (auto _ : state) {
    const std::uint64_t va = rng.next_below(1024) * kPageSize;
    benchmark::DoNotOptimize(table.walk(va, AccessType::kRead, true));
  }
}
BENCHMARK(BM_PageTableWalkHit);

void BM_TwoDimWalk(benchmark::State& state) {
  FrameAllocator frames("bench", 1u << 20);
  PageTable gpt("gpt", &frames);
  PageTable ept("ept", nullptr);
  for (std::uint64_t va = 0; va < 256 * kPageSize; va += kPageSize) {
    const std::uint64_t frame = frames.allocate_or_throw();
    gpt.map(va, frame, PteFlags::rw_user());
    ept.map(frame << kPageShift, frame + 1000, PteFlags::rw_kernel());
  }
  const WalkResult walk = gpt.walk(0, AccessType::kRead, true);
  for (int i = 0; i < walk.levels_walked; ++i) {
    ept.map(walk.node_frames[i] << kPageShift, walk.node_frames[i] + 1000,
            PteFlags::rw_kernel());
  }
  Xoshiro256 rng(2);
  for (auto _ : state) {
    const std::uint64_t va = rng.next_below(256) * kPageSize;
    benchmark::DoNotOptimize(walk_two_dimensional(gpt, ept, va, AccessType::kRead, true));
  }
}
BENCHMARK(BM_TwoDimWalk);

void BM_TlbLookupHit(benchmark::State& state) {
  Tlb tlb;
  for (std::uint64_t vpn = 0; vpn < 1024; ++vpn) {
    tlb.insert(1, 1, vpn, Pte::make(vpn, PteFlags::rw_user()));
  }
  Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.lookup(1, 1, rng.next_below(1024)));
  }
}
BENCHMARK(BM_TlbLookupHit);

// Raw event-queue cost, isolated from coroutine resumption: the simulator's
// steady-state pattern (N live events; pop the minimum, advance the clock,
// push a successor at now + delta). This is where the calendar-queue overhaul
// shows up undiluted — BM_SimulationEventThroughput wraps the same operations
// in coroutine frame switches that dominate its per-event budget.
// BM_EventQueueBinaryHeap is the pre-overhaul std::priority_queue compiled
// into the same binary, so one run yields a like-for-like ratio.

struct HeapOrderedEvent {
  std::uint64_t when, tie, seq;
  std::int64_t root;
  std::coroutine_handle<> handle;
  bool operator>(const HeapOrderedEvent& other) const {
    if (when != other.when) return when > other.when;
    if (tie != other.tie) return tie > other.tie;
    return seq > other.seq;
  }
};

void BM_EventQueueBinaryHeap(benchmark::State& state) {
  const int live = static_cast<int>(state.range(0));
  const std::uint64_t delta = static_cast<std::uint64_t>(state.range(1));
  std::priority_queue<HeapOrderedEvent, std::vector<HeapOrderedEvent>,
                      std::greater<HeapOrderedEvent>>
      queue;
  std::uint64_t seq = 0;
  std::uint64_t now = 0;
  for (int i = 0; i < live; ++i) {
    queue.push({now + delta, seq, seq, -1, {}});
    ++seq;
  }
  for (auto _ : state) {
    const HeapOrderedEvent event = queue.top();
    queue.pop();
    now = event.when;
    queue.push({now + delta, seq, seq, -1, {}});
    ++seq;
  }
  benchmark::DoNotOptimize(now);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueBinaryHeap)
    ->ArgNames({"live", "delta"})
    ->Args({8, 10})
    ->Args({1024, 1000})
    ->Args({16384, 50})
    ->Args({1024, 0});

void BM_EventQueueCalendar(benchmark::State& state) {
  const int live = static_cast<int>(state.range(0));
  const std::uint64_t delta = static_cast<std::uint64_t>(state.range(1));
  CalendarQueue queue;
  std::uint64_t seq = 0;
  std::uint64_t now = 0;
  for (int i = 0; i < live; ++i) {
    queue.push(SimEvent{now + delta, seq, seq, -1, {}});
    ++seq;
  }
  for (auto _ : state) {
    const SimEvent event = queue.pop();
    now = event.when;
    queue.push(SimEvent{now + delta, seq, seq, -1, {}});
    ++seq;
  }
  benchmark::DoNotOptimize(now);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueCalendar)
    ->ArgNames({"live", "delta"})
    ->Args({8, 10})
    ->Args({1024, 1000})
    ->Args({16384, 50})
    ->Args({1024, 0});

void BM_SimulationEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    for (int t = 0; t < 8; ++t) {
      sim.spawn([](Simulation& s) -> Task<void> {
        for (int i = 0; i < 1000; ++i) {
          co_await s.delay(10);
        }
      }(sim));
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 8000);
}
BENCHMARK(BM_SimulationEventThroughput);

void BM_ResourceContention(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    Resource lock(sim, "lock");
    for (int t = 0; t < 16; ++t) {
      sim.spawn([](Simulation& s, Resource& r) -> Task<void> {
        for (int i = 0; i < 200; ++i) {
          ScopedResource guard = co_await r.scoped();
          co_await s.delay(5);
        }
      }(sim, lock));
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 3200);
}
BENCHMARK(BM_ResourceContention);

void BM_FullFaultProtocolPvmNst(benchmark::State& state) {
  // static: google-benchmark may invoke the function several times while
  // calibrating the iteration count, and the export should hold exactly one
  // platform capture for this label.
  static bool captured = false;
  for (auto _ : state) {
    state.PauseTiming();
    PlatformConfig config;
    config.mode = DeployMode::kPvmNst;
    VirtualPlatform platform(config);
    bench_io().arm_faults(platform);
    bench_io().observe(platform);
    SecureContainer& c = platform.create_container("c0");
    platform.sim().spawn(c.boot(8));
    platform.sim().run();
    GuestProcess& proc = *c.init_process();
    proc.vmas()[GuestProcess::kHeapBase] = Vma{GuestProcess::kHeapBase, 64ull << 20, true};
    state.ResumeTiming();

    platform.sim().spawn([](SecureContainer& cc, GuestProcess& p) -> Task<void> {
      for (std::uint64_t i = 0; i < 512; ++i) {
        co_await cc.kernel().touch(cc.vcpu(0), p, GuestProcess::kHeapBase + i * kPageSize,
                                   true);
      }
    }(c, proc));
    platform.sim().run();

    if (!captured && bench_io().active()) {
      // One platform-backed capture per benchmark (outside the timed
      // region), so --report and the export's counter/contention sections
      // work here like in the table/figure binaries.
      state.PauseTiming();
      // Distinct label from the timing row google-benchmark reports: two
      // runs sharing one label would make label-keyed diffs (benchdiff)
      // ambiguous about which run carries which metrics.
      bench_io().record_run("BM_FullFaultProtocolPvmNst_platform", platform,
                            {{"pages_touched", 512.0}});
      captured = true;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_FullFaultProtocolPvmNst);

// The same protocol with a span recorder attached and enabled: the cost
// ceiling of running with full observability on. Compare against
// BM_FullFaultProtocolPvmNst to measure the recorder's overhead; the
// no-recorder run is the hot path every experiment uses and must not regress.
void BM_FullFaultProtocolPvmNstObserved(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    PlatformConfig config;
    config.mode = DeployMode::kPvmNst;
    VirtualPlatform platform(config);
    bench_io().arm_faults(platform);
    obs::SpanRecorder recorder;
    recorder.set_enabled(true);
    platform.sim().set_spans(&recorder);
    SecureContainer& c = platform.create_container("c0");
    platform.sim().spawn(c.boot(8));
    platform.sim().run();
    GuestProcess& proc = *c.init_process();
    proc.vmas()[GuestProcess::kHeapBase] = Vma{GuestProcess::kHeapBase, 64ull << 20, true};
    state.ResumeTiming();

    platform.sim().spawn([](SecureContainer& cc, GuestProcess& p) -> Task<void> {
      for (std::uint64_t i = 0; i < 512; ++i) {
        co_await cc.kernel().touch(cc.vcpu(0), p, GuestProcess::kHeapBase + i * kPageSize,
                                   true);
      }
    }(c, proc));
    platform.sim().run();
    benchmark::DoNotOptimize(recorder.spans().size());
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_FullFaultProtocolPvmNstObserved);

// Console reporter that also feeds each benchmark's wall-clock numbers into
// the shared BenchExport, so `--json` emits the same pvm.bench.v1 schema as
// every table/figure binary (benchdiff and pvm-stat consume it uniformly).
class ExportingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) {
        continue;
      }
      std::vector<std::pair<std::string, double>> values = {
          {"real_time_ns", run.GetAdjustedRealTime()},
          {"cpu_time_ns", run.GetAdjustedCPUTime()},
      };
      for (const auto& [name, counter] : run.counters) {
        values.emplace_back(name, counter.value);
      }
      bench_io().record_values(run.benchmark_name(), std::move(values));
    }
  }
};

}  // namespace
}  // namespace pvm

// Custom main instead of BENCHMARK_MAIN(): the repo-wide BenchIo flags
// (--json / --trace / --report / --faults) are parsed and stripped before
// google-benchmark sees the command line, so simcore_micro takes the same
// flags as every other bench binary.
int main(int argc, char** argv) {
  pvm::BenchIo io(argc, argv, "simcore_micro");
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" || arg == "--trace" || arg == "--faults") {
      ++i;  // skip the flag's value too
      continue;
    }
    if (arg == "--report" || arg == "--alloc-stats") {
      continue;
    }
    args.push_back(argv[i]);
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  pvm::ExportingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  io.finish();
  benchmark::Shutdown();
  return 0;
}
