// §4.2 networking results ("We also performed tests on network latency and
// bandwidth and obtained similar results as those in the file system
// tests."). The paper prints no table; this bench regenerates the claim:
// network ops track the file-system pattern — pvm close to kvm, the nested
// penalty coming from the doorbell/interrupt path rather than paging.

#include "bench/bench_common.h"
#include "src/workloads/lmbench.h"

namespace pvm {
namespace {

struct OpLatency {
  double mean_us;
  double p99_us;
};

OpLatency latency_us(const std::string& label, const PlatformConfig& config, LmbenchOp op,
                     int iterations) {
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(64));
  platform.sim().run();
  std::uint64_t latency = 0;
  LatencyHistogram histogram;
  platform.sim().spawn([](SecureContainer& cc, LmbenchOp o, int iters, std::uint64_t* out,
                          LatencyHistogram* hist) -> Task<void> {
    *out = co_await lmbench_run(cc, cc.vcpu(0), *cc.init_process(), o, iters, LmbenchParams{},
                                hist);
  }(c, op, iterations, &latency, &histogram));
  platform.sim().run();
  const OpLatency result{to_us(latency), to_us(histogram.quantile(0.99))};
  bench_io().record_run(label, platform,
                        {{"mean_us", result.mean_us}, {"p99_us", result.p99_us}});
  return result;
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "table4b_network");
  print_header("Table 4b: network latencies/bandwidth ops (us; smaller is better)",
               "PVM paper, §4.2 text (networking 'similar to file systems')",
               "TCP bw row is the per-64KiB-chunk cost");

  const struct {
    const char* name;
    LmbenchOp op;
    int iterations;
  } kOps[] = {
      {"TCP lat", LmbenchOp::kTcpLatency, 200},
      {"UDP lat", LmbenchOp::kUdpLatency, 200},
      {"TCP bw (64KiB)", LmbenchOp::kTcpBandwidth, 100},
  };

  std::vector<std::string> header{"config"};
  for (const auto& op : kOps) {
    header.push_back(op.name);
  }
  TextTable table(std::move(header));
  for (const Scenario& scenario : five_scenarios()) {
    std::vector<std::string> row{scenario.label};
    for (const auto& op : kOps) {
      const OpLatency latency = latency_us(scenario.label + "/" + op.name, scenario.config,
                                           op.op, op.iterations);
      row.push_back(TextTable::cell(latency.mean_us) + " (p99<" +
                    TextTable::cell(latency.p99_us, 0) + ")");
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape: pvm within ~20%% of kvm at the same level (shared\n");
  std::printf("virtio path); kvm (NST) pays the forwarded doorbell + interrupt.\n");
  return 0;
}
