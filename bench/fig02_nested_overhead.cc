// Figure 2: overhead analysis of nested virtualization — execution time of
// kvm (NST) normalized to kvm (BM).
//
// Paper shape: LMbench ops without intensive memory activity stay near 1x;
// fork/exec/sh grow; the 16-container concurrent workloads explode (kbuild
// ~5x, SPECjbb up to two orders of magnitude).

#include "bench/bench_common.h"
#include "src/workloads/apps.h"
#include "src/workloads/lmbench.h"

namespace pvm {
namespace {

std::uint64_t lmbench_latency(const std::string& label, DeployMode mode, LmbenchOp op,
                              int iterations) {
  PlatformConfig config;
  config.mode = mode;
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(256));
  platform.sim().run();
  std::uint64_t latency = 0;
  platform.sim().spawn([](SecureContainer& cc, LmbenchOp o, int iters,
                          std::uint64_t* out) -> Task<void> {
    *out = co_await lmbench_run(cc, cc.vcpu(0), *cc.init_process(), o, iters, LmbenchParams{});
  }(c, op, iterations, &latency));
  platform.sim().run();
  bench_io().record_run(label, platform, {{"latency_us", to_us(latency)}});
  return latency;
}

double kbuild_mean_seconds(const std::string& label, DeployMode mode, int containers) {
  PlatformConfig config;
  config.mode = mode;
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  AppParams params;
  params.size = 0.5 * bench_scale();
  const ContainersResult result = run_containers(
      platform, containers,
      [&](int, SecureContainer& c, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        return app_kbuild(c, vcpu, proc, params);
      });
  bench_io().record_run(label, platform, {{"mean_seconds", result.mean_seconds()}});
  return result.mean_seconds();
}

double specjbb_mean_seconds(const std::string& label, DeployMode mode, int containers) {
  PlatformConfig config;
  config.mode = mode;
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  AppParams params;
  params.size = 0.5 * bench_scale();
  const ContainersResult result = run_containers(
      platform, containers,
      [&](int, SecureContainer& c, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        return [](SecureContainer& cc, Vcpu& v, GuestProcess& p, AppParams ap) -> Task<void> {
          (void)co_await app_specjbb(cc, v, p, ap);
        }(c, vcpu, proc, params);
      });
  bench_io().record_run(label, platform, {{"mean_seconds", result.mean_seconds()}});
  return result.mean_seconds();
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "fig02_nested_overhead");
  print_header("Figure 2: kvm (NST) execution time normalized to kvm (BM)",
               "PVM paper, Fig. 2",
               "LMbench ops: 1 container; kbuild/specjbb: 16 containers");

  const struct {
    const char* name;
    LmbenchOp op;
    int iterations;
  } kOps[] = {
      {"null call", LmbenchOp::kNullIo, 200},   {"stat", LmbenchOp::kStat, 200},
      {"open/close", LmbenchOp::kOpenClose, 100}, {"slct tcp", LmbenchOp::kSelectTcp, 200},
      {"sig inst", LmbenchOp::kSigInstall, 200}, {"sig hndl", LmbenchOp::kSigHandle, 200},
      {"fork", LmbenchOp::kForkProc, 20},       {"exec", LmbenchOp::kExecProc, 20},
      {"sh", LmbenchOp::kShProc, 10},
  };

  TextTable table({"benchmark", "kvm (BM)", "kvm (NST)", "normalized"});
  for (const auto& op : kOps) {
    const std::uint64_t bm =
        lmbench_latency(std::string(op.name) + "/bm", DeployMode::kKvmEptBm, op.op,
                        op.iterations);
    const std::uint64_t nst =
        lmbench_latency(std::string(op.name) + "/nst", DeployMode::kKvmEptNst, op.op,
                        op.iterations);
    table.add_row({op.name, TextTable::cell(to_us(bm)) + " us",
                   TextTable::cell(to_us(nst)) + " us",
                   TextTable::cell(static_cast<double>(nst) / static_cast<double>(bm))});
  }

  {
    const double bm = kbuild_mean_seconds("kbuild/bm", DeployMode::kKvmEptBm, 16);
    const double nst = kbuild_mean_seconds("kbuild/nst", DeployMode::kKvmEptNst, 16);
    table.add_row({"kbuild (16c)", TextTable::cell(bm) + " s", TextTable::cell(nst) + " s",
                   TextTable::cell(nst / bm)});
  }
  {
    const double bm = specjbb_mean_seconds("specjbb/bm", DeployMode::kKvmEptBm, 16);
    const double nst = specjbb_mean_seconds("specjbb/nst", DeployMode::kKvmEptNst, 16);
    table.add_row({"specjbb (16c)", TextTable::cell(bm) + " s", TextTable::cell(nst) + " s",
                   TextTable::cell(nst / bm)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Paper shape: plain syscall ops near 1x; fork/exec/sh above 1x;\n");
  std::printf("concurrent kbuild ~5x and specjbb orders of magnitude worse.\n");
  return 0;
}
