// Beyond-paper ablation: the two §5 "future work" directions, implemented as
// switchable extensions, measured against the shipping pvm (NST) baseline on
// the Fig. 10 workload.
//
//   +classify       switcher-side #PF classification (guest faults injected
//                   directly into L2, saving the PVM entry)
//   +collab         write-protection-free collaborative page-table sync
//                   (GPT stores batched through a shared ring)
//   +both           the two combined
//
// The paper projects these will narrow the remaining gap to hardware-assisted
// single-level virtualization; this bench quantifies that projection in the
// model.

#include "bench/bench_common.h"
#include "src/workloads/memstress.h"

namespace pvm {
namespace {

double run_config(const char* name, const PlatformConfig& config, int processes,
                  std::uint64_t bytes) {
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot(16));
  platform.sim().run();
  MemStressParams params;
  params.total_bytes = bytes;
  const ConcurrentResult result = run_processes_in_container(
      platform, container, processes,
      [&](int, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        return memstress_process(container, vcpu, proc, params);
      });
  bench_io().record_run(std::string(name) + "/" + std::to_string(processes) + "p", platform,
                        {{"mean_seconds", result.mean_seconds()}});
  return result.mean_seconds();
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "ablation_extensions");
  const auto bytes = static_cast<std::uint64_t>(bench_scale() * (32.0 * 1024 * 1024));
  print_header("Ablation: §5 future-work extensions on the Fig. 10 workload (s)",
               "PVM paper §5 'Limitations of PVM' / future work",
               "kvm-ept (BM) shown as the hardware lower bound");

  struct Row {
    const char* name;
    PlatformConfig config;
  };
  std::vector<Row> rows;
  {
    PlatformConfig c;
    c.mode = DeployMode::kKvmEptBm;
    rows.push_back({"kvm-ept (BM), lower bound", c});
    c.mode = DeployMode::kPvmNst;
    rows.push_back({"pvm (NST), paper baseline", c});
    PlatformConfig classify = c;
    classify.switcher_pf_classify = true;
    rows.push_back({"pvm (NST) +classify", classify});
    PlatformConfig collab = c;
    collab.collaborative_pt = true;
    rows.push_back({"pvm (NST) +collab", collab});
    PlatformConfig both = classify;
    both.collaborative_pt = true;
    rows.push_back({"pvm (NST) +both", both});
    PlatformConfig direct;
    direct.mode = DeployMode::kPvmDirectNst;
    rows.push_back({"pvm-direct (NST)", direct});
  }

  TextTable table({"config", "1p", "4p", "16p", "32p"});
  for (const Row& row : rows) {
    std::vector<std::string> cells{row.name};
    for (int processes : {1, 4, 16, 32}) {
      cells.push_back(TextTable::cell(run_config(row.name, row.config, processes, bytes), 3));
    }
    table.add_row(std::move(cells));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape: each extension shaves a constant per fault; combined\n");
  std::printf("they close part of the remaining gap to hardware-assisted paging.\n");
  return 0;
}
