// Figure 10: guest page-fault handling performance, 1..32 processes, with
// PVM optimization ablations (prefault, PCID mapping, fine-grained locking).
//
// Paper shape: kvm-ept (BM) fastest and flat; pvm (BM) similar scalability,
// higher level; pvm (NST) far below kvm-ept (NST), whose time explodes with
// concurrency (194 s at 32 procs); fine-grained locking alone restores
// scalability, prefault + PCID mapping shave the remaining constant.

#include "bench/bench_common.h"
#include "src/workloads/memstress.h"

namespace pvm {
namespace {

double run_config(const char* name, const PlatformConfig& config, int processes,
                  std::uint64_t bytes_per_proc) {
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot(16));
  platform.sim().run();

  MemStressParams params;
  params.total_bytes = bytes_per_proc;
  params.release_chunks = true;  // Fig. 10 variant: allocate and release
  const ConcurrentResult result = run_processes_in_container(
      platform, container, processes,
      [&](int, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        return memstress_process(container, vcpu, proc, params);
      });
  bench_io().record_run(std::string(name) + "/" + std::to_string(processes) + "p", platform,
                        {{"mean_seconds", result.mean_seconds()}});
  return result.mean_seconds();
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "fig10_pagefault_scaling");
  const auto bytes = static_cast<std::uint64_t>(bench_scale() * (32.0 * 1024 * 1024));
  print_header("Figure 10: guest page-fault handling (execution time, s)",
               "PVM paper, Fig. 10",
               "1 MiB allocate/touch/release loop; 32 MiB/process (paper: 4 GiB)");

  struct Config {
    const char* name;
    PlatformConfig config;
  };
  std::vector<Config> configs;
  {
    PlatformConfig c;
    c.mode = DeployMode::kKvmEptBm;
    configs.push_back({"kvm-ept (BM)", c});
    c.mode = DeployMode::kKvmSptBm;
    configs.push_back({"kvm-spt (BM)", c});
    c.mode = DeployMode::kPvmBm;
    configs.push_back({"pvm (BM)", c});
    c.mode = DeployMode::kKvmEptNst;
    configs.push_back({"kvm-ept (NST)", c});
    c.mode = DeployMode::kPvmNst;
    configs.push_back({"pvm (NST)", c});
    // Ablations: start from everything off, add one optimization at a time
    // (the paper: locking alone gives scalability; prefault and PCID mapping
    // then improve the constant).
    PlatformConfig none = c;
    none.prefault = false;
    none.pcid_mapping = false;
    none.fine_grained_locks = false;
    configs.push_back({"pvm (NST-none)", none});
    PlatformConfig lock = none;
    lock.fine_grained_locks = true;
    configs.push_back({"pvm (NST-lock)", lock});
    PlatformConfig pcid = lock;
    pcid.pcid_mapping = true;
    configs.push_back({"pvm (NST-pcid)", pcid});
    PlatformConfig prefault = pcid;
    prefault.prefault = true;  // == full pvm (NST)
    configs.push_back({"pvm (NST-prefault)", prefault});
  }

  std::vector<std::string> header{"config"};
  const int kProcs[] = {1, 2, 4, 8, 16, 32};
  for (int p : kProcs) {
    header.push_back(std::to_string(p) + "p");
  }
  TextTable table(std::move(header));

  for (const auto& config : configs) {
    std::vector<std::string> row{config.name};
    for (int p : kProcs) {
      row.push_back(TextTable::cell(run_config(config.name, config.config, p, bytes), 3));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper shape: kvm-ept (NST) collapses with concurrency (L0 mmu_lock);\n");
  std::printf("pvm (NST) scales like bare-metal; fine-grained locking provides the\n");
  std::printf("scalability, prefault + PCID mapping the remaining speedup.\n");
  return 0;
}
