// §2.2 / §3.3.2 world-switch unit costs.
//
// Paper measurements: single-level world switch ~0.105 us, PVM switcher
// switch ~0.179 us, nested (EPT-on-EPT) L2-to-L1 switch ~1.3 us ("an order
// of magnitude more expensive").
//
// The measurement bodies live in bench/entries.h so pvm-matrix can run them
// as library calls; this binary keeps the table rendering and the
// BenchIo-backed --json/--trace/--report plumbing.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "table0_switch_cost");
  print_header("Table 0: world-switch unit costs (us per switch)",
               "PVM paper, §2.2 & §3.3.2 text measurements",
               "Paper: single-level 0.105, PVM switcher 0.179, nested 1.3");

  const bench::EntryHooks hooks = bench_io_hooks();
  TextTable table({"switch type", "measured (us)", "paper (us)"});
  table.add_row({"single-level (VMX exit/entry)",
                 TextTable::cell(bench::switch_single_level_us(hooks)), "0.105"});
  table.add_row({"PVM switcher (within L1)", TextTable::cell(bench::switch_pvm_us(hooks)),
                 "0.179"});
  table.add_row({"nested L2<->L1 (via L0)", TextTable::cell(bench::switch_nested_us(hooks)),
                 "1.3"});
  std::printf("%s\n", table.render().c_str());
  return 0;
}
