// §2.2 / §3.3.2 world-switch unit costs.
//
// Paper measurements: single-level world switch ~0.105 us, PVM switcher
// switch ~0.179 us, nested (EPT-on-EPT) L2-to-L1 switch ~1.3 us ("an order
// of magnitude more expensive").

#include "bench/bench_common.h"
#include "src/core/switcher.h"
#include "src/hv/host_hypervisor.h"

namespace pvm {
namespace {

constexpr int kIterations = 10000;

double measure_single_level_us() {
  Simulation sim;
  bench_io().observe(sim);
  CostModel costs;
  CounterSet counters;
  TraceLog trace;
  HostHypervisor l0(sim, costs, counters, trace, 1u << 20);
  HostHypervisor::Vm& vm = l0.create_vm("vm", 1u << 16, false);

  const SimTime start = sim.now();
  sim.spawn([](HostHypervisor& hv, HostHypervisor::Vm& v) -> Task<void> {
    for (int i = 0; i < kIterations; ++i) {
      co_await hv.exit_roundtrip(v, ExitKind::kHypercall);
    }
  }(l0, vm));
  sim.run();
  // A round trip is two world switches (exit + entry).
  const double us = to_us(sim.now() - start) / (2.0 * kIterations);
  bench_io().record_run("single_level", sim, counters, {{"us_per_switch", us}});
  return us;
}

double measure_pvm_switch_us() {
  Simulation sim;
  bench_io().observe(sim);
  CostModel costs;
  CounterSet counters;
  TraceLog trace;
  Switcher switcher(sim, costs, counters, trace);

  const SimTime start = sim.now();
  sim.spawn([](Switcher& s) -> Task<void> {
    SwitcherState state;
    VcpuState vcpu;
    for (int i = 0; i < kIterations; ++i) {
      co_await s.to_hypervisor(state, vcpu, SwitchReason::kHypercall);
      co_await s.enter_guest(state, vcpu, VirtRing::kVRing3);
    }
  }(switcher));
  sim.run();
  const double us = to_us(sim.now() - start) / (2.0 * kIterations);
  bench_io().record_run("pvm_switcher", sim, counters, {{"us_per_switch", us}});
  return us;
}

double measure_nested_switch_us() {
  Simulation sim;
  bench_io().observe(sim);
  CostModel costs;
  CounterSet counters;
  TraceLog trace;
  HostHypervisor l0(sim, costs, counters, trace, 1u << 20);
  HostHypervisor::Vm& l1 = l0.create_vm("l1", 1u << 16, true);

  const SimTime start = sim.now();
  sim.spawn([](HostHypervisor& hv, HostHypervisor::Vm& vm) -> Task<void> {
    HostHypervisor::NestedVcpu vcpu;
    for (int i = 0; i < kIterations; ++i) {
      // One L2-to-L1 transition (forward) + one L1-to-L2 (emulated resume).
      co_await hv.nested_forward_exit_to_l1(vm, vcpu, ExitKind::kHypercall);
      co_await hv.nested_resume_l2(vm, vcpu);
    }
  }(l0, l1));
  sim.run();
  const double us = to_us(sim.now() - start) / (2.0 * kIterations);
  bench_io().record_run("nested_l2_l1", sim, counters, {{"us_per_switch", us}});
  return us;
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "table0_switch_cost");
  print_header("Table 0: world-switch unit costs (us per switch)",
               "PVM paper, §2.2 & §3.3.2 text measurements",
               "Paper: single-level 0.105, PVM switcher 0.179, nested 1.3");

  TextTable table({"switch type", "measured (us)", "paper (us)"});
  table.add_row({"single-level (VMX exit/entry)", TextTable::cell(measure_single_level_us()),
                 "0.105"});
  table.add_row({"PVM switcher (within L1)", TextTable::cell(measure_pvm_switch_us()), "0.179"});
  table.add_row({"nested L2<->L1 (via L0)", TextTable::cell(measure_nested_switch_us()), "1.3"});
  std::printf("%s\n", table.render().c_str());
  return 0;
}
