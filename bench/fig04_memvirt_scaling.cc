// Figure 4: EPT vs SPT with and without nested virtualization, under the
// memory-intensive microbenchmark (sequential 1 MiB allocations, every page
// touched), 1..16 concurrent processes.
//
// Paper shape (seconds, 4 GiB WSS/process): EPT ~5 flat; SPT grows to ~100;
// EPT-EPT 20 -> 127; SPT-EPT 60 -> 562. We run a scaled working set; the
// per-configuration ratios are the reproduction target.

#include "bench/bench_common.h"
#include "src/workloads/memstress.h"

namespace pvm {
namespace {

double run_config(const char* name, DeployMode mode, int processes,
                  std::uint64_t bytes_per_proc) {
  PlatformConfig config;
  config.mode = mode;
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot(16));
  platform.sim().run();

  MemStressParams params;
  params.total_bytes = bytes_per_proc;
  params.release_chunks = false;  // Fig. 4 variant: allocate and keep
  const ConcurrentResult result = run_processes_in_container(
      platform, container, processes,
      [&](int, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        return memstress_process(container, vcpu, proc, params);
      });
  bench_io().record_run(std::string(name) + "/" + std::to_string(processes) + "p", platform,
                        {{"mean_seconds", result.mean_seconds()}});
  return result.mean_seconds();
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "fig04_memvirt_scaling");
  const auto bytes = static_cast<std::uint64_t>(bench_scale() * (48.0 * 1024 * 1024));
  print_header("Figure 4: EPT vs SPT, single-level vs nested (execution time, s)",
               "PVM paper, Fig. 4",
               "Working set scaled to 48 MiB/process (paper: 4 GiB); shape is the target");

  const struct {
    const char* name;
    DeployMode mode;
  } kConfigs[] = {
      {"EPT", DeployMode::kKvmEptBm},
      {"SPT", DeployMode::kKvmSptBm},
      {"EPT-EPT", DeployMode::kKvmEptNst},
      {"SPT-EPT", DeployMode::kSptOnEptNst},
  };

  TextTable table({"processes", "EPT", "SPT", "EPT-EPT", "SPT-EPT"});
  for (int processes : {1, 4, 16}) {
    std::vector<std::string> row{std::to_string(processes)};
    for (const auto& config : kConfigs) {
      row.push_back(TextTable::cell(run_config(config.name, config.mode, processes, bytes), 3));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper shape: EPT flat and fastest; EPT-EPT >> EPT and growing with\n");
  std::printf("concurrency; SPT-EPT worst by a wide margin.\n");
  return 0;
}
