// Figure 11: real-world application performance under concurrency 1/4/16,
// five deployment scenarios: (a) Kbuild time, (b) Blogbench score,
// (c) SPECjbb throughput, (d) fluidanimate time.
//
// Paper shape: pvm tracks bare-metal everywhere; kvm-ept (NST) collapses at
// 16 containers (L0 becomes the bottleneck); pvm even beats kvm-ept (BM) on
// fluidanimate thanks to hypercall HLT.

#include "bench/bench_common.h"
#include "src/workloads/apps.h"

namespace pvm {
namespace {

AppParams scaled_params(VirtualPlatform& platform) {
  (void)platform;
  AppParams params;
  params.size = 0.5 * bench_scale();
  return params;
}

constexpr int kTimerHz = 1000;  // per-container scheduler tick

double kbuild_seconds(const PlatformConfig& config, int containers) {
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  const ContainersResult result = run_containers(
      platform, containers,
      [&](int, SecureContainer& c, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        return app_kbuild(c, vcpu, proc, scaled_params(platform));
      },
      /*init_pages=*/96, kTimerHz);
  bench_io().record_run("kbuild/" + std::to_string(containers) + "c", platform,
                        {{"mean_seconds", result.mean_seconds()}});
  return result.mean_seconds();
}

double blogbench_score(const PlatformConfig& config, int containers) {
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  std::vector<double> scores(containers, 0);
  run_containers(platform, containers,
                 [&](int index, SecureContainer& c, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
                   return [](SecureContainer& cc, Vcpu& v, GuestProcess& p, AppParams params,
                             double* out) -> Task<void> {
                     *out = co_await app_blogbench(cc, v, p, params);
                   }(c, vcpu, proc, scaled_params(platform), &scores[index]);
                 },
                 /*init_pages=*/96, kTimerHz);
  double sum = 0;
  for (const double s : scores) {
    sum += s;
  }
  bench_io().record_run("blogbench/" + std::to_string(containers) + "c", platform,
                        {{"score", sum / containers}});
  return sum / containers;
}

double specjbb_kbops(const PlatformConfig& config, int containers) {
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  std::vector<double> throughput(containers, 0);
  run_containers(platform, containers,
                 [&](int index, SecureContainer& c, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
                   return [](SecureContainer& cc, Vcpu& v, GuestProcess& p, AppParams params,
                             double* out) -> Task<void> {
                     *out = co_await app_specjbb(cc, v, p, params);
                   }(c, vcpu, proc, scaled_params(platform), &throughput[index]);
                 },
                 /*init_pages=*/96, kTimerHz);
  double sum = 0;
  for (const double t : throughput) {
    sum += t;
  }
  bench_io().record_run("specjbb/" + std::to_string(containers) + "c", platform,
                        {{"kbops", sum / containers}});
  return sum / containers;
}

double fluidanimate_seconds(const PlatformConfig& config, int containers) {
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  const ContainersResult result = run_containers(
      platform, containers,
      [&](int, SecureContainer& c, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        (void)vcpu;
        (void)proc;
        return app_fluidanimate(c, scaled_params(platform), /*threads=*/4, /*frames=*/16);
      },
      /*init_pages=*/32, kTimerHz);
  bench_io().record_run("fluidanimate/" + std::to_string(containers) + "c", platform,
                        {{"mean_seconds", result.mean_seconds()}});
  return result.mean_seconds();
}

template <typename Fn>
void print_panel(const char* title, const char* unit, Fn&& metric) {
  std::printf("--- %s (%s) ---\n", title, unit);
  TextTable table({"config", "1", "4", "16"});
  for (const Scenario& scenario : five_scenarios()) {
    std::vector<std::string> row{scenario.label};
    for (int containers : {1, 4, 16}) {
      row.push_back(TextTable::cell(metric(scenario.config, containers), 3));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "fig11_apps");
  print_header("Figure 11: real-world applications at concurrency 1/4/16",
               "PVM paper, Fig. 11 (a)-(d)",
               "Workload sizes scaled down; cross-config ratios are the target");

  print_panel("(a) Kbuild, avg exec time, lower is better", "s", kbuild_seconds);
  print_panel("(b) Blogbench, avg score, higher is better", "ops/s", blogbench_score);
  print_panel("(c) SPECjbb2005, avg throughput, higher is better", "kbops", specjbb_kbops);
  print_panel("(d) fluidanimate, avg exec time, lower is better", "s", fluidanimate_seconds);

  std::printf("Paper shape: kvm-ept (NST) collapses at 16 containers in every panel;\n");
  std::printf("pvm (NST) stays near bare-metal; pvm beats kvm-ept (BM) on\n");
  std::printf("fluidanimate via hypercall HLT handling.\n");
  return 0;
}
