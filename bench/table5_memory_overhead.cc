// §1/§5 memory-footprint analysis (beyond the paper's tables): per-container
// page-table memory by scheme. The paper notes VM-based isolation's
// "enlarged per-container memory footprint" (§1) and that PVM's dual shadow
// page tables are a cost it wants to reduce (§5); this bench quantifies both
// in table pages after an identical workload.

#include "bench/bench_common.h"
#include "src/backends/ept_on_ept_memory_backend.h"
#include "src/backends/kvm_spt_memory_backend.h"
#include "src/backends/pvm_memory_backend.h"
#include "src/backends/spt_on_ept_memory_backend.h"
#include "src/workloads/memstress.h"

namespace pvm {
namespace {

struct Footprint {
  std::uint64_t guest_tables = 0;   // GPT pages (the guest pays these anyway)
  std::uint64_t shadow_tables = 0;  // SPT/gpa_map pages (hypervisor overhead)
};

Footprint run_config(const std::string& label, const PlatformConfig& config, int processes) {
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot(16));
  platform.sim().run();
  MemStressParams params;
  params.total_bytes = static_cast<std::uint64_t>(bench_scale() * (16.0 * 1024 * 1024));
  params.release_chunks = false;
  run_processes_in_container(platform, container, processes,
                             [&](int, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
                               return memstress_process(container, vcpu, proc, params);
                             });

  Footprint footprint;
  for (const auto& proc : container.kernel().processes()) {
    footprint.guest_tables += proc->gpt().node_count();
  }
  if (auto* backend = dynamic_cast<PvmMemoryBackend*>(&container.mem())) {
    footprint.shadow_tables = backend->engine().shadow_table_frames();
  } else if (auto* spt = dynamic_cast<KvmSptMemoryBackend*>(&container.mem())) {
    footprint.shadow_tables = spt->engine().shadow_table_frames();
  } else if (auto* soe = dynamic_cast<SptOnEptMemoryBackend*>(&container.mem())) {
    footprint.shadow_tables = soe->engine().shadow_table_frames();
  } else if (auto* eoe = dynamic_cast<EptOnEptMemoryBackend*>(&container.mem())) {
    // EPT-on-EPT's hypervisor-side tables: EPT12 at L1 and the compressed
    // EPT02 at L0.
    footprint.shadow_tables = eoe->ept12().node_count() + eoe->ept02().node_count();
  }
  bench_io().record_run(label, platform,
                        {{"guest_tables", static_cast<double>(footprint.guest_tables)},
                         {"shadow_tables", static_cast<double>(footprint.shadow_tables)}});
  return footprint;
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "table5_memory_overhead");
  print_header("Table 5 (ours): page-table memory per container (4 KiB pages)",
               "PVM paper §1 footprint remark + §5 dual-SPT cost",
               "After 8 processes x 16 MiB resident each");

  TextTable table({"config", "guest tables", "shadow tables", "overhead vs EPT"});
  std::uint64_t ept_total = 0;
  for (const Scenario& scenario : five_scenarios()) {
    const Footprint footprint = run_config(scenario.label, scenario.config, 8);
    const std::uint64_t total = footprint.guest_tables + footprint.shadow_tables;
    if (scenario.config.mode == DeployMode::kKvmEptBm) {
      ept_total = total;
    }
    table.add_row({scenario.label, TextTable::cell(footprint.guest_tables),
                   TextTable::cell(footprint.shadow_tables),
                   ept_total > 0
                       ? TextTable::cell(static_cast<double>(total) /
                                         static_cast<double>(ept_total)) +
                             "x"
                       : "-"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape: EPT schemes carry no shadow pages; PVM's dual SPT\n");
  std::printf("roughly doubles (user+kernel) the table memory plus the gpa_map —\n");
  std::printf("the overhead §5 proposes to reduce via collaborative construction.\n");
  return 0;
}
