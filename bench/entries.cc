#include "bench/entries.h"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

#include "src/backends/platform.h"
#include "src/core/switcher.h"
#include "src/fault/fault.h"
#include "src/hv/host_hypervisor.h"
#include "src/hv/migration.h"
#include "src/obs/metrics_json.h"
#include "src/obs/prof.h"
#include "src/obs/span.h"
#include "src/obs/ts.h"
#include "src/workloads/lmbench.h"
#include "src/workloads/memstress.h"
#include "src/workloads/runner.h"

namespace pvm::bench {

namespace {

constexpr int kSwitchIterations = 10000;

inline double to_us(SimTime ns) { return static_cast<double>(ns) / 1e3; }

void call_on_sim(const EntryHooks& hooks, Simulation& sim) {
  if (hooks.on_sim) {
    hooks.on_sim(sim);
  }
}

void call_record(const EntryHooks& hooks, const std::string& label, Simulation& sim,
                 CounterSet& counters,
                 std::vector<std::pair<std::string, double>> values) {
  if (hooks.record) {
    hooks.record(label, sim, counters, std::move(values));
  }
}

}  // namespace

double switch_single_level_us(const EntryHooks& hooks) {
  Simulation sim;
  call_on_sim(hooks, sim);
  CostModel costs;
  CounterSet counters;
  TraceLog trace;
  HostHypervisor l0(sim, costs, counters, trace, 1u << 20);
  HostHypervisor::Vm& vm = l0.create_vm("vm", 1u << 16, false);

  const SimTime start = sim.now();
  sim.spawn([](HostHypervisor& hv, HostHypervisor::Vm& v) -> Task<void> {
    for (int i = 0; i < kSwitchIterations; ++i) {
      co_await hv.exit_roundtrip(v, ExitKind::kHypercall);
    }
  }(l0, vm));
  sim.run();
  // A round trip is two world switches (exit + entry).
  const double us = to_us(sim.now() - start) / (2.0 * kSwitchIterations);
  call_record(hooks, "single_level", sim, counters, {{"us_per_switch", us}});
  return us;
}

double switch_pvm_us(const EntryHooks& hooks) {
  Simulation sim;
  call_on_sim(hooks, sim);
  CostModel costs;
  CounterSet counters;
  TraceLog trace;
  Switcher switcher(sim, costs, counters, trace);

  const SimTime start = sim.now();
  sim.spawn([](Switcher& s) -> Task<void> {
    SwitcherState state;
    VcpuState vcpu;
    for (int i = 0; i < kSwitchIterations; ++i) {
      co_await s.to_hypervisor(state, vcpu, SwitchReason::kHypercall);
      co_await s.enter_guest(state, vcpu, VirtRing::kVRing3);
    }
  }(switcher));
  sim.run();
  const double us = to_us(sim.now() - start) / (2.0 * kSwitchIterations);
  call_record(hooks, "pvm_switcher", sim, counters, {{"us_per_switch", us}});
  return us;
}

double switch_nested_us(const EntryHooks& hooks) {
  Simulation sim;
  call_on_sim(hooks, sim);
  CostModel costs;
  CounterSet counters;
  TraceLog trace;
  HostHypervisor l0(sim, costs, counters, trace, 1u << 20);
  HostHypervisor::Vm& l1 = l0.create_vm("l1", 1u << 16, true);

  const SimTime start = sim.now();
  sim.spawn([](HostHypervisor& hv, HostHypervisor::Vm& vm) -> Task<void> {
    HostHypervisor::NestedVcpu vcpu;
    for (int i = 0; i < kSwitchIterations; ++i) {
      // One L2-to-L1 transition (forward) + one L1-to-L2 (emulated resume).
      co_await hv.nested_forward_exit_to_l1(vm, vcpu, ExitKind::kHypercall);
      co_await hv.nested_resume_l2(vm, vcpu);
    }
  }(l0, l1));
  sim.run();
  const double us = to_us(sim.now() - start) / (2.0 * kSwitchIterations);
  call_record(hooks, "nested_l2_l1", sim, counters, {{"us_per_switch", us}});
  return us;
}

double syscall_getpid_us(const std::string& label, const PlatformConfig& config,
                         const EntryHooks& hooks) {
  VirtualPlatform platform(config);
  if (hooks.on_platform) {
    hooks.on_platform(platform);
  }
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(8));
  platform.sim().run();

  std::uint64_t latency = 0;
  platform.sim().spawn([](SecureContainer& cc, std::uint64_t* out) -> Task<void> {
    *out = co_await lmbench_run(cc, cc.vcpu(0), *cc.init_process(), LmbenchOp::kGetPid, 4000,
                                LmbenchParams{});
  }(c, &latency));
  platform.sim().run();
  const double us = to_us(latency);
  call_record(hooks, label, platform.sim(), platform.counters(), {{"getpid_us", us}});
  return us;
}

double pagefault_mean_seconds(const std::string& label, const PlatformConfig& config,
                              int processes, std::uint64_t bytes_per_proc,
                              const EntryHooks& hooks) {
  VirtualPlatform platform(config);
  if (hooks.on_platform) {
    hooks.on_platform(platform);
  }
  SecureContainer& container = platform.create_container("c0");
  platform.sim().spawn(container.boot(16));
  platform.sim().run();

  MemStressParams params;
  params.total_bytes = bytes_per_proc;
  params.release_chunks = true;
  const ConcurrentResult result = run_processes_in_container(
      platform, container, processes,
      [&](int, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        return memstress_process(container, vcpu, proc, params);
      });
  call_record(hooks, label, platform.sim(), platform.counters(),
              {{"mean_seconds", result.mean_seconds()}});
  return result.mean_seconds();
}

BootStormStats boot_storm(const std::string& label, const PlatformConfig& config,
                          int containers, const EntryHooks& hooks) {
  VirtualPlatform platform(config);
  if (hooks.on_platform) {
    hooks.on_platform(platform);
  }
  std::vector<SecureContainer*> all;
  for (int i = 0; i < containers; ++i) {
    all.push_back(&platform.create_container("c" + std::to_string(i)));
  }
  for (SecureContainer* container : all) {
    platform.sim().spawn(container->boot(96));
  }
  platform.sim().run();

  std::vector<SimTime> latencies;
  for (SecureContainer* container : all) {
    latencies.push_back(container->boot_latency());
  }
  std::sort(latencies.begin(), latencies.end());
  const auto at = [&](double q) {
    return static_cast<double>(latencies[static_cast<std::size_t>(
               q * static_cast<double>(latencies.size() - 1))]) /
           1e6;
  };
  const BootStormStats stats{at(0.50), at(0.99), at(1.0)};
  call_record(hooks, label, platform.sim(), platform.counters(),
              {{"p50_ms", stats.p50_ms}, {"p99_ms", stats.p99_ms},
               {"worst_ms", stats.worst_ms}});
  return stats;
}

MigrationBenchStats migration_stats(const std::string& label, const PlatformConfig& config,
                                    DirtyProtocol protocol, const EntryHooks& hooks) {
  VirtualPlatform platform(config);
  if (hooks.on_platform) {
    hooks.on_platform(platform);
  }
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(16));
  platform.sim().run();

  // The migratable unit: the shared L1 instance in nested modes, the
  // container's own L0 VM in bare-metal modes. pvm (BM) runs under the PVM
  // hypervisor with no L0 VM at all — nothing for L0 to migrate.
  HostHypervisor::Vm* vm = platform.l1_vm();
  if (vm == nullptr) {
    vm = c.host_vm();
  }
  MigrationBenchStats stats;
  MigrationResult result;
  if (vm != nullptr && !c.boot_failed()) {
    // Keep the guest dirtying while the pre-copy rounds stream, so the
    // tracker protocol earns its keep (and its costs).
    MemStressParams params;
    params.total_bytes = 8ull << 20;
    MigrationEngine engine(platform.l0());
    MigrationParams mparams;
    mparams.protocol = protocol;
    platform.sim().spawn(memstress_process(c, c.vcpu(0), *c.init_process(), params));
    platform.sim().spawn([](MigrationEngine& e, HostHypervisor::Vm& v,
                            const MigrationParams& p, MigrationResult* out) -> Task<void> {
      *out = co_await e.migrate(v, p);
    }(engine, *vm, mparams, &result));
    platform.sim().run();
  }

  stats.succeeded = result.succeeded;
  stats.fell_back_postcopy = result.fell_back_postcopy;
  stats.rounds = static_cast<double>(result.rounds);
  stats.pages_copied = static_cast<double>(result.pages_copied);
  stats.pages_dirtied = static_cast<double>(result.pages_dirtied);
  stats.wp_faults = static_cast<double>(result.wp_faults);
  stats.pml_appends = static_cast<double>(result.pml_appends);
  stats.pml_flushes = static_cast<double>(result.pml_flushes);
  stats.remote_faults = static_cast<double>(result.remote_faults);
  stats.downtime_us = static_cast<double>(result.downtime) / 1e3;
  stats.total_ms = static_cast<double>(result.total_time) / 1e6;
  call_record(hooks, label, platform.sim(), platform.counters(),
              {{"succeeded", stats.succeeded ? 1.0 : 0.0},
               {"fell_back_postcopy", stats.fell_back_postcopy ? 1.0 : 0.0},
               {"rounds", stats.rounds},
               {"pages_copied", stats.pages_copied},
               {"pages_dirtied", stats.pages_dirtied},
               {"wp_faults", stats.wp_faults},
               {"pml_appends", stats.pml_appends},
               {"pml_flushes", stats.pml_flushes},
               {"remote_faults", stats.remote_faults},
               {"downtime_us", stats.downtime_us},
               {"total_ms", stats.total_ms}});
  return stats;
}

const std::vector<std::string>& matrix_workloads() {
  static const std::vector<std::string> kWorkloads = {"switch", "syscall", "pagefault",
                                                      "boot", "migration"};
  return kWorkloads;
}

CellOutcome run_workload_cell(const std::string& workload, const CellConfig& cell) {
  CellOutcome outcome;

  // Everything a cell touches is local to this call: its own export, its own
  // injector, its own platform. The injector is declared before the hooks so
  // it outlives any platform armed through them.
  obs::BenchExport cell_export("pvm-matrix/" + workload);
  fault::FaultInjector injector;
  ts::Collector collector;
  if (cell.timeseries && cell.ts_window_ns != 0) {
    collector.set_window(cell.ts_window_ns);
  }
  const bool want_faults = !cell.fault_plan.empty() && cell.fault_plan != "none";

  // Per-sim span recorders for --profile, all cell-local. The recorders must
  // outlive the workload body (sims fold at record time, while alive).
  prof::ProfDoc cell_profile;
  std::vector<std::unique_ptr<obs::SpanRecorder>> recorders;
  std::map<const Simulation*, obs::SpanRecorder*> recorder_by_sim;
  const auto attach_profile = [&](Simulation& sim) {
    if (!cell.profile) {
      return;
    }
    recorders.push_back(std::make_unique<obs::SpanRecorder>());
    recorders.back()->set_enabled(true);
    sim.set_spans(recorders.back().get());
    recorder_by_sim[&sim] = recorders.back().get();
  };

  EntryHooks hooks;
  hooks.record = [&](const std::string& label, Simulation& sim, CounterSet& counters,
                     std::vector<std::pair<std::string, double>> values) {
    // Every current workload records each simulation exactly once, so the
    // sum over record calls is the cell's total event count.
    outcome.events += sim.events_processed();
    cell_export.add_run(label, sim, counters, /*recorder=*/nullptr, std::move(values));
    if (const auto it = recorder_by_sim.find(&sim); it != recorder_by_sim.end()) {
      prof::merge_profile(&cell_profile,
                          prof::prefix_profile(prof::fold_profile(*it->second), label + "/"),
                          nullptr);
    }
  };
  hooks.on_sim = [&](Simulation& sim) {
    sim.set_schedule_policy(cell.policy, cell.schedule_seed);
    if (cell.timeseries) {
      sim.set_ts(&collector);
    }
    attach_profile(sim);
  };
  hooks.on_platform = [&](VirtualPlatform& platform) {
    if (cell.timeseries) {
      platform.sim().set_ts(&collector);
    }
    attach_profile(platform.sim());
    if (want_faults) {
      injector.arm(fault::FaultPlan::parse(cell.fault_plan));
      platform.arm_faults(&injector);
    }
  };

  PlatformConfig config;
  config.mode = cell.mode;
  config.schedule_policy = cell.policy;
  config.schedule_seed = cell.schedule_seed;

  try {
    if (workload == "switch") {
      switch_single_level_us(hooks);
      switch_pvm_us(hooks);
      switch_nested_us(hooks);
    } else if (workload == "syscall") {
      syscall_getpid_us("getpid", config, hooks);
    } else if (workload == "pagefault") {
      // Small fixed size: a matrix cell is a smoke-scale sample of the
      // fig10 workload, not a reproduction of its 32 MiB sweep.
      pagefault_mean_seconds("pagefault", config, /*processes=*/2,
                             /*bytes_per_proc=*/4ull << 20, hooks);
    } else if (workload == "boot") {
      boot_storm("bootstorm", config, /*containers=*/8, hooks);
    } else if (workload == "migration") {
      // Both dirty-tracking protocols, so one matrix document carries the
      // WP-vs-PML cost comparison per mode (and benchdiff can gate on it).
      migration_stats("migration_wp", config, DirtyProtocol::kWriteProtect, hooks);
      migration_stats("migration_pml", config, DirtyProtocol::kPml, hooks);
    } else {
      outcome.error = "unknown workload '" + workload + "'";
      return outcome;
    }
  } catch (const std::exception& e) {
    outcome.error = e.what();
    return outcome;
  }
  outcome.ok = true;
  outcome.bench_json = cell_export.to_json();
  if (cell.timeseries) {
    outcome.ts_json = ts::render_timeseries_json(ts::prefix_timeseries(
        collector.drain(),
        std::string(deploy_mode_token(cell.mode)) + "/" + workload + "/"));
  }
  if (cell.profile) {
    outcome.profile_json = prof::render_profile_json(prof::prefix_profile(
        cell_profile, std::string(deploy_mode_token(cell.mode)) + "/" + workload + "/"));
  }
  return outcome;
}

}  // namespace pvm::bench
