// Table 4: file & VM system latencies (us), five deployment scenarios.
//
// Paper shape: file ops track kvm closely for pvm (shared virtio path); the
// page-fault family (mmap / prot fault / page fault) is where the shadow
// schemes pay, with kvm-ept an order of magnitude faster on raw faults.

#include "bench/bench_common.h"
#include "src/workloads/lmbench.h"

namespace pvm {
namespace {

double latency_us(const std::string& label, const PlatformConfig& config, LmbenchOp op,
                  int iterations) {
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(64));
  platform.sim().run();
  std::uint64_t latency = 0;
  platform.sim().spawn([](SecureContainer& cc, LmbenchOp o, int iters,
                          std::uint64_t* out) -> Task<void> {
    *out = co_await lmbench_run(cc, cc.vcpu(0), *cc.init_process(), o, iters, LmbenchParams{});
  }(c, op, iterations, &latency));
  platform.sim().run();
  const double us = to_us(latency);
  bench_io().record_run(label, platform, {{"latency_us", us}});
  return us;
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "table4_file_vm");
  print_header("Table 4: file & VM system latencies (us; smaller is better)",
               "PVM paper, Table 4",
               "0K/10K file = create+delete pair; page/prot fault per fault");

  const struct {
    const char* name;
    LmbenchOp op;
    int iterations;
  } kOps[] = {
      {"0K file cr/del", LmbenchOp::kFileCreate0K, 100},
      {"10K file cr/del", LmbenchOp::kFileCreate10K, 100},
      {"mmap(64p)", LmbenchOp::kMmap, 50},
      {"prot fault", LmbenchOp::kProtFault, 200},
      {"page fault", LmbenchOp::kPageFault, 400},
      {"100fd select", LmbenchOp::kSelect100Fd, 400},
  };

  std::vector<std::string> header{"config"};
  for (const auto& op : kOps) {
    header.push_back(op.name);
  }
  TextTable table(std::move(header));
  for (const Scenario& scenario : five_scenarios()) {
    std::vector<std::string> row{scenario.label};
    for (const auto& op : kOps) {
      row.push_back(TextTable::cell(
          latency_us(scenario.label + "/" + op.name, scenario.config, op.op, op.iterations)));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper shape: pvm file-op latencies sit between kvm-ept and kvm-spt and\n");
  std::printf("below kvm-ept (NST); fault-family ops cost ~3-5x kvm-ept under any\n");
  std::printf("shadow scheme (pvm included), as in the paper's Mmap/Prot/Page rows.\n");
  return 0;
}
