// Run-as-library bench entry points.
//
// The per-table binaries (table0_switch_cost, table2_syscall, ...) used to
// inline their measurement loops around the BenchIo singleton, which made
// them impossible to call from the pvm-matrix driver — and unsafe to call
// from two sweep workers at once. The measurement bodies now live here,
// parameterized by an explicit EntryHooks value instead of process-global
// state: the binaries pass bench_io_hooks() and keep their exact historical
// labels and numbers; pvm-matrix passes hooks that capture into a local,
// per-cell BenchExport, so concurrent cells never share mutable state.

#ifndef PVM_BENCH_ENTRIES_H_
#define PVM_BENCH_ENTRIES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/backends/config.h"
#include "src/hv/dirty_tracker.h"

namespace pvm {

class Simulation;
class VirtualPlatform;
class CounterSet;

namespace bench {

// Observation hooks threaded through an entry point. Every member may be
// empty, in which case the entry runs bare — no recorder, no export —
// exactly as the binaries always did without --json/--trace/--report.
struct EntryHooks {
  // Called right after a raw Simulation (no platform) is constructed.
  std::function<void(Simulation&)> on_sim;
  // Called right after a VirtualPlatform is constructed, before any run.
  std::function<void(VirtualPlatform&)> on_platform;
  // Called once per completed run with the entry's headline values, while
  // the simulation is still alive.
  std::function<void(const std::string& label, Simulation& sim, CounterSet& counters,
                     std::vector<std::pair<std::string, double>> values)>
      record;
};

// ---- Table 0: world-switch unit costs (us per switch) ----
// Raw-simulation micro measurements; deployment mode does not apply.
double switch_single_level_us(const EntryHooks& hooks = {});
double switch_pvm_us(const EntryHooks& hooks = {});
double switch_nested_us(const EntryHooks& hooks = {});

// ---- Table 2: get_pid syscall latency (us) ----
double syscall_getpid_us(const std::string& label, const PlatformConfig& config,
                         const EntryHooks& hooks = {});

// ---- Fig. 10-style page-fault workload (mean seconds per process) ----
double pagefault_mean_seconds(const std::string& label, const PlatformConfig& config,
                              int processes, std::uint64_t bytes_per_proc,
                              const EntryHooks& hooks = {});

// ---- Fig. 12b-style boot storm (startup latency percentiles, ms) ----
struct BootStormStats {
  double p50_ms = 0;
  double p99_ms = 0;
  double worst_ms = 0;
};
BootStormStats boot_storm(const std::string& label, const PlatformConfig& config,
                          int containers, const EntryHooks& hooks = {});

// ---- §2.3 live-migration management metrics ----
// Boots one container, then migrates its hosting VM *while* a memstress
// process keeps dirtying pages, so the dirty-tracking protocol (write-protect
// or PML) does real work. Nested hardware modes (kvm-ept, spt-on-ept) refuse
// — succeeded stays 0 with pages_copied 0, the §2.3 pinning claim in numbers.
struct MigrationBenchStats {
  bool succeeded = false;
  bool fell_back_postcopy = false;
  double rounds = 0;
  double pages_copied = 0;
  double pages_dirtied = 0;
  double wp_faults = 0;
  double pml_appends = 0;
  double pml_flushes = 0;
  double remote_faults = 0;
  double downtime_us = 0;
  double total_ms = 0;
};
MigrationBenchStats migration_stats(const std::string& label, const PlatformConfig& config,
                                    DirtyProtocol protocol, const EntryHooks& hooks = {});

// ---- Matrix cells ----

// One pvm-matrix cell: which entry to run and under what scheduling /
// fault-injection coordinates.
struct CellConfig {
  DeployMode mode = DeployMode::kPvmNst;
  SchedulePolicy policy = SchedulePolicy::kFifo;
  std::uint64_t schedule_seed = 1;
  std::string fault_plan = "none";  // fault::FaultPlan::parse spec, or "none"
  // Collect a pvm.timeseries.v1 document for the cell. Metric names are
  // prefixed "<mode>/<workload>/" — deliberately without the seed/policy
  // coordinates, so documents from different seeds of the same (mode,
  // workload) aggregate when merged.
  bool timeseries = false;
  std::uint64_t ts_window_ns = 0;  // 0: ts::kDefaultWindowNs
  // Collect a pvm.profile.v1 document for the cell (critical-path fold of
  // every run's span tree). Op keys are prefixed
  // "<mode>/<workload>/<label>/" — the run label stays in the key so e.g.
  // the migration workload's WP and PML runs profile separately.
  bool profile = false;
};

struct CellOutcome {
  bool ok = false;
  std::string error;       // set when !ok (exception text)
  std::string bench_json;  // pvm.bench.v1 document for this cell when ok
  std::string ts_json;     // pvm.timeseries.v1 document (CellConfig::timeseries)
  std::string profile_json;  // pvm.profile.v1 document (CellConfig::profile)
  // Simulation events processed across the cell's recorded runs — the sweep
  // engine's throughput denominator (events/sec in pvm-matrix --timing).
  std::uint64_t events = 0;
};

// The workload names run_workload_cell accepts, in canonical order.
const std::vector<std::string>& matrix_workloads();

// Runs `workload` ("switch" | "syscall" | "pagefault" | "boot") for one cell
// in a private Simulation/platform with a private BenchExport, and returns
// the cell's pvm.bench.v1 document. Thread-safe: no process-global state is
// touched, so sweep workers can run cells concurrently. "switch" is a
// raw-simulation micro bench: the cell's mode and fault plan do not apply
// (policy and seed still do). Unknown workloads return ok=false.
CellOutcome run_workload_cell(const std::string& workload, const CellConfig& cell);

}  // namespace bench
}  // namespace pvm

#endif  // PVM_BENCH_ENTRIES_H_
