// Table 2: execution time (us) of the get_pid syscall, KPTI on/off, with and
// without PVM's direct switching.
//
// Paper values:
//   kvm-ept (BM)          0.22/0.06
//   kvm-spt (BM)          2.09/0.06
//   pvm (BM) none         1.91/1.91
//   pvm (BM) direct       0.29/0.29
//   kvm (NST)             0.23/0.06
//   pvm (NST) none        1.93/1.93
//   pvm (NST) direct      0.3/0.3

#include "bench/bench_common.h"
#include "src/workloads/lmbench.h"

namespace pvm {
namespace {

double measure_getpid_us(const std::string& label, const PlatformConfig& config) {
  VirtualPlatform platform(config);
  bench_io().observe(platform);
  SecureContainer& c = platform.create_container("c0");
  platform.sim().spawn(c.boot(8));
  platform.sim().run();

  std::uint64_t latency = 0;
  platform.sim().spawn([](SecureContainer& cc, std::uint64_t* out) -> Task<void> {
    *out = co_await lmbench_run(cc, cc.vcpu(0), *cc.init_process(), LmbenchOp::kGetPid, 4000,
                                LmbenchParams{});
  }(c, &latency));
  platform.sim().run();
  const double us = to_us(latency);
  bench_io().record_run(label, platform, {{"getpid_us", us}});
  return us;
}

std::string cell_on_off(const std::string& name, PlatformConfig config) {
  config.kpti = true;
  const double on = measure_getpid_us(name + "/kpti", config);
  config.kpti = false;
  const double off = measure_getpid_us(name + "/nokpti", config);
  return TextTable::cell(on) + "/" + TextTable::cell(off);
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "table2_syscall");
  print_header("Table 2: get_pid syscall time (us), KPTI enabled/disabled",
               "PVM paper, Table 2",
               "Direct switching is the Fig. 8 optimization; 'none' disables it");

  TextTable table({"Configuration", "Optimization", "Syscall (us)"});

  PlatformConfig config;
  config.mode = DeployMode::kKvmEptBm;
  table.add_row({"kvm-ept (BM)", "", cell_on_off("kvm-ept (BM)", config)});
  config.mode = DeployMode::kKvmSptBm;
  table.add_row({"kvm-spt (BM)", "", cell_on_off("kvm-spt (BM)", config)});

  config.mode = DeployMode::kPvmBm;
  config.direct_switch = false;
  table.add_row({"pvm (BM)", "none", cell_on_off("pvm (BM)/none", config)});
  config.direct_switch = true;
  table.add_row({"pvm (BM)", "direct-switch", cell_on_off("pvm (BM)/direct", config)});

  config.mode = DeployMode::kKvmEptNst;
  table.add_row({"kvm (NST)", "", cell_on_off("kvm (NST)", config)});

  config.mode = DeployMode::kPvmNst;
  config.direct_switch = false;
  table.add_row({"pvm (NST)", "none", cell_on_off("pvm (NST)/none", config)});
  config.direct_switch = true;
  table.add_row({"pvm (NST)", "direct-switch", cell_on_off("pvm (NST)/direct", config)});

  std::printf("%s\n", table.render().c_str());
  std::printf("Shape checks: kvm-spt is the slowest (trapped KPTI CR3 swaps);\n");
  std::printf("direct switching narrows pvm's gap to ~1.3x of kvm-ept; KPTI does\n");
  std::printf("not change pvm (the sysret exit remains either way).\n");
  return 0;
}
