// Table 2: execution time (us) of the get_pid syscall, KPTI on/off, with and
// without PVM's direct switching.
//
// Paper values:
//   kvm-ept (BM)          0.22/0.06
//   kvm-spt (BM)          2.09/0.06
//   pvm (BM) none         1.91/1.91
//   pvm (BM) direct       0.29/0.29
//   kvm (NST)             0.23/0.06
//   pvm (NST) none        1.93/1.93
//   pvm (NST) direct      0.3/0.3
//
// The measurement body (bench::syscall_getpid_us) lives in bench/entries.h
// so pvm-matrix can run it as a library call.

#include "bench/bench_common.h"

namespace pvm {
namespace {

std::string cell_on_off(const std::string& name, PlatformConfig config) {
  const bench::EntryHooks hooks = bench_io_hooks();
  config.kpti = true;
  const double on = bench::syscall_getpid_us(name + "/kpti", config, hooks);
  config.kpti = false;
  const double off = bench::syscall_getpid_us(name + "/nokpti", config, hooks);
  return TextTable::cell(on) + "/" + TextTable::cell(off);
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) {
  using namespace pvm;
  BenchIo io(argc, argv, "table2_syscall");
  print_header("Table 2: get_pid syscall time (us), KPTI enabled/disabled",
               "PVM paper, Table 2",
               "Direct switching is the Fig. 8 optimization; 'none' disables it");

  TextTable table({"Configuration", "Optimization", "Syscall (us)"});

  PlatformConfig config;
  config.mode = DeployMode::kKvmEptBm;
  table.add_row({"kvm-ept (BM)", "", cell_on_off("kvm-ept (BM)", config)});
  config.mode = DeployMode::kKvmSptBm;
  table.add_row({"kvm-spt (BM)", "", cell_on_off("kvm-spt (BM)", config)});

  config.mode = DeployMode::kPvmBm;
  config.direct_switch = false;
  table.add_row({"pvm (BM)", "none", cell_on_off("pvm (BM)/none", config)});
  config.direct_switch = true;
  table.add_row({"pvm (BM)", "direct-switch", cell_on_off("pvm (BM)/direct", config)});

  config.mode = DeployMode::kKvmEptNst;
  table.add_row({"kvm (NST)", "", cell_on_off("kvm (NST)", config)});

  config.mode = DeployMode::kPvmNst;
  config.direct_switch = false;
  table.add_row({"pvm (NST)", "none", cell_on_off("pvm (NST)/none", config)});
  config.direct_switch = true;
  table.add_row({"pvm (NST)", "direct-switch", cell_on_off("pvm (NST)/direct", config)});

  std::printf("%s\n", table.render().c_str());
  std::printf("Shape checks: kvm-spt is the slowest (trapped KPTI CR3 swaps);\n");
  std::printf("direct switching narrows pvm's gap to ~1.3x of kvm-ept; KPTI does\n");
  std::printf("not change pvm (the sysret exit remains either way).\n");
  return 0;
}
