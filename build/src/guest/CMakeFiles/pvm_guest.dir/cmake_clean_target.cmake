file(REMOVE_RECURSE
  "libpvm_guest.a"
)
