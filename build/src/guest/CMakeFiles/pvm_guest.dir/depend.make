# Empty dependencies file for pvm_guest.
# This may be replaced when dependencies are built.
