file(REMOVE_RECURSE
  "CMakeFiles/pvm_guest.dir/backend_iface.cc.o"
  "CMakeFiles/pvm_guest.dir/backend_iface.cc.o.d"
  "CMakeFiles/pvm_guest.dir/guest_kernel.cc.o"
  "CMakeFiles/pvm_guest.dir/guest_kernel.cc.o.d"
  "libpvm_guest.a"
  "libpvm_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvm_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
