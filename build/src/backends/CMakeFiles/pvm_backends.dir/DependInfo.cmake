
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backends/ept_memory_backend.cc" "src/backends/CMakeFiles/pvm_backends.dir/ept_memory_backend.cc.o" "gcc" "src/backends/CMakeFiles/pvm_backends.dir/ept_memory_backend.cc.o.d"
  "/root/repo/src/backends/ept_on_ept_memory_backend.cc" "src/backends/CMakeFiles/pvm_backends.dir/ept_on_ept_memory_backend.cc.o" "gcc" "src/backends/CMakeFiles/pvm_backends.dir/ept_on_ept_memory_backend.cc.o.d"
  "/root/repo/src/backends/kvm_spt_memory_backend.cc" "src/backends/CMakeFiles/pvm_backends.dir/kvm_spt_memory_backend.cc.o" "gcc" "src/backends/CMakeFiles/pvm_backends.dir/kvm_spt_memory_backend.cc.o.d"
  "/root/repo/src/backends/platform.cc" "src/backends/CMakeFiles/pvm_backends.dir/platform.cc.o" "gcc" "src/backends/CMakeFiles/pvm_backends.dir/platform.cc.o.d"
  "/root/repo/src/backends/pvm_cpu_backend.cc" "src/backends/CMakeFiles/pvm_backends.dir/pvm_cpu_backend.cc.o" "gcc" "src/backends/CMakeFiles/pvm_backends.dir/pvm_cpu_backend.cc.o.d"
  "/root/repo/src/backends/pvm_direct_memory_backend.cc" "src/backends/CMakeFiles/pvm_backends.dir/pvm_direct_memory_backend.cc.o" "gcc" "src/backends/CMakeFiles/pvm_backends.dir/pvm_direct_memory_backend.cc.o.d"
  "/root/repo/src/backends/pvm_memory_backend.cc" "src/backends/CMakeFiles/pvm_backends.dir/pvm_memory_backend.cc.o" "gcc" "src/backends/CMakeFiles/pvm_backends.dir/pvm_memory_backend.cc.o.d"
  "/root/repo/src/backends/spt_on_ept_memory_backend.cc" "src/backends/CMakeFiles/pvm_backends.dir/spt_on_ept_memory_backend.cc.o" "gcc" "src/backends/CMakeFiles/pvm_backends.dir/spt_on_ept_memory_backend.cc.o.d"
  "/root/repo/src/backends/vmx_cpu_backend.cc" "src/backends/CMakeFiles/pvm_backends.dir/vmx_cpu_backend.cc.o" "gcc" "src/backends/CMakeFiles/pvm_backends.dir/vmx_cpu_backend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guest/CMakeFiles/pvm_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/pvm_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/pvm_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/pvm_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/pvm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pvm_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
