# Empty compiler generated dependencies file for pvm_backends.
# This may be replaced when dependencies are built.
