file(REMOVE_RECURSE
  "libpvm_backends.a"
)
