file(REMOVE_RECURSE
  "CMakeFiles/pvm_backends.dir/ept_memory_backend.cc.o"
  "CMakeFiles/pvm_backends.dir/ept_memory_backend.cc.o.d"
  "CMakeFiles/pvm_backends.dir/ept_on_ept_memory_backend.cc.o"
  "CMakeFiles/pvm_backends.dir/ept_on_ept_memory_backend.cc.o.d"
  "CMakeFiles/pvm_backends.dir/kvm_spt_memory_backend.cc.o"
  "CMakeFiles/pvm_backends.dir/kvm_spt_memory_backend.cc.o.d"
  "CMakeFiles/pvm_backends.dir/platform.cc.o"
  "CMakeFiles/pvm_backends.dir/platform.cc.o.d"
  "CMakeFiles/pvm_backends.dir/pvm_cpu_backend.cc.o"
  "CMakeFiles/pvm_backends.dir/pvm_cpu_backend.cc.o.d"
  "CMakeFiles/pvm_backends.dir/pvm_direct_memory_backend.cc.o"
  "CMakeFiles/pvm_backends.dir/pvm_direct_memory_backend.cc.o.d"
  "CMakeFiles/pvm_backends.dir/pvm_memory_backend.cc.o"
  "CMakeFiles/pvm_backends.dir/pvm_memory_backend.cc.o.d"
  "CMakeFiles/pvm_backends.dir/spt_on_ept_memory_backend.cc.o"
  "CMakeFiles/pvm_backends.dir/spt_on_ept_memory_backend.cc.o.d"
  "CMakeFiles/pvm_backends.dir/vmx_cpu_backend.cc.o"
  "CMakeFiles/pvm_backends.dir/vmx_cpu_backend.cc.o.d"
  "libpvm_backends.a"
  "libpvm_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvm_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
