file(REMOVE_RECURSE
  "libpvm_trace.a"
)
