# Empty compiler generated dependencies file for pvm_trace.
# This may be replaced when dependencies are built.
