file(REMOVE_RECURSE
  "CMakeFiles/pvm_trace.dir/trace.cc.o"
  "CMakeFiles/pvm_trace.dir/trace.cc.o.d"
  "libpvm_trace.a"
  "libpvm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
