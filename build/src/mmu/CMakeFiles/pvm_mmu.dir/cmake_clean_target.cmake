file(REMOVE_RECURSE
  "libpvm_mmu.a"
)
