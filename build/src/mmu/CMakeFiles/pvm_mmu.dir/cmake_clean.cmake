file(REMOVE_RECURSE
  "CMakeFiles/pvm_mmu.dir/two_dim_walk.cc.o"
  "CMakeFiles/pvm_mmu.dir/two_dim_walk.cc.o.d"
  "libpvm_mmu.a"
  "libpvm_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvm_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
