# Empty dependencies file for pvm_mmu.
# This may be replaced when dependencies are built.
