file(REMOVE_RECURSE
  "libpvm_sim.a"
)
