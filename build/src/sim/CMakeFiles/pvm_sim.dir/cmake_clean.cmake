file(REMOVE_RECURSE
  "CMakeFiles/pvm_sim.dir/resource.cc.o"
  "CMakeFiles/pvm_sim.dir/resource.cc.o.d"
  "CMakeFiles/pvm_sim.dir/simulation.cc.o"
  "CMakeFiles/pvm_sim.dir/simulation.cc.o.d"
  "libpvm_sim.a"
  "libpvm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
