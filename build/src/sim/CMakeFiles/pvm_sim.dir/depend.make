# Empty dependencies file for pvm_sim.
# This may be replaced when dependencies are built.
