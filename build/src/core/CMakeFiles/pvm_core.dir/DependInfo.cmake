
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/instruction_emulator.cc" "src/core/CMakeFiles/pvm_core.dir/instruction_emulator.cc.o" "gcc" "src/core/CMakeFiles/pvm_core.dir/instruction_emulator.cc.o.d"
  "/root/repo/src/core/memory_engine.cc" "src/core/CMakeFiles/pvm_core.dir/memory_engine.cc.o" "gcc" "src/core/CMakeFiles/pvm_core.dir/memory_engine.cc.o.d"
  "/root/repo/src/core/pvm_hypervisor.cc" "src/core/CMakeFiles/pvm_core.dir/pvm_hypervisor.cc.o" "gcc" "src/core/CMakeFiles/pvm_core.dir/pvm_hypervisor.cc.o.d"
  "/root/repo/src/core/switcher.cc" "src/core/CMakeFiles/pvm_core.dir/switcher.cc.o" "gcc" "src/core/CMakeFiles/pvm_core.dir/switcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/pvm_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/pvm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pvm_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
