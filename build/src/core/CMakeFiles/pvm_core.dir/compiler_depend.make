# Empty compiler generated dependencies file for pvm_core.
# This may be replaced when dependencies are built.
