file(REMOVE_RECURSE
  "CMakeFiles/pvm_core.dir/instruction_emulator.cc.o"
  "CMakeFiles/pvm_core.dir/instruction_emulator.cc.o.d"
  "CMakeFiles/pvm_core.dir/memory_engine.cc.o"
  "CMakeFiles/pvm_core.dir/memory_engine.cc.o.d"
  "CMakeFiles/pvm_core.dir/pvm_hypervisor.cc.o"
  "CMakeFiles/pvm_core.dir/pvm_hypervisor.cc.o.d"
  "CMakeFiles/pvm_core.dir/switcher.cc.o"
  "CMakeFiles/pvm_core.dir/switcher.cc.o.d"
  "libpvm_core.a"
  "libpvm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
