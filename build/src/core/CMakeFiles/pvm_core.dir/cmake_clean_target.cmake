file(REMOVE_RECURSE
  "libpvm_core.a"
)
