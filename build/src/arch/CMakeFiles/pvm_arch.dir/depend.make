# Empty dependencies file for pvm_arch.
# This may be replaced when dependencies are built.
