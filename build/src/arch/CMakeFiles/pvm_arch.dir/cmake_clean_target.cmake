file(REMOVE_RECURSE
  "libpvm_arch.a"
)
