file(REMOVE_RECURSE
  "CMakeFiles/pvm_arch.dir/page_table.cc.o"
  "CMakeFiles/pvm_arch.dir/page_table.cc.o.d"
  "CMakeFiles/pvm_arch.dir/tlb.cc.o"
  "CMakeFiles/pvm_arch.dir/tlb.cc.o.d"
  "libpvm_arch.a"
  "libpvm_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvm_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
