file(REMOVE_RECURSE
  "libpvm_hv.a"
)
