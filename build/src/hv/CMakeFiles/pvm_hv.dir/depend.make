# Empty dependencies file for pvm_hv.
# This may be replaced when dependencies are built.
