file(REMOVE_RECURSE
  "CMakeFiles/pvm_hv.dir/host_hypervisor.cc.o"
  "CMakeFiles/pvm_hv.dir/host_hypervisor.cc.o.d"
  "CMakeFiles/pvm_hv.dir/migration.cc.o"
  "CMakeFiles/pvm_hv.dir/migration.cc.o.d"
  "libpvm_hv.a"
  "libpvm_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvm_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
