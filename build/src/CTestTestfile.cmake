# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("metrics")
subdirs("trace")
subdirs("arch")
subdirs("mmu")
subdirs("hv")
subdirs("core")
subdirs("guest")
subdirs("backends")
subdirs("workloads")
