# Empty compiler generated dependencies file for pvm_metrics.
# This may be replaced when dependencies are built.
