file(REMOVE_RECURSE
  "CMakeFiles/pvm_metrics.dir/counters.cc.o"
  "CMakeFiles/pvm_metrics.dir/counters.cc.o.d"
  "CMakeFiles/pvm_metrics.dir/report.cc.o"
  "CMakeFiles/pvm_metrics.dir/report.cc.o.d"
  "CMakeFiles/pvm_metrics.dir/table.cc.o"
  "CMakeFiles/pvm_metrics.dir/table.cc.o.d"
  "libpvm_metrics.a"
  "libpvm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
