file(REMOVE_RECURSE
  "libpvm_metrics.a"
)
