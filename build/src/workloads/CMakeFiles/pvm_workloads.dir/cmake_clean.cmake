file(REMOVE_RECURSE
  "CMakeFiles/pvm_workloads.dir/apps.cc.o"
  "CMakeFiles/pvm_workloads.dir/apps.cc.o.d"
  "CMakeFiles/pvm_workloads.dir/lmbench.cc.o"
  "CMakeFiles/pvm_workloads.dir/lmbench.cc.o.d"
  "CMakeFiles/pvm_workloads.dir/memstress.cc.o"
  "CMakeFiles/pvm_workloads.dir/memstress.cc.o.d"
  "CMakeFiles/pvm_workloads.dir/runner.cc.o"
  "CMakeFiles/pvm_workloads.dir/runner.cc.o.d"
  "CMakeFiles/pvm_workloads.dir/timer.cc.o"
  "CMakeFiles/pvm_workloads.dir/timer.cc.o.d"
  "libpvm_workloads.a"
  "libpvm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
