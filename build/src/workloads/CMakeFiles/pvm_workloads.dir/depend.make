# Empty dependencies file for pvm_workloads.
# This may be replaced when dependencies are built.
