
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/apps.cc" "src/workloads/CMakeFiles/pvm_workloads.dir/apps.cc.o" "gcc" "src/workloads/CMakeFiles/pvm_workloads.dir/apps.cc.o.d"
  "/root/repo/src/workloads/lmbench.cc" "src/workloads/CMakeFiles/pvm_workloads.dir/lmbench.cc.o" "gcc" "src/workloads/CMakeFiles/pvm_workloads.dir/lmbench.cc.o.d"
  "/root/repo/src/workloads/memstress.cc" "src/workloads/CMakeFiles/pvm_workloads.dir/memstress.cc.o" "gcc" "src/workloads/CMakeFiles/pvm_workloads.dir/memstress.cc.o.d"
  "/root/repo/src/workloads/runner.cc" "src/workloads/CMakeFiles/pvm_workloads.dir/runner.cc.o" "gcc" "src/workloads/CMakeFiles/pvm_workloads.dir/runner.cc.o.d"
  "/root/repo/src/workloads/timer.cc" "src/workloads/CMakeFiles/pvm_workloads.dir/timer.cc.o" "gcc" "src/workloads/CMakeFiles/pvm_workloads.dir/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/backends/CMakeFiles/pvm_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/pvm_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/pvm_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/pvm_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/pvm_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/pvm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pvm_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
