file(REMOVE_RECURSE
  "libpvm_workloads.a"
)
