# Empty compiler generated dependencies file for nested_cloud.
# This may be replaced when dependencies are built.
