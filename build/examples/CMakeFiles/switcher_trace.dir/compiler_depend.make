# Empty compiler generated dependencies file for switcher_trace.
# This may be replaced when dependencies are built.
