file(REMOVE_RECURSE
  "CMakeFiles/switcher_trace.dir/switcher_trace.cpp.o"
  "CMakeFiles/switcher_trace.dir/switcher_trace.cpp.o.d"
  "switcher_trace"
  "switcher_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switcher_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
