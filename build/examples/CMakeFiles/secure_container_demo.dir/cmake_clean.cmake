file(REMOVE_RECURSE
  "CMakeFiles/secure_container_demo.dir/secure_container_demo.cpp.o"
  "CMakeFiles/secure_container_demo.dir/secure_container_demo.cpp.o.d"
  "secure_container_demo"
  "secure_container_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_container_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
