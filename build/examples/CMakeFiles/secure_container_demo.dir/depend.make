# Empty dependencies file for secure_container_demo.
# This may be replaced when dependencies are built.
