# Empty dependencies file for sim_barrier_test.
# This may be replaced when dependencies are built.
