file(REMOVE_RECURSE
  "CMakeFiles/sim_barrier_test.dir/sim_barrier_test.cc.o"
  "CMakeFiles/sim_barrier_test.dir/sim_barrier_test.cc.o.d"
  "sim_barrier_test"
  "sim_barrier_test.pdb"
  "sim_barrier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_barrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
