file(REMOVE_RECURSE
  "CMakeFiles/core_switcher_test.dir/core_switcher_test.cc.o"
  "CMakeFiles/core_switcher_test.dir/core_switcher_test.cc.o.d"
  "core_switcher_test"
  "core_switcher_test.pdb"
  "core_switcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_switcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
