# Empty dependencies file for core_switcher_test.
# This may be replaced when dependencies are built.
