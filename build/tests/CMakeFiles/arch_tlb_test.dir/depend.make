# Empty dependencies file for arch_tlb_test.
# This may be replaced when dependencies are built.
