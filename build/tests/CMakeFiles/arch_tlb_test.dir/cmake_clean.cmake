file(REMOVE_RECURSE
  "CMakeFiles/arch_tlb_test.dir/arch_tlb_test.cc.o"
  "CMakeFiles/arch_tlb_test.dir/arch_tlb_test.cc.o.d"
  "arch_tlb_test"
  "arch_tlb_test.pdb"
  "arch_tlb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_tlb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
