file(REMOVE_RECURSE
  "CMakeFiles/backends_isolation_test.dir/backends_isolation_test.cc.o"
  "CMakeFiles/backends_isolation_test.dir/backends_isolation_test.cc.o.d"
  "backends_isolation_test"
  "backends_isolation_test.pdb"
  "backends_isolation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backends_isolation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
