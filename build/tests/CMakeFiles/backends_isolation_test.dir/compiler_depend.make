# Empty compiler generated dependencies file for backends_isolation_test.
# This may be replaced when dependencies are built.
