file(REMOVE_RECURSE
  "CMakeFiles/guest_kernel_test.dir/guest_kernel_test.cc.o"
  "CMakeFiles/guest_kernel_test.dir/guest_kernel_test.cc.o.d"
  "guest_kernel_test"
  "guest_kernel_test.pdb"
  "guest_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
