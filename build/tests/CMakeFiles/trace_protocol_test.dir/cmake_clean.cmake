file(REMOVE_RECURSE
  "CMakeFiles/trace_protocol_test.dir/trace_protocol_test.cc.o"
  "CMakeFiles/trace_protocol_test.dir/trace_protocol_test.cc.o.d"
  "trace_protocol_test"
  "trace_protocol_test.pdb"
  "trace_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
