# Empty dependencies file for trace_protocol_test.
# This may be replaced when dependencies are built.
