# Empty compiler generated dependencies file for backends_calibration_test.
# This may be replaced when dependencies are built.
