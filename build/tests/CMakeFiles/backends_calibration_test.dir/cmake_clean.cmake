file(REMOVE_RECURSE
  "CMakeFiles/backends_calibration_test.dir/backends_calibration_test.cc.o"
  "CMakeFiles/backends_calibration_test.dir/backends_calibration_test.cc.o.d"
  "backends_calibration_test"
  "backends_calibration_test.pdb"
  "backends_calibration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backends_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
