file(REMOVE_RECURSE
  "CMakeFiles/backends_differential_test.dir/backends_differential_test.cc.o"
  "CMakeFiles/backends_differential_test.dir/backends_differential_test.cc.o.d"
  "backends_differential_test"
  "backends_differential_test.pdb"
  "backends_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backends_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
