# Empty compiler generated dependencies file for backends_differential_test.
# This may be replaced when dependencies are built.
