file(REMOVE_RECURSE
  "CMakeFiles/backends_protocol_test.dir/backends_protocol_test.cc.o"
  "CMakeFiles/backends_protocol_test.dir/backends_protocol_test.cc.o.d"
  "backends_protocol_test"
  "backends_protocol_test.pdb"
  "backends_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backends_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
