# Empty dependencies file for backends_protocol_test.
# This may be replaced when dependencies are built.
