file(REMOVE_RECURSE
  "CMakeFiles/hv_apic_test.dir/hv_apic_test.cc.o"
  "CMakeFiles/hv_apic_test.dir/hv_apic_test.cc.o.d"
  "hv_apic_test"
  "hv_apic_test.pdb"
  "hv_apic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_apic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
