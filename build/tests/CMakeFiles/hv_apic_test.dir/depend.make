# Empty dependencies file for hv_apic_test.
# This may be replaced when dependencies are built.
