file(REMOVE_RECURSE
  "CMakeFiles/hv_migration_test.dir/hv_migration_test.cc.o"
  "CMakeFiles/hv_migration_test.dir/hv_migration_test.cc.o.d"
  "hv_migration_test"
  "hv_migration_test.pdb"
  "hv_migration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
