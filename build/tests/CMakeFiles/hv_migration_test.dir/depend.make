# Empty dependencies file for hv_migration_test.
# This may be replaced when dependencies are built.
