file(REMOVE_RECURSE
  "CMakeFiles/mmu_walk_test.dir/mmu_walk_test.cc.o"
  "CMakeFiles/mmu_walk_test.dir/mmu_walk_test.cc.o.d"
  "mmu_walk_test"
  "mmu_walk_test.pdb"
  "mmu_walk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmu_walk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
