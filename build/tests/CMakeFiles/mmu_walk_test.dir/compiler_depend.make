# Empty compiler generated dependencies file for mmu_walk_test.
# This may be replaced when dependencies are built.
