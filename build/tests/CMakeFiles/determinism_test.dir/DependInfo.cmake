
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/determinism_test.cc" "tests/CMakeFiles/determinism_test.dir/determinism_test.cc.o" "gcc" "tests/CMakeFiles/determinism_test.dir/determinism_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/pvm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/pvm_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/pvm_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/pvm_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/pvm_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/pvm_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/pvm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pvm_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
