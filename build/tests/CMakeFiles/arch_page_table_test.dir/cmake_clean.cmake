file(REMOVE_RECURSE
  "CMakeFiles/arch_page_table_test.dir/arch_page_table_test.cc.o"
  "CMakeFiles/arch_page_table_test.dir/arch_page_table_test.cc.o.d"
  "arch_page_table_test"
  "arch_page_table_test.pdb"
  "arch_page_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_page_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
