# Empty compiler generated dependencies file for arch_page_table_test.
# This may be replaced when dependencies are built.
