# Empty compiler generated dependencies file for core_instruction_emulator_test.
# This may be replaced when dependencies are built.
