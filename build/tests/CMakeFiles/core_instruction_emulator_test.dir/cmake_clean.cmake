file(REMOVE_RECURSE
  "CMakeFiles/core_instruction_emulator_test.dir/core_instruction_emulator_test.cc.o"
  "CMakeFiles/core_instruction_emulator_test.dir/core_instruction_emulator_test.cc.o.d"
  "core_instruction_emulator_test"
  "core_instruction_emulator_test.pdb"
  "core_instruction_emulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_instruction_emulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
