# Empty compiler generated dependencies file for core_pcid_mapper_test.
# This may be replaced when dependencies are built.
