file(REMOVE_RECURSE
  "CMakeFiles/core_pcid_mapper_test.dir/core_pcid_mapper_test.cc.o"
  "CMakeFiles/core_pcid_mapper_test.dir/core_pcid_mapper_test.cc.o.d"
  "core_pcid_mapper_test"
  "core_pcid_mapper_test.pdb"
  "core_pcid_mapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pcid_mapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
