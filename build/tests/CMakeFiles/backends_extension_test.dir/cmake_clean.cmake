file(REMOVE_RECURSE
  "CMakeFiles/backends_extension_test.dir/backends_extension_test.cc.o"
  "CMakeFiles/backends_extension_test.dir/backends_extension_test.cc.o.d"
  "backends_extension_test"
  "backends_extension_test.pdb"
  "backends_extension_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backends_extension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
