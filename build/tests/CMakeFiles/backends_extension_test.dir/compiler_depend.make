# Empty compiler generated dependencies file for backends_extension_test.
# This may be replaced when dependencies are built.
