# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/arch_page_table_test[1]_include.cmake")
include("/root/repo/build/tests/arch_tlb_test[1]_include.cmake")
include("/root/repo/build/tests/mmu_walk_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/backends_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/backends_calibration_test[1]_include.cmake")
include("/root/repo/build/tests/core_switcher_test[1]_include.cmake")
include("/root/repo/build/tests/core_pcid_mapper_test[1]_include.cmake")
include("/root/repo/build/tests/core_memory_engine_test[1]_include.cmake")
include("/root/repo/build/tests/hv_test[1]_include.cmake")
include("/root/repo/build/tests/guest_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/sim_barrier_test[1]_include.cmake")
include("/root/repo/build/tests/backends_isolation_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/backends_extension_test[1]_include.cmake")
include("/root/repo/build/tests/backends_differential_test[1]_include.cmake")
include("/root/repo/build/tests/trace_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/hv_migration_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_property_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
include("/root/repo/build/tests/core_instruction_emulator_test[1]_include.cmake")
include("/root/repo/build/tests/hv_apic_test[1]_include.cmake")
