file(REMOVE_RECURSE
  "CMakeFiles/table0_switch_cost.dir/table0_switch_cost.cc.o"
  "CMakeFiles/table0_switch_cost.dir/table0_switch_cost.cc.o.d"
  "table0_switch_cost"
  "table0_switch_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table0_switch_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
