# Empty dependencies file for table0_switch_cost.
# This may be replaced when dependencies are built.
