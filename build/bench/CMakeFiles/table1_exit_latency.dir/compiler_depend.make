# Empty compiler generated dependencies file for table1_exit_latency.
# This may be replaced when dependencies are built.
