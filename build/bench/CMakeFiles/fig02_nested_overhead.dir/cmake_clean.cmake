file(REMOVE_RECURSE
  "CMakeFiles/fig02_nested_overhead.dir/fig02_nested_overhead.cc.o"
  "CMakeFiles/fig02_nested_overhead.dir/fig02_nested_overhead.cc.o.d"
  "fig02_nested_overhead"
  "fig02_nested_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_nested_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
