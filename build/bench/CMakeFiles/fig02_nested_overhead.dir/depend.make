# Empty dependencies file for fig02_nested_overhead.
# This may be replaced when dependencies are built.
