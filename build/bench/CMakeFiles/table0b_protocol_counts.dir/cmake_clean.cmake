file(REMOVE_RECURSE
  "CMakeFiles/table0b_protocol_counts.dir/table0b_protocol_counts.cc.o"
  "CMakeFiles/table0b_protocol_counts.dir/table0b_protocol_counts.cc.o.d"
  "table0b_protocol_counts"
  "table0b_protocol_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table0b_protocol_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
