# Empty dependencies file for table0b_protocol_counts.
# This may be replaced when dependencies are built.
