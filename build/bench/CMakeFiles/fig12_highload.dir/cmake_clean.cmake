file(REMOVE_RECURSE
  "CMakeFiles/fig12_highload.dir/fig12_highload.cc.o"
  "CMakeFiles/fig12_highload.dir/fig12_highload.cc.o.d"
  "fig12_highload"
  "fig12_highload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_highload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
