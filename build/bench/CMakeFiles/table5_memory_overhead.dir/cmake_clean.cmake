file(REMOVE_RECURSE
  "CMakeFiles/table5_memory_overhead.dir/table5_memory_overhead.cc.o"
  "CMakeFiles/table5_memory_overhead.dir/table5_memory_overhead.cc.o.d"
  "table5_memory_overhead"
  "table5_memory_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_memory_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
