# Empty dependencies file for table5_memory_overhead.
# This may be replaced when dependencies are built.
