# Empty compiler generated dependencies file for simcore_micro.
# This may be replaced when dependencies are built.
