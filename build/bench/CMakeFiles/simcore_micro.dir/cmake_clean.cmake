file(REMOVE_RECURSE
  "CMakeFiles/simcore_micro.dir/simcore_micro.cc.o"
  "CMakeFiles/simcore_micro.dir/simcore_micro.cc.o.d"
  "simcore_micro"
  "simcore_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
