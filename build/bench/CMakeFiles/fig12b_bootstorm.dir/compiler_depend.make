# Empty compiler generated dependencies file for fig12b_bootstorm.
# This may be replaced when dependencies are built.
