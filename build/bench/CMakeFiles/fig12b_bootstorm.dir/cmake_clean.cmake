file(REMOVE_RECURSE
  "CMakeFiles/fig12b_bootstorm.dir/fig12b_bootstorm.cc.o"
  "CMakeFiles/fig12b_bootstorm.dir/fig12b_bootstorm.cc.o.d"
  "fig12b_bootstorm"
  "fig12b_bootstorm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12b_bootstorm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
