file(REMOVE_RECURSE
  "CMakeFiles/table4b_network.dir/table4b_network.cc.o"
  "CMakeFiles/table4b_network.dir/table4b_network.cc.o.d"
  "table4b_network"
  "table4b_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4b_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
