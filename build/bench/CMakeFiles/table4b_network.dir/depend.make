# Empty dependencies file for table4b_network.
# This may be replaced when dependencies are built.
