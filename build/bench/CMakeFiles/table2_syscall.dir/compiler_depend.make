# Empty compiler generated dependencies file for table2_syscall.
# This may be replaced when dependencies are built.
