file(REMOVE_RECURSE
  "CMakeFiles/table2_syscall.dir/table2_syscall.cc.o"
  "CMakeFiles/table2_syscall.dir/table2_syscall.cc.o.d"
  "table2_syscall"
  "table2_syscall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_syscall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
