file(REMOVE_RECURSE
  "CMakeFiles/table3_lmbench_proc.dir/table3_lmbench_proc.cc.o"
  "CMakeFiles/table3_lmbench_proc.dir/table3_lmbench_proc.cc.o.d"
  "table3_lmbench_proc"
  "table3_lmbench_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_lmbench_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
