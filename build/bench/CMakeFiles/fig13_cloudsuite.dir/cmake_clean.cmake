file(REMOVE_RECURSE
  "CMakeFiles/fig13_cloudsuite.dir/fig13_cloudsuite.cc.o"
  "CMakeFiles/fig13_cloudsuite.dir/fig13_cloudsuite.cc.o.d"
  "fig13_cloudsuite"
  "fig13_cloudsuite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cloudsuite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
