# Empty compiler generated dependencies file for fig13_cloudsuite.
# This may be replaced when dependencies are built.
