# Empty dependencies file for table4_file_vm.
# This may be replaced when dependencies are built.
