file(REMOVE_RECURSE
  "CMakeFiles/table4_file_vm.dir/table4_file_vm.cc.o"
  "CMakeFiles/table4_file_vm.dir/table4_file_vm.cc.o.d"
  "table4_file_vm"
  "table4_file_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_file_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
