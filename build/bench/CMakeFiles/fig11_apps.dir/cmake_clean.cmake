file(REMOVE_RECURSE
  "CMakeFiles/fig11_apps.dir/fig11_apps.cc.o"
  "CMakeFiles/fig11_apps.dir/fig11_apps.cc.o.d"
  "fig11_apps"
  "fig11_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
