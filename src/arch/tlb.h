// Tagged TLB model.
//
// Entries are tagged (VPID, PCID, VPN) like post-Westmere x86: VPID
// distinguishes VMs, PCID distinguishes address spaces within a VM. Global
// pages (the PVM switcher sets its whole region global, §3.2) match any PCID
// and survive PCID-targeted flushes. The PCID-mapping optimization (§3.3.2)
// works precisely because flush_pcid() is cheaper than flush_vpid(): mapped
// guest PCIDs let the hypervisor avoid the full-VPID flush on world switches.
//
// Replacement is round-robin over a fixed slot array: deterministic and cheap.

#ifndef PVM_SRC_ARCH_TLB_H_
#define PVM_SRC_ARCH_TLB_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/arch/pte.h"

namespace pvm {

struct TlbStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t flush_all = 0;
  std::uint64_t flush_vpid = 0;
  std::uint64_t flush_pcid = 0;
  std::uint64_t entries_dropped = 0;
};

class Tlb {
 public:
  static constexpr std::uint16_t kGlobalPcid = 0xfff;

  explicit Tlb(std::size_t capacity = 1536);

  struct LookupResult {
    bool hit = false;
    std::uint64_t frame = 0;
    bool writable = false;
    bool user = false;
  };

  // Probes for (vpid, pcid, vpn); global entries in the same VPID also match.
  LookupResult lookup(std::uint16_t vpid, std::uint16_t pcid, std::uint64_t vpn);

  // Installs a translation from a completed walk.
  void insert(std::uint16_t vpid, std::uint16_t pcid, std::uint64_t vpn, const Pte& pte);

  // Drops everything (e.g. EPT flush).
  void flush_all();

  // Drops every entry belonging to one VM.
  void flush_vpid(std::uint16_t vpid);

  // Drops non-global entries of one (vpid, pcid) address space.
  void flush_pcid(std::uint16_t vpid, std::uint16_t pcid);

  // Drops one page translation (invlpg), including a global alias.
  void flush_page(std::uint16_t vpid, std::uint16_t pcid, std::uint64_t vpn);

  const TlbStats& stats() const { return stats_; }
  std::size_t valid_entries() const { return index_.size(); }
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Entry {
    bool valid = false;
    std::uint16_t vpid = 0;
    std::uint16_t pcid = 0;
    std::uint64_t vpn = 0;
    std::uint64_t frame = 0;
    bool writable = false;
    bool user = false;
  };

  static std::uint64_t key(std::uint16_t vpid, std::uint16_t pcid, std::uint64_t vpn) {
    return (static_cast<std::uint64_t>(vpid) << 48) | (static_cast<std::uint64_t>(pcid) << 36) |
           (vpn & 0xfffffffffull);
  }

  void invalidate_slot(std::size_t slot);

  std::vector<Entry> slots_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::size_t next_victim_ = 0;
  TlbStats stats_;
};

}  // namespace pvm

#endif  // PVM_SRC_ARCH_TLB_H_
