// Privileged / sensitive operations a guest kernel performs.
//
// These are the operations Table 1 measures: each must reach some hypervisor
// (L0 via VMX, or the PVM L1 hypervisor via hypercall / #GP emulation).

#ifndef PVM_SRC_ARCH_PRIV_OP_H_
#define PVM_SRC_ARCH_PRIV_OP_H_

#include <cstdint>
#include <string_view>

namespace pvm {

enum class PrivOp {
  kHypercallNop,    // no-op hypercall (Table 1 "Hypercall")
  kException,       // invalid-opcode exception (Table 1 "Exception")
  kMsrRead,         // RDMSR of MSR_CORE_PERF_GLOBAL_CTRL (Table 1 "MSR access")
  kMsrWrite,
  kCpuid,           // CPUID (Table 1)
  kPortIo,          // port-mapped I/O (Table 1 "PIO")
  kIret,            // return from exception/interrupt
  kHalt,            // HLT; PVM handles it via hypercall without leaving L1
  kWriteCr3,        // address-space switch
  kInvlpg,          // single-page TLB shootdown
  kIoKick,          // virtio doorbell
};

constexpr std::string_view priv_op_name(PrivOp op) {
  switch (op) {
    case PrivOp::kHypercallNop:
      return "hypercall";
    case PrivOp::kException:
      return "exception";
    case PrivOp::kMsrRead:
      return "msr_read";
    case PrivOp::kMsrWrite:
      return "msr_write";
    case PrivOp::kCpuid:
      return "cpuid";
    case PrivOp::kPortIo:
      return "pio";
    case PrivOp::kIret:
      return "iret";
    case PrivOp::kHalt:
      return "halt";
    case PrivOp::kWriteCr3:
      return "write_cr3";
    case PrivOp::kInvlpg:
      return "invlpg";
    case PrivOp::kIoKick:
      return "io_kick";
  }
  return "?";
}

}  // namespace pvm

#endif  // PVM_SRC_ARCH_PRIV_OP_H_
