#include "src/arch/tlb.h"

namespace pvm {

Tlb::Tlb(std::size_t capacity) : slots_(capacity) {}

Tlb::LookupResult Tlb::lookup(std::uint16_t vpid, std::uint16_t pcid, std::uint64_t vpn) {
  auto probe = [&](std::uint16_t tag) -> const Entry* {
    auto it = index_.find(key(vpid, tag, vpn));
    if (it == index_.end()) {
      return nullptr;
    }
    return &slots_[it->second];
  };

  const Entry* entry = probe(pcid);
  if (entry == nullptr && pcid != kGlobalPcid) {
    entry = probe(kGlobalPcid);
  }
  if (entry == nullptr) {
    ++stats_.misses;
    return {};
  }
  ++stats_.hits;
  return LookupResult{true, entry->frame, entry->writable, entry->user};
}

void Tlb::insert(std::uint16_t vpid, std::uint16_t pcid, std::uint64_t vpn, const Pte& pte) {
  const std::uint16_t tag = pte.global() ? kGlobalPcid : pcid;
  const std::uint64_t k = key(vpid, tag, vpn);

  auto existing = index_.find(k);
  std::size_t slot;
  if (existing != index_.end()) {
    slot = existing->second;
  } else {
    // Round-robin victim selection: deterministic replacement.
    slot = next_victim_;
    next_victim_ = (next_victim_ + 1) % slots_.size();
    if (slots_[slot].valid) {
      ++stats_.evictions;
      invalidate_slot(slot);
    }
    index_[k] = slot;
  }

  Entry& entry = slots_[slot];
  entry.valid = true;
  entry.vpid = vpid;
  entry.pcid = tag;
  entry.vpn = vpn;
  entry.frame = pte.frame_number();
  entry.writable = pte.writable();
  entry.user = pte.user();
}

void Tlb::invalidate_slot(std::size_t slot) {
  Entry& entry = slots_[slot];
  if (entry.valid) {
    index_.erase(key(entry.vpid, entry.pcid, entry.vpn));
    entry.valid = false;
    ++stats_.entries_dropped;
  }
}

void Tlb::flush_all() {
  ++stats_.flush_all;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    invalidate_slot(i);
  }
}

void Tlb::flush_vpid(std::uint16_t vpid) {
  ++stats_.flush_vpid;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].valid && slots_[i].vpid == vpid) {
      invalidate_slot(i);
    }
  }
}

void Tlb::flush_pcid(std::uint16_t vpid, std::uint16_t pcid) {
  ++stats_.flush_pcid;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    // Global entries survive PCID-targeted flushes, as on hardware.
    if (slots_[i].valid && slots_[i].vpid == vpid && slots_[i].pcid == pcid) {
      invalidate_slot(i);
    }
  }
}

void Tlb::flush_page(std::uint16_t vpid, std::uint16_t pcid, std::uint64_t vpn) {
  auto drop = [&](std::uint16_t tag) {
    auto it = index_.find(key(vpid, tag, vpn));
    if (it != index_.end()) {
      invalidate_slot(it->second);
    }
  };
  drop(pcid);
  drop(kGlobalPcid);
}

}  // namespace pvm
