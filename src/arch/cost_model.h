// Virtual-time costs of architectural and hypervisor events.
//
// Constants are calibrated against the measurements the paper reports for its
// testbed (2x Xeon Platinum 8269CY, Linux 4.19):
//   - single-level world switch           ~0.105 us   (§2.2)
//   - EPT-on-EPT nested L2<->L1 switch    ~1.3 us     (§2.2)
//   - PVM switcher world switch           ~0.179 us   (§3.3.2)
//   - kvm (BM) hypercall round trip       ~0.46 us    (Table 1)
//   - kvm (NST) hypercall round trip      ~7.43 us    (Table 1)
//   - pvm hypercall round trip            ~0.48-0.54 us (Table 1)
//   - get_pid via direct switch           ~0.29-0.30 us (Table 2)
// The benchmark harness reproduces the paper's *shape*; absolute values track
// these targets only approximately. A calibration test
// (tests/backends_calibration_test.cc) pins the derived round trips to bands.

#ifndef PVM_SRC_ARCH_COST_MODEL_H_
#define PVM_SRC_ARCH_COST_MODEL_H_

#include <cstdint>

namespace pvm {

struct CostModel {
  // --- Hardware primitives (ns) ---

  // One VMX transition each way between non-root and root mode, including
  // the implicit VMCS state save/load done by the CPU.
  std::uint64_t vmx_exit = 160;
  std::uint64_t vmx_entry = 160;

  // syscall/sysret or iret style ring crossing (h_ring3 <-> h_ring0) within
  // non-root mode. Much cheaper than a VMX transition.
  std::uint64_t ring_crossing = 25;

  // One cache-missing memory load during a hardware page walk.
  std::uint64_t walk_load = 25;

  // TLB hit cost (effectively free) and TLB fill bookkeeping.
  std::uint64_t tlb_hit = 1;
  std::uint64_t tlb_fill = 5;

  // CR3 write without a trap: pipeline + (non-PCID) implicit flush costs.
  std::uint64_t cr3_write = 60;
  // Extra cost of refilling working-set TLB entries after a full flush is
  // paid naturally through walk misses; this is just the instruction itself.

  // --- VMCS costs (ns) ---
  std::uint64_t vmcs_field_access = 6;  // one vmread/vmwrite in root mode
  // Number of fields L0 touches to merge VMCS01+VMCS12 into VMCS02. The
  // kvm-forum "shadow turtles" analysis reports 40-50 accesses per switch.
  std::uint32_t vmcs_sync_fields = 48;
  // Extra software bookkeeping around a nested exit forward (decode exit
  // reason, map it onto the L1 VMCS12, fixups). Dominates nested exits.
  std::uint64_t nested_forward_work = 4200;
  // Software work around the emulated VMRESUME (consistency checks, MSR
  // switch emulation) beyond the VMCS merge itself.
  std::uint64_t nested_resume_work = 1600;

  // --- L0 / KVM software costs (ns) ---
  std::uint64_t l0_exit_dispatch = 70;    // decode + dispatch one VM exit
  std::uint64_t l0_simple_handler = 70;   // no-op hypercall, CPUID, etc.
  std::uint64_t l0_msr_handler = 110;
  // Raw hardware access latency of MSR_CORE_PERF_GLOBAL_CTRL (a slow PMU
  // register; Table 1's kvm row reads it directly in non-root mode).
  std::uint64_t msr_hardware_access = 850;
  std::uint64_t l0_pio_handler = 3400;    // device emulation path
  std::uint64_t l0_exception_inject = 1150;
  std::uint64_t l0_ept_fill = 350;        // allocate + install one EPT leaf
  // Emulating one write-protected EPT12 store at L0: instruction decode,
  // guest-memory operand fetch, shadow bookkeeping — all under the L1 VM's
  // L0 mmu_lock (kvm_mmu_pte_write runs locked).
  std::uint64_t l0_ept_emulate_write = 1200;
  // Remote TLB shootdown when L0 installs/changes a shadow EPT entry with
  // other vCPUs of the L1 VM running.
  std::uint64_t tlb_shootdown = 800;
  // Shadow-paging CR3 emulation: locate/validate the shadow root and switch
  // to it (what makes kvm-spt syscalls ~2 us under KPTI, Table 2).
  std::uint64_t l0_spt_cr3_work = 500;

  // --- PVM switcher costs (ns) ---
  // Save guest state + clear registers + restore host state (one direction).
  // A full PVM world switch = ring_crossing + switcher_save_restore; the
  // paper measures ~179 ns per switch.
  std::uint64_t switcher_save_restore = 150;
  // Direct switch user->kernel: build syscall frame, swap CR3/cpl/stack/gs.
  // Calibrated so a get_pid round trip lands near Table 2's 0.29-0.30 us.
  std::uint64_t direct_switch_work = 105;
  // §5 future work: the switcher classifying a #PF against the guest page
  // table itself (quick walk + decision) before deciding where to deliver.
  std::uint64_t switcher_classify = 120;

  // --- PVM hypervisor software costs (ns) ---
  std::uint64_t pvm_exit_dispatch = 60;
  std::uint64_t pvm_simple_handler = 60;
  std::uint64_t pvm_msr_handler = 90;
  std::uint64_t pvm_pio_handler = 3600;   // same device emulation path as KVM
  std::uint64_t pvm_exception_inject = 1250;
  std::uint64_t pvm_instruction_emulate = 900;  // full decode+simulate path
  // syscall frame construction + dispatch when direct switching is off and
  // every syscall detours through the hypervisor (Table 2 "none": ~1.9 us).
  std::uint64_t pvm_syscall_emulation = 550;
  // Extra cost of port I/O emulation when the PVM VMM itself runs inside a
  // VM (guest-memory operand fetches through shadow tables).
  std::uint64_t pvm_nested_pio_extra = 7800;
  // Emulating one trapped guest PTE store in PVM (paravirt-assisted decode,
  // cheaper than full x86 instruction emulation).
  std::uint64_t pvm_gpt_store_emulate = 300;
  std::uint64_t spt_fill = 220;            // install one SPT leaf
  std::uint64_t spt_sync_check = 90;       // verify GPT entry during sync
  std::uint64_t gpa_map_fill = 180;        // memslot gpa->gpa_l1 allocation

  // --- Guest kernel software costs (ns) ---
  std::uint64_t guest_syscall_body_getpid = 20;
  std::uint64_t guest_pf_handler = 350;   // VMA lookup + frame allocation
  std::uint64_t guest_pte_store = 15;     // one untrapped GPT store
  std::uint64_t kpti_switch = 60;         // untrapped CR3 swap on syscall path
  std::uint64_t guest_exception_delivery = 120;  // in-guest #PF/IDT dispatch
  std::uint64_t page_zero = 250;          // zero-fill a fresh 4 KiB page
  std::uint64_t page_copy = 450;          // COW break copy
  std::uint64_t fork_base = 45000;        // fork() minus per-page work
  std::uint64_t exec_base = 280000;       // exec() image setup minus paging
  std::uint64_t mmap_body = 1500;         // mmap() VMA bookkeeping
  std::uint64_t munmap_body = 1200;       // munmap() VMA bookkeeping
  std::uint64_t spt_bulk_zap_per_page = 60;  // PVM bulk teardown hypercall, per page

  // --- Live-migration dirty tracking (ns) ---
  // Write-protect protocol: clearing the write protection on first store
  // (PTE update + local TLB invalidation), paid inside the fault handler.
  std::uint64_t dirty_wp_unprotect = 200;
  // PML-style logging: one hardware log append is nearly free; draining a
  // full 512-entry buffer is a real exit-time cost (the *Out of Hypervisor*
  // numbers put the drain in the low microseconds).
  std::uint64_t pml_log_append = 2;
  std::uint64_t pml_flush_drain = 1100;

  // --- Interrupts / IO (ns) ---
  std::uint64_t apic_virtualization = 450;
  // HLT exit: scheduler idle + IPI wakeup through root mode (KVM). PVM's
  // hypercall HLT sleeps and wakes inside L1 (see §4.3 fluidanimate).
  std::uint64_t halt_wakeup = 3000;
  std::uint64_t io_request_service = 25000;   // virtio-blk style request
  std::uint64_t io_kick_handler = 1800;

  // Derived helpers -------------------------------------------------------

  // One full VMX exit+entry pair (the single-level "world switch" pair).
  std::uint64_t vmx_roundtrip() const { return vmx_exit + vmx_entry; }

  // One PVM switcher world switch (one direction): ring crossing plus state
  // save/restore. Target ~179 ns.
  std::uint64_t switcher_switch() const { return ring_crossing + switcher_save_restore; }

  // Cost of merging VMCSes for one nested transition.
  std::uint64_t vmcs_sync() const {
    return static_cast<std::uint64_t>(vmcs_sync_fields) * vmcs_field_access;
  }
};

}  // namespace pvm

#endif  // PVM_SRC_ARCH_COST_MODEL_H_
