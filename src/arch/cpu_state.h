// Per-vCPU architectural state.
//
// This is the state a world switch saves and restores: mode (VMX root vs
// non-root), hardware ring, the virtual ring PVM simulates for de-privileged
// L2 guests, CR3/PCID, RFLAGS.IF, IDTR, and the handful of MSRs the
// benchmarks exercise.

#ifndef PVM_SRC_ARCH_CPU_STATE_H_
#define PVM_SRC_ARCH_CPU_STATE_H_

#include <cstdint>
#include <unordered_map>

namespace pvm {

enum class CpuMode {
  kRoot,     // VMX root operation (the L0 hypervisor)
  kNonRoot,  // VMX non-root operation (everything inside a VM)
};

// Hardware privilege rings. Only 0 and 3 are modelled: PVM targets x86-64 and
// the upcoming x86-s, where rings 1 and 2 are unused/removed (paper §1, §3.2).
enum class HwRing : std::uint8_t {
  kRing0 = 0,
  kRing3 = 3,
};

// The privilege level PVM simulates for a de-privileged L2 guest, both of
// whose rings really run at HwRing::kRing3 (paper §3.1: v_ring0 / v_ring3).
enum class VirtRing : std::uint8_t {
  kVRing0 = 0,
  kVRing3 = 3,
};

// MSR identifiers used by the benchmarks and the switcher.
enum class MsrIndex : std::uint32_t {
  kLstar = 0xC0000082,               // syscall entry point
  kGsBase = 0xC0000101,              // per-CPU base
  kKernelGsBase = 0xC0000102,        // swapgs shadow
  kCorePerfGlobalCtrl = 0x38F,       // the MSR Table 1 exercises
  kTscDeadline = 0x6E0,
  kApicBase = 0x1B,
};

struct VcpuState {
  CpuMode mode = CpuMode::kNonRoot;
  HwRing hw_ring = HwRing::kRing3;
  VirtRing virt_ring = VirtRing::kVRing3;

  std::uint64_t cr3 = 0;       // root frame of the active page table
  std::uint16_t pcid = 0;      // active PCID (low CR3 bits on hardware)
  std::uint16_t vpid = 0;      // VM identifier assigned by the hypervisor
  bool rflags_if = true;       // interrupt enable
  std::uint64_t idtr_base = 0;
  std::uint64_t rip = 0;

  std::unordered_map<std::uint32_t, std::uint64_t> msrs;

  std::uint64_t read_msr(MsrIndex index) const {
    auto it = msrs.find(static_cast<std::uint32_t>(index));
    return it == msrs.end() ? 0 : it->second;
  }
  void write_msr(MsrIndex index, std::uint64_t value) {
    msrs[static_cast<std::uint32_t>(index)] = value;
  }
};

}  // namespace pvm

#endif  // PVM_SRC_ARCH_CPU_STATE_H_
