// Page table entry encoding.
//
// The bit layout follows x86-64 where it matters to the reproduction:
// present/writable/user/accessed/dirty/global hardware bits, a 40-bit frame
// number at bits 12..51, NX at 63, and two software-available bits the
// hypervisors use (copy-on-write and shadow-write-protect markers, mirroring
// how KVM uses ignored PTE bits).

#ifndef PVM_SRC_ARCH_PTE_H_
#define PVM_SRC_ARCH_PTE_H_

#include <cstdint>

namespace pvm {

struct PteFlags {
  bool present = false;
  bool writable = false;
  bool user = false;
  bool accessed = false;
  bool dirty = false;
  bool global = false;
  bool no_execute = false;
  // Software bits (x86 bits 9-11 / 52-62 are software-available).
  bool cow = false;       // page is copy-on-write; write faults break the share
  bool shadow_wp = false;  // frame holds a guest page table; writes must trap

  static PteFlags rw_user() {
    PteFlags f;
    f.present = true;
    f.writable = true;
    f.user = true;
    return f;
  }
  static PteFlags ro_user() {
    PteFlags f;
    f.present = true;
    f.user = true;
    return f;
  }
  static PteFlags rw_kernel() {
    PteFlags f;
    f.present = true;
    f.writable = true;
    return f;
  }
};

class Pte {
 public:
  static constexpr std::uint64_t kPresent = 1ull << 0;
  static constexpr std::uint64_t kWritable = 1ull << 1;
  static constexpr std::uint64_t kUser = 1ull << 2;
  static constexpr std::uint64_t kAccessed = 1ull << 5;
  static constexpr std::uint64_t kDirty = 1ull << 6;
  static constexpr std::uint64_t kGlobal = 1ull << 8;
  static constexpr std::uint64_t kCow = 1ull << 9;        // software
  static constexpr std::uint64_t kShadowWp = 1ull << 10;  // software
  static constexpr std::uint64_t kNoExecute = 1ull << 63;
  static constexpr std::uint64_t kFrameMask = 0x000ffffffffff000ull;

  constexpr Pte() = default;
  constexpr explicit Pte(std::uint64_t raw) : raw_(raw) {}

  static Pte make(std::uint64_t frame_number, const PteFlags& flags) {
    std::uint64_t raw = (frame_number << 12) & kFrameMask;
    if (flags.present) raw |= kPresent;
    if (flags.writable) raw |= kWritable;
    if (flags.user) raw |= kUser;
    if (flags.accessed) raw |= kAccessed;
    if (flags.dirty) raw |= kDirty;
    if (flags.global) raw |= kGlobal;
    if (flags.cow) raw |= kCow;
    if (flags.shadow_wp) raw |= kShadowWp;
    if (flags.no_execute) raw |= kNoExecute;
    return Pte(raw);
  }

  constexpr std::uint64_t raw() const { return raw_; }
  constexpr bool present() const { return raw_ & kPresent; }
  constexpr bool writable() const { return raw_ & kWritable; }
  constexpr bool user() const { return raw_ & kUser; }
  constexpr bool accessed() const { return raw_ & kAccessed; }
  constexpr bool dirty() const { return raw_ & kDirty; }
  constexpr bool global() const { return raw_ & kGlobal; }
  constexpr bool cow() const { return raw_ & kCow; }
  constexpr bool shadow_wp() const { return raw_ & kShadowWp; }
  constexpr bool no_execute() const { return raw_ & kNoExecute; }
  constexpr std::uint64_t frame_number() const { return (raw_ & kFrameMask) >> 12; }

  void set_accessed() { raw_ |= kAccessed; }
  void set_dirty() { raw_ |= kDirty; }
  void set_writable(bool writable) {
    raw_ = writable ? (raw_ | kWritable) : (raw_ & ~kWritable);
  }
  void set_cow(bool cow) { raw_ = cow ? (raw_ | kCow) : (raw_ & ~kCow); }
  void set_shadow_wp(bool wp) { raw_ = wp ? (raw_ | kShadowWp) : (raw_ & ~kShadowWp); }

  PteFlags flags() const {
    PteFlags f;
    f.present = present();
    f.writable = writable();
    f.user = user();
    f.accessed = accessed();
    f.dirty = dirty();
    f.global = global();
    f.cow = cow();
    f.shadow_wp = shadow_wp();
    f.no_execute = no_execute();
    return f;
  }

  constexpr bool operator==(const Pte&) const = default;

 private:
  std::uint64_t raw_ = 0;
};

}  // namespace pvm

#endif  // PVM_SRC_ARCH_PTE_H_
