#include "src/arch/page_table.h"

namespace pvm {

struct PageTable::Node {
  std::uint64_t frame = 0;
  int level = 0;  // 4 = root (PML4) ... 1 = leaf page table
  std::array<Pte, kEntriesPerNode> entries{};
  std::array<std::unique_ptr<Node>, kEntriesPerNode> children;
};

PageTable::PageTable(std::string name, FrameAllocator* allocator)
    : name_(std::move(name)), allocator_(allocator) {
  root_ = std::make_unique<Node>();
  root_->level = kPageTableLevels;
  root_->frame = allocator_ ? allocator_->allocate_or_throw() : synthetic_next_frame_++;
  owned_frames_.insert(root_->frame);
  node_count_ = 1;
}

PageTable::~PageTable() {
  if (root_) {
    release_node_frames(*root_);
  }
}

void PageTable::release_node_frames(Node& node) {
  for (auto& child : node.children) {
    if (child) {
      release_node_frames(*child);
    }
  }
  if (allocator_) {
    allocator_->free(node.frame);
  }
}

std::uint64_t PageTable::root_frame() const { return root_->frame; }

PageTable::Node* PageTable::ensure_child(Node& parent, std::uint64_t index, MapResult& result) {
  if (!parent.children[index]) {
    auto child = std::make_unique<Node>();
    child->level = parent.level - 1;
    child->frame = allocator_ ? allocator_->allocate_or_throw() : synthetic_next_frame_++;
    owned_frames_.insert(child->frame);
    ++node_count_;
    ++result.nodes_allocated;
    // Installing the child's frame into the parent entry is a PTE store.
    parent.entries[index] = Pte::make(child->frame, PteFlags::rw_user());
    ++result.entries_written;
    result.touched_table_frames.push_back(parent.frame);
    parent.children[index] = std::move(child);
  }
  return parent.children[index].get();
}

const PageTable::Node* PageTable::child_at(const Node& parent, std::uint64_t index) const {
  return parent.children[index].get();
}

MapResult PageTable::map(std::uint64_t va, std::uint64_t frame_number, const PteFlags& flags) {
  MapResult result;
  Node* node = root_.get();
  for (int level = kPageTableLevels; level > 1; --level) {
    node = ensure_child(*node, table_index(va, level), result);
  }
  const std::uint64_t leaf_index = table_index(va, 1);
  Pte& leaf = node->entries[leaf_index];
  if (leaf.present()) {
    result.replaced = true;
  } else {
    ++leaf_count_;
  }
  leaf = Pte::make(frame_number, flags);
  ++result.entries_written;
  result.touched_table_frames.push_back(node->frame);
  return result;
}

WalkResult PageTable::walk(std::uint64_t va, AccessType access, bool user_mode) const {
  WalkResult result;
  const Node* node = root_.get();
  for (int level = kPageTableLevels; level > 1; --level) {
    result.node_frames[result.levels_walked] = node->frame;
    ++result.levels_walked;
    const std::uint64_t index = table_index(va, level);
    if (!node->entries[index].present() || !node->children[index]) {
      result.missing_level = level;
      return result;
    }
    node = node->children[index].get();
  }
  result.node_frames[result.levels_walked] = node->frame;
  ++result.levels_walked;
  const Pte& leaf = node->entries[table_index(va, 1)];
  if (!leaf.present()) {
    result.missing_level = 1;
    return result;
  }
  result.present = true;
  result.pte = leaf;
  bool ok = true;
  if (access == AccessType::kWrite && !leaf.writable()) {
    ok = false;
  }
  if (user_mode && !leaf.user()) {
    ok = false;
  }
  if (access == AccessType::kExecute && leaf.no_execute()) {
    ok = false;
  }
  result.permission_ok = ok;
  return result;
}

bool PageTable::unmap(std::uint64_t va) {
  Pte* leaf = find_pte(va);
  if (leaf == nullptr || !leaf->present()) {
    return false;
  }
  *leaf = Pte();
  --leaf_count_;
  return true;
}

Pte* PageTable::find_pte(std::uint64_t va) {
  Node* node = root_.get();
  for (int level = kPageTableLevels; level > 1; --level) {
    const std::uint64_t index = table_index(va, level);
    if (!node->children[index]) {
      return nullptr;
    }
    node = node->children[index].get();
  }
  return &node->entries[table_index(va, 1)];
}

const Pte* PageTable::find_pte(std::uint64_t va) const {
  const Node* node = root_.get();
  for (int level = kPageTableLevels; level > 1; --level) {
    const std::uint64_t index = table_index(va, level);
    if (!node->children[index]) {
      return nullptr;
    }
    node = node->children[index].get();
  }
  return &node->entries[table_index(va, 1)];
}

bool PageTable::update_pte(std::uint64_t va, const std::function<void(Pte&)>& mutate,
                           std::uint64_t* touched_table_frame) {
  Node* node = root_.get();
  for (int level = kPageTableLevels; level > 1; --level) {
    const std::uint64_t index = table_index(va, level);
    if (!node->children[index]) {
      return false;
    }
    node = node->children[index].get();
  }
  Pte& leaf = node->entries[table_index(va, 1)];
  const bool was_present = leaf.present();
  mutate(leaf);
  if (was_present && !leaf.present()) {
    --leaf_count_;
  } else if (!was_present && leaf.present()) {
    ++leaf_count_;
  }
  if (touched_table_frame != nullptr) {
    *touched_table_frame = node->frame;
  }
  return true;
}

void PageTable::for_each_leaf(
    const std::function<void(std::uint64_t va, const Pte& pte)>& fn) const {
  // Recursive descent, accumulating the virtual address prefix.
  struct Walker {
    const std::function<void(std::uint64_t, const Pte&)>& fn;

    void visit(const Node& node, std::uint64_t prefix) const {
      const int shift = kPageShift + 9 * (node.level - 1);
      for (std::uint64_t i = 0; i < kEntriesPerNode; ++i) {
        if (node.level == 1) {
          if (node.entries[i].present()) {
            fn(prefix | (i << shift), node.entries[i]);
          }
        } else if (node.children[i]) {
          visit(*node.children[i], prefix | (i << shift));
        }
      }
    }
  };
  Walker{fn}.visit(*root_, 0);
}

void PageTable::clear() {
  for (auto& child : root_->children) {
    if (child) {
      release_node_frames(*child);
      child.reset();
    }
  }
  // Rebuild bookkeeping: only the root remains.
  owned_frames_.clear();
  owned_frames_.insert(root_->frame);
  root_->entries.fill(Pte());
  node_count_ = 1;
  leaf_count_ = 0;
}

bool PageTable::owns_table_frame(std::uint64_t frame) const {
  return owned_frames_.count(frame) > 0;
}

}  // namespace pvm
