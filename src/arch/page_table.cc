#include "src/arch/page_table.h"

#include <utility>

namespace pvm {

PageTable::PageTable(std::string name, FrameAllocator* allocator)
    : name_(std::move(name)), allocator_(allocator) {
  root_ = node_slab_.acquire();
  root_->level = kPageTableLevels;
  root_->frame = allocator_ ? allocator_->allocate_or_throw() : synthetic_next_frame_++;
  owned_frames_.insert(root_->frame);
  node_count_ = 1;
}

PageTable::~PageTable() {
  // Node memory is returned wholesale by the slab; only backing frames need
  // the recursive walk, and only when a FrameAllocator is attached.
  if (root_ != nullptr && allocator_ != nullptr) {
    release_node_frames(*root_);
  }
}

PageTable::PageTable(PageTable&& other) noexcept
    : name_(std::move(other.name_)),
      allocator_(other.allocator_),
      node_slab_(std::move(other.node_slab_)),
      root_(other.root_),
      synthetic_next_frame_(other.synthetic_next_frame_),
      node_count_(other.node_count_),
      leaf_count_(other.leaf_count_),
      owned_frames_(std::move(other.owned_frames_)) {
  other.root_ = nullptr;
  other.allocator_ = nullptr;
  other.node_count_ = 0;
  other.leaf_count_ = 0;
  other.owned_frames_.clear();
}

PageTable& PageTable::operator=(PageTable&& other) noexcept {
  if (this != &other) {
    // Swap wholesale: our previous state rides out in `other` and is torn
    // down by its destructor (frames released there, slabs freed there).
    std::swap(name_, other.name_);
    std::swap(allocator_, other.allocator_);
    std::swap(node_slab_, other.node_slab_);
    std::swap(root_, other.root_);
    std::swap(synthetic_next_frame_, other.synthetic_next_frame_);
    std::swap(node_count_, other.node_count_);
    std::swap(leaf_count_, other.leaf_count_);
    std::swap(owned_frames_, other.owned_frames_);
  }
  return *this;
}

void PageTable::release_node_frames(Node& node) {
  for (Node* child : node.children) {
    if (child != nullptr) {
      release_node_frames(*child);
    }
  }
  if (allocator_) {
    allocator_->free(node.frame);
  }
}

void PageTable::destroy_subtree(Node* node) {
  for (Node* child : node->children) {
    if (child != nullptr) {
      destroy_subtree(child);
    }
  }
  if (allocator_) {
    allocator_->free(node->frame);
  }
  node_slab_.release(node);
}

std::uint64_t PageTable::root_frame() const { return root_->frame; }

PageTable::Node* PageTable::ensure_child(Node& parent, std::uint64_t index, MapResult& result) {
  if (!parent.children[index]) {
    Node* child = node_slab_.acquire();
    child->level = parent.level - 1;
    child->frame = allocator_ ? allocator_->allocate_or_throw() : synthetic_next_frame_++;
    owned_frames_.insert(child->frame);
    ++node_count_;
    ++result.nodes_allocated;
    // Installing the child's frame into the parent entry is a PTE store.
    parent.entries[index] = Pte::make(child->frame, PteFlags::rw_user());
    ++result.entries_written;
    result.touched_table_frames.push_back(parent.frame);
    parent.children[index] = child;
  }
  return parent.children[index];
}

const PageTable::Node* PageTable::child_at(const Node& parent, std::uint64_t index) const {
  return parent.children[index];
}

MapResult PageTable::map(std::uint64_t va, std::uint64_t frame_number, const PteFlags& flags) {
  MapResult result;
  Node* node = root_;
  for (int level = kPageTableLevels; level > 1; --level) {
    node = ensure_child(*node, table_index(va, level), result);
  }
  const std::uint64_t leaf_index = table_index(va, 1);
  Pte& leaf = node->entries[leaf_index];
  if (leaf.present()) {
    result.replaced = true;
  } else {
    ++leaf_count_;
  }
  leaf = Pte::make(frame_number, flags);
  ++result.entries_written;
  result.touched_table_frames.push_back(node->frame);
  return result;
}

WalkResult PageTable::walk(std::uint64_t va, AccessType access, bool user_mode) const {
  WalkResult result;
  const Node* node = root_;
  for (int level = kPageTableLevels; level > 1; --level) {
    result.node_frames[result.levels_walked] = node->frame;
    ++result.levels_walked;
    const std::uint64_t index = table_index(va, level);
    if (!node->entries[index].present() || !node->children[index]) {
      result.missing_level = level;
      return result;
    }
    node = node->children[index];
  }
  result.node_frames[result.levels_walked] = node->frame;
  ++result.levels_walked;
  const Pte& leaf = node->entries[table_index(va, 1)];
  if (!leaf.present()) {
    result.missing_level = 1;
    return result;
  }
  result.present = true;
  result.pte = leaf;
  bool ok = true;
  if (access == AccessType::kWrite && !leaf.writable()) {
    ok = false;
  }
  if (user_mode && !leaf.user()) {
    ok = false;
  }
  if (access == AccessType::kExecute && leaf.no_execute()) {
    ok = false;
  }
  result.permission_ok = ok;
  return result;
}

bool PageTable::unmap(std::uint64_t va) {
  Pte* leaf = find_pte(va);
  if (leaf == nullptr || !leaf->present()) {
    return false;
  }
  *leaf = Pte();
  --leaf_count_;
  return true;
}

Pte* PageTable::find_pte(std::uint64_t va) {
  Node* node = root_;
  for (int level = kPageTableLevels; level > 1; --level) {
    const std::uint64_t index = table_index(va, level);
    if (!node->children[index]) {
      return nullptr;
    }
    node = node->children[index];
  }
  return &node->entries[table_index(va, 1)];
}

const Pte* PageTable::find_pte(std::uint64_t va) const {
  const Node* node = root_;
  for (int level = kPageTableLevels; level > 1; --level) {
    const std::uint64_t index = table_index(va, level);
    if (!node->children[index]) {
      return nullptr;
    }
    node = node->children[index];
  }
  return &node->entries[table_index(va, 1)];
}

bool PageTable::update_pte(std::uint64_t va, const std::function<void(Pte&)>& mutate,
                           std::uint64_t* touched_table_frame) {
  Node* node = root_;
  for (int level = kPageTableLevels; level > 1; --level) {
    const std::uint64_t index = table_index(va, level);
    if (!node->children[index]) {
      return false;
    }
    node = node->children[index];
  }
  Pte& leaf = node->entries[table_index(va, 1)];
  const bool was_present = leaf.present();
  mutate(leaf);
  if (was_present && !leaf.present()) {
    --leaf_count_;
  } else if (!was_present && leaf.present()) {
    ++leaf_count_;
  }
  if (touched_table_frame != nullptr) {
    *touched_table_frame = node->frame;
  }
  return true;
}

void PageTable::for_each_leaf(
    const std::function<void(std::uint64_t va, const Pte& pte)>& fn) const {
  // Recursive descent, accumulating the virtual address prefix.
  struct Walker {
    const std::function<void(std::uint64_t, const Pte&)>& fn;

    void visit(const Node& node, std::uint64_t prefix) const {
      const int shift = kPageShift + 9 * (node.level - 1);
      for (std::uint64_t i = 0; i < kEntriesPerNode; ++i) {
        if (node.level == 1) {
          if (node.entries[i].present()) {
            fn(prefix | (i << shift), node.entries[i]);
          }
        } else if (node.children[i]) {
          visit(*node.children[i], prefix | (i << shift));
        }
      }
    }
  };
  Walker{fn}.visit(*root_, 0);
}

void PageTable::clear() {
  for (Node*& child : root_->children) {
    if (child != nullptr) {
      // Subtree slots go back to the slab's free list so the next build
      // cycle (shadow-table rebuilds do this constantly) reuses them.
      destroy_subtree(child);
      child = nullptr;
    }
  }
  // Rebuild bookkeeping: only the root remains.
  owned_frames_.clear();
  owned_frames_.insert(root_->frame);
  root_->entries.fill(Pte());
  node_count_ = 1;
  leaf_count_ = 0;
}

bool PageTable::owns_table_frame(std::uint64_t frame) const {
  return owned_frames_.count(frame) > 0;
}

}  // namespace pvm
