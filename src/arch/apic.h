// Virtual local APIC (paper §3.3.3: "PVM reuses the interrupt controller
// (APIC) virtualization in KVM to convert the interrupt to a virtual
// interrupt and injects it back to the L2 guest").
//
// Models the pieces interrupt delivery depends on: the 256-bit IRR (requests
// raised), ISR (in service), priority resolution by vector class, and EOI.

#ifndef PVM_SRC_ARCH_APIC_H_
#define PVM_SRC_ARCH_APIC_H_

#include <array>
#include <bit>
#include <cstdint>
#include <optional>

namespace pvm {

class VirtualApic {
 public:
  static constexpr int kVectorCount = 256;
  // Vectors below 32 are exceptions, not external interrupts.
  static constexpr std::uint8_t kFirstExternalVector = 32;

  // Raises an interrupt request (sets IRR). Re-raising a pending vector is
  // idempotent, as on hardware. Returns false for exception vectors.
  bool raise(std::uint8_t vector) {
    if (vector < kFirstExternalVector) {
      return false;
    }
    set_bit(irr_, vector);
    return true;
  }

  // The highest-priority deliverable vector: the top IRR bit whose priority
  // class exceeds the current in-service class (or any, if ISR is empty).
  std::optional<std::uint8_t> highest_pending() const {
    const int top_irr = highest_bit(irr_);
    if (top_irr < 0) {
      return std::nullopt;
    }
    const int top_isr = highest_bit(isr_);
    if (top_isr >= 0 && (top_irr >> 4) <= (top_isr >> 4)) {
      return std::nullopt;  // masked by the in-service priority class
    }
    return static_cast<std::uint8_t>(top_irr);
  }

  // Accepts the interrupt for delivery: IRR bit moves to ISR.
  std::optional<std::uint8_t> accept() {
    const auto vector = highest_pending();
    if (!vector) {
      return std::nullopt;
    }
    clear_bit(irr_, *vector);
    set_bit(isr_, *vector);
    return vector;
  }

  // End of interrupt: retires the highest in-service vector.
  void eoi() {
    const int top = highest_bit(isr_);
    if (top >= 0) {
      clear_bit(isr_, static_cast<std::uint8_t>(top));
    }
  }

  bool irr_test(std::uint8_t vector) const { return test_bit(irr_, vector); }
  bool isr_test(std::uint8_t vector) const { return test_bit(isr_, vector); }

  int pending_count() const { return popcount(irr_); }
  int in_service_count() const { return popcount(isr_); }

 private:
  using Bitmap = std::array<std::uint64_t, 4>;

  static void set_bit(Bitmap& bits, std::uint8_t vector) {
    bits[vector / 64] |= 1ull << (vector % 64);
  }
  static void clear_bit(Bitmap& bits, std::uint8_t vector) {
    bits[vector / 64] &= ~(1ull << (vector % 64));
  }
  static bool test_bit(const Bitmap& bits, std::uint8_t vector) {
    return (bits[vector / 64] >> (vector % 64)) & 1;
  }
  static int highest_bit(const Bitmap& bits) {
    for (int word = 3; word >= 0; --word) {
      if (bits[static_cast<std::size_t>(word)] != 0) {
        return word * 64 + 63 -
               std::countl_zero(bits[static_cast<std::size_t>(word)]);
      }
    }
    return -1;
  }
  static int popcount(const Bitmap& bits) {
    int count = 0;
    for (const std::uint64_t word : bits) {
      count += std::popcount(word);
    }
    return count;
  }

  Bitmap irr_{};
  Bitmap isr_{};
};

}  // namespace pvm

#endif  // PVM_SRC_ARCH_APIC_H_
