// Physical frame allocation for one address space level.
//
// Every level of the virtualization stack owns frames in *its* physical space:
// L0 hands HPA frames to VMs, the L1 guest kernel hands GPA_L1 frames to L2
// guests, the L2 guest kernel hands GPA_L2 frames to processes. Page-table
// pages themselves also consume frames, which is what makes guest page tables
// write-protectable at frame granularity.

#ifndef PVM_SRC_ARCH_PHYSICAL_MEMORY_H_
#define PVM_SRC_ARCH_PHYSICAL_MEMORY_H_

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/arch/addresses.h"
#include "src/fault/fault.h"

namespace pvm {

class FrameAllocator {
 public:
  FrameAllocator(std::string name, std::uint64_t frame_count)
      : name_(std::move(name)), capacity_(frame_count) {}

  // Allocates one frame; returns its frame number, or nullopt when exhausted
  // (or when an attached fault injector refuses the allocation: an injected
  // occupancy ceiling or transient pressure looks exactly like exhaustion to
  // the caller, so the recovery paths exercised are the real ones).
  //
  // Fresh frames are preferred over recycling the free list: a streaming
  // guest (buddy allocator churn across many CPUs) keeps touching new
  // physical memory rather than immediately reusing what it just freed.
  // This is what keeps first-touch EPT violations flowing throughout the
  // paper's allocate/release microbenchmark (Figs. 4 & 10) instead of being
  // amortized after the first chunk.
  std::optional<std::uint64_t> allocate() {
    if (faults_ != nullptr && faults_->frame_alloc_blocked(name_, allocated_)) {
      return std::nullopt;
    }
    if (next_fresh_ < capacity_) {
      ++allocated_;
      return next_fresh_++;
    }
    if (!free_list_.empty()) {
      std::uint64_t frame = free_list_.back();
      free_list_.pop_back();
      ++allocated_;
      return frame;
    }
    return std::nullopt;
  }

  // Allocates or throws; used where exhaustion indicates a configuration bug
  // (page-table table pages, boot-time reserves). Deliberately bypasses the
  // fault injector: these sites have no recovery protocol, so injecting into
  // them would abort the simulator rather than exercise graceful paths.
  std::uint64_t allocate_or_throw() {
    if (next_fresh_ < capacity_) {
      ++allocated_;
      return next_fresh_++;
    }
    if (!free_list_.empty()) {
      std::uint64_t frame = free_list_.back();
      free_list_.pop_back();
      ++allocated_;
      return frame;
    }
    throw std::runtime_error("FrameAllocator '" + name_ + "' exhausted (capacity " +
                             std::to_string(capacity_) + " frames)");
  }

  void free(std::uint64_t frame) {
    free_list_.push_back(frame);
    --allocated_;
  }

  const std::string& name() const { return name_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t allocated() const { return allocated_; }
  std::uint64_t available() const { return capacity_ - allocated_; }

  // Attaches (or detaches, with nullptr) a fault injector to allocate().
  void set_faults(fault::FaultInjector* faults) { faults_ = faults; }

 private:
  std::string name_;
  std::uint64_t capacity_;
  std::uint64_t next_fresh_ = 0;
  std::uint64_t allocated_ = 0;
  std::vector<std::uint64_t> free_list_;
  fault::FaultInjector* faults_ = nullptr;
};

}  // namespace pvm

#endif  // PVM_SRC_ARCH_PHYSICAL_MEMORY_H_
