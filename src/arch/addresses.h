// Address types for the simulated x86-64 machine.
//
// Three physical address spaces exist in 2-level nested virtualization:
//   GVA_L2 --GPT2--> GPA_L2 --GPT1/EPT12--> GPA_L1 --EPT01--> HPA
// Strong types keep translations honest at module boundaries; the page-table
// code itself operates on raw 64-bit values (documented at each call site).

#ifndef PVM_SRC_ARCH_ADDRESSES_H_
#define PVM_SRC_ARCH_ADDRESSES_H_

#include <compare>
#include <cstdint>

namespace pvm {

inline constexpr std::uint64_t kPageShift = 12;
inline constexpr std::uint64_t kPageSize = 1ull << kPageShift;  // 4 KiB
inline constexpr std::uint64_t kPageMask = kPageSize - 1;

// 4-level radix tree: 9 bits per level, 48-bit canonical addresses.
inline constexpr int kPageTableLevels = 4;
inline constexpr std::uint64_t kEntriesPerNode = 512;
inline constexpr std::uint64_t kIndexMask = kEntriesPerNode - 1;

constexpr std::uint64_t page_number(std::uint64_t address) { return address >> kPageShift; }
constexpr std::uint64_t page_base(std::uint64_t address) { return address & ~kPageMask; }
constexpr std::uint64_t page_offset(std::uint64_t address) { return address & kPageMask; }

// Index into the level-`level` node for `address`; level 4 = root (PML4),
// level 1 = leaf page table.
constexpr std::uint64_t table_index(std::uint64_t address, int level) {
  return (address >> (kPageShift + 9 * (level - 1))) & kIndexMask;
}

template <typename Tag>
struct Address {
  std::uint64_t raw = 0;

  constexpr Address() = default;
  constexpr explicit Address(std::uint64_t value) : raw(value) {}

  constexpr std::uint64_t value() const { return raw; }
  constexpr std::uint64_t page() const { return page_number(raw); }
  constexpr std::uint64_t offset() const { return page_offset(raw); }
  constexpr Address base() const { return Address(page_base(raw)); }
  constexpr Address operator+(std::uint64_t delta) const { return Address(raw + delta); }

  auto operator<=>(const Address&) const = default;
};

// Guest virtual address as seen by the innermost guest's user/kernel code.
using Gva = Address<struct GvaTag>;
// Guest physical address of the innermost guest (GPA_L2 in nested setups).
using Gpa = Address<struct GpaTag>;
// Physical address of the L1 VM (GPA_L1); identical to Hpa in bare-metal runs.
using L1Pa = Address<struct L1PaTag>;
// Host (L0) physical address.
using Hpa = Address<struct HpaTag>;

}  // namespace pvm

#endif  // PVM_SRC_ARCH_ADDRESSES_H_
