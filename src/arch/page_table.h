// 4-level radix page table.
//
// One class serves every table in the stack — GPT2 (GVA->GPA_L2), GPT1 and
// EPT12 (GPA_L2->GPA_L1), EPT01/EPT02 (->HPA), and the shadow tables SPT12 —
// because they all share the x86-64 4-level structure. Addresses are raw
// 64-bit values here; callers apply the strong types of addresses.h.
//
// Table pages consume frames from the owning space's FrameAllocator, so guest
// page tables are write-protectable at frame granularity and `MapResult`
// reports exactly which table frames each operation stored into — the unit at
// which shadow-paging write-protect traps fire (paper §3.3.2: an n-level GPT
// update costs n trap rounds).

#ifndef PVM_SRC_ARCH_PAGE_TABLE_H_
#define PVM_SRC_ARCH_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/arch/addresses.h"
#include "src/arch/physical_memory.h"
#include "src/arch/pte.h"
#include "src/sim/arena.h"

namespace pvm {

enum class AccessType { kRead, kWrite, kExecute };

struct MapResult {
  int nodes_allocated = 0;  // new table pages created for this mapping
  int entries_written = 0;  // PTE stores performed (1..kPageTableLevels)
  bool replaced = false;    // an existing present mapping was overwritten
  // Frames of the table pages written to, leaf last. Shadow configurations
  // use these to decide which stores hit write-protected frames.
  std::vector<std::uint64_t> touched_table_frames;
};

struct WalkResult {
  bool present = false;        // complete translation exists
  bool permission_ok = false;  // and permits the requested access
  Pte pte;                     // leaf PTE when present
  int levels_walked = 0;       // table loads performed (cost model input)
  int missing_level = 0;       // level whose entry was absent (0 if none)
  // Frames of the table pages loaded during the walk, root first. In a
  // 2-dimensional walk each of these loads itself requires an EPT lookup.
  std::array<std::uint64_t, kPageTableLevels> node_frames{};
};

class PageTable {
 public:
  // `allocator` provides frames for table pages; may be null for tables whose
  // backing frames are irrelevant (synthetic ids are used instead).
  PageTable(std::string name, FrameAllocator* allocator);
  ~PageTable();
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;
  // Moves transfer the node slab wholesale; node pointers stay valid because
  // slabs live on the heap, not inside the PageTable object.
  PageTable(PageTable&& other) noexcept;
  PageTable& operator=(PageTable&& other) noexcept;

  // Installs va -> frame with `flags`, creating intermediate nodes as needed.
  MapResult map(std::uint64_t va, std::uint64_t frame_number, const PteFlags& flags);

  // Walks the tree checking permissions for `access` performed from
  // user (`user_mode`=true) or supervisor mode.
  WalkResult walk(std::uint64_t va, AccessType access, bool user_mode) const;

  // Removes the leaf mapping. Returns true if one existed. Intermediate nodes
  // are retained (as on real kernels, which free them lazily if at all).
  bool unmap(std::uint64_t va);

  // Pointer to the leaf PTE for va, or nullptr if the chain is incomplete.
  Pte* find_pte(std::uint64_t va);
  const Pte* find_pte(std::uint64_t va) const;

  // Applies `mutate` to the leaf PTE if it exists; returns true on success.
  // Reports the store into the leaf's table frame like map() does.
  bool update_pte(std::uint64_t va, const std::function<void(Pte&)>& mutate,
                  std::uint64_t* touched_table_frame = nullptr);

  // Visits every present leaf as (va, pte).
  void for_each_leaf(const std::function<void(std::uint64_t va, const Pte& pte)>& fn) const;

  // Drops every mapping and every node except the root.
  void clear();

  const std::string& name() const { return name_; }
  std::uint64_t root_frame() const;
  std::uint64_t node_count() const { return node_count_; }
  std::uint64_t present_leaf_count() const { return leaf_count_; }

  // True if `frame` backs one of this table's nodes (i.e. the frame holds
  // page-table data). Used by shadow paging to classify write faults.
  bool owns_table_frame(std::uint64_t frame) const;

  // Node-allocation accounting: table pages are slab-allocated per table
  // (arena-per-owner), so node churn — shadow-table teardown/rebuild cycles
  // in particular — recycles slots instead of hitting the heap. Feeds the
  // opt-in `alloc` section of the bench export.
  const SlabStats& node_alloc_stats() const { return node_slab_.stats(); }

 private:
  // One table page: 512 PTEs plus the child pointers that mirror them.
  // Trivially destructible by design — the owning slab frees all node memory
  // wholesale in ~PageTable with no per-node walk (frames still need a walk,
  // but only when a FrameAllocator is attached).
  struct Node {
    std::uint64_t frame = 0;
    int level = 0;  // 4 = root (PML4) ... 1 = leaf page table
    std::array<Pte, kEntriesPerNode> entries{};
    std::array<Node*, kEntriesPerNode> children{};
  };

  Node* ensure_child(Node& parent, std::uint64_t index, MapResult& result);
  const Node* child_at(const Node& parent, std::uint64_t index) const;
  void release_node_frames(Node& node);
  void destroy_subtree(Node* node);

  std::string name_;
  FrameAllocator* allocator_;
  // First slab holds 8 nodes (~64 KiB): a 4-level table mapping one small
  // region needs 4; doubling reaches steady state within a few faults.
  SlabAllocator<Node> node_slab_{8};
  Node* root_ = nullptr;
  std::uint64_t synthetic_next_frame_ = 1ull << 40;  // out-of-band ids w/o allocator
  std::uint64_t node_count_ = 0;
  std::uint64_t leaf_count_ = 0;
  std::unordered_set<std::uint64_t> owned_frames_;
};

}  // namespace pvm

#endif  // PVM_SRC_ARCH_PAGE_TABLE_H_
