#include "src/hv/dirty_tracker.h"

#include "src/wal/wal.h"

namespace pvm {

DirtyStoreOutcome DirtyTracker::note_store(int vcpu_id, std::uint64_t page_key) {
  if (!armed_) {
    return DirtyStoreOutcome::kClean;
  }
  if (!dirty_.insert(page_key).second) {
    // Already dirty this round: the page is unprotected (WP) or its dirty
    // bit is set (PML); the store proceeds at full speed.
    return DirtyStoreOutcome::kClean;
  }
  if (wal_ != nullptr) {
    std::string payload;
    wal::put_u64(payload, page_key);
    wal_->append(wal::RecordType::kDirtyPage, payload);
  }
  if (protocol_ == DirtyProtocol::kWriteProtect) {
    ++wp_faults_;
    return DirtyStoreOutcome::kWpFault;
  }
  ++pml_appends_;
  std::size_t& buffered = pml_buffers_[vcpu_id];
  if (++buffered >= kPmlBufferEntries) {
    buffered = 0;
    ++pml_flushes_;
    return DirtyStoreOutcome::kPmlFlush;
  }
  return DirtyStoreOutcome::kPmlAppend;
}

std::vector<std::uint64_t> DirtyTracker::collect_round() {
  // Partial PML buffers drain here for free: the hypervisor reads them
  // while the vCPUs are already stopped at the round boundary.
  pml_buffers_.clear();
  std::vector<std::uint64_t> pages(dirty_.begin(), dirty_.end());
  dirty_.clear();
  ++round_;
  if (wal_ != nullptr) {
    std::string payload;
    wal::put_u64(payload, round_);
    wal_->append(wal::RecordType::kRoundBegin, payload);
  }
  return pages;
}

}  // namespace pvm
