// The L0 host hypervisor (an unmodified KVM in the paper's terms).
//
// Owns host physical memory, one EPT (EPT01) per hosted VM, and the VMX
// transition protocol. For hardware-assisted nested virtualization it also
// implements what KVM's nVMX does: forwarding L2 exits to the L1 hypervisor,
// emulating L1's VM entries, shadowing VMCS12, write-protecting EPT12, and
// maintaining the compressed EPT02.
//
// PVM's whole point is to need *nothing* from this class beyond create_vm(),
// the warm EPT01, and interrupt injection — the tests assert exactly that by
// counting kL0Exit.

#ifndef PVM_SRC_HV_HOST_HYPERVISOR_H_
#define PVM_SRC_HV_HOST_HYPERVISOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/arch/cost_model.h"
#include "src/arch/page_table.h"
#include "src/arch/physical_memory.h"
#include "src/hv/dirty_tracker.h"
#include "src/hv/vmcs.h"
#include "src/metrics/counters.h"
#include "src/sim/resource.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"
#include "src/trace/trace.h"

namespace pvm {

// Why a guest exited; selects the L0 handler cost.
enum class ExitKind {
  kHypercall,
  kException,
  kMsrAccess,
  kCpuid,
  kPortIo,
  kIoKick,
  kInterrupt,
  kCr3Write,
  kEptViolation,
  kHalt,
};

class HostHypervisor {
 public:
  // A VM hosted directly by L0: a container VM in bare-metal deployments, or
  // the single L1 "general-purpose instance" in nested deployments.
  class Vm {
   public:
    Vm(Simulation& sim, std::string name, std::uint16_t vpid, std::uint64_t gpa_frame_count)
        : name_(std::move(name)),
          vpid_(vpid),
          gpa_frames_(name_ + ".gpa", gpa_frame_count),
          ept_(name_ + ".ept01", nullptr),
          mmu_lock_(sim, name_ + ".l0_mmu_lock") {}

    const std::string& name() const { return name_; }
    std::uint16_t vpid() const { return vpid_; }
    // The VM's guest-physical space; its guest kernel allocates from here.
    FrameAllocator& gpa_frames() { return gpa_frames_; }
    // EPT01: VM guest-physical -> host-physical, maintained by L0.
    PageTable& ept() { return ept_; }
    const PageTable& ept() const { return ept_; }
    // KVM's per-VM mmu_lock at L0: serializes all L0-side page-table work
    // for this VM (including, crucially, EPT02 shadow updates for every L2
    // guest nested inside it).
    Resource& mmu_lock() { return mmu_lock_; }

    // A "warm" VM's EPT01 is considered fully established (§4: long-running
    // L1 instances). Missing leaves are then filled silently and free of
    // charge instead of through the violation protocol.
    bool warm() const { return warm_; }
    void set_warm(bool warm) { warm_ = warm; }

    // Set once the VM uses nested VMX (it hosts hardware-assisted L2
    // guests): from then on L0 cannot migrate/save/load it (§2.3). PVM
    // never sets this — its L1 stays an ordinary, migratable VM.
    bool nested_vmx_active() const { return nested_vmx_active_; }
    void set_nested_vmx_active(bool active) { nested_vmx_active_ = active; }

    // Migration dirty tracking. Owned by value so backend pointers into it
    // stay valid for the VM's lifetime; disarmed (free) outside migrations.
    DirtyTracker& dirty_tracker() { return dirty_tracker_; }

   private:
    std::string name_;
    std::uint16_t vpid_;
    FrameAllocator gpa_frames_;
    PageTable ept_;
    Resource mmu_lock_;
    bool warm_ = false;
    bool nested_vmx_active_ = false;
    DirtyTracker dirty_tracker_;
  };

  HostHypervisor(Simulation& sim, const CostModel& costs, CounterSet& counters, TraceLog& trace,
                 std::uint64_t host_frame_count);

  // Creates a VM with `gpa_frame_count` frames of guest-physical memory.
  // When `prewarm_ept` is set, EPT01 is fully populated up front (the paper's
  // warm-L1 assumption for nested runs).
  Vm& create_vm(const std::string& name, std::uint64_t gpa_frame_count, bool prewarm_ept);

  FrameAllocator& host_frames() { return host_frames_; }
  Simulation& sim() { return *sim_; }
  const CostModel& costs() const { return *costs_; }
  CounterSet& counters() { return *counters_; }
  TraceLog& trace() { return *trace_; }

  // ---- Single-level protocol steps ----

  // Hardware VM exit into L0, handler for `kind`, VM entry back. The round
  // trip Table 1 measures for kvm (BM).
  Task<void> exit_roundtrip(Vm& vm, ExitKind kind);

  // Split exit/entry, for handlers whose body runs caller-side code (e.g.
  // shadow-table fills under engine locks).
  Task<void> begin_exit(Vm& vm);
  Task<void> finish_entry(Vm& vm);

  // EPT violation service: exit, allocate a host frame and install the
  // EPT01 leaf under the VM's mmu_lock, entry.
  Task<void> handle_ept_violation(Vm& vm, std::uint64_t gpa);

  // Installs one EPT01 leaf (no transition costs; caller is already in L0
  // context). Takes the VM's mmu_lock.
  Task<void> fill_ept(Vm& vm, std::uint64_t gpa);

  // Makes sure `gpa` is backed in EPT01. Warm VMs fill silently (zero
  // virtual time, no exit); cold VMs run the full violation protocol.
  Task<void> ensure_backed(Vm& vm, std::uint64_t gpa);

  // Injects an external interrupt into a running VM: one exit round trip
  // plus APIC virtualization work.
  Task<void> inject_interrupt(Vm& vm);

  // ---- Nested (VMX emulation) protocol steps, used by kvm-on-kvm ----

  // Per-L2-vCPU VMCS triple maintained across L0 (vmcs01, vmcs02) and L1
  // (vmcs12, shadowed).
  struct NestedVcpu {
    Vmcs vmcs01;
    Vmcs vmcs12;
    Vmcs vmcs02;
    bool vmcs_shadowing = true;
  };

  // L2 exits; L0 decodes, reflects the exit into VMCS12 and enters L1 so the
  // L1 hypervisor can handle it. One L0 exit, two world switches.
  Task<void> nested_forward_exit_to_l1(Vm& l1_vm, NestedVcpu& vcpu, ExitKind kind);

  // L1 executes VMRESUME (privileged): trap to L0, merge VMCS01+12 -> 02,
  // real entry into L2. One L0 exit, two world switches.
  Task<void> nested_resume_l2(Vm& l1_vm, NestedVcpu& vcpu);

  // L1 performs `count` VMREAD/VMWRITEs on VMCS12. Free under VMCS
  // shadowing; otherwise each is a full exit to L0.
  Task<void> l1_vmcs12_access(Vm& l1_vm, NestedVcpu& vcpu, int count);

  // L1 stores into a write-protected nested page table (EPT12): L0 traps and
  // emulates the store. One L0 exit round trip plus emulation work.
  Task<void> emulate_protected_store(Vm& l1_vm);

  std::size_t vm_count() const { return vms_.size(); }

 private:
  Simulation* sim_;
  const CostModel* costs_;
  CounterSet* counters_;
  TraceLog* trace_;
  FrameAllocator host_frames_;
  std::vector<std::unique_ptr<Vm>> vms_;
  std::uint16_t next_vpid_ = 1;

  std::uint64_t handler_cost(ExitKind kind) const;
  // Extra host-side latency an attached fault injector adds to this exit
  // (preempted L0, SMI, ...). 0 when no injector is armed.
  std::uint64_t injected_exit_spike(const Vm& vm);
};

}  // namespace pvm

#endif  // PVM_SRC_HV_HOST_HYPERVISOR_H_
