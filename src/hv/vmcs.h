// VM control structure model.
//
// Tracks the guest/host state and control fields a nested transition touches.
// VMCS shadowing (§2.1) is modelled faithfully: L1's accesses to VMCS12 are
// free (shadow VMCS hardware) when shadowing is on, and cost a full exit to
// L0 each when off; L0 merges VMCS01 + VMCS12 into VMCS02 before resuming L2.

#ifndef PVM_SRC_HV_VMCS_H_
#define PVM_SRC_HV_VMCS_H_

#include <array>
#include <cstdint>
#include <cstddef>

namespace pvm {

enum class VmcsField : std::size_t {
  // Guest state.
  kGuestRip,
  kGuestRsp,
  kGuestRflags,
  kGuestCr0,
  kGuestCr3,
  kGuestCr4,
  kGuestCsBase,
  kGuestSsBase,
  kGuestGsBase,
  kGuestIdtrBase,
  kGuestEferMsr,
  kGuestActivityState,
  // Host state.
  kHostRip,
  kHostRsp,
  kHostCr3,
  kHostGsBase,
  // Controls.
  kEptp,
  kVpid,
  kPinBasedControls,
  kCpuBasedControls,
  kExceptionBitmap,
  kEntryControls,
  kExitControls,
  kEntryIntrInfo,
  // Read-only exit information.
  kExitReason,
  kExitQualification,
  kGuestPhysicalAddress,
  kGuestLinearAddress,
  kCount,
};

constexpr std::size_t kVmcsFieldCount = static_cast<std::size_t>(VmcsField::kCount);

// Fields L0 copies from VMCS12 when building VMCS02 (guest state + entry
// controls); host state comes from VMCS01.
constexpr std::array<VmcsField, 14> kVmcs12MergedFields = {
    VmcsField::kGuestRip,       VmcsField::kGuestRsp,        VmcsField::kGuestRflags,
    VmcsField::kGuestCr0,       VmcsField::kGuestCr3,        VmcsField::kGuestCr4,
    VmcsField::kGuestCsBase,    VmcsField::kGuestSsBase,     VmcsField::kGuestGsBase,
    VmcsField::kGuestIdtrBase,  VmcsField::kGuestEferMsr,    VmcsField::kGuestActivityState,
    VmcsField::kEntryIntrInfo,  VmcsField::kExceptionBitmap,
};

constexpr std::array<VmcsField, 4> kVmcs01HostFields = {
    VmcsField::kHostRip,
    VmcsField::kHostRsp,
    VmcsField::kHostCr3,
    VmcsField::kHostGsBase,
};

class Vmcs {
 public:
  std::uint64_t read(VmcsField field) const {
    ++reads_;
    return fields_[static_cast<std::size_t>(field)];
  }
  void write(VmcsField field, std::uint64_t value) {
    ++writes_;
    fields_[static_cast<std::size_t>(field)] = value;
  }
  // Peek without access accounting (for assertions/tests).
  std::uint64_t peek(VmcsField field) const { return fields_[static_cast<std::size_t>(field)]; }

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

 private:
  std::array<std::uint64_t, kVmcsFieldCount> fields_{};
  mutable std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

// Merges vmcs12 (guest + entry state set by L1) and vmcs01 (host state owned
// by L0) into vmcs02, as L0 does before each real entry into L2. The EPTP of
// vmcs02 is the compressed EPT02 and is set by the caller. Returns the number
// of field copies performed (cost-model input).
inline std::uint32_t merge_vmcs02(const Vmcs& vmcs12, const Vmcs& vmcs01, Vmcs& vmcs02) {
  std::uint32_t copies = 0;
  for (VmcsField field : kVmcs12MergedFields) {
    vmcs02.write(field, vmcs12.read(field));
    ++copies;
  }
  for (VmcsField field : kVmcs01HostFields) {
    vmcs02.write(field, vmcs01.read(field));
    ++copies;
  }
  return copies;
}

}  // namespace pvm

#endif  // PVM_SRC_HV_VMCS_H_
