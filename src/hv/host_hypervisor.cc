#include "src/hv/host_hypervisor.h"

#include <stdexcept>

#include "src/fault/fault.h"
#include "src/obs/flight.h"
#include "src/obs/span.h"

namespace pvm {

HostHypervisor::HostHypervisor(Simulation& sim, const CostModel& costs, CounterSet& counters,
                               TraceLog& trace, std::uint64_t host_frame_count)
    : sim_(&sim),
      costs_(&costs),
      counters_(&counters),
      trace_(&trace),
      host_frames_("host.hpa", host_frame_count) {}

HostHypervisor::Vm& HostHypervisor::create_vm(const std::string& name,
                                              std::uint64_t gpa_frame_count, bool prewarm_ept) {
  vms_.push_back(std::make_unique<Vm>(*sim_, name, next_vpid_++, gpa_frame_count));
  Vm& vm = *vms_.back();
  // "Warm" models a long-running L1 instance whose EPT01 is established
  // (§4: "we assume that the L1 VM has been sufficiently warmed up and there
  // are very few EPT violations"). Leaves materialize lazily and free of
  // charge via ensure_backed() rather than being eagerly allocated.
  vm.set_warm(prewarm_ept);
  return vm;
}

std::uint64_t HostHypervisor::handler_cost(ExitKind kind) const {
  switch (kind) {
    case ExitKind::kHypercall:
    case ExitKind::kCpuid:
      return costs_->l0_simple_handler;
    case ExitKind::kHalt:
      return costs_->l0_simple_handler + costs_->halt_wakeup;
    case ExitKind::kException:
      return costs_->l0_exception_inject;
    case ExitKind::kMsrAccess:
      return costs_->l0_msr_handler;
    case ExitKind::kPortIo:
      return costs_->l0_pio_handler;
    case ExitKind::kIoKick:
      return costs_->io_kick_handler;
    case ExitKind::kInterrupt:
      return costs_->apic_virtualization;
    case ExitKind::kCr3Write:
      return costs_->l0_simple_handler;
    case ExitKind::kEptViolation:
      return costs_->l0_ept_fill;
  }
  return costs_->l0_simple_handler;
}

std::uint64_t HostHypervisor::injected_exit_spike(const Vm& vm) {
  fault::FaultInjector* faults = sim_->faults();
  if (faults == nullptr) {
    return 0;
  }
  const std::uint64_t spike = faults->exit_latency_spike(vm.name());
  if (spike > 0) {
    counters_->add(Counter::kFaultInjected);
    if (flight::FlightRecorder* flight = sim_->flight()) {
      flight->record(flight::EventKind::kFaultInjected,
                     flight->intern(fault_kind_name(fault::FaultKind::kExitLatencySpike)),
                     spike, static_cast<std::uint8_t>(fault::FaultKind::kExitLatencySpike));
    }
  }
  return spike;
}

Task<void> HostHypervisor::exit_roundtrip(Vm& vm, ExitKind kind) {
  counters_->add(Counter::kL0Exit);
  counters_->add(Counter::kWorldSwitch);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kVmxExit, 0, 0, static_cast<std::uint8_t>(kind));
  }
  trace_->emit(sim_->now(), TraceActor::kL0Hypervisor, TraceEventKind::kVmExitFrom, vm.name());
  {
    obs::SpanScope span(sim_->spans(), obs::Phase::kVmxExit);
    co_await sim_->delay(costs_->vmx_exit + costs_->l0_exit_dispatch + injected_exit_spike(vm));
  }
  {
    obs::SpanScope span(sim_->spans(), obs::Phase::kL0Handler);
    co_await sim_->delay(handler_cost(kind));
  }
  counters_->add(Counter::kWorldSwitch);
  counters_->add(Counter::kVmEntry);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kVmxEntry);
  }
  trace_->emit(sim_->now(), TraceActor::kL0Hypervisor, TraceEventKind::kVmEntryTo, vm.name());
  {
    obs::SpanScope span(sim_->spans(), obs::Phase::kVmxEntry);
    co_await sim_->delay(costs_->vmx_entry);
  }
}

Task<void> HostHypervisor::begin_exit(Vm& vm) {
  counters_->add(Counter::kL0Exit);
  counters_->add(Counter::kWorldSwitch);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    // Split exits serve shadow-fill / emulation paths; in real KVM SPT both
    // enter through a #PF-class vectored event, so record them as exceptions.
    flight->record(flight::EventKind::kVmxExit, 0, 0,
                   static_cast<std::uint8_t>(ExitKind::kException));
  }
  trace_->emit(sim_->now(), TraceActor::kL0Hypervisor, TraceEventKind::kVmExitFrom, vm.name());
  obs::SpanScope span(sim_->spans(), obs::Phase::kVmxExit);
  co_await sim_->delay(costs_->vmx_exit + costs_->l0_exit_dispatch + injected_exit_spike(vm));
}

Task<void> HostHypervisor::finish_entry(Vm& vm) {
  counters_->add(Counter::kWorldSwitch);
  counters_->add(Counter::kVmEntry);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kVmxEntry);
  }
  trace_->emit(sim_->now(), TraceActor::kL0Hypervisor, TraceEventKind::kVmEntryTo, vm.name());
  obs::SpanScope span(sim_->spans(), obs::Phase::kVmxEntry);
  co_await sim_->delay(costs_->vmx_entry);
}

Task<void> HostHypervisor::handle_ept_violation(Vm& vm, std::uint64_t gpa) {
  counters_->add(Counter::kL0Exit);
  counters_->add(Counter::kWorldSwitch);
  counters_->add(Counter::kEptViolation);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kVmxExit, gpa, 0,
                   static_cast<std::uint8_t>(ExitKind::kEptViolation));
  }
  trace_->emit(sim_->now(), TraceActor::kL0Hypervisor, TraceEventKind::kEptViolation, vm.name(),
               gpa);
  {
    obs::SpanScope span(sim_->spans(), obs::Phase::kVmxExit);
    co_await sim_->delay(costs_->vmx_exit + costs_->l0_exit_dispatch + injected_exit_spike(vm));
  }
  co_await fill_ept(vm, gpa);
  counters_->add(Counter::kWorldSwitch);
  counters_->add(Counter::kVmEntry);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kVmxEntry);
  }
  {
    obs::SpanScope span(sim_->spans(), obs::Phase::kVmxEntry);
    co_await sim_->delay(costs_->vmx_entry);
  }
}

Task<void> HostHypervisor::fill_ept(Vm& vm, std::uint64_t gpa) {
  obs::SpanScope span(sim_->spans(), obs::Phase::kEptFill, gpa);
  ScopedResource lock = co_await vm.mmu_lock().scoped();
  // Re-check under the lock: another vCPU may have filled the leaf already.
  if (const Pte* existing = vm.ept().find_pte(gpa); existing != nullptr && existing->present()) {
    co_await sim_->delay(costs_->walk_load);
    co_return;
  }
  const std::uint64_t hpa = host_frames_.allocate_or_throw();
  vm.ept().map(page_base(gpa), hpa, PteFlags::rw_kernel());
  co_await sim_->delay(costs_->l0_ept_fill);
}

Task<void> HostHypervisor::ensure_backed(Vm& vm, std::uint64_t gpa) {
  if (const Pte* pte = vm.ept().find_pte(gpa); pte != nullptr && pte->present()) {
    co_return;
  }
  if (vm.warm()) {
    // The warm-L1 fiction: the mapping "already existed"; materialize it in
    // the sparse table without charging time or protocol.
    const std::uint64_t hpa = host_frames_.allocate_or_throw();
    vm.ept().map(page_base(gpa), hpa, PteFlags::rw_kernel());
    co_return;
  }
  co_await handle_ept_violation(vm, gpa);
}

Task<void> HostHypervisor::inject_interrupt(Vm& vm) {
  counters_->add(Counter::kInterruptInjected);
  trace_->emit(sim_->now(), TraceActor::kL0Hypervisor, TraceEventKind::kInjectInterrupt,
               vm.name());
  co_await exit_roundtrip(vm, ExitKind::kInterrupt);
}

Task<void> HostHypervisor::nested_forward_exit_to_l1(Vm& l1_vm, NestedVcpu& vcpu,
                                                     ExitKind kind) {
  // Hardware exits from L2 land in L0 (the only root-mode software).
  counters_->add(Counter::kL0Exit);
  counters_->add(Counter::kWorldSwitch);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kVmxExit, 0, 0, static_cast<std::uint8_t>(kind));
  }
  trace_->emit(sim_->now(), TraceActor::kL0Hypervisor, TraceEventKind::kNestedForward);
  {
    obs::SpanScope span(sim_->spans(), obs::Phase::kVmxExit);
    co_await sim_->delay(costs_->vmx_exit + costs_->l0_exit_dispatch +
                         injected_exit_spike(l1_vm));
  }

  // Reflect the exit: copy exit information from VMCS02 into VMCS12 so L1's
  // handler sees it, then restore L1's own context from VMCS01.
  {
    obs::SpanScope span(sim_->spans(), obs::Phase::kL0Handler);
    vcpu.vmcs12.write(VmcsField::kExitReason, vcpu.vmcs02.read(VmcsField::kExitReason));
    vcpu.vmcs12.write(VmcsField::kExitQualification,
                      vcpu.vmcs02.read(VmcsField::kExitQualification));
    vcpu.vmcs12.write(VmcsField::kGuestPhysicalAddress,
                      vcpu.vmcs02.read(VmcsField::kGuestPhysicalAddress));
    co_await sim_->delay(costs_->nested_forward_work + 6 * costs_->vmcs_field_access);
  }

  counters_->add(Counter::kWorldSwitch);
  counters_->add(Counter::kVmEntry);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kVmxEntry);
  }
  trace_->emit(sim_->now(), TraceActor::kL0Hypervisor, TraceEventKind::kResumeL1, l1_vm.name());
  {
    obs::SpanScope span(sim_->spans(), obs::Phase::kVmxEntry);
    co_await sim_->delay(costs_->vmx_entry);
  }
}

Task<void> HostHypervisor::nested_resume_l2(Vm& l1_vm, NestedVcpu& vcpu) {
  // L1's VMRESUME is privileged: it traps to L0.
  counters_->add(Counter::kL0Exit);
  counters_->add(Counter::kWorldSwitch);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kVmxExit, 0, 0, flight::kExitCodeVmresumeTrap);
  }
  trace_->emit(sim_->now(), TraceActor::kL0Hypervisor, TraceEventKind::kL1VmresumeTrap,
               l1_vm.name());
  {
    obs::SpanScope span(sim_->spans(), obs::Phase::kVmxExit);
    co_await sim_->delay(costs_->vmx_exit + costs_->l0_exit_dispatch +
                         injected_exit_spike(l1_vm));
  }

  // Merge VMCS01 + VMCS12 -> VMCS02 ("update & reload VMCS02") plus the
  // VMRESUME consistency checks and MSR-switch emulation.
  {
    obs::SpanScope span(sim_->spans(), obs::Phase::kVmcsSync);
    const std::uint32_t copies = merge_vmcs02(vcpu.vmcs12, vcpu.vmcs01, vcpu.vmcs02);
    counters_->add(Counter::kVmcsSync);
    co_await sim_->delay(costs_->vmcs_sync() + costs_->nested_resume_work +
                         static_cast<std::uint64_t>(copies) * costs_->vmcs_field_access);
  }

  // Transient VMRESUME failures (injected): the launch rolls back to root
  // mode and L0 re-runs the consistency checks before retrying. The injector
  // bounds each burst (fail_count), the loop cap is a hard backstop.
  if (fault::FaultInjector* faults = sim_->faults(); faults != nullptr) {
    for (int attempt = 0; attempt < 8 && faults->vmresume_fails(l1_vm.name(), attempt);
         ++attempt) {
      counters_->add(Counter::kFaultInjected);
      counters_->add(Counter::kVmresumeRetry);
      if (flight::FlightRecorder* flight = sim_->flight()) {
        flight->record(flight::EventKind::kFaultInjected,
                       flight->intern(fault_kind_name(fault::FaultKind::kVmresumeFail)),
                       static_cast<std::uint64_t>(attempt),
                       static_cast<std::uint8_t>(fault::FaultKind::kVmresumeFail));
      }
      obs::SpanScope span(sim_->spans(), obs::Phase::kVmcsSync);
      co_await sim_->delay(costs_->vmx_entry + costs_->nested_resume_work);
    }
  }

  counters_->add(Counter::kWorldSwitch);
  counters_->add(Counter::kVmEntry);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kVmxEntry);
  }
  trace_->emit(sim_->now(), TraceActor::kL0Hypervisor, TraceEventKind::kVmResumeL2);
  {
    obs::SpanScope span(sim_->spans(), obs::Phase::kVmxEntry);
    co_await sim_->delay(costs_->vmx_entry);
  }
}

Task<void> HostHypervisor::l1_vmcs12_access(Vm& l1_vm, NestedVcpu& vcpu, int count) {
  if (vcpu.vmcs_shadowing) {
    // Shadow VMCS hardware satisfies the accesses without exits.
    co_await sim_->delay(static_cast<std::uint64_t>(count) * costs_->vmcs_field_access);
    co_return;
  }
  for (int i = 0; i < count; ++i) {
    vcpu.vmcs12.write(VmcsField::kGuestRip, vcpu.vmcs12.read(VmcsField::kGuestRip));
    co_await exit_roundtrip(l1_vm, ExitKind::kHypercall);
  }
}

Task<void> HostHypervisor::emulate_protected_store(Vm& l1_vm) {
  counters_->add(Counter::kL0Exit);
  counters_->add(Counter::kWorldSwitch);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kVmxExit, 0, 0, flight::kExitCodeEpt12Store);
  }
  trace_->emit(sim_->now(), TraceActor::kL0Hypervisor, TraceEventKind::kEmulateEpt12Store,
               l1_vm.name());
  {
    obs::SpanScope span(sim_->spans(), obs::Phase::kVmxExit);
    co_await sim_->delay(costs_->vmx_exit + costs_->l0_exit_dispatch +
                         injected_exit_spike(l1_vm));
  }
  {
    // kvm_mmu_pte_write runs under the L1 VM's L0 mmu_lock — shared by every
    // nested guest on the instance. This is a major serialization point.
    obs::SpanScope span(sim_->spans(), obs::Phase::kGptEmulate);
    ScopedResource lock = co_await l1_vm.mmu_lock().scoped();
    co_await sim_->delay(costs_->l0_ept_emulate_write);
  }
  counters_->add(Counter::kWorldSwitch);
  counters_->add(Counter::kVmEntry);
  if (flight::FlightRecorder* flight = sim_->flight()) {
    flight->record(flight::EventKind::kVmxEntry);
  }
  {
    obs::SpanScope span(sim_->spans(), obs::Phase::kVmxEntry);
    co_await sim_->delay(costs_->vmx_entry);
  }
}

}  // namespace pvm
