// Dirty-page tracking for live migration (paper §2.3, ROADMAP item 3).
//
// Two real protocols replace the old analytic `dirty_fraction` model:
//
//  - kWriteProtect: every page starts write-protected each round; the first
//    store faults (through the backend's existing shadow-paging/EPT fault
//    path), the handler records the page dirty and unprotects it, so later
//    stores in the same round are free. begin_round() re-protects the world.
//    This is what a shadow-paging hypervisor (kvm-spt, PVM) does natively.
//
//  - kPml: Page-Modification-Logging style. The first store per page per
//    round appends the page key to a per-vCPU log buffer (nearly free); when
//    a buffer fills, the vCPU takes a flush exit and the hypervisor drains
//    it. This is the hardware-assisted protocol *Out of Hypervisor* models
//    for nested guests.
//
// The tracker is pure bookkeeping — it never advances virtual time. Backends
// call note_store() on every write and charge the protocol's cost themselves
// (a wp fault costs a full exit round trip; a PML append costs ~nothing; a
// flush costs an exit plus the drain). Costs therefore flow through each
// backend's own exit machinery, which is the point: the same store is cheap
// on pvm (switcher exit) and expensive on ept-on-ept (nested exit).
//
// Every Vm owns one tracker by value, disarmed by default: the disarmed fast
// path is a single branch in the backends, preserving byte-identical
// behavior for every existing golden test.
//
// When a wal::Log is attached, the tracker streams kDirtyPage/kRoundBegin
// records as dirtying happens — the migration WAL the recovery tests replay.

#ifndef PVM_SRC_HV_DIRTY_TRACKER_H_
#define PVM_SRC_HV_DIRTY_TRACKER_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace pvm::wal {
class Log;
}  // namespace pvm::wal

namespace pvm {

enum class DirtyProtocol {
  kWriteProtect,  // fault on first store, re-protect per round
  kPml,           // per-vCPU log buffer, flush-on-full exits
};

constexpr const char* dirty_protocol_name(DirtyProtocol protocol) {
  return protocol == DirtyProtocol::kWriteProtect ? "write-protect" : "pml";
}

// Stable identity of a guest page across rounds: process + page number.
// pid fits 16 bits in practice; gva page numbers stay far below 2^48.
constexpr std::uint64_t dirty_page_key(std::uint64_t pid, std::uint64_t gva) {
  return (pid << 48) | ((gva >> 12) & 0xffff'ffff'ffffull);
}

// What one store cost the guest, protocol-wise. The backend maps this onto
// its own exit costs.
enum class DirtyStoreOutcome {
  kClean,     // tracking disarmed, or page already dirty this round: free
  kWpFault,   // write-protect fault: full exit round trip + unprotect
  kPmlAppend, // PML log append: in-guest, nearly free
  kPmlFlush,  // PML append filled the buffer: flush exit + drain
};

class DirtyTracker {
 public:
  static constexpr std::size_t kPmlBufferEntries = 512;

  bool armed() const { return armed_; }
  DirtyProtocol protocol() const { return protocol_; }

  // Starts tracking. Clears all per-round state; round 0 begins implicitly.
  void arm(DirtyProtocol protocol) {
    protocol_ = protocol;
    armed_ = true;
    round_ = 0;
    dirty_.clear();
    pml_buffers_.clear();
    wp_faults_ = pml_appends_ = pml_flushes_ = 0;
  }

  void disarm() {
    armed_ = false;
    dirty_.clear();
    pml_buffers_.clear();
  }

  // Attaches the migration WAL; dirty pages and round markers stream into
  // it as records. Null detaches.
  void set_wal(wal::Log* log) { wal_ = log; }

  // Records one guest store. Returns what the store cost, protocol-wise;
  // the caller charges virtual time accordingly. Disarmed: kClean, one
  // branch, no state touched.
  DirtyStoreOutcome note_store(int vcpu_id, std::uint64_t page_key);

  // Ends the current round: drains partial PML buffers, returns the round's
  // dirty set in ascending page-key order (deterministic regardless of the
  // schedule interleaving that produced it), re-protects every page (the
  // next round starts clean), and appends a kRoundBegin WAL record for the
  // new round.
  std::vector<std::uint64_t> collect_round();

  // The current round's dirty set so far, without ending the round. PML
  // partial buffers are *included* (they are dirtiness the hypervisor could
  // see by forcing a flush, and convergence control needs the true rate).
  std::uint64_t dirty_count() const { return dirty_.size(); }

  std::uint64_t round() const { return round_; }
  std::uint64_t wp_faults() const { return wp_faults_; }
  std::uint64_t pml_appends() const { return pml_appends_; }
  std::uint64_t pml_flushes() const { return pml_flushes_; }

 private:
  bool armed_ = false;
  DirtyProtocol protocol_ = DirtyProtocol::kWriteProtect;
  std::uint64_t round_ = 0;
  // std::set: collect_round() drains in key order, so the dirty stream is
  // deterministic no matter which vCPU touched what first.
  std::set<std::uint64_t> dirty_;
  // Per-vCPU PML buffers; entries already appear in dirty_ (the buffer
  // models the *exit cost structure*, not a second source of truth).
  std::map<int, std::size_t> pml_buffers_;  // vcpu id -> entries buffered
  std::uint64_t wp_faults_ = 0;
  std::uint64_t pml_appends_ = 0;
  std::uint64_t pml_flushes_ = 0;
  wal::Log* wal_ = nullptr;
};

}  // namespace pvm

#endif  // PVM_SRC_HV_DIRTY_TRACKER_H_
