// Live migration of L0-hosted VMs (paper §2.3).
//
// One of hardware-assisted nesting's operational drawbacks: "Once an L2
// guest is running, L1 can no longer be migrated, saved, or loaded,
// significantly impacting the cluster management." PVM's L1 looks like an
// ordinary VM to L0 (no nested VMX state at L0), so it stays migratable.
//
// v2: dirtying is no longer an analytic fraction — the engine arms the VM's
// DirtyTracker and each pre-copy round copies exactly the pages the guest
// actually dirtied while the previous round streamed (write-protect or PML
// protocol, chosen in MigrationParams; the per-store costs land on the
// guest through the memory backends). Convergence control watches the dirty
// rate: when it stops shrinking for `divergence_rounds` rounds, or the
// projected stop-and-copy pause blows the downtime cap, the engine degrades
// gracefully to post-copy — ship minimal state, resume remotely, fetch the
// hot working set on demand at remote-fault latency — instead of spinning.
// The dirty-page stream appends to a pvm::wal log when one is attached, so
// a crash mid-migration recovers to the last round boundary.

#ifndef PVM_SRC_HV_MIGRATION_H_
#define PVM_SRC_HV_MIGRATION_H_

#include <cstdint>
#include <string>

#include "src/hv/dirty_tracker.h"
#include "src/hv/host_hypervisor.h"

namespace pvm::wal {
class Log;
}  // namespace pvm::wal

namespace pvm {

enum class MigrationMode {
  kPreCopy,   // iterative pre-copy only; abort when it cannot converge
  kPostCopy,  // resume on the destination immediately, fetch on demand
  kAuto,      // pre-copy, degrading to post-copy under divergence/cap
};

struct MigrationParams {
  // Wire bandwidth in bytes per virtual second (25 Gbit/s default).
  double bandwidth_bytes_per_sec = 25.0e9 / 8.0;
  // How dirtied pages are discovered (drives the VM's DirtyTracker).
  DirtyProtocol protocol = DirtyProtocol::kWriteProtect;
  MigrationMode mode = MigrationMode::kAuto;
  // Stop-and-copy threshold: remaining pages at which the VM is paused.
  std::uint64_t stop_copy_pages = 1024;
  int max_rounds = 16;
  // Convergence control: after this many consecutive rounds in which the
  // dirty set failed to shrink below what was just copied, pre-copy is
  // declared divergent (the guest dirties faster than the wire drains).
  int divergence_rounds = 3;

  // Downtime cap: refuse to stop-and-copy when the projected pause would
  // exceed this (0 = uncapped). kAuto degrades to post-copy; kPreCopy
  // retries the pre-copy pass with exponential backoff instead.
  SimTime max_downtime_ns = 0;
  int max_retries = 3;
  SimTime retry_backoff_ns = 2 * kNsPerMs;

  // Post-copy: servicing one faulted page across the wire (network RTT +
  // source lookup), paid per hot page before the background stream wins.
  SimTime remote_fault_latency_ns = 80 * kNsPerUs;

  // Optional dirty-log WAL: rounds and dirty pages stream into it, with a
  // checkpoint record at every round boundary and at stop-and-copy.
  wal::Log* wal = nullptr;
};

struct MigrationResult {
  bool succeeded = false;
  std::string failure_reason;
  int rounds = 0;       // pre-copy + stop-and-copy rounds, across all attempts
  int retries = 0;      // attempts abandoned at the downtime-cap check
  bool capped = false;  // the final attempt was abandoned (succeeded == false)
  bool fell_back_postcopy = false;  // pre-copy degraded to post-copy
  std::uint64_t pages_copied = 0;
  std::uint64_t pages_dirtied = 0;  // pages the tracker saw dirtied, total
  // Protocol cost evidence (mirrors the tracker's counters).
  std::uint64_t wp_faults = 0;
  std::uint64_t pml_appends = 0;
  std::uint64_t pml_flushes = 0;
  std::uint64_t remote_faults = 0;  // post-copy demand fetches
  SimTime total_time = 0;
  SimTime downtime = 0;  // the stop-and-copy (or state-ship) pause
};

class MigrationEngine {
 public:
  explicit MigrationEngine(HostHypervisor& l0) : l0_(&l0) {}

  // Attempts a live migration of `vm`. Fails immediately (as KVM does) when
  // the VM has live nested-VMX state.
  Task<MigrationResult> migrate(HostHypervisor::Vm& vm, const MigrationParams& params = {});

  // Transfer time for `pages` at the params' bandwidth: ceiling, floored at
  // 1 ns for any nonzero transfer (a sub-ns cast-truncation here used to
  // make tiny stop-and-copy phases report zero downtime).
  static SimTime copy_time(std::uint64_t pages, const MigrationParams& params);

 private:
  Task<MigrationResult> post_copy(HostHypervisor::Vm& vm, const MigrationParams& params,
                                  MigrationResult result, std::uint64_t remaining,
                                  std::uint64_t hot_pages, SimTime start);

  HostHypervisor* l0_;
};

}  // namespace pvm

#endif  // PVM_SRC_HV_MIGRATION_H_
