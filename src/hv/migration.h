// Live migration of L0-hosted VMs (paper §2.3).
//
// One of hardware-assisted nesting's operational drawbacks: "Once an L2
// guest is running, L1 can no longer be migrated, saved, or loaded,
// significantly impacting the cluster management." PVM's L1 looks like an
// ordinary VM to L0 (no nested VMX state at L0), so it stays migratable.
//
// The engine implements standard pre-copy: iterative dirty-page rounds over
// the VM's resident set, then a stop-and-copy of the remainder; it refuses
// VMs with active nested-VMX state, as production KVM does.

#ifndef PVM_SRC_HV_MIGRATION_H_
#define PVM_SRC_HV_MIGRATION_H_

#include <cstdint>
#include <string>

#include "src/hv/host_hypervisor.h"

namespace pvm {

struct MigrationParams {
  // Wire bandwidth in bytes per virtual second (25 Gbit/s default).
  double bandwidth_bytes_per_sec = 25.0e9 / 8.0;
  // Fraction of the previous round's pages dirtied again while it copied.
  double dirty_fraction = 0.12;
  // Stop-and-copy threshold: remaining pages at which the VM is paused.
  std::uint64_t stop_copy_pages = 1024;
  int max_rounds = 16;

  // Downtime cap: refuse to stop-and-copy when the projected pause would
  // exceed this, and retry the whole pre-copy pass instead (0 = uncapped,
  // the historical behavior).
  SimTime max_downtime_ns = 0;
  // Bounded retry with exponential backoff: after a capped attempt, wait
  // retry_backoff_ns << attempt before re-running pre-copy; give up after
  // max_retries additional attempts.
  int max_retries = 3;
  SimTime retry_backoff_ns = 2 * kNsPerMs;
};

struct MigrationResult {
  bool succeeded = false;
  std::string failure_reason;
  int rounds = 0;       // pre-copy + stop-and-copy rounds, across all attempts
  int retries = 0;      // attempts abandoned at the downtime-cap check
  bool capped = false;  // the final attempt was abandoned (succeeded == false)
  std::uint64_t pages_copied = 0;
  SimTime total_time = 0;
  SimTime downtime = 0;  // the stop-and-copy pause
};

class MigrationEngine {
 public:
  explicit MigrationEngine(HostHypervisor& l0) : l0_(&l0) {}

  // Attempts a pre-copy live migration of `vm`. Fails immediately (as KVM
  // does) when the VM has live nested-VMX state.
  Task<MigrationResult> migrate(HostHypervisor::Vm& vm, const MigrationParams& params = {});

 private:
  SimTime copy_time(std::uint64_t pages, const MigrationParams& params) const {
    const double bytes = static_cast<double>(pages) * kPageSize;
    return static_cast<SimTime>(bytes / params.bandwidth_bytes_per_sec * 1e9);
  }

  HostHypervisor* l0_;
};

}  // namespace pvm

#endif  // PVM_SRC_HV_MIGRATION_H_
