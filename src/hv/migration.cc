#include "src/hv/migration.h"

#include <cmath>

#include "src/fault/fault.h"
#include "src/obs/flight.h"
#include "src/obs/span.h"
#include "src/wal/wal.h"

namespace pvm {

namespace {

// Stop-and-copy also ships vCPU/device state: a fixed pause on top of the
// page copy. Post-copy pays exactly this as its whole downtime.
constexpr SimTime kStateShipNs = 200 * kNsPerUs;

void record_flight(Simulation& sim, flight::EventKind kind, std::uint64_t a, std::uint64_t b,
                   std::uint8_t code = 0) {
  if (flight::FlightRecorder* flight = sim.flight()) {
    flight->record(kind, a, b, code);
  }
}

}  // namespace

SimTime MigrationEngine::copy_time(std::uint64_t pages, const MigrationParams& params) {
  if (pages == 0) {
    return 0;
  }
  const double ns = static_cast<double>(pages) * kPageSize /
                    params.bandwidth_bytes_per_sec * 1e9;
  const SimTime ceiled = static_cast<SimTime>(std::ceil(ns));
  return ceiled > 0 ? ceiled : 1;
}

Task<MigrationResult> MigrationEngine::migrate(HostHypervisor::Vm& vm,
                                               const MigrationParams& params) {
  MigrationResult result;
  if (vm.nested_vmx_active()) {
    // KVM refuses to save/restore live nested state: the merged VMCS02 and
    // shadow EPT02 at L0 have no migratable representation (§2.3).
    result.failure_reason =
        "VM '" + vm.name() + "' has active nested-VMX state (L2 guests running); "
        "hardware-assisted nested virtualization pins it to this host";
    co_return result;
  }

  // One op.migration span covers the whole call — pre-copy rounds, retries,
  // and any post-copy continuation — so the profiler sees each migrate() as
  // one operation instance (and dirty-tracking spans on vCPU tracks that
  // overlap it fold into this op's critical path).
  obs::SpanScope op_span(l0_->sim().spans(), obs::Phase::kOpMigration);
  const SimTime start = l0_->sim().now();
  DirtyTracker& tracker = vm.dirty_tracker();
  tracker.arm(params.protocol);
  tracker.set_wal(params.wal);
  // Harvest the tracker's protocol counters into the result; the tracker is
  // disarmed (and its totals reset on the next arm) when migration ends.
  const auto finish = [&](MigrationResult& r) {
    r.wp_faults = tracker.wp_faults();
    r.pml_appends = tracker.pml_appends();
    r.pml_flushes = tracker.pml_flushes();
    tracker.set_wal(nullptr);
    tracker.disarm();
    r.total_time = l0_->sim().now() - start;
  };

  // The resident set is whatever EPT01 currently backs; an idle VM still
  // ships its device/vCPU state as one page-equivalent.
  const std::uint64_t resident = std::max<std::uint64_t>(vm.ept().present_leaf_count(), 1);

  if (params.mode == MigrationMode::kPostCopy) {
    // Straight post-copy: the hot set is unknown up front — budget the
    // stop-copy threshold's worth of demand fetches.
    result = co_await post_copy(vm, params, std::move(result), resident,
                                std::min<std::uint64_t>(resident, params.stop_copy_pages),
                                start);
    finish(result);
    co_return result;
  }

  for (int attempt = 0;; ++attempt) {
    // Pre-copy: round 0 streams the whole resident set; every later round
    // streams exactly what the guest dirtied while the previous one copied
    // (the tracker sees those stores through the backends' fault paths).
    std::uint64_t to_copy = resident;
    int divergent = 0;
    int attempt_rounds = 0;
    bool converged = false;
    while (true) {
      SimTime round_time = copy_time(to_copy, params);
      bool stalled = false;
      if (fault::FaultInjector* faults = l0_->sim().faults(); faults != nullptr) {
        const SimTime stall = faults->migration_stall(vm.name());
        if (stall > 0) {
          l0_->counters().add(Counter::kFaultInjected);
          round_time += stall;
          stalled = true;
        }
      }
      {
        obs::SpanScope copy_span(l0_->sim().spans(), obs::Phase::kMigrationCopy, to_copy);
        co_await l0_->sim().delay(round_time);
      }
      result.pages_copied += to_copy;

      const std::vector<std::uint64_t> dirty = tracker.collect_round();
      result.pages_dirtied += dirty.size();
      record_flight(l0_->sim(), flight::EventKind::kMigrationRound, to_copy, dirty.size(),
                    static_cast<std::uint8_t>(attempt_rounds & 0xff));
      ++result.rounds;
      ++attempt_rounds;

      const std::uint64_t prev = to_copy;
      to_copy = dirty.size();
      if (to_copy <= params.stop_copy_pages) {
        converged = true;
        break;
      }
      // A stalled round copied nothing extra in practice; it still counts
      // against convergence (the guest kept dirtying all the while).
      divergent = (to_copy >= prev || stalled) ? divergent + 1 : 0;
      if (divergent >= params.divergence_rounds || attempt_rounds >= params.max_rounds) {
        break;
      }
    }

    const SimTime projected = copy_time(to_copy, params) + kStateShipNs;
    const bool cap_blown =
        params.max_downtime_ns > 0 && projected > params.max_downtime_ns;

    if (!converged || cap_blown) {
      if (params.mode == MigrationMode::kAuto) {
        // Graceful degradation: everything already streamed stays valid;
        // only `to_copy` pages (the live dirty set — the hot working set by
        // construction) remain to fetch on demand.
        result.fell_back_postcopy = true;
        l0_->counters().add(Counter::kMigrationFallback);
        record_flight(l0_->sim(), flight::EventKind::kMigrationFallback, to_copy, 0);
        result = co_await post_copy(vm, params, std::move(result), to_copy, to_copy, start);
        finish(result);
        co_return result;
      }
      if (!converged) {
        result.failure_reason =
            "pre-copy diverged: dirty rate exceeded copy rate for " +
            std::to_string(divergent) + " round(s) with " + std::to_string(to_copy) +
            " page(s) outstanding";
        finish(result);
        co_return result;
      }
      // Converged but capped: retry the pre-copy pass after an exponential
      // backoff (letting the dirtying burst — or injected stalls — pass).
      if (attempt >= params.max_retries) {
        result.capped = true;
        result.failure_reason =
            "projected downtime " + std::to_string(projected) + "ns exceeds cap " +
            std::to_string(params.max_downtime_ns) + "ns after " +
            std::to_string(result.retries) + " retries";
        finish(result);
        co_return result;
      }
      ++result.retries;
      l0_->counters().add(Counter::kMigrationRetry);
      co_await l0_->sim().delay(params.retry_backoff_ns << attempt);
      continue;
    }

    // Stop-and-copy: pause the VM, ship the rest + vCPU/device state.
    const SimTime pause_start = l0_->sim().now();
    {
      obs::SpanScope copy_span(l0_->sim().spans(), obs::Phase::kMigrationCopy, to_copy);
      co_await l0_->sim().delay(projected);
    }
    result.pages_copied += to_copy;
    result.downtime = l0_->sim().now() - pause_start;
    record_flight(l0_->sim(), flight::EventKind::kMigrationStopCopy, to_copy,
                  result.downtime);
    if (params.wal != nullptr) {
      params.wal->append_checkpoint();
    }
    result.succeeded = true;
    ++result.rounds;
    finish(result);
    co_return result;
  }
}

Task<MigrationResult> MigrationEngine::post_copy(HostHypervisor::Vm& vm,
                                                 const MigrationParams& params,
                                                 MigrationResult result,
                                                 std::uint64_t remaining,
                                                 std::uint64_t hot_pages, SimTime start) {
  (void)vm;
  (void)start;
  // Pause only long enough to ship vCPU/device state; the VM resumes on the
  // destination immediately.
  const SimTime pause_start = l0_->sim().now();
  {
    obs::SpanScope copy_span(l0_->sim().spans(), obs::Phase::kMigrationCopy, 1);
    co_await l0_->sim().delay(kStateShipNs);
  }
  result.downtime = l0_->sim().now() - pause_start;
  record_flight(l0_->sim(), flight::EventKind::kMigrationStopCopy, 0, result.downtime);

  // The hot working set faults on the destination before the background
  // stream reaches it: each fetch pays a wire round trip. The rest arrives
  // with the background transfer at full bandwidth.
  const std::uint64_t fetched = std::min(hot_pages, remaining);
  result.remote_faults = fetched;
  if (fetched > 0) {
    l0_->counters().add(Counter::kMigrationRemoteFault, fetched);
    co_await l0_->sim().delay(static_cast<SimTime>(fetched) * params.remote_fault_latency_ns);
  }
  {
    obs::SpanScope copy_span(l0_->sim().spans(), obs::Phase::kMigrationCopy,
                             remaining - fetched);
    co_await l0_->sim().delay(copy_time(remaining - fetched, params));
  }
  result.pages_copied += remaining;
  ++result.rounds;
  if (params.wal != nullptr) {
    params.wal->append_checkpoint();
  }
  result.succeeded = true;
  co_return result;
}

}  // namespace pvm
