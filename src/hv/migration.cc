#include "src/hv/migration.h"

namespace pvm {

Task<MigrationResult> MigrationEngine::migrate(HostHypervisor::Vm& vm,
                                               const MigrationParams& params) {
  MigrationResult result;
  if (vm.nested_vmx_active()) {
    // KVM refuses to save/restore live nested state: the merged VMCS02 and
    // shadow EPT02 at L0 have no migratable representation (§2.3).
    result.failure_reason =
        "VM '" + vm.name() + "' has active nested-VMX state (L2 guests running); "
        "hardware-assisted nested virtualization pins it to this host";
    co_return result;
  }

  const SimTime start = l0_->sim().now();
  // The resident set is whatever EPT01 currently backs.
  std::uint64_t remaining = vm.ept().present_leaf_count();
  if (remaining == 0) {
    remaining = 1;  // an idle VM still ships its device/vCPU state
  }

  // Pre-copy rounds: copy the current set while the guest keeps dirtying a
  // fraction of it.
  while (remaining > params.stop_copy_pages && result.rounds < params.max_rounds) {
    co_await l0_->sim().delay(copy_time(remaining, params));
    result.pages_copied += remaining;
    remaining = static_cast<std::uint64_t>(static_cast<double>(remaining) *
                                           params.dirty_fraction);
    ++result.rounds;
  }

  // Stop-and-copy: pause the VM, ship the rest + vCPU/device state.
  const SimTime pause_start = l0_->sim().now();
  co_await l0_->sim().delay(copy_time(remaining, params) + 200 * kNsPerUs);
  result.pages_copied += remaining;
  result.downtime = l0_->sim().now() - pause_start;
  result.total_time = l0_->sim().now() - start;
  result.succeeded = true;
  ++result.rounds;
  co_return result;
}

}  // namespace pvm
