#include "src/hv/migration.h"

#include "src/fault/fault.h"

namespace pvm {

namespace {

// Stop-and-copy also ships vCPU/device state: a fixed pause on top of the
// page copy.
constexpr SimTime kStateShipNs = 200 * kNsPerUs;

}  // namespace

Task<MigrationResult> MigrationEngine::migrate(HostHypervisor::Vm& vm,
                                               const MigrationParams& params) {
  MigrationResult result;
  if (vm.nested_vmx_active()) {
    // KVM refuses to save/restore live nested state: the merged VMCS02 and
    // shadow EPT02 at L0 have no migratable representation (§2.3).
    result.failure_reason =
        "VM '" + vm.name() + "' has active nested-VMX state (L2 guests running); "
        "hardware-assisted nested virtualization pins it to this host";
    co_return result;
  }

  const SimTime start = l0_->sim().now();
  for (int attempt = 0;; ++attempt) {
    // The resident set is whatever EPT01 currently backs.
    std::uint64_t remaining = vm.ept().present_leaf_count();
    if (remaining == 0) {
      remaining = 1;  // an idle VM still ships its device/vCPU state
    }

    // Pre-copy rounds: copy the current set while the guest keeps dirtying a
    // fraction of it. An injected stall extends the round's copy time and —
    // because the guest keeps dirtying meanwhile — the round converges
    // nothing: `remaining` does not shrink.
    int rounds = 0;
    while (remaining > params.stop_copy_pages && rounds < params.max_rounds) {
      SimTime round_time = copy_time(remaining, params);
      bool stalled = false;
      if (fault::FaultInjector* faults = l0_->sim().faults(); faults != nullptr) {
        const SimTime stall = faults->migration_stall(vm.name());
        if (stall > 0) {
          l0_->counters().add(Counter::kFaultInjected);
          round_time += stall;
          stalled = true;
        }
      }
      co_await l0_->sim().delay(round_time);
      result.pages_copied += remaining;
      if (!stalled) {
        remaining = static_cast<std::uint64_t>(static_cast<double>(remaining) *
                                               params.dirty_fraction);
      }
      ++rounds;
    }
    result.rounds += rounds;

    // Downtime cap: if pausing now would blow the budget, abandon this
    // attempt and retry the pre-copy pass after an exponential backoff
    // (letting the dirtying burst — or the injected stalls — pass).
    const SimTime projected = copy_time(remaining, params) + kStateShipNs;
    if (params.max_downtime_ns > 0 && projected > params.max_downtime_ns) {
      if (attempt >= params.max_retries) {
        result.capped = true;
        result.failure_reason =
            "projected downtime " + std::to_string(projected) + "ns exceeds cap " +
            std::to_string(params.max_downtime_ns) + "ns after " +
            std::to_string(result.retries) + " retries";
        result.total_time = l0_->sim().now() - start;
        co_return result;
      }
      ++result.retries;
      l0_->counters().add(Counter::kMigrationRetry);
      co_await l0_->sim().delay(params.retry_backoff_ns << attempt);
      continue;
    }

    // Stop-and-copy: pause the VM, ship the rest + vCPU/device state.
    const SimTime pause_start = l0_->sim().now();
    co_await l0_->sim().delay(copy_time(remaining, params) + kStateShipNs);
    result.pages_copied += remaining;
    result.downtime = l0_->sim().now() - pause_start;
    result.total_time = l0_->sim().now() - start;
    result.succeeded = true;
    ++result.rounds;
    co_return result;
  }
}

}  // namespace pvm
