#include "src/fleet/fleet.h"

#include <deque>
#include <stdexcept>
#include <utility>

#include "src/backends/platform.h"
#include "src/core/memory_engine.h"
#include "src/fault/fault.h"
#include "src/obs/json.h"
#include "src/obs/metrics_json.h"
#include "src/sim/resource.h"
#include "src/wal/wal.h"

namespace pvm::fleet {
namespace {

// Mixes the node coordinate into a base seed so per-node fault/schedule
// streams are independent but reproducible from the spec alone.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t mode_index,
                       std::uint64_t node) {
  std::uint64_t x = seed ^ (0x9e3779b97f4a7c15ull * (mode_index + 1)) ^
                    (0xbf58476d1ce4e5b9ull * (node + 1));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Everything one node's coroutines share. Lives on run_node's stack; every
// frame spawned into the node simulation is completed or destroyed
// (abandon_pending) before it goes away.
struct NodeCtx {
  const FleetSpec& spec;
  VirtualPlatform& platform;
  Resource slots;
  std::deque<SecureContainer*> idle;
  std::uint64_t created = 0;
  bool snapshot_ok = false;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t snapshot_records = 0;
  ts::TsDoc doc;

  NodeCtx(const FleetSpec& s, VirtualPlatform& p)
      : spec(s), platform(p),
        slots(p.sim(), "fleet.slots", s.capacity == 0 ? 1 : s.capacity) {
    doc.window_ns = s.window_ns == 0 ? ts::kDefaultWindowNs : s.window_ns;
    // Materialize every counter up front (empty window map, total 0): a
    // healthy node exports oom_kills = 0 rather than no metric at all, so
    // "zero crashes" is a gateable SLO instead of a (no match) failure,
    // and rollup documents carry a fixed key set.
    for (const char* name :
         {"fleet/launches", "fleet/completions", "fleet/warm_starts",
          "fleet/restore_starts", "fleet/cold_starts", "fleet/prewarm_boots",
          "fleet/oom_kills", "fleet/deadline_miss", "fleet/starved",
          "fleet/crashes", "fleet/retired"}) {
      doc.series.emplace(name, ts::TsSeries{});
    }
  }

  std::uint64_t now() { return platform.sim().now(); }

  void count(std::string_view name, std::int64_t n = 1) {
    auto it = doc.series.find(name);
    if (it == doc.series.end()) {
      it = doc.series.emplace(std::string(name), ts::TsSeries{}).first;
    }
    it->second.total += n;
    it->second.windows[now() / doc.window_ns] += n;
  }

  void observe(std::string_view name, std::uint64_t value) {
    auto it = doc.hists.find(name);
    if (it == doc.hists.end()) {
      it = doc.hists.emplace(std::string(name), ts::TsHist{}).first;
    }
    it->second.windows[now() / doc.window_ns].record(value);
  }

  std::int64_t total(std::string_view name) const {
    const auto it = doc.series.find(name);
    return it == doc.series.end() ? 0 : it->second.total;
  }
};

SecureContainer& new_sandbox(NodeCtx& ctx) {
  return ctx.platform.create_container("sbx" + std::to_string(ctx.created++));
}

// Boots a fresh sandbox: restore from the node's wal snapshot when one
// exists, cold boot otherwise. Returns nullptr when the boot OOM-killed —
// the dead sandbox keeps its frames (a real exhausted host does too).
Task<SecureContainer*> boot_sandbox(NodeCtx& ctx) {
  SecureContainer& sandbox = new_sandbox(ctx);
  const std::uint64_t start = ctx.now();
  if (ctx.snapshot_ok) {
    co_await sandbox.boot(ctx.spec.restore_init_pages,
                          ctx.spec.restore_image_bytes);
  } else {
    co_await sandbox.boot(ctx.spec.cold_init_pages, ctx.spec.cold_image_bytes);
  }
  if (sandbox.boot_failed()) {
    ctx.count("fleet/oom_kills");
    ctx.count("fleet/retired");
    co_return nullptr;
  }
  if (ctx.snapshot_ok) {
    ctx.observe("fleet/boot_restore_ns", ctx.now() - start);
    ctx.count("fleet/restore_starts");
  } else {
    ctx.observe("fleet/boot_cold_ns", ctx.now() - start);
    ctx.count("fleet/cold_starts");
  }
  co_return &sandbox;
}

// Pre-boots one warm-pool sandbox at node start.
Task<void> prewarm(NodeCtx& ctx) {
  SecureContainer* sandbox = co_await boot_sandbox(ctx);
  if (sandbox != nullptr) {
    ctx.count("fleet/prewarm_boots");
    ctx.idle.push_back(sandbox);
  }
}

// One launch, arrival to completion.
Task<void> handle_launch(NodeCtx& ctx) {
  Simulation& sim = ctx.platform.sim();
  const std::uint64_t arrival = sim.now();
  ctx.count("fleet/launches");
  co_await ctx.slots.acquire();
  ctx.observe("fleet/queue_wait_ns", sim.now() - arrival);

  SecureContainer* sandbox = nullptr;
  if (!ctx.idle.empty()) {
    sandbox = ctx.idle.front();
    ctx.idle.pop_front();
    // Activation: one syscall round trip wakes the parked sandbox.
    const std::uint64_t t0 = sim.now();
    co_await sandbox->kernel().sys_getpid(sandbox->vcpu(0),
                                          *sandbox->init_process());
    ctx.observe("fleet/warm_activate_ns", sim.now() - t0);
    ctx.count("fleet/warm_starts");
  } else {
    sandbox = co_await boot_sandbox(ctx);
    if (sandbox == nullptr) {
      // The slot is deliberately leaked with the dead sandbox: its frames
      // stay pinned, so the node's effective capacity shrinks.
      ctx.count("fleet/crashes");
      co_return;
    }
  }

  const std::uint64_t start_latency = sim.now() - arrival;
  ctx.observe("fleet/start_ns", start_latency);
  if (start_latency > ctx.spec.deadline_ns) {
    // The runtime gave up on this launch; the sandbox itself is healthy.
    ctx.count("fleet/deadline_miss");
    ctx.count("fleet/crashes");
    ctx.idle.push_back(sandbox);
    ctx.slots.release();
    co_return;
  }

  // Function body: map the working set, touch it, syscall, compute.
  Vcpu& vcpu = sandbox->vcpu(0);
  GuestProcess& proc = *sandbox->init_process();
  GuestKernel& kernel = sandbox->kernel();
  const std::uint64_t fn_start = sim.now();
  const std::uint64_t base = co_await kernel.sys_mmap(
      vcpu, proc, static_cast<std::uint64_t>(ctx.spec.fn_pages) * 4096);
  for (int i = 0; i < ctx.spec.fn_pages && !proc.oom_killed(); ++i) {
    co_await kernel.touch(vcpu, proc, base + static_cast<std::uint64_t>(i) * 4096,
                          /*write=*/true);
  }
  for (int i = 0; i + 1 < ctx.spec.fn_syscalls; ++i) {
    co_await kernel.sys_getpid(vcpu, proc);
  }
  const std::uint64_t sys_t0 = sim.now();
  co_await kernel.sys_getpid(vcpu, proc);
  ctx.observe("fleet/syscall_ns", sim.now() - sys_t0);
  if (ctx.spec.fn_compute_ns > 0) {
    co_await sandbox->compute(ctx.spec.fn_compute_ns);
  }
  if (!proc.oom_killed()) {
    co_await kernel.sys_munmap(vcpu, proc, base);
  }
  ctx.observe("fleet/fn_ns", sim.now() - fn_start);

  if (proc.oom_killed()) {
    // Killed mid-invocation: sandbox and slot retire together.
    ctx.count("fleet/oom_kills");
    ctx.count("fleet/crashes");
    ctx.count("fleet/retired");
    co_return;
  }
  ctx.count("fleet/completions");
  ctx.idle.push_back(sandbox);
  ctx.slots.release();
}

// Node main: snapshot template, warm pool, then the arrival stream.
Task<void> node_driver(NodeCtx& ctx, std::vector<std::uint64_t> arrivals) {
  Simulation& sim = ctx.platform.sim();
  // Template sandbox: cold-boot once, checkpoint its engine through the
  // WAL, and verify the checkpoint recovers cleanly. Modes without a
  // shadow engine (EPT, direct paging) cannot snapshot — the hypervisor
  // has no guest-visible mapping state to serialize — so their fleets pay
  // the full cold boot on every scale-up, exactly the RunD gap the paper
  // motivates.
  SecureContainer& tmpl = new_sandbox(ctx);
  const std::uint64_t tmpl_start = ctx.now();
  co_await tmpl.boot(ctx.spec.cold_init_pages, ctx.spec.cold_image_bytes);
  if (!tmpl.boot_failed()) {
    ctx.observe("fleet/boot_cold_ns", ctx.now() - tmpl_start);
    ctx.count("fleet/cold_starts");
    if (ctx.spec.snapshot_restore) {
      if (PvmMemoryEngine* engine = tmpl.shadow_engine()) {
        wal::Log log("wal:fleet-snapshot");
        engine->checkpoint_to_wal(log);
        const wal::RecoveryResult recovered = wal::recover(log.bytes());
        if (!recovered.torn_tail && recovered.last_checkpoint.has_value()) {
          ctx.snapshot_ok = true;
          ctx.snapshot_bytes = log.bytes().size();
          ctx.snapshot_records = recovered.records.size();
        }
      }
    }
    ctx.idle.push_back(&tmpl);
  } else {
    ctx.count("fleet/oom_kills");
    ctx.count("fleet/retired");
  }
  for (std::uint32_t i = 0; i < ctx.spec.warm_pool; ++i) {
    sim.spawn(prewarm(ctx), "fleet-prewarm");
  }
  for (const std::uint64_t t : arrivals) {
    if (t > sim.now()) {
      co_await sim.delay(t - sim.now());
    }
    sim.spawn(handle_launch(ctx), "fleet-launch");
  }
}

}  // namespace

std::vector<std::uint64_t> node_arrivals(const FleetSpec& spec,
                                         std::size_t node) {
  ArrivalGenerator generator(spec.arrival);
  std::vector<std::uint64_t> mine;
  for (std::uint64_t i = 0; i < spec.launches; ++i) {
    const std::uint64_t t = generator.next();
    if (place_launch(spec.seed, i, spec.nodes) == node) {
      mine.push_back(t);
    }
  }
  return mine;
}

NodeOutcome run_node(const FleetSpec& spec, DeployMode mode, std::size_t node) {
  NodeOutcome out;
  out.mode = mode;
  out.node = node;
  std::size_t mode_index = 0;
  for (std::size_t i = 0; i < spec.modes.size(); ++i) {
    if (spec.modes[i] == mode) {
      mode_index = i;
    }
  }
  try {
    PlatformConfig config;
    config.mode = mode;
    config.schedule_policy = spec.policy;
    config.schedule_seed = mix_seed(spec.schedule_seed, mode_index, node);
    VirtualPlatform platform(config);
    fault::FaultInjector injector;
    fault::FaultPlan plan = fault::FaultPlan::parse(spec.fault_plan);
    if (!plan.empty()) {
      plan.seed = mix_seed(plan.seed, mode_index, node);
      injector.arm(std::move(plan));
      platform.arm_faults(&injector);
    }
    {
      NodeCtx ctx(spec, platform);
      platform.sim().spawn(node_driver(ctx, node_arrivals(spec, node)),
                           "fleet-driver");
      platform.sim().run();
      // Launches still parked in the admission queue when the event stream
      // drained never started: the node starved them.
      const std::size_t starved = platform.sim().pending_task_count();
      if (starved > 0) {
        ctx.count("fleet/starved", static_cast<std::int64_t>(starved));
        ctx.count("fleet/crashes", static_cast<std::int64_t>(starved));
      }
      // Destroy the abandoned frames while ctx (and its Resource) are
      // still alive — the frames hold pointers into both.
      platform.sim().abandon_pending();

      out.events = platform.sim().events_processed();
      out.sim_ns = platform.sim().now();
      out.containers = ctx.created;
      out.snapshot_bytes = ctx.snapshot_bytes;
      out.snapshot_records = ctx.snapshot_records;

      obs::BenchExport bench("pvm-fleet/node");
      bench.add_run(
          std::string(deploy_mode_token(mode)) + "/n" + std::to_string(node),
          platform.sim(), platform.counters(), nullptr,
          {{"launches", static_cast<double>(ctx.total("fleet/launches"))},
           {"completions", static_cast<double>(ctx.total("fleet/completions"))},
           {"warm_starts", static_cast<double>(ctx.total("fleet/warm_starts"))},
           {"restore_starts",
            static_cast<double>(ctx.total("fleet/restore_starts"))},
           {"cold_starts", static_cast<double>(ctx.total("fleet/cold_starts"))},
           {"oom_kills", static_cast<double>(ctx.total("fleet/oom_kills"))},
           {"deadline_miss",
            static_cast<double>(ctx.total("fleet/deadline_miss"))},
           {"starved", static_cast<double>(ctx.total("fleet/starved"))},
           {"crashes", static_cast<double>(ctx.total("fleet/crashes"))},
           {"containers", static_cast<double>(ctx.created)},
           {"snapshot_bytes", static_cast<double>(ctx.snapshot_bytes)}},
          /*alloc_json=*/{}, /*include_resources=*/false);
      out.bench_json = bench.to_json();
      out.doc = std::move(ctx.doc);
      out.ok = true;
    }
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
  }
  return out;
}

FleetResult run_fleet(const FleetSpec& spec, int jobs,
                      const std::vector<ts::SloSpec>& slos) {
  if (spec.nodes == 0 || spec.modes.empty()) {
    throw std::invalid_argument("fleet spec needs nodes >= 1 and >= 1 mode");
  }
  sweep::Stopwatch stopwatch;
  const std::size_t total = spec.modes.size() * spec.nodes;
  std::vector<NodeOutcome> outcomes = sweep::run_indexed<NodeOutcome>(
      total, jobs, [&](std::size_t index) {
        return run_node(spec, spec.modes[index / spec.nodes],
                        index % spec.nodes);
      });

  FleetResult result;
  result.timing.jobs = sweep::effective_jobs(jobs);
  result.timing.cells = total;
  for (std::size_t m = 0; m < spec.modes.size(); ++m) {
    FleetGroup group;
    group.mode = spec.modes[m];
    group.rollup.window_ns = spec.window_ns;
    for (std::size_t n = 0; n < spec.nodes; ++n) {
      NodeOutcome& outcome = outcomes[m * spec.nodes + n];
      result.timing.events += outcome.events;
      std::string merge_error;
      if (!ts::merge_timeseries(&group.rollup, outcome.doc, &merge_error)) {
        throw std::runtime_error("fleet rollup merge: " + merge_error);
      }
      group.nodes.push_back(std::move(outcome));
    }
    result.groups.push_back(std::move(group));
  }
  result.fleetwide.window_ns = spec.window_ns;
  for (const FleetGroup& group : result.groups) {
    const ts::TsDoc prefixed = ts::prefix_timeseries(
        group.rollup, std::string(deploy_mode_token(group.mode)) + "/");
    std::string merge_error;
    if (!ts::merge_timeseries(&result.fleetwide, prefixed, &merge_error)) {
      throw std::runtime_error("fleet-wide merge: " + merge_error);
    }
  }
  ts::evaluate_slos(&result.fleetwide, slos);
  result.slos = result.fleetwide.slos;
  result.timing.wall_seconds = stopwatch.seconds();
  return result;
}

namespace {

void render_rollup(obs::JsonWriter& w, const ts::TsDoc& rollup) {
  w.begin_object();
  w.key("counts").begin_object();
  for (const auto& [name, series] : rollup.series) {
    w.key(name).value(series.total);
  }
  w.end_object();
  w.key("latency").begin_object();
  for (const auto& [name, hist] : rollup.hists) {
    const ts::MergeableHistogram h = hist.cumulative();
    w.key(name).begin_object();
    w.key("count").value(h.count());
    w.key("p50").value(h.quantile(0.50));
    w.key("p99").value(h.quantile(0.99));
    w.key("p999").value(h.quantile(0.999));
    w.key("max").value(h.max());
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace

std::string render_fleet_json(const FleetSpec& spec, const FleetResult& result,
                              const sweep::SweepTiming* timing) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value(kFleetSchemaVersion);

  w.key("spec").begin_object();
  w.key("arrival").value(spec.arrival.spec_string());
  w.key("launches").value(spec.launches);
  w.key("nodes").value(static_cast<std::uint64_t>(spec.nodes));
  w.key("capacity").value(static_cast<std::int64_t>(spec.capacity));
  w.key("warm_pool").value(static_cast<std::int64_t>(spec.warm_pool));
  w.key("snapshot_restore").value(spec.snapshot_restore);
  w.key("cold_init_pages").value(static_cast<std::int64_t>(spec.cold_init_pages));
  w.key("restore_init_pages")
      .value(static_cast<std::int64_t>(spec.restore_init_pages));
  w.key("cold_image_bytes").value(spec.cold_image_bytes);
  w.key("restore_image_bytes").value(spec.restore_image_bytes);
  w.key("deadline_ns").value(spec.deadline_ns);
  w.key("window_ns").value(spec.window_ns);
  w.key("fn_pages").value(static_cast<std::int64_t>(spec.fn_pages));
  w.key("fn_syscalls").value(static_cast<std::int64_t>(spec.fn_syscalls));
  w.key("fn_compute_ns").value(spec.fn_compute_ns);
  w.key("fault_plan").value(spec.fault_plan);
  w.key("policy").value(schedule_policy_name(spec.policy));
  w.key("schedule_seed").value(spec.schedule_seed);
  w.key("seed").value(spec.seed);
  w.key("modes").begin_array();
  for (const DeployMode mode : spec.modes) {
    w.value(deploy_mode_token(mode));
  }
  w.end_array();
  w.end_object();

  w.key("groups").begin_array();
  for (const FleetGroup& group : result.groups) {
    w.begin_object();
    w.key("mode").value(deploy_mode_token(group.mode));
    w.key("nodes").begin_array();
    for (const NodeOutcome& node : group.nodes) {
      w.begin_object();
      w.key("node").value(static_cast<std::uint64_t>(node.node));
      w.key("ok").value(node.ok);
      if (!node.ok) {
        w.key("error").value(node.error);
      }
      w.key("events").value(node.events);
      w.key("sim_ns").value(node.sim_ns);
      w.key("containers").value(node.containers);
      w.key("snapshot_bytes").value(node.snapshot_bytes);
      w.key("snapshot_records").value(node.snapshot_records);
      if (!node.bench_json.empty()) {
        w.key("bench").raw(node.bench_json);
      }
      w.end_object();
    }
    w.end_array();
    w.key("rollup");
    render_rollup(w, group.rollup);
    w.end_object();
  }
  w.end_array();

  w.key("slos");
  ts::render_slo_results(w, result.slos);

  if (timing != nullptr) {
    w.key("timing").begin_object();
    w.key("jobs").value(static_cast<std::int64_t>(timing->jobs));
    w.key("cells").value(static_cast<std::uint64_t>(timing->cells));
    w.key("events").value(timing->events);
    w.key("wall_seconds").value(timing->wall_seconds);
    w.key("events_per_second").value(timing->events_per_second());
    w.end_object();
  }
  w.end_object();
  return w.str() + "\n";
}

}  // namespace pvm::fleet
