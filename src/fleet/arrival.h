// pvm::fleet arrival processes — seeded, cross-platform-deterministic
// request streams for region-scale serving scenarios.
//
// Three generator families cover the serverless traces the fleet layer
// models: homogeneous Poisson (steady traffic), a diurnal sinusoid
// (day/night load swing compressed onto the virtual clock), and a periodic
// burst / flash-crowd overlay. Non-homogeneous streams are sampled by
// thinning against the peak rate, so every family consumes the same PRNG
// discipline and a (spec, seed) pair replays bit-for-bit.
//
// Determinism is load-bearing: fleet goldens are checked in, so the math
// behind the samplers must be bit-stable across libc implementations.
// libm's log/exp/sin make no cross-platform accuracy promise, so the
// samplers use the det_* routines below — plain IEEE-754 arithmetic plus
// the exact-bit primitives frexp/ldexp/floor — which produce identical
// bits on every conforming platform.

#ifndef PVM_SRC_FLEET_ARRIVAL_H_
#define PVM_SRC_FLEET_ARRIVAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/random.h"

namespace pvm::fleet {

// Natural log for finite x > 0. frexp splits off the exponent exactly;
// the mantissa is centred into [sqrt(1/2), sqrt(2)) and evaluated via the
// atanh series ln m = 2 (z + z^3/3 + z^5/5 + ...), z = (m-1)/(m+1).
// Relative error < 1e-15 over the full range — and, unlike libm, the same
// bits everywhere.
double det_log(double x);

// exp(x) for |x| <= ~700 via exact range reduction against ln 2 and a
// Taylor tail, reassembled with ldexp. Saturates to 0 / +inf outside.
double det_exp(double x);

// sin(2*pi*turns). Quadrant folding uses only floor and subtraction; the
// residual angle (at most pi/2) gets the odd Taylor series.
double det_sin_turns(double turns);

enum class ArrivalKind {
  kPoisson,  // homogeneous: rate_per_sec throughout
  kDiurnal,  // rate * (1 + amplitude * sin(2*pi * t/period))
  kBurst,    // rate, except rate*factor during [k*every, k*every+len)
};

std::string_view arrival_kind_token(ArrivalKind kind);

// One arrival-process description. Parsed from / rendered to the CLI form
//   poisson:rate=2000
//   diurnal:rate=2000,amplitude=0.8,period=5s
//   burst:rate=1000,factor=10,every=2s,len=250ms
// (all families accept seed=N; durations take ns/us/ms/s suffixes).
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_per_sec = 1000.0;
  double amplitude = 0.5;                         // diurnal swing, 0..1
  std::uint64_t period_ns = 5'000'000'000ull;     // diurnal period
  double burst_factor = 8.0;                      // flash-crowd multiplier
  std::uint64_t burst_every_ns = 2'000'000'000ull;
  std::uint64_t burst_len_ns = 250'000'000ull;
  std::uint64_t seed = 1;

  // Instantaneous rate (arrivals per second of virtual time) at t.
  double rate_at(std::uint64_t t_ns) const;
  // Upper bound on rate_at over all t — the thinning envelope.
  double peak_rate() const;
  // Canonical round-trippable form (parse(spec_string()) == *this).
  std::string spec_string() const;

  bool operator==(const ArrivalSpec&) const = default;
};

bool parse_arrival_spec(std::string_view text, ArrivalSpec* out, std::string* error);

// Streams ascending arrival timestamps (virtual ns) for a spec. Thinning:
// candidate gaps are exponential at the peak rate; a candidate survives
// with probability rate_at(t)/peak. The homogeneous case accepts every
// candidate without drawing the acceptance variate, so Poisson streams
// cost one draw per arrival.
class ArrivalGenerator {
 public:
  explicit ArrivalGenerator(const ArrivalSpec& spec)
      : spec_(spec), rng_(spec.seed) {}

  std::uint64_t next();

 private:
  ArrivalSpec spec_;
  Xoshiro256 rng_;
  double t_ns_ = 0.0;
};

// The first `count` arrivals of the stream.
std::vector<std::uint64_t> generate_arrivals(const ArrivalSpec& spec,
                                             std::size_t count);

// Deterministic placement of launch `index` onto one of `nodes` nodes: a
// splitmix64-style mix of (seed, index), reduced mod nodes. Stateless, so
// any shard can recompute any launch's home node without coordination.
std::size_t place_launch(std::uint64_t seed, std::uint64_t index,
                         std::size_t nodes);

}  // namespace pvm::fleet

#endif  // PVM_SRC_FLEET_ARRIVAL_H_
