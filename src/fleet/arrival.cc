#include "src/fleet/arrival.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace pvm::fleet {
namespace {

constexpr double kLn2 = 0.69314718055994530942;
constexpr double kPi = 3.14159265358979323846;
constexpr double kSqrtHalf = 0.70710678118654752440;

// Fixed-format double for spec_string: %.6f with trailing zeros (and a
// bare trailing dot) stripped. Deterministic and round-trippable.
std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6f", v);
  std::string text(buffer);
  while (!text.empty() && text.back() == '0') {
    text.pop_back();
  }
  if (!text.empty() && text.back() == '.') {
    text.pop_back();
  }
  return text;
}

std::string format_duration(std::uint64_t ns) {
  if (ns % 1'000'000'000ull == 0 && ns != 0) {
    return std::to_string(ns / 1'000'000'000ull) + "s";
  }
  if (ns % 1'000'000ull == 0 && ns != 0) {
    return std::to_string(ns / 1'000'000ull) + "ms";
  }
  if (ns % 1'000ull == 0 && ns != 0) {
    return std::to_string(ns / 1'000ull) + "us";
  }
  return std::to_string(ns) + "ns";
}

bool parse_duration(std::string_view text, std::uint64_t* out) {
  std::size_t digits = 0;
  while (digits < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[digits])) != 0 ||
          text[digits] == '.')) {
    ++digits;
  }
  if (digits == 0) {
    return false;
  }
  double value = 0;
  try {
    value = std::stod(std::string(text.substr(0, digits)));
  } catch (const std::exception&) {
    return false;
  }
  const std::string_view suffix = text.substr(digits);
  double scale = 1.0;
  if (suffix == "s") {
    scale = 1e9;
  } else if (suffix == "ms") {
    scale = 1e6;
  } else if (suffix == "us") {
    scale = 1e3;
  } else if (suffix == "ns" || suffix.empty()) {
    scale = 1.0;
  } else {
    return false;
  }
  *out = static_cast<std::uint64_t>(value * scale);
  return true;
}

}  // namespace

double det_log(double x) {
  if (!(x > 0) || x == std::numeric_limits<double>::infinity()) {
    throw std::domain_error("det_log: argument must be finite and positive");
  }
  int exponent = 0;
  double m = std::frexp(x, &exponent);  // m in [0.5, 1)
  if (m < kSqrtHalf) {
    m *= 2.0;
    exponent -= 1;
  }
  const double z = (m - 1.0) / (m + 1.0);
  const double z2 = z * z;
  // |z| <= (sqrt(2)-1)/(sqrt(2)+1) ~= 0.1716; 9 odd terms reach < 1e-16.
  double term = z;
  double sum = 0.0;
  for (int k = 1; k <= 17; k += 2) {
    sum += term / static_cast<double>(k);
    term *= z2;
  }
  return 2.0 * sum + static_cast<double>(exponent) * kLn2;
}

double det_exp(double x) {
  if (x < -700.0) {
    return 0.0;
  }
  if (x > 700.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double nf = x / kLn2;
  const int n = static_cast<int>(nf >= 0 ? nf + 0.5 : nf - 0.5);
  const double r = x - static_cast<double>(n) * kLn2;  // |r| <= ln2/2 + eps
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k <= 18; ++k) {
    term *= r / static_cast<double>(k);
    sum += term;
  }
  return std::ldexp(sum, n);
}

double det_sin_turns(double turns) {
  double f = turns - std::floor(turns);  // [0, 1)
  double sign = 1.0;
  if (f >= 0.5) {
    f -= 0.5;
    sign = -1.0;
  }
  if (f > 0.25) {
    f = 0.5 - f;  // fold into [0, 0.25] -> angle in [0, pi/2]
  }
  const double x = 2.0 * kPi * f;
  const double x2 = x * x;
  double term = x;
  double sum = x;
  for (int k = 1; k <= 9; ++k) {
    term *= -x2 / static_cast<double>((2 * k) * (2 * k + 1));
    sum += term;
  }
  return sign * sum;
}

std::string_view arrival_kind_token(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kDiurnal:
      return "diurnal";
    case ArrivalKind::kBurst:
      return "burst";
  }
  return "?";
}

double ArrivalSpec::rate_at(std::uint64_t t_ns) const {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return rate_per_sec;
    case ArrivalKind::kDiurnal: {
      const double turns =
          static_cast<double>(t_ns) / static_cast<double>(period_ns);
      return rate_per_sec * (1.0 + amplitude * det_sin_turns(turns));
    }
    case ArrivalKind::kBurst: {
      const std::uint64_t phase = t_ns % burst_every_ns;
      return phase < burst_len_ns ? rate_per_sec * burst_factor : rate_per_sec;
    }
  }
  return rate_per_sec;
}

double ArrivalSpec::peak_rate() const {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return rate_per_sec;
    case ArrivalKind::kDiurnal:
      return rate_per_sec * (1.0 + amplitude);
    case ArrivalKind::kBurst:
      return rate_per_sec * burst_factor;
  }
  return rate_per_sec;
}

std::string ArrivalSpec::spec_string() const {
  std::string out(arrival_kind_token(kind));
  out += ":rate=" + format_double(rate_per_sec);
  switch (kind) {
    case ArrivalKind::kPoisson:
      break;
    case ArrivalKind::kDiurnal:
      out += ",amplitude=" + format_double(amplitude);
      out += ",period=" + format_duration(period_ns);
      break;
    case ArrivalKind::kBurst:
      out += ",factor=" + format_double(burst_factor);
      out += ",every=" + format_duration(burst_every_ns);
      out += ",len=" + format_duration(burst_len_ns);
      break;
  }
  out += ",seed=" + std::to_string(seed);
  return out;
}

bool parse_arrival_spec(std::string_view text, ArrivalSpec* out,
                        std::string* error) {
  const auto fail = [error](std::string message) {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return false;
  };
  std::string_view kind = text;
  std::string_view params;
  if (const auto colon = text.find(':'); colon != std::string_view::npos) {
    kind = text.substr(0, colon);
    params = text.substr(colon + 1);
  }
  ArrivalSpec spec;
  if (kind == "poisson") {
    spec.kind = ArrivalKind::kPoisson;
  } else if (kind == "diurnal") {
    spec.kind = ArrivalKind::kDiurnal;
  } else if (kind == "burst") {
    spec.kind = ArrivalKind::kBurst;
  } else {
    return fail("unknown arrival kind '" + std::string(kind) +
                "' (poisson, diurnal, burst)");
  }
  while (!params.empty()) {
    std::string_view pair = params;
    if (const auto comma = params.find(','); comma != std::string_view::npos) {
      pair = params.substr(0, comma);
      params = params.substr(comma + 1);
    } else {
      params = {};
    }
    const auto eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return fail("arrival param '" + std::string(pair) + "' is not key=value");
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string value(pair.substr(eq + 1));
    try {
      if (key == "rate") {
        spec.rate_per_sec = std::stod(value);
      } else if (key == "amplitude") {
        spec.amplitude = std::stod(value);
      } else if (key == "factor") {
        spec.burst_factor = std::stod(value);
      } else if (key == "seed") {
        spec.seed = std::stoull(value);
      } else if (key == "period") {
        if (!parse_duration(value, &spec.period_ns)) {
          return fail("bad duration '" + value + "'");
        }
      } else if (key == "every") {
        if (!parse_duration(value, &spec.burst_every_ns)) {
          return fail("bad duration '" + value + "'");
        }
      } else if (key == "len") {
        if (!parse_duration(value, &spec.burst_len_ns)) {
          return fail("bad duration '" + value + "'");
        }
      } else {
        return fail("unknown arrival param '" + std::string(key) + "'");
      }
    } catch (const std::exception&) {
      return fail("bad value for arrival param '" + std::string(key) + "'");
    }
  }
  if (spec.rate_per_sec <= 0) {
    return fail("arrival rate must be positive");
  }
  if (spec.kind == ArrivalKind::kDiurnal &&
      (spec.amplitude < 0 || spec.amplitude > 1 || spec.period_ns == 0)) {
    return fail("diurnal needs 0<=amplitude<=1 and period>0");
  }
  if (spec.kind == ArrivalKind::kBurst &&
      (spec.burst_factor < 1 || spec.burst_every_ns == 0 ||
       spec.burst_len_ns > spec.burst_every_ns)) {
    return fail("burst needs factor>=1 and len<=every");
  }
  *out = spec;
  return true;
}

std::uint64_t ArrivalGenerator::next() {
  const double peak = spec_.peak_rate();
  const double peak_per_ns = peak / 1e9;
  const bool homogeneous = spec_.kind == ArrivalKind::kPoisson;
  for (;;) {
    // 1 - u is in (0, 1], so det_log is finite and the gap positive.
    const double u = rng_.next_double();
    t_ns_ += -det_log(1.0 - u) / peak_per_ns;
    const std::uint64_t stamp = static_cast<std::uint64_t>(t_ns_);
    if (homogeneous) {
      return stamp;
    }
    const double accept = spec_.rate_at(stamp) / peak;
    if (rng_.next_double() < accept) {
      return stamp;
    }
  }
}

std::vector<std::uint64_t> generate_arrivals(const ArrivalSpec& spec,
                                             std::size_t count) {
  ArrivalGenerator generator(spec);
  std::vector<std::uint64_t> arrivals;
  arrivals.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    arrivals.push_back(generator.next());
  }
  return arrivals;
}

std::size_t place_launch(std::uint64_t seed, std::uint64_t index,
                         std::size_t nodes) {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ull * (index + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % (nodes == 0 ? 1 : nodes));
}

}  // namespace pvm::fleet
