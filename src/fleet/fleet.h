// pvm::fleet — region-scale serverless serving above pvm::sweep.
//
// A fleet scenario shards `launches` container starts across `nodes`
// independent per-node simulations per deployment mode. Each node is one
// host: its own VirtualPlatform (so its own virtual clock, L0/L1 stack,
// and fault injector), an admission-controlled slot pool, a warm pool of
// pre-booted sandboxes, and an optional snapshot template checkpointed
// through pvm::wal so cold starts can restore instead of booting from
// nothing (RunD-style). Launch placement and arrival streams are stateless
// functions of the spec seed, so any shard recomputes its share without
// coordination and `--jobs N` equals serial byte-for-byte: nodes run under
// sweep::run_indexed and their telemetry merges in node-index order via
// the mergeable pvm::ts histograms.
//
// Per-launch lifecycle on a node:
//   arrival -> admission (slot acquire; queue wait measured)
//           -> warm sandbox from the idle pool, else create + restore-boot
//              from the wal snapshot (shadow-paging modes), else cold boot
//           -> function body (mmap + touches + syscalls + compute)
//           -> sandbox parked back into the idle pool, slot released.
// A boot OOM-kill retires the sandbox *and its slot* — a dead sandbox pins
// its frames, so the node degrades exactly like an exhausted host. A start
// latency beyond the deadline counts as a crash (the runtime gave up) but
// the sandbox survives. Launches still queued when the run drains are
// `starved`.
//
// Export schema "pvm.fleet.v1": spec, per-mode groups of per-node cells
// (each embedding its pvm.bench.v1 document), a per-mode rollup of counts
// and latency quantiles, and fleet-wide SLO verdicts in the same shape
// pvm.timeseries.v1 uses, so benchdiff gates both with one code path.

#ifndef PVM_SRC_FLEET_FLEET_H_
#define PVM_SRC_FLEET_FLEET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/backends/config.h"
#include "src/fleet/arrival.h"
#include "src/obs/ts.h"
#include "src/sweep/sweep.h"

namespace pvm::fleet {

inline constexpr std::string_view kFleetSchemaVersion = "pvm.fleet.v1";

// RunD-style sandbox start deadline (same budget as fig12_highload).
inline constexpr std::uint64_t kDefaultDeadlineNs = 10'000'000;

struct FleetSpec {
  ArrivalSpec arrival;
  std::uint64_t launches = 2000;  // fleet-wide, per deployment mode
  std::size_t nodes = 4;
  std::uint32_t capacity = 96;  // concurrent sandboxes admitted per node
  std::uint32_t warm_pool = 4;  // sandboxes pre-booted per node
  bool snapshot_restore = true;
  int cold_init_pages = 48;
  int restore_init_pages = 8;
  std::uint64_t cold_image_bytes = 256 * 1024;
  std::uint64_t restore_image_bytes = 64 * 1024;
  std::uint64_t deadline_ns = kDefaultDeadlineNs;
  std::uint64_t window_ns = ts::kDefaultWindowNs;
  int fn_pages = 8;           // function working set
  int fn_syscalls = 4;        // syscalls per invocation (last one timed)
  std::uint64_t fn_compute_ns = 50'000;
  std::string fault_plan = "none";
  SchedulePolicy policy = SchedulePolicy::kFifo;
  std::uint64_t schedule_seed = 1;
  std::uint64_t seed = 1;  // placement seed
  std::vector<DeployMode> modes{DeployMode::kKvmEptNst, DeployMode::kPvmNst};
};

// One node's run: its telemetry document plus the embedded bench export.
struct NodeOutcome {
  DeployMode mode = DeployMode::kPvmNst;
  std::size_t node = 0;
  bool ok = false;
  std::string error;
  std::uint64_t events = 0;
  std::uint64_t sim_ns = 0;
  std::uint64_t containers = 0;       // sandboxes created on the node
  std::uint64_t snapshot_bytes = 0;   // wal checkpoint size (0: no snapshot)
  std::uint64_t snapshot_records = 0;
  ts::TsDoc doc;
  std::string bench_json;  // pvm.bench.v1 for this node
};

struct FleetGroup {
  DeployMode mode = DeployMode::kPvmNst;
  std::vector<NodeOutcome> nodes;
  ts::TsDoc rollup;  // node docs merged in node-index order
};

struct FleetResult {
  std::vector<FleetGroup> groups;
  // Per-group rollups prefixed "<mode>/" and merged — the document SLOs
  // evaluate against (and what --timeseries exports).
  ts::TsDoc fleetwide;
  std::vector<ts::SloResult> slos;
  sweep::SweepTiming timing;
};

// The launches assigned to `node` (via place_launch) in arrival order.
std::vector<std::uint64_t> node_arrivals(const FleetSpec& spec,
                                         std::size_t node);

// Runs one node of the fleet serially. Deterministic per
// (spec, mode, node): every shard computes the same outcome.
NodeOutcome run_node(const FleetSpec& spec, DeployMode mode, std::size_t node);

// Runs modes x nodes cells across `jobs` workers and merges in index
// order; evaluates `slos` on the fleet-wide document.
FleetResult run_fleet(const FleetSpec& spec, int jobs,
                      const std::vector<ts::SloSpec>& slos);

// pvm.fleet.v1. Deterministic; `timing` adds the wall-clock section (omit
// for byte-comparable output).
std::string render_fleet_json(const FleetSpec& spec, const FleetResult& result,
                              const sweep::SweepTiming* timing = nullptr);

}  // namespace pvm::fleet

#endif  // PVM_SRC_FLEET_FLEET_H_
