#include "src/wal/wal.h"

#include <array>
#include <cstring>
#include <fstream>

#include "src/fault/fault.h"

namespace pvm::wal {

namespace {

// CRC-64/XZ: reflected ECMA-182 polynomial.
constexpr std::uint64_t kCrcPoly = 0xC96C5795D7870F42ull;

std::array<std::uint64_t, 256> build_crc_table() {
  std::array<std::uint64_t, 256> table{};
  for (std::uint64_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) != 0 ? (crc >> 1) ^ kCrcPoly : crc >> 1;
    }
    table[static_cast<std::size_t>(i)] = crc;
  }
  return table;
}

const std::array<std::uint64_t, 256>& crc_table() {
  static const std::array<std::uint64_t, 256> kTable = build_crc_table();
  return kTable;
}

std::uint32_t read_u32_raw(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

std::uint64_t read_u64_raw(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

std::uint16_t read_u16_raw(const char* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint8_t>(p[0]) |
                                    (static_cast<std::uint16_t>(static_cast<std::uint8_t>(p[1]))
                                     << 8));
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

// The CRC covers the frame header with the crc field itself zeroed, plus the
// payload — so any bit flip in either is caught.
std::string frame_record(RecordType type, std::uint64_t seq, std::string_view payload) {
  std::string frame;
  frame.reserve(kRecordHeaderBytes + payload.size());
  put_u32(frame, kRecordMagic);
  put_u16(frame, static_cast<std::uint16_t>(type));
  put_u16(frame, kFormatVersion);
  put_u64(frame, seq);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  const std::size_t crc_offset = frame.size();
  put_u64(frame, 0);  // crc placeholder
  frame.append(payload);
  const std::uint64_t crc = crc64(frame);
  std::string crc_bytes;
  put_u64(crc_bytes, crc);
  frame.replace(crc_offset, 8, crc_bytes);
  return frame;
}

}  // namespace

std::uint64_t crc64(std::string_view bytes, std::uint64_t seed) {
  const auto& table = crc_table();
  std::uint64_t crc = ~seed;
  for (const char c : bytes) {
    crc = table[(crc ^ static_cast<std::uint8_t>(c)) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_string(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

bool get_u32(std::string_view bytes, std::size_t* cursor, std::uint32_t* v) {
  if (*cursor + 4 > bytes.size()) {
    return false;
  }
  *v = read_u32_raw(bytes.data() + *cursor);
  *cursor += 4;
  return true;
}

bool get_u64(std::string_view bytes, std::size_t* cursor, std::uint64_t* v) {
  if (*cursor + 8 > bytes.size()) {
    return false;
  }
  *v = read_u64_raw(bytes.data() + *cursor);
  *cursor += 8;
  return true;
}

bool get_string(std::string_view bytes, std::size_t* cursor, std::string* s) {
  std::size_t probe = *cursor;
  std::uint32_t len = 0;
  if (!get_u32(bytes, &probe, &len) || probe + len > bytes.size()) {
    return false;
  }
  s->assign(bytes.substr(probe, len));
  *cursor = probe + len;
  return true;
}

std::uint64_t Log::append(RecordType type, std::string_view payload) {
  if (torn_) {
    // The injected crash already happened; the owner process is "dead".
    return next_seq_;
  }
  const std::uint64_t seq = next_seq_++;
  std::string frame = frame_record(type, seq, payload);
  if (faults_ != nullptr) {
    const std::uint64_t drop = faults_->wal_torn_bytes(site_, frame.size());
    if (drop > 0) {
      const std::size_t keep = frame.size() > drop ? frame.size() - drop : 0;
      buf_.append(frame.data(), keep);
      torn_ = true;
      return seq;
    }
  }
  buf_.append(frame);
  return seq;
}

std::uint64_t Log::append_checkpoint(std::string_view payload) {
  return append(RecordType::kCheckpoint, payload);
}

bool Log::save(const std::string& path, std::string* error) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot open " + path + " for writing";
    }
    return false;
  }
  out.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  if (!out) {
    if (error != nullptr) {
      *error = "short write to " + path;
    }
    return false;
  }
  return true;
}

std::vector<Record> RecoveryResult::checkpointed_prefix() const {
  if (!last_checkpoint.has_value()) {
    return {};
  }
  return std::vector<Record>(records.begin(),
                             records.begin() + static_cast<std::ptrdiff_t>(*last_checkpoint) +
                                 1);
}

RecoveryResult recover(std::string_view bytes) {
  RecoveryResult result;
  std::size_t cursor = 0;
  std::uint64_t expected_seq = 0;
  const auto truncate_here = [&](std::string reason) {
    result.bytes_truncated = bytes.size() - cursor;
    result.torn_tail = result.bytes_truncated > 0;
    result.detail = std::move(reason);
  };

  while (cursor < bytes.size()) {
    if (cursor + kRecordHeaderBytes > bytes.size()) {
      truncate_here("short header at offset " + std::to_string(cursor));
      break;
    }
    const char* p = bytes.data() + cursor;
    const std::uint32_t magic = read_u32_raw(p);
    if (magic != kRecordMagic) {
      truncate_here("bad magic at offset " + std::to_string(cursor));
      break;
    }
    const std::uint16_t type = read_u16_raw(p + 4);
    const std::uint16_t version = read_u16_raw(p + 6);
    const std::uint64_t seq = read_u64_raw(p + 8);
    const std::uint32_t payload_len = read_u32_raw(p + 16);
    const std::uint64_t stored_crc = read_u64_raw(p + 20);
    if (version != kFormatVersion) {
      truncate_here("unsupported version " + std::to_string(version) + " at offset " +
                    std::to_string(cursor));
      break;
    }
    if (seq != expected_seq) {
      truncate_here("sequence discontinuity at offset " + std::to_string(cursor) +
                    " (expected " + std::to_string(expected_seq) + ", found " +
                    std::to_string(seq) + ")");
      break;
    }
    const std::size_t frame_size = kRecordHeaderBytes + payload_len;
    if (cursor + frame_size > bytes.size()) {
      truncate_here("torn payload at offset " + std::to_string(cursor));
      break;
    }
    // Re-derive the CRC with the crc field zeroed, exactly as append did.
    std::string check(bytes.substr(cursor, frame_size));
    std::memset(check.data() + 20, 0, 8);
    if (crc64(check) != stored_crc) {
      truncate_here("checksum mismatch at offset " + std::to_string(cursor));
      break;
    }

    Record record;
    record.type = static_cast<RecordType>(type);
    record.version = version;
    record.seq = seq;
    record.payload.assign(bytes.substr(cursor + kRecordHeaderBytes, payload_len));
    if (record.type == RecordType::kCheckpoint) {
      result.last_checkpoint = result.records.size();
    }
    result.records.push_back(std::move(record));
    cursor += frame_size;
    ++expected_seq;
  }
  result.bytes_consumed = cursor;
  return result;
}

bool load_file(const std::string& path, std::string* bytes, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    bytes->clear();  // missing file: a fresh log
    return true;
  }
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) {
    if (error != nullptr) {
      *error = "read failure on " + path;
    }
    return false;
  }
  *bytes = std::move(data);
  return true;
}

}  // namespace pvm::wal
