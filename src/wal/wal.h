// pvm::wal — append-only, versioned, checksummed record log.
//
// The write-ahead log behind live migration's dirty-page stream, the
// shadow-engine checkpoint/restore path, and the sweep drivers'
// checkpoint-resume (pvm-matrix / simcheck). One byte format serves all of
// them: a sequence of framed records, each carrying a 16-bit type, a 16-bit
// format version, a monotonically increasing sequence number, and a CRC-64
// over header and payload. Checkpoint records (kCheckpoint) mark consistent
// prefixes; recovery replays records up to the torn tail and reports the
// last checkpoint so a consumer can fall back to the newest consistent
// state.
//
// Crash consistency is the point: recover() accepts arbitrary byte prefixes
// (a process can die mid-append) and truncates at the first record whose
// frame is short, whose magic is wrong, or whose checksum mismatches — the
// classic truncate-at-first-bad-checksum rule. pvm::fault can inject torn
// writes at append time (FaultKind::kWalTornWrite / kWalPartialAppend),
// modelling the death deterministically: the log keeps the partial bytes,
// refuses further appends, and recovery must cope.
//
// Everything is deterministic: no wall clock, no randomness, little-endian
// integer encoding, so the same append sequence produces identical bytes on
// every run — the property the checkpoint-resume byte-identity tests pin.

#ifndef PVM_SRC_WAL_WAL_H_
#define PVM_SRC_WAL_WAL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pvm::fault {
class FaultInjector;
}  // namespace pvm::fault

namespace pvm::wal {

// Frame magic ("WALR") — guards against replaying a file that is not a WAL
// and detects mid-stream corruption (a record boundary that does not start
// a record).
inline constexpr std::uint32_t kRecordMagic = 0x52'4c'41'57;  // "WALR" LE
inline constexpr std::uint16_t kFormatVersion = 1;

// Fixed frame: magic(4) type(2) version(2) seq(8) payload_len(4) crc(8).
inline constexpr std::size_t kRecordHeaderBytes = 28;

enum class RecordType : std::uint16_t {
  kData = 1,        // opaque consumer payload
  kCheckpoint = 2,  // consistency marker; payload = consumer state digest
  kHeader = 3,      // stream identity (spec fingerprint); first record
  // Live migration dirty-log stream.
  kDirtyPage = 16,   // payload: u64 page key
  kRoundBegin = 17,  // payload: u64 round number
  // Shadow-engine snapshot stream.
  kSnapshotBegin = 32,  // payload: engine name
  kGpaMapEntry = 33,    // payload: u64 gpa_page, u64 l1_frame, u64 flags
  kShadowLeaf = 34,     // payload: u64 pid, u64 ring, u64 gva, u64 frame,
                        //          u64 flags, u64 gfn
  // Sweep checkpoint-resume streams.
  kCellResult = 48,  // payload: u64 cell index + serialized CellResult
  kCaseResult = 49,  // payload: u64 case index + serialized SimcheckResult
};

struct Record {
  RecordType type = RecordType::kData;
  std::uint16_t version = kFormatVersion;
  std::uint64_t seq = 0;
  std::string payload;
};

// CRC-64/XZ (ECMA-182 polynomial, reflected). Table built on first use;
// deterministic and dependency-free.
std::uint64_t crc64(std::string_view bytes, std::uint64_t seed = 0);

// ---- Little-endian payload encoding helpers ----

void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
// Length-prefixed (u32) string.
void put_string(std::string& out, std::string_view s);

// Cursor-based readers; return false on underrun (cursor is left unchanged
// so the caller can report the malformed offset).
bool get_u32(std::string_view bytes, std::size_t* cursor, std::uint32_t* v);
bool get_u64(std::string_view bytes, std::size_t* cursor, std::uint64_t* v);
bool get_string(std::string_view bytes, std::size_t* cursor, std::string* s);

// An append-only log over an in-memory byte buffer, with explicit file
// save/append. The buffer IS the durable representation: save() writes it
// verbatim, recover() parses it verbatim, and the fault injector tears it
// byte-exactly.
class Log {
 public:
  // `site` names this log at fault-injection hooks ("wal:migration:vm0",
  // "wal:matrix", ...), so plans can target one log among several.
  explicit Log(std::string site = "wal") : site_(std::move(site)) {}

  // Binds the torn-write fault hooks. Null detaches (the default): appends
  // are then always intact.
  void set_faults(fault::FaultInjector* faults) { faults_ = faults; }

  const std::string& site() const { return site_; }

  // Appends one framed record; returns its sequence number. After a torn
  // append (injected crash) the log is dead: further appends are dropped —
  // the process that owned it would no longer be running.
  std::uint64_t append(RecordType type, std::string_view payload);
  std::uint64_t append_checkpoint(std::string_view payload = {});

  // True once an injected torn write has killed the log.
  bool torn() const { return torn_; }

  std::uint64_t record_count() const { return next_seq_; }
  const std::string& bytes() const { return buf_; }

  void clear() {
    buf_.clear();
    next_seq_ = 0;
    torn_ = false;
  }

  // Writes the full buffer to `path` (truncating). Returns false and sets
  // `error` on I/O failure.
  bool save(const std::string& path, std::string* error) const;

 private:
  std::string site_;
  std::string buf_;
  std::uint64_t next_seq_ = 0;
  bool torn_ = false;
  fault::FaultInjector* faults_ = nullptr;
};

// What recovery found in a byte stream.
struct RecoveryResult {
  std::vector<Record> records;  // the valid prefix, in append order
  std::size_t bytes_consumed = 0;
  std::size_t bytes_truncated = 0;  // torn/corrupt tail dropped
  bool torn_tail = false;
  std::string detail;  // human-readable reason for the truncation
  // Index into `records` of the last kCheckpoint, if any: the newest
  // consistent prefix a checkpoint-consistency consumer may use.
  std::optional<std::size_t> last_checkpoint;

  // Records up to and including the last checkpoint (empty when no
  // checkpoint survived) — the replay set for checkpoint-consistent state.
  std::vector<Record> checkpointed_prefix() const;
};

// Parses `bytes`, truncating at the first short frame, bad magic, version
// mismatch, sequence discontinuity, or checksum failure. Never throws: a
// torn or corrupt tail is an expected crash artifact, not an error.
RecoveryResult recover(std::string_view bytes);

// Reads a file fully; a missing file yields an empty stream (fresh log) and
// returns true. Returns false + `error` only on a real I/O failure.
bool load_file(const std::string& path, std::string* bytes, std::string* error);

}  // namespace pvm::wal

#endif  // PVM_SRC_WAL_WAL_H_
