#include "src/workloads/runner.h"

#include "src/guest/guest_kernel.h"
#include "src/workloads/timer.h"

namespace pvm {

namespace {

Task<void> timed(Simulation& sim, Task<void> inner, SimTime* duration) {
  const SimTime start = sim.now();
  co_await std::move(inner);
  *duration = sim.now() - start;
}

}  // namespace

ConcurrentResult run_processes_in_container(VirtualPlatform& platform,
                                            SecureContainer& container, int process_count,
                                            const ProcessBody& body, int resident_pages) {
  Simulation& sim = platform.sim();

  // Stage 1: create one process per worker, each pinned to its own vCPU.
  std::vector<Vcpu*> vcpus;
  std::vector<GuestProcess*> procs(process_count, nullptr);
  for (int i = 0; i < process_count; ++i) {
    vcpus.push_back(&container.add_vcpu());
  }
  for (int i = 0; i < process_count; ++i) {
    sim.spawn([](GuestKernel& kernel, Vcpu& vcpu, GuestProcess** out,
                 int pages) -> Task<void> {
      *out = co_await kernel.create_init_process(vcpu, pages);
    }(container.kernel(), *vcpus[i], &procs[i], resident_pages));
  }
  sim.run();

  // Stage 2: run the bodies concurrently.
  ConcurrentResult result;
  result.task_times.resize(process_count, 0);
  const SimTime start = sim.now();
  for (int i = 0; i < process_count; ++i) {
    sim.spawn(timed(sim, body(i, *vcpus[i], *procs[i]), &result.task_times[i]));
  }
  sim.run();
  result.makespan = sim.now() - start;
  return result;
}

ContainersResult run_containers(VirtualPlatform& platform, int container_count,
                                const ContainerBody& body, int init_pages, int timer_hz) {
  Simulation& sim = platform.sim();

  std::vector<SecureContainer*> containers;
  for (int i = 0; i < container_count; ++i) {
    containers.push_back(&platform.create_container("c" + std::to_string(i)));
  }
  for (SecureContainer* container : containers) {
    sim.spawn(container->boot(init_pages));
  }
  sim.run();

  ContainersResult result;
  for (SecureContainer* container : containers) {
    result.boot_latencies.push_back(container->boot_latency());
    result.boot_failed.push_back(container->boot_failed());
    if (container->boot_failed()) {
      ++result.boots_failed;
    }
  }

  result.task_times.resize(container_count, 0);
  const SimTime start = sim.now();
  for (int i = 0; i < container_count; ++i) {
    SecureContainer& container = *containers[i];
    if (result.boot_failed[static_cast<std::size_t>(i)]) {
      continue;  // never came up; there is no init process to run the body in
    }
    auto stop = std::make_shared<bool>(false);
    if (timer_hz > 0) {
      sim.spawn(timer_ticks(container, timer_hz, stop));
    }
    sim.spawn([](Simulation& s, Task<void> inner, SimTime* duration,
                 std::shared_ptr<bool> stop_flag) -> Task<void> {
      const SimTime body_start = s.now();
      co_await std::move(inner);
      *duration = s.now() - body_start;
      *stop_flag = true;
    }(sim, body(i, container, container.vcpu(0), *container.init_process()),
      &result.task_times[i], stop));
  }
  sim.run();
  result.makespan = sim.now() - start;
  return result;
}

}  // namespace pvm
