// LMbench-style microbenchmark operations (paper §4.2, Tables 3 & 4, Fig. 2).
//
// Each operation reproduces the *operation mix* of the corresponding LMbench
// test — syscall entry/exits, page faults, fork/exec address-space work, I/O
// — on the simulated guest. Kernel body costs are fixed constants common to
// every deployment; all cross-deployment differences come from the
// virtualization protocols.

#ifndef PVM_SRC_WORKLOADS_LMBENCH_H_
#define PVM_SRC_WORKLOADS_LMBENCH_H_

#include <cstdint>
#include <string_view>

#include "src/backends/platform.h"
#include "src/metrics/histogram.h"
#include "src/sim/task.h"

namespace pvm {

enum class LmbenchOp {
  kNullIo,       // "null I/O": read/write on /dev/null
  kStat,         // stat()
  kOpenClose,    // open()+close()
  kSelectTcp,    // select() on 10 TCP fds
  kSigInstall,   // sigaction()
  kSigHandle,    // signal delivery + sigreturn
  kForkProc,     // fork + child exit + wait
  kExecProc,     // fork + execve + exit
  kShProc,       // fork + exec sh -c
  kFileCreate0K,   // create+delete empty file
  kFileCreate10K,  // create+delete 10 KiB file
  kMmap,           // mmap+touch+munmap of a region
  kProtFault,      // write to a write-protected page
  kPageFault,      // touch pages of a fresh mapping
  kSelect100Fd,    // select() on 100 fds
  kGetPid,         // Table 2's syscall
  kTcpLatency,     // TCP request/response over vhost-net
  kUdpLatency,     // UDP request/response
  kTcpBandwidth,   // bulk TCP transfer (per 64 KiB chunk)
  kCtxSwitch,      // lat_ctx-style process context switch (2 procs, hot set)
};

std::string_view lmbench_op_name(LmbenchOp op);

struct LmbenchParams {
  // Pages a benchmark process has resident before measurement starts — this
  // is the footprint fork()'s COW pass walks.
  int resident_pages = 192;
  int fork_child_touches = 4;  // pages a fork child dirties before exiting
  int exec_fresh_pages = 48;   // image pages exec touches
  int mmap_pages = 64;
};

// Runs `iterations` of `op` in one process of `container` on `vcpu` and
// returns the average latency in nanoseconds. When `histogram` is non-null,
// each iteration's latency is recorded (for tail-latency reporting).
Task<std::uint64_t> lmbench_run(SecureContainer& container, Vcpu& vcpu, GuestProcess& proc,
                                LmbenchOp op, int iterations, const LmbenchParams& params,
                                LatencyHistogram* histogram = nullptr);

}  // namespace pvm

#endif  // PVM_SRC_WORKLOADS_LMBENCH_H_
