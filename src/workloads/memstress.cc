#include "src/workloads/memstress.h"

#include "src/guest/guest_kernel.h"
#include "src/sim/random.h"

namespace pvm {

Task<void> memstress_process(SecureContainer& container, Vcpu& vcpu, GuestProcess& proc,
                             MemStressParams params) {
  GuestKernel& kernel = container.kernel();
  Simulation& sim = container.sim();
  const std::uint64_t pages_per_chunk = params.chunk_bytes / kPageSize;
  Xoshiro256 rng(params.seed + proc.pid() * 7919);
  const auto jittered = [&](std::uint64_t ns) -> std::uint64_t {
    if (params.jitter <= 0) {
      return ns;
    }
    const double factor = 1.0 + params.jitter * (2.0 * rng.next_double() - 1.0);
    return static_cast<std::uint64_t>(static_cast<double>(ns) * factor);
  };

  std::uint64_t touched = 0;
  while (touched < params.total_bytes) {
    const std::uint64_t base = co_await kernel.sys_mmap(vcpu, proc, params.chunk_bytes);
    for (std::uint64_t i = 0; i < pages_per_chunk; ++i) {
      co_await kernel.touch(vcpu, proc, base + i * kPageSize, /*write=*/true);
      co_await sim.delay(jittered(params.compute_per_page_ns));
    }
    touched += params.chunk_bytes;
    if (params.release_chunks) {
      co_await kernel.sys_munmap(vcpu, proc, base);
    }
  }
}

}  // namespace pvm
