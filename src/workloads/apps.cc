#include "src/workloads/apps.h"

#include "src/guest/guest_kernel.h"
#include "src/sim/barrier.h"
#include "src/sim/random.h"

namespace pvm {

namespace {

SimTime scaled(double scale, std::uint64_t ns) {
  return static_cast<SimTime>(scale * static_cast<double>(ns));
}

}  // namespace

Task<void> app_kbuild(SecureContainer& container, Vcpu& vcpu, GuestProcess& proc,
                      AppParams params) {
  GuestKernel& kernel = container.kernel();
  const int units = static_cast<int>(24 * params.size);

  for (int unit = 0; unit < units; ++unit) {
    // make spawns cc1 via fork+exec.
    GuestProcess* cc = co_await kernel.sys_fork(vcpu, proc);
    co_await kernel.mem().activate_process(vcpu, *cc, false);
    co_await kernel.sys_exec(vcpu, *cc, /*fresh_pages=*/40);

    // Compile: compute plus compiler heap growth (fresh pages, kept until
    // the process exits).
    co_await container.compute(scaled(params.compute_scale, 10 * kNsPerMs));
    const std::uint64_t heap = co_await kernel.sys_mmap(vcpu, *cc, 512 * kPageSize);
    for (int i = 0; i < 512; ++i) {
      co_await kernel.touch(vcpu, *cc, heap + static_cast<std::uint64_t>(i) * kPageSize, true);
    }

    // Emit the object file.
    co_await kernel.sys_file_op(vcpu, *cc, 60 * kNsPerUs, 8, 0);
    co_await kernel.do_io(vcpu, *cc, container.io(), 96 * 1024);

    co_await kernel.sys_exit(vcpu, *cc);
    co_await kernel.mem().activate_process(vcpu, proc, false);
  }
  // Final link: read objects, one large write.
  co_await container.compute(scaled(params.compute_scale, 40 * kNsPerMs));
  co_await kernel.do_io(vcpu, proc, container.io(), 2 * 1024 * 1024);
}

Task<double> app_blogbench(SecureContainer& container, Vcpu& vcpu, GuestProcess& proc,
                           AppParams params) {
  GuestKernel& kernel = container.kernel();
  Simulation& sim = container.sim();
  Xoshiro256 rng(params.seed);
  const int iterations = static_cast<int>(400 * params.size);

  const SimTime start = sim.now();
  for (int i = 0; i < iterations; ++i) {
    const double draw = rng.next_double();
    if (draw < 0.25) {
      // Write an article: create + data pages + disk write.
      co_await kernel.sys_file_op(vcpu, proc, 40 * kNsPerUs, 8, 0);
      co_await kernel.do_io(vcpu, proc, container.io(), 16 * 1024);
    } else if (draw < 0.35) {
      // Rewrite/delete.
      co_await kernel.sys_file_op(vcpu, proc, 28 * kNsPerUs, 4, 8);
    } else {
      // Read traffic: open/close + cached reads.
      co_await kernel.sys_simple(vcpu, proc, 12 * kNsPerUs, 3);
    }
    co_await container.compute(scaled(params.compute_scale, 8 * kNsPerUs));
  }
  const double seconds = static_cast<double>(sim.now() - start) / 1e9;
  co_return static_cast<double>(iterations) / seconds;
}

Task<double> app_specjbb(SecureContainer& container, Vcpu& vcpu, GuestProcess& proc,
                         AppParams params) {
  GuestKernel& kernel = container.kernel();
  Simulation& sim = container.sim();
  const int transactions = static_cast<int>(3000 * params.size);
  constexpr int kOpsPerTlab = 24;          // transactions per fresh TLAB
  constexpr std::uint64_t kTlabBytes = 1ull << 20;

  std::uint64_t live_tlab = 0;
  std::uint64_t old_tlab = 0;

  const SimTime start = sim.now();
  for (int op = 0; op < transactions; ++op) {
    if (op % kOpsPerTlab == 0) {
      // New TLAB: allocate and touch (JVM bump-pointer allocation), and let
      // the GC reclaim the one before last (constant live set, heavy page
      // churn — the behaviour that exposes nested memory virtualization).
      if (old_tlab != 0) {
        co_await kernel.sys_munmap(vcpu, proc, old_tlab);
      }
      old_tlab = live_tlab;
      live_tlab = co_await kernel.sys_mmap(vcpu, proc, kTlabBytes);
      for (std::uint64_t page = 0; page < kTlabBytes / kPageSize; ++page) {
        co_await kernel.touch(vcpu, proc, live_tlab + page * kPageSize, true);
      }
    }
    // Transaction body: compute plus a few object accesses.
    co_await container.compute(scaled(params.compute_scale, 35 * kNsPerUs));
    co_await kernel.touch(vcpu, proc, live_tlab + (static_cast<std::uint64_t>(op) % 200) * kPageSize,
                          true);
  }
  const double seconds = static_cast<double>(sim.now() - start) / 1e9;
  co_return static_cast<double>(transactions) / seconds / 1000.0;  // kbops
}

Task<void> app_fluidanimate(SecureContainer& container, AppParams params, int threads,
                            int frames) {
  GuestKernel& kernel = container.kernel();
  Simulation& sim = container.sim();

  auto barrier = std::make_shared<SimBarrier>(sim, threads);
  std::vector<Task<void>> workers;
  std::vector<SimTime> done(threads, 0);

  auto worker = [&kernel, &container, barrier, params, frames](Vcpu& vcpu,
                                                               int index) -> Task<void> {
    GuestProcess* proc = co_await kernel.create_init_process(vcpu, 48);
    // Each thread's slice of the particle grid.
    const std::uint64_t grid = co_await kernel.sys_mmap(vcpu, *proc, 96 * kPageSize);
    for (int i = 0; i < 96; ++i) {
      co_await kernel.touch(vcpu, *proc, grid + static_cast<std::uint64_t>(i) * kPageSize, true);
    }
    for (int frame = 0; frame < frames; ++frame) {
      // Five pipeline stages per frame, each ending in a blocking barrier
      // (fluidanimate's rebuild/density/force/collision/advance phases).
      for (int stage = 0; stage < 5; ++stage) {
        const std::uint64_t jitter =
            1 + ((static_cast<std::uint64_t>(index) * 2654435761u +
                  static_cast<std::uint64_t>(frame * 5 + stage)) %
                 5);
        co_await container.compute(scaled(params.compute_scale, (8 + jitter) * kNsPerMs / 20));
        for (int i = 0; i < 8; ++i) {
          co_await kernel.touch(
              vcpu, *proc,
              grid + ((static_cast<std::uint64_t>(frame * 7 + stage * 13 + i * 11)) % 96) *
                         kPageSize,
              true);
        }
        // Blocking synchronization: idle in HLT until the slowest thread
        // arrives, then pay the wakeup path.
        co_await barrier->arrive_and_wait();
        co_await kernel.cpu().halt(vcpu);
      }
    }
    co_await kernel.sys_exit(vcpu, *proc);
  };

  // Run the workers to completion inside this task.
  struct Joiner {
    int remaining;
  };
  auto joiner = std::make_shared<Joiner>(Joiner{threads});
  for (int t = 0; t < threads; ++t) {
    Vcpu& vcpu = container.add_vcpu();
    container.sim().spawn([](Task<void> inner, std::shared_ptr<Joiner> j) -> Task<void> {
      co_await std::move(inner);
      --j->remaining;
    }(worker(vcpu, t), joiner));
  }
  while (joiner->remaining > 0) {
    co_await sim.delay(kNsPerMs);
  }
}

Task<void> app_cloudsuite(SecureContainer& container, Vcpu& vcpu, GuestProcess& proc,
                          CloudSuiteKind kind, AppParams params) {
  GuestKernel& kernel = container.kernel();
  Xoshiro256 rng(params.seed);

  switch (kind) {
    case CloudSuiteKind::kDataAnalytics: {
      // Map-reduce style: read a split, compute, short-lived buffers.
      const int splits = static_cast<int>(20 * params.size);
      for (int s = 0; s < splits; ++s) {
        co_await kernel.do_io(vcpu, proc, container.io(), 1024 * 1024);
        const std::uint64_t buffer = co_await kernel.sys_mmap(vcpu, proc, 128 * kPageSize);
        for (int i = 0; i < 128; ++i) {
          co_await kernel.touch(vcpu, proc,
                                buffer + static_cast<std::uint64_t>(i) * kPageSize, true);
        }
        co_await container.compute(scaled(params.compute_scale, 6 * kNsPerMs));
        co_await kernel.sys_munmap(vcpu, proc, buffer);
      }
      break;
    }
    case CloudSuiteKind::kGraphAnalytics: {
      // Large resident graph; iterations do irregular reads (TLB-hostile but
      // fault-free after load).
      const std::uint64_t graph_pages = 4096;
      const std::uint64_t graph = co_await kernel.sys_mmap(vcpu, proc, graph_pages * kPageSize);
      for (std::uint64_t i = 0; i < graph_pages; ++i) {
        co_await kernel.touch(vcpu, proc, graph + i * kPageSize, true);
      }
      const int iterations = static_cast<int>(6 * params.size);
      for (int iter = 0; iter < iterations; ++iter) {
        for (int e = 0; e < 3000; ++e) {
          co_await kernel.touch(vcpu, proc, graph + rng.next_below(graph_pages) * kPageSize,
                                false);
        }
        co_await container.compute(scaled(params.compute_scale, 12 * kNsPerMs));
      }
      break;
    }
    case CloudSuiteKind::kInMemoryAnalytics: {
      // Resident matrix with repeated sequential scans (Spark-style).
      const std::uint64_t pages = 8192;
      const std::uint64_t matrix = co_await kernel.sys_mmap(vcpu, proc, pages * kPageSize);
      for (std::uint64_t i = 0; i < pages; ++i) {
        co_await kernel.touch(vcpu, proc, matrix + i * kPageSize, true);
      }
      const int scans = static_cast<int>(4 * params.size);
      for (int scan = 0; scan < scans; ++scan) {
        for (std::uint64_t i = 0; i < pages; i += 4) {
          co_await kernel.touch(vcpu, proc, matrix + i * kPageSize, false);
        }
        co_await container.compute(scaled(params.compute_scale, 20 * kNsPerMs));
      }
      break;
    }
  }
}

}  // namespace pvm
