// Periodic guest timer ticks.
//
// Real guests take a scheduler tick per vCPU; under hardware-assisted
// nesting every tick costs two L0 round trips (§3.3.3), while PVM needs a
// single hardware injection. The tick task runs on its own housekeeping vCPU
// of the container and stops when the shared flag flips.

#ifndef PVM_SRC_WORKLOADS_TIMER_H_
#define PVM_SRC_WORKLOADS_TIMER_H_

#include <memory>

#include "src/backends/platform.h"
#include "src/sim/task.h"

namespace pvm {

// Fires `hz` interrupts per virtual second into a fresh vCPU of `container`
// until `*stop` becomes true.
Task<void> timer_ticks(SecureContainer& container, int hz, std::shared_ptr<bool> stop);

}  // namespace pvm

#endif  // PVM_SRC_WORKLOADS_TIMER_H_
