// Application models for the paper's macro-benchmarks (§4.3, Figs. 11-13):
// Kbuild, Blogbench, SPECjbb2005, fluidanimate, and the three CloudSuite
// workloads. Each reproduces the corresponding application's *operation mix*
// (fork/exec churn, file I/O, heap churn, blocking synchronization, large
// scans) at a documented scale-down; absolute times are smaller than the
// paper's but the cross-deployment ratios are driven by the same mechanisms.

#ifndef PVM_SRC_WORKLOADS_APPS_H_
#define PVM_SRC_WORKLOADS_APPS_H_

#include <cstdint>

#include "src/backends/platform.h"
#include "src/sim/task.h"

namespace pvm {

struct AppParams {
  // Compute-time multiplier for what-if scaling. Host CPU oversubscription
  // no longer needs it: compute bursts queue on the platform's host-CPU
  // pool, so the Fig. 12 slowdown emerges from contention.
  double compute_scale = 1.0;
  // Workload size knob (1.0 = the default scaled-down size).
  double size = 1.0;
  std::uint64_t seed = 42;
};

// Linux kernel build: fork+exec per compilation unit, compiler memory churn,
// object file writes. Completes when all units are built.
Task<void> app_kbuild(SecureContainer& container, Vcpu& vcpu, GuestProcess& proc,
                      AppParams params);

// Busy file server: file create/read/write/delete mix. Returns the
// Blogbench-style score (operations per simulated second).
Task<double> app_blogbench(SecureContainer& container, Vcpu& vcpu, GuestProcess& proc,
                           AppParams params);

// JVM transaction benchmark: per-transaction compute plus TLAB-style heap
// allocation with periodic GC-like release. Returns throughput in kbops.
Task<double> app_specjbb(SecureContainer& container, Vcpu& vcpu, GuestProcess& proc,
                         AppParams params);

// PARSEC fluidanimate: `threads` workers iterating frames with blocking
// (HLT) barrier synchronization and a shared grid in memory.
Task<void> app_fluidanimate(SecureContainer& container, AppParams params, int threads = 4,
                            int frames = 24);

enum class CloudSuiteKind {
  kDataAnalytics,      // I/O + compute + short-lived buffers
  kGraphAnalytics,     // large resident graph, irregular access
  kInMemoryAnalytics,  // large resident matrix, repeated scans
};

Task<void> app_cloudsuite(SecureContainer& container, Vcpu& vcpu, GuestProcess& proc,
                          CloudSuiteKind kind, AppParams params);

}  // namespace pvm

#endif  // PVM_SRC_WORKLOADS_APPS_H_
