// The memory-stress microbenchmark of §2.2 (Fig. 4) and §4.1 (Fig. 10):
// sequentially allocate 1 MiB regions and touch every page; optionally
// release each region after touching (the Fig. 10 variant). Stresses guest
// page-table updates and therefore every scheme's fault protocol.

#ifndef PVM_SRC_WORKLOADS_MEMSTRESS_H_
#define PVM_SRC_WORKLOADS_MEMSTRESS_H_

#include <cstdint>

#include "src/backends/platform.h"
#include "src/sim/task.h"

namespace pvm {

struct MemStressParams {
  // Total bytes touched per process. The paper uses 4 GiB; benchmarks here
  // default to a scaled-down working set (documented in EXPERIMENTS.md) so
  // simulated runs stay tractable — per-page costs are unaffected.
  std::uint64_t total_bytes = 64ull << 20;
  std::uint64_t chunk_bytes = 1ull << 20;
  bool release_chunks = true;             // munmap each chunk (Fig. 10)
  std::uint64_t compute_per_page_ns = 900;  // the benchmark's own page work
  // Per-page compute jitter fraction (0.3 = +-30%). Real workloads are not
  // phase-locked; without jitter, deterministic identical processes pipeline
  // through FIFO locks with artificially zero queueing.
  double jitter = 0.3;
  std::uint64_t seed = 1;
};

Task<void> memstress_process(SecureContainer& container, Vcpu& vcpu, GuestProcess& proc,
                             MemStressParams params);

}  // namespace pvm

#endif  // PVM_SRC_WORKLOADS_MEMSTRESS_H_
