// Concurrency harnesses: run a workload body across N processes of one
// container, or across N containers, and collect per-task virtual times.

#ifndef PVM_SRC_WORKLOADS_RUNNER_H_
#define PVM_SRC_WORKLOADS_RUNNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/backends/platform.h"
#include "src/sim/task.h"

namespace pvm {

struct ConcurrentResult {
  std::vector<SimTime> task_times;  // per-task durations (ns)
  SimTime makespan = 0;             // start of first to end of last

  double mean_seconds() const {
    if (task_times.empty()) {
      return 0.0;
    }
    double sum = 0;
    for (const SimTime t : task_times) {
      sum += static_cast<double>(t);
    }
    return sum / static_cast<double>(task_times.size()) / 1e9;
  }
  double makespan_seconds() const { return static_cast<double>(makespan) / 1e9; }
};

// Body run per process: (process index, vcpu, process).
using ProcessBody = std::function<Task<void>(int, Vcpu&, GuestProcess&)>;
// Body run per container: (container index, container, vcpu0, init process).
using ContainerBody = std::function<Task<void>(int, SecureContainer&, Vcpu&, GuestProcess&)>;

// Spawns `process_count` processes inside `container` (each on its own
// vCPU), runs `body` in all of them concurrently, and reports durations.
// The container must already be booted.
ConcurrentResult run_processes_in_container(VirtualPlatform& platform,
                                            SecureContainer& container, int process_count,
                                            const ProcessBody& body, int resident_pages = 32);

// Boots `container_count` containers concurrently, then runs `body` in each
// (one process, one vCPU per container). Also records boot latencies.
// A container whose boot failed (init OOM-killed under an exhausted host)
// gets no body: its entry in `boot_failed` is true and its task time is 0.
struct ContainersResult : ConcurrentResult {
  std::vector<SimTime> boot_latencies;
  std::vector<bool> boot_failed;
  int boots_failed = 0;
};
// `timer_hz` > 0 additionally runs a scheduler-tick task per container for
// the duration of its body (the per-vCPU interrupt load real guests carry).
ContainersResult run_containers(VirtualPlatform& platform, int container_count,
                                const ContainerBody& body, int init_pages = 96,
                                int timer_hz = 0);

}  // namespace pvm

#endif  // PVM_SRC_WORKLOADS_RUNNER_H_
