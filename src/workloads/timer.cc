#include "src/workloads/timer.h"

namespace pvm {

Task<void> timer_ticks(SecureContainer& container, int hz, std::shared_ptr<bool> stop) {
  if (hz <= 0) {
    co_return;
  }
  Vcpu& vcpu = container.add_vcpu();
  const SimTime period = kNsPerSec / static_cast<SimTime>(hz);
  while (!*stop) {
    co_await container.sim().delay(period);
    if (*stop) {
      break;
    }
    co_await container.cpu().interrupt(vcpu);
  }
}

}  // namespace pvm
