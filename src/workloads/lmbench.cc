#include "src/workloads/lmbench.h"

#include "src/guest/guest_kernel.h"

namespace pvm {

std::string_view lmbench_op_name(LmbenchOp op) {
  switch (op) {
    case LmbenchOp::kNullIo:
      return "null I/O";
    case LmbenchOp::kStat:
      return "stat";
    case LmbenchOp::kOpenClose:
      return "open/close";
    case LmbenchOp::kSelectTcp:
      return "slct TCP";
    case LmbenchOp::kSigInstall:
      return "sig inst";
    case LmbenchOp::kSigHandle:
      return "sig hndl";
    case LmbenchOp::kForkProc:
      return "fork proc";
    case LmbenchOp::kExecProc:
      return "exec proc";
    case LmbenchOp::kShProc:
      return "sh proc";
    case LmbenchOp::kFileCreate0K:
      return "0K file";
    case LmbenchOp::kFileCreate10K:
      return "10K file";
    case LmbenchOp::kMmap:
      return "mmap";
    case LmbenchOp::kProtFault:
      return "prot fault";
    case LmbenchOp::kPageFault:
      return "page fault";
    case LmbenchOp::kSelect100Fd:
      return "100fd select";
    case LmbenchOp::kGetPid:
      return "get_pid";
    case LmbenchOp::kTcpLatency:
      return "TCP lat";
    case LmbenchOp::kUdpLatency:
      return "UDP lat";
    case LmbenchOp::kTcpBandwidth:
      return "TCP bw";
    case LmbenchOp::kCtxSwitch:
      return "ctx switch";
  }
  return "?";
}

namespace {

// Guest-kernel body costs (ns) chosen so kvm-ept (BM) — where virtualization
// overhead is near zero — lands near the paper's column; every other column
// then differs only by its protocol costs.
struct OpBodies {
  static constexpr std::uint64_t kNullIo = 120;
  static constexpr std::uint64_t kStat = 420;
  static constexpr std::uint64_t kOpenClose = 24500;
  static constexpr std::uint64_t kSelectTcp = 1750;
  static constexpr std::uint64_t kSigInstall = 60;
  static constexpr std::uint64_t kSelect100Fd = 1650;
  static constexpr std::uint64_t kFileCreate0K = 78000;
  static constexpr std::uint64_t kFileDelete0K = 50000;
  static constexpr std::uint64_t kFileCreate10K = 118000;
  static constexpr std::uint64_t kFileDelete10K = 52000;
};

Task<void> one_iteration(SecureContainer& container, Vcpu& vcpu, GuestProcess& proc,
                         LmbenchOp op, const LmbenchParams& params, std::uint64_t iteration) {
  GuestKernel& kernel = container.kernel();
  switch (op) {
    case LmbenchOp::kGetPid:
      co_await kernel.sys_getpid(vcpu, proc);
      break;
    case LmbenchOp::kNullIo:
      co_await kernel.sys_simple(vcpu, proc, OpBodies::kNullIo, 0);
      break;
    case LmbenchOp::kStat:
      co_await kernel.sys_simple(vcpu, proc, OpBodies::kStat, 1);
      break;
    case LmbenchOp::kOpenClose:
      co_await kernel.sys_simple(vcpu, proc, OpBodies::kOpenClose, 2);
      break;
    case LmbenchOp::kSelectTcp:
      co_await kernel.sys_simple(vcpu, proc, OpBodies::kSelectTcp, 0);
      break;
    case LmbenchOp::kSigInstall:
      co_await kernel.sys_simple(vcpu, proc, OpBodies::kSigInstall, 0);
      break;
    case LmbenchOp::kSigHandle:
      co_await kernel.deliver_signal(vcpu, proc);
      break;
    case LmbenchOp::kSelect100Fd:
      co_await kernel.sys_simple(vcpu, proc, OpBodies::kSelect100Fd, 0);
      break;
    case LmbenchOp::kForkProc: {
      GuestProcess* child = co_await kernel.sys_fork(vcpu, proc);
      co_await kernel.mem().activate_process(vcpu, *child, false);
      for (int i = 0; i < params.fork_child_touches; ++i) {
        co_await kernel.touch(vcpu, *child,
                              GuestProcess::kStackBase + static_cast<std::uint64_t>(i) * kPageSize,
                              true);
      }
      co_await kernel.sys_exit(vcpu, *child);
      co_await kernel.mem().activate_process(vcpu, proc, false);
      break;
    }
    case LmbenchOp::kExecProc: {
      GuestProcess* child = co_await kernel.sys_fork(vcpu, proc);
      co_await kernel.mem().activate_process(vcpu, *child, false);
      co_await kernel.sys_exec(vcpu, *child, params.exec_fresh_pages);
      co_await kernel.sys_exit(vcpu, *child);
      co_await kernel.mem().activate_process(vcpu, proc, false);
      break;
    }
    case LmbenchOp::kShProc: {
      GuestProcess* child = co_await kernel.sys_fork(vcpu, proc);
      co_await kernel.mem().activate_process(vcpu, *child, false);
      co_await kernel.sys_exec(vcpu, *child, params.exec_fresh_pages);
      // /bin/sh startup: rc parsing, environment copies, a second exec for
      // the actual command.
      co_await container.sim().delay(750 * kNsPerUs);
      const std::uint64_t sh_heap = co_await kernel.sys_mmap(vcpu, *child, 48 * kPageSize);
      for (int i = 0; i < 48; ++i) {
        co_await kernel.touch(vcpu, *child, sh_heap + static_cast<std::uint64_t>(i) * kPageSize,
                              true);
      }
      co_await kernel.sys_exec(vcpu, *child, params.exec_fresh_pages);
      co_await kernel.sys_exit(vcpu, *child);
      co_await kernel.mem().activate_process(vcpu, proc, false);
      break;
    }
    case LmbenchOp::kFileCreate0K:
      co_await kernel.sys_file_op(vcpu, proc, OpBodies::kFileCreate0K, 6, 0);
      co_await kernel.sys_file_op(vcpu, proc, OpBodies::kFileDelete0K, 0, 6);
      break;
    case LmbenchOp::kFileCreate10K:
      co_await kernel.sys_file_op(vcpu, proc, OpBodies::kFileCreate10K, 9, 0);
      co_await kernel.sys_file_op(vcpu, proc, OpBodies::kFileDelete10K, 0, 9);
      break;
    case LmbenchOp::kMmap: {
      const std::uint64_t bytes = static_cast<std::uint64_t>(params.mmap_pages) * kPageSize;
      const std::uint64_t base = co_await kernel.sys_mmap(vcpu, proc, bytes);
      for (int i = 0; i < params.mmap_pages; ++i) {
        co_await kernel.touch(vcpu, proc, base + static_cast<std::uint64_t>(i) * kPageSize,
                              true);
      }
      co_await kernel.sys_munmap(vcpu, proc, base);
      break;
    }
    case LmbenchOp::kProtFault: {
      // Write-protect a resident page, then write it: one protection fault.
      const std::uint64_t gva = GuestProcess::kCodeBase;
      co_await kernel.mem().gpt_protect(vcpu, proc, gva, /*writable=*/false,
                                        /*mark_cow=*/false);
      co_await kernel.touch(vcpu, proc, gva, true);
      break;
    }
    case LmbenchOp::kTcpLatency: {
      // One request/response: send syscall + doorbell, short wire time,
      // completion interrupt, recv syscall.
      GuestKernel& k = kernel;
      co_await k.sys_simple(vcpu, proc, 2500, 1);            // send + stack work
      co_await k.cpu().privileged_op(vcpu, PrivOp::kIoKick);  // vhost kick
      co_await container.sim().delay(18 * kNsPerUs);          // wire + peer
      co_await k.cpu().interrupt(vcpu);                       // rx interrupt
      co_await k.sys_simple(vcpu, proc, 2100, 1);             // recv
      break;
    }
    case LmbenchOp::kUdpLatency: {
      GuestKernel& k = kernel;
      co_await k.sys_simple(vcpu, proc, 1800, 1);
      co_await k.cpu().privileged_op(vcpu, PrivOp::kIoKick);
      co_await container.sim().delay(15 * kNsPerUs);
      co_await k.cpu().interrupt(vcpu);
      co_await k.sys_simple(vcpu, proc, 1500, 1);
      break;
    }
    case LmbenchOp::kTcpBandwidth: {
      // One 64 KiB chunk: batched descriptors amortize the kick; the data
      // pages are touched (copy to the ring).
      GuestKernel& k = kernel;
      const std::uint64_t buf = co_await k.sys_mmap(vcpu, proc, 16 * kPageSize);
      for (int i = 0; i < 16; ++i) {
        co_await k.touch(vcpu, proc, buf + static_cast<std::uint64_t>(i) * kPageSize, true);
      }
      co_await k.cpu().privileged_op(vcpu, PrivOp::kIoKick);
      co_await container.sim().delay(30 * kNsPerUs);
      co_await k.cpu().interrupt(vcpu);
      co_await k.sys_munmap(vcpu, proc, buf);
      break;
    }
    case LmbenchOp::kCtxSwitch: {
      // lat_ctx with two processes: switch away and back, touching a small
      // hot set in each — the benchmark where trapped CR3 writes and lost
      // TLB state (no PCID) hurt most.
      GuestProcess* partner = nullptr;
      for (const auto& candidate : kernel.processes()) {
        if (candidate->pid() != proc.pid()) {
          partner = candidate.get();
        }
      }
      if (partner == nullptr) {
        partner = co_await kernel.sys_fork(vcpu, proc);
      }
      co_await kernel.mem().activate_process(vcpu, *partner, false);
      for (int i = 0; i < 4; ++i) {
        co_await kernel.touch(vcpu, *partner,
                              GuestProcess::kStackBase + static_cast<std::uint64_t>(i) * kPageSize,
                              false);
      }
      co_await kernel.mem().activate_process(vcpu, proc, false);
      for (int i = 0; i < 4; ++i) {
        co_await kernel.touch(vcpu, proc,
                              GuestProcess::kStackBase + static_cast<std::uint64_t>(i) * kPageSize,
                              false);
      }
      break;
    }
    case LmbenchOp::kPageFault: {
      // Fault in previously-untouched pages, remapping a fresh region when
      // the current one is exhausted.
      static constexpr int kRegionPages = 512;
      const int slot = static_cast<int>(iteration % kRegionPages);
      if (slot == 0) {
        co_await kernel.sys_mmap(vcpu, proc, kRegionPages * kPageSize);
      }
      // The newest mmap VMA is the highest-addressed one below the stack.
      auto it = proc.vmas().upper_bound(GuestProcess::kStackBase - 1);
      const std::uint64_t region = std::prev(it)->second.start;
      co_await kernel.touch(vcpu, proc, region + static_cast<std::uint64_t>(slot) * kPageSize,
                            true);
      break;
    }
  }
}

}  // namespace

Task<std::uint64_t> lmbench_run(SecureContainer& container, Vcpu& vcpu, GuestProcess& proc,
                                LmbenchOp op, int iterations, const LmbenchParams& params,
                                LatencyHistogram* histogram) {
  Simulation& sim = container.sim();
  // One warm-up iteration outside the timed window (as lmbench does).
  co_await one_iteration(container, vcpu, proc, op, params, 0);
  const SimTime start = sim.now();
  for (int i = 0; i < iterations; ++i) {
    const SimTime iteration_start = sim.now();
    co_await one_iteration(container, vcpu, proc, op, params, static_cast<std::uint64_t>(i + 1));
    if (histogram != nullptr) {
      histogram->record(sim.now() - iteration_start);
    }
  }
  co_return (sim.now() - start) / static_cast<std::uint64_t>(iterations);
}

}  // namespace pvm
