#include "src/mmu/two_dim_walk.h"

namespace pvm {

namespace {

// Translates one GPA frame through the EPT; returns true and sets
// `host_frame` on success, false on violation. Accumulates walk loads.
bool ept_translate_frame(const PageTable& ept, std::uint64_t gpa_frame, AccessType access,
                         std::uint64_t* host_frame, int* loads) {
  const WalkResult walk = ept.walk(gpa_frame << kPageShift, access, /*user_mode=*/false);
  *loads += walk.levels_walked;
  if (!walk.present || !walk.permission_ok) {
    return false;
  }
  *host_frame = walk.pte.frame_number();
  return true;
}

}  // namespace

TwoDimWalk walk_two_dimensional(const PageTable& guest_pt, const PageTable& ept,
                                std::uint64_t va, AccessType access, bool user_mode) {
  TwoDimWalk result;
  result.guest = guest_pt.walk(va, access, user_mode);

  // Each guest table page the hardware loaded had to be translated through
  // the EPT first. Table loads are reads; table *updates* (A/D bit writes)
  // are ignored here for simplicity.
  for (int i = 0; i < result.guest.levels_walked; ++i) {
    ++result.total_loads;  // the guest-dimension load itself
    std::uint64_t host_frame = 0;
    if (!ept_translate_frame(ept, result.guest.node_frames[i], AccessType::kRead, &host_frame,
                             &result.total_loads)) {
      result.outcome = TwoDimWalk::Outcome::kEptViolation;
      result.violating_gpa = result.guest.node_frames[i] << kPageShift;
      result.violating_access = AccessType::kRead;
      return result;
    }
  }

  if (!result.guest.present) {
    result.outcome = TwoDimWalk::Outcome::kGuestNotPresent;
    return result;
  }
  if (!result.guest.permission_ok) {
    result.outcome = TwoDimWalk::Outcome::kGuestProtection;
    return result;
  }

  // Final data access through the EPT.
  std::uint64_t host_frame = 0;
  if (!ept_translate_frame(ept, result.guest.pte.frame_number(), access, &host_frame,
                           &result.total_loads)) {
    result.outcome = TwoDimWalk::Outcome::kEptViolation;
    result.violating_gpa = result.guest.pte.frame_number() << kPageShift;
    result.violating_access = access;
    return result;
  }

  result.outcome = TwoDimWalk::Outcome::kOk;
  result.host_frame = host_frame;
  return result;
}

TwoDimWalk walk_one_dimensional(const PageTable& table, std::uint64_t va, AccessType access,
                                bool user_mode) {
  TwoDimWalk result;
  result.guest = table.walk(va, access, user_mode);
  result.total_loads = result.guest.levels_walked;
  if (!result.guest.present) {
    result.outcome = TwoDimWalk::Outcome::kGuestNotPresent;
    return result;
  }
  if (!result.guest.permission_ok) {
    result.outcome = TwoDimWalk::Outcome::kGuestProtection;
    return result;
  }
  result.outcome = TwoDimWalk::Outcome::kOk;
  result.host_frame = result.guest.pte.frame_number();
  return result;
}

}  // namespace pvm
