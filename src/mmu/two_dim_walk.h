// Two-dimensional (guest PT x EPT) hardware page walk.
//
// Models what an EPT-enabled MMU does: every load of a guest page-table entry
// first translates the table page's guest-physical address through the EPT,
// and the final data GPA is translated through the EPT as well. A 4x4
// configuration therefore costs up to 4*5 + 4 = 24 loads — the well-known
// quadratic blow-up of nested paging, which the cost model charges per load.
//
// Outcomes distinguish the two fault kinds the paper's protocols handle
// differently: guest page faults (GPT miss / permission) are delivered to the
// guest kernel; EPT violations are delivered to the hypervisor that owns the
// EPT.

#ifndef PVM_SRC_MMU_TWO_DIM_WALK_H_
#define PVM_SRC_MMU_TWO_DIM_WALK_H_

#include <cstdint>

#include "src/arch/page_table.h"
#include "src/mmu/fault.h"

namespace pvm {

struct TwoDimWalk {
  enum class Outcome {
    kOk,              // full translation, permissions allow the access
    kGuestNotPresent,  // guest table miss -> guest page fault (not present)
    kGuestProtection,  // guest leaf present but forbids access -> guest #PF
    kEptViolation,     // some GPA (table page or data page) missing in EPT
  };

  Outcome outcome = Outcome::kOk;
  WalkResult guest;              // the guest-dimension walk
  std::uint64_t host_frame = 0;  // final lower-space frame when kOk
  std::uint64_t violating_gpa = 0;  // GPA that missed in the EPT
  AccessType violating_access = AccessType::kRead;
  int total_loads = 0;  // memory accesses performed by the hardware walker
};

// Walks `guest_pt` for `va`, translating every touched guest table frame and
// the final data frame through `ept`. `user_mode` applies to the guest
// dimension only (EPT has no user bit in this model).
TwoDimWalk walk_two_dimensional(const PageTable& guest_pt, const PageTable& ept,
                                std::uint64_t va, AccessType access, bool user_mode);

// Single-dimension convenience wrapper producing the same outcome taxonomy
// (no EPT): used by shadow-paging configurations where the hardware walks
// SPT directly (bare-metal kvm-spt) and by EPT-only hardware walks.
TwoDimWalk walk_one_dimensional(const PageTable& table, std::uint64_t va, AccessType access,
                                bool user_mode);

}  // namespace pvm

#endif  // PVM_SRC_MMU_TWO_DIM_WALK_H_
