// Fault descriptors passed between guests and hypervisors.

#ifndef PVM_SRC_MMU_FAULT_H_
#define PVM_SRC_MMU_FAULT_H_

#include <cstdint>

#include "src/arch/addresses.h"
#include "src/arch/page_table.h"

namespace pvm {

// A fault raised against a guest-visible page table (GPT or SPT).
struct PageFaultInfo {
  std::uint64_t gva = 0;
  AccessType access = AccessType::kRead;
  bool user_mode = true;
  // True if a translation existed but permissions forbade the access
  // (e.g. a COW or write-protect fault); false for a not-present fault.
  bool protection = false;
};

// A fault raised against an extended page table (guest-physical miss).
struct EptViolationInfo {
  std::uint64_t gpa = 0;
  AccessType access = AccessType::kRead;
};

}  // namespace pvm

#endif  // PVM_SRC_MMU_FAULT_H_
