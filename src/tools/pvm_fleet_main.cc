// pvm-fleet — run a region-scale serverless fleet scenario and emit one
// versioned pvm.fleet.v1 document.
//
//   pvm-fleet --scenario flashcrowd --launches 10000 --nodes 8 \
//             --modes ept,pvm --jobs 8 --out fleet.json
//
// Nodes run on a worker pool (--jobs), each an isolated per-host
// simulation; telemetry merges in node-index order, so the document is
// byte-identical to a --jobs 1 run. --timing embeds wall-clock stats — the
// one nondeterministic section — and is therefore off by default.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/fleet/fleet.h"
#include "src/obs/ts.h"

namespace {

void usage(std::ostream& out) {
  out << "usage: pvm-fleet [options]\n"
         "  --scenario NAME        steady | diurnal | flashcrowd: a named\n"
         "                         preset applied before the flags below\n"
         "                         (default: steady)\n"
         "  --arrival SPEC         arrival process, e.g. poisson:rate=2000 |\n"
         "                         diurnal:rate=2000,amplitude=0.8,period=5s |\n"
         "                         burst:rate=1000,factor=10,every=2s,len=250ms\n"
         "                         (all accept seed=N)\n"
         "  --launches N           container launches per deployment mode\n"
         "  --nodes N              hosts the launches shard across\n"
         "  --capacity N           concurrent sandboxes admitted per node\n"
         "  --warm-pool N          sandboxes pre-booted per node\n"
         "  --no-restore           disable wal snapshot-restore cold-start\n"
         "                         mitigation (every start is a full boot)\n"
         "  --deadline NS          sandbox start deadline in virtual ns;\n"
         "                         a miss counts as a crash (default 10ms)\n"
         "  --modes m1,m2,...      pvm | pvm-bm | pvm-direct | kvm-spt |\n"
         "                         spt-on-ept | ept | ept-bm | all\n"
         "                         (default: ept,pvm — the Fig. 12 contrast)\n"
         "  --faults PLAN          fault plan for every node\n"
         "                         (fault::FaultPlan::parse spec, e.g.\n"
         "                         bootstorm:seed=7:cap=5000; default none)\n"
         "  --policy P             fifo | random | lifo (default: fifo)\n"
         "  --schedule-seed N      base schedule seed (default: 1)\n"
         "  --seed N               placement seed (default: 1)\n"
         "  --window NS            telemetry window width in virtual ns\n"
         "                         (default 1000000)\n"
         "  --slo SPEC             evaluate an SLO against the fleet-wide\n"
         "                         timeseries (\"name:metric:p99<=15ms\");\n"
         "                         repeatable\n"
         "  --jobs N               worker threads (default: 1; 0 = one per\n"
         "                         hardware thread). Output is byte-identical\n"
         "                         to --jobs 1\n"
         "  --out PATH             write the document to PATH (default: stdout)\n"
         "  --timeseries PATH      also write the fleet-wide merged\n"
         "                         pvm.timeseries.v1 document to PATH (render\n"
         "                         with pvm-top)\n"
         "  --timing               embed wall-clock stats (nondeterministic;\n"
         "                         off by default so documents stay diffable)\n";
}

[[noreturn]] void die(const std::string& message) {
  std::cerr << "pvm-fleet: " << message << "\n";
  usage(std::cerr);
  std::exit(2);
}

std::vector<std::string> split_csv(std::string_view list) {
  std::vector<std::string> tokens;
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    tokens.emplace_back(list.substr(0, comma));
    if (comma == std::string_view::npos) {
      break;
    }
    list.remove_prefix(comma + 1);
  }
  return tokens;
}

// Named starting points; explicit flags override afterwards.
void apply_scenario(std::string_view name, pvm::fleet::FleetSpec* spec) {
  if (name == "steady") {
    spec->arrival.kind = pvm::fleet::ArrivalKind::kPoisson;
    spec->arrival.rate_per_sec = 2000;
  } else if (name == "diurnal") {
    spec->arrival.kind = pvm::fleet::ArrivalKind::kDiurnal;
    spec->arrival.rate_per_sec = 2000;
    spec->arrival.amplitude = 0.8;
    spec->arrival.period_ns = 5'000'000'000ull;
  } else if (name == "flashcrowd") {
    // The Fig. 12 regime: a bursty crowd against exhausted hosts.
    spec->arrival.kind = pvm::fleet::ArrivalKind::kBurst;
    spec->arrival.rate_per_sec = 1000;
    spec->arrival.burst_factor = 10;
    spec->arrival.burst_every_ns = 2'000'000'000ull;
    spec->arrival.burst_len_ns = 250'000'000ull;
    spec->fault_plan = "bootstorm";
  } else {
    die("unknown scenario '" + std::string(name) +
        "' (steady, diurnal, flashcrowd)");
  }
}

}  // namespace

int main(int argc, char** argv) {
  pvm::fleet::FleetSpec spec;
  apply_scenario("steady", &spec);
  int jobs = 1;
  bool timing = false;
  std::string out_path;
  std::string ts_path;
  std::vector<pvm::ts::SloSpec> slo_specs;

  const auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      die(std::string(argv[i]) + " needs a value");
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--scenario") {
      apply_scenario(next_value(i), &spec);
    } else if (arg == "--arrival") {
      const std::string value = next_value(i);
      std::string error;
      if (!pvm::fleet::parse_arrival_spec(value, &spec.arrival, &error)) {
        die("bad --arrival spec '" + value + "': " + error);
      }
    } else if (arg == "--launches") {
      spec.launches = std::strtoull(next_value(i).c_str(), nullptr, 10);
    } else if (arg == "--nodes") {
      spec.nodes = static_cast<std::size_t>(
          std::strtoull(next_value(i).c_str(), nullptr, 10));
    } else if (arg == "--capacity") {
      spec.capacity = static_cast<std::uint32_t>(
          std::strtoul(next_value(i).c_str(), nullptr, 10));
    } else if (arg == "--warm-pool") {
      spec.warm_pool = static_cast<std::uint32_t>(
          std::strtoul(next_value(i).c_str(), nullptr, 10));
    } else if (arg == "--no-restore") {
      spec.snapshot_restore = false;
    } else if (arg == "--deadline") {
      spec.deadline_ns = std::strtoull(next_value(i).c_str(), nullptr, 10);
    } else if (arg == "--modes") {
      const std::string value = next_value(i);
      spec.modes.clear();
      if (value == "all") {
        spec.modes.assign(std::begin(pvm::kAllDeployModes),
                          std::end(pvm::kAllDeployModes));
      } else {
        for (const std::string& token : split_csv(value)) {
          pvm::DeployMode mode;
          if (!pvm::parse_deploy_mode_token(token, &mode)) {
            die("unknown mode '" + token + "'");
          }
          spec.modes.push_back(mode);
        }
      }
    } else if (arg == "--faults") {
      spec.fault_plan = next_value(i);
    } else if (arg == "--policy") {
      const std::string value = next_value(i);
      if (!pvm::parse_schedule_policy_token(value, &spec.policy)) {
        die("unknown policy '" + value + "'");
      }
    } else if (arg == "--schedule-seed") {
      spec.schedule_seed = std::strtoull(next_value(i).c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      spec.seed = std::strtoull(next_value(i).c_str(), nullptr, 10);
    } else if (arg == "--window") {
      spec.window_ns = std::strtoull(next_value(i).c_str(), nullptr, 10);
    } else if (arg == "--slo") {
      const std::string value = next_value(i);
      pvm::ts::SloSpec slo;
      std::string error;
      if (!pvm::ts::parse_slo_spec(value, &slo, &error)) {
        die("bad --slo spec '" + value + "': " + error);
      }
      slo_specs.push_back(std::move(slo));
    } else if (arg == "--jobs") {
      jobs = std::atoi(next_value(i).c_str());
      if (jobs < 0) {
        die("--jobs must be >= 0");
      }
    } else if (arg == "--out") {
      out_path = next_value(i);
    } else if (arg == "--timeseries") {
      ts_path = next_value(i);
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      die("unknown option '" + std::string(arg) + "'");
    }
  }
  if (spec.launches == 0 || spec.nodes == 0 || spec.modes.empty()) {
    die("--launches, --nodes, and --modes must all be non-empty");
  }
  if (jobs == 0) {
    jobs = pvm::sweep::default_jobs();
  }

  pvm::fleet::FleetResult result;
  try {
    result = pvm::fleet::run_fleet(spec, jobs, slo_specs);
  } catch (const std::exception& e) {
    std::cerr << "pvm-fleet: " << e.what() << "\n";
    return 2;
  }

  const std::string document = pvm::fleet::render_fleet_json(
      spec, result, timing ? &result.timing : nullptr);
  if (out_path.empty()) {
    std::fwrite(document.data(), 1, document.size(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "pvm-fleet: cannot open " << out_path << " for writing\n";
      return 2;
    }
    out << document;
  }

  if (!ts_path.empty()) {
    const std::string ts_document =
        pvm::ts::render_timeseries_json(result.fleetwide);
    std::ofstream out(ts_path, std::ios::binary);
    if (!out) {
      std::cerr << "pvm-fleet: cannot open " << ts_path << " for writing\n";
      return 2;
    }
    out << ts_document;
  }

  // Wall clock to stderr only: the document stays diffable.
  std::fprintf(
      stderr, "pvm-fleet: %zu node cell(s), jobs=%d, wall %.2fs (%.0f events/s)\n",
      result.timing.cells, result.timing.jobs, result.timing.wall_seconds,
      result.timing.events_per_second());

  bool failed_nodes = false;
  for (const pvm::fleet::FleetGroup& group : result.groups) {
    for (const pvm::fleet::NodeOutcome& node : group.nodes) {
      if (!node.ok) {
        std::cerr << "pvm-fleet: node " << pvm::deploy_mode_token(group.mode)
                  << "/n" << node.node << " failed: " << node.error << "\n";
        failed_nodes = true;
      }
    }
  }
  bool failed_slos = false;
  for (const pvm::ts::SloResult& slo : result.slos) {
    if (!slo.pass) {
      std::cerr << "pvm-fleet: SLO FAIL " << slo.name << " (" << slo.metric
                << " " << slo.quantile << " = " << slo.value << " > "
                << slo.threshold_ns << ")\n";
      failed_slos = true;
    }
  }
  return failed_nodes || failed_slos ? 1 : 0;
}
