// benchdiff — compare two pvm.bench.v1 / pvm.matrix.v1 / pvm.timeseries.v1 /
// pvm.profile.v1 / pvm.fleet.v1 exports and gate on regressions, or gate
// directly on the SLO verdicts embedded in a timeseries or fleet export
// (--slo-check).
//
// Matches runs by label and compares every gated metric (the run's headline
// `values`, the `derived` ratios, the always-present `recovery` outcome
// counts, plus `sim_ns` and `events`) with a symmetric relative threshold:
//
//   delta = |head - base| / max(|base|, |head|)
//
// so a 2x regression and a 2x "improvement" both trip the gate — either one
// means the modelled behavior changed and the checked-in baseline is stale.
// The exported quantities are virtual-clock values, deterministic per build,
// so the threshold guards against modelling drift, not machine noise.
//
// A metric that is zero in the baseline but nonzero in head has no defined
// percent change; it is skipped with a note instead of gating on inf/nan.
// Timeseries exports flatten to series/<name> totals, hist/<name> quantiles
// and slo/<name> verdicts, so a checked-in timeseries baseline gates the
// same way a bench export does. Profile exports flatten to op/<name> latency
// quantiles plus a share_pct.<path> metric per critical-path phase path, so
// a baseline profile gates on critical-path *composition* drift — a phase
// whose share grows past the threshold fails even when total latency holds.
//
// Optional sections ("recovery", "timeseries") missing wholesale from one
// side — a baseline produced by an older exporter, say — are reported as one
// added/removed note per run instead of a FAIL per metric; a single metric
// missing from a present section still fails.
//
// Exit codes: 0 all metrics within threshold (or all SLOs pass), 1 at least
// one beyond it (or a baseline run/metric missing from head, or an SLO
// failed), 2 usage or parse error — including, for --slo-check, a document
// with zero SLO results, so a typo'd spec cannot silently pass CI.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json_parse.h"
#include "src/obs/prof.h"
#include "src/obs/ts.h"

namespace pvm {
namespace {

struct Metric {
  std::string name;  // "values.switch_cost_ns", "recovery.oom_kill", ...
  double value = 0.0;
};

struct RunMetrics {
  std::string label;
  std::vector<Metric> metrics;
};

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

void collect_object(const obs::JsonValue* object, const std::string& prefix,
                    std::vector<Metric>* out) {
  if (object == nullptr || !object->is_object()) {
    return;
  }
  for (const auto& [key, value] : object->object) {
    if (value.is_number()) {
      out->push_back({prefix + key, value.number});
    }
  }
}

// Flattens one pvm.bench.v1 document's runs into label -> gated metric
// list, prefixing every label with `label_prefix` (empty for a plain bench
// export; the cell coordinates for a matrix cell). Counters and the
// resource/span sections are deliberately not gated: they are diagnostic
// detail, and the counters object elides zeros so absence is ambiguous.
bool collect_bench_runs(const obs::JsonValue& doc, const std::string& path,
                        const std::string& label_prefix, std::vector<RunMetrics>* out,
                        std::string* error) {
  const obs::JsonValue* runs = doc.find("runs");
  if (runs == nullptr || !runs->is_array()) {
    *error = path + ": no runs array";
    return false;
  }
  for (const obs::JsonValue& run : runs->array) {
    const obs::JsonValue* label = run.find("label");
    if (label == nullptr || !label->is_string()) {
      continue;
    }
    RunMetrics rm;
    rm.label = label_prefix + label->string;
    collect_object(run.find("values"), "values.", &rm.metrics);
    collect_object(run.find("derived"), "derived.", &rm.metrics);
    collect_object(run.find("recovery"), "recovery.", &rm.metrics);
    if (const obs::JsonValue* v = run.find("sim_ns"); v != nullptr && v->is_number()) {
      rm.metrics.push_back({"sim_ns", v->number});
    }
    if (const obs::JsonValue* v = run.find("events"); v != nullptr && v->is_number()) {
      rm.metrics.push_back({"events", v->number});
    }
    out->push_back(std::move(rm));
  }
  return true;
}

std::string cell_string(const obs::JsonValue& cell, const char* key) {
  const obs::JsonValue* v = cell.find(key);
  return (v != nullptr && v->is_string()) ? v->string : std::string("?");
}

// Flattens a pvm.matrix.v1 document: every ok cell's embedded pvm.bench.v1
// payload contributes its runs, labels prefixed with the cell coordinates so
// the same micro-bench label in two cells stays distinct. Failed cells
// contribute a run with an `ok` metric of 0 — a cell that regresses from
// passing to failing trips the gate even though its runs vanished.
bool collect_matrix_cells(const obs::JsonValue& doc, const std::string& path,
                          std::vector<RunMetrics>* out, std::string* error) {
  const obs::JsonValue* cells = doc.find("cells");
  if (cells == nullptr || !cells->is_array()) {
    *error = path + ": no cells array";
    return false;
  }
  for (const obs::JsonValue& cell : cells->array) {
    std::string seed = "?";
    if (const obs::JsonValue* v = cell.find("seed"); v != nullptr && v->is_number()) {
      seed = std::to_string(static_cast<std::uint64_t>(v->number));
    }
    const std::string prefix = cell_string(cell, "mode") + "/" +
                               cell_string(cell, "workload") + "/" +
                               cell_string(cell, "fault_plan") + "/" +
                               cell_string(cell, "policy") + "/seed" + seed;
    const obs::JsonValue* ok = cell.find("ok");
    const bool cell_ok = ok != nullptr && ok->is_bool() && ok->boolean;
    RunMetrics status;
    status.label = prefix;
    status.metrics.push_back({"ok", cell_ok ? 1.0 : 0.0});
    out->push_back(std::move(status));
    const obs::JsonValue* bench = cell.find("bench");
    if (cell_ok && bench != nullptr && bench->is_object()) {
      if (!collect_bench_runs(*bench, path, prefix + ":", out, error)) {
        return false;
      }
    }
  }
  return true;
}

// Flattens a pvm.timeseries.v1 document into comparable runs: one
// "series/<name>" run per counter/gauge (its run total / final level), one
// "hist/<name>" run per latency sketch (count + quantiles from the
// cumulative histogram), one "slo/<name>" run per evaluated SLO (pass flag
// and measured value). The per-window detail is deliberately not gated —
// window counts shift with any model change and would make every diff
// all-noise; the totals and quantiles are the stable contract.
bool collect_timeseries(const std::string& text, const std::string& path,
                        std::vector<RunMetrics>* out, std::string* error) {
  ts::TsDoc doc;
  if (!ts::parse_timeseries_json(text, &doc, error)) {
    *error = path + ": " + *error;
    return false;
  }
  for (const auto& [name, series] : doc.series) {
    RunMetrics rm;
    rm.label = "series/" + name;
    rm.metrics.push_back({"total", static_cast<double>(series.total)});
    out->push_back(std::move(rm));
  }
  for (const auto& [name, hist] : doc.hists) {
    const ts::MergeableHistogram h = hist.cumulative();
    if (h.count() == 0) {
      continue;
    }
    RunMetrics rm;
    rm.label = "hist/" + name;
    rm.metrics.push_back({"count", static_cast<double>(h.count())});
    rm.metrics.push_back({"p50", static_cast<double>(h.quantile(0.50))});
    rm.metrics.push_back({"p99", static_cast<double>(h.quantile(0.99))});
    rm.metrics.push_back({"p999", static_cast<double>(h.quantile(0.999))});
    rm.metrics.push_back({"max", static_cast<double>(h.max())});
    out->push_back(std::move(rm));
  }
  for (const ts::SloResult& slo : doc.slos) {
    RunMetrics rm;
    // The metric disambiguates: one spec produces one verdict per matching
    // metric name, and duplicate labels would cross-match in the diff.
    rm.label = "slo/" + slo.name + "/" + slo.metric;
    rm.metrics.push_back({"pass", slo.pass ? 1.0 : 0.0});
    rm.metrics.push_back({"value_ns", static_cast<double>(slo.value)});
    out->push_back(std::move(rm));
  }
  return true;
}

// Flattens a pvm.profile.v1 document: one "op/<name>" run per operation kind
// with its latency quantiles, the total exclusive ns across its phase paths,
// and one "share_pct.<path>" metric per path (the path's percentage of the
// op's total exclusive time). Shares are ratios, so the gate catches
// critical-path composition drift — mmu_lock wait growing from 20% to 45% of
// a fault's critical path — independent of absolute-latency noise.
bool collect_profile(const std::string& text, const std::string& path,
                     std::vector<RunMetrics>* out, std::string* error) {
  prof::ProfDoc doc;
  if (!prof::parse_profile_json(text, &doc, error)) {
    *error = path + ": " + *error;
    return false;
  }
  for (const auto& [name, op] : doc.ops) {
    RunMetrics rm;
    rm.label = "op/" + name;
    rm.metrics.push_back({"count", static_cast<double>(op.latency.count())});
    rm.metrics.push_back({"p50_ns", static_cast<double>(op.latency.quantile(0.50))});
    rm.metrics.push_back({"p99_ns", static_cast<double>(op.latency.quantile(0.99))});
    rm.metrics.push_back({"max_ns", static_cast<double>(op.latency.max())});
    std::uint64_t total = 0;
    for (const auto& [p, stat] : op.paths) {
      total += stat.exclusive_ns;
    }
    rm.metrics.push_back({"total_excl_ns", static_cast<double>(total)});
    for (const auto& [p, stat] : op.paths) {
      rm.metrics.push_back(
          {"share_pct." + p,
           total == 0 ? 0.0
                      : 100.0 * static_cast<double>(stat.exclusive_ns) /
                            static_cast<double>(total)});
    }
    out->push_back(std::move(rm));
  }
  return true;
}

// Flattens a pvm.fleet.v1 document: one "fleet/<mode>/n<i>" run per node
// (ok flag, event/sim totals, sandbox count, snapshot size) plus its
// embedded pvm.bench.v1 runs; one "fleet/<mode>/rollup" run per mode with
// the fleet-wide counts and latency quantiles — the headline SLO surface —
// and one "slo/<name>" run per fleet-wide verdict. A node regressing from
// ok to failed trips the gate even though its metrics vanished.
bool collect_fleet(const obs::JsonValue& doc, const std::string& path,
                   std::vector<RunMetrics>* out, std::string* error) {
  const obs::JsonValue* groups = doc.find("groups");
  if (groups == nullptr || !groups->is_array()) {
    *error = path + ": no groups array";
    return false;
  }
  for (const obs::JsonValue& group : groups->array) {
    const std::string mode = cell_string(group, "mode");
    if (const obs::JsonValue* nodes = group.find("nodes");
        nodes != nullptr && nodes->is_array()) {
      for (const obs::JsonValue& node : nodes->array) {
        std::string index = "?";
        if (const obs::JsonValue* v = node.find("node");
            v != nullptr && v->is_number()) {
          index = std::to_string(static_cast<std::uint64_t>(v->number));
        }
        const std::string prefix = "fleet/" + mode + "/n" + index;
        const obs::JsonValue* ok = node.find("ok");
        const bool node_ok = ok != nullptr && ok->is_bool() && ok->boolean;
        RunMetrics status;
        status.label = prefix;
        status.metrics.push_back({"ok", node_ok ? 1.0 : 0.0});
        for (const char* key :
             {"events", "sim_ns", "containers", "snapshot_bytes",
              "snapshot_records"}) {
          if (const obs::JsonValue* v = node.find(key);
              v != nullptr && v->is_number()) {
            status.metrics.push_back({key, v->number});
          }
        }
        out->push_back(std::move(status));
        const obs::JsonValue* bench = node.find("bench");
        if (node_ok && bench != nullptr && bench->is_object()) {
          if (!collect_bench_runs(*bench, path, prefix + ":", out, error)) {
            return false;
          }
        }
      }
    }
    if (const obs::JsonValue* rollup = group.find("rollup");
        rollup != nullptr && rollup->is_object()) {
      RunMetrics rm;
      rm.label = "fleet/" + mode + "/rollup";
      collect_object(rollup->find("counts"), "counts.", &rm.metrics);
      if (const obs::JsonValue* latency = rollup->find("latency");
          latency != nullptr && latency->is_object()) {
        for (const auto& [name, hist] : latency->object) {
          collect_object(&hist, "latency." + name + ".", &rm.metrics);
        }
      }
      out->push_back(std::move(rm));
    }
  }
  if (const obs::JsonValue* slos = doc.find("slos"); slos != nullptr) {
    std::vector<ts::SloResult> results;
    ts::parse_slo_results(*slos, &results);
    for (const ts::SloResult& slo : results) {
      RunMetrics rm;
      rm.label = "slo/" + slo.name + "/" + slo.metric;
      rm.metrics.push_back({"pass", slo.pass ? 1.0 : 0.0});
      rm.metrics.push_back({"value_ns", static_cast<double>(slo.value)});
      out->push_back(std::move(rm));
    }
  }
  return true;
}

bool load_export(const std::string& path, std::vector<RunMetrics>* out,
                 std::string* error) {
  std::string text;
  if (!read_file(path, &text)) {
    *error = path + ": cannot read";
    return false;
  }
  obs::JsonValue doc;
  if (!obs::json_parse(text, &doc, error)) {
    *error = path + ": " + *error;
    return false;
  }
  const obs::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    *error = path + ": no schema string";
    return false;
  }
  if (schema->string == "pvm.bench.v1") {
    return collect_bench_runs(doc, path, "", out, error);
  }
  if (schema->string == "pvm.matrix.v1") {
    return collect_matrix_cells(doc, path, out, error);
  }
  if (schema->string == ts::kTimeseriesSchemaVersion) {
    return collect_timeseries(text, path, out, error);
  }
  if (schema->string == prof::kProfileSchemaVersion) {
    return collect_profile(text, path, out, error);
  }
  if (schema->string == "pvm.fleet.v1") {
    return collect_fleet(doc, path, out, error);
  }
  *error = path +
           ": not a pvm.bench.v1, pvm.matrix.v1, pvm.timeseries.v1, "
           "pvm.profile.v1 or pvm.fleet.v1 export";
  return false;
}

// --slo-check: gate directly on the SLO verdicts a run already evaluated
// into its timeseries or fleet export (both carry the same verdict-array
// shape). Zero SLOs is a usage error (exit 2), not a pass — otherwise a
// misspelled --slo spec upstream would turn the CI gate into a no-op.
int slo_check_main(const std::string& path) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "benchdiff: %s: cannot read\n", path.c_str());
    return 2;
  }
  std::vector<ts::SloResult> slos;
  std::string error;
  obs::JsonValue root;
  if (!obs::json_parse(text, &root, &error)) {
    std::fprintf(stderr, "benchdiff: %s: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  const obs::JsonValue* schema = root.find("schema");
  if (schema != nullptr && schema->is_string() && schema->string == "pvm.fleet.v1") {
    if (const obs::JsonValue* array = root.find("slos")) {
      ts::parse_slo_results(*array, &slos);
    }
  } else {
    ts::TsDoc doc;
    if (!ts::parse_timeseries_json(text, &doc, &error)) {
      std::fprintf(stderr, "benchdiff: %s: %s\n", path.c_str(), error.c_str());
      return 2;
    }
    slos = std::move(doc.slos);
  }
  if (slos.empty()) {
    std::fprintf(stderr,
                 "benchdiff: %s: no SLO results in document (was the producing run "
                 "given any --slo specs?)\n",
                 path.c_str());
    return 2;
  }
  std::printf("benchdiff: SLO check %s (%zu SLO(s))\n", path.c_str(), slos.size());
  int failures = 0;
  for (const ts::SloResult& slo : slos) {
    if (!slo.pass) {
      ++failures;
    }
    std::printf("  %-4s %-24s %s %s=%lld <= %lld ns (%s)\n", slo.pass ? "PASS" : "FAIL",
                slo.name.c_str(), slo.metric.c_str(), slo.quantile.c_str(),
                static_cast<long long>(slo.value), static_cast<long long>(slo.threshold_ns),
                slo.scope.c_str());
  }
  std::printf("benchdiff: %zu SLO(s), %d failed\n", slos.size(), failures);
  return failures == 0 ? 0 : 1;
}

const RunMetrics* find_run(const std::vector<RunMetrics>& runs, const std::string& label) {
  for (const RunMetrics& run : runs) {
    if (run.label == label) {
      return &run;
    }
  }
  return nullptr;
}

const Metric* find_metric(const RunMetrics& run, const std::string& name) {
  for (const Metric& metric : run.metrics) {
    if (metric.name == name) {
      return &metric;
    }
  }
  return nullptr;
}

// The dotted section a metric name belongs to ("recovery.oom_kill" ->
// "recovery"); empty for bare metrics like sim_ns.
std::string metric_group(const std::string& name) {
  const std::size_t dot = name.find('.');
  return dot == std::string::npos ? std::string() : name.substr(0, dot);
}

// Sections an exporter may legitimately not emit (older producer, feature
// flag off). Missing wholesale from one side, they diff as one added/removed
// note; everything else stays strict.
bool optional_group(const std::string& group) {
  return group == "recovery" || group == "timeseries";
}

bool group_present(const RunMetrics& run, const std::string& group) {
  const std::string prefix = group + ".";
  for (const Metric& metric : run.metrics) {
    if (metric.name.compare(0, prefix.size(), prefix) == 0) {
      return true;
    }
  }
  return false;
}

// Symmetric relative delta in [0, 1]; values within epsilon of each other
// (and of zero) compare equal so 1e-12 float dust cannot trip the gate.
double symmetric_delta(double base, double head) {
  constexpr double kEpsilon = 1e-9;
  const double magnitude = std::max(std::fabs(base), std::fabs(head));
  if (magnitude < kEpsilon || std::fabs(head - base) < kEpsilon) {
    return 0.0;
  }
  return std::fabs(head - base) / magnitude;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <head.json> [--threshold-pct P] [--quiet]\n"
               "          [--metrics m1,m2,...] [--warn-pct P] [--direction both|down|up]\n"
               "       %s --slo-check <timeseries.json>\n"
               "  compares two pvm.bench.v1 / pvm.matrix.v1 / pvm.timeseries.v1 /\n"
               "  pvm.profile.v1 / pvm.fleet.v1 exports run-by-run, metric-by-metric\n"
               "  --slo-check      gate on the SLO verdicts embedded in a\n"
               "                   pvm.timeseries.v1 or pvm.fleet.v1 export: exit 1\n"
               "                   if any failed, exit 2 if the document has none\n"
               "  --threshold-pct  symmetric relative threshold (default 10.0)\n"
               "  --quiet          print only metrics beyond the threshold\n"
               "  --metrics        gate only metrics whose name contains one of the\n"
               "                   given substrings (default: every collected metric)\n"
               "  --runs           gate only runs whose label contains one of the\n"
               "                   given substrings (default: every run)\n"
               "  --warn-pct       deltas beyond this but within --threshold-pct print\n"
               "                   WARN without failing the gate (default: disabled)\n"
               "  --direction      which way a change must go to trip the gate:\n"
               "                   both (default, symmetric), down (head below base\n"
               "                   fails - throughput metrics), up (head above base\n"
               "                   fails - latency metrics)\n"
               "  a baseline-zero metric that became nonzero is skipped with a note\n"
               "  (no %% change is defined for it), never gated on inf/nan\n"
               "  exits 0 when every gated metric is within threshold, 1 otherwise\n",
               argv0, argv0);
  return 2;
}

enum class Direction { kBoth, kDown, kUp };

// True when the gated direction covers a head-vs-base change of this sign.
bool direction_gates(Direction direction, double base, double head) {
  switch (direction) {
    case Direction::kBoth:
      return true;
    case Direction::kDown:
      return head < base;
    case Direction::kUp:
      return head > base;
  }
  return true;
}

bool metric_selected(const std::vector<std::string>& filters, const std::string& name) {
  if (filters.empty()) {
    return true;
  }
  for (const std::string& filter : filters) {
    if (name.find(filter) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = (comma == std::string::npos) ? list.size() : comma;
    if (end > start) {
      tokens.push_back(list.substr(start, end - start));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return tokens;
}

int diff_main(int argc, char** argv) {
  std::vector<std::string> paths;
  double threshold_pct = 10.0;
  double warn_pct = -1.0;  // < 0: warnings disabled
  Direction direction = Direction::kBoth;
  std::vector<std::string> metric_filters;
  std::vector<std::string> run_filters;
  std::string slo_check_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--slo-check" && i + 1 < argc) {
      slo_check_path = argv[++i];
    } else if (arg == "--threshold-pct" && i + 1 < argc) {
      threshold_pct = std::atof(argv[++i]);
    } else if (arg == "--warn-pct" && i + 1 < argc) {
      warn_pct = std::atof(argv[++i]);
    } else if (arg == "--metrics" && i + 1 < argc) {
      metric_filters = split_csv(argv[++i]);
    } else if (arg == "--runs" && i + 1 < argc) {
      run_filters = split_csv(argv[++i]);
    } else if (arg == "--direction" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value == "both") {
        direction = Direction::kBoth;
      } else if (value == "down") {
        direction = Direction::kDown;
      } else if (value == "up") {
        direction = Direction::kUp;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (!slo_check_path.empty()) {
    if (!paths.empty()) {
      return usage(argv[0]);
    }
    return slo_check_main(slo_check_path);
  }
  if (paths.size() != 2 || threshold_pct < 0 || warn_pct > threshold_pct) {
    return usage(argv[0]);
  }

  std::vector<RunMetrics> baseline;
  std::vector<RunMetrics> head;
  std::string error;
  if (!load_export(paths[0], &baseline, &error) ||
      !load_export(paths[1], &head, &error)) {
    std::fprintf(stderr, "benchdiff: %s\n", error.c_str());
    return 2;
  }

  std::printf("benchdiff: %s vs %s (threshold %.1f%%)\n", paths[0].c_str(),
              paths[1].c_str(), threshold_pct);
  int failures = 0;
  int warnings = 0;
  int compared = 0;
  for (const RunMetrics& base_run : baseline) {
    if (!metric_selected(run_filters, base_run.label)) {
      continue;  // --runs: this run is not gated at all
    }
    bool any_selected = false;
    for (const Metric& metric : base_run.metrics) {
      if (metric_selected(metric_filters, metric.name)) {
        any_selected = true;
        break;
      }
    }
    const RunMetrics* head_run = find_run(head, base_run.label);
    if (head_run == nullptr) {
      // A run with nothing gated may legitimately be absent from head (e.g.
      // head was produced with --benchmark_filter to cover only the gated
      // rows); only a run that would have been compared fails by absence.
      if (!any_selected) {
        continue;
      }
      std::printf("  FAIL %s: run missing from head export\n", base_run.label.c_str());
      ++failures;
      continue;
    }
    bool printed_label = false;
    std::vector<std::string> noted_groups;
    const auto note_group_once = [&](const std::string& group, const char* what) {
      for (const std::string& seen : noted_groups) {
        if (seen == group) {
          return;
        }
      }
      noted_groups.push_back(group);
      std::printf("  note %s: %s object %s, not gated\n", base_run.label.c_str(),
                  group.c_str(), what);
    };
    for (const Metric& base_metric : base_run.metrics) {
      if (!metric_selected(metric_filters, base_metric.name)) {
        continue;
      }
      const Metric* head_metric = find_metric(*head_run, base_metric.name);
      ++compared;
      if (head_metric == nullptr) {
        // An optional section absent from head *in its entirety* is an
        // exporter-version difference, not a regression: one note, no FAIL.
        // A single metric missing from a present section still fails.
        const std::string group = metric_group(base_metric.name);
        if (optional_group(group) && !group_present(*head_run, group)) {
          note_group_once(group, "missing from head (removed)");
          continue;
        }
        std::printf("  FAIL %s/%s: metric missing from head export\n",
                    base_run.label.c_str(), base_metric.name.c_str());
        ++failures;
        continue;
      }
      const double abs_delta = head_metric->value - base_metric.value;
      if (base_metric.value == 0.0 && head_metric->value != 0.0) {
        // Percent change from a zero baseline is undefined; gating on the
        // symmetric delta instead would make every 0 -> anything transition
        // a 100% FAIL. Surface it as a note and let the operator decide
        // whether the baseline needs a refresh.
        if (!printed_label) {
          std::printf("  run %s\n", base_run.label.c_str());
          printed_label = true;
        }
        std::printf("    note %-32s %14.3f -> %14.3f  (%+.3f, zero baseline - skipped)\n",
                    base_metric.name.c_str(), base_metric.value, head_metric->value,
                    abs_delta);
        continue;
      }
      const double delta = symmetric_delta(base_metric.value, head_metric->value);
      const bool gated = direction_gates(direction, base_metric.value, head_metric->value);
      const bool fail = gated && delta * 100.0 > threshold_pct;
      const bool warn = gated && !fail && warn_pct >= 0 && delta * 100.0 > warn_pct;
      if (fail) {
        ++failures;
      }
      if (warn) {
        ++warnings;
      }
      if (fail || warn || !quiet) {
        if (!printed_label) {
          std::printf("  run %s\n", base_run.label.c_str());
          printed_label = true;
        }
        std::printf("    %-4s %-32s %14.3f -> %14.3f  (%+.3f, %+.1f%%)\n",
                    fail ? "FAIL" : (warn ? "WARN" : "ok"), base_metric.name.c_str(),
                    base_metric.value, head_metric->value, abs_delta,
                    abs_delta / (base_metric.value == 0.0 ? 1.0 : base_metric.value) *
                        100.0);
      }
    }
    // The reverse direction: an optional section head has but baseline lacks.
    for (const Metric& head_metric : head_run->metrics) {
      const std::string group = metric_group(head_metric.name);
      if (optional_group(group) && !group_present(base_run, group)) {
        note_group_once(group, "added in head (not in baseline)");
      }
    }
  }
  for (const RunMetrics& head_run : head) {
    if (find_run(baseline, head_run.label) == nullptr) {
      // New runs are informational, not regressions: the baseline refresh
      // procedure (EXPERIMENTS.md) picks them up on the next check-in.
      std::printf("  note %s: new run, not in baseline\n", head_run.label.c_str());
    }
  }
  if (warnings != 0) {
    std::printf("benchdiff: %d metric(s) compared, %d beyond threshold, %d warning(s)\n",
                compared, failures, warnings);
  } else {
    std::printf("benchdiff: %d metric(s) compared, %d beyond threshold\n", compared,
                failures);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) { return pvm::diff_main(argc, argv); }
