// pvm-stat — kvm_stat-style exit accounting for the simulated platform.
//
// Runs a memstress workload under each requested deployment mode with the
// flight-recorder ring capacity raised high enough to hold the whole run,
// then pairs every exit with the entry that completes it on the same track:
//
//   switcher   kSwitcherExit(reason) -> next kSwitcherEntry   (world switch)
//   vmx        kVmxExit(reason)      -> next kVmxEntry        (L0 roundtrip)
//   direct     kDirectSwitch                                  (no exit at all)
//
// and prints one count/avg/P99 row per (class, reason), per mode — the same
// table kvm_stat derives from the kvm:kvm_exit tracepoint, except here the
// latencies are exact virtual-clock intervals, not sampled deltas.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/backends/platform.h"
#include "src/check/simcheck.h"
#include "src/metrics/histogram.h"
#include "src/obs/flight.h"
#include "src/obs/json.h"
#include "src/workloads/memstress.h"
#include "src/workloads/runner.h"

namespace pvm {
namespace {

// Row ordering. kvm_stat's default is weight (count); avg and p99 surface
// the slow-but-rare rows instead. Ties always fall back to the deterministic
// (class, reason) map order, so every sort is byte-reproducible.
enum class SortKey { kCount, kAvg, kP99 };

struct StatOptions {
  std::vector<DeployMode> modes;
  int processes = 2;
  std::uint64_t bytes_per_process = 4ull << 20;
  std::size_t ring_capacity = 1ull << 20;
  SortKey sort = SortKey::kCount;
  bool json = false;
  bool csv = false;
};

struct Row {
  std::string cls;
  std::string reason;
  LatencyHistogram latency;
};

struct ModeStats {
  DeployMode mode = DeployMode::kPvmNst;
  std::uint64_t sim_ns = 0;
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
  std::vector<Row> rows;
};

// Row keys aggregate across tracks: (class, reason code). Classes are small
// ints so the map iterates switcher, then vmx, then direct, deterministically.
enum RowClass { kClassSwitcher = 0, kClassVmx = 1, kClassDirect = 2 };

std::string_view row_class_name(int cls) {
  switch (cls) {
    case kClassSwitcher:
      return "switcher";
    case kClassVmx:
      return "vmx";
    case kClassDirect:
      return "direct";
    default:
      return "?";
  }
}

ModeStats run_mode(DeployMode mode, const StatOptions& options) {
  PlatformConfig config;
  config.mode = mode;
  VirtualPlatform platform(config);
  // Raise the ring size before the run creates any track: capacity binds at
  // a track's first event, and accounting needs the run unwrapped.
  platform.flight().set_capacity(options.ring_capacity);

  SecureContainer& container = platform.create_container("stat");
  platform.sim().spawn(container.boot(), "boot");
  platform.sim().run();

  run_processes_in_container(
      platform, container, options.processes,
      [&container, &options](int index, Vcpu& vcpu, GuestProcess& proc) -> Task<void> {
        MemStressParams params;
        params.total_bytes = options.bytes_per_process;
        params.chunk_bytes = 256ull << 10;
        params.seed = static_cast<std::uint64_t>(index) + 1;
        return memstress_process(container, vcpu, proc, params);
      });

  ModeStats stats;
  stats.mode = mode;
  stats.sim_ns = platform.sim().now();
  stats.events = platform.flight().total_events();
  stats.dropped = platform.flight().dropped_events();

  std::map<std::pair<int, int>, LatencyHistogram> rows;
  // Per-track open exit awaiting its entry, per class (a vmx roundtrip can
  // nest inside a switcher exit window, so the classes pair independently).
  std::map<std::int64_t, const flight::Event*> open_switch;
  std::map<std::int64_t, const flight::Event*> open_vmx;
  const std::vector<flight::Event> merged = platform.flight().merged();
  for (const flight::Event& event : merged) {
    switch (event.kind) {
      case flight::EventKind::kSwitcherExit:
        open_switch[event.track] = &event;
        break;
      case flight::EventKind::kSwitcherEntry:
        if (const flight::Event*& open = open_switch[event.track]; open != nullptr) {
          rows[{kClassSwitcher, open->code}].record(event.t - open->t);
          open = nullptr;
        }
        break;
      case flight::EventKind::kVmxExit:
        open_vmx[event.track] = &event;
        break;
      case flight::EventKind::kVmxEntry:
        if (const flight::Event*& open = open_vmx[event.track]; open != nullptr) {
          rows[{kClassVmx, open->code}].record(event.t - open->t);
          open = nullptr;
        }
        break;
      case flight::EventKind::kDirectSwitch:
        // Self-contained: the event carries its own duration.
        rows[{kClassDirect, event.code}].record(event.b);
        break;
      default:
        break;
    }
  }

  for (const auto& [key, hist] : rows) {
    Row row;
    row.cls = row_class_name(key.first);
    switch (key.first) {
      case kClassSwitcher:
        row.reason = flight::switch_reason_label(static_cast<std::uint8_t>(key.second));
        break;
      case kClassVmx:
        row.reason = flight::exit_reason_label(static_cast<std::uint8_t>(key.second));
        break;
      default:
        row.reason = key.second == 0 ? "to-kernel" : "to-user";
        break;
    }
    row.latency = hist;
    stats.rows.push_back(std::move(row));
  }
  // kvm_stat orders by weight by default; ties fall back to the
  // deterministic map order.
  std::stable_sort(stats.rows.begin(), stats.rows.end(),
                   [sort = options.sort](const Row& x, const Row& y) {
                     switch (sort) {
                       case SortKey::kAvg:
                         return x.latency.mean() > y.latency.mean();
                       case SortKey::kP99:
                         return x.latency.quantile(0.99) > y.latency.quantile(0.99);
                       case SortKey::kCount:
                         break;
                     }
                     return x.latency.count() > y.latency.count();
                   });
  return stats;
}

void print_text(const std::vector<ModeStats>& all, const StatOptions& options) {
  std::printf("pvm-stat: exit accounting (memstress, %d process(es) x %" PRIu64
              " KiB, virtual-clock latencies)\n\n",
              options.processes, options.bytes_per_process >> 10);
  for (const ModeStats& stats : all) {
    std::printf("mode %s: %" PRIu64 " flight events (%" PRIu64
                " dropped), sim time %" PRIu64 " ns\n",
                std::string(deploy_mode_name(stats.mode)).c_str(), stats.events,
                stats.dropped, stats.sim_ns);
    std::printf("  %-9s %-18s %10s %12s %12s %14s\n", "class", "reason", "count",
                "avg_ns", "p99_ns", "total_ns");
    for (const Row& row : stats.rows) {
      std::printf("  %-9s %-18s %10" PRIu64 " %12.1f %12" PRIu64 " %14" PRIu64 "\n",
                  row.cls.c_str(), row.reason.c_str(), row.latency.count(),
                  row.latency.mean(), row.latency.quantile(0.99), row.latency.sum());
    }
    std::printf("\n");
  }
}

// RFC 4180 field quoting: wrap in double quotes (doubling inner quotes) only
// when the field contains a comma, quote, or line break. Today's mode/class/
// reason labels are fixed tokens, so this is byte-identical for them — but a
// future label derived from a user-named resource must not be able to smuggle
// extra columns or rows into the CSV.
std::string csv_field(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) {
    return field;
  }
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') {
      quoted += '"';
    }
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

// One flat CSV row per (mode, class, reason), header first — the shape
// spreadsheet pivots and pandas.read_csv want.
void print_csv(const std::vector<ModeStats>& all) {
  std::printf("mode,class,reason,count,avg_ns,p99_ns,total_ns\n");
  for (const ModeStats& stats : all) {
    const std::string token(simcheck_mode_token(stats.mode));
    for (const Row& row : stats.rows) {
      std::printf("%s,%s,%s,%" PRIu64 ",%.1f,%" PRIu64 ",%" PRIu64 "\n",
                  csv_field(token).c_str(), csv_field(row.cls).c_str(),
                  csv_field(row.reason).c_str(), row.latency.count(), row.latency.mean(),
                  row.latency.quantile(0.99), row.latency.sum());
    }
  }
}

void print_json(const std::vector<ModeStats>& all, const StatOptions& options) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("schema").value("pvm.stat.v1");
  json.key("workload").begin_object()
      .key("name").value("memstress")
      .key("processes").value(static_cast<std::uint64_t>(options.processes))
      .key("bytes_per_process").value(options.bytes_per_process)
      .end_object();
  json.key("modes").begin_array();
  for (const ModeStats& stats : all) {
    json.begin_object();
    json.key("mode").value(deploy_mode_name(stats.mode));
    json.key("token").value(simcheck_mode_token(stats.mode));
    json.key("sim_ns").value(stats.sim_ns);
    json.key("events").value(stats.events);
    json.key("dropped").value(stats.dropped);
    json.key("rows").begin_array();
    for (const Row& row : stats.rows) {
      json.begin_object()
          .key("class").value(row.cls)
          .key("reason").value(row.reason)
          .key("count").value(row.latency.count())
          .key("avg_ns").value(row.latency.mean())
          .key("p99_ns").value(row.latency.quantile(0.99))
          .key("total_ns").value(row.latency.sum())
          .end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  std::printf("%s\n", json.str().c_str());
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--modes all|tok1,tok2,...] [--processes N] [--kbytes N]\n"
               "          [--capacity N] [--sort count|avg|p99] [--json|--csv]\n"
               "  --modes      deployment modes to account (tokens as in simcheck:\n"
               "               ept-bm, kvm-spt, pvm-bm, ept, pvm, spt-on-ept,\n"
               "               pvm-direct); default all\n"
               "  --processes  memstress processes per mode (default 2)\n"
               "  --kbytes     KiB touched per process (default 4096)\n"
               "  --capacity   flight-ring capacity per track (default 1048576)\n"
               "  --sort       row order within each mode: count (default, the\n"
               "               kvm_stat weight order), avg, or p99\n"
               "  --json       emit pvm.stat.v1 JSON on stdout instead of the table\n"
               "  --csv        emit one flat CSV row per (mode, class, reason)\n",
               argv0);
  return 2;
}

int stat_main(int argc, char** argv) {
  StatOptions options;
  std::string modes_arg = "all";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--modes" && i + 1 < argc) {
      modes_arg = argv[++i];
    } else if (arg == "--processes" && i + 1 < argc) {
      options.processes = std::atoi(argv[++i]);
    } else if (arg == "--kbytes" && i + 1 < argc) {
      options.bytes_per_process = std::strtoull(argv[++i], nullptr, 10) << 10;
    } else if (arg == "--capacity" && i + 1 < argc) {
      options.ring_capacity = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--sort" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value == "count") {
        options.sort = SortKey::kCount;
      } else if (value == "avg") {
        options.sort = SortKey::kAvg;
      } else if (value == "p99") {
        options.sort = SortKey::kP99;
      } else {
        std::fprintf(stderr, "unknown sort key: %s\n", value.c_str());
        return usage(argv[0]);
      }
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--csv") {
      options.csv = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (options.processes < 1 || options.bytes_per_process == 0 ||
      options.ring_capacity == 0 || (options.json && options.csv)) {
    return usage(argv[0]);
  }

  if (modes_arg == "all") {
    options.modes = {DeployMode::kKvmEptBm,  DeployMode::kKvmSptBm,
                     DeployMode::kPvmBm,     DeployMode::kKvmEptNst,
                     DeployMode::kPvmNst,    DeployMode::kSptOnEptNst,
                     DeployMode::kPvmDirectNst};
  } else {
    std::size_t start = 0;
    while (start <= modes_arg.size()) {
      const std::size_t comma = modes_arg.find(',', start);
      const std::string token =
          modes_arg.substr(start, comma == std::string::npos ? comma : comma - start);
      DeployMode mode;
      if (!parse_mode_token(token, &mode)) {
        std::fprintf(stderr, "unknown mode token: %s\n", token.c_str());
        return usage(argv[0]);
      }
      options.modes.push_back(mode);
      if (comma == std::string::npos) {
        break;
      }
      start = comma + 1;
    }
  }

  std::vector<ModeStats> all;
  for (const DeployMode mode : options.modes) {
    all.push_back(run_mode(mode, options));
  }
  if (options.json) {
    print_json(all, options);
  } else if (options.csv) {
    print_csv(all);
  } else {
    print_text(all, options);
  }
  return 0;
}

}  // namespace
}  // namespace pvm

int main(int argc, char** argv) { return pvm::stat_main(argc, argv); }
