// pvm-profile — render a pvm.profile.v1 export (the deterministic
// critical-path fold of a run's span trees) as a blame table or as
// collapsed-stack flamegraph input.
//
//   table0_switch_cost --profile prof.json
//   pvm-profile prof.json                       # blame table (default)
//   pvm-profile prof.json --collapsed > stacks  # flamegraph.pl stacks
//   pvm-profile prof.json --op op.page_fault --top 5
//
// The blame table names, per operation kind, the phase paths that bounded
// its latency — over all instances and over the tail cohort (instances at or
// above the fold-time p99) — plus the single worst instance's virtual-clock
// anchor. Output is deterministic for a given (document, options).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "src/obs/prof.h"

namespace {

void usage(std::ostream& out) {
  out << "usage: pvm-profile <profile.json> [options]\n"
         "  --collapsed       emit collapsed stacks (flamegraph input) instead\n"
         "                    of the blame table\n"
         "  --op SUBSTR       only operations whose key contains SUBSTR\n"
         "  --top N           paths shown per table section (default 10)\n";
}

[[noreturn]] void die(const std::string& message) {
  std::cerr << "pvm-profile: " << message << "\n";
  usage(std::cerr);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool collapsed = false;
  pvm::prof::BlameOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--collapsed") {
      collapsed = true;
    } else if (arg == "--op") {
      if (i + 1 >= argc) {
        die("--op needs a value");
      }
      options.filter = argv[++i];
    } else if (arg == "--top") {
      if (i + 1 >= argc) {
        die("--top needs a value");
      }
      const int top = std::atoi(argv[++i]);
      if (top < 1) {
        die("--top must be >= 1");
      }
      options.top_k = static_cast<std::size_t>(top);
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      die("unknown option '" + std::string(arg) + "'");
    } else if (path.empty()) {
      path = arg;
    } else {
      die("more than one input file");
    }
  }
  if (path.empty()) {
    die("missing profile.json argument");
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "pvm-profile: cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  pvm::prof::ProfDoc doc;
  std::string error;
  if (!pvm::prof::parse_profile_json(buffer.str(), &doc, &error)) {
    std::cerr << "pvm-profile: " << path << ": " << error << "\n";
    return 2;
  }

  const std::string rendered = collapsed ? pvm::prof::render_collapsed_stacks(doc)
                                         : pvm::prof::render_blame(doc, options);
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  return 0;
}
