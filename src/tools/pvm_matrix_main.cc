// pvm-matrix — run a declarative scenario matrix across the bench library
// entry points and emit one versioned pvm.matrix.v1 document.
//
//   pvm-matrix --modes pvm,kvm-spt --workloads syscall,boot --seeds 4
//              --jobs 8 --out matrix.json
//
// Cells run on a worker pool (--jobs), each in its own isolated simulation;
// results merge by cell index, so the document is byte-identical to a
// --jobs 1 run. --timing embeds wall-clock/throughput stats — the one
// nondeterministic section — and is therefore off by default.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "bench/entries.h"
#include "src/obs/ts.h"
#include "src/sweep/matrix.h"
#include "src/sweep/sweep.h"

namespace {

void usage(std::ostream& out) {
  out << "usage: pvm-matrix [options]\n"
         "  --modes m1,m2,...      pvm | pvm-bm | pvm-direct | kvm-spt |\n"
         "                         spt-on-ept | ept | ept-bm | all\n"
         "                         (default: pvm,kvm-spt,ept)\n"
         "  --workloads w1,w2,...  switch | syscall | pagefault | boot | all\n"
         "                         (default: syscall)\n"
         "  --faults f1,f2,...     fault plans (fault::FaultPlan::parse specs,\n"
         "                         e.g. none,faultstorm:seed=7; default: none)\n"
         "  --policies p1,p2,...   fifo | random | lifo | all (default: fifo)\n"
         "  --seeds N              schedule seeds per combination (default: 1)\n"
         "  --first-seed N         first schedule seed (default: 1)\n"
         "  --jobs N               worker threads (default: 1; 0 = one per\n"
         "                         hardware thread). Output is byte-identical\n"
         "                         to --jobs 1\n"
         "  --out PATH             write the document to PATH (default: stdout)\n"
         "  --timing               embed wall-clock stats (nondeterministic;\n"
         "                         off by default so documents stay diffable)\n"
         "  --timeseries PATH      collect per-cell pvm.timeseries.v1 documents\n"
         "                         and write their index-order merge to PATH\n"
         "                         (byte-identical across --jobs; render with\n"
         "                         pvm-top)\n"
         "  --ts-window NS         timeseries window width in virtual ns\n"
         "                         (default 1000000)\n"
         "  --slo SPEC             evaluate an SLO against the merged timeseries\n"
         "                         (\"name:metric:p99<=15ms[:window]\"); repeatable\n";
}

std::vector<std::string> split_csv(std::string_view list) {
  std::vector<std::string> tokens;
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    tokens.emplace_back(list.substr(0, comma));
    if (comma == std::string_view::npos) {
      break;
    }
    list.remove_prefix(comma + 1);
  }
  return tokens;
}

[[noreturn]] void die(const std::string& message) {
  std::cerr << "pvm-matrix: " << message << "\n";
  usage(std::cerr);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  pvm::sweep::MatrixSpec spec;
  spec.modes = {pvm::DeployMode::kPvmNst, pvm::DeployMode::kKvmSptBm,
                pvm::DeployMode::kKvmEptNst};
  spec.workloads = {"syscall"};
  spec.fault_plans = {"none"};
  spec.policies = {pvm::SchedulePolicy::kFifo};
  int jobs = 1;
  bool timing = false;
  std::string out_path;
  std::string ts_path;
  std::uint64_t ts_window_ns = 0;
  std::vector<pvm::ts::SloSpec> slo_specs;

  const auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      die(std::string(argv[i]) + " needs a value");
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--modes") {
      const std::string value = next_value(i);
      spec.modes.clear();
      if (value == "all") {
        spec.modes.assign(std::begin(pvm::kAllDeployModes), std::end(pvm::kAllDeployModes));
      } else {
        for (const std::string& token : split_csv(value)) {
          pvm::DeployMode mode;
          if (!pvm::parse_deploy_mode_token(token, &mode)) {
            die("unknown mode '" + token + "'");
          }
          spec.modes.push_back(mode);
        }
      }
    } else if (arg == "--workloads") {
      const std::string value = next_value(i);
      if (value == "all") {
        spec.workloads = pvm::bench::matrix_workloads();
      } else {
        spec.workloads = split_csv(value);
        for (const std::string& workload : spec.workloads) {
          const auto& known = pvm::bench::matrix_workloads();
          if (std::find(known.begin(), known.end(), workload) == known.end()) {
            die("unknown workload '" + workload + "'");
          }
        }
      }
    } else if (arg == "--faults") {
      spec.fault_plans = split_csv(next_value(i));
    } else if (arg == "--policies") {
      const std::string value = next_value(i);
      if (value == "all") {
        spec.policies = {pvm::SchedulePolicy::kFifo, pvm::SchedulePolicy::kRandom,
                         pvm::SchedulePolicy::kLifo};
      } else {
        spec.policies.clear();
        for (const std::string& token : split_csv(value)) {
          pvm::SchedulePolicy policy;
          if (!pvm::parse_schedule_policy_token(token, &policy)) {
            die("unknown policy '" + token + "'");
          }
          spec.policies.push_back(policy);
        }
      }
    } else if (arg == "--seeds") {
      spec.seeds = std::atoi(next_value(i).c_str());
    } else if (arg == "--first-seed") {
      spec.first_seed = std::strtoull(next_value(i).c_str(), nullptr, 10);
    } else if (arg == "--jobs") {
      jobs = std::atoi(next_value(i).c_str());
      if (jobs < 0) {
        die("--jobs must be >= 0");
      }
    } else if (arg == "--out") {
      out_path = next_value(i);
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--timeseries") {
      ts_path = next_value(i);
    } else if (arg == "--ts-window") {
      ts_window_ns = std::strtoull(next_value(i).c_str(), nullptr, 10);
    } else if (arg == "--slo") {
      const std::string value = next_value(i);
      pvm::ts::SloSpec spec;
      std::string error;
      if (!pvm::ts::parse_slo_spec(value, &spec, &error)) {
        die("bad --slo spec '" + value + "': " + error);
      }
      slo_specs.push_back(std::move(spec));
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      die("unknown option '" + std::string(arg) + "'");
    }
  }
  if (spec.cell_count() == 0) {
    die("empty matrix (check --modes/--workloads/--faults/--policies/--seeds)");
  }

  const bool want_ts = !ts_path.empty();
  const auto runner = [want_ts, ts_window_ns](const pvm::sweep::MatrixCell& cell) {
    pvm::bench::CellConfig config;
    config.mode = cell.mode;
    config.policy = cell.policy;
    config.schedule_seed = cell.seed;
    config.fault_plan = cell.fault_plan;
    config.timeseries = want_ts;
    config.ts_window_ns = ts_window_ns;
    const pvm::bench::CellOutcome outcome =
        pvm::bench::run_workload_cell(cell.workload, config);
    pvm::sweep::CellResult result;
    result.ok = outcome.ok;
    result.error = outcome.error;
    result.bench_json = outcome.bench_json;
    result.ts_json = outcome.ts_json;
    result.events = outcome.events;
    return result;
  };

  pvm::sweep::SweepTiming sweep_timing;
  const std::vector<pvm::sweep::CellResult> cells =
      pvm::sweep::run_matrix(spec, jobs, runner, &sweep_timing);
  const std::string document =
      pvm::sweep::render_matrix_json(spec, cells, timing ? &sweep_timing : nullptr);

  if (out_path.empty()) {
    std::fwrite(document.data(), 1, document.size(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "pvm-matrix: cannot open " << out_path << " for writing\n";
      return 2;
    }
    out << document;
  }

  if (want_ts) {
    // Cells merge in index order — the same discipline as the matrix
    // document itself — so this export is byte-identical across --jobs.
    pvm::ts::TsDoc merged;
    for (const pvm::sweep::CellResult& cell : cells) {
      if (cell.ts_json.empty()) {
        continue;
      }
      pvm::ts::TsDoc doc;
      std::string error;
      if (!pvm::ts::parse_timeseries_json(cell.ts_json, &doc, &error) ||
          !pvm::ts::merge_timeseries(&merged, doc, &error)) {
        std::cerr << "pvm-matrix: timeseries merge failed: " << error << "\n";
        return 2;
      }
    }
    pvm::ts::evaluate_slos(&merged, slo_specs);
    const std::string ts_document = pvm::ts::render_timeseries_json(merged);
    std::ofstream out(ts_path, std::ios::binary);
    if (!out) {
      std::cerr << "pvm-matrix: cannot open " << ts_path << " for writing\n";
      return 2;
    }
    out << ts_document;
  }
  // Wall clock always goes to stderr (whether or not --timing embedded it):
  // the document stays diffable, the operator still sees throughput.
  std::fprintf(stderr,
               "pvm-matrix: %zu cell(s), jobs=%d, wall %.2fs (%.1f cells/s, %.0f events/s)\n",
               cells.size(), sweep_timing.jobs, sweep_timing.wall_seconds,
               sweep_timing.cells_per_second(), sweep_timing.events_per_second());

  std::size_t failed = 0;
  for (const pvm::sweep::CellResult& cell : cells) {
    if (!cell.ok) {
      ++failed;
    }
  }
  if (failed != 0) {
    std::fprintf(stderr, "pvm-matrix: %zu cell(s) failed\n", failed);
    return 1;
  }
  return 0;
}
