// pvm-matrix — run a declarative scenario matrix across the bench library
// entry points and emit one versioned pvm.matrix.v1 document.
//
//   pvm-matrix --modes pvm,kvm-spt --workloads syscall,boot --seeds 4
//              --jobs 8 --out matrix.json
//
// Cells run on a worker pool (--jobs), each in its own isolated simulation;
// results merge by cell index, so the document is byte-identical to a
// --jobs 1 run. --timing embeds wall-clock/throughput stats — the one
// nondeterministic section — and is therefore off by default.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "bench/entries.h"
#include "src/obs/prof.h"
#include "src/obs/ts.h"
#include "src/sweep/matrix.h"
#include "src/sweep/sweep.h"
#include "src/wal/wal.h"

namespace {

void usage(std::ostream& out) {
  out << "usage: pvm-matrix [options]\n"
         "  --modes m1,m2,...      pvm | pvm-bm | pvm-direct | kvm-spt |\n"
         "                         spt-on-ept | ept | ept-bm | all\n"
         "                         (default: pvm,kvm-spt,ept)\n"
         "  --workloads w1,w2,...  switch | syscall | pagefault | boot | all\n"
         "                         (default: syscall)\n"
         "  --faults f1,f2,...     fault plans (fault::FaultPlan::parse specs,\n"
         "                         e.g. none,faultstorm:seed=7; default: none)\n"
         "  --policies p1,p2,...   fifo | random | lifo | all (default: fifo)\n"
         "  --seeds N              schedule seeds per combination (default: 1)\n"
         "  --first-seed N         first schedule seed (default: 1)\n"
         "  --jobs N               worker threads (default: 1; 0 = one per\n"
         "                         hardware thread). Output is byte-identical\n"
         "                         to --jobs 1\n"
         "  --out PATH             write the document to PATH (default: stdout)\n"
         "  --timing               embed wall-clock stats (nondeterministic;\n"
         "                         off by default so documents stay diffable)\n"
         "  --timeseries PATH      collect per-cell pvm.timeseries.v1 documents\n"
         "                         and write their index-order merge to PATH\n"
         "                         (byte-identical across --jobs; render with\n"
         "                         pvm-top)\n"
         "  --ts-window NS         timeseries window width in virtual ns\n"
         "                         (default 1000000)\n"
         "  --profile PATH         collect per-cell pvm.profile.v1 documents\n"
         "                         (critical-path fold of every run's span\n"
         "                         tree) and write their index-order merge to\n"
         "                         PATH (byte-identical across --jobs; render\n"
         "                         with pvm-profile)\n"
         "  --slo SPEC             evaluate an SLO against the merged timeseries\n"
         "                         (\"name:metric:p99<=15ms[:window]\"); repeatable\n"
         "  --checkpoint PATH      WAL-backed resume: completed cells append to\n"
         "                         PATH as they finish; a rerun with the same\n"
         "                         spec replays them instead of recomputing, so\n"
         "                         the final document is byte-identical to an\n"
         "                         uninterrupted run (torn tails are truncated\n"
         "                         and those cells rerun)\n"
         "  --checkpoint-stop-after N\n"
         "                         stop after N freshly computed cells (exit 3,\n"
         "                         no document) — crash-resume testing hook\n";
}

std::vector<std::string> split_csv(std::string_view list) {
  std::vector<std::string> tokens;
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    tokens.emplace_back(list.substr(0, comma));
    if (comma == std::string_view::npos) {
      break;
    }
    list.remove_prefix(comma + 1);
  }
  return tokens;
}

[[noreturn]] void die(const std::string& message) {
  std::cerr << "pvm-matrix: " << message << "\n";
  usage(std::cerr);
  std::exit(2);
}

// Identity of the matrix a checkpoint belongs to: every coordinate that
// changes what a cell computes. A resume against a different spec would
// splice wrong results into the document, so the header record pins this.
std::string spec_fingerprint(const pvm::sweep::MatrixSpec& spec, bool want_ts,
                             std::uint64_t ts_window_ns, bool want_profile) {
  std::string fp = "pvm.matrix.v1;modes=";
  for (const pvm::DeployMode mode : spec.modes) {
    fp += pvm::deploy_mode_name(mode);
    fp += ',';
  }
  fp += ";workloads=";
  for (const std::string& workload : spec.workloads) {
    fp += workload;
    fp += ',';
  }
  fp += ";faults=";
  for (const std::string& plan : spec.fault_plans) {
    fp += plan;
    fp += ',';
  }
  fp += ";policies=";
  for (const pvm::SchedulePolicy policy : spec.policies) {
    fp += pvm::schedule_policy_name(policy);
    fp += ',';
  }
  fp += ";seeds=" + std::to_string(spec.seeds);
  fp += ";first_seed=" + std::to_string(spec.first_seed);
  fp += ";ts=" + std::string(want_ts ? "1" : "0");
  fp += ";ts_window=" + std::to_string(ts_window_ns);
  fp += ";profile=" + std::string(want_profile ? "1" : "0");
  return fp;
}

std::string encode_cell_result(std::size_t index, const pvm::sweep::CellResult& cell) {
  std::string payload;
  pvm::wal::put_u64(payload, index);
  pvm::wal::put_u32(payload, cell.ok ? 1 : 0);
  pvm::wal::put_string(payload, cell.error);
  pvm::wal::put_string(payload, cell.bench_json);
  pvm::wal::put_string(payload, cell.ts_json);
  pvm::wal::put_string(payload, cell.profile_json);
  pvm::wal::put_u64(payload, cell.events);
  return payload;
}

bool decode_cell_result(std::string_view payload, std::size_t* index,
                        pvm::sweep::CellResult* cell) {
  std::size_t cursor = 0;
  std::uint64_t idx = 0, events = 0;
  std::uint32_t ok = 0;
  if (!pvm::wal::get_u64(payload, &cursor, &idx) ||
      !pvm::wal::get_u32(payload, &cursor, &ok) ||
      !pvm::wal::get_string(payload, &cursor, &cell->error) ||
      !pvm::wal::get_string(payload, &cursor, &cell->bench_json) ||
      !pvm::wal::get_string(payload, &cursor, &cell->ts_json) ||
      !pvm::wal::get_string(payload, &cursor, &cell->profile_json) ||
      !pvm::wal::get_u64(payload, &cursor, &events)) {
    return false;
  }
  *index = static_cast<std::size_t>(idx);
  cell->ok = ok != 0;
  cell->events = events;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  pvm::sweep::MatrixSpec spec;
  spec.modes = {pvm::DeployMode::kPvmNst, pvm::DeployMode::kKvmSptBm,
                pvm::DeployMode::kKvmEptNst};
  spec.workloads = {"syscall"};
  spec.fault_plans = {"none"};
  spec.policies = {pvm::SchedulePolicy::kFifo};
  int jobs = 1;
  bool timing = false;
  std::string out_path;
  std::string ts_path;
  std::string profile_path;
  std::uint64_t ts_window_ns = 0;
  std::vector<pvm::ts::SloSpec> slo_specs;
  std::string checkpoint_path;
  std::uint64_t checkpoint_stop_after = 0;

  const auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      die(std::string(argv[i]) + " needs a value");
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--modes") {
      const std::string value = next_value(i);
      spec.modes.clear();
      if (value == "all") {
        spec.modes.assign(std::begin(pvm::kAllDeployModes), std::end(pvm::kAllDeployModes));
      } else {
        for (const std::string& token : split_csv(value)) {
          pvm::DeployMode mode;
          if (!pvm::parse_deploy_mode_token(token, &mode)) {
            die("unknown mode '" + token + "'");
          }
          spec.modes.push_back(mode);
        }
      }
    } else if (arg == "--workloads") {
      const std::string value = next_value(i);
      if (value == "all") {
        spec.workloads = pvm::bench::matrix_workloads();
      } else {
        spec.workloads = split_csv(value);
        for (const std::string& workload : spec.workloads) {
          const auto& known = pvm::bench::matrix_workloads();
          if (std::find(known.begin(), known.end(), workload) == known.end()) {
            die("unknown workload '" + workload + "'");
          }
        }
      }
    } else if (arg == "--faults") {
      spec.fault_plans = split_csv(next_value(i));
    } else if (arg == "--policies") {
      const std::string value = next_value(i);
      if (value == "all") {
        spec.policies = {pvm::SchedulePolicy::kFifo, pvm::SchedulePolicy::kRandom,
                         pvm::SchedulePolicy::kLifo};
      } else {
        spec.policies.clear();
        for (const std::string& token : split_csv(value)) {
          pvm::SchedulePolicy policy;
          if (!pvm::parse_schedule_policy_token(token, &policy)) {
            die("unknown policy '" + token + "'");
          }
          spec.policies.push_back(policy);
        }
      }
    } else if (arg == "--seeds") {
      spec.seeds = std::atoi(next_value(i).c_str());
    } else if (arg == "--first-seed") {
      spec.first_seed = std::strtoull(next_value(i).c_str(), nullptr, 10);
    } else if (arg == "--jobs") {
      jobs = std::atoi(next_value(i).c_str());
      if (jobs < 0) {
        die("--jobs must be >= 0");
      }
    } else if (arg == "--out") {
      out_path = next_value(i);
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--timeseries") {
      ts_path = next_value(i);
    } else if (arg == "--ts-window") {
      ts_window_ns = std::strtoull(next_value(i).c_str(), nullptr, 10);
    } else if (arg == "--profile") {
      profile_path = next_value(i);
    } else if (arg == "--slo") {
      const std::string value = next_value(i);
      pvm::ts::SloSpec spec;
      std::string error;
      if (!pvm::ts::parse_slo_spec(value, &spec, &error)) {
        die("bad --slo spec '" + value + "': " + error);
      }
      slo_specs.push_back(std::move(spec));
    } else if (arg == "--checkpoint") {
      checkpoint_path = next_value(i);
    } else if (arg == "--checkpoint-stop-after") {
      checkpoint_stop_after = std::strtoull(next_value(i).c_str(), nullptr, 10);
      if (checkpoint_stop_after == 0) {
        die("--checkpoint-stop-after must be >= 1");
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      die("unknown option '" + std::string(arg) + "'");
    }
  }
  if (spec.cell_count() == 0) {
    die("empty matrix (check --modes/--workloads/--faults/--policies/--seeds)");
  }
  if (checkpoint_stop_after != 0 && checkpoint_path.empty()) {
    die("--checkpoint-stop-after needs --checkpoint");
  }

  const bool want_ts = !ts_path.empty();
  const bool want_profile = !profile_path.empty();

  // Checkpoint-resume: replay completed cells from the WAL (a torn tail —
  // the process died mid-append — is truncated by recovery, so those cells
  // simply rerun), then append each freshly computed cell and save. The
  // final document is byte-identical to an uninterrupted run because cells
  // are deterministic and merge by index, never by completion order.
  const bool use_checkpoint = !checkpoint_path.empty();
  const std::string fingerprint = spec_fingerprint(spec, want_ts, ts_window_ns, want_profile);
  std::vector<pvm::sweep::CellResult> cached(spec.cell_count());
  std::vector<char> have(spec.cell_count(), 0);
  pvm::wal::Log checkpoint_log("wal:matrix");
  std::mutex checkpoint_mutex;
  if (use_checkpoint) {
    std::string bytes;
    std::string error;
    if (!pvm::wal::load_file(checkpoint_path, &bytes, &error)) {
      die("cannot read checkpoint " + checkpoint_path + ": " + error);
    }
    const pvm::wal::RecoveryResult recovered = pvm::wal::recover(bytes);
    if (recovered.torn_tail) {
      std::cerr << "pvm-matrix: checkpoint tail truncated (" << recovered.detail
                << "); rerunning the affected cell(s)\n";
    }
    std::size_t replayed = 0;
    for (const pvm::wal::Record& record : recovered.records) {
      if (record.type == pvm::wal::RecordType::kHeader) {
        std::size_t cursor = 0;
        std::string stored;
        if (!pvm::wal::get_string(record.payload, &cursor, &stored) ||
            stored != fingerprint) {
          die("checkpoint " + checkpoint_path +
              " was written for a different matrix spec; delete it or rerun "
              "with the original --modes/--workloads/--faults/--policies/"
              "--seeds/--timeseries options");
        }
      } else if (record.type == pvm::wal::RecordType::kCellResult) {
        std::size_t index = 0;
        pvm::sweep::CellResult cell;
        if (decode_cell_result(record.payload, &index, &cell) && index < cached.size()) {
          cached[index] = std::move(cell);
          have[index] = 1;
          ++replayed;
        }
      }
    }
    if (replayed > 0) {
      std::fprintf(stderr, "pvm-matrix: replayed %zu of %zu cell(s) from %s\n", replayed,
                   spec.cell_count(), checkpoint_path.c_str());
    }
    // Rebuild the log from scratch: header, then the replayed cells. Fresh
    // cells append behind them as they complete.
    checkpoint_log.clear();
    std::string header;
    pvm::wal::put_string(header, fingerprint);
    checkpoint_log.append(pvm::wal::RecordType::kHeader, header);
    for (std::size_t i = 0; i < cached.size(); ++i) {
      if (have[i] != 0) {
        checkpoint_log.append(pvm::wal::RecordType::kCellResult,
                              encode_cell_result(i, cached[i]));
      }
    }
  }

  const auto run_cell = [want_ts, ts_window_ns,
                         want_profile](const pvm::sweep::MatrixCell& cell) {
    pvm::bench::CellConfig config;
    config.mode = cell.mode;
    config.policy = cell.policy;
    config.schedule_seed = cell.seed;
    config.fault_plan = cell.fault_plan;
    config.timeseries = want_ts;
    config.ts_window_ns = ts_window_ns;
    config.profile = want_profile;
    const pvm::bench::CellOutcome outcome =
        pvm::bench::run_workload_cell(cell.workload, config);
    pvm::sweep::CellResult result;
    result.ok = outcome.ok;
    result.error = outcome.error;
    result.bench_json = outcome.bench_json;
    result.ts_json = outcome.ts_json;
    result.profile_json = outcome.profile_json;
    result.events = outcome.events;
    return result;
  };

  std::atomic<std::uint64_t> fresh_cells{0};
  std::atomic<bool> stopped{false};
  const auto runner = [&](const pvm::sweep::MatrixCell& cell) -> pvm::sweep::CellResult {
    if (use_checkpoint && have[cell.index] != 0) {
      return cached[cell.index];
    }
    if (checkpoint_stop_after != 0 &&
        fresh_cells.fetch_add(1, std::memory_order_relaxed) >= checkpoint_stop_after) {
      stopped.store(true, std::memory_order_relaxed);
      pvm::sweep::CellResult skipped;
      skipped.ok = false;
      skipped.error = "not run: --checkpoint-stop-after";
      return skipped;
    }
    pvm::sweep::CellResult result = run_cell(cell);
    if (use_checkpoint) {
      const std::scoped_lock lock(checkpoint_mutex);
      checkpoint_log.append(pvm::wal::RecordType::kCellResult,
                            encode_cell_result(cell.index, result));
      std::string error;
      if (!checkpoint_log.save(checkpoint_path, &error)) {
        std::cerr << "pvm-matrix: checkpoint save failed: " << error << "\n";
      }
    }
    return result;
  };

  pvm::sweep::SweepTiming sweep_timing;
  const std::vector<pvm::sweep::CellResult> cells =
      pvm::sweep::run_matrix(spec, jobs, runner, &sweep_timing);

  if (stopped.load(std::memory_order_relaxed)) {
    // Deliberate mid-run stop: the checkpoint holds everything computed so
    // far; no document is written (it would embed the skipped cells).
    std::size_t done = 0;
    for (const char h : have) {
      done += h != 0 ? 1 : 0;
    }
    done += checkpoint_stop_after;
    if (done > cells.size()) {
      done = cells.size();
    }
    std::fprintf(stderr,
                 "pvm-matrix: stopped after %llu fresh cell(s) (%zu/%zu checkpointed); "
                 "resume with --checkpoint %s\n",
                 static_cast<unsigned long long>(checkpoint_stop_after), done, cells.size(),
                 checkpoint_path.c_str());
    return 3;
  }
  if (use_checkpoint) {
    // Rewrite the completed checkpoint deterministically — header, cells in
    // index order, terminal checkpoint record — so the file itself is
    // byte-identical regardless of --jobs or how many resumes it took.
    checkpoint_log.clear();
    std::string header;
    pvm::wal::put_string(header, fingerprint);
    checkpoint_log.append(pvm::wal::RecordType::kHeader, header);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      checkpoint_log.append(pvm::wal::RecordType::kCellResult,
                            encode_cell_result(i, cells[i]));
    }
    checkpoint_log.append_checkpoint(fingerprint);
    std::string error;
    if (!checkpoint_log.save(checkpoint_path, &error)) {
      std::cerr << "pvm-matrix: checkpoint save failed: " << error << "\n";
    }
  }

  const std::string document =
      pvm::sweep::render_matrix_json(spec, cells, timing ? &sweep_timing : nullptr);

  if (out_path.empty()) {
    std::fwrite(document.data(), 1, document.size(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "pvm-matrix: cannot open " << out_path << " for writing\n";
      return 2;
    }
    out << document;
  }

  if (want_ts) {
    // Cells merge in index order — the same discipline as the matrix
    // document itself — so this export is byte-identical across --jobs.
    pvm::ts::TsDoc merged;
    for (const pvm::sweep::CellResult& cell : cells) {
      if (cell.ts_json.empty()) {
        continue;
      }
      pvm::ts::TsDoc doc;
      std::string error;
      if (!pvm::ts::parse_timeseries_json(cell.ts_json, &doc, &error) ||
          !pvm::ts::merge_timeseries(&merged, doc, &error)) {
        std::cerr << "pvm-matrix: timeseries merge failed: " << error << "\n";
        return 2;
      }
    }
    pvm::ts::evaluate_slos(&merged, slo_specs);
    const std::string ts_document = pvm::ts::render_timeseries_json(merged);
    std::ofstream out(ts_path, std::ios::binary);
    if (!out) {
      std::cerr << "pvm-matrix: cannot open " << ts_path << " for writing\n";
      return 2;
    }
    out << ts_document;
  }

  if (want_profile) {
    // Same index-order merge discipline: byte-identical across --jobs.
    pvm::prof::ProfDoc merged;
    for (const pvm::sweep::CellResult& cell : cells) {
      if (cell.profile_json.empty()) {
        continue;
      }
      pvm::prof::ProfDoc doc;
      std::string error;
      if (!pvm::prof::parse_profile_json(cell.profile_json, &doc, &error) ||
          !pvm::prof::merge_profile(&merged, doc, &error)) {
        std::cerr << "pvm-matrix: profile merge failed: " << error << "\n";
        return 2;
      }
    }
    const std::string profile_document = pvm::prof::render_profile_json(merged);
    std::ofstream out(profile_path, std::ios::binary);
    if (!out) {
      std::cerr << "pvm-matrix: cannot open " << profile_path << " for writing\n";
      return 2;
    }
    out << profile_document;
  }
  // Wall clock always goes to stderr (whether or not --timing embedded it):
  // the document stays diffable, the operator still sees throughput.
  std::fprintf(stderr,
               "pvm-matrix: %zu cell(s), jobs=%d, wall %.2fs (%.1f cells/s, %.0f events/s)\n",
               cells.size(), sweep_timing.jobs, sweep_timing.wall_seconds,
               sweep_timing.cells_per_second(), sweep_timing.events_per_second());

  std::size_t failed = 0;
  for (const pvm::sweep::CellResult& cell : cells) {
    if (!cell.ok) {
      ++failed;
    }
  }
  if (failed != 0) {
    std::fprintf(stderr, "pvm-matrix: %zu cell(s) failed\n", failed);
    return 1;
  }
  return 0;
}
