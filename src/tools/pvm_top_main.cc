// pvm-top — kvm_stat/top-style text dashboard over a pvm.timeseries.v1
// export: per-window sparkline trend columns for every counter/gauge,
// latency quantiles with per-window P99 trends, worst-window highlights,
// and SLO verdicts. Makes time-evolving contrasts (the Fig. 12 bootstorm's
// kvm-ept collapse vs pvm degradation) visible window by window.
//
//   fig12_highload --faults bootstorm --timeseries ts.json
//   pvm-top ts.json --series 150c
//
// Output is deterministic for a given (document, options) — the CI golden
// check depends on it.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "src/obs/ts.h"

namespace {

void usage(std::ostream& out) {
  out << "usage: pvm-top <timeseries.json> [options]\n"
         "  --series SUBSTR   only rows whose metric name contains SUBSTR\n"
         "  --width N         sparkline column budget (default 48, min 8)\n";
}

[[noreturn]] void die(const std::string& message) {
  std::cerr << "pvm-top: " << message << "\n";
  usage(std::cerr);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  pvm::ts::TopOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--series") {
      if (i + 1 >= argc) {
        die("--series needs a value");
      }
      options.filter = argv[++i];
    } else if (arg == "--width") {
      if (i + 1 >= argc) {
        die("--width needs a value");
      }
      options.width = std::atoi(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      die("unknown option '" + std::string(arg) + "'");
    } else if (path.empty()) {
      path = arg;
    } else {
      die("more than one input file");
    }
  }
  if (path.empty()) {
    die("missing timeseries.json argument");
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "pvm-top: cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  pvm::ts::TsDoc doc;
  std::string error;
  if (!pvm::ts::parse_timeseries_json(buffer.str(), &doc, &error)) {
    std::cerr << "pvm-top: " << path << ": " << error << "\n";
    return 2;
  }

  const std::string rendered = pvm::ts::render_top(doc, options);
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  return 0;
}
