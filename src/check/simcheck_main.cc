// simcheck driver: sweeps schedule seeds x tie-break policies x deployment
// modes with the SPT coherence oracle armed, and reports the minimal failing
// seed per combination. Exit code = number of failing combinations.
//
//   simcheck --modes pvm,kvm-spt --policies random --seeds 64
//   simcheck --modes pvm --policies lifo --seeds 1 --first-seed 42  # replay

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/check/simcheck.h"
#include "src/sweep/sweep.h"

namespace {

void usage(std::ostream& out) {
  out << "usage: simcheck [options]\n"
         "  --modes m1,m2,...     pvm | pvm-bm | pvm-direct | kvm-spt |\n"
         "                        spt-on-ept | ept | ept-bm | all\n"
         "                        (default: pvm,kvm-spt,ept)\n"
         "  --policies p1,p2,...  fifo | random | lifo | all (default: all)\n"
         "  --seeds N             seeds per (mode, policy) (default: 64)\n"
         "  --first-seed N        first schedule seed (default: 1)\n"
         "  --processes N         concurrent worker processes (default: 3)\n"
         "  --bytes N             memstress bytes per process (default: 1 MiB)\n"
         "  --jobs N              worker threads for the sweep (default: 1;\n"
         "                        0 = one per hardware thread). Output is\n"
         "                        byte-identical to --jobs 1; timing goes to\n"
         "                        stderr so reports stay diffable\n"
         "  --flight-capacity N   flight-recorder ring size per track for each\n"
         "                        case (default: recorder default, 256); larger\n"
         "                        rings give longer postmortem timelines\n"
         "  --no-chaos            disable fault-injection agents\n"
         "  --no-faults           disable the faultstorm fault plans\n"
         "  --postmortem-dir D    write failing cases' flight-recorder dumps\n"
         "                        to D/postmortem-<mode>-<policy>-<seed>.{json,txt}\n"
         "  --checkpoint PATH     WAL-backed resume: finished cases append to\n"
         "                        PATH; a rerun with the same options replays\n"
         "                        them and only computes the rest (report stays\n"
         "                        byte-identical; torn tails rerun)\n"
         "  --verbose             print every case, not just failures\n";
}

std::vector<std::string> split_csv(std::string_view list) {
  std::vector<std::string> tokens;
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    tokens.emplace_back(list.substr(0, comma));
    if (comma == std::string_view::npos) {
      break;
    }
    list.remove_prefix(comma + 1);
  }
  return tokens;
}

[[noreturn]] void die(const std::string& message) {
  std::cerr << "simcheck: " << message << "\n";
  usage(std::cerr);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  pvm::SweepOptions options;
  options.modes = {pvm::DeployMode::kPvmNst, pvm::DeployMode::kKvmSptBm,
                   pvm::DeployMode::kKvmEptNst};
  options.policies = {pvm::SchedulePolicy::kFifo, pvm::SchedulePolicy::kRandom,
                      pvm::SchedulePolicy::kLifo};

  const auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      die(std::string(argv[i]) + " needs a value");
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--modes") {
      const std::string value = next_value(i);
      options.modes.clear();
      if (value == "all") {
        options.modes = {pvm::DeployMode::kKvmEptBm,    pvm::DeployMode::kKvmSptBm,
                         pvm::DeployMode::kPvmBm,       pvm::DeployMode::kKvmEptNst,
                         pvm::DeployMode::kPvmNst,      pvm::DeployMode::kSptOnEptNst,
                         pvm::DeployMode::kPvmDirectNst};
      } else {
        for (const std::string& token : split_csv(value)) {
          pvm::DeployMode mode;
          if (!pvm::parse_mode_token(token, &mode)) {
            die("unknown mode '" + token + "'");
          }
          options.modes.push_back(mode);
        }
      }
    } else if (arg == "--policies") {
      const std::string value = next_value(i);
      if (value != "all") {
        options.policies.clear();
        for (const std::string& token : split_csv(value)) {
          pvm::SchedulePolicy policy;
          if (!pvm::parse_policy_token(token, &policy)) {
            die("unknown policy '" + token + "'");
          }
          options.policies.push_back(policy);
        }
      }
    } else if (arg == "--seeds") {
      options.seeds = std::atoi(next_value(i).c_str());
    } else if (arg == "--first-seed") {
      options.first_seed = std::strtoull(next_value(i).c_str(), nullptr, 10);
    } else if (arg == "--processes") {
      options.processes = std::atoi(next_value(i).c_str());
    } else if (arg == "--bytes") {
      options.memstress_bytes = std::strtoull(next_value(i).c_str(), nullptr, 10);
    } else if (arg == "--flight-capacity") {
      options.flight_capacity = std::strtoull(next_value(i).c_str(), nullptr, 10);
    } else if (arg == "--jobs") {
      options.jobs = std::atoi(next_value(i).c_str());
      if (options.jobs < 0) {
        die("--jobs must be >= 0");
      }
    } else if (arg == "--debug-corrupt-from-seed") {
      // Undocumented test hook: plant a deterministic oracle violation for
      // every schedule seed >= N (see SweepOptions::debug_corrupt_from_seed).
      options.debug_corrupt_from_seed = std::strtoull(next_value(i).c_str(), nullptr, 10);
    } else if (arg == "--postmortem-dir") {
      options.postmortem_dir = next_value(i);
    } else if (arg == "--checkpoint") {
      options.checkpoint_path = next_value(i);
    } else if (arg == "--no-chaos") {
      options.chaos = false;
    } else if (arg == "--no-faults") {
      options.faults = false;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      die("unknown option '" + std::string(arg) + "'");
    }
  }
  if (options.modes.empty() || options.policies.empty() || options.seeds <= 0) {
    die("nothing to sweep");
  }

  // Wall-clock goes to stderr: stdout is the deterministic sweep report that
  // CI diffs against a serial golden, and timing is the one thing a parallel
  // run is allowed to change.
  const pvm::sweep::Stopwatch stopwatch;
  const int failures = pvm::run_simcheck_sweep(options, std::cout);
  const std::size_t cases = options.modes.size() * options.policies.size() *
                            static_cast<std::size_t>(options.seeds);
  std::fprintf(stderr, "simcheck: %zu case(s) max, jobs=%d, wall %.2fs\n", cases,
               options.jobs == 0 ? pvm::sweep::default_jobs() : options.jobs,
               stopwatch.seconds());
  if (failures == 0) {
    std::cout << "simcheck: all combinations passed\n";
  } else {
    std::cout << "simcheck: " << failures << " failing combination(s)\n";
  }
  return failures;
}
