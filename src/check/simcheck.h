// simcheck: systematic schedule exploration with the SPT coherence oracle.
//
// One simcheck case = one deployment mode + one (SchedulePolicy, seed) pair +
// one ablation of the PVM optimizations, running a multi-process memstress
// workload with fault-injection agents (chaos.h) and the coherence oracle
// armed. Because the discrete-event kernel breaks same-timestamp ties by
// policy+seed, every case deterministically executes a *different* legal
// interleaving of the same concurrent protocol — and replays bit-for-bit.
//
// A sweep walks seeds in ascending order per (mode, policy) combination, so
// the first failure it reports is the minimal failing seed; the report
// carries the oracle's violation list or, on deadlock, which root tasks are
// blocked in which Resource queues.

#ifndef PVM_SRC_CHECK_SIMCHECK_H_
#define PVM_SRC_CHECK_SIMCHECK_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/backends/config.h"
#include "src/check/chaos.h"
#include "src/metrics/counters.h"

namespace pvm {

// CLI-safe spelling of a deployment mode ("pvm", "kvm-spt", "ept", ...);
// shared by the simcheck binary's --modes parser and the sweep's printed
// reproduce commands so a failure report pastes back verbatim.
std::string_view simcheck_mode_token(DeployMode mode);

// Parses a mode / policy token; returns false on an unknown spelling.
bool parse_mode_token(std::string_view token, DeployMode* mode);
bool parse_policy_token(std::string_view token, SchedulePolicy* policy);

struct SimcheckCase {
  DeployMode mode = DeployMode::kPvmNst;
  SchedulePolicy policy = SchedulePolicy::kFifo;
  std::uint64_t schedule_seed = 0;

  // PVM-optimization ablation under test (ignored by non-PVM modes except
  // where the backend shares the engine options).
  bool fine_grained_locks = true;
  bool prefault = true;
  bool pcid_mapping = true;

  bool chaos = true;
  std::uint64_t chaos_seed = 1;

  // faultstorm: arm a random bounded FaultPlan (chaos.h) platform-wide, so
  // every case also explores injected allocation pressure, handoff delays,
  // exit spikes, VMRESUME failures, and spurious invalidations.
  bool faults = true;
  std::uint64_t fault_seed = 1;

  int processes = 3;
  std::uint64_t memstress_bytes = 1ull << 20;  // per process

  // Flight-recorder ring capacity per track; 0 keeps the recorder's default
  // (256). Larger rings trade memory for longer postmortem timelines on
  // failure — capacity binds at a track's first event, so it must be set
  // before the case runs, not when it dies.
  std::uint64_t flight_capacity = 0;

  // Test hook (sweep determinism tests): when nonzero and schedule_seed >=
  // this value, one shadow leaf is corrupted at the final quiescent point so
  // the oracle deterministically reports a violation. Lets tests prove that
  // serial and parallel sweeps find the same minimal failing seed without
  // depending on a real protocol bug.
  std::uint64_t debug_corrupt_from_seed = 0;
};

// The exact `simcheck ...` invocation that replays this case bit-for-bit;
// printed in failure reports and embedded in postmortem dumps.
std::string simcheck_reproduce_line(const SimcheckCase& c);

struct SimcheckResult {
  bool ok = true;
  std::string failure;  // oracle violations, exception, or deadlock report
  std::string profile;  // on failure: counter table + top-contended resources

  // On failure: the flight-recorder dump at the moment of death — the
  // interleaved per-track timeline and the pvm.postmortem.v1 JSON (which
  // embeds the reproduce line). Empty on success.
  std::string postmortem_text;
  std::string postmortem_json;

  std::uint64_t events = 0;       // events the schedule executed
  std::uint64_t fills = 0;        // Counter::kSptEntryFilled
  std::uint64_t fill_races = 0;   // Counter::kSptFillRaced
  std::uint64_t shadow_frames = 0;  // final shadow table footprint
};

// Runs one case end to end: boot, processes, workload + chaos, drain, then a
// strict quiescent oracle check. Never throws; failures land in `failure`.
SimcheckResult run_simcheck_case(const SimcheckCase& c);

struct SweepOptions {
  std::vector<DeployMode> modes;
  std::vector<SchedulePolicy> policies;
  int seeds = 64;
  std::uint64_t first_seed = 1;
  bool chaos = true;
  bool faults = true;
  int processes = 3;
  std::uint64_t memstress_bytes = 1ull << 20;
  std::uint64_t flight_capacity = 0;  // per-track ring size; 0 = default
  bool verbose = false;

  // Worker threads for the sweep (pvm::sweep engine); 0 means one per
  // hardware thread. Each case runs a fully isolated Simulation on one
  // worker, and results are merged by case index — the report, exit code,
  // and postmortem files are byte-identical to a --jobs 1 run.
  int jobs = 1;

  // When non-empty, each failing case's postmortem is written to
  // <dir>/postmortem-<mode>-<policy>-<seed>.{json,txt} (CI uploads these).
  std::string postmortem_dir;

  // When non-empty, WAL-backed checkpoint-resume: finished cases append to
  // this file as they complete, and a rerun with the same options replays
  // them instead of recomputing — the report stays byte-identical to an
  // uninterrupted sweep. A torn tail (the sweep died mid-append) is
  // truncated on recovery and those cases rerun; a checkpoint written by a
  // different option set is ignored with a warning on stderr.
  std::string checkpoint_path;

  // Plumbed into every case's debug_corrupt_from_seed (test hook, above).
  std::uint64_t debug_corrupt_from_seed = 0;
};

// Sweeps seeds (ascending) x policies x modes, cycling the PVM lock /
// prefault / PCID ablations from the seed's low bits so the cross-product is
// covered. Reports each combination's minimal failing seed to `out`.
// Returns the number of failing (mode, policy) combinations.
//
// With options.jobs > 1 the cases run on a thread pool: workers claim cases
// from a shared cursor, and a combination's remaining seeds are skipped once
// a smaller seed of that combination has failed (so triage work stays close
// to the serial early-stop). Because seeds below a failure always run and
// the merge walks seeds in ascending order, the minimal failing seed — and
// every output byte — matches the serial sweep.
int run_simcheck_sweep(const SweepOptions& options, std::ostream& out);

}  // namespace pvm

#endif  // PVM_SRC_CHECK_SIMCHECK_H_
