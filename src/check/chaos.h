// Fault-injection agents for simcheck (the schedule-exploration harness).
//
// Each agent is a root task spawned alongside a workload. They inject the
// rare concurrency the paper's fine-grained SPT protocol must survive but
// normal workloads almost never produce:
//   - zap storms: the shadow engine invalidates random translations mid-run,
//     modelling L1 memory management (reclaim, THP collapse, KSM) racing the
//     fault path,
//   - mid-run bulk zaps: whole-process shadow teardown fired while fills for
//     that process are in flight (the bulk-teardown hypercall racing faults),
//   - process churn: fork/exec/exit cycles that arm COW on shared pages,
//     recycle PCIDs, and tear address spaces down concurrently.
// All randomness comes from a seeded Xoshiro256, so every (seed, schedule)
// pair replays bit-for-bit.

#ifndef PVM_SRC_CHECK_CHAOS_H_
#define PVM_SRC_CHECK_CHAOS_H_

#include <cstdint>

#include "src/backends/platform.h"
#include "src/fault/fault.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"

namespace pvm {

struct ChaosParams {
  std::uint64_t seed = 1;

  // Zap-storm shape: `rounds` sweeps, `interval_ns` apart; each sweep zaps
  // every currently guest-mapped page with `zap_probability`, and with
  // `bulk_zap_probability` instead drops the whole process's shadow tables.
  int rounds = 6;
  SimTime interval_ns = 30 * kNsPerUs;
  double zap_probability = 0.2;
  double bulk_zap_probability = 0.15;

  // Process-churn shape: fork/exec/touch/exit cycles from the init process.
  int churn_iterations = 2;
  int churn_pages = 4;

  // Retouch-agent shape: a private always-mapped arena of `retouch_pages`,
  // each page re-touched with `touch_probability` per round.
  int retouch_pages = 8;
  double touch_probability = 0.5;
};

// All agents borrow `proc` for their whole lifetime: the caller must keep the
// process alive (no sys_exit) until the agents have drained.

// Periodically zaps random translations of `proc` (and occasionally bulk-zaps
// the whole process) through the container's shadow engine. Immediately
// returns on deployment modes without a shadow engine.
Task<void> chaos_zap_storm(SecureContainer& container, Vcpu& vcpu, GuestProcess& proc,
                           ChaosParams params);

// Models a second thread of `proc` on its own vCPU: mmaps a private arena and
// keeps re-touching it. After the zap storm drops the arena's shadow entries,
// these touches *refault* — fills with no guest-PT store in front of them —
// which is the only fill traffic that can overlap a concurrent bulk zap of
// the same process (demand fills serialize behind the GPT-store emulation on
// the structural lock first). This is what drives Counter::kSptFillRaced.
Task<void> chaos_retouch(SecureContainer& container, Vcpu& vcpu, GuestProcess& proc,
                         ChaosParams params);

// Runs fork/exec/touch/exit cycles from the container's init process on a
// dedicated vCPU, racing the main workload's fault traffic.
Task<void> chaos_process_churn(SecureContainer& container, Vcpu& vcpu, ChaosParams params);

// faultstorm: a random bounded FaultPlan per seed, armed platform-wide via
// VirtualPlatform::arm_faults. Every plan carries transient allocation
// pressure (driving the engine's reclaim and the guest OOM killer under the
// coherence oracle); each of lock-handoff delay, exit spike, VMRESUME
// failure, and spurious SPT invalidation joins with seed-drawn probability.
// All per-opportunity probabilities stay <= ~0.1: denser plans starve the
// backends' bounded fault-retry loops — harness-induced livelock, not a
// protocol defect. Deterministic per seed.
fault::FaultPlan faultstorm_plan(std::uint64_t seed);

}  // namespace pvm

#endif  // PVM_SRC_CHECK_CHAOS_H_
