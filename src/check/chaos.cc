#include "src/check/chaos.h"

#include <set>
#include <vector>

#include "src/backends/memory_common.h"
#include "src/core/memory_engine.h"
#include "src/guest/guest_kernel.h"
#include "src/guest/process.h"
#include "src/sim/random.h"

namespace pvm {

namespace {

// The VPID the container's memory backend tags TLB entries with; 0 for
// backends outside the MemoryBackendBase family (none today).
std::uint16_t backend_vpid(SecureContainer& container) {
  if (const auto* base = dynamic_cast<const MemoryBackendBase*>(&container.mem())) {
    return base->vpid();
  }
  return 0;
}

}  // namespace

Task<void> chaos_zap_storm(SecureContainer& container, Vcpu& vcpu, GuestProcess& proc,
                           ChaosParams params) {
  PvmMemoryEngine* engine = container.shadow_engine();
  if (engine == nullptr || !engine->has_process(proc.pid())) {
    // EPT modes have no shadow engine; direct paging has one (PCID reuse)
    // but never populates shadow tables. Either way: nothing to invalidate.
    co_return;
  }
  Simulation& sim = container.sim();
  const std::uint16_t vpid = backend_vpid(container);
  Xoshiro256 rng(params.seed);
  // Each page is target-zapped at most once: unbounded re-zapping of one page
  // can outpace a backend's bounded fault-retry loop (harness-induced
  // livelock, not a protocol defect). Repeat invalidation pressure on a page
  // comes from the bulk zaps instead, whose spacing leaves room to refault.
  std::set<std::uint64_t> zapped;
  for (int round = 0; round < params.rounds; ++round) {
    co_await sim.delay(params.interval_ns);
    if (rng.next_bool(params.bulk_zap_probability)) {
      // Whole-process teardown racing whatever fills are in flight.
      co_await engine->bulk_zap(proc.pid(), vcpu.tlb, vpid);
      continue;
    }
    // Snapshot the currently guest-mapped pages, then zap a random subset.
    // The set may shift under us while we await — zapping a since-unmapped
    // page is exactly the kind of benign no-op the protocol must tolerate.
    std::vector<std::uint64_t> pages;
    proc.gpt().for_each_leaf([&pages](std::uint64_t gva, const Pte& pte) {
      (void)pte;
      pages.push_back(gva);
    });
    for (const std::uint64_t gva : pages) {
      if (rng.next_bool(params.zap_probability) && zapped.insert(gva).second) {
        co_await engine->zap_gva(proc.pid(), gva, vcpu.tlb, vpid);
      }
    }
  }
}

Task<void> chaos_retouch(SecureContainer& container, Vcpu& vcpu, GuestProcess& proc,
                         ChaosParams params) {
  Simulation& sim = container.sim();
  GuestKernel& kernel = container.kernel();
  Xoshiro256 rng(params.seed ^ 0xa0761d6478bd642full);
  // A private arena no workload ever munmaps, so touches cannot segfault no
  // matter how the schedule interleaves them with the workload's releases.
  const std::uint64_t arena = co_await kernel.sys_mmap(
      vcpu, proc, static_cast<std::uint64_t>(params.retouch_pages) << kPageShift);
  for (int round = 0; round < params.rounds; ++round) {
    co_await sim.delay(params.interval_ns / 2 + rng.next_below(params.interval_ns + 1));
    for (int p = 0; p < params.retouch_pages; ++p) {
      if (rng.next_bool(params.touch_probability)) {
        const std::uint64_t gva = arena + (static_cast<std::uint64_t>(p) << kPageShift);
        co_await kernel.touch(vcpu, proc, gva, /*write=*/rng.next_bool(0.5));
      }
    }
  }
}

Task<void> chaos_process_churn(SecureContainer& container, Vcpu& vcpu, ChaosParams params) {
  GuestProcess* init = container.init_process();
  if (init == nullptr) {
    co_return;
  }
  Simulation& sim = container.sim();
  GuestKernel& kernel = container.kernel();
  Xoshiro256 rng(params.seed ^ 0x9e3779b97f4a7c15ull);
  for (int i = 0; i < params.churn_iterations; ++i) {
    co_await sim.delay(params.interval_ns + params.interval_ns * rng.next_below(3));
    GuestProcess* child = co_await kernel.sys_fork(vcpu, *init);
    if (child == nullptr) {
      continue;
    }
    if (rng.next_bool(0.5)) {
      co_await kernel.sys_exec(vcpu, *child, params.churn_pages);
    } else {
      // Touch a few inherited pages: write faults break the COW shares the
      // fork just armed, racing any concurrent fills on the parent's frames.
      for (int p = 0; p < params.churn_pages; ++p) {
        const std::uint64_t gva = GuestProcess::kCodeBase + (rng.next_below(8) << kPageShift);
        co_await kernel.touch(vcpu, *child, gva, /*write=*/true);
      }
    }
    co_await sim.delay(params.interval_ns);
    co_await kernel.sys_exit(vcpu, *child);
  }
}

fault::FaultPlan faultstorm_plan(std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.name = "faultstorm";
  plan.seed = seed;
  Xoshiro256 rng(seed * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull);
  // Allocation pressure is always on: it is the spec that drives the reclaim
  // sweep and the guest OOM killer, the recovery paths the oracle must hold
  // through. The rest of the storm is drawn per seed.
  {
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::kFramePressure;
    spec.trigger.probability = 0.01 + rng.next_double() * 0.05;
    plan.specs.push_back(spec);
  }
  if (rng.next_bool(0.7)) {
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::kLockHandoffDelay;
    spec.trigger.probability = 0.02 + rng.next_double() * 0.08;
    spec.delay_ns = 500 + static_cast<std::uint64_t>(rng.next_double() * 2500.0);
    plan.specs.push_back(spec);
  }
  if (rng.next_bool(0.5)) {
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::kExitLatencySpike;
    spec.trigger.probability = 0.02 + rng.next_double() * 0.08;
    spec.delay_ns = kNsPerUs + static_cast<std::uint64_t>(rng.next_double() * 4000.0);
    plan.specs.push_back(spec);
  }
  if (rng.next_bool(0.5)) {
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::kVmresumeFail;
    spec.trigger.probability = 0.01 + rng.next_double() * 0.04;
    spec.fail_count = rng.next_bool(0.5) ? 2 : 1;
    plan.specs.push_back(spec);
  }
  if (rng.next_bool(0.5)) {
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::kSpuriousSptInval;
    spec.trigger.probability = 0.01 + rng.next_double() * 0.04;
    plan.specs.push_back(spec);
  }
  return plan;
}

}  // namespace pvm
