#include "src/check/simcheck.h"

#include <atomic>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/sweep/sweep.h"
#include "src/wal/wal.h"

#include "src/backends/platform.h"
#include "src/guest/guest_kernel.h"
#include "src/metrics/report.h"
#include "src/obs/contention.h"
#include "src/obs/flight.h"
#include "src/workloads/memstress.h"

namespace pvm {

// Token spellings live with DeployMode itself (backends/config.h) so the
// matrix tooling shares them; these wrappers keep the historical simcheck
// API.
std::string_view simcheck_mode_token(DeployMode mode) { return deploy_mode_token(mode); }

bool parse_mode_token(std::string_view token, DeployMode* mode) {
  return parse_deploy_mode_token(token, mode);
}

bool parse_policy_token(std::string_view token, SchedulePolicy* policy) {
  return parse_schedule_policy_token(token, policy);
}

namespace {

std::string case_label(const SimcheckCase& c) {
  std::ostringstream label;
  label << deploy_mode_name(c.mode) << " policy=" << schedule_policy_name(c.policy)
        << " seed=" << c.schedule_seed;
  if (deploy_mode_is_pvm(c.mode)) {
    label << " locks=" << (c.fine_grained_locks ? "fine" : "coarse")
          << " prefault=" << (c.prefault ? "on" : "off")
          << " pcid=" << (c.pcid_mapping ? "on" : "off");
  }
  if (c.faults) {
    label << " faultstorm-seed=" << c.fault_seed;
  }
  return label.str();
}

}  // namespace

std::string simcheck_reproduce_line(const SimcheckCase& c) {
  std::ostringstream line;
  line << "simcheck --modes " << simcheck_mode_token(c.mode) << " --policies "
       << schedule_policy_name(c.policy) << " --seeds 1 --first-seed " << c.schedule_seed
       << (c.chaos ? "" : " --no-chaos") << (c.faults ? "" : " --no-faults");
  if (c.flight_capacity != 0) {
    // Only when overridden: the default spelling stays stable for the
    // golden reproduce-line checks.
    line << " --flight-capacity " << c.flight_capacity;
  }
  return line.str();
}

SimcheckResult run_simcheck_case(const SimcheckCase& c) {
  SimcheckResult result;
  // Failure diagnosis: the counter table says *what* the protocol did up to
  // the failure, the contention table says *where* tasks were queued — both
  // deterministic, so they describe the failing interleaving exactly. The
  // platform outlives the try so the catch blocks can capture too. The
  // injector is declared before the platform: platform members keep raw
  // pointers to it, so it must be destroyed after them.
  fault::FaultInjector injector;
  std::unique_ptr<VirtualPlatform> platform;
  const auto capture_profile = [&result, &platform, &c](std::string_view reason) {
    if (platform == nullptr) {
      return;
    }
    result.profile =
        render_counter_report(platform->counters()) + "\n" +
        obs::render_top_resources(obs::collect_resource_stats(platform->sim()), 8);
    // The black-box dump for this failing interleaving; the embedded
    // reproduce line replays it bit-for-bit, dump included.
    result.postmortem_text =
        flight::render_flight_timeline(platform->flight(), &platform->sim());
    result.postmortem_json = flight::render_postmortem_json(
        platform->flight(), &platform->sim(), reason, simcheck_reproduce_line(c));
  };
  try {
    PlatformConfig config;
    config.mode = c.mode;
    config.fine_grained_locks = c.fine_grained_locks;
    config.prefault = c.prefault;
    config.pcid_mapping = c.pcid_mapping;
    config.schedule_policy = c.policy;
    config.schedule_seed = c.schedule_seed;
    config.coherence_oracle = true;

    platform = std::make_unique<VirtualPlatform>(config);
    if (c.flight_capacity != 0) {
      // Before any track records: capacity binds at a track's first event.
      platform->flight().set_capacity(c.flight_capacity);
    }
    if (c.faults) {
      injector.arm(faultstorm_plan(c.fault_seed));
      platform->arm_faults(&injector);
    }
    Simulation& sim = platform->sim();
    SecureContainer& container = platform->create_container("simcheck");
    sim.spawn(container.boot(), "boot");
    sim.run();
    if (!sim.all_tasks_done()) {
      result.ok = false;
      result.failure = "deadlock during boot\n" + sim.blocked_report();
      capture_profile("deadlock during boot");
      return result;
    }

    // Stage 1: one worker process per vCPU (vCPU 0 boots the container and
    // keeps init; workers start at vCPU 1).
    std::vector<Vcpu*> vcpus;
    std::vector<GuestProcess*> procs(c.processes, nullptr);
    for (int i = 0; i < c.processes; ++i) {
      vcpus.push_back(&container.add_vcpu());
    }
    for (int i = 0; i < c.processes; ++i) {
      sim.spawn([](GuestKernel& kernel, Vcpu& vcpu, GuestProcess** out) -> Task<void> {
        *out = co_await kernel.create_init_process(vcpu, /*resident_pages=*/16);
      }(container.kernel(), *vcpus[i], &procs[i]),
                "create#" + std::to_string(i));
    }
    sim.run();
    if (!sim.all_tasks_done()) {
      result.ok = false;
      result.failure = "deadlock during process creation\n" + sim.blocked_report();
      capture_profile("deadlock during process creation");
      return result;
    }

    // Stage 2: concurrent memstress bodies plus the fault-injection agents.
    // The agents borrow the worker processes, so exits wait for stage 3.
    for (int i = 0; i < c.processes; ++i) {
      MemStressParams stress;
      stress.total_bytes = c.memstress_bytes;
      stress.chunk_bytes = 256ull << 10;
      stress.seed = c.schedule_seed * 1000003ull + static_cast<std::uint64_t>(i) + 1;
      sim.spawn(memstress_process(container, *vcpus[i], *procs[i], stress),
                "memstress#" + std::to_string(i));
      if (c.chaos) {
        // Dense storm: short intervals so zaps land inside fill windows (the
        // kSptFillRaced abort paths), long enough to overlap most of the run.
        ChaosParams agent;
        agent.seed = c.chaos_seed * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(i);
        // Tuned so even the slowest backend's bounded fault-retry loop makes
        // progress between zaps of the same page (denser per-page zaps can
        // livelock spt-on-ept's 24-attempt loop — real behavior, but not the
        // protocol property under test); bulk zaps drive the fill races.
        agent.rounds = 60;
        agent.interval_ns = 4 * kNsPerUs;
        agent.zap_probability = 0.25;
        agent.bulk_zap_probability = 0.2;
        sim.spawn(chaos_zap_storm(container, *vcpus[i], *procs[i], agent),
                  "zapstorm#" + std::to_string(i));
        // The process's "second thread" on its own vCPU: its refaults after
        // storm zaps are the fills that can race a concurrent bulk zap.
        sim.spawn(chaos_retouch(container, container.add_vcpu(), *procs[i], agent),
                  "retouch#" + std::to_string(i));
      }
    }
    if (c.chaos) {
      ChaosParams churn;
      churn.seed = c.chaos_seed;
      sim.spawn(chaos_process_churn(container, container.vcpu(0), churn), "churn");
    }
    sim.run();
    if (!sim.all_tasks_done()) {
      result.ok = false;
      result.failure = "deadlock in workload/chaos stage\n" + sim.blocked_report();
      capture_profile("deadlock in workload/chaos stage");
      return result;
    }

    // Stage 3: concurrent worker exits — three address-space teardowns
    // contending on the engine's structural lock.
    for (int i = 0; i < c.processes; ++i) {
      sim.spawn(container.kernel().sys_exit(*vcpus[i], *procs[i]),
                "exit#" + std::to_string(i));
    }
    sim.run();
    if (!sim.all_tasks_done()) {
      result.ok = false;
      result.failure = "deadlock in teardown stage\n" + sim.blocked_report();
      capture_profile("deadlock in teardown stage");
      return result;
    }

    // Quiescent point: every task drained, so the strict guest-PT agreement
    // check is sound (unless the backend defers sync, which the platform
    // already encoded in the oracle's strictness).
    if (PvmMemoryEngine* engine = container.shadow_engine()) {
      if (c.debug_corrupt_from_seed != 0 && c.schedule_seed >= c.debug_corrupt_from_seed) {
        // Test hook: plant one deterministic violation for the oracle to
        // find, so sweep tests can compare serial and parallel triage on a
        // known-failing matrix.
        engine->debug_plant_violation();
      }
      engine->verify_coherence(engine->coherence_oracle_strict());
      result.shadow_frames = engine->shadow_table_frames();
    }

    result.events = sim.events_processed();
    result.fills = platform->counters().get(Counter::kSptEntryFilled);
    result.fill_races = platform->counters().get(Counter::kSptFillRaced);
  } catch (const SptCoherenceError& e) {
    result.ok = false;
    result.failure = std::string("coherence violation: ") + e.what();
    capture_profile("coherence violation");
  } catch (const std::exception& e) {
    result.ok = false;
    result.failure = std::string("exception: ") + e.what();
    capture_profile("exception");
  }
  return result;
}

namespace {

SimcheckCase sweep_case(const SweepOptions& options, DeployMode mode, SchedulePolicy policy,
                        int seed_index) {
  const std::uint64_t seed = options.first_seed + static_cast<std::uint64_t>(seed_index);
  SimcheckCase c;
  c.mode = mode;
  c.policy = policy;
  c.schedule_seed = seed;
  // Cycle the PVM ablations from the seed so a sweep covers the
  // lock-granularity x prefault x PCID cross-product without
  // multiplying the run count. Non-PVM engines read the same Options,
  // so the cycling exercises their configurations too.
  c.fine_grained_locks = (seed & 1) != 0;
  c.prefault = (seed & 2) != 0;
  c.pcid_mapping = (seed & 4) != 0;
  c.chaos = options.chaos;
  c.chaos_seed = seed + 17;
  c.faults = options.faults;
  c.fault_seed = seed + 23;
  c.processes = options.processes;
  c.memstress_bytes = options.memstress_bytes;
  c.flight_capacity = options.flight_capacity;
  c.debug_corrupt_from_seed = options.debug_corrupt_from_seed;
  return c;
}

// Everything that changes what a case computes, so a stale checkpoint from a
// different sweep never splices wrong results into the report.
std::string sweep_fingerprint(const SweepOptions& options) {
  std::string fp = "pvm.simcheck.v1;modes=";
  for (const DeployMode mode : options.modes) {
    fp += deploy_mode_name(mode);
    fp += ',';
  }
  fp += ";policies=";
  for (const SchedulePolicy policy : options.policies) {
    fp += schedule_policy_name(policy);
    fp += ',';
  }
  fp += ";seeds=" + std::to_string(options.seeds);
  fp += ";first_seed=" + std::to_string(options.first_seed);
  fp += ";chaos=" + std::string(options.chaos ? "1" : "0");
  fp += ";faults=" + std::string(options.faults ? "1" : "0");
  fp += ";processes=" + std::to_string(options.processes);
  fp += ";memstress=" + std::to_string(options.memstress_bytes);
  fp += ";flight=" + std::to_string(options.flight_capacity);
  fp += ";verbose=" + std::string(options.verbose ? "1" : "0");
  fp += ";corrupt_from=" + std::to_string(options.debug_corrupt_from_seed);
  return fp;
}

std::string encode_case_result(std::size_t index, const SimcheckResult& r) {
  std::string payload;
  wal::put_u64(payload, index);
  wal::put_u32(payload, r.ok ? 1 : 0);
  wal::put_string(payload, r.failure);
  wal::put_string(payload, r.profile);
  wal::put_string(payload, r.postmortem_text);
  wal::put_string(payload, r.postmortem_json);
  wal::put_u64(payload, r.events);
  wal::put_u64(payload, r.fills);
  wal::put_u64(payload, r.fill_races);
  wal::put_u64(payload, r.shadow_frames);
  return payload;
}

bool decode_case_result(std::string_view payload, std::size_t* index, SimcheckResult* r) {
  std::size_t cursor = 0;
  std::uint64_t idx = 0;
  std::uint32_t ok = 0;
  if (!wal::get_u64(payload, &cursor, &idx) || !wal::get_u32(payload, &cursor, &ok) ||
      !wal::get_string(payload, &cursor, &r->failure) ||
      !wal::get_string(payload, &cursor, &r->profile) ||
      !wal::get_string(payload, &cursor, &r->postmortem_text) ||
      !wal::get_string(payload, &cursor, &r->postmortem_json) ||
      !wal::get_u64(payload, &cursor, &r->events) || !wal::get_u64(payload, &cursor, &r->fills) ||
      !wal::get_u64(payload, &cursor, &r->fill_races) ||
      !wal::get_u64(payload, &cursor, &r->shadow_frames)) {
    return false;
  }
  *index = static_cast<std::size_t>(idx);
  r->ok = ok != 0;
  return true;
}

}  // namespace

int run_simcheck_sweep(const SweepOptions& options, std::ostream& out) {
  struct Combo {
    DeployMode mode;
    SchedulePolicy policy;
  };
  std::vector<Combo> combos;
  for (const DeployMode mode : options.modes) {
    for (const SchedulePolicy policy : options.policies) {
      combos.push_back({mode, policy});
    }
  }
  const std::size_t seeds = static_cast<std::size_t>(options.seeds);
  const int jobs =
      options.jobs == 0 ? sweep::default_jobs() : sweep::effective_jobs(options.jobs);

  // Parallel phase: every (combo, seed) case is an isolated Simulation, so
  // workers claim them from a shared cursor and stash results per index.
  // Triage economy: once a seed of a combination has failed, the
  // combination's *larger* seeds are skipped (their results could never be
  // printed — the merge below stops at the minimal failing seed). Smaller
  // seeds always run, so the minimal failing seed is exact, not a race
  // winner.
  std::vector<std::vector<std::optional<SimcheckResult>>> results(
      combos.size(), std::vector<std::optional<SimcheckResult>>(seeds));

  // Checkpoint-resume: replay finished cases from the WAL into their slots
  // (recovery truncates a torn tail — those cases rerun), then append each
  // fresh case as it completes. Because cases are deterministic and the
  // report merges by index, a resumed sweep prints byte-identically to an
  // uninterrupted one.
  const bool use_checkpoint = !options.checkpoint_path.empty();
  const std::string fingerprint = sweep_fingerprint(options);
  wal::Log checkpoint_log("wal:simcheck");
  std::mutex checkpoint_mutex;
  if (use_checkpoint) {
    std::string bytes;
    std::string error;
    if (!wal::load_file(options.checkpoint_path, &bytes, &error)) {
      std::cerr << "simcheck: cannot read checkpoint " << options.checkpoint_path << ": "
                << error << "; starting fresh\n";
      bytes.clear();
    }
    const wal::RecoveryResult recovered = wal::recover(bytes);
    if (recovered.torn_tail) {
      std::cerr << "simcheck: checkpoint tail truncated (" << recovered.detail
                << "); rerunning the affected case(s)\n";
    }
    bool stale = false;
    std::size_t replayed = 0;
    for (const wal::Record& record : recovered.records) {
      if (record.type == wal::RecordType::kHeader) {
        std::size_t cursor = 0;
        std::string stored;
        if (!wal::get_string(record.payload, &cursor, &stored) || stored != fingerprint) {
          stale = true;
          break;
        }
      } else if (record.type == wal::RecordType::kCaseResult) {
        std::size_t index = 0;
        SimcheckResult r;
        if (decode_case_result(record.payload, &index, &r) && seeds > 0 &&
            index < combos.size() * seeds) {
          results[index / seeds][index % seeds] = std::move(r);
          ++replayed;
        }
      }
    }
    if (stale) {
      std::cerr << "simcheck: checkpoint " << options.checkpoint_path
                << " was written by a different sweep; ignoring it\n";
      for (auto& row : results) {
        for (auto& slot : row) {
          slot.reset();
        }
      }
      replayed = 0;
    } else if (replayed > 0) {
      std::cerr << "simcheck: replayed " << replayed << " case(s) from "
                << options.checkpoint_path << "\n";
    }
    // Rebuild the log: header, then the surviving replayed cases in index
    // order. Fresh cases append behind them.
    checkpoint_log.clear();
    std::string header;
    wal::put_string(header, fingerprint);
    checkpoint_log.append(wal::RecordType::kHeader, header);
    for (std::size_t combo = 0; combo < combos.size(); ++combo) {
      for (std::size_t i = 0; i < seeds; ++i) {
        if (results[combo][i].has_value()) {
          checkpoint_log.append(wal::RecordType::kCaseResult,
                                encode_case_result(combo * seeds + i, *results[combo][i]));
        }
      }
    }
    if (!checkpoint_log.save(options.checkpoint_path, &error)) {
      std::cerr << "simcheck: checkpoint save failed: " << error << "\n";
    }
  }
  const auto record_case = [&](std::size_t index, const SimcheckResult& r) {
    if (!use_checkpoint) {
      return;
    }
    const std::scoped_lock lock(checkpoint_mutex);
    checkpoint_log.append(wal::RecordType::kCaseResult, encode_case_result(index, r));
    std::string error;
    if (!checkpoint_log.save(options.checkpoint_path, &error)) {
      std::cerr << "simcheck: checkpoint save failed: " << error << "\n";
    }
  };

  if (jobs > 1 && !combos.empty() && seeds > 0) {
    std::vector<std::atomic<std::size_t>> min_failed(combos.size());
    for (auto& m : min_failed) {
      m.store(seeds, std::memory_order_relaxed);
    }
    // Replayed checkpoint failures seed the early-stop cursor, so a resumed
    // sweep skips the same doomed seeds the original would have.
    for (std::size_t combo = 0; combo < combos.size(); ++combo) {
      for (std::size_t i = 0; i < seeds; ++i) {
        if (results[combo][i].has_value() && !results[combo][i]->ok) {
          min_failed[combo].store(i, std::memory_order_relaxed);
          break;
        }
      }
    }
    sweep::parallel_for(combos.size() * seeds, jobs, [&](std::size_t job) {
      const std::size_t combo = job / seeds;
      const std::size_t seed_index = job % seeds;
      if (min_failed[combo].load(std::memory_order_relaxed) < seed_index) {
        return;  // a smaller seed of this combination already failed
      }
      if (results[combo][seed_index].has_value()) {
        return;  // replayed from the checkpoint
      }
      SimcheckResult r = run_simcheck_case(
          sweep_case(options, combos[combo].mode, combos[combo].policy,
                     static_cast<int>(seed_index)));
      record_case(combo * seeds + seed_index, r);
      if (!r.ok) {
        std::size_t expected = min_failed[combo].load(std::memory_order_relaxed);
        while (seed_index < expected &&
               !min_failed[combo].compare_exchange_weak(expected, seed_index,
                                                        std::memory_order_relaxed)) {
        }
      }
      results[combo][seed_index] = std::move(r);
    });
  }

  // Deterministic merge: walk combinations x seeds in the serial order and
  // print exactly what the serial sweep prints, reading parallel results by
  // index (or running the case inline when --jobs 1 left the slot empty —
  // which also preserves the serial sweep's early-stop laziness).
  int failing_combinations = 0;
  for (std::size_t combo = 0; combo < combos.size(); ++combo) {
    const DeployMode mode = combos[combo].mode;
    const SchedulePolicy policy = combos[combo].policy;
    int passed = 0;
    bool failed = false;
    for (std::size_t i = 0; i < seeds; ++i) {
      const SimcheckCase c = sweep_case(options, mode, policy, static_cast<int>(i));
      if (!results[combo][i].has_value()) {
        results[combo][i] = run_simcheck_case(c);
        record_case(combo * seeds + i, *results[combo][i]);
      }
      const SimcheckResult& r = *results[combo][i];
      if (options.verbose) {
        out << (r.ok ? "ok   " : "FAIL ") << case_label(c) << ": events=" << r.events
            << " fills=" << r.fills << " races=" << r.fill_races << "\n";
      }
      if (!r.ok) {
        // Seeds are merged ascending, so the first failure is the minimal
        // failing seed for this (mode, policy) combination.
        out << "FAIL " << case_label(c) << "\n"
            << "     minimal failing seed: " << c.schedule_seed << "\n"
            << "     reproduce: " << simcheck_reproduce_line(c) << "\n"
            << r.failure << "\n";
        if (!r.profile.empty()) {
          out << r.profile << "\n";
        }
        if (!options.postmortem_dir.empty() && !r.postmortem_json.empty()) {
          std::error_code ec;  // best effort; the writes below report nothing either
          std::filesystem::create_directories(options.postmortem_dir, ec);
          const std::string stem = options.postmortem_dir + "/postmortem-" +
                                   std::string(simcheck_mode_token(mode)) + "-" +
                                   std::string(schedule_policy_name(policy)) + "-" +
                                   std::to_string(c.schedule_seed);
          std::ofstream(stem + ".json") << r.postmortem_json;
          std::ofstream(stem + ".txt") << r.postmortem_text;
          out << "     postmortem: " << stem << ".{json,txt}\n";
        } else if (!r.postmortem_text.empty()) {
          out << r.postmortem_text;
        }
        failed = true;
        ++failing_combinations;
        break;
      }
      ++passed;
    }
    if (!failed) {
      out << "ok   " << deploy_mode_name(mode) << " x " << schedule_policy_name(policy)
          << ": " << passed << " seeds\n";
    }
  }
  return failing_combinations;
}

}  // namespace pvm
