// "pvm-report" style text summary: top resources by wait time, top phases
// by exclusive-time share, per-operation latency percentiles.

#ifndef PVM_SRC_OBS_OBS_REPORT_H_
#define PVM_SRC_OBS_OBS_REPORT_H_

#include <string>

#include "src/sim/simulation.h"

namespace pvm::obs {

class SpanRecorder;

// `recorder` may be null: the resource table is always available (Resource
// statistics are always on); phase/op attribution needs an attached recorder.
std::string render_obs_report(const Simulation& sim, const SpanRecorder* recorder,
                              std::size_t top_n = 10);

}  // namespace pvm::obs

#endif  // PVM_SRC_OBS_OBS_REPORT_H_
