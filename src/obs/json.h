// Minimal deterministic JSON writer.
//
// Purpose-built for the observability exports: fixed formatting (integers as
// decimal, doubles via "%.6f", keys emitted in caller order), no locale
// sensitivity, no wall-clock anywhere — so identical (policy, seed, config)
// runs serialize byte-identically, which the determinism tests assert.

#ifndef PVM_SRC_OBS_JSON_H_
#define PVM_SRC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pvm::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Inside an object: emit `"key":` then the value with the next call.
  JsonWriter& key(std::string_view key);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(double number);
  JsonWriter& value(bool flag);

  // Splices pre-serialized JSON in as one value (no validation).
  JsonWriter& raw(std::string_view json);

  const std::string& str() const { return out_; }

  static std::string escape(std::string_view text);

 private:
  void comma();

  std::string out_;
  // One entry per open container: true once the first element was written.
  std::vector<bool> element_written_;
  bool pending_key_ = false;
};

}  // namespace pvm::obs

#endif  // PVM_SRC_OBS_JSON_H_
