// Mergeable log-bucketed latency histogram (HDR-style).
//
// Values land in fixed, data-independent buckets: exact below 2^kSubBits,
// then 2^kSubBits sub-buckets per power of two. Fixed boundaries make
// merge() element-wise addition — associative, commutative, and
// byte-reproducible — so sharded sweeps can aggregate per-shard histograms
// and get exactly the histogram a single-stream run would have produced.
// No samples are stored; memory is O(buckets touched), and quantile() is
// exact to one bucket width (relative error <= 2^-kSubBits = 12.5%).

#ifndef PVM_SRC_OBS_HIST_H_
#define PVM_SRC_OBS_HIST_H_

#include <cstdint>
#include <limits>
#include <map>

namespace pvm::ts {

class MergeableHistogram {
 public:
  // Sub-bucket resolution: each power-of-two range splits into 2^kSubBits
  // buckets, bounding quantile error to one part in 2^kSubBits.
  static constexpr unsigned kSubBits = 3;

  // Bucket index for value `v`. Total order preserving: v <= w implies
  // bucket_index(v) <= bucket_index(w).
  static std::uint32_t bucket_index(std::uint64_t v);

  // Smallest / largest value mapping to bucket `index`.
  static std::uint64_t bucket_lower_bound(std::uint32_t index);
  static std::uint64_t bucket_upper_bound(std::uint32_t index);

  void record(std::uint64_t value, std::uint64_t weight = 1);

  // Element-wise bucket addition plus count/sum/min/max combination.
  void merge(const MergeableHistogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t mean() const { return count_ == 0 ? 0 : sum_ / count_; }

  // Value at quantile q in [0, 1]: upper bound of the bucket holding the
  // rank-ceil(q*count) sample, clamped to the observed max so point
  // distributions and q=1 report exactly. Returns 0 on an empty histogram.
  std::uint64_t quantile(double q) const;

  // Sparse (bucket index -> count) map, ascending by index.
  const std::map<std::uint32_t, std::uint64_t>& buckets() const { return buckets_; }

  bool empty() const { return count_ == 0; }

  // Rebuilds a histogram from serialized parts (JSON import). min/max are
  // carried explicitly because bucket bounds only bracket them.
  static MergeableHistogram from_parts(std::uint64_t count, std::uint64_t sum,
                                       std::uint64_t min, std::uint64_t max,
                                       std::map<std::uint32_t, std::uint64_t> buckets);

  bool operator==(const MergeableHistogram&) const = default;

 private:
  std::map<std::uint32_t, std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

}  // namespace pvm::ts

#endif  // PVM_SRC_OBS_HIST_H_
