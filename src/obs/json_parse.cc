#include "src/obs/json_parse.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace pvm::obs {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(JsonValue* out, std::string* error) {
    skip_ws();
    if (!parse_value(out)) {
      *error = error_ + " at offset " + std::to_string(pos_);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      *error = "trailing characters at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* message) {
    if (error_.empty()) {
      error_ = message;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue* out) {
    if (depth_ > kMaxDepth) {
      return fail("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return parse_string(&out->string);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return consume_literal("true") || fail("bad literal");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return consume_literal("false") || fail("bad literal");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return consume_literal("null") || fail("bad literal");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) {
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(&key)) {
        return fail("expected object key");
      }
      skip_ws();
      if (!consume(':')) {
        return fail("expected ':'");
      }
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) {
        return false;
      }
      out->object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) {
        continue;
      }
      if (consume('}')) {
        --depth_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) {
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) {
        return false;
      }
      out->array.push_back(std::move(value));
      skip_ws();
      if (consume(',')) {
        continue;
      }
      if (consume(']')) {
        --depth_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return fail("dangling escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return fail("truncated \\u escape");
          }
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // Encode the BMP code point as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    // RFC 8259: a number is '-'? digit ... — no leading '+', no bare '-',
    // no leading '.' (strtod would accept all three).
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return fail("expected value");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return fail("expected value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return fail("malformed number");
    }
    if (!std::isfinite(out->number)) {
      // JSON has no Infinity/NaN; an overflowing literal like 1e999 must be
      // an error, not a silent inf that poisons downstream arithmetic.
      return fail("number out of range");
    }
    return true;
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue* out, std::string* error) {
  Parser parser(text);
  std::string local_error;
  return parser.parse(out, error != nullptr ? error : &local_error);
}

}  // namespace pvm::obs
