// Span recorder: RAII spans on the virtual clock, with latency attribution.
//
// A SpanRecorder is bound to a Simulation's clock and active-root pointers
// (Simulation::set_spans does the binding) and keeps one span stack per
// *track*. A track is a root task: per-root execution is strictly sequential
// in the DES, so spans opened and closed by the same root nest properly even
// across co_await suspension points. Lock waits recorded by sim::Resource are
// additionally mirrored onto a per-resource lock track so the Chrome-trace
// export shows each lock's occupancy timeline.
//
// On every span close the recorder aggregates:
//   - exclusive time per phase (duration minus time covered by child spans),
//   - an operation-by-phase matrix (exclusive time charged to the nearest
//     enclosing operation root — see phase.h),
//   - end-to-end latency histograms per operation kind,
//   - a bounded raw-span buffer (with a dropped counter) for trace export.
//
// Everything is integer virtual nanoseconds and deterministic: identical
// (policy, seed, config) runs produce identical recorder state. When no
// recorder is attached (the default) instrumented code paths pay one null
// pointer check; when attached but disabled, one extra bool load.
//
// Header-only with no link dependencies so src/sim can include it.

#ifndef PVM_SRC_OBS_SPAN_H_
#define PVM_SRC_OBS_SPAN_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/metrics/histogram.h"
#include "src/obs/phase.h"

namespace pvm::obs {

using TimeNs = std::uint64_t;

struct SpanRecord {
  TimeNs begin_ns;
  TimeNs end_ns;
  std::int64_t track;   // root task index, or kLockTrackBase + lock index
  Phase phase;
  std::uint32_t depth;  // nesting depth on the track at open time
  std::uint64_t detail; // phase-specific payload (gva, gpa, ...), 0 if none
};

class SpanRecorder {
 public:
  // Lock tracks live far above any plausible root-task index.
  static constexpr std::int64_t kLockTrackBase = 1'000'000;

  // Opaque handle returned by begin(); identifies the lane whose stack the
  // span was pushed on, so end() pops the right stack even if called from a
  // context where the active root has moved on.
  struct Token {
    std::int32_t lane = -1;
    bool valid() const { return lane >= 0; }
  };

  SpanRecorder() = default;
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  // Binds the virtual clock and active-root pointers (owned by Simulation).
  void bind(const TimeNs* now, const std::int64_t* active_root) {
    now_ = now;
    active_root_ = active_root;
  }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Caps the raw-span buffer (aggregates are unaffected by the cap).
  void set_max_spans(std::size_t max_spans) { max_spans_ = max_spans; }

  // Opens a span on the current root's track. Returns an invalid token when
  // disabled or unbound; end() on an invalid token is a no-op.
  Token begin(Phase phase, std::uint64_t detail = 0) {
    if (!enabled_ || now_ == nullptr) {
      return Token{};
    }
    const std::int64_t root = active_root_ == nullptr ? -1 : *active_root_;
    const auto lane = static_cast<std::int32_t>(root < 0 ? 0 : root + 1);
    if (static_cast<std::size_t>(lane) >= lanes_.size()) {
      lanes_.resize(static_cast<std::size_t>(lane) + 1);
    }
    Lane& stack = lanes_[static_cast<std::size_t>(lane)];
    const auto op = phase_is_op(phase)
                        ? static_cast<std::uint8_t>(phase)
                        : (stack.empty() ? static_cast<std::uint8_t>(Phase::kCount)
                                         : stack.back().op);
    stack.push_back(Open{*now_, detail, /*child_ns=*/0, phase, op});
    return Token{lane};
  }

  // Closes the innermost open span on the token's lane.
  void end(Token token) { close(token, /*lock_name=*/nullptr); }

  // Closes a lock-wait span and mirrors it onto the lock's own track.
  void end_lock_wait(Token token, const std::string& lock_name) {
    close(token, &lock_name);
  }

  // Records an already-complete span (no stack interaction, no aggregation
  // beyond the raw buffer). Used for instantaneous or externally-timed marks.
  void record_complete(std::int64_t track, Phase phase, TimeNs begin_ns, TimeNs end_ns,
                       std::uint64_t detail = 0) {
    append(SpanRecord{begin_ns, end_ns, track, phase, 0, detail});
  }

  // --- Aggregate views -----------------------------------------------------

  struct PhaseStat {
    std::uint64_t count = 0;
    TimeNs exclusive_ns = 0;
  };

  const PhaseStat& phase_stat(Phase phase) const {
    return phase_stats_[static_cast<std::size_t>(phase)];
  }

  // Exclusive nanoseconds of `phase` charged to operation `op`. Pass
  // Phase::kCount as `op` for time outside any operation.
  TimeNs op_phase_ns(Phase op, Phase phase) const {
    return matrix_[op_index(op)][static_cast<std::size_t>(phase)];
  }

  // End-to-end latency histogram of one operation kind.
  const LatencyHistogram& op_latency(Phase op) const {
    return op_latency_[static_cast<std::size_t>(op)];
  }

  TimeNs total_span_ns() const { return total_span_ns_; }

  // --- Raw spans and lock tracks -------------------------------------------

  const std::vector<SpanRecord>& spans() const { return spans_; }
  std::uint64_t dropped_spans() const { return dropped_spans_; }

  // Lock name -> track id (>= kLockTrackBase), in first-seen order; the map
  // itself iterates in name order, which exporters rely on for determinism.
  const std::map<std::string, std::int64_t>& lock_tracks() const { return lock_tracks_; }

  // The currently-open span stack of `root`'s lane, rendered as a
  // semicolon-joined phase path ("op.page_fault;spt_fill;lock_wait").
  // Empty when nothing is open — the tail-exemplar hook (pvm::ts) calls this
  // at observation time to link a histogram sample back to its span context.
  std::string open_path(std::int64_t root) const {
    const auto lane = static_cast<std::size_t>(root < 0 ? 0 : root + 1);
    if (lane >= lanes_.size()) {
      return {};
    }
    std::string path;
    for (const Open& open : lanes_[lane]) {
      if (!path.empty()) {
        path.push_back(';');
      }
      path.append(phase_name(open.phase));
    }
    return path;
  }

  void clear() {
    lanes_.clear();
    spans_.clear();
    dropped_spans_ = 0;
    lock_tracks_.clear();
    total_span_ns_ = 0;
    for (auto& stat : phase_stats_) {
      stat = PhaseStat{};
    }
    for (auto& row : matrix_) {
      row.fill(0);
    }
    for (auto& hist : op_latency_) {
      hist.reset();
    }
  }

 private:
  struct Open {
    TimeNs begin;
    std::uint64_t detail;
    TimeNs child_ns;   // total (inclusive) time of already-closed children
    Phase phase;
    std::uint8_t op;   // Phase index of the nearest enclosing op, kCount if none
  };
  using Lane = std::vector<Open>;

  static std::size_t op_index(Phase op) { return static_cast<std::size_t>(op); }

  void close(Token token, const std::string* lock_name) {
    if (!token.valid() || now_ == nullptr) {
      return;
    }
    Lane& stack = lanes_[static_cast<std::size_t>(token.lane)];
    if (stack.empty()) {
      return;  // enabled() toggled mid-span; drop silently
    }
    const Open open = stack.back();
    stack.pop_back();
    const TimeNs end_ns = *now_;
    const TimeNs total = end_ns - open.begin;
    const TimeNs exclusive = total > open.child_ns ? total - open.child_ns : 0;
    if (!stack.empty()) {
      stack.back().child_ns += total;
    }
    auto& stat = phase_stats_[static_cast<std::size_t>(open.phase)];
    ++stat.count;
    stat.exclusive_ns += exclusive;
    total_span_ns_ += exclusive;
    matrix_[open.op][static_cast<std::size_t>(open.phase)] += exclusive;
    if (phase_is_op(open.phase)) {
      op_latency_[static_cast<std::size_t>(open.phase)].record(total);
    }
    const std::int64_t track = token.lane - 1;  // lane 0 = unattributed (-1)
    append(SpanRecord{open.begin, end_ns, track, open.phase,
                      static_cast<std::uint32_t>(stack.size()), open.detail});
    if (lock_name != nullptr) {
      append(SpanRecord{open.begin, end_ns, lock_track(*lock_name), open.phase, 0, open.detail});
    }
  }

  std::int64_t lock_track(const std::string& name) {
    auto it = lock_tracks_.find(name);
    if (it != lock_tracks_.end()) {
      return it->second;
    }
    const std::int64_t id = kLockTrackBase + static_cast<std::int64_t>(lock_tracks_.size());
    lock_tracks_.emplace(name, id);
    return id;
  }

  void append(const SpanRecord& record) {
    if (spans_.size() >= max_spans_) {
      ++dropped_spans_;
      return;
    }
    spans_.push_back(record);
  }

  const TimeNs* now_ = nullptr;
  const std::int64_t* active_root_ = nullptr;
  bool enabled_ = false;
  std::size_t max_spans_ = 1 << 20;

  std::vector<Lane> lanes_;
  std::vector<SpanRecord> spans_;
  std::uint64_t dropped_spans_ = 0;
  std::map<std::string, std::int64_t> lock_tracks_;

  TimeNs total_span_ns_ = 0;
  std::array<PhaseStat, kPhaseCount> phase_stats_{};
  // Row = op (kCount row collects phases outside any op); column = phase.
  std::array<std::array<TimeNs, kPhaseCount>, kPhaseCount + 1> matrix_{};
  std::array<LatencyHistogram, kPhaseCount> op_latency_{};
};

// RAII span: opens on construction (when a recorder is attached and enabled),
// closes on destruction. Safe to hold across co_await — the coroutine frame
// keeps it alive, and per-root execution is sequential.
class SpanScope {
 public:
  SpanScope() = default;
  SpanScope(SpanRecorder* recorder, Phase phase, std::uint64_t detail = 0) {
    if (recorder != nullptr && recorder->enabled()) {
      recorder_ = recorder;
      token_ = recorder->begin(phase, detail);
    }
  }
  SpanScope(SpanScope&& other) noexcept
      : recorder_(std::exchange(other.recorder_, nullptr)), token_(other.token_) {}
  SpanScope& operator=(SpanScope&& other) noexcept {
    if (this != &other) {
      close();
      recorder_ = std::exchange(other.recorder_, nullptr);
      token_ = other.token_;
    }
    return *this;
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() { close(); }

  void close() {
    if (recorder_ != nullptr) {
      recorder_->end(token_);
      recorder_ = nullptr;
    }
  }

 private:
  SpanRecorder* recorder_ = nullptr;
  SpanRecorder::Token token_{};
};

}  // namespace pvm::obs

#endif  // PVM_SRC_OBS_SPAN_H_
