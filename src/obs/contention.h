// Per-resource contention attribution.
//
// Snapshots the wait/hold statistics every live sim::Resource records
// (always on, no span recorder required) into a sortable table: total and
// percentile wait/hold times, contended-acquisition counts, and queue-depth
// high-water marks. This is the Fig. 10/12 diagnosis surface — the global
// mmu_lock's wait share versus the fine-grained meta/pt/rmap trio.

#ifndef PVM_SRC_OBS_CONTENTION_H_
#define PVM_SRC_OBS_CONTENTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/simulation.h"

namespace pvm::obs {

struct ResourceStats {
  std::string name;
  std::uint32_t capacity = 0;
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  SimTime total_wait_ns = 0;
  SimTime total_hold_ns = 0;
  std::size_t peak_queue_depth = 0;
  SimTime wait_p50_ns = 0;
  SimTime wait_p95_ns = 0;
  SimTime wait_p99_ns = 0;
  SimTime hold_p50_ns = 0;
  SimTime hold_p95_ns = 0;
  SimTime hold_p99_ns = 0;
};

// Every live resource that was acquired at least once, sorted by total wait
// descending, then name ascending (deterministic across identical runs).
std::vector<ResourceStats> collect_resource_stats(const Simulation& sim);

// Sum of total_wait_ns over resources whose name contains `substring`.
SimTime total_wait_matching(const std::vector<ResourceStats>& stats,
                            const std::string& substring);

// "top resources by wait time" table, at most `top_n` rows.
std::string render_top_resources(const std::vector<ResourceStats>& stats,
                                 std::size_t top_n = 10);

}  // namespace pvm::obs

#endif  // PVM_SRC_OBS_CONTENTION_H_
