// pvm::prof — deterministic critical-path profiler on the virtual clock.
//
// For every completed operation a SpanRecorder saw (page fault, syscall, GPT
// store, boot, migration — any root span tree), fold_profile() reconstructs
// the span tree from the recorder's close-ordered record stream and
// decomposes the operation's end-to-end latency into *exclusive* time per
// phase path (the chain of phases/lock-waits that actually bounded the
// latency; within one root task execution is strictly sequential, so every
// nanosecond of an operation belongs to exactly the innermost open span).
// Lock-wait spans are renamed "lock_wait:<resource>" using the recorder's
// lock-track mirror records, so contention blame names the lock.
//
// Cross-track attribution: a dirty-tracking span (Phase::kDirtyTrack) charged
// to a guest vCPU while a migration operation is in flight is folded into
// that migration op's profile ("op.migration;dirty_track;...") — the
// source-side cost of keeping the dirty log belongs to the migration, not to
// the vCPU that happened to pay it. Those contributions add paths but never
// latency samples, so "sum of path exclusive ns" can exceed the op's own
// latency total exactly when cross-track work was charged.
//
// Aggregation is per op kind (per sweep coordinate once prefixed):
//   - a mergeable latency histogram of the op instances (p50/p99),
//   - paths: path -> {exclusive_ns, count} over every instance,
//   - tail_paths: the same sum restricted to the tail cohort — instances
//     whose latency >= the fold-time p99 (the bucketed quantile). Tail
//     membership is decided *per source run* before any merge, so merging
//     shards is element-wise map addition and stays order-independent.
//
// Documents follow the sweep merge discipline (prefix per cell coordinate,
// merge in cell-index order): pvm-matrix --profile at --jobs 8 is
// byte-identical to --jobs 1. Schema pvm.profile.v1; render/parse round-trip
// byte-identically.

#ifndef PVM_SRC_OBS_PROF_H_
#define PVM_SRC_OBS_PROF_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/obs/hist.h"

namespace pvm::obs {
class SpanRecorder;
}  // namespace pvm::obs

namespace pvm::prof {

inline constexpr std::string_view kProfileSchemaVersion = "pvm.profile.v1";

// One collapsed-stack row: exclusive virtual ns attributed to a phase path,
// and how many spans contributed it.
struct PathStat {
  std::uint64_t exclusive_ns = 0;
  std::uint64_t count = 0;

  bool operator==(const PathStat&) const = default;
};

// Everything aggregated about one operation kind (one ops-map key).
struct OpProfile {
  // End-to-end latency of every instance (mergeable: fixed bucket bounds).
  ts::MergeableHistogram latency;
  // Phase-path -> exclusive time, over all instances. Keys start with the
  // op's root phase name ("op.page_fault;spt_fill;lock_wait:mmu_lock").
  std::map<std::string, PathStat> paths;
  // The same decomposition restricted to the tail cohort (instances with
  // latency >= tail_threshold_ns at fold time).
  std::map<std::string, PathStat> tail_paths;
  // The fold-time p99 the tail cohort was cut at; merge keeps the max.
  std::uint64_t tail_threshold_ns = 0;
  // The single worst instance — replay anchor for the tail (begin_ns/track
  // locate it in a --trace export of the same run).
  std::uint64_t worst_ns = 0;
  std::uint64_t worst_begin_ns = 0;
  std::int64_t worst_track = -1;

  bool operator==(const OpProfile&) const = default;
};

// A full profile document: everything pvm.profile.v1 serializes.
struct ProfDoc {
  // Key: "<prefix><op root phase name>", e.g. "pvm (NST)/32p/op.page_fault".
  std::map<std::string, OpProfile, std::less<>> ops;
  // Raw-span buffer overflow in the source recorder(s): when nonzero the
  // fold is a lower bound, not a census.
  std::uint64_t dropped_spans = 0;

  bool empty() const { return ops.empty() && dropped_spans == 0; }

  bool operator==(const ProfDoc&) const = default;
};

// Folds a completed run's recorder state into a profile document (the
// critical-path fold described above). The recorder is read, not modified.
// `first_span` skips records already folded by an earlier call — a recorder
// that outlives several runs folds each run's increment exactly once (all
// spans close at run boundaries, so an offset never splits a tree).
ProfDoc fold_profile(const obs::SpanRecorder& recorder, std::size_t first_span = 0);

// Adds `from` into `into` (histogram merge, path-map addition, worst-of for
// exemplar/threshold fields). Always succeeds; `error` is reserved for
// future schema constraints and is left untouched today.
bool merge_profile(ProfDoc* into, const ProfDoc& from, std::string* error);

// Returns a copy of `doc` with every ops key prefixed — the per-cell
// coordinate step of the sweep merge discipline.
ProfDoc prefix_profile(const ProfDoc& doc, std::string_view prefix);

// pvm.profile.v1 serialization. Deterministic: names sort, integers only.
std::string render_profile_json(const ProfDoc& doc);
bool parse_profile_json(std::string_view text, ProfDoc* out, std::string* error);

// Collapsed-stack flamegraph output, one "<op-key>[;rest-of-path] <ns>" line
// per path, consumable by standard flamegraph tooling (weights are exclusive
// virtual ns).
std::string render_collapsed_stacks(const ProfDoc& doc);

// Human-readable blame table: per op, count/p50/p99/max plus the top-k paths
// by exclusive share over all instances and over the tail cohort. The first
// path row of each op is its dominant critical-path phase.
struct BlameOptions {
  std::size_t top_k = 10;
  // Substring filter on op keys; empty keeps everything.
  std::string filter;
};

std::string render_blame(const ProfDoc& doc, const BlameOptions& options);

}  // namespace pvm::prof

#endif  // PVM_SRC_OBS_PROF_H_
