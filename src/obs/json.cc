#include "src/obs/json.h"

#include <cinttypes>
#include <cstdio>

namespace pvm::obs {

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes a "key": pair; no comma
  }
  if (!element_written_.empty()) {
    if (element_written_.back()) {
      out_ += ',';
    }
    element_written_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  element_written_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  element_written_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  element_written_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  element_written_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view key) {
  comma();
  out_ += '"';
  out_ += escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma();
  out_ += '"';
  out_ += escape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  comma();
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, number);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  comma();
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64, number);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  comma();
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.6f", number);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  comma();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma();
  out_ += json;
  return *this;
}

std::string JsonWriter::escape(std::string_view text) {
  std::string result;
  result.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        result += "\\\"";
        break;
      case '\\':
        result += "\\\\";
        break;
      case '\n':
        result += "\\n";
        break;
      case '\t':
        result += "\\t";
        break;
      case '\r':
        result += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          result += buffer;
        } else {
          result += c;
        }
        break;
    }
  }
  return result;
}

}  // namespace pvm::obs
