#include "src/obs/hist.h"

#include <bit>
#include <cmath>

namespace pvm::ts {

namespace {

constexpr std::uint64_t kSub = 1ull << MergeableHistogram::kSubBits;

}  // namespace

std::uint32_t MergeableHistogram::bucket_index(std::uint64_t v) {
  if (v < kSub) {
    return static_cast<std::uint32_t>(v);
  }
  // v in [2^e, 2^(e+1)): keep the top kSubBits+1 bits; the leading bit is
  // implicit in the exponent, the rest select the sub-bucket.
  const unsigned e = std::bit_width(v) - 1;
  const unsigned shift = e - kSubBits;
  return static_cast<std::uint32_t>(((e - kSubBits) << kSubBits) +
                                    (v >> shift));
}

std::uint64_t MergeableHistogram::bucket_lower_bound(std::uint32_t index) {
  if (index < kSub) {
    return index;
  }
  const unsigned shift = index >> kSubBits;
  // Reconstruct the top bits: implicit leading one plus sub-bucket offset.
  const std::uint64_t top = kSub + (index & (kSub - 1));
  return top << (shift - 1);
}

std::uint64_t MergeableHistogram::bucket_upper_bound(std::uint32_t index) {
  if (index < kSub) {
    return index;
  }
  const unsigned shift = index >> kSubBits;
  const std::uint64_t top = kSub + (index & (kSub - 1));
  return ((top + 1) << (shift - 1)) - 1;
}

void MergeableHistogram::record(std::uint64_t value, std::uint64_t weight) {
  if (weight == 0) {
    return;
  }
  buckets_[bucket_index(value)] += weight;
  count_ += weight;
  sum_ += value * weight;
  if (value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
}

void MergeableHistogram::merge(const MergeableHistogram& other) {
  for (const auto& [index, n] : other.buckets_) {
    buckets_[index] += n;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) {
    min_ = other.min_;
  }
  if (other.max_ > max_) {
    max_ = other.max_;
  }
}

std::uint64_t MergeableHistogram::quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  if (q <= 0.0) {
    return min();
  }
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) {
    rank = 1;
  }
  if (rank > count_) {
    rank = count_;
  }
  std::uint64_t seen = 0;
  for (const auto& [index, n] : buckets_) {
    seen += n;
    if (seen >= rank) {
      const std::uint64_t upper = bucket_upper_bound(index);
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

MergeableHistogram MergeableHistogram::from_parts(
    std::uint64_t count, std::uint64_t sum, std::uint64_t min,
    std::uint64_t max, std::map<std::uint32_t, std::uint64_t> buckets) {
  MergeableHistogram h;
  h.buckets_ = std::move(buckets);
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = count == 0 ? std::numeric_limits<std::uint64_t>::max() : min;
  h.max_ = max;
  return h;
}

}  // namespace pvm::ts
