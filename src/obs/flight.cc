#include "src/obs/flight.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/json.h"
#include "src/sim/simulation.h"

namespace pvm::flight {

namespace {

// Rendering tables for the codes carried by switcher / L0 events. These
// mirror core::SwitchReason and hv::ExitKind by value; the flight recorder
// deliberately does not include those headers — it sits below every layer it
// records, like kvm_stat's exit-reason string table sits outside the vmx
// handlers. The table0b protocol-count tests pin the enum orders, so drift
// shows up as a test failure, not a silently wrong dump.
constexpr std::string_view kSwitchReasonNames[] = {
    "syscall", "hypercall", "exception", "interrupt", "page-fault", "gpt-write-protect",
};

constexpr std::string_view kExitKindNames[] = {
    "hypercall", "exception", "msr-access", "cpuid",         "port-io",       "io-kick",
    "interrupt", "cr3-write", "ept-violation", "halt",       "vmresume-trap", "ept12-store",
};

constexpr std::string_view kWatchdogActionNames[] = {"kick", "reset", "kill"};

std::string_view lookup(std::string_view const* table, std::size_t size, std::uint8_t code) {
  return code < size ? table[code] : std::string_view("?");
}

std::string hex(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(value));
  return buf;
}

std::string dec(std::uint64_t value) { return std::to_string(value); }

}  // namespace

std::string_view switch_reason_label(std::uint8_t code) {
  return lookup(kSwitchReasonNames, std::size(kSwitchReasonNames), code);
}

std::string_view exit_reason_label(std::uint8_t code) {
  return lookup(kExitKindNames, std::size(kExitKindNames), code);
}

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSwitcherExit:
      return "switcher-exit";
    case EventKind::kSwitcherEntry:
      return "switcher-entry";
    case EventKind::kDirectSwitch:
      return "direct-switch";
    case EventKind::kVmxExit:
      return "vmx-exit";
    case EventKind::kVmxEntry:
      return "vmx-entry";
    case EventKind::kGuestFault:
      return "guest-fault";
    case EventKind::kSptFill:
      return "spt-fill";
    case EventKind::kZap:
      return "zap";
    case EventKind::kBulkZap:
      return "bulk-zap";
    case EventKind::kReclaim:
      return "reclaim";
    case EventKind::kGptEmulate:
      return "gpt-emulate";
    case EventKind::kLockAcquire:
      return "lock-acquire";
    case EventKind::kLockRelease:
      return "lock-release";
    case EventKind::kFaultInjected:
      return "fault-injected";
    case EventKind::kWatchdog:
      return "watchdog";
    case EventKind::kOomKill:
      return "oom-kill";
    case EventKind::kMigrationRound:
      return "migration-round";
    case EventKind::kMigrationStopCopy:
      return "migration-stop-copy";
    case EventKind::kMigrationFallback:
      return "migration-fallback";
    case EventKind::kCount:
      break;
  }
  return "?";
}

std::vector<Event> FlightRecorder::merged() const {
  std::vector<Event> all;
  for (const auto& [track, ring] : rings_) {
    const std::vector<Event> events = ring.snapshot();
    all.insert(all.end(), events.begin(), events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
  return all;
}

std::string event_detail(const FlightRecorder& recorder, const Event& event) {
  switch (event.kind) {
    case EventKind::kSwitcherExit:
      return "reason=" + std::string(lookup(kSwitchReasonNames,
                                            std::size(kSwitchReasonNames), event.code));
    case EventKind::kSwitcherEntry:
      return "ring=" + dec(event.code);
    case EventKind::kDirectSwitch:
      return std::string("to=") + (event.code == 0 ? "kernel" : "user") +
             " cost=" + dec(event.b) + "ns";
    case EventKind::kVmxExit:
      return "reason=" +
             std::string(lookup(kExitKindNames, std::size(kExitKindNames), event.code));
    case EventKind::kVmxEntry:
      return "";
    case EventKind::kGuestFault:
      return "gva=" + hex(event.a);
    case EventKind::kSptFill:
      return "gva=" + hex(event.a) + " pid=" + dec(event.b) +
             (event.code == 1 ? " prefault" : event.code == 2 ? " raced" : "");
    case EventKind::kZap:
      return "gva=" + hex(event.a) + " pid=" + dec(event.b);
    case EventKind::kBulkZap:
      return "leaves=" + dec(event.a) + " pid=" + dec(event.b);
    case EventKind::kReclaim:
      return "frames=" + dec(event.a) + " leaves=" + dec(event.b);
    case EventKind::kGptEmulate:
      return "gpa=" + hex(event.a);
    case EventKind::kLockAcquire:
      return "\"" + std::string(recorder.name(event.a)) + "\"" +
             (event.code == 1 ? " contended wait=" + dec(event.b) + "ns" : "");
    case EventKind::kLockRelease:
      return "\"" + std::string(recorder.name(event.a)) + "\"";
    case EventKind::kFaultInjected:
      return std::string(recorder.name(event.a));
    case EventKind::kWatchdog:
      return std::string(lookup(kWatchdogActionNames, std::size(kWatchdogActionNames),
                                event.code)) +
             " vcpu=" + dec(event.a);
    case EventKind::kOomKill:
      return "pid=" + dec(event.a) + " frames=" + dec(event.b);
    case EventKind::kMigrationRound:
      return "copied=" + dec(event.a) + " dirtied=" + dec(event.b) +
             " round=" + dec(event.code);
    case EventKind::kMigrationStopCopy:
      return "pages=" + dec(event.a) + " downtime=" + dec(event.b) + "ns";
    case EventKind::kMigrationFallback:
      return "remaining=" + dec(event.a);
    case EventKind::kCount:
      break;
  }
  return "";
}

namespace {

std::string track_label(const Simulation* sim, std::int64_t track) {
  if (track < 0) {
    return "<unattributed>";
  }
  if (sim != nullptr && static_cast<std::size_t>(track) < sim->root_count()) {
    return sim->root_name(static_cast<std::size_t>(track));
  }
  return "track#" + std::to_string(track);
}

}  // namespace

std::string render_flight_timeline(const FlightRecorder& recorder, const Simulation* sim) {
  std::string out;
  out += "flight timeline (" + std::to_string(recorder.total_events()) + " events recorded, " +
         std::to_string(recorder.dropped_events()) + " dropped to ring wraparound):\n";
  for (const Event& event : recorder.merged()) {
    char head[64];
    std::snprintf(head, sizeof(head), "  t=%-12llu #%-6llu ",
                  static_cast<unsigned long long>(event.t),
                  static_cast<unsigned long long>(event.seq));
    out += head;
    out += "[" + track_label(sim, event.track) + "] ";
    out += event_kind_name(event.kind);
    const std::string detail = event_detail(recorder, event);
    if (!detail.empty()) {
      out += " " + detail;
    }
    out += "\n";
  }
  return out;
}

std::string render_postmortem_json(const FlightRecorder& recorder, const Simulation* sim,
                                   std::string_view reason, std::string_view reproduce) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("schema").value("pvm.postmortem.v1");
  json.key("reason").value(reason);
  json.key("reproduce").value(reproduce);
  json.key("sim_ns").value(sim != nullptr ? static_cast<std::uint64_t>(sim->now()) : 0);
  json.key("total_events").value(recorder.total_events());
  json.key("dropped_events").value(recorder.dropped_events());
  json.key("diagnostics").begin_array();
  if (sim != nullptr) {
    for (const std::string& line : sim->diagnostics()) {
      json.value(line);
    }
  }
  json.end_array();
  json.key("tracks").begin_array();
  for (const auto& [track, ring] : recorder.rings()) {
    json.begin_object();
    json.key("track").value(static_cast<std::int64_t>(track));
    json.key("name").value(track_label(sim, track));
    json.key("total").value(ring.total);
    json.key("dropped").value(ring.dropped());
    json.key("events").begin_array();
    for (const Event& event : ring.snapshot()) {
      json.begin_object();
      json.key("t").value(event.t);
      json.key("seq").value(event.seq);
      json.key("kind").value(event_kind_name(event.kind));
      json.key("a").value(event.a);
      json.key("b").value(event.b);
      json.key("code").value(static_cast<std::uint64_t>(event.code));
      const std::string detail = event_detail(recorder, event);
      if (!detail.empty()) {
        json.key("detail").value(detail);
      }
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace pvm::flight
