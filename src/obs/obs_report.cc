#include "src/obs/obs_report.h"

#include <algorithm>
#include <vector>

#include "src/metrics/table.h"
#include "src/obs/contention.h"
#include "src/obs/span.h"

namespace pvm::obs {

std::string render_obs_report(const Simulation& sim, const SpanRecorder* recorder,
                              std::size_t top_n) {
  std::string report;
  report += "top resources by wait time:\n";
  report += render_top_resources(collect_resource_stats(sim), top_n);
  if (recorder == nullptr || recorder->total_span_ns() == 0) {
    return report;
  }

  struct Row {
    Phase phase;
    SpanRecorder::PhaseStat stat;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto phase = static_cast<Phase>(i);
    const SpanRecorder::PhaseStat& stat = recorder->phase_stat(phase);
    if (stat.count > 0) {
      rows.push_back(Row{phase, stat});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.stat.exclusive_ns != b.stat.exclusive_ns) {
      return a.stat.exclusive_ns > b.stat.exclusive_ns;
    }
    return static_cast<int>(a.phase) < static_cast<int>(b.phase);
  });
  const double total = static_cast<double>(recorder->total_span_ns());
  report += "\ntop phases by exclusive-time share:\n";
  TextTable phases({"phase", "count", "exclusive_us", "share_pct"});
  std::size_t printed = 0;
  for (const Row& row : rows) {
    if (printed++ >= top_n) {
      break;
    }
    phases.add_row({std::string(phase_name(row.phase)), TextTable::cell(row.stat.count),
                    TextTable::cell(static_cast<double>(row.stat.exclusive_ns) / 1e3),
                    TextTable::cell(100.0 * static_cast<double>(row.stat.exclusive_ns) / total)});
  }
  report += phases.render();

  TextTable ops({"op", "count", "mean_us", "p50_us", "p95_us", "p99_us"});
  bool any_op = false;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto op = static_cast<Phase>(i);
    if (!phase_is_op(op)) {
      continue;
    }
    const LatencyHistogram& hist = recorder->op_latency(op);
    if (hist.count() == 0) {
      continue;
    }
    any_op = true;
    ops.add_row({std::string(phase_name(op)), TextTable::cell(hist.count()),
                 TextTable::cell(hist.mean() / 1e3),
                 TextTable::cell(static_cast<double>(hist.quantile(0.50)) / 1e3),
                 TextTable::cell(static_cast<double>(hist.quantile(0.95)) / 1e3),
                 TextTable::cell(static_cast<double>(hist.quantile(0.99)) / 1e3)});
  }
  if (any_op) {
    report += "\noperation latencies:\n";
    report += ops.render();
  }
  return report;
}

}  // namespace pvm::obs
