#include "src/obs/contention.h"

#include <algorithm>

#include "src/metrics/table.h"
#include "src/sim/resource.h"

namespace pvm::obs {

std::vector<ResourceStats> collect_resource_stats(const Simulation& sim) {
  std::vector<ResourceStats> stats;
  for (const Resource* resource : sim.resources()) {
    if (resource->acquisitions() == 0) {
      continue;
    }
    ResourceStats s;
    s.name = resource->name();
    s.capacity = resource->capacity();
    s.acquisitions = resource->acquisitions();
    s.contended = resource->contended_acquisitions();
    s.total_wait_ns = resource->total_wait_ns();
    s.total_hold_ns = resource->total_hold_ns();
    s.peak_queue_depth = resource->peak_queue_depth();
    const LatencyHistogram& wait = resource->wait_histogram();
    s.wait_p50_ns = wait.quantile(0.50);
    s.wait_p95_ns = wait.quantile(0.95);
    s.wait_p99_ns = wait.quantile(0.99);
    const LatencyHistogram& hold = resource->hold_histogram();
    s.hold_p50_ns = hold.quantile(0.50);
    s.hold_p95_ns = hold.quantile(0.95);
    s.hold_p99_ns = hold.quantile(0.99);
    stats.push_back(std::move(s));
  }
  std::sort(stats.begin(), stats.end(), [](const ResourceStats& a, const ResourceStats& b) {
    if (a.total_wait_ns != b.total_wait_ns) {
      return a.total_wait_ns > b.total_wait_ns;
    }
    return a.name < b.name;
  });
  return stats;
}

SimTime total_wait_matching(const std::vector<ResourceStats>& stats,
                            const std::string& substring) {
  SimTime total = 0;
  for (const ResourceStats& s : stats) {
    if (s.name.find(substring) != std::string::npos) {
      total += s.total_wait_ns;
    }
  }
  return total;
}

std::string render_top_resources(const std::vector<ResourceStats>& stats, std::size_t top_n) {
  TextTable table({"resource", "cap", "acq", "contended", "wait_total_us", "wait_p99_us",
                   "hold_total_us", "peak_q"});
  std::size_t rows = 0;
  for (const ResourceStats& s : stats) {
    if (rows++ >= top_n) {
      break;
    }
    table.add_row({s.name, TextTable::cell(static_cast<std::uint64_t>(s.capacity)),
                   TextTable::cell(s.acquisitions), TextTable::cell(s.contended),
                   TextTable::cell(static_cast<double>(s.total_wait_ns) / 1e3),
                   TextTable::cell(static_cast<double>(s.wait_p99_ns) / 1e3),
                   TextTable::cell(static_cast<double>(s.total_hold_ns) / 1e3),
                   TextTable::cell(static_cast<std::uint64_t>(s.peak_queue_depth))});
  }
  return table.render();
}

}  // namespace pvm::obs
