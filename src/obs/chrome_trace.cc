#include "src/obs/chrome_trace.h"

#include "src/obs/flight.h"
#include "src/obs/json.h"
#include "src/obs/span.h"
#include "src/sim/simulation.h"

namespace pvm::obs {

namespace {

// Trace-event timestamps are microseconds; keep nanosecond resolution as
// fractional microseconds (Perfetto accepts fractional ts/dur).
double to_trace_us(TimeNs ns) { return static_cast<double>(ns) / 1000.0; }

void emit_thread_name(JsonWriter& json, int pid, std::int64_t tid, std::string_view name) {
  json.begin_object()
      .key("ph").value("M")
      .key("name").value("thread_name")
      .key("pid").value(pid)
      .key("tid").value(tid)
      .key("args").begin_object().key("name").value(name).end_object()
      .end_object();
}

void emit_process_name(JsonWriter& json, int pid, std::string_view name) {
  json.begin_object()
      .key("ph").value("M")
      .key("name").value("process_name")
      .key("pid").value(pid)
      .key("args").begin_object().key("name").value(name).end_object()
      .end_object();
}

}  // namespace

std::string export_chrome_trace(const SpanRecorder& recorder, const Simulation& sim,
                                const flight::FlightRecorder* flight) {
  JsonWriter json;
  json.begin_object();
  json.key("displayTimeUnit").value("ns");
  json.key("traceEvents").begin_array();

  emit_process_name(json, 0, "tasks");
  for (std::size_t i = 0; i < sim.root_count(); ++i) {
    emit_thread_name(json, 0, static_cast<std::int64_t>(i), sim.root_name(i));
  }
  if (!recorder.lock_tracks().empty()) {
    emit_process_name(json, 1, "locks");
    for (const auto& [name, track] : recorder.lock_tracks()) {
      emit_thread_name(json, 1, track - SpanRecorder::kLockTrackBase, name);
    }
  }

  for (const SpanRecord& span : recorder.spans()) {
    const bool lock_track = span.track >= SpanRecorder::kLockTrackBase;
    const int pid = lock_track ? 1 : 0;
    const std::int64_t tid =
        lock_track ? span.track - SpanRecorder::kLockTrackBase
                   : (span.track < 0 ? -1 : span.track);
    json.begin_object()
        .key("ph").value("X")
        .key("name").value(phase_name(span.phase))
        .key("cat").value(phase_is_op(span.phase) ? "op" : "phase")
        .key("pid").value(pid)
        .key("tid").value(tid)
        .key("ts").value(to_trace_us(span.begin_ns))
        .key("dur").value(to_trace_us(span.end_ns - span.begin_ns));
    if (span.detail != 0) {
      json.key("args").begin_object().key("detail").value(span.detail).end_object();
    }
    json.end_object();
  }

  if (flight != nullptr) {
    // Failure-relevant flight events as instant markers. Only the rare kinds:
    // the dense protocol events (switches, fills, locks) are already visible
    // as spans, and instants for them would bury the timeline.
    for (const flight::Event& event : flight->merged()) {
      if (event.kind != flight::EventKind::kFaultInjected &&
          event.kind != flight::EventKind::kWatchdog &&
          event.kind != flight::EventKind::kOomKill) {
        continue;
      }
      json.begin_object()
          .key("ph").value("i")
          .key("name").value(flight::event_kind_name(event.kind))
          .key("cat").value("flight")
          .key("s").value("t")
          .key("pid").value(0)
          .key("tid").value(event.track < 0 ? -1 : event.track)
          .key("ts").value(to_trace_us(static_cast<TimeNs>(event.t)))
          .key("args").begin_object()
          .key("detail").value(flight::event_detail(*flight, event))
          .end_object()
          .end_object();
    }
  }

  json.end_array();
  json.key("droppedSpans").value(recorder.dropped_spans());
  json.end_object();
  return json.str();
}

}  // namespace pvm::obs
