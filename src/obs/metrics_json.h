// Versioned machine-readable bench export (schema "pvm.bench.v1").
//
// Every bench binary builds one BenchExport and captures one entry per
// (label, run): headline values, simulated time, non-zero counters, derived
// per-fault stats, the per-resource contention table, and — when a span
// recorder was attached — phase exclusive-time shares and per-operation
// latency percentiles. Serialization is deterministic (see json.h): no
// wall-clock, fixed formatting, sorted tables.
//
// Schema version policy: additive changes (new keys) keep the version;
// renames/removals/semantic changes bump it. Consumers must ignore unknown
// keys.

#ifndef PVM_SRC_OBS_METRICS_JSON_H_
#define PVM_SRC_OBS_METRICS_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "src/metrics/counters.h"
#include "src/sim/simulation.h"

namespace pvm::obs {

class SpanRecorder;

inline constexpr const char* kBenchSchemaVersion = "pvm.bench.v1";

class BenchExport {
 public:
  explicit BenchExport(std::string bench_name) : bench_name_(std::move(bench_name)) {}

  // Captures one completed run. `values` are the bench's headline numbers
  // ("seconds", "faults_per_sec", ...), emitted in the given order.
  // `recorder` may be null (no span attribution section then). `alloc_json`
  // (pre-rendered by render_alloc_json, empty to omit) is the opt-in arena
  // accounting section — only --alloc-stats runs carry it, so default
  // exports stay byte-identical. `include_resources` drops the per-resource
  // stats array (emitted as []) — fleet nodes create hundreds of transient
  // sandbox locks, which would bloat every embedded node document.
  void add_run(const std::string& label, const Simulation& sim, const CounterSet& counters,
               const SpanRecorder* recorder,
               std::vector<std::pair<std::string, double>> values,
               std::string alloc_json = {}, bool include_resources = true);

  // Captures a run that has no live platform (values only).
  void add_values(const std::string& label,
                  std::vector<std::pair<std::string, double>> values);

  std::size_t run_count() const { return runs_.size(); }

  // The full export document.
  std::string to_json() const;

 private:
  struct Run {
    std::string label;
    std::vector<std::pair<std::string, double>> values;
    bool has_platform = false;
    SimTime sim_ns = 0;
    std::uint64_t events = 0;
    CounterSet counters;
    std::string resources_json;  // pre-rendered array (platform dies after capture)
    std::string spans_json;      // pre-rendered object, empty if no recorder
    std::string alloc_json;      // pre-rendered object, empty unless --alloc-stats
  };

  std::string bench_name_;
  std::vector<Run> runs_;
};

// Renders the opt-in `alloc` section: the simulation event queue's calendar
// shape and slot accounting, plus (when `engines` is non-null) the
// aggregated page-table-node and rmap-chain slab stats of the platform's
// shadow engines.
std::string render_alloc_json(const EventQueueStats& queue, const SlabStats* engines);

}  // namespace pvm::obs

#endif  // PVM_SRC_OBS_METRICS_JSON_H_
