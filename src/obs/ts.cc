#include "src/obs/ts.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "src/obs/flight.h"
#include "src/obs/json.h"
#include "src/obs/json_parse.h"
#include "src/obs/span.h"

namespace pvm::ts {

namespace {

void appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buf, static_cast<std::size_t>(n) < sizeof(buf)
                         ? static_cast<std::size_t>(n)
                         : sizeof(buf) - 1);
  }
}

// Deterministic human-readable duration ("842ns", "13.4us", "8.92ms",
// "1.250s"). Fixed printf formats, no locale.
std::string format_ns(std::uint64_t ns) {
  std::string out;
  if (ns < 1000) {
    appendf(&out, "%lluns", static_cast<unsigned long long>(ns));
  } else if (ns < 1000 * 1000) {
    appendf(&out, "%.1fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 1000ull * 1000 * 1000) {
    appendf(&out, "%.2fms", static_cast<double>(ns) / 1e6);
  } else {
    appendf(&out, "%.3fs", static_cast<double>(ns) / 1e9);
  }
  return out;
}

double quantile_fraction(std::string_view token) {
  if (token == "p50") return 0.50;
  if (token == "p90") return 0.90;
  if (token == "p95") return 0.95;
  if (token == "p99") return 0.99;
  if (token == "p999") return 0.999;
  return -1.0;
}

bool known_quantile(std::string_view token) {
  return quantile_fraction(token) >= 0.0 || token == "max" || token == "total";
}

std::uint64_t hist_value(const MergeableHistogram& h, std::string_view quantile) {
  if (quantile == "max") {
    return h.max();
  }
  return h.quantile(quantile_fraction(quantile));
}

std::uint64_t as_u64(const obs::JsonValue& v) {
  return static_cast<std::uint64_t>(v.number);
}

std::int64_t as_i64(const obs::JsonValue& v) {
  return static_cast<std::int64_t>(v.number);
}

}  // namespace

bool exemplar_worse(const TsExemplar& a, const TsExemplar& b) {
  if (a.value != b.value) {
    return a.value > b.value;
  }
  if (a.seq != b.seq) {
    return a.seq < b.seq;
  }
  if (a.source != b.source) {
    return a.source < b.source;
  }
  return a.path < b.path;
}

MergeableHistogram TsHist::cumulative() const {
  MergeableHistogram all;
  for (const auto& [w, h] : windows) {
    all.merge(h);
  }
  return all;
}

TsSeries& Collector::series_slot(std::string_view name) {
  auto it = doc_.series.find(name);
  if (it == doc_.series.end()) {
    it = doc_.series.emplace(std::string(name), TsSeries{}).first;
  }
  return it->second;
}

void Collector::count_at(std::string_view name, std::uint64_t t, std::int64_t n) {
  TsSeries& s = series_slot(name);
  s.windows[t / doc_.window_ns] += n;
  s.total += n;
}

void Collector::gauge_add_at(std::string_view name, std::uint64_t t,
                             std::int64_t delta) {
  TsSeries& s = series_slot(name);
  s.gauge = true;
  s.total += delta;
  // Last write in a window wins: the window records the level at its end.
  s.windows[t / doc_.window_ns] = s.total;
}

void Collector::observe_at(std::string_view name, std::uint64_t t,
                           std::uint64_t value) {
  auto it = doc_.hists.find(name);
  if (it == doc_.hists.end()) {
    it = doc_.hists.emplace(std::string(name), TsHist{}).first;
  }
  TsHist& hist = it->second;
  hist.windows[t / doc_.window_ns].record(value);
  // Tail exemplar: remember the worst sample per touched bucket, stamped
  // with the flight seq and the span path open at observation time.
  TsExemplar exemplar;
  exemplar.value = value;
  exemplar.seq = last_seq_;
  if (spans_ != nullptr && active_root_ != nullptr) {
    exemplar.path = spans_->open_path(*active_root_);
  }
  const std::uint32_t bucket = MergeableHistogram::bucket_index(value);
  auto ex = hist.exemplars.find(bucket);
  if (ex == hist.exemplars.end()) {
    hist.exemplars.emplace(bucket, std::move(exemplar));
  } else if (exemplar_worse(exemplar, ex->second)) {
    ex->second = std::move(exemplar);
  }
}

void Collector::on_flight_event(std::uint64_t t, std::int64_t track,
                                std::uint8_t kind, std::uint64_t a,
                                std::uint64_t b, std::uint8_t code,
                                std::uint64_t seq) {
  last_seq_ = seq;
  using flight::EventKind;
  switch (static_cast<EventKind>(kind)) {
    case EventKind::kSwitcherExit:
      count_at("switcher_exits", t);
      open_switch_[track] = t;
      break;
    case EventKind::kSwitcherEntry: {
      const auto it = open_switch_.find(track);
      if (it != open_switch_.end()) {
        observe_at("switch_exit_ns", t, t - it->second);
        open_switch_.erase(it);
      }
      break;
    }
    case EventKind::kDirectSwitch:
      count_at("direct_switches", t);
      observe_at("direct_switch_ns", t, b);
      break;
    case EventKind::kVmxExit:
      count_at("vmx_exits", t);
      open_vmx_[track] = t;
      break;
    case EventKind::kVmxEntry: {
      const auto it = open_vmx_.find(track);
      if (it != open_vmx_.end()) {
        observe_at("vmx_roundtrip_ns", t, t - it->second);
        open_vmx_.erase(it);
      }
      break;
    }
    case EventKind::kGuestFault:
      count_at("guest_faults", t);
      break;
    case EventKind::kSptFill:
      count_at(code == 1 ? "prefault_fills"
                         : (code == 2 ? "spt_fill_races" : "spt_fills"),
               t);
      break;
    case EventKind::kZap:
      count_at("zaps", t);
      break;
    case EventKind::kBulkZap:
      count_at("bulk_zaps", t);
      count_at("zapped_leaves", t, static_cast<std::int64_t>(a));
      break;
    case EventKind::kReclaim:
      count_at("reclaims", t);
      count_at("reclaimed_frames", t, static_cast<std::int64_t>(a));
      break;
    case EventKind::kGptEmulate:
      count_at("gpt_emulates", t);
      break;
    case EventKind::kLockAcquire:
      if (code == 1) {
        count_at("lock_contended", t);
        observe_at("lock_wait_ns", t, b);
      }
      break;
    case EventKind::kLockRelease:
      break;
    case EventKind::kFaultInjected:
      count_at("faults_injected", t);
      break;
    case EventKind::kWatchdog:
      if (code == 1) {
        count_at("watchdog_resets", t);
      } else if (code == 2) {
        count_at("watchdog_kills", t);
      }
      break;
    case EventKind::kOomKill:
      count_at("oom_kills", t);
      break;
    case EventKind::kMigrationRound:
      count_at("migration_rounds", t);
      count_at("migration_pages_copied", t, static_cast<std::int64_t>(a));
      count_at("migration_pages_dirtied", t, static_cast<std::int64_t>(b));
      break;
    case EventKind::kMigrationStopCopy:
      count_at("migration_stop_copies", t);
      observe_at("migration_downtime_ns", t, b);
      break;
    case EventKind::kMigrationFallback:
      count_at("migration_fallbacks", t);
      break;
    default:
      break;
  }
}

TsDoc Collector::drain() {
  TsDoc out = std::move(doc_);
  doc_ = TsDoc{};
  doc_.window_ns = out.window_ns;
  open_switch_.clear();
  open_vmx_.clear();
  return out;
}

bool merge_timeseries(TsDoc* into, const TsDoc& from, std::string* error) {
  if (into->empty()) {
    into->window_ns = from.window_ns;
  } else if (into->window_ns != from.window_ns) {
    if (error != nullptr) {
      *error = "window_ns mismatch: " + std::to_string(into->window_ns) +
               " vs " + std::to_string(from.window_ns);
    }
    return false;
  }
  for (const auto& [name, s] : from.series) {
    auto it = into->series.find(name);
    if (it == into->series.end()) {
      into->series.emplace(name, s);
      continue;
    }
    TsSeries& dst = it->second;
    if (dst.gauge != s.gauge) {
      if (error != nullptr) {
        *error = "series '" + name + "' is a counter in one document and a gauge in the other";
      }
      return false;
    }
    for (const auto& [w, v] : s.windows) {
      dst.windows[w] += v;
    }
    dst.total += s.total;
  }
  for (const auto& [name, h] : from.hists) {
    TsHist& dst = into->hists[name];
    for (const auto& [w, wh] : h.windows) {
      auto it = dst.windows.find(w);
      if (it == dst.windows.end()) {
        dst.windows.emplace(w, wh);
      } else {
        it->second.merge(wh);
      }
    }
    for (const auto& [bucket, exemplar] : h.exemplars) {
      auto it = dst.exemplars.find(bucket);
      if (it == dst.exemplars.end()) {
        dst.exemplars.emplace(bucket, exemplar);
      } else if (exemplar_worse(exemplar, it->second)) {
        it->second = exemplar;
      }
    }
  }
  return true;
}

TsDoc prefix_timeseries(const TsDoc& doc, std::string_view prefix) {
  TsDoc out;
  out.window_ns = doc.window_ns;
  for (const auto& [name, s] : doc.series) {
    out.series.emplace(std::string(prefix) + name, s);
  }
  for (const auto& [name, h] : doc.hists) {
    TsHist prefixed = h;
    // Exemplars accumulate the sweep coordinate: every prefix level prepends
    // itself, so a twice-prefixed exemplar reads "<mode>/<workload>/<label>/".
    for (auto& [bucket, exemplar] : prefixed.exemplars) {
      exemplar.source = std::string(prefix) + exemplar.source;
    }
    out.hists.emplace(std::string(prefix) + name, std::move(prefixed));
  }
  out.slos = doc.slos;
  return out;
}

bool parse_slo_spec(std::string_view text, SloSpec* out, std::string* error) {
  const auto fail = [error](std::string message) {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return false;
  };
  SloSpec spec;
  const std::size_t first = text.find(':');
  if (first == std::string_view::npos || first == 0) {
    return fail("expected <name>:<metric>:<quantile><=<threshold>[:window]");
  }
  spec.name = std::string(text.substr(0, first));
  std::string_view rest = text.substr(first + 1);
  if (rest.ends_with(":window")) {
    spec.per_window = true;
    rest.remove_suffix(7);
  } else if (rest.ends_with(":run")) {
    rest.remove_suffix(4);
  }
  const std::size_t last = rest.rfind(':');
  if (last == std::string_view::npos || last == 0 || last + 1 >= rest.size()) {
    return fail("expected <name>:<metric>:<quantile><=<threshold>[:window]");
  }
  spec.metric = std::string(rest.substr(0, last));
  const std::string_view check = rest.substr(last + 1);
  const std::size_t le = check.find("<=");
  if (le == std::string_view::npos || le == 0) {
    return fail("threshold must be written '<quantile><=<value>'");
  }
  spec.quantile = std::string(check.substr(0, le));
  if (!known_quantile(spec.quantile)) {
    return fail("unknown quantile '" + spec.quantile +
                "' (expected p50|p90|p95|p99|p999|max|total)");
  }
  std::string_view threshold = check.substr(le + 2);
  double multiplier = 1.0;
  if (threshold.ends_with("ns")) {
    threshold.remove_suffix(2);
  } else if (threshold.ends_with("us")) {
    multiplier = 1e3;
    threshold.remove_suffix(2);
  } else if (threshold.ends_with("ms")) {
    multiplier = 1e6;
    threshold.remove_suffix(2);
  } else if (threshold.ends_with("s")) {
    multiplier = 1e9;
    threshold.remove_suffix(1);
  }
  if (threshold.empty()) {
    return fail("missing threshold value");
  }
  const std::string digits(threshold);
  char* end = nullptr;
  const double value = std::strtod(digits.c_str(), &end);
  if (end != digits.c_str() + digits.size() || value < 0.0) {
    return fail("bad threshold value '" + digits + "'");
  }
  spec.threshold_ns = static_cast<std::uint64_t>(std::llround(value * multiplier));
  *out = std::move(spec);
  return true;
}

void evaluate_slos(TsDoc* doc, const std::vector<SloSpec>& specs) {
  doc->slos.clear();
  for (const SloSpec& spec : specs) {
    bool matched = false;
    if (spec.quantile == "total") {
      for (const auto& [name, s] : doc->series) {
        if (name != spec.metric && name.find(spec.metric) == std::string::npos) {
          continue;
        }
        matched = true;
        SloResult result;
        result.name = spec.name;
        result.metric = name;
        result.quantile = spec.quantile;
        result.threshold_ns = spec.threshold_ns;
        result.scope = spec.per_window ? "window" : "run";
        std::int64_t worst = 0;
        std::uint64_t worst_window = 0;
        bool any = false;
        for (const auto& [w, v] : s.windows) {
          if (!any || v > worst) {
            worst = v;
            worst_window = w;
            any = true;
          }
        }
        result.worst_window = worst_window;
        result.value = spec.per_window ? worst : s.total;
        result.pass =
            result.value <= static_cast<std::int64_t>(spec.threshold_ns);
        doc->slos.push_back(std::move(result));
      }
    } else {
      for (const auto& [name, h] : doc->hists) {
        if (name != spec.metric && name.find(spec.metric) == std::string::npos) {
          continue;
        }
        matched = true;
        SloResult result;
        result.name = spec.name;
        result.metric = name;
        result.quantile = spec.quantile;
        result.threshold_ns = spec.threshold_ns;
        result.scope = spec.per_window ? "window" : "run";
        std::uint64_t worst = 0;
        std::uint64_t worst_window = 0;
        bool any = false;
        for (const auto& [w, wh] : h.windows) {
          const std::uint64_t v = hist_value(wh, spec.quantile);
          if (!any || v > worst) {
            worst = v;
            worst_window = w;
            any = true;
          }
        }
        result.worst_window = worst_window;
        const std::uint64_t value =
            spec.per_window ? worst : hist_value(h.cumulative(), spec.quantile);
        result.value = static_cast<std::int64_t>(value);
        result.pass = value <= spec.threshold_ns;
        doc->slos.push_back(std::move(result));
      }
    }
    if (!matched) {
      SloResult result;
      result.name = spec.name;
      result.metric = "(no match: " + spec.metric + ")";
      result.quantile = spec.quantile;
      result.threshold_ns = spec.threshold_ns;
      result.scope = spec.per_window ? "window" : "run";
      result.pass = false;
      doc->slos.push_back(std::move(result));
    }
  }
}

std::string render_timeseries_json(const TsDoc& doc) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value(kTimeseriesSchemaVersion);
  w.key("window_ns").value(doc.window_ns);
  w.key("series").begin_array();
  for (const auto& [name, s] : doc.series) {
    w.begin_object();
    w.key("name").value(name);
    w.key("kind").value(s.gauge ? "gauge" : "counter");
    w.key("total").value(s.total);
    w.key("windows").begin_array();
    for (const auto& [window, v] : s.windows) {
      w.begin_array().value(window).value(v).end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("hists").begin_array();
  for (const auto& [name, h] : doc.hists) {
    const MergeableHistogram all = h.cumulative();
    w.begin_object();
    w.key("name").value(name);
    w.key("count").value(all.count());
    w.key("sum").value(all.sum());
    w.key("min").value(all.min());
    w.key("max").value(all.max());
    w.key("p50").value(all.quantile(0.50));
    w.key("p99").value(all.quantile(0.99));
    w.key("p999").value(all.quantile(0.999));
    w.key("exemplars").begin_array();
    for (const auto& [bucket, exemplar] : h.exemplars) {
      w.begin_object();
      w.key("bucket").value(static_cast<std::uint64_t>(bucket));
      w.key("value").value(exemplar.value);
      w.key("seq").value(exemplar.seq);
      w.key("source").value(exemplar.source);
      w.key("path").value(exemplar.path);
      w.end_object();
    }
    w.end_array();
    w.key("windows").begin_array();
    for (const auto& [window, wh] : h.windows) {
      w.begin_object();
      w.key("w").value(window);
      w.key("count").value(wh.count());
      w.key("sum").value(wh.sum());
      w.key("min").value(wh.min());
      w.key("max").value(wh.max());
      w.key("buckets").begin_array();
      for (const auto& [index, n] : wh.buckets()) {
        w.begin_array().value(static_cast<std::uint64_t>(index)).value(n).end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("slos");
  render_slo_results(w, doc.slos);
  w.end_object();
  return w.str() + "\n";
}

void render_slo_results(obs::JsonWriter& w, const std::vector<SloResult>& slos) {
  w.begin_array();
  for (const SloResult& slo : slos) {
    w.begin_object();
    w.key("name").value(slo.name);
    w.key("metric").value(slo.metric);
    w.key("quantile").value(slo.quantile);
    w.key("threshold_ns").value(slo.threshold_ns);
    w.key("scope").value(slo.scope);
    w.key("value").value(slo.value);
    w.key("worst_window").value(slo.worst_window);
    w.key("pass").value(slo.pass);
    w.end_object();
  }
  w.end_array();
}

void parse_slo_results(const obs::JsonValue& array, std::vector<SloResult>* out) {
  for (const obs::JsonValue& entry : array.array) {
    SloResult slo;
    if (const obs::JsonValue* v = entry.find("name")) slo.name = v->string;
    if (const obs::JsonValue* v = entry.find("metric")) slo.metric = v->string;
    if (const obs::JsonValue* v = entry.find("quantile")) slo.quantile = v->string;
    if (const obs::JsonValue* v = entry.find("threshold_ns")) {
      slo.threshold_ns = as_u64(*v);
    }
    if (const obs::JsonValue* v = entry.find("scope")) slo.scope = v->string;
    if (const obs::JsonValue* v = entry.find("value")) slo.value = as_i64(*v);
    if (const obs::JsonValue* v = entry.find("worst_window")) {
      slo.worst_window = as_u64(*v);
    }
    if (const obs::JsonValue* v = entry.find("pass")) slo.pass = v->boolean;
    out->push_back(std::move(slo));
  }
}

bool parse_timeseries_json(std::string_view text, TsDoc* out, std::string* error) {
  const auto fail = [error](std::string message) {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return false;
  };
  obs::JsonValue root;
  std::string parse_error;
  if (!obs::json_parse(text, &root, &parse_error)) {
    return fail("bad JSON: " + parse_error);
  }
  const obs::JsonValue* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != kTimeseriesSchemaVersion) {
    return fail("not a pvm.timeseries.v1 document");
  }
  TsDoc doc;
  const obs::JsonValue* window_ns = root.find("window_ns");
  if (window_ns == nullptr || !window_ns->is_number()) {
    return fail("missing window_ns");
  }
  doc.window_ns = as_u64(*window_ns);
  if (const obs::JsonValue* series = root.find("series"); series != nullptr) {
    for (const obs::JsonValue& entry : series->array) {
      const obs::JsonValue* name = entry.find("name");
      const obs::JsonValue* kind = entry.find("kind");
      const obs::JsonValue* windows = entry.find("windows");
      if (name == nullptr || kind == nullptr || windows == nullptr) {
        return fail("malformed series entry");
      }
      TsSeries s;
      s.gauge = kind->string == "gauge";
      for (const obs::JsonValue& pair : windows->array) {
        if (pair.array.size() != 2) {
          return fail("malformed series window");
        }
        s.windows[as_u64(pair.array[0])] = as_i64(pair.array[1]);
      }
      // Totals are recomputed, not trusted: counter total is the sum of
      // window increments, gauge total the final level.
      if (s.gauge) {
        s.total = s.windows.empty() ? 0 : s.windows.rbegin()->second;
      } else {
        for (const auto& [w, v] : s.windows) {
          s.total += v;
        }
      }
      doc.series.emplace(name->string, std::move(s));
    }
  }
  if (const obs::JsonValue* hists = root.find("hists"); hists != nullptr) {
    for (const obs::JsonValue& entry : hists->array) {
      const obs::JsonValue* name = entry.find("name");
      const obs::JsonValue* windows = entry.find("windows");
      if (name == nullptr || windows == nullptr) {
        return fail("malformed hist entry");
      }
      TsHist h;
      if (const obs::JsonValue* exemplars = entry.find("exemplars");
          exemplars != nullptr) {
        for (const obs::JsonValue& eentry : exemplars->array) {
          const obs::JsonValue* bucket = eentry.find("bucket");
          if (bucket == nullptr) {
            return fail("malformed hist exemplar");
          }
          TsExemplar exemplar;
          if (const obs::JsonValue* v = eentry.find("value")) exemplar.value = as_u64(*v);
          if (const obs::JsonValue* v = eentry.find("seq")) exemplar.seq = as_u64(*v);
          if (const obs::JsonValue* v = eentry.find("source")) exemplar.source = v->string;
          if (const obs::JsonValue* v = eentry.find("path")) exemplar.path = v->string;
          h.exemplars[static_cast<std::uint32_t>(as_u64(*bucket))] = std::move(exemplar);
        }
      }
      for (const obs::JsonValue& wentry : windows->array) {
        const obs::JsonValue* w = wentry.find("w");
        const obs::JsonValue* count = wentry.find("count");
        const obs::JsonValue* sum = wentry.find("sum");
        const obs::JsonValue* min = wentry.find("min");
        const obs::JsonValue* max = wentry.find("max");
        const obs::JsonValue* buckets = wentry.find("buckets");
        if (w == nullptr || count == nullptr || sum == nullptr ||
            min == nullptr || max == nullptr || buckets == nullptr) {
          return fail("malformed hist window");
        }
        std::map<std::uint32_t, std::uint64_t> parsed;
        for (const obs::JsonValue& pair : buckets->array) {
          if (pair.array.size() != 2) {
            return fail("malformed hist bucket");
          }
          parsed[static_cast<std::uint32_t>(as_u64(pair.array[0]))] =
              as_u64(pair.array[1]);
        }
        h.windows.emplace(
            as_u64(*w),
            MergeableHistogram::from_parts(as_u64(*count), as_u64(*sum),
                                           as_u64(*min), as_u64(*max),
                                           std::move(parsed)));
      }
      doc.hists.emplace(name->string, std::move(h));
    }
  }
  if (const obs::JsonValue* slos = root.find("slos"); slos != nullptr) {
    parse_slo_results(*slos, &doc.slos);
  }
  *out = std::move(doc);
  return true;
}

namespace {

// Sparkline over [w_lo, w_hi] downsampled to at most `width` columns by
// taking the max value per column. Nine ASCII levels; absent/zero windows
// render as spaces so bursts stand out.
std::string sparkline(const std::map<std::uint64_t, std::int64_t>& windows,
                      std::uint64_t w_lo, std::uint64_t w_hi, int width) {
  static constexpr char kLevels[] = " .:-=+*#@";
  const std::uint64_t span = w_hi - w_lo + 1;
  const std::uint64_t per_column =
      (span + static_cast<std::uint64_t>(width) - 1) /
      static_cast<std::uint64_t>(width);
  const std::uint64_t columns = (span + per_column - 1) / per_column;
  std::vector<std::int64_t> values(columns, 0);
  for (const auto& [w, v] : windows) {
    if (w < w_lo || w > w_hi || v <= 0) {
      continue;
    }
    const std::uint64_t column = (w - w_lo) / per_column;
    if (v > values[column]) {
      values[column] = v;
    }
  }
  std::int64_t peak = 0;
  for (const std::int64_t v : values) {
    if (v > peak) {
      peak = v;
    }
  }
  std::string out;
  out.reserve(columns);
  for (const std::int64_t v : values) {
    if (v <= 0 || peak <= 0) {
      out.push_back(kLevels[0]);
    } else {
      std::int64_t level = 1 + ((v - 1) * 8) / peak;
      if (level > 8) {
        level = 8;
      }
      out.push_back(kLevels[level]);
    }
  }
  return out;
}

std::string clip_name(const std::string& name, std::size_t width) {
  if (name.size() <= width) {
    return name;
  }
  return name.substr(0, width - 1) + "~";
}

}  // namespace

std::string render_top(const TsDoc& doc, const TopOptions& options) {
  const auto keep = [&options](const std::string& name) {
    return options.filter.empty() ||
           name.find(options.filter) != std::string::npos;
  };
  const int width = options.width < 8 ? 8 : options.width;

  // Shared window axis across every section, so rows line up.
  bool any_window = false;
  std::uint64_t w_lo = 0;
  std::uint64_t w_hi = 0;
  const auto widen = [&](std::uint64_t w) {
    if (!any_window) {
      w_lo = w_hi = w;
      any_window = true;
    } else {
      if (w < w_lo) w_lo = w;
      if (w > w_hi) w_hi = w;
    }
  };
  for (const auto& [name, s] : doc.series) {
    for (const auto& [w, v] : s.windows) {
      widen(w);
    }
  }
  for (const auto& [name, h] : doc.hists) {
    for (const auto& [w, wh] : h.windows) {
      widen(w);
    }
  }

  std::string out;
  appendf(&out, "pvm-top — %s  window %s  span w%llu..w%llu (%llu windows)\n",
          std::string(kTimeseriesSchemaVersion).c_str(),
          format_ns(doc.window_ns).c_str(),
          static_cast<unsigned long long>(w_lo),
          static_cast<unsigned long long>(w_hi),
          static_cast<unsigned long long>(any_window ? w_hi - w_lo + 1 : 0));
  if (!any_window) {
    out += "(empty document)\n";
    return out;
  }

  constexpr std::size_t kNameWidth = 44;
  bool series_header = false;
  for (const auto& [name, s] : doc.series) {
    if (!keep(name)) {
      continue;
    }
    if (!series_header) {
      appendf(&out, "\n%-*s %12s  %-*s  %s\n", static_cast<int>(kNameWidth),
              "SERIES", "TOTAL", width, "TREND", "WORST");
      series_header = true;
    }
    std::int64_t worst = 0;
    std::uint64_t worst_window = w_lo;
    bool any = false;
    for (const auto& [w, v] : s.windows) {
      if (!any || v > worst) {
        worst = v;
        worst_window = w;
        any = true;
      }
    }
    appendf(&out, "%-*s %12lld  %-*s  w%llu=%lld\n", static_cast<int>(kNameWidth),
            clip_name(name, kNameWidth).c_str(), static_cast<long long>(s.total),
            width, sparkline(s.windows, w_lo, w_hi, width).c_str(),
            static_cast<unsigned long long>(worst_window),
            static_cast<long long>(worst));
  }

  bool hist_header = false;
  for (const auto& [name, h] : doc.hists) {
    if (!keep(name)) {
      continue;
    }
    if (!hist_header) {
      appendf(&out, "\n%-*s %8s %9s %9s %9s %9s  %-*s  %s\n",
              static_cast<int>(kNameWidth), "LATENCY", "COUNT", "P50", "P99",
              "P999", "MAX", width, "TREND(p99)", "WORST");
      hist_header = true;
    }
    const MergeableHistogram all = h.cumulative();
    std::map<std::uint64_t, std::int64_t> p99s;
    std::uint64_t worst = 0;
    std::uint64_t worst_window = w_lo;
    bool any = false;
    for (const auto& [w, wh] : h.windows) {
      const std::uint64_t p99 = wh.quantile(0.99);
      p99s[w] = static_cast<std::int64_t>(p99);
      if (!any || p99 > worst) {
        worst = p99;
        worst_window = w;
        any = true;
      }
    }
    appendf(&out, "%-*s %8llu %9s %9s %9s %9s  %-*s  w%llu=%s\n",
            static_cast<int>(kNameWidth), clip_name(name, kNameWidth).c_str(),
            static_cast<unsigned long long>(all.count()),
            format_ns(all.quantile(0.50)).c_str(),
            format_ns(all.quantile(0.99)).c_str(),
            format_ns(all.quantile(0.999)).c_str(), format_ns(all.max()).c_str(),
            width, sparkline(p99s, w_lo, w_hi, width).c_str(),
            static_cast<unsigned long long>(worst_window),
            format_ns(worst).c_str());
    if (const TsExemplar* tail = h.tail_exemplar(); tail != nullptr) {
      // Direct append (not appendf): sweep-coordinate sources and span paths
      // can outgrow appendf's fixed buffer, and truncation here would cut the
      // very link the exemplar exists to provide.
      out += "  tail exemplar: seq=" + std::to_string(tail->seq) +
             " value=" + format_ns(tail->value) +
             " source=" + (tail->source.empty() ? "-" : tail->source) +
             " path=" + (tail->path.empty() ? "-" : tail->path) + "\n";
    }
  }

  if (!doc.slos.empty()) {
    appendf(&out, "\n%-20s %-*s %6s %10s %10s %-7s %6s  %s\n", "SLO",
            static_cast<int>(kNameWidth), "METRIC", "Q", "VALUE", "THRESHOLD",
            "SCOPE", "WORST", "RESULT");
    for (const SloResult& slo : doc.slos) {
      const bool total = slo.quantile == "total";
      std::string value = total ? std::to_string(slo.value)
                                : format_ns(static_cast<std::uint64_t>(
                                      slo.value < 0 ? 0 : slo.value));
      std::string threshold = total ? std::to_string(slo.threshold_ns)
                                    : format_ns(slo.threshold_ns);
      appendf(&out, "%-20s %-*s %6s %10s %10s %-7s %5sw%llu  %s\n",
              clip_name(slo.name, 20).c_str(), static_cast<int>(kNameWidth),
              clip_name(slo.metric, kNameWidth).c_str(), slo.quantile.c_str(),
              value.c_str(), threshold.c_str(), slo.scope.c_str(), "",
              static_cast<unsigned long long>(slo.worst_window),
              slo.pass ? "PASS" : "FAIL");
    }
  }
  return out;
}

}  // namespace pvm::ts
