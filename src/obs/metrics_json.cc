#include "src/obs/metrics_json.h"

#include "src/metrics/report.h"
#include "src/obs/contention.h"
#include "src/obs/json.h"
#include "src/obs/span.h"

namespace pvm::obs {

namespace {

// Resource contention table as a JSON array (rendered at capture time — the
// platform that owns the resources is usually destroyed before to_json()).
std::string render_resources_json(const Simulation& sim) {
  const std::vector<ResourceStats> stats = collect_resource_stats(sim);
  JsonWriter json;
  json.begin_array();
  for (const ResourceStats& s : stats) {
    json.begin_object()
        .key("name").value(s.name)
        .key("capacity").value(static_cast<std::uint64_t>(s.capacity))
        .key("acquisitions").value(s.acquisitions)
        .key("contended").value(s.contended)
        .key("wait_total_ns").value(s.total_wait_ns)
        .key("wait_p50_ns").value(s.wait_p50_ns)
        .key("wait_p95_ns").value(s.wait_p95_ns)
        .key("wait_p99_ns").value(s.wait_p99_ns)
        .key("hold_total_ns").value(s.total_hold_ns)
        .key("hold_p50_ns").value(s.hold_p50_ns)
        .key("hold_p95_ns").value(s.hold_p95_ns)
        .key("hold_p99_ns").value(s.hold_p99_ns)
        .key("peak_queue_depth").value(static_cast<std::uint64_t>(s.peak_queue_depth))
        .end_object();
  }
  json.end_array();
  return json.str();
}

std::string render_spans_json(const SpanRecorder& recorder) {
  JsonWriter json;
  json.begin_object();
  json.key("phases").begin_array();
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto phase = static_cast<Phase>(i);
    const SpanRecorder::PhaseStat& stat = recorder.phase_stat(phase);
    if (stat.count == 0) {
      continue;
    }
    json.begin_object()
        .key("phase").value(phase_name(phase))
        .key("count").value(stat.count)
        .key("exclusive_ns").value(stat.exclusive_ns)
        .end_object();
  }
  json.end_array();
  json.key("ops").begin_array();
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto op = static_cast<Phase>(i);
    if (!phase_is_op(op)) {
      continue;
    }
    const LatencyHistogram& hist = recorder.op_latency(op);
    if (hist.count() == 0) {
      continue;
    }
    json.begin_object()
        .key("op").value(phase_name(op))
        .key("count").value(hist.count())
        .key("total_ns").value(hist.sum())
        .key("mean_ns").value(hist.mean())
        .key("p50_ns").value(hist.quantile(0.50))
        .key("p95_ns").value(hist.quantile(0.95))
        .key("p99_ns").value(hist.quantile(0.99))
        .key("max_ns").value(hist.max());
    json.key("by_phase").begin_array();
    for (std::size_t j = 0; j < kPhaseCount; ++j) {
      const auto phase = static_cast<Phase>(j);
      const TimeNs exclusive = recorder.op_phase_ns(op, phase);
      if (exclusive == 0) {
        continue;
      }
      json.begin_object()
          .key("phase").value(phase_name(phase))
          .key("exclusive_ns").value(exclusive)
          .end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.key("dropped_spans").value(recorder.dropped_spans());
  json.end_object();
  return json.str();
}

}  // namespace

void BenchExport::add_run(const std::string& label, const Simulation& sim,
                          const CounterSet& counters, const SpanRecorder* recorder,
                          std::vector<std::pair<std::string, double>> values,
                          std::string alloc_json, bool include_resources) {
  Run run;
  run.label = label;
  run.values = std::move(values);
  run.has_platform = true;
  run.sim_ns = sim.now();
  run.events = sim.events_processed();
  run.counters = counters;
  run.resources_json = include_resources ? render_resources_json(sim) : "[]";
  if (recorder != nullptr && recorder->enabled()) {
    run.spans_json = render_spans_json(*recorder);
  }
  run.alloc_json = std::move(alloc_json);
  runs_.push_back(std::move(run));
}

void BenchExport::add_values(const std::string& label,
                             std::vector<std::pair<std::string, double>> values) {
  Run run;
  run.label = label;
  run.values = std::move(values);
  runs_.push_back(std::move(run));
}

std::string render_alloc_json(const EventQueueStats& queue, const SlabStats* engines) {
  JsonWriter json;
  json.begin_object();
  const auto emit_slab = [&json](const char* key, const SlabStats& stats) {
    json.key(key).begin_object()
        .key("acquired").value(stats.acquired)
        .key("released").value(stats.released)
        .key("live").value(stats.live)
        .key("live_high_water").value(stats.live_high_water)
        .key("slabs").value(stats.slabs)
        .key("bytes_reserved").value(stats.bytes_reserved)
        .end_object();
  };
  emit_slab("event_slots", queue.slab);
  json.key("event_queue").begin_object()
      .key("buckets").value(queue.buckets)
      .key("resizes").value(queue.resizes)
      .key("day_jumps").value(queue.day_jumps)
      .key("heap_buckets").value(queue.heap_buckets)
      .end_object();
  if (engines != nullptr) {
    emit_slab("engine_nodes", *engines);
  }
  json.end_object();
  return json.str();
}

std::string BenchExport::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("schema").value(kBenchSchemaVersion);
  json.key("bench").value(bench_name_);
  json.key("runs").begin_array();
  for (const Run& run : runs_) {
    json.begin_object();
    json.key("label").value(run.label);
    json.key("values").begin_object();
    for (const auto& [name, value] : run.values) {
      json.key(name).value(value);
    }
    json.end_object();
    if (run.has_platform) {
      json.key("sim_ns").value(run.sim_ns);
      json.key("events").value(run.events);
      json.key("counters").begin_object();
      for (std::size_t i = 0; i < kCounterCount; ++i) {
        const auto counter = static_cast<Counter>(i);
        const std::uint64_t value = run.counters.get(counter);
        if (value != 0) {
          json.key(counter_name(counter)).value(value);
        }
      }
      json.end_object();
      const DerivedStats derived = derive_stats(run.counters);
      json.key("derived").begin_object()
          .key("switches_per_fault").value(derived.switches_per_fault)
          .key("l0_exits_per_fault").value(derived.l0_exits_per_fault)
          .key("tlb_hit_rate").value(derived.tlb_hit_rate)
          .key("prefault_coverage").value(derived.prefault_coverage)
          .end_object();
      // Recovery-protocol outcomes, emitted even when zero: a regression
      // gate needs the explicit zero to distinguish "no kills" from "metric
      // missing" (the counters object above elides zeros).
      json.key("recovery").begin_object()
          .key("watchdog_kick").value(run.counters.get(Counter::kWatchdogKick))
          .key("watchdog_reset").value(run.counters.get(Counter::kWatchdogReset))
          .key("watchdog_kill").value(run.counters.get(Counter::kWatchdogKill))
          .key("oom_kill").value(run.counters.get(Counter::kGuestOomKill))
          .end_object();
      json.key("resources");
      // Pre-rendered arrays/objects splice in verbatim.
      json.raw(run.resources_json);
      if (!run.spans_json.empty()) {
        json.key("spans");
        json.raw(run.spans_json);
      }
      if (!run.alloc_json.empty()) {
        json.key("alloc");
        json.raw(run.alloc_json);
      }
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace pvm::obs
