// pvm::ts — deterministic time-series telemetry on the virtual clock.
//
// A Collector turns the event firehose (flight-recorder emit points plus a
// few direct instrumentation sites) into fixed-width tumbling windows of
// counters/gauges and mergeable latency histograms, all keyed to sim-ns.
// Nothing here reads wall clock: a window is `sim_now / window_ns`, so the
// same (policy, seed, config) run produces a byte-identical document.
//
// Documents follow the sweep merge discipline: per-cell docs are prefixed
// with their coordinate ("<mode>/<workload>/") and merged in cell-index
// order, so a --jobs 8 sweep export is byte-identical to --jobs 1, and
// merged-shard histogram quantiles equal the single-stream result exactly
// (fixed bucket boundaries make merge element-wise addition).
//
// Schema: pvm.timeseries.v1 (render_timeseries_json / parse_timeseries_json
// round-trip byte-identically). SLO specs evaluate quantile thresholds over
// the whole run or per window into pass/fail objects that benchdiff gates.

#ifndef PVM_SRC_OBS_TS_H_
#define PVM_SRC_OBS_TS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/hist.h"

namespace pvm::obs {
class JsonValue;
class JsonWriter;
class SpanRecorder;
}  // namespace pvm::obs

namespace pvm::ts {

inline constexpr std::string_view kTimeseriesSchemaVersion = "pvm.timeseries.v1";

// Default tumbling-window width: 1ms of virtual time. A bootstorm run spans
// tens to hundreds of windows at this width.
inline constexpr std::uint64_t kDefaultWindowNs = 1'000'000;

// One named counter or gauge series. Counters store per-window increments
// (total = sum of windows); gauges store the level sampled at the end of
// each window the level changed in (total = final level). Windows with no
// activity are absent — sparseness is part of the schema.
struct TsSeries {
  bool gauge = false;
  std::int64_t total = 0;
  std::map<std::uint64_t, std::int64_t> windows;

  bool operator==(const TsSeries&) const = default;
};

// Tail exemplar: the worst observation that landed in one histogram bucket,
// linked back to its flight-recorder seq and the span path that was open when
// it was recorded — a P99 regression in a merged sweep document resolves to
// one replayable (cell, seq) trace position. `seq` is the flight event's own
// seq when the observation came through the flight bridge, or the seq of the
// nearest preceding flight event for direct observe() sites. `source` is
// stamped by prefix_timeseries with the sweep coordinate ("<mode>/<workload>/"
// or "<label>/"), accumulating outer prefixes on each merge level.
struct TsExemplar {
  std::uint64_t value = 0;
  std::uint64_t seq = 0;
  std::string source;
  std::string path;

  bool operator==(const TsExemplar&) const = default;
};

// Strict-weak "worse than" total order used to pick the surviving exemplar on
// merge: larger value wins; ties prefer the earlier seq, then the
// lexicographically smaller source and path. A total order makes the merge
// associative and commutative, so sharded sweeps keep byte-identical docs.
bool exemplar_worse(const TsExemplar& a, const TsExemplar& b);

// One named latency metric: a mergeable histogram per touched window, plus
// one exemplar per touched bucket (cumulative across windows).
struct TsHist {
  std::map<std::uint64_t, MergeableHistogram> windows;
  std::map<std::uint32_t, TsExemplar> exemplars;

  MergeableHistogram cumulative() const;

  // The exemplar of the highest touched bucket — the run's worst sample.
  const TsExemplar* tail_exemplar() const {
    return exemplars.empty() ? nullptr : &exemplars.rbegin()->second;
  }

  bool operator==(const TsHist&) const = default;
};

// SLO specification: "<name>:<metric>:<quantile><=<threshold>[:window]".
// metric matches hist names by equality or substring; quantile is one of
// p50 p90 p95 p99 p999 max (histograms, value in ns) or total (series,
// threshold compared against the series total). Threshold takes ns/us/ms/s
// suffixes. The optional ":window" scope evaluates every window instead of
// the whole run.
struct SloSpec {
  std::string name;
  std::string metric;
  std::string quantile = "p99";
  std::uint64_t threshold_ns = 0;
  bool per_window = false;
};

bool parse_slo_spec(std::string_view text, SloSpec* out, std::string* error);

// One evaluated SLO. A spec that matches no metric fails explicitly
// (metric "(no match)") so a typo cannot silently pass a CI gate.
struct SloResult {
  std::string name;
  std::string metric;
  std::string quantile;
  std::uint64_t threshold_ns = 0;
  std::string scope;
  std::int64_t value = 0;
  std::uint64_t worst_window = 0;
  bool pass = false;

  bool operator==(const SloResult&) const = default;
};

// A full timeseries document: everything pvm.timeseries.v1 serializes.
struct TsDoc {
  std::uint64_t window_ns = kDefaultWindowNs;
  std::map<std::string, TsSeries, std::less<>> series;
  std::map<std::string, TsHist, std::less<>> hists;
  std::vector<SloResult> slos;

  bool empty() const { return series.empty() && hists.empty(); }

  bool operator==(const TsDoc&) const = default;
};

// Streams events into a TsDoc. Bound to a simulation clock via bind(); all
// mutating calls before bind() land in window 0. One Collector per
// simulation — merging across simulations happens on drained docs.
class Collector {
 public:
  // Binds the virtual clock (pointer to Simulation::now_ storage). The
  // pointee must outlive the attachment.
  void bind(const std::uint64_t* now) { now_ = now; }

  // Binds the scheduler's active-root pointer and (optionally) the attached
  // span recorder, so exemplars can capture the open span path at observation
  // time. Wired by Simulation::set_ts/set_spans; both may be null.
  void bind_context(const std::int64_t* active_root, const obs::SpanRecorder* spans) {
    active_root_ = active_root;
    spans_ = spans;
  }

  // Sets the tumbling-window width. Call before recording; changing the
  // width mid-stream would re-key past windows.
  void set_window(std::uint64_t window_ns) {
    doc_.window_ns = window_ns == 0 ? kDefaultWindowNs : window_ns;
  }
  std::uint64_t window_ns() const { return doc_.window_ns; }

  // Counter increment / gauge level change / latency observation at the
  // current virtual time.
  void count(std::string_view name, std::int64_t n = 1) { count_at(name, now(), n); }
  void gauge_add(std::string_view name, std::int64_t delta) {
    gauge_add_at(name, now(), delta);
  }
  void observe(std::string_view name, std::uint64_t value) {
    observe_at(name, now(), value);
  }

  // Explicit-timestamp variants (used by the flight-event bridge, which
  // carries the event's own stamp).
  void count_at(std::string_view name, std::uint64_t t, std::int64_t n = 1);
  void gauge_add_at(std::string_view name, std::uint64_t t, std::int64_t delta);
  void observe_at(std::string_view name, std::uint64_t t, std::uint64_t value);

  // Bridge from FlightRecorder::record. `kind` is flight::EventKind cast to
  // its underlying type (kept untyped here to avoid a header cycle);
  // translation to metric names lives in ts.cc. `seq` is the flight seq the
  // event is stamped with — histogram exemplars carry it so tail buckets
  // resolve back into the flight-recorder rings.
  void on_flight_event(std::uint64_t t, std::int64_t track, std::uint8_t kind,
                       std::uint64_t a, std::uint64_t b, std::uint8_t code,
                       std::uint64_t seq = 0);

  // Moves the accumulated document out and resets the collector (window
  // width is kept; gauge levels and open event pairs are cleared).
  TsDoc drain();

 private:
  std::uint64_t now() const { return now_ == nullptr ? 0 : *now_; }

  TsSeries& series_slot(std::string_view name);

  const std::uint64_t* now_ = nullptr;
  const std::int64_t* active_root_ = nullptr;
  const obs::SpanRecorder* spans_ = nullptr;
  // The seq of the last flight event seen — the exemplar link for direct
  // observe() sites that do not come through the bridge.
  std::uint64_t last_seq_ = 0;
  TsDoc doc_;
  // Open exit->entry pairs per root task, for round-trip latencies.
  std::map<std::int64_t, std::uint64_t> open_switch_;
  std::map<std::int64_t, std::uint64_t> open_vmx_;
};

// Adds `from` into `into`, window-wise. Returns false (and sets *error)
// when the window widths differ — such documents are not comparable.
// An empty `into` adopts `from`'s window width. SLO results are not merged;
// re-evaluate after merging.
bool merge_timeseries(TsDoc* into, const TsDoc& from, std::string* error);

// Returns a copy of `doc` with every series/hist name prefixed — the
// per-cell coordinate step of the sweep merge discipline.
TsDoc prefix_timeseries(const TsDoc& doc, std::string_view prefix);

// Evaluates `specs` against the document's hists/series and stores the
// results in doc->slos (replacing any previous results).
void evaluate_slos(TsDoc* doc, const std::vector<SloSpec>& specs);

// pvm.timeseries.v1 serialization. Deterministic: names sort (std::map
// iteration order), integers only, no wall-clock fields.
std::string render_timeseries_json(const TsDoc& doc);
bool parse_timeseries_json(std::string_view text, TsDoc* out, std::string* error);

// The SLO-verdict array shared by pvm.timeseries.v1 and pvm.fleet.v1:
// render_slo_results writes it (as the next value of `w`, typically after a
// key), parse_slo_results reads a parsed JSON array back. Factored out so
// every schema carrying SLO verdicts serializes them identically and
// benchdiff gates them with one code path.
void render_slo_results(obs::JsonWriter& w, const std::vector<SloResult>& slos);
void parse_slo_results(const obs::JsonValue& array, std::vector<SloResult>* out);

// kvm_stat/top-style text dashboard over a document: per-window sparkline
// trend columns, totals, latency quantiles, worst-window highlight, SLO
// verdicts. Deterministic for a given (doc, options).
struct TopOptions {
  // Substring filter on series/hist names; empty keeps everything.
  std::string filter;
  // Sparkline column budget; wider histories downsample by max.
  int width = 48;
};

std::string render_top(const TsDoc& doc, const TopOptions& options);

}  // namespace pvm::ts

#endif  // PVM_SRC_OBS_TS_H_
