// Minimal recursive-descent JSON parser — the read half of json.h.
//
// Exists for benchdiff (comparing two pvm.bench.v1 exports) and for tests
// that validate exported documents without an external JSON dependency.
// Full RFC 8259 value grammar, UTF-8 passed through verbatim, \uXXXX decoded
// only for the BMP (the writer never emits surrogate pairs). Numbers are
// held as double — every quantity the exports carry fits in 53 bits.

#ifndef PVM_SRC_OBS_JSON_PARSE_H_
#define PVM_SRC_OBS_JSON_PARSE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pvm::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion order preserved so round-trip comparisons stay deterministic.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const {
    if (type != Type::kObject) {
      return nullptr;
    }
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

// Parses one JSON document. Returns false (and sets `error` with a byte
// offset) on malformed input or trailing garbage.
bool json_parse(std::string_view text, JsonValue* out, std::string* error);

}  // namespace pvm::obs

#endif  // PVM_SRC_OBS_JSON_PARSE_H_
