// pvm::flight — always-on black-box flight recorder.
//
// Fixed-capacity per-track binary ring buffers on the virtual clock. A track
// is a root task of the Simulation (in practice: one per vCPU run loop, plus
// watchdogs and chaos agents). Each event is one compact POD record — kind,
// two payload words, a small code — cheap enough to leave recording on for
// every run, including the full-sweep benches. When a run dies (oracle
// violation, deadlock, watchdog kill, guest OOM) the last N events per track
// are rendered as an interleaved timeline and a versioned postmortem JSON.
//
// Determinism: events are stamped with the virtual clock and a global
// monotonic sequence number assigned in execution order. Two runs with the
// same (policy, seed, config) produce byte-identical dumps.

#ifndef PVM_SRC_OBS_FLIGHT_H_
#define PVM_SRC_OBS_FLIGHT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/ts.h"

namespace pvm {

class Simulation;

namespace flight {

enum class EventKind : std::uint8_t {
  kSwitcherExit,   // world switch out of the guest; code = SwitchReason
  kSwitcherEntry,  // world switch into a guest ring; code = target ring
  kDirectSwitch,   // PVM user<->kernel switch w/o hypervisor; code = 0 to
                   // kernel, 1 to user; b = switch duration ns
  kVmxExit,        // L0 VM-exit; code = ExitKind
  kVmxEntry,       // L0 VM-entry completing a roundtrip
  kGuestFault,     // backend fault-resolution start; a = gva
  kSptFill,        // a = gva, b = pid; code = 0 fill, 1 prefault, 2 raced
  kZap,            // a = gva, b = pid
  kBulkZap,        // a = leaves zapped, b = pid
  kReclaim,        // a = frames reclaimed, b = shadow leaves zapped
  kGptEmulate,     // write-protected GPT store emulated; a = gpa
  kLockAcquire,    // a = interned lock name; code = 0 uncontended,
                   // 1 contended; b = virtual ns spent waiting
  kLockRelease,    // a = interned lock name
  kFaultInjected,  // a = interned site name; code = fault::FaultKind
  kWatchdog,       // a = vcpu index; code = 0 kick, 1 reset, 2 kill
  kOomKill,        // guest OOM kill; a = pid, b = data frames freed
  kMigrationRound,     // pre-copy round done; a = pages copied, b = dirtied
  kMigrationStopCopy,  // stop-and-copy pause; a = pages, b = downtime ns
  kMigrationFallback,  // pre-copy degraded to post-copy; a = pages left
  kCount,
};

constexpr std::size_t kEventKindCount = static_cast<std::size_t>(EventKind::kCount);

// Pseudo exit-reason codes for kVmxExit events from the nested-VMX emulation
// protocol: traps with no hv::ExitKind value of their own. Appended after
// ExitKind's 10 real reasons so one code space covers both.
inline constexpr std::uint8_t kExitCodeVmresumeTrap = 10;
inline constexpr std::uint8_t kExitCodeEpt12Store = 11;

std::string_view event_kind_name(EventKind kind);

// Reason labels for the codes carried by kSwitcherExit / kVmxExit events
// ("page-fault", "ept-violation", ...; includes the pseudo codes above).
// pvm-stat renders its exit-accounting table through these.
std::string_view switch_reason_label(std::uint8_t code);
std::string_view exit_reason_label(std::uint8_t code);

struct Event {
  std::uint64_t t = 0;    // virtual clock, ns
  std::uint64_t seq = 0;  // global execution order across all tracks
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::int64_t track = -1;  // recording root task (-1: outside any root)
  EventKind kind = EventKind::kCount;
  std::uint8_t code = 0;
};

class FlightRecorder {
 public:
  // Per-track ring. Capacity is fixed at ring creation (first event on that
  // track); `total` keeps counting past wraparound so dropped() is exact.
  struct Ring {
    std::vector<Event> buf;
    std::uint64_t total = 0;
    std::size_t capacity = 0;

    std::uint64_t dropped() const { return total > capacity ? total - capacity : 0; }

    // Events in recording order (oldest surviving first).
    std::vector<Event> snapshot() const {
      std::vector<Event> out;
      out.reserve(buf.size());
      if (total <= capacity) {
        out = buf;
      } else {
        const std::size_t start = static_cast<std::size_t>(total % capacity);
        out.insert(out.end(), buf.begin() + static_cast<std::ptrdiff_t>(start), buf.end());
        out.insert(out.end(), buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(start));
      }
      return out;
    }
  };

  static constexpr std::size_t kDefaultCapacity = 256;

  // Attach to a simulation's clock and scheduler state. Instrumented sites
  // reach the recorder through Simulation::flight(); a null recorder (plain
  // Simulations built outside VirtualPlatform) costs one pointer test.
  void bind(const std::uint64_t* now, const std::int64_t* active_root) {
    now_ = now;
    active_root_ = active_root;
  }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Ring capacity for tracks created after this call. pvm-stat raises it so
  // whole workloads fit; the default keeps the always-on footprint small.
  void set_capacity(std::size_t capacity) { capacity_ = capacity == 0 ? 1 : capacity; }
  std::size_t capacity() const { return capacity_; }

  // Attaches (or detaches, with nullptr) a time-series collector. Every
  // recorded event is forwarded before ring storage, so the collector sees
  // the full stream regardless of ring wraparound. Normally wired through
  // Simulation::set_ts rather than called directly.
  void set_ts(ts::Collector* collector) { ts_ = collector; }
  ts::Collector* ts() const { return ts_; }

  void record(EventKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
              std::uint8_t code = 0) {
    if (!enabled_ || now_ == nullptr) {
      return;
    }
    // The seq is assigned before the ts bridge runs so histogram exemplars
    // carry the exact seq this event lands in the rings with.
    const std::uint64_t seq = next_seq_++;
    if (ts_ != nullptr) {
      ts_->on_flight_event(*now_, active_root_ != nullptr ? *active_root_ : -1,
                           static_cast<std::uint8_t>(kind), a, b, code, seq);
    }
    Event ev;
    ev.t = *now_;
    ev.seq = seq;
    ev.a = a;
    ev.b = b;
    ev.track = active_root_ != nullptr ? *active_root_ : -1;
    ev.kind = kind;
    ev.code = code;
    Ring& ring = rings_[ev.track];
    if (ring.capacity == 0) {
      ring.capacity = capacity_;
      ring.buf.reserve(ring.capacity < 64 ? ring.capacity : 64);
    }
    const std::size_t slot = static_cast<std::size_t>(ring.total % ring.capacity);
    if (slot == ring.buf.size()) {
      ring.buf.push_back(ev);
    } else {
      ring.buf[slot] = ev;
    }
    ++ring.total;
  }

  // Intern a lock/site name into a stable small id (payload word `a`).
  // Ids are assigned in first-use order, which is deterministic.
  std::uint64_t intern(std::string_view name) {
    auto it = name_ids_.find(name);
    if (it != name_ids_.end()) {
      return it->second;
    }
    const std::uint64_t id = names_.size();
    names_.emplace_back(name);
    name_ids_.emplace(names_.back(), id);
    return id;
  }

  std::string_view name(std::uint64_t id) const {
    return id < names_.size() ? std::string_view(names_[id]) : std::string_view("?");
  }

  const std::map<std::int64_t, Ring>& rings() const { return rings_; }

  std::uint64_t total_events() const {
    std::uint64_t n = 0;
    for (const auto& [track, ring] : rings_) {
      n += ring.total;
    }
    return n;
  }

  std::uint64_t dropped_events() const {
    std::uint64_t n = 0;
    for (const auto& [track, ring] : rings_) {
      n += ring.dropped();
    }
    return n;
  }

  // All surviving events from every track, merged into execution order.
  std::vector<Event> merged() const;

  void clear() {
    rings_.clear();
    next_seq_ = 0;
  }

 private:
  const std::uint64_t* now_ = nullptr;
  const std::int64_t* active_root_ = nullptr;
  ts::Collector* ts_ = nullptr;
  bool enabled_ = true;
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t next_seq_ = 0;
  std::map<std::int64_t, Ring> rings_;
  std::map<std::string, std::uint64_t, std::less<>> name_ids_;
  std::vector<std::string> names_;
};

// One-line human-readable rendering of an event's payload ("gva=0x... pid=2").
std::string event_detail(const FlightRecorder& recorder, const Event& event);

// Interleaved human-readable timeline of the last events on every track.
// `sim` (optional) resolves track ids to root-task names.
std::string render_flight_timeline(const FlightRecorder& recorder, const Simulation* sim);

// Versioned machine-readable postmortem. Schema pvm.postmortem.v1:
//   {schema, reason, reproduce, sim_ns, total_events, dropped_events,
//    diagnostics: [...], tracks: [{track, name, total, dropped,
//    events: [{t, seq, kind, a, b, code, detail}]}]}
// `reproduce` embeds the simcheck reproduce line when the dump comes from a
// sweep case; empty otherwise.
std::string render_postmortem_json(const FlightRecorder& recorder, const Simulation* sim,
                                   std::string_view reason, std::string_view reproduce);

}  // namespace flight
}  // namespace pvm

#endif  // PVM_SRC_OBS_FLIGHT_H_
