// Chrome trace-event JSON export (Perfetto-loadable).
//
// One timeline track per root task (vCPU / chaos agent / workload process,
// named as spawned) under pid 0, plus one track per contended lock under
// pid 1. Spans become "X" (complete) events with microsecond timestamps on
// the virtual clock. Load the file at https://ui.perfetto.dev or
// chrome://tracing.

#ifndef PVM_SRC_OBS_CHROME_TRACE_H_
#define PVM_SRC_OBS_CHROME_TRACE_H_

#include <string>

namespace pvm {
class Simulation;
namespace flight {
class FlightRecorder;
}  // namespace flight
}  // namespace pvm

namespace pvm::obs {

class SpanRecorder;

// Serializes the recorder's span buffer. Track names for root tasks come
// from `sim` (Simulation::root_name); lock-track names from the recorder.
// When `flight` is given, its fault-injection / watchdog / OOM-kill events
// are overlaid as instant ("i") markers on the owning task's track, so an
// injected fault is visible right where the affected protocol runs.
// Deterministic: identical runs produce byte-identical output.
std::string export_chrome_trace(const SpanRecorder& recorder, const Simulation& sim,
                                const flight::FlightRecorder* flight = nullptr);

}  // namespace pvm::obs

#endif  // PVM_SRC_OBS_CHROME_TRACE_H_
