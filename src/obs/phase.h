// Phase taxonomy for span tracing (pvm::obs).
//
// Every span carries a Phase: either an *operation root* (a complete guest
// operation whose end-to-end latency we attribute — a page fault, a syscall,
// a trapped GPT store) or a *phase* (a protocol step inside an operation — a
// VMX transition, a table walk, an SPT fill, a lock wait). The recorder
// (span.h) decomposes each operation's virtual latency into exclusive time
// per phase, which is the "where does every nanosecond go" view the paper
// argues from (§2.2 unit costs, Fig. 9 step sequences, Fig. 10 mmu_lock
// queueing).
//
// Header-only and dependency-free so src/sim can include it.

#ifndef PVM_SRC_OBS_PHASE_H_
#define PVM_SRC_OBS_PHASE_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pvm::obs {

enum class Phase : std::uint8_t {
  // Operation roots.
  kOpPageFault,     // one guest page fault, entry to resolution
  kOpSyscall,       // one guest syscall round trip
  kOpGptStore,      // one trapped write to a write-protected guest page table
  kOpBoot,          // container boot (RunD-style startup)

  // World-switch phases.
  kVmxExit,         // hardware VMX exit into a hypervisor (L0 or L1)
  kVmxEntry,        // hardware VMX entry resuming a guest
  kSwitcherExit,    // PVM switcher: guest context -> hypervisor context
  kSwitcherEntry,   // PVM switcher: hypervisor context -> guest context
  kDirectSwitch,    // PVM switcher user<->kernel switch without the hypervisor
  kVmcsSync,        // nVMX VMCS01/12 -> VMCS02 merge
  kL0Handler,       // L0 host hypervisor exit handling (dispatch + bookkeeping)

  // Memory-virtualization phases.
  kTableWalk,       // hardware 1-D or 2-D page-table walk
  kGptWalk,         // software walk of the guest page table
  kSptFill,         // shadow page table entry install (incl. lock phases)
  kEptFill,         // EPT entry install (EPT01/EPT12/EPT02)
  kGptEmulate,      // emulating a trapped GPT store (decode + apply + zap)
  kZap,             // shadow teardown (unmap/protect/cow zap)
  kTlbShootdown,    // remote-vCPU TLB invalidation round
  kPrefault,        // proactive SPT fill on the iret path

  // Generic contention / background phases.
  kLockWait,        // queued on a sim::Resource (mmu_lock, pt_lock, ...)
  kIo,              // paravirtual I/O burst
  kCompute,         // guest compute timeslices on the host CPU pool
  kReclaim,         // frame-pressure reclaim (zap cold shadow state via rmap)

  // Live-migration phases (appended after the original taxonomy so existing
  // numeric values — and every golden export built on them — stay stable).
  kDirtyTrack,      // dirty-tracking cost charged to a guest store (WP fault,
                    // PML append/flush) while a migration has the tracker armed
  kMigrationCopy,   // one pre-copy/stop-copy/post-copy transfer leg on the wire
  kOpMigration,     // operation root: one MigrationEngine::migrate() call

  kCount,
};

inline constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

constexpr std::string_view phase_name(Phase phase) {
  switch (phase) {
    case Phase::kOpPageFault:
      return "op.page_fault";
    case Phase::kOpSyscall:
      return "op.syscall";
    case Phase::kOpGptStore:
      return "op.gpt_store";
    case Phase::kOpBoot:
      return "op.boot";
    case Phase::kVmxExit:
      return "vmx_exit";
    case Phase::kVmxEntry:
      return "vmx_entry";
    case Phase::kSwitcherExit:
      return "switcher_exit";
    case Phase::kSwitcherEntry:
      return "switcher_entry";
    case Phase::kDirectSwitch:
      return "direct_switch";
    case Phase::kVmcsSync:
      return "vmcs_sync";
    case Phase::kL0Handler:
      return "l0_handler";
    case Phase::kTableWalk:
      return "table_walk";
    case Phase::kGptWalk:
      return "gpt_walk";
    case Phase::kSptFill:
      return "spt_fill";
    case Phase::kEptFill:
      return "ept_fill";
    case Phase::kGptEmulate:
      return "gpt_emulate";
    case Phase::kZap:
      return "zap";
    case Phase::kTlbShootdown:
      return "tlb_shootdown";
    case Phase::kPrefault:
      return "prefault";
    case Phase::kLockWait:
      return "lock_wait";
    case Phase::kIo:
      return "io";
    case Phase::kCompute:
      return "compute";
    case Phase::kReclaim:
      return "reclaim";
    case Phase::kDirtyTrack:
      return "dirty_track";
    case Phase::kMigrationCopy:
      return "migration_copy";
    case Phase::kOpMigration:
      return "op.migration";
    case Phase::kCount:
      break;
  }
  return "?";
}

// Operation roots open an attribution scope: phases closed inside one are
// charged to that operation in the op-by-phase matrix.
constexpr bool phase_is_op(Phase phase) {
  switch (phase) {
    case Phase::kOpPageFault:
    case Phase::kOpSyscall:
    case Phase::kOpGptStore:
    case Phase::kOpBoot:
    case Phase::kOpMigration:
      return true;
    default:
      return false;
  }
}

}  // namespace pvm::obs

#endif  // PVM_SRC_OBS_PHASE_H_
